#include "apps/netsed.hpp"

#include <algorithm>

namespace rogue::apps {

NetsedRule NetsedRule::from_strings(std::string_view pattern,
                                    std::string_view replacement) {
  return NetsedRule{util::to_bytes(pattern), util::to_bytes(replacement)};
}

util::Bytes netsed_apply(const std::vector<NetsedRule>& rules, util::ByteView data,
                         std::uint64_t* replacements) {
  util::Bytes current(data.begin(), data.end());
  for (const auto& rule : rules) {
    if (rule.pattern.empty()) continue;
    util::Bytes next;
    next.reserve(current.size());
    std::size_t pos = 0;
    while (pos < current.size()) {
      const auto it = std::search(current.begin() + static_cast<std::ptrdiff_t>(pos),
                                  current.end(), rule.pattern.begin(),
                                  rule.pattern.end());
      const auto found = static_cast<std::size_t>(it - current.begin());
      next.insert(next.end(), current.begin() + static_cast<std::ptrdiff_t>(pos),
                  it);
      if (it == current.end()) break;
      next.insert(next.end(), rule.replacement.begin(), rule.replacement.end());
      if (replacements != nullptr) ++*replacements;
      pos = found + rule.pattern.size();
    }
    current = std::move(next);
  }
  return current;
}

namespace {
/// Longest proper suffix of `data` that is a prefix of any rule pattern
/// (the bytes that must be withheld in streaming mode).
[[nodiscard]] std::size_t hold_back(const std::vector<NetsedRule>& rules,
                                    util::ByteView data) {
  std::size_t best = 0;
  for (const auto& rule : rules) {
    if (rule.pattern.size() < 2) continue;
    const std::size_t max_len = std::min(rule.pattern.size() - 1, data.size());
    for (std::size_t len = max_len; len > best; --len) {
      const util::ByteView tail = data.subspan(data.size() - len);
      if (std::equal(tail.begin(), tail.end(), rule.pattern.begin())) {
        best = len;
        break;
      }
    }
  }
  return best;
}
}  // namespace

struct Netsed::Pipe {
  net::TcpConnectionPtr from;
  net::TcpConnectionPtr to;
  const std::vector<NetsedRule>* rules;
  NetsedMode mode;
  NetsedStats* stats;
  std::uint64_t* direction_bytes;
  util::Bytes carry;       ///< streaming-mode withheld suffix
  util::Bytes pre_connect; ///< data buffered until `to` is established
  bool to_established = false;
  bool closed = false;

  void on_data(util::ByteView data) {
    *direction_bytes += data.size();
    util::Bytes work;
    if (mode == NetsedMode::kStreaming) {
      work = std::move(carry);
      carry.clear();
      util::append(work, data);
    } else {
      work.assign(data.begin(), data.end());
    }

    util::Bytes rewritten = netsed_apply(*rules, work, &stats->replacements);

    if (mode == NetsedMode::kStreaming) {
      const std::size_t hold = hold_back(*rules, rewritten);
      if (hold > 0) {
        carry.assign(rewritten.end() - static_cast<std::ptrdiff_t>(hold),
                     rewritten.end());
        rewritten.resize(rewritten.size() - hold);
      }
    }
    forward(rewritten);
  }

  void forward(util::ByteView data) {
    if (data.empty()) return;
    if (to_established) {
      to->send(data);
    } else {
      util::append(pre_connect, data);
    }
  }

  void on_to_established() {
    to_established = true;
    if (!pre_connect.empty()) {
      to->send(pre_connect);
      pre_connect.clear();
    }
  }

  void on_eof() {
    if (closed) return;
    closed = true;
    if (!carry.empty()) {
      forward(carry);
      carry.clear();
    }
    if (to_established) {
      to->close();
    } else {
      pre_connect_close = true;
    }
  }

  bool pre_connect_close = false;
};

Netsed::Netsed(net::Host& host, std::uint16_t listen_port, net::Ipv4Addr dst_ip,
               std::uint16_t dst_port, std::vector<NetsedRule> rules, NetsedMode mode)
    : host_(host),
      dst_ip_(dst_ip),
      dst_port_(dst_port),
      rules_(std::move(rules)),
      mode_(mode) {
  host_.tcp_listen(listen_port,
                   [this](net::TcpConnectionPtr client) { on_accept(client); });
}

void Netsed::on_accept(net::TcpConnectionPtr client) {
  ++stats_.connections;
  net::TcpConnectionPtr upstream = host_.tcp_connect(dst_ip_, dst_port_);
  if (!upstream) {
    client->abort();
    return;
  }

  auto c2s = std::make_shared<Pipe>();
  c2s->from = client;
  c2s->to = upstream;
  c2s->rules = &rules_;
  c2s->mode = mode_;
  c2s->stats = &stats_;
  c2s->direction_bytes = &stats_.bytes_client_to_server;

  auto s2c = std::make_shared<Pipe>();
  s2c->from = upstream;
  s2c->to = client;
  s2c->rules = &rules_;
  s2c->mode = mode_;
  s2c->stats = &stats_;
  s2c->direction_bytes = &stats_.bytes_server_to_client;
  // The client leg is already established (we were accepted on it).
  s2c->to_established = true;

  client->set_on_data([c2s](util::ByteView data) { c2s->on_data(data); });
  client->set_on_close([c2s](){ c2s->on_eof(); });

  upstream->set_on_connect([c2s] {
    c2s->on_to_established();
    if (c2s->pre_connect_close) c2s->to->close();
  });
  upstream->set_on_data([s2c](util::ByteView data) { s2c->on_data(data); });
  upstream->set_on_close([s2c] { s2c->on_eof(); });
}

}  // namespace rogue::apps
