// The paper's §4.1 target scenario: "a sample target download web page
// which contained a downloadable binary, a link to that downloadable
// binary and an MD5SUM of that binary", plus a client that downloads the
// page, follows the link, and verifies the checksum — the step the attack
// subverts by rewriting both the link and the MD5SUM.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "apps/http.hpp"
#include "crypto/md5.hpp"
#include "net/host.hpp"

namespace rogue::apps {

/// Markers used on the download page. Kept as stable tokens so the
/// rogue's netsed rules can target them exactly as in the paper.
inline constexpr std::string_view kDownloadPagePath = "/download.html";
inline constexpr std::string_view kDownloadFilePath = "/file.tgz";

/// Deterministic "software release" content.
[[nodiscard]] util::Bytes make_release_blob(std::uint64_t seed, std::size_t size);

/// Render the download page HTML: a link plus the published MD5SUM.
[[nodiscard]] std::string render_download_page(std::string_view href,
                                               std::string_view md5_hex);

/// Install the legitimate download site onto an HTTP server:
/// /download.html links to file.tgz and publishes md5(file).
void install_download_site(HttpServer& server, const util::Bytes& file);

/// Install the attacker's mirror hosting a trojaned blob at /file.tgz.
void install_trojan_site(HttpServer& server, const util::Bytes& trojan);

/// Extracted page fields.
struct DownloadPageInfo {
  std::string href;
  std::string md5_hex;
};
[[nodiscard]] std::optional<DownloadPageInfo> parse_download_page(
    std::string_view html);

/// Outcome of a full fetch-parse-download-verify cycle.
struct DownloadOutcome {
  bool page_fetched = false;
  bool file_fetched = false;
  bool md5_verified = false;     ///< published MD5 == md5(downloaded file)
  std::string fetched_md5_hex;   ///< md5 of what was actually downloaded
  std::string published_md5_hex; ///< MD5SUM printed on the page
  net::Ipv4Addr fetched_from;    ///< server the binary came from
  std::string error;
};

/// Asynchronous downloader: GET the page from (ip, port), follow the href
/// (relative or absolute), verify the MD5, report.
void run_download(net::Host& client, net::Ipv4Addr ip, std::uint16_t port,
                  std::function<void(const DownloadOutcome&)> done);

}  // namespace rogue::apps
