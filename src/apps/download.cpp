#include "apps/download.hpp"

#include "util/fmt.hpp"
#include "util/prng.hpp"

namespace rogue::apps {

util::Bytes make_release_blob(std::uint64_t seed, std::size_t size) {
  util::Bytes out(size);
  util::Prng rng(seed);
  rng.fill(out);
  // A little structure so the blob looks like a tarball, not noise.
  const std::string header = util::format("RELEASE-{}\n", seed);
  for (std::size_t i = 0; i < header.size() && i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(header[i]);
  }
  return out;
}

std::string render_download_page(std::string_view href, std::string_view md5_hex) {
  return util::format(
      "<html><head><title>Download</title></head><body>\n"
      "<h1>Project Release</h1>\n"
      "<p>Get the latest release here: <a href={}>file.tgz</a></p>\n"
      "<p>MD5SUM: {}</p>\n"
      "</body></html>\n",
      href, md5_hex);
}

void install_download_site(HttpServer& server, const util::Bytes& file) {
  const std::string md5 = crypto::md5_hex(file);
  server.route(std::string(kDownloadPagePath), [md5](const HttpRequest&) {
    HttpResponse resp;
    resp.headers.emplace_back("Content-Type", "text/html");
    resp.body = util::to_bytes(render_download_page("file.tgz", md5));
    return resp;
  });
  server.route(std::string(kDownloadFilePath), [file](const HttpRequest&) {
    HttpResponse resp;
    resp.headers.emplace_back("Content-Type", "application/octet-stream");
    resp.body = file;
    return resp;
  });
}

void install_trojan_site(HttpServer& server, const util::Bytes& trojan) {
  server.route(std::string(kDownloadFilePath), [trojan](const HttpRequest&) {
    HttpResponse resp;
    resp.headers.emplace_back("Content-Type", "application/octet-stream");
    resp.body = trojan;
    return resp;
  });
}

std::optional<DownloadPageInfo> parse_download_page(std::string_view html) {
  DownloadPageInfo info;

  const std::size_t href_pos = html.find("href=");
  if (href_pos == std::string_view::npos) return std::nullopt;
  std::size_t start = href_pos + 5;
  if (start < html.size() && (html[start] == '"' || html[start] == '\'')) ++start;
  std::size_t end = start;
  while (end < html.size() && html[end] != '>' && html[end] != ' ' &&
         html[end] != '"' && html[end] != '\'') {
    ++end;
  }
  info.href = std::string(html.substr(start, end - start));

  const std::size_t md5_pos = html.find("MD5SUM:");
  if (md5_pos == std::string_view::npos) return std::nullopt;
  std::size_t m = md5_pos + 7;
  while (m < html.size() && html[m] == ' ') ++m;
  std::size_t me = m;
  while (me < html.size() && std::isxdigit(static_cast<unsigned char>(html[me]))) {
    ++me;
  }
  info.md5_hex = std::string(html.substr(m, me - m));
  if (info.md5_hex.size() != 32) return std::nullopt;
  return info;
}

void run_download(net::Host& client, net::Ipv4Addr ip, std::uint16_t port,
                  std::function<void(const DownloadOutcome&)> done) {
  auto outcome = std::make_shared<DownloadOutcome>();

  HttpClient::get(
      client, ip, port, std::string(kDownloadPagePath),
      [&client, ip, port, outcome, done = std::move(done)](const HttpResult& page) {
        if (!page.ok || page.response.status != 200) {
          outcome->error = page.ok ? "page status" : page.error;
          done(*outcome);
          return;
        }
        outcome->page_fetched = true;

        const auto info = parse_download_page(util::to_string(page.response.body));
        if (!info) {
          outcome->error = "unparsable page";
          done(*outcome);
          return;
        }
        outcome->published_md5_hex = info->md5_hex;

        const auto url = parse_url(info->href);
        if (!url) {
          outcome->error = "unparsable href";
          done(*outcome);
          return;
        }
        const net::Ipv4Addr file_ip = url->ip.value_or(ip);
        const std::uint16_t file_port = url->ip ? url->port : port;

        HttpClient::get(
            client, file_ip, file_port, url->path,
            [outcome, done, file_ip](const HttpResult& file) {
              if (!file.ok || file.response.status != 200) {
                outcome->error = file.ok ? "file status" : file.error;
                done(*outcome);
                return;
              }
              outcome->file_fetched = true;
              outcome->fetched_from = file_ip;
              outcome->fetched_md5_hex = crypto::md5_hex(file.response.body);
              outcome->md5_verified =
                  outcome->fetched_md5_hex == outcome->published_md5_hex;
              done(*outcome);
            });
      });
}

}  // namespace rogue::apps
