// netsed equivalent (§4.1): a TCP proxy that rewrites matched byte strings
// in the proxied stream. The paper's invocation
//
//   netsed tcp 10101 Target-IP 80 s/href=file.tgz/href=http:%2f%2f.../
//                                 s/REALMD5SUM/FAKEMD5SUM
//
// maps onto Netsed(host, 10101, target, 80, rules).
//
// Two matching modes reproduce §4.2's observation that "netsed will not
// match strings that cross packet boundaries. These, and other problems,
// could easily be addressed":
//   kPerSegment — historic behaviour: each TCP segment rewritten alone.
//   kStreaming  — the "easily addressed" fix: a carry buffer holds any
//                 stream suffix that is a proper prefix of a pattern, so
//                 matches split across segments are still rewritten.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "util/bytes.hpp"

namespace rogue::apps {

struct NetsedRule {
  util::Bytes pattern;
  util::Bytes replacement;

  [[nodiscard]] static NetsedRule from_strings(std::string_view pattern,
                                               std::string_view replacement);
};

enum class NetsedMode : std::uint8_t { kPerSegment, kStreaming };

struct NetsedStats {
  std::uint64_t connections = 0;
  std::uint64_t replacements = 0;
  std::uint64_t bytes_client_to_server = 0;
  std::uint64_t bytes_server_to_client = 0;
};

/// Apply all rules to a buffer (every occurrence); counts replacements.
[[nodiscard]] util::Bytes netsed_apply(const std::vector<NetsedRule>& rules,
                                       util::ByteView data,
                                       std::uint64_t* replacements = nullptr);

class Netsed {
 public:
  /// Listen on `listen_port` of `host`; proxy each accepted connection to
  /// fixed destination (dst_ip, dst_port), rewriting both directions.
  Netsed(net::Host& host, std::uint16_t listen_port, net::Ipv4Addr dst_ip,
         std::uint16_t dst_port, std::vector<NetsedRule> rules,
         NetsedMode mode = NetsedMode::kPerSegment);

  Netsed(const Netsed&) = delete;
  Netsed& operator=(const Netsed&) = delete;

  [[nodiscard]] const NetsedStats& stats() const { return stats_; }

 private:
  struct Pipe;  // one direction of one proxied connection

  void on_accept(net::TcpConnectionPtr client);

  net::Host& host_;
  net::Ipv4Addr dst_ip_;
  std::uint16_t dst_port_;
  std::vector<NetsedRule> rules_;
  NetsedMode mode_;
  NetsedStats stats_;
};

}  // namespace rogue::apps
