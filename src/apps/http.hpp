// Minimal HTTP/1.0 over the simulated TCP stack: a routing server and a
// callback client. Enough fidelity for the paper's software-download MITM:
// requests and responses are real bytes on the wire, so netsed can rewrite
// them and sniffers can read them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "util/bytes.hpp"

namespace rogue::apps {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::vector<std::pair<std::string, std::string>> headers;
  util::Bytes body;

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] std::optional<std::string> header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  util::Bytes body;

  /// Adds Content-Length automatically.
  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] std::optional<std::string> header(std::string_view name) const;
};

/// Incremental parser shared by server (requests) and client (responses).
class HttpParser {
 public:
  enum class Kind : std::uint8_t { kRequest, kResponse };

  explicit HttpParser(Kind kind) : kind_(kind) {}

  /// Feed bytes; returns true once a complete message is available.
  bool feed(util::ByteView data);
  /// Signal EOF (HTTP/1.0 responses may be delimited by connection close).
  bool feed_eof();

  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const HttpRequest& request() const { return request_; }
  [[nodiscard]] const HttpResponse& response() const { return response_; }

  void reset();

 private:
  bool parse_header_block();

  Kind kind_;
  util::Bytes buffer_;
  bool headers_done_ = false;
  bool complete_ = false;
  bool failed_ = false;
  std::optional<std::size_t> content_length_;
  std::size_t body_received_ = 0;
  HttpRequest request_;
  HttpResponse response_;
};

/// HTTP server bound to a host port; handlers run per request.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(net::Host& host, std::uint16_t port);

  /// Register an exact-path handler.
  void route(std::string path, Handler handler);
  /// Fallback handler (default: 404).
  void set_default(Handler handler) { default_ = std::move(handler); }

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void on_accept(net::TcpConnectionPtr conn);

  net::Host& host_;
  std::uint16_t port_;
  std::map<std::string, Handler> routes_;
  Handler default_;
  std::uint64_t served_ = 0;
};

/// Result handed to HttpClient callbacks.
struct HttpResult {
  bool ok = false;            ///< response fully received
  std::string error;          ///< reason when !ok
  HttpResponse response;
};

/// One-shot asynchronous GET.
class HttpClient {
 public:
  using Callback = std::function<void(const HttpResult&)>;

  /// GET http://<ip>:<port><path>. Callback fires exactly once.
  static void get(net::Host& host, net::Ipv4Addr ip, std::uint16_t port,
                  const std::string& path, Callback done,
                  sim::Time timeout = 30 * sim::kSecond);
};

/// Parsed absolute-or-relative URL (subset: http://host[:port]/path).
struct Url {
  std::optional<net::Ipv4Addr> ip;  ///< empty for relative URLs
  std::uint16_t port = 80;
  std::string path = "/";
};
[[nodiscard]] std::optional<Url> parse_url(std::string_view url);

}  // namespace rogue::apps
