#include "apps/http.hpp"

#include <algorithm>
#include <charconv>

#include "util/fmt.hpp"

namespace rogue::apps {

namespace {
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

[[nodiscard]] std::optional<std::string> find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return v;
  }
  return std::nullopt;
}
}  // namespace

util::Bytes HttpRequest::encode() const {
  std::string out = method + " " + path + " HTTP/1.0\r\n";
  for (const auto& [k, v] : headers) out += k + ": " + v + "\r\n";
  if (!body.empty() && !find_header(headers, "Content-Length")) {
    out += util::format("Content-Length: {}\r\n", body.size());
  }
  out += "\r\n";
  util::Bytes bytes = util::to_bytes(out);
  util::append(bytes, body);
  return bytes;
}

std::optional<std::string> HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

util::Bytes HttpResponse::encode() const {
  std::string out = util::format("HTTP/1.0 {} {}\r\n", status, reason);
  for (const auto& [k, v] : headers) out += k + ": " + v + "\r\n";
  if (!find_header(headers, "Content-Length")) {
    out += util::format("Content-Length: {}\r\n", body.size());
  }
  out += "\r\n";
  util::Bytes bytes = util::to_bytes(out);
  util::append(bytes, body);
  return bytes;
}

std::optional<std::string> HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

// ---- HttpParser -------------------------------------------------------------

void HttpParser::reset() {
  buffer_.clear();
  headers_done_ = false;
  complete_ = false;
  failed_ = false;
  content_length_.reset();
  body_received_ = 0;
  request_ = {};
  response_ = {};
}

bool HttpParser::parse_header_block() {
  const std::string text = util::to_string(buffer_);
  const std::size_t end = text.find("\r\n\r\n");
  if (end == std::string::npos) return false;

  // Split header block into lines.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < end) {
    const std::size_t eol = text.find("\r\n", pos);
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 2;
  }
  if (lines.empty()) {
    failed_ = true;
    return false;
  }

  // Start line.
  const std::string& start = lines.front();
  if (kind_ == Kind::kRequest) {
    const std::size_t sp1 = start.find(' ');
    const std::size_t sp2 = start.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      failed_ = true;
      return false;
    }
    request_.method = start.substr(0, sp1);
    request_.path = start.substr(sp1 + 1, sp2 - sp1 - 1);
  } else {
    const std::size_t sp1 = start.find(' ');
    if (sp1 == std::string::npos) {
      failed_ = true;
      return false;
    }
    const std::size_t sp2 = start.find(' ', sp1 + 1);
    int status = 0;
    const std::string code = start.substr(sp1 + 1, sp2 - sp1 - 1);
    std::from_chars(code.data(), code.data() + code.size(), status);
    response_.status = status;
    if (sp2 != std::string::npos) response_.reason = start.substr(sp2 + 1);
  }

  auto& headers = kind_ == Kind::kRequest ? request_.headers : response_.headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos) continue;
    std::string key = lines[i].substr(0, colon);
    std::string value = lines[i].substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(value.begin());
    headers.emplace_back(std::move(key), std::move(value));
  }

  if (const auto cl = find_header(headers, "Content-Length")) {
    std::size_t n = 0;
    std::from_chars(cl->data(), cl->data() + cl->size(), n);
    content_length_ = n;
  }

  // Retain any body bytes that arrived with the headers.
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(end + 4));
  headers_done_ = true;
  return true;
}

bool HttpParser::feed(util::ByteView data) {
  if (complete_ || failed_) return complete_;
  util::append(buffer_, data);

  if (!headers_done_ && !parse_header_block()) return false;
  if (failed_) return false;

  auto& body = kind_ == Kind::kRequest ? request_.body : response_.body;
  if (content_length_) {
    const std::size_t want = *content_length_ - body.size();
    const std::size_t take = std::min(want, buffer_.size());
    body.insert(body.end(), buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(take));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(take));
    if (body.size() == *content_length_) complete_ = true;
  } else if (kind_ == Kind::kRequest) {
    // Requests without Content-Length have no body (GET).
    complete_ = true;
  } else {
    // Responses without Content-Length run until EOF: accumulate.
    util::append(body, buffer_);
    buffer_.clear();
  }
  return complete_;
}

bool HttpParser::feed_eof() {
  if (complete_ || failed_) return complete_;
  if (headers_done_ && kind_ == Kind::kResponse && !content_length_) {
    complete_ = true;
  } else {
    failed_ = true;
  }
  return complete_;
}

// ---- HttpServer -------------------------------------------------------------

HttpServer::HttpServer(net::Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  default_ = [](const HttpRequest&) {
    HttpResponse resp;
    resp.status = 404;
    resp.reason = "Not Found";
    resp.body = util::to_bytes("not found\n");
    return resp;
  };
  host_.tcp_listen(port_, [this](net::TcpConnectionPtr conn) { on_accept(conn); });
}

void HttpServer::route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

void HttpServer::on_accept(net::TcpConnectionPtr conn) {
  auto parser = std::make_shared<HttpParser>(HttpParser::Kind::kRequest);
  std::weak_ptr<net::TcpConnection> weak = conn;
  conn->set_on_data([this, parser, weak](util::ByteView data) {
    const auto conn_locked = weak.lock();
    if (!conn_locked) return;
    if (!parser->feed(data)) return;
    const HttpRequest& req = parser->request();
    const auto it = routes_.find(req.path);
    const HttpResponse resp = it != routes_.end() ? it->second(req) : default_(req);
    ++served_;
    conn_locked->send(resp.encode());
    conn_locked->close();
    parser->reset();
  });
}

// ---- HttpClient -------------------------------------------------------------

void HttpClient::get(net::Host& host, net::Ipv4Addr ip, std::uint16_t port,
                     const std::string& path, Callback done, sim::Time timeout) {
  auto conn = host.tcp_connect(ip, port);
  if (!conn) {
    done(HttpResult{false, "no route", {}});
    return;
  }

  struct State {
    HttpParser parser{HttpParser::Kind::kResponse};
    Callback done;
    bool finished = false;
    sim::TimerHandle timer;
  };
  auto state = std::make_shared<State>();
  state->done = std::move(done);

  auto finish = [state, &host](HttpResult result) {
    if (state->finished) return;
    state->finished = true;
    host.simulator().cancel(state->timer);
    state->done(result);
  };

  HttpRequest req;
  req.path = path;
  req.headers.emplace_back("Host", ip.to_string());

  std::weak_ptr<net::TcpConnection> weak = conn;
  conn->set_on_connect([weak, req] {
    if (const auto c = weak.lock()) c->send(req.encode());
  });
  conn->set_on_data([state, finish](util::ByteView data) {
    if (state->parser.feed(data)) {
      finish(HttpResult{true, "", state->parser.response()});
    }
  });
  conn->set_on_close([state, finish] {
    if (state->parser.feed_eof()) {
      finish(HttpResult{true, "", state->parser.response()});
    } else {
      finish(HttpResult{false, "connection closed", {}});
    }
  });
  state->timer = host.simulator().after(timeout, [finish, weak] {
    finish(HttpResult{false, "timeout", {}});
    if (const auto c = weak.lock()) c->abort();
  });

  // Keep the connection alive for the duration via the close callback
  // capture chain; the socket map in TcpStack holds it while open.
  (void)conn;
}

std::optional<Url> parse_url(std::string_view url) {
  Url out;
  if (url.rfind("http://", 0) == 0) {
    url.remove_prefix(7);
    const std::size_t slash = url.find('/');
    std::string_view hostport = url.substr(0, slash);
    out.path = slash == std::string_view::npos ? "/" : std::string(url.substr(slash));
    const std::size_t colon = hostport.find(':');
    std::string_view host = hostport.substr(0, colon);
    if (colon != std::string_view::npos) {
      unsigned port = 0;
      const auto rest = hostport.substr(colon + 1);
      std::from_chars(rest.data(), rest.data() + rest.size(), port);
      if (port == 0 || port > 65535) return std::nullopt;
      out.port = static_cast<std::uint16_t>(port);
    }
    const auto ip = net::Ipv4Addr::parse(host);
    if (!ip) return std::nullopt;  // no DNS in this simulation
    out.ip = *ip;
    return out;
  }
  // Relative.
  out.path = url.empty() ? "/" : std::string(url);
  if (out.path.front() != '/') out.path.insert(out.path.begin(), '/');
  return out;
}

}  // namespace rogue::apps
