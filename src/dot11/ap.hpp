// 802.11 Access Point MAC. Implements exactly the mechanisms the paper
// shows to be insufficient: SSID announcement, open/shared-key
// authentication, WEP encryption, and MAC-address filtering — none of
// which lets a *client* authenticate the *network* (§3.1), which is why a
// rogue AP configured with the same SSID/WEP key is indistinguishable.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/wep.hpp"
#include "dot11/wpa.hpp"
#include "dot11/frame.hpp"
#include "net/addr.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace rogue::dot11 {

struct ApConfig {
  std::string ssid = "CORP";
  net::MacAddr bssid;
  phy::Channel channel = 1;

  bool privacy = false;       ///< require WEP on data frames (legacy knob)
  util::Bytes wep_key;        ///< 5 or 13 bytes when privacy is on
  crypto::WepIvPolicy iv_policy = crypto::WepIvPolicy::kSequential;

  /// Explicit security mode; kOpen + privacy=true is normalized to kWep
  /// at construction for backward compatibility.
  SecurityMode security = SecurityMode::kOpen;
  util::Bytes wpa_psk;        ///< passphrase when security == kWpaPsk
  /// security == kEap: the authenticator's credential database (RADIUS
  /// stand-in). A rogue AP knows at most its own entry.
  std::vector<std::pair<net::MacAddr, util::Bytes>> eap_client_keys;

  AuthAlgorithm auth_algorithm = AuthAlgorithm::kOpenSystem;

  bool mac_filtering = false;  ///< only `allowed_macs` may associate
  std::vector<net::MacAddr> allowed_macs;

  sim::Time beacon_interval = 102'400;  ///< 100 TU in microseconds
};

struct ApCounters {
  std::uint64_t beacons_sent = 0;
  std::uint64_t auth_ok = 0;
  std::uint64_t auth_rejected = 0;
  std::uint64_t assoc_ok = 0;
  std::uint64_t assoc_rejected = 0;
  std::uint64_t data_up = 0;        ///< MSDUs delivered to the DS
  std::uint64_t data_down = 0;      ///< MSDUs sent toward stations
  std::uint64_t wep_icv_failures = 0;
  std::uint64_t dropped_unencrypted = 0;
  std::uint64_t wpa_handshakes_completed = 0;
  std::uint64_t wpa_open_failures = 0;
  std::uint64_t wpa_replays_dropped = 0;
};

class AccessPoint {
 public:
  /// Called for MSDUs leaving the BSS toward the distribution system
  /// (the wired uplink / router behind the AP).
  using DsHandler = std::function<void(net::MacAddr src, net::MacAddr dst,
                                       std::uint16_t ethertype, util::ByteView payload)>;
  /// Observer for association table changes ("assoc"/"deauth" + MAC).
  using EventHandler = std::function<void(std::string_view event, net::MacAddr sta)>;

  AccessPoint(sim::Simulator& simulator, phy::Medium& medium, ApConfig config,
              sim::Trace* trace = nullptr);

  AccessPoint(const AccessPoint&) = delete;
  AccessPoint& operator=(const AccessPoint&) = delete;

  /// Begin beaconing and serving stations.
  void start();
  /// Stop beaconing and drop all associations (silently).
  void stop();

  [[nodiscard]] const ApConfig& config() const { return config_; }
  [[nodiscard]] const ApCounters& counters() const { return counters_; }
  [[nodiscard]] phy::Radio& radio() { return radio_; }

  [[nodiscard]] bool is_associated(net::MacAddr sta) const;
  /// With WPA: associated AND 4-way handshake complete (data-path live).
  [[nodiscard]] bool is_station_ready(net::MacAddr sta) const;
  [[nodiscard]] std::vector<net::MacAddr> associated_stations() const;

  /// Inject an MSDU from the distribution system toward a station (or
  /// broadcast). Returns false if dst is neither broadcast nor associated.
  bool send_to_station(net::MacAddr dst, net::MacAddr src, std::uint16_t ethertype,
                       util::ByteView payload);

  /// Administratively kick a station (sends a deauthentication frame).
  void deauth_station(net::MacAddr sta, ReasonCode reason);

  void set_ds_handler(DsHandler handler) { ds_handler_ = std::move(handler); }
  void set_event_handler(EventHandler handler) { event_handler_ = std::move(handler); }

  void allow_mac(net::MacAddr mac) { config_.allowed_macs.push_back(mac); }

 private:
  struct WpaStation {
    WpaNonce anonce{};
    WpaPtk ptk;
    bool established = false;
    bool have_ptk = false;
    std::uint64_t tx_pn = 0;      ///< AP->STA packet numbers (even)
    std::uint64_t rx_pn_max = 0;  ///< highest STA->AP pn accepted
    unsigned retries = 0;
    sim::TimerHandle retry_timer;
  };

  void on_receive(util::ByteView raw, const phy::RxInfo& info);
  void handle_probe_req(const FrameView& frame);
  void handle_auth(const FrameView& frame);
  void handle_assoc_req(const FrameView& frame);
  void handle_data(const FrameView& frame);
  void handle_deauth(const FrameView& frame);
  void start_wpa_handshake(net::MacAddr sta);
  /// EAPOL frames are unacknowledged; the authenticator retransmits the
  /// current message (M1 or M3) until the next one arrives or it gives up.
  void schedule_eapol_retry(net::MacAddr sta);
  void send_m3(net::MacAddr sta, WpaStation& state);
  /// PMK for a station under the configured mode; nullopt if unknown
  /// client in kEap mode.
  [[nodiscard]] std::optional<util::Bytes> pmk_for(net::MacAddr sta) const;
  void handle_eapol(net::MacAddr sta, util::ByteView payload);
  void send_eapol(net::MacAddr sta, const WpaHandshakeFrame& frame);

  void send_mgmt(MgmtSubtype subtype, net::MacAddr dst, util::Bytes body);
  /// Serialize into a pooled buffer and hand it to the radio.
  void transmit_frame(const Frame& frame);
  void send_beacon();
  /// Encrypt (if privacy) and transmit a from-DS data frame.
  void send_data_frame(net::MacAddr dst, net::MacAddr src, util::ByteView msdu);
  [[nodiscard]] bool mac_allowed(net::MacAddr mac) const;
  void trace(std::string_view message,
             sim::Severity severity = sim::Severity::kInfo);

  sim::Simulator& sim_;
  ApConfig config_;
  phy::Radio radio_;
  sim::Trace* trace_ = nullptr;
  sim::TagId trace_tag_ = 0;

  bool running_ = false;
  sim::TimerHandle beacon_timer_;
  std::uint16_t tx_seq_ = 0;
  std::uint16_t next_aid_ = 1;
  std::optional<crypto::WepIvGenerator> iv_gen_;

  std::unordered_set<net::MacAddr> authenticated_;
  std::unordered_map<net::MacAddr, util::Bytes> pending_challenges_;
  std::unordered_map<net::MacAddr, std::uint16_t> associated_;  // MAC -> AID

  // WPA-PSK state.
  util::Bytes pmk_;
  util::Bytes gtk_;              ///< group key (broadcast frames)
  std::uint64_t gtk_tx_pn_ = 0;
  std::unordered_map<net::MacAddr, WpaStation> wpa_;

  DsHandler ds_handler_;
  EventHandler event_handler_;
  ApCounters counters_;

  // Shared per-simulation stats (all APs aggregate into the same slots).
  obs::CounterId stat_rx_mgmt_;
  obs::CounterId stat_rx_data_;
  obs::CounterId stat_rx_retry_;
  obs::CounterId stat_deauth_rx_;
  obs::CounterId stat_deauth_tx_;
  obs::CounterId stat_beacons_;
  obs::Profiler::ScopeId rx_scope_;
  obs::TraceNameId trace_auth_;
  obs::TraceNameId trace_assoc_;
  obs::TraceNameId trace_assoc_reject_;
  obs::TraceNameId trace_deauth_rx_;
  obs::TraceNameId trace_deauth_tx_;
  obs::TraceNameId trace_wpa_span_;
  obs::TraceNameId trace_wpa_m2_;
  obs::TraceNameId trace_wpa_m3_;
};

}  // namespace rogue::dot11
