#include "dot11/wpa.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rogue::dot11 {

util::Bytes wpa_pmk(util::ByteView psk, std::string_view ssid) {
  util::Bytes label = util::to_bytes("pmk");
  util::append(label, util::to_bytes(ssid));
  const crypto::Sha256Digest d = crypto::hmac_sha256(psk, label);
  return util::Bytes(d.begin(), d.end());
}

WpaPtk wpa_ptk(util::ByteView pmk, net::MacAddr ap, net::MacAddr sta,
               const WpaNonce& anonce, const WpaNonce& snonce) {
  // Order-normalize MACs and nonces (as 802.11i does) so both ends agree.
  util::Bytes seed = util::to_bytes("pairwise key expansion");
  const net::MacAddr mac_lo = std::min(ap, sta);
  const net::MacAddr mac_hi = std::max(ap, sta);
  util::append(seed, util::ByteView(mac_lo.octets().data(), 6));
  util::append(seed, util::ByteView(mac_hi.octets().data(), 6));
  const bool a_lo = std::lexicographical_compare(anonce.begin(), anonce.end(),
                                                 snonce.begin(), snonce.end());
  const WpaNonce& n_lo = a_lo ? anonce : snonce;
  const WpaNonce& n_hi = a_lo ? snonce : anonce;
  util::append(seed, util::ByteView(n_lo.data(), n_lo.size()));
  util::append(seed, util::ByteView(n_hi.data(), n_hi.size()));

  const crypto::Sha256Digest prk = crypto::hmac_sha256(pmk, seed);
  const util::Bytes material =
      crypto::kdf_expand(util::ByteView(prk.data(), prk.size()),
                         util::to_bytes("ptk"), kKckLen + crypto::kAeadKeyLen);
  WpaPtk ptk;
  ptk.kck.assign(material.begin(), material.begin() + kKckLen);
  ptk.aead_key.assign(material.begin() + kKckLen, material.end());
  return ptk;
}

util::Bytes WpaHandshakeFrame::encode() const {
  util::Bytes out;
  util::ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(msg));
  w.raw(util::ByteView(nonce.data(), nonce.size()));
  w.u16be(static_cast<std::uint16_t>(sealed_gtk.size()));
  w.raw(sealed_gtk);
  w.raw(util::ByteView(mic.data(), mic.size()));
  return out;
}

std::optional<WpaHandshakeFrame> WpaHandshakeFrame::decode(util::ByteView raw) {
  util::ByteReader r(raw);
  WpaHandshakeFrame f;
  const std::uint8_t m = r.u8();
  if (m < 1 || m > 4) return std::nullopt;
  f.msg = static_cast<WpaMsg>(m);
  const util::ByteView nonce = r.raw(kNonceLen);
  const std::uint16_t gtk_len = r.u16be();
  const util::ByteView gtk = r.raw(gtk_len);
  const util::ByteView mic = r.raw(kMicLen);
  if (!r.ok()) return std::nullopt;
  std::copy(nonce.begin(), nonce.end(), f.nonce.begin());
  f.sealed_gtk.assign(gtk.begin(), gtk.end());
  std::copy(mic.begin(), mic.end(), f.mic.begin());
  return f;
}

std::array<std::uint8_t, kMicLen> WpaHandshakeFrame::compute_mic(
    util::ByteView kck) const {
  WpaHandshakeFrame zeroed = *this;
  zeroed.mic.fill(0);
  const crypto::Sha256Digest d = crypto::hmac_sha256(kck, zeroed.encode());
  std::array<std::uint8_t, kMicLen> out{};
  std::copy(d.begin(), d.begin() + kMicLen, out.begin());
  return out;
}

void WpaHandshakeFrame::sign(util::ByteView kck) { mic = compute_mic(kck); }

bool WpaHandshakeFrame::verify(util::ByteView kck) const {
  const auto expected = compute_mic(kck);
  return util::equal_ct(util::ByteView(expected.data(), expected.size()),
                        util::ByteView(mic.data(), mic.size()));
}

util::Bytes wpa_protect(util::ByteView aead_key, std::uint64_t pn,
                        util::ByteView msdu) {
  util::Bytes out;
  util::ByteWriter w(out);
  w.u64be(pn);
  const util::Bytes sealed = crypto::aead_seal(aead_key, pn, {}, msdu);
  w.raw(sealed);
  return out;
}

std::optional<WpaOpened> wpa_open(util::ByteView aead_key, util::ByteView body) {
  if (body.size() < 8 + crypto::kAeadTagLen) return std::nullopt;
  util::ByteReader r(body);
  const std::uint64_t pn = r.u64be();
  const auto opened = crypto::aead_open(aead_key, pn, {}, r.take_rest());
  if (!opened) return std::nullopt;
  return WpaOpened{pn, *opened};
}

WpaPassiveDecryptor::WpaPassiveDecryptor(util::ByteView psk, std::string_view ssid)
    : pmk_(wpa_pmk(psk, ssid)) {}

void WpaPassiveDecryptor::observe_handshake(net::MacAddr ap, net::MacAddr sta,
                                            const WpaHandshakeFrame& frame) {
  auto& obs = observed_[{ap, sta}];
  if (frame.msg == WpaMsg::kM1) obs.anonce = frame.nonce;
  if (frame.msg == WpaMsg::kM2) obs.snonce = frame.nonce;
}

std::optional<WpaPtk> WpaPassiveDecryptor::ptk_for(net::MacAddr ap,
                                                   net::MacAddr sta) const {
  const auto it = observed_.find({ap, sta});
  if (it == observed_.end() || !it->second.anonce || !it->second.snonce) {
    return std::nullopt;
  }
  return wpa_ptk(pmk_, ap, sta, *it->second.anonce, *it->second.snonce);
}

std::optional<WpaOpened> WpaPassiveDecryptor::decrypt(net::MacAddr ap,
                                                      net::MacAddr sta,
                                                      util::ByteView body) const {
  const auto ptk = ptk_for(ap, sta);
  if (!ptk) return std::nullopt;
  return wpa_open(ptk->aead_key, body);
}

std::size_t WpaPassiveDecryptor::sessions_recovered() const {
  std::size_t n = 0;
  for (const auto& [pair, obs] : observed_) {
    if (obs.anonce && obs.snonce) ++n;
  }
  return n;
}

}  // namespace rogue::dot11
