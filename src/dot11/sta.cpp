#include "dot11/sta.hpp"

#include "util/fmt.hpp"

#include "util/assert.hpp"

namespace rogue::dot11 {

Station::Station(sim::Simulator& simulator, phy::Medium& medium,
                 StationConfig config, sim::Trace* trace)
    : sim_(simulator),
      config_(std::move(config)),
      radio_(medium, "sta:" + config_.mac.to_string()),
      trace_(trace) {
  if (trace_ != nullptr) trace_tag_ = trace_->intern(radio_.name());
  if (config_.security == SecurityMode::kOpen && config_.use_wep) {
    config_.security = SecurityMode::kWep;
  }
  if (config_.security == SecurityMode::kWep) {
    config_.use_wep = true;
    ROGUE_ASSERT_MSG(config_.wep_key.size() == crypto::kWep40KeyLen ||
                         config_.wep_key.size() == crypto::kWep104KeyLen,
                     "WEP enabled but key is not 5/13 bytes");
    iv_gen_.emplace(config_.iv_policy, config_.wep_key.size(), sim_.rng().next());
  } else if (config_.security == SecurityMode::kWpaPsk ||
             config_.security == SecurityMode::kEap) {
    ROGUE_ASSERT_MSG(!config_.wpa_psk.empty(), "WPA/EAP mode needs a credential");
    pmk_ = wpa_pmk(config_.wpa_psk, config_.target_ssid);
  }
  ROGUE_ASSERT_MSG(!config_.scan_channels.empty(), "station needs scan channels");
  radio_.set_receive_handler(
      [this](util::ByteView raw, const phy::RxInfo& info) { on_receive(raw, info); });

  obs::StatsRegistry& stats = sim_.stats();
  stat_rx_mgmt_ = stats.counter("dot11.sta.rx_mgmt");
  stat_rx_data_ = stats.counter("dot11.sta.rx_data");
  stat_rx_retry_ = stats.counter("dot11.sta.rx_retry");
  stat_deauth_rx_ = stats.counter("dot11.sta.deauth_rx");
  stat_scans_ = stats.counter("dot11.sta.scans");
  stat_assocs_ = stats.counter("dot11.sta.associations");
  rx_scope_ = sim_.profiler().intern("dot11.sta.rx");
  obs::Tracer& tracer = sim_.tracer();
  trace_scan_ = tracer.name("dot11.scan-start");
  trace_associated_ = tracer.name("dot11.associated");
  trace_disconnect_ = tracer.name("dot11.disconnect");
  trace_deauth_rx_ = tracer.name("dot11.deauth-rx");
  trace_wpa_m1_ = tracer.name("dot11.wpa.m1");
  trace_wpa_up_ = tracer.name("dot11.wpa-up");
}

void Station::start() {
  if (running_) return;
  running_ = true;
  // Random start offset: the medium has no CSMA backoff, so simultaneous
  // stations would otherwise collide deterministically forever.
  scan_timer_ = sim_.after(sim_.rng().uniform_u64(0, 50'000), [this] { begin_scan(); });
}

void Station::stop() {
  running_ = false;
  sim_.cancel(scan_timer_);
  sim_.cancel(join_timer_);
  sim_.cancel(beacon_watchdog_);
  state_ = StationState::kIdle;
}

void Station::trace(std::string_view message, sim::Severity severity) {
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), trace_tag_, message, severity);
  }
}

void Station::transmit_frame(const Frame& frame) {
  util::Bytes raw = radio_.acquire_buffer(24 + frame.body.size());
  frame.serialize_into(raw);
  radio_.transmit(std::move(raw));
}

void Station::send_mgmt(MgmtSubtype subtype, net::MacAddr dst, util::Bytes body,
                        bool protect) {
  Frame f;
  f.type = FrameType::kManagement;
  f.subtype = static_cast<std::uint8_t>(subtype);
  f.addr1 = dst;
  f.addr2 = config_.mac;
  f.addr3 = dst;
  f.sequence = tx_seq_++;
  tx_seq_ &= 0x0fff;
  if (protect) {
    ROGUE_ASSERT(config_.use_wep);
    f.protected_frame = true;
    f.body = crypto::wep_encrypt(iv_gen_->next(), config_.wep_key, body);
  } else {
    f.body = std::move(body);
  }
  transmit_frame(f);
}

// ---- Scanning -------------------------------------------------------------

void Station::begin_scan() {
  if (!running_) return;
  state_ = StationState::kScanning;
  ++counters_.scans;
  sim_.stats().add(stat_scans_);
  scan_results_.clear();
  scan_channel_index_ = 0;
  sim_.tracer().instant(trace_scan_, radio_.trace_actor(),
                        obs::TraceLayer::kDot11);
  trace("scan-start", sim::Severity::kDebug);
  radio_.set_channel(config_.scan_channels[0]);
  scan_timer_ = sim_.after(config_.scan_dwell, [this] { scan_next_channel(); });
}

void Station::scan_next_channel() {
  if (!running_ || state_ != StationState::kScanning) return;
  ++scan_channel_index_;
  if (scan_channel_index_ >= config_.scan_channels.size()) {
    finish_scan();
    return;
  }
  radio_.set_channel(config_.scan_channels[scan_channel_index_]);
  scan_timer_ = sim_.after(config_.scan_dwell, [this] { scan_next_channel(); });
}

void Station::finish_scan() {
  const auto candidate = pick_candidate();
  if (!candidate) {
    trace("scan-empty", sim::Severity::kDebug);
    scan_timer_ = sim_.after(next_rescan_delay(), [this] { begin_scan(); });
    return;
  }
  begin_join(*candidate);
}

sim::Time Station::next_rescan_delay() {
  // Exponential backoff with jitter: a station whose network has vanished
  // (AP outage, deauth storm) must not hammer the channel at a fixed
  // cadence — and synchronized victims would rescan in lockstep forever.
  const unsigned shift = std::min(failed_cycles_, 8u);
  const sim::Time base = std::min(config_.rescan_delay << shift,
                                  std::max(config_.rescan_delay,
                                           config_.rescan_backoff_max));
  ++failed_cycles_;
  if (base > config_.rescan_delay) ++counters_.scan_backoffs;
  return base + sim_.rng().uniform_u64(0, base / 2);
}

std::optional<BssInfo> Station::pick_candidate() {
  // Age out expired blocklist entries.
  std::erase_if(bss_blocklist_,
                [this](const auto& e) { return e.second <= sim_.now(); });
  std::vector<const BssInfo*> matching;
  for (const auto& [key, bss] : scan_results_) {
    if (bss.ssid != config_.target_ssid) continue;
    const bool wants_privacy = config_.security != SecurityMode::kOpen;
    if (bss.privacy != wants_privacy) continue;
    if (bss_blocklist_.contains({bss.bssid, bss.channel})) continue;
    matching.push_back(&bss);
  }
  if (matching.empty()) return std::nullopt;

  switch (config_.join_policy) {
    case JoinPolicy::kBestRssi: {
      const BssInfo* best = matching.front();
      for (const BssInfo* b : matching) {
        if (b->rssi_dbm > best->rssi_dbm) best = b;
      }
      return *best;
    }
    case JoinPolicy::kFirstHeard:
      return *matching.front();  // map order: lowest BSSID; stable stand-in
    case JoinPolicy::kRandom:
      return *matching[sim_.rng().uniform_u32(static_cast<std::uint32_t>(matching.size()))];
  }
  return *matching.front();
}

// ---- Joining ----------------------------------------------------------------

void Station::begin_join(const BssInfo& bss) {
  current_bss_ = bss;
  join_retries_ = 0;
  radio_.set_channel(bss.channel);
  trace(util::format("join {} ch={} rssi={}", bss.bssid.to_string(),
                     static_cast<int>(bss.channel), bss.rssi_dbm));
  send_auth_request();
}

void Station::send_auth_request() {
  state_ = StationState::kAuthenticating;
  AuthBody auth;
  auth.algorithm = config_.auth_algorithm;
  auth.transaction_seq = 1;
  send_mgmt(MgmtSubtype::kAuth, current_bss_.bssid, auth.encode());
  sim_.cancel(join_timer_);
  // Jittered timeout: desynchronizes retries of colliding stations.
  join_timer_ = sim_.after(config_.response_timeout + sim_.rng().uniform_u64(0, 10'000),
                           [this] { on_join_timeout(); });
}

void Station::send_assoc_request() {
  state_ = StationState::kAssociating;
  AssocReqBody req;
  req.capability =
      kCapEss | (config_.security != SecurityMode::kOpen ? kCapPrivacy : 0);
  req.ssid = config_.target_ssid;
  send_mgmt(MgmtSubtype::kAssocReq, current_bss_.bssid, req.encode());
  sim_.cancel(join_timer_);
  join_timer_ = sim_.after(config_.response_timeout, [this] { on_join_timeout(); });
}

void Station::on_join_timeout() {
  if (state_ != StationState::kAuthenticating && state_ != StationState::kAssociating) {
    return;
  }
  if (++join_retries_ < config_.max_join_retries) {
    send_auth_request();
    return;
  }
  trace("join-failed", sim::Severity::kWarn);
  scan_timer_ = sim_.after(next_rescan_delay(), [this] { begin_scan(); });
  state_ = StationState::kScanning;
}

void Station::become_associated() {
  sim_.cancel(join_timer_);
  state_ = StationState::kAssociated;
  failed_cycles_ = 0;
  wpa_established_ = false;
  m1_seen_ = false;
  wpa_rx_pn_max_ = 0;
  gtk_rx_pn_max_ = 0;
  wpa_tx_pn_ = 1;
  ++counters_.associations;
  sim_.stats().add(stat_assocs_);
  last_beacon_time_ = sim_.now();
  arm_beacon_watchdog();
  if (wpa_like()) arm_wpa_watchdog();
  sim_.tracer().instant(trace_associated_, radio_.trace_actor(),
                        obs::TraceLayer::kDot11, 0,
                        current_bss_.bssid.to_u64());
  trace(util::format("associated {}", current_bss_.bssid.to_string()));
  if (event_handler_) event_handler_("assoc", current_bss_);
}

void Station::arm_wpa_watchdog() {
  sim_.cancel(wpa_watchdog_);
  wpa_watchdog_ = sim_.after(config_.wpa_handshake_timeout, [this] {
    if (state_ != StationState::kAssociated || wpa_established_) return;
    // The network never proved key knowledge: treat this BSS as bogus for
    // a while (so a rogue that cannot finish the handshake loses us to
    // the legitimate AP instead of holding us in limbo).
    bss_blocklist_[{current_bss_.bssid, current_bss_.channel}] =
        sim_.now() + config_.bss_blocklist_duration;
    if (event_handler_) event_handler_("wpa-timeout", current_bss_);
    disconnect("wpa-timeout");
  });
}

void Station::disconnect(std::string_view why) {
  sim_.cancel(beacon_watchdog_);
  sim_.cancel(join_timer_);
  sim_.cancel(wpa_watchdog_);
  sim_.tracer().instant(trace_disconnect_, radio_.trace_actor(),
                        obs::TraceLayer::kDot11);
  trace(util::format("disconnect ({})", why), sim::Severity::kWarn);
  state_ = StationState::kIdle;
  if (running_) {
    scan_timer_ = sim_.after(next_rescan_delay(), [this] { begin_scan(); });
  }
}

void Station::arm_beacon_watchdog() {
  sim_.cancel(beacon_watchdog_);
  const sim::Time interval = 102'400;  // assume standard 100 TU beacons
  const sim::Time deadline = interval * config_.beacon_loss_intervals;
  beacon_watchdog_ = sim_.after(deadline, [this] {
    if (state_ != StationState::kAssociated) return;
    ++counters_.beacon_losses;
    if (event_handler_) event_handler_("beacon-loss", current_bss_);
    disconnect("beacon-loss");
  });
}

// ---- Receive path -----------------------------------------------------------

void Station::on_receive(util::ByteView raw, const phy::RxInfo& info) {
  if (!running_) return;
  const obs::Profiler::Scope scope(sim_.profiler(), rx_scope_);
  const auto frame = FrameView::parse(raw);
  if (!frame) return;
  obs::StatsRegistry& stats = sim_.stats();
  stats.add(frame->type == FrameType::kData ? stat_rx_data_ : stat_rx_mgmt_);
  if (frame->retry) stats.add(stat_rx_retry_);

  if (frame->is_mgmt(MgmtSubtype::kBeacon) || frame->is_mgmt(MgmtSubtype::kProbeResp)) {
    handle_beacon(*frame, info);
    return;
  }

  // Everything else must be addressed to us.
  if (frame->addr1 != config_.mac && !frame->addr1.is_broadcast()) return;

  if (frame->is_mgmt(MgmtSubtype::kAuth)) {
    handle_auth_resp(*frame);
  } else if (frame->is_mgmt(MgmtSubtype::kAssocResp)) {
    handle_assoc_resp(*frame);
  } else if (frame->is_mgmt(MgmtSubtype::kDeauth) ||
             frame->is_mgmt(MgmtSubtype::kDisassoc)) {
    handle_deauth(*frame);
  } else if (frame->is_data() && frame->from_ds && !frame->to_ds) {
    handle_data(*frame);
  }
}

void Station::handle_beacon(const FrameView& frame, const phy::RxInfo& info) {
  const auto beacon = BeaconBody::decode(frame.body);
  if (!beacon) return;

  if (state_ == StationState::kScanning) {
    auto& entry = scan_results_[{frame.addr2, beacon->channel}];
    if (entry.ssid.empty() || info.rssi_dbm > entry.rssi_dbm) {
      entry.ssid = beacon->ssid;
      entry.bssid = frame.addr2;
      entry.channel = beacon->channel;
      entry.privacy = beacon->privacy();
      entry.rssi_dbm = std::max(entry.rssi_dbm, info.rssi_dbm);
      entry.last_seq = frame.sequence;
    }
    return;
  }

  if (state_ == StationState::kAssociated && frame.addr2 == current_bss_.bssid) {
    last_beacon_time_ = sim_.now();
    arm_beacon_watchdog();
  }
}

void Station::handle_auth_resp(const FrameView& frame) {
  if (state_ != StationState::kAuthenticating) return;
  if (frame.addr2 != current_bss_.bssid) return;
  const auto auth = AuthBody::decode(frame.body);
  if (!auth) return;

  if (auth->status != StatusCode::kSuccess) {
    trace("auth-rejected", sim::Severity::kWarn);
    on_join_timeout();
    return;
  }

  if (config_.auth_algorithm == AuthAlgorithm::kOpenSystem) {
    if (auth->transaction_seq == 2) send_assoc_request();
    return;
  }

  // Shared key: transaction 2 carries the challenge; echo it encrypted.
  if (auth->transaction_seq == 2 && !auth->challenge.empty()) {
    AuthBody reply;
    reply.algorithm = AuthAlgorithm::kSharedKey;
    reply.transaction_seq = 3;
    reply.challenge = auth->challenge;
    send_mgmt(MgmtSubtype::kAuth, current_bss_.bssid, reply.encode(), /*protect=*/true);
    return;
  }
  if (auth->transaction_seq == 4) {
    send_assoc_request();
  }
}

void Station::handle_assoc_resp(const FrameView& frame) {
  if (state_ != StationState::kAssociating) return;
  if (frame.addr2 != current_bss_.bssid) return;
  const auto resp = AssocRespBody::decode(frame.body);
  if (!resp) return;
  if (resp->status != StatusCode::kSuccess) {
    trace("assoc-rejected", sim::Severity::kWarn);
    on_join_timeout();
    return;
  }
  become_associated();
}

void Station::handle_deauth(const FrameView& frame) {
  // Note: no authentication of deauth frames in 802.11-1999 — anyone who
  // can forge addr2 == BSSID can kick us off (used by attack/deauth).
  if (state_ == StationState::kIdle || state_ == StationState::kScanning) return;
  if (frame.addr2 != current_bss_.bssid) return;
  ++counters_.deauths_received;
  sim_.stats().add(stat_deauth_rx_);
  sim_.tracer().instant(trace_deauth_rx_, radio_.trace_actor(),
                        obs::TraceLayer::kDot11);
  if (event_handler_) event_handler_("deauth", current_bss_);
  disconnect("deauth");
}

void Station::handle_data(const FrameView& frame) {
  if (state_ != StationState::kAssociated) return;
  if (frame.addr2 != current_bss_.bssid) return;

  util::Bytes decrypted;  // owns the plaintext on the WEP/WPA paths
  util::ByteView msdu;    // open mode views the frame body directly
  switch (config_.security) {
    case SecurityMode::kWep: {
      if (!frame.protected_frame) return;
      auto dec = crypto::wep_decrypt(frame.body, config_.wep_key);
      if (!dec) {
        ++counters_.wep_icv_failures;
        return;
      }
      decrypted = std::move(dec->plaintext);
      msdu = decrypted;
      break;
    }
    case SecurityMode::kEap:
    case SecurityMode::kWpaPsk: {
      if (!frame.protected_frame) {
        const auto llc_clear = llc_decode(frame.body);
        if (llc_clear && llc_clear->ethertype == kEtherTypeEapol) {
          handle_eapol(llc_clear->payload);
        }
        return;
      }
      if (!wpa_established_) return;
      const bool group = frame.addr1.is_broadcast() || frame.addr1.is_multicast();
      auto opened =
          wpa_open(group ? util::ByteView(gtk_) : util::ByteView(ptk_.aead_key),
                   frame.body);
      if (!opened) {
        ++counters_.wpa_open_failures;
        return;
      }
      std::uint64_t& high_water = group ? gtk_rx_pn_max_ : wpa_rx_pn_max_;
      if ((opened->pn & 1) != 0 || opened->pn <= high_water) {
        ++counters_.wpa_replays_dropped;  // AP pns are even + increasing
        return;
      }
      high_water = opened->pn;
      decrypted = std::move(opened->msdu);
      msdu = decrypted;
      break;
    }
    case SecurityMode::kOpen: {
      if (frame.protected_frame) return;
      msdu = frame.body;
      break;
    }
  }

  const auto llc = llc_decode(msdu);
  if (!llc) return;
  ++counters_.data_received;
  if (rx_handler_) {
    rx_handler_(frame.addr3, frame.addr1, llc->ethertype, llc->payload);
  }
}

bool Station::send(net::MacAddr dst, std::uint16_t ethertype, util::ByteView payload) {
  if (!ready()) return false;
  Frame f;
  f.type = FrameType::kData;
  f.subtype = 0;
  f.to_ds = true;
  f.addr1 = current_bss_.bssid;
  f.addr2 = config_.mac;
  f.addr3 = dst;
  f.sequence = tx_seq_++;
  tx_seq_ &= 0x0fff;
  const util::Bytes msdu = llc_encode(ethertype, payload);
  switch (config_.security) {
    case SecurityMode::kWep:
      f.protected_frame = true;
      f.body = crypto::wep_encrypt(iv_gen_->next(), config_.wep_key, msdu);
      break;
    case SecurityMode::kEap:
    case SecurityMode::kWpaPsk:
      f.protected_frame = true;
      f.body = wpa_protect(ptk_.aead_key, wpa_tx_pn_, msdu);
      wpa_tx_pn_ += 2;
      break;
    case SecurityMode::kOpen:
      f.body = msdu;
      break;
  }
  transmit_frame(f);
  ++counters_.data_sent;
  return true;
}

void Station::send_eapol(const WpaHandshakeFrame& hs) {
  Frame f;
  f.type = FrameType::kData;
  f.to_ds = true;
  f.addr1 = current_bss_.bssid;
  f.addr2 = config_.mac;
  f.addr3 = current_bss_.bssid;
  f.sequence = tx_seq_++;
  tx_seq_ &= 0x0fff;
  f.body = llc_encode(kEtherTypeEapol, hs.encode());
  transmit_frame(f);
}

void Station::handle_eapol(util::ByteView payload) {
  if (state_ != StationState::kAssociated) return;
  const auto hs = WpaHandshakeFrame::decode(payload);
  if (!hs) return;

  if (hs->msg == WpaMsg::kM1) {
    // Idempotent per anonce: an EAPOL retry must not change our snonce,
    // or the authenticator's PTK (derived from our first M2) desyncs.
    if (!m1_seen_ || hs->nonce != last_anonce_) {
      m1_seen_ = true;
      last_anonce_ = hs->nonce;
      sim_.rng().fill(snonce_);
      ptk_ = wpa_ptk(pmk_, current_bss_.bssid, config_.mac, hs->nonce, snonce_);
    }
    sim_.tracer().instant(trace_wpa_m1_, radio_.trace_actor(),
                          obs::TraceLayer::kDot11);
    WpaHandshakeFrame m2;
    m2.msg = WpaMsg::kM2;
    m2.nonce = snonce_;
    m2.sign(ptk_.kck);
    send_eapol(m2);
    return;
  }
  if (hs->msg == WpaMsg::kM3) {
    if (ptk_.kck.empty() || !hs->verify(ptk_.kck)) {
      trace("wpa-m3-bad-mic", sim::Severity::kWarn);  // wrong PSK on the AP side: abort
      return;
    }
    const auto gtk = crypto::aead_open(ptk_.aead_key, /*seq=*/0,
                                       util::to_bytes("gtk"), hs->sealed_gtk);
    if (!gtk) return;
    gtk_ = *gtk;
    WpaHandshakeFrame m4;
    m4.msg = WpaMsg::kM4;
    m4.sign(ptk_.kck);
    send_eapol(m4);
    wpa_established_ = true;
    sim_.cancel(wpa_watchdog_);
    sim_.tracer().instant(trace_wpa_up_, radio_.trace_actor(),
                          obs::TraceLayer::kDot11);
    trace("wpa-up");
    if (event_handler_) event_handler_("wpa-up", current_bss_);
  }
}

}  // namespace rogue::dot11
