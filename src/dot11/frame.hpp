// 802.11 MAC frame formats (management + data subset used by 802.11b
// infrastructure networks), with real byte-level serialization so that
// monitor-mode sniffers, WEP, and the FMS attack all operate on genuine
// wire bytes rather than structs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace rogue::dot11 {

enum class FrameType : std::uint8_t { kManagement = 0, kControl = 1, kData = 2 };

/// Management subtypes (802.11-1999 table 1).
enum class MgmtSubtype : std::uint8_t {
  kAssocReq = 0,
  kAssocResp = 1,
  kProbeReq = 4,
  kProbeResp = 5,
  kBeacon = 8,
  kDisassoc = 10,
  kAuth = 11,
  kDeauth = 12,
};

/// 802.11 reason codes (subset).
enum class ReasonCode : std::uint16_t {
  kUnspecified = 1,
  kPrevAuthExpired = 2,
  kDeauthLeaving = 3,
  kDisassocInactivity = 4,
};

/// 802.11 status codes (subset).
enum class StatusCode : std::uint16_t {
  kSuccess = 0,
  kUnspecifiedFailure = 1,
  kChallengeFailure = 15,
  kAssocDeniedUnspec = 17,
};

enum class AuthAlgorithm : std::uint16_t { kOpenSystem = 0, kSharedKey = 1 };

/// Link-layer protection deployed in a BSS. kWep is the paper's setting;
/// kWpaPsk models the §2.2 "interim solution" (WPA with a pre-shared
/// key) — stronger crypto, same fundamental flaw: every key holder can
/// impersonate the network.
/// kEap models 802.1X-style per-client credentials on top of the WPA
/// machinery: the PMK derives from a per-station key the authenticator
/// looks up, so completing the 4-way handshake proves the *network* knows
/// this client's secret — the mutual authentication whose absence (§3.1)
/// enables the whole rogue-AP attack class.
enum class SecurityMode : std::uint8_t { kOpen, kWep, kWpaPsk, kEap };

/// Parsed MAC header + body. Address semantics (infrastructure mode):
///   to-DS   (STA->AP):  addr1=BSSID, addr2=source STA, addr3=final dest
///   from-DS (AP->STA):  addr1=dest STA, addr2=BSSID, addr3=original src
///   management:         addr1=dest, addr2=source, addr3=BSSID
struct Frame {
  FrameType type = FrameType::kManagement;
  std::uint8_t subtype = 0;
  bool to_ds = false;
  bool from_ds = false;
  bool retry = false;
  bool protected_frame = false;  ///< WEP bit; body is WEP-encapsulated

  net::MacAddr addr1;
  net::MacAddr addr2;
  net::MacAddr addr3;

  std::uint16_t sequence = 0;  ///< 12-bit sequence number
  std::uint8_t fragment = 0;   ///< 4-bit fragment number

  util::Bytes body;

  [[nodiscard]] MgmtSubtype mgmt_subtype() const {
    return static_cast<MgmtSubtype>(subtype);
  }
  [[nodiscard]] bool is_mgmt(MgmtSubtype s) const {
    return type == FrameType::kManagement && mgmt_subtype() == s;
  }
  [[nodiscard]] bool is_data() const { return type == FrameType::kData; }

  [[nodiscard]] util::Bytes serialize() const;
  /// serialize() into a caller-provided (typically pooled) buffer; `out`
  /// is cleared first and its capacity reused.
  void serialize_into(util::Bytes& out) const;
  [[nodiscard]] static std::optional<Frame> parse(util::ByteView raw);
};

/// Non-owning variant of Frame for rx hot paths: header fields are
/// decoded, `body` views the delivered buffer. Valid only while that
/// buffer lives — copy (to_frame / explicit assign) at ownership
/// boundaries such as queues.
struct FrameView {
  FrameType type = FrameType::kManagement;
  std::uint8_t subtype = 0;
  bool to_ds = false;
  bool from_ds = false;
  bool retry = false;
  bool protected_frame = false;

  net::MacAddr addr1;
  net::MacAddr addr2;
  net::MacAddr addr3;

  std::uint16_t sequence = 0;
  std::uint8_t fragment = 0;

  util::ByteView body;

  [[nodiscard]] MgmtSubtype mgmt_subtype() const {
    return static_cast<MgmtSubtype>(subtype);
  }
  [[nodiscard]] bool is_mgmt(MgmtSubtype s) const {
    return type == FrameType::kManagement && mgmt_subtype() == s;
  }
  [[nodiscard]] bool is_data() const { return type == FrameType::kData; }

  /// Owning copy (the body is materialised).
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static std::optional<FrameView> parse(util::ByteView raw);
};

// ---- Management frame bodies -------------------------------------------

/// Capability bits (subset): privacy == WEP required.
inline constexpr std::uint16_t kCapEss = 0x0001;
inline constexpr std::uint16_t kCapPrivacy = 0x0010;

/// Information element ids (subset).
inline constexpr std::uint8_t kIeSsid = 0;
inline constexpr std::uint8_t kIeDsParam = 3;
inline constexpr std::uint8_t kIeChallenge = 16;

struct BeaconBody {  // also used for probe responses
  std::uint64_t timestamp = 0;
  std::uint16_t beacon_interval_tu = 100;
  std::uint16_t capability = kCapEss;
  std::string ssid;
  std::uint8_t channel = 1;

  [[nodiscard]] bool privacy() const { return (capability & kCapPrivacy) != 0; }
  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static std::optional<BeaconBody> decode(util::ByteView body);
};

struct ProbeReqBody {
  std::string ssid;  ///< empty == wildcard probe

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static std::optional<ProbeReqBody> decode(util::ByteView body);
};

struct AuthBody {
  AuthAlgorithm algorithm = AuthAlgorithm::kOpenSystem;
  std::uint16_t transaction_seq = 1;
  StatusCode status = StatusCode::kSuccess;
  util::Bytes challenge;  ///< present in shared-key transactions 2 and 3

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static std::optional<AuthBody> decode(util::ByteView body);
};

struct AssocReqBody {
  std::uint16_t capability = kCapEss;
  std::string ssid;

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static std::optional<AssocReqBody> decode(util::ByteView body);
};

struct AssocRespBody {
  std::uint16_t capability = kCapEss;
  StatusCode status = StatusCode::kSuccess;
  std::uint16_t association_id = 0;

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static std::optional<AssocRespBody> decode(util::ByteView body);
};

struct DeauthBody {  // also disassociation
  ReasonCode reason = ReasonCode::kUnspecified;

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static std::optional<DeauthBody> decode(util::ByteView body);
};

// ---- Data frame payload (MSDU) -------------------------------------------

/// EtherTypes carried over LLC/SNAP.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;

/// LLC/SNAP header prepended to every data MSDU; its first byte (0xAA) is
/// the known plaintext the FMS attack relies on.
inline constexpr std::size_t kLlcSnapLen = 8;

/// ethertype + payload -> LLC/SNAP-encapsulated MSDU bytes.
[[nodiscard]] util::Bytes llc_encode(std::uint16_t ethertype, util::ByteView payload);

struct LlcPayload {
  std::uint16_t ethertype = 0;
  util::ByteView payload;  ///< view into the input buffer
};
[[nodiscard]] std::optional<LlcPayload> llc_decode(util::ByteView msdu);

}  // namespace rogue::dot11
