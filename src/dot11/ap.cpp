#include "dot11/ap.hpp"

#include "util/fmt.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace rogue::dot11 {

AccessPoint::AccessPoint(sim::Simulator& simulator, phy::Medium& medium,
                         ApConfig config, sim::Trace* trace)
    : sim_(simulator),
      config_(std::move(config)),
      radio_(medium, "ap:" + config_.bssid.to_string()),
      trace_(trace) {
  if (trace_ != nullptr) trace_tag_ = trace_->intern(radio_.name());
  // Back-compat: the legacy privacy flag means WEP.
  if (config_.security == SecurityMode::kOpen && config_.privacy) {
    config_.security = SecurityMode::kWep;
  }
  if (config_.security == SecurityMode::kWep) {
    config_.privacy = true;
    ROGUE_ASSERT_MSG(config_.wep_key.size() == crypto::kWep40KeyLen ||
                         config_.wep_key.size() == crypto::kWep104KeyLen,
                     "privacy enabled but WEP key is not 5/13 bytes");
    iv_gen_.emplace(config_.iv_policy, config_.wep_key.size(),
                    sim_.rng().next());
  } else if (config_.security == SecurityMode::kWpaPsk) {
    config_.privacy = true;  // advertise the privacy capability bit
    ROGUE_ASSERT_MSG(!config_.wpa_psk.empty(), "WPA mode needs a PSK");
    pmk_ = wpa_pmk(config_.wpa_psk, config_.ssid);
    gtk_.resize(crypto::kAeadKeyLen);
    sim_.rng().fill(gtk_);
  } else if (config_.security == SecurityMode::kEap) {
    config_.privacy = true;
    gtk_.resize(crypto::kAeadKeyLen);
    sim_.rng().fill(gtk_);
  }
  radio_.set_channel(config_.channel);
  radio_.set_receive_handler(
      [this](util::ByteView raw, const phy::RxInfo& info) { on_receive(raw, info); });

  obs::StatsRegistry& stats = sim_.stats();
  stat_rx_mgmt_ = stats.counter("dot11.ap.rx_mgmt");
  stat_rx_data_ = stats.counter("dot11.ap.rx_data");
  stat_rx_retry_ = stats.counter("dot11.ap.rx_retry");
  stat_deauth_rx_ = stats.counter("dot11.ap.deauth_rx");
  stat_deauth_tx_ = stats.counter("dot11.ap.deauth_tx");
  stat_beacons_ = stats.counter("dot11.ap.beacons_tx");
  rx_scope_ = sim_.profiler().intern("dot11.ap.rx");
  obs::Tracer& tracer = sim_.tracer();
  trace_auth_ = tracer.name("dot11.auth");
  trace_assoc_ = tracer.name("dot11.assoc");
  trace_assoc_reject_ = tracer.name("dot11.assoc-reject");
  trace_deauth_rx_ = tracer.name("dot11.deauth-rx");
  trace_deauth_tx_ = tracer.name("dot11.deauth-tx");
  trace_wpa_span_ = tracer.name("dot11.wpa");
  trace_wpa_m2_ = tracer.name("dot11.wpa.m2");
  trace_wpa_m3_ = tracer.name("dot11.wpa.m3");
}

void AccessPoint::start() {
  if (running_) return;
  running_ = true;
  send_beacon();
  beacon_timer_ = sim_.every(config_.beacon_interval, [this] { send_beacon(); });
}

void AccessPoint::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(beacon_timer_);
  authenticated_.clear();
  pending_challenges_.clear();
  associated_.clear();
}

bool AccessPoint::is_associated(net::MacAddr sta) const {
  return associated_.contains(sta);
}

bool AccessPoint::is_station_ready(net::MacAddr sta) const {
  if (!associated_.contains(sta)) return false;
  if (config_.security != SecurityMode::kWpaPsk &&
      config_.security != SecurityMode::kEap) {
    return true;
  }
  const auto it = wpa_.find(sta);
  return it != wpa_.end() && it->second.established;
}

std::optional<util::Bytes> AccessPoint::pmk_for(net::MacAddr sta) const {
  if (config_.security == SecurityMode::kWpaPsk) return pmk_;
  if (config_.security == SecurityMode::kEap) {
    for (const auto& [mac, key] : config_.eap_client_keys) {
      if (mac == sta) return wpa_pmk(key, config_.ssid);
    }
  }
  return std::nullopt;
}

std::vector<net::MacAddr> AccessPoint::associated_stations() const {
  std::vector<net::MacAddr> out;
  out.reserve(associated_.size());
  for (const auto& [mac, aid] : associated_) out.push_back(mac);
  return out;
}

void AccessPoint::trace(std::string_view message, sim::Severity severity) {
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), trace_tag_, message, severity);
  }
}

bool AccessPoint::mac_allowed(net::MacAddr mac) const {
  if (!config_.mac_filtering) return true;
  for (const auto& allowed : config_.allowed_macs) {
    if (allowed == mac) return true;
  }
  return false;
}

void AccessPoint::transmit_frame(const Frame& frame) {
  util::Bytes raw = radio_.acquire_buffer(24 + frame.body.size());
  frame.serialize_into(raw);
  radio_.transmit(std::move(raw));
}

void AccessPoint::send_mgmt(MgmtSubtype subtype, net::MacAddr dst, util::Bytes body) {
  Frame f;
  f.type = FrameType::kManagement;
  f.subtype = static_cast<std::uint8_t>(subtype);
  f.addr1 = dst;
  f.addr2 = config_.bssid;
  f.addr3 = config_.bssid;
  f.sequence = tx_seq_++;
  tx_seq_ &= 0x0fff;
  f.body = std::move(body);
  transmit_frame(f);
}

void AccessPoint::send_beacon() {
  if (!running_) return;
  BeaconBody b;
  b.timestamp = sim_.now();
  b.beacon_interval_tu =
      static_cast<std::uint16_t>(config_.beacon_interval / 1024);
  b.capability = kCapEss | (config_.privacy ? kCapPrivacy : 0);
  b.ssid = config_.ssid;
  b.channel = config_.channel;
  send_mgmt(MgmtSubtype::kBeacon, net::MacAddr::broadcast(), b.encode());
  ++counters_.beacons_sent;
  sim_.stats().add(stat_beacons_);
}

void AccessPoint::on_receive(util::ByteView raw, const phy::RxInfo& info) {
  (void)info;
  if (!running_) return;
  const obs::Profiler::Scope scope(sim_.profiler(), rx_scope_);
  const auto frame = FrameView::parse(raw);
  if (!frame) return;
  obs::StatsRegistry& stats = sim_.stats();
  stats.add(frame->type == FrameType::kData ? stat_rx_data_ : stat_rx_mgmt_);
  if (frame->retry) stats.add(stat_rx_retry_);
  // Only frames addressed to this BSS (or broadcast probes).
  if (frame->addr1 != config_.bssid && !frame->addr1.is_broadcast()) return;

  if (frame->type == FrameType::kManagement) {
    switch (frame->mgmt_subtype()) {
      case MgmtSubtype::kProbeReq: handle_probe_req(*frame); break;
      case MgmtSubtype::kAuth: handle_auth(*frame); break;
      case MgmtSubtype::kAssocReq: handle_assoc_req(*frame); break;
      case MgmtSubtype::kDeauth:
      case MgmtSubtype::kDisassoc: handle_deauth(*frame); break;
      default: break;
    }
  } else if (frame->is_data() && frame->to_ds && !frame->from_ds) {
    handle_data(*frame);
  }
}

void AccessPoint::handle_probe_req(const FrameView& frame) {
  const auto req = ProbeReqBody::decode(frame.body);
  if (!req) return;
  if (!req->ssid.empty() && req->ssid != config_.ssid) return;
  BeaconBody resp;
  resp.timestamp = sim_.now();
  resp.capability = kCapEss | (config_.privacy ? kCapPrivacy : 0);
  resp.ssid = config_.ssid;
  resp.channel = config_.channel;
  send_mgmt(MgmtSubtype::kProbeResp, frame.addr2, resp.encode());
}

void AccessPoint::handle_auth(const FrameView& frame) {
  // Shared-key transaction 3 arrives WEP-encapsulated (protected bit set);
  // everything else is cleartext.
  std::optional<AuthBody> auth;
  bool decrypted_ok = false;
  if (frame.protected_frame) {
    if (!config_.privacy) return;
    const auto dec = crypto::wep_decrypt(frame.body, config_.wep_key);
    if (dec) {
      auth = AuthBody::decode(dec->plaintext);
      decrypted_ok = true;
    }
  } else {
    auth = AuthBody::decode(frame.body);
  }
  if (!auth && !frame.protected_frame) return;
  const net::MacAddr sta = frame.addr2;
  sim_.tracer().instant(trace_auth_, radio_.trace_actor(),
                        obs::TraceLayer::kDot11, 0,
                        auth ? auth->transaction_seq : 0);

  auto reject = [&](StatusCode code) {
    AuthBody resp;
    resp.algorithm = auth ? auth->algorithm : config_.auth_algorithm;
    resp.transaction_seq =
        auth ? static_cast<std::uint16_t>(auth->transaction_seq + 1) : 4;
    resp.status = code;
    send_mgmt(MgmtSubtype::kAuth, sta, resp.encode());
    ++counters_.auth_rejected;
    trace(util::format("auth-reject {} status={}", sta.to_string(),
                       static_cast<int>(code)),
          sim::Severity::kWarn);
  };

  // A protected auth frame that failed to decrypt/parse: wrong WEP key.
  if (frame.protected_frame && !auth) {
    pending_challenges_.erase(sta);
    reject(StatusCode::kChallengeFailure);
    return;
  }

  if (auth->algorithm != config_.auth_algorithm) {
    reject(StatusCode::kUnspecifiedFailure);
    return;
  }
  if (!mac_allowed(sta)) {
    // Real APs commonly just ignore filtered MACs; an explicit reject leaks
    // less about whether filtering exists. We reject so tests can see it.
    reject(StatusCode::kUnspecifiedFailure);
    return;
  }

  if (config_.auth_algorithm == AuthAlgorithm::kOpenSystem) {
    if (auth->transaction_seq != 1) return;
    authenticated_.insert(sta);
    ++counters_.auth_ok;
    AuthBody resp;
    resp.algorithm = AuthAlgorithm::kOpenSystem;
    resp.transaction_seq = 2;
    resp.status = StatusCode::kSuccess;
    send_mgmt(MgmtSubtype::kAuth, sta, resp.encode());
    trace(util::format("auth-ok {}", sta.to_string()));
    return;
  }

  // Shared-key authentication (proves WEP key possession — and, as §2.1
  // notes, proves nothing about the *network* to the client).
  if (auth->transaction_seq == 1) {
    util::Bytes challenge(128);
    sim_.rng().fill(challenge);
    pending_challenges_[sta] = challenge;
    AuthBody resp;
    resp.algorithm = AuthAlgorithm::kSharedKey;
    resp.transaction_seq = 2;
    resp.status = StatusCode::kSuccess;
    resp.challenge = std::move(challenge);
    send_mgmt(MgmtSubtype::kAuth, sta, resp.encode());
    return;
  }
  if (auth->transaction_seq == 3) {
    const auto it = pending_challenges_.find(sta);
    if (it == pending_challenges_.end()) return;
    // Transaction 3 must arrive WEP-protected with the echoed challenge;
    // the successful ICV check already proved key possession.
    const bool ok =
        frame.protected_frame && decrypted_ok && auth->challenge == it->second;
    pending_challenges_.erase(it);
    if (!ok) {
      reject(StatusCode::kChallengeFailure);
      return;
    }
    authenticated_.insert(sta);
    ++counters_.auth_ok;
    AuthBody resp;
    resp.algorithm = AuthAlgorithm::kSharedKey;
    resp.transaction_seq = 4;
    resp.status = StatusCode::kSuccess;
    send_mgmt(MgmtSubtype::kAuth, sta, resp.encode());
    trace(util::format("auth-ok {}", sta.to_string()));
  }
}

void AccessPoint::handle_assoc_req(const FrameView& frame) {
  const auto req = AssocReqBody::decode(frame.body);
  if (!req) return;
  const net::MacAddr sta = frame.addr2;

  AssocRespBody resp;
  resp.capability = kCapEss | (config_.privacy ? kCapPrivacy : 0);

  if (req->ssid != config_.ssid || !authenticated_.contains(sta) ||
      !mac_allowed(sta)) {
    resp.status = StatusCode::kAssocDeniedUnspec;
    ++counters_.assoc_rejected;
    sim_.tracer().instant(trace_assoc_reject_, radio_.trace_actor(),
                          obs::TraceLayer::kDot11);
    send_mgmt(MgmtSubtype::kAssocResp, sta, resp.encode());
    trace(util::format("assoc-reject {}", sta.to_string()), sim::Severity::kWarn);
    return;
  }

  const std::uint16_t aid = next_aid_++;
  associated_[sta] = aid;
  resp.status = StatusCode::kSuccess;
  resp.association_id = aid;
  ++counters_.assoc_ok;
  sim_.tracer().instant(trace_assoc_, radio_.trace_actor(),
                        obs::TraceLayer::kDot11, 0, aid);
  send_mgmt(MgmtSubtype::kAssocResp, sta, resp.encode());
  trace(util::format("assoc {}", sta.to_string()));
  if (event_handler_) event_handler_("assoc", sta);
  if (config_.security == SecurityMode::kWpaPsk ||
      config_.security == SecurityMode::kEap) {
    // A short beat so the station finishes processing the assoc response.
    sim_.after(2'000, [this, sta] {
      if (associated_.contains(sta)) start_wpa_handshake(sta);
    });
  }
}

void AccessPoint::handle_deauth(const FrameView& frame) {
  const net::MacAddr sta = frame.addr2;
  sim_.stats().add(stat_deauth_rx_);
  wpa_.erase(sta);
  if (associated_.erase(sta) > 0 || authenticated_.erase(sta) > 0) {
    sim_.tracer().instant(trace_deauth_rx_, radio_.trace_actor(),
                          obs::TraceLayer::kDot11);
    trace(util::format("deauth-rx {}", sta.to_string()), sim::Severity::kWarn);
    if (event_handler_) event_handler_("deauth", sta);
  }
}

void AccessPoint::handle_data(const FrameView& frame) {
  const net::MacAddr sta = frame.addr2;
  if (!associated_.contains(sta)) return;

  util::Bytes decrypted;  // owns the plaintext on the WEP/WPA paths
  util::ByteView msdu;    // open mode views the frame body directly
  switch (config_.security) {
    case SecurityMode::kWep: {
      if (!frame.protected_frame) {
        ++counters_.dropped_unencrypted;
        return;
      }
      auto dec = crypto::wep_decrypt(frame.body, config_.wep_key);
      if (!dec) {
        ++counters_.wep_icv_failures;
        return;
      }
      decrypted = std::move(dec->plaintext);
      msdu = decrypted;
      break;
    }
    case SecurityMode::kEap:
    case SecurityMode::kWpaPsk: {
      if (!frame.protected_frame) {
        // Only the EAPOL handshake may travel in the clear.
        const auto llc_clear = llc_decode(frame.body);
        if (llc_clear && llc_clear->ethertype == kEtherTypeEapol) {
          handle_eapol(sta, llc_clear->payload);
        } else {
          ++counters_.dropped_unencrypted;
        }
        return;
      }
      auto it = wpa_.find(sta);
      if (it == wpa_.end() || !it->second.established) return;
      auto opened = wpa_open(it->second.ptk.aead_key, frame.body);
      if (!opened) {
        ++counters_.wpa_open_failures;
        return;
      }
      // STA->AP packet numbers are odd and strictly increasing.
      if ((opened->pn & 1) == 0 || opened->pn <= it->second.rx_pn_max) {
        ++counters_.wpa_replays_dropped;
        return;
      }
      it->second.rx_pn_max = opened->pn;
      decrypted = std::move(opened->msdu);
      msdu = decrypted;
      break;
    }
    case SecurityMode::kOpen: {
      if (frame.protected_frame) return;  // we have no key to decrypt with
      msdu = frame.body;
      break;
    }
  }

  const auto llc = llc_decode(msdu);
  if (!llc) return;
  const net::MacAddr dst = frame.addr3;

  // Intra-BSS relay: destination is one of our stations (or broadcast).
  if (dst.is_broadcast()) {
    send_data_frame(dst, sta, msdu);
    ++counters_.data_up;
    if (ds_handler_) ds_handler_(sta, dst, llc->ethertype, llc->payload);
    return;
  }
  if (associated_.contains(dst)) {
    send_data_frame(dst, sta, msdu);
    ++counters_.data_down;
    return;
  }
  ++counters_.data_up;
  if (ds_handler_) ds_handler_(sta, dst, llc->ethertype, llc->payload);
}

void AccessPoint::send_data_frame(net::MacAddr dst, net::MacAddr src,
                                  util::ByteView msdu) {
  Frame f;
  f.type = FrameType::kData;
  f.subtype = 0;
  f.from_ds = true;
  f.addr1 = dst;
  f.addr2 = config_.bssid;
  f.addr3 = src;
  f.sequence = tx_seq_++;
  tx_seq_ &= 0x0fff;
  switch (config_.security) {
    case SecurityMode::kWep:
      f.protected_frame = true;
      f.body = crypto::wep_encrypt(iv_gen_->next(), config_.wep_key, msdu);
      break;
    case SecurityMode::kEap:
    case SecurityMode::kWpaPsk: {
      if (dst.is_broadcast() || dst.is_multicast()) {
        f.protected_frame = true;
        gtk_tx_pn_ += 2;  // group pn space: even, shared with AP unicast ok
        f.body = wpa_protect(gtk_, gtk_tx_pn_, msdu);
        break;
      }
      auto it = wpa_.find(dst);
      if (it == wpa_.end() || !it->second.established) return;  // not ready
      f.protected_frame = true;
      it->second.tx_pn += 2;  // AP->STA pns are even
      f.body = wpa_protect(it->second.ptk.aead_key, it->second.tx_pn, msdu);
      break;
    }
    case SecurityMode::kOpen:
      f.body.assign(msdu.begin(), msdu.end());
      break;
  }
  transmit_frame(f);
}

void AccessPoint::send_eapol(net::MacAddr sta, const WpaHandshakeFrame& hs) {
  Frame f;
  f.type = FrameType::kData;
  f.from_ds = true;
  f.addr1 = sta;
  f.addr2 = config_.bssid;
  f.addr3 = config_.bssid;
  f.sequence = tx_seq_++;
  tx_seq_ &= 0x0fff;
  f.body = llc_encode(kEtherTypeEapol, hs.encode());
  transmit_frame(f);
}

void AccessPoint::start_wpa_handshake(net::MacAddr sta) {
  auto& state = wpa_[sta];
  sim_.cancel(state.retry_timer);
  state.established = false;
  state.have_ptk = false;
  state.tx_pn = 0;
  state.rx_pn_max = 0;
  state.retries = 0;
  sim_.rng().fill(state.anonce);
  // Span: M1 send -> M4 verified. The M1 transmission below starts the
  // causal chain the whole 4-step exchange rides (each M inherits the
  // previous one's delivery context), with `arg` binding the span to the
  // station on APs juggling several handshakes.
  sim_.tracer().begin(trace_wpa_span_, radio_.trace_actor(),
                      obs::TraceLayer::kDot11, 0, sta.to_u64());
  WpaHandshakeFrame m1;
  m1.msg = WpaMsg::kM1;
  m1.nonce = state.anonce;
  send_eapol(sta, m1);
  trace(util::format("wpa-m1 {}", sta.to_string()));
  schedule_eapol_retry(sta);
}

void AccessPoint::schedule_eapol_retry(net::MacAddr sta) {
  auto it = wpa_.find(sta);
  if (it == wpa_.end()) return;
  sim_.cancel(it->second.retry_timer);
  it->second.retry_timer = sim_.after(120'000, [this, sta] {
    auto it2 = wpa_.find(sta);
    if (it2 == wpa_.end() || it2->second.established) return;
    if (!associated_.contains(sta)) return;
    if (++it2->second.retries > 5) return;  // give up; station will roam
    if (it2->second.have_ptk) {
      send_m3(sta, it2->second);
    } else {
      WpaHandshakeFrame m1;
      m1.msg = WpaMsg::kM1;
      m1.nonce = it2->second.anonce;
      send_eapol(sta, m1);
    }
    schedule_eapol_retry(sta);
  });
}

void AccessPoint::send_m3(net::MacAddr sta, WpaStation& state) {
  WpaHandshakeFrame m3;
  m3.msg = WpaMsg::kM3;
  m3.sealed_gtk = crypto::aead_seal(state.ptk.aead_key, /*seq=*/0,
                                    util::to_bytes("gtk"), gtk_);
  m3.sign(state.ptk.kck);
  send_eapol(sta, m3);
}

void AccessPoint::handle_eapol(net::MacAddr sta, util::ByteView payload) {
  const auto hs = WpaHandshakeFrame::decode(payload);
  if (!hs) return;
  auto it = wpa_.find(sta);
  if (it == wpa_.end()) return;
  WpaStation& state = it->second;

  if (hs->msg == WpaMsg::kM2) {
    const auto pmk = pmk_for(sta);
    if (!pmk) {
      // kEap: no credential on file for this MAC (or, on a rogue AP,
      // for any client but the attacker's own) — handshake cannot proceed.
      trace(util::format("wpa-m2-unknown-client {}", sta.to_string()),
            sim::Severity::kWarn);
      return;
    }
    const WpaPtk ptk =
        wpa_ptk(*pmk, config_.bssid, sta, state.anonce, hs->nonce);
    if (!hs->verify(ptk.kck)) {
      trace(util::format("wpa-m2-bad-mic {}", sta.to_string()), sim::Severity::kWarn);
      return;  // wrong PSK on the station side
    }
    state.ptk = ptk;
    state.have_ptk = true;
    state.retries = 0;
    sim_.tracer().instant(trace_wpa_m2_, radio_.trace_actor(),
                          obs::TraceLayer::kDot11, 0, sta.to_u64());
    sim_.tracer().instant(trace_wpa_m3_, radio_.trace_actor(),
                          obs::TraceLayer::kDot11, 0, sta.to_u64());
    send_m3(sta, state);
    schedule_eapol_retry(sta);
    return;
  }
  if (hs->msg == WpaMsg::kM4) {
    if (state.ptk.kck.empty() || !hs->verify(state.ptk.kck)) return;
    sim_.cancel(state.retry_timer);
    state.established = true;
    ++counters_.wpa_handshakes_completed;
    sim_.tracer().end(trace_wpa_span_, radio_.trace_actor(),
                      obs::TraceLayer::kDot11, 0, sta.to_u64());
    trace(util::format("wpa-up {}", sta.to_string()));
    if (event_handler_) event_handler_("wpa-up", sta);
  }
}

bool AccessPoint::send_to_station(net::MacAddr dst, net::MacAddr src,
                                  std::uint16_t ethertype, util::ByteView payload) {
  if (!running_) return false;
  if (!dst.is_broadcast() && !associated_.contains(dst)) return false;
  send_data_frame(dst, src, llc_encode(ethertype, payload));
  ++counters_.data_down;
  return true;
}

void AccessPoint::deauth_station(net::MacAddr sta, ReasonCode reason) {
  associated_.erase(sta);
  authenticated_.erase(sta);
  DeauthBody body;
  body.reason = reason;
  sim_.tracer().instant(trace_deauth_tx_, radio_.trace_actor(),
                        obs::TraceLayer::kDot11, 0,
                        static_cast<std::uint64_t>(reason));
  send_mgmt(MgmtSubtype::kDeauth, sta, body.encode());
  sim_.stats().add(stat_deauth_tx_);
  trace(util::format("deauth-tx {}", sta.to_string()), sim::Severity::kWarn);
  if (event_handler_) event_handler_("deauth", sta);
}

}  // namespace rogue::dot11
