// Simplified WPA-PSK (§2.2: "802.1x and TKIP ... packaged into a new
// security solution called WiFi Protected Access (WPA). ... TKIP still
// relies on a pre shared key, thus is still vulnerable to MITM attack
// from valid network clients.")
//
// Model (faithful in structure, modern in primitives):
//   PMK  = HMAC(psk, "pmk" || ssid)
//   4-way handshake over EAPOL-like data frames (ethertype 0x888E):
//     M1  AP->STA  anonce
//     M2  STA->AP  snonce || MIC_KCK(m2)
//     M3  AP->STA  GTK sealed under PTK || MIC_KCK(m3)
//     M4  STA->AP  MIC_KCK(m4)
//   PTK  = KDF(PMK, min/max(mac) || min/max(nonce)) -> KCK | pairwise AEAD key
//   Data = [pn u64][AEAD_{key}(pn, msdu)] with strictly increasing per-
//          direction packet numbers (replay protection WEP never had).
//
// The two properties the paper cares about both hold here:
//   * an outsider without the PSK can neither join nor decrypt (fixes WEP's
//     FMS hole), but
//   * anyone WITH the PSK — every valid client, and therefore the rogue —
//     can impersonate the network AND passively derive any client's PTK
//     from its captured handshake (see WpaPassiveDecryptor).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"
#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace rogue::dot11 {

/// EtherType carrying the handshake (EAPOL).
inline constexpr std::uint16_t kEtherTypeEapol = 0x888e;

inline constexpr std::size_t kNonceLen = 32;
inline constexpr std::size_t kKckLen = 32;       ///< MIC key
inline constexpr std::size_t kMicLen = 16;

using WpaNonce = std::array<std::uint8_t, kNonceLen>;

/// Pairwise transient key material.
struct WpaPtk {
  util::Bytes kck;       ///< handshake MIC key (kKckLen)
  util::Bytes aead_key;  ///< crypto::kAeadKeyLen bytes for data frames
};

/// PMK from the pre-shared key + SSID (the paper's "pre shared key").
[[nodiscard]] util::Bytes wpa_pmk(util::ByteView psk, std::string_view ssid);

/// PTK derivation — symmetric in the two MACs/nonces so both sides (and a
/// passive PSK-holder) compute the same keys.
[[nodiscard]] WpaPtk wpa_ptk(util::ByteView pmk, net::MacAddr ap, net::MacAddr sta,
                             const WpaNonce& anonce, const WpaNonce& snonce);

// ---- Handshake messages (EAPOL payloads) -----------------------------------

enum class WpaMsg : std::uint8_t { kM1 = 1, kM2 = 2, kM3 = 3, kM4 = 4 };

struct WpaHandshakeFrame {
  WpaMsg msg = WpaMsg::kM1;
  WpaNonce nonce{};        ///< anonce (M1) / snonce (M2)
  util::Bytes sealed_gtk;  ///< M3 only: GTK sealed under the PTK AEAD key
  std::array<std::uint8_t, kMicLen> mic{};  ///< M2-M4

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static std::optional<WpaHandshakeFrame> decode(util::ByteView raw);

  /// MIC over the frame with the mic field zeroed (standard EAPOL trick).
  [[nodiscard]] std::array<std::uint8_t, kMicLen> compute_mic(
      util::ByteView kck) const;
  void sign(util::ByteView kck);
  [[nodiscard]] bool verify(util::ByteView kck) const;
};

// ---- Data protection ---------------------------------------------------------

/// Encrypt an MSDU under a WPA key: [pn u64 be][AEAD(pn, msdu)].
[[nodiscard]] util::Bytes wpa_protect(util::ByteView aead_key, std::uint64_t pn,
                                      util::ByteView msdu);

struct WpaOpened {
  std::uint64_t pn = 0;
  util::Bytes msdu;
};
/// Decrypt; nullopt on MAC failure or truncation. Replay enforcement is
/// the caller's job (compare pn against its high-water mark).
[[nodiscard]] std::optional<WpaOpened> wpa_open(util::ByteView aead_key,
                                                util::ByteView body);

// ---- Passive PSK-holder decryption --------------------------------------------

/// What §2.2 warns about: a PSK holder who observes a client's 4-way
/// handshake derives that client's PTK offline and reads all its traffic.
class WpaPassiveDecryptor {
 public:
  WpaPassiveDecryptor(util::ByteView psk, std::string_view ssid);

  /// Feed every EAPOL handshake frame seen on the air.
  void observe_handshake(net::MacAddr ap, net::MacAddr sta,
                         const WpaHandshakeFrame& frame);

  /// PTK for the pair once both nonces were captured.
  [[nodiscard]] std::optional<WpaPtk> ptk_for(net::MacAddr ap,
                                              net::MacAddr sta) const;

  /// Try to decrypt a pairwise-protected body between ap/sta.
  [[nodiscard]] std::optional<WpaOpened> decrypt(net::MacAddr ap, net::MacAddr sta,
                                                 util::ByteView body) const;

  [[nodiscard]] std::size_t sessions_recovered() const;

 private:
  struct Observed {
    std::optional<WpaNonce> anonce;
    std::optional<WpaNonce> snonce;
  };
  struct PairHash {
    std::size_t operator()(const std::pair<net::MacAddr, net::MacAddr>& p) const {
      return std::hash<net::MacAddr>{}(p.first) ^
             (std::hash<net::MacAddr>{}(p.second) << 1);
    }
  };

  util::Bytes pmk_;
  std::unordered_map<std::pair<net::MacAddr, net::MacAddr>, Observed, PairHash>
      observed_;
};

}  // namespace rogue::dot11
