#include "dot11/frame.hpp"

#include "util/assert.hpp"

namespace rogue::dot11 {

namespace {

void write_mac(util::ByteWriter& w, const net::MacAddr& mac) {
  w.raw(util::ByteView(mac.octets().data(), mac.octets().size()));
}

[[nodiscard]] net::MacAddr read_mac(util::ByteReader& r) {
  const util::ByteView v = r.raw(6);
  if (v.size() != 6) return {};
  std::array<std::uint8_t, 6> o{};
  std::copy(v.begin(), v.end(), o.begin());
  return net::MacAddr(o);
}

void write_ie(util::ByteWriter& w, std::uint8_t id, util::ByteView value) {
  ROGUE_ASSERT(value.size() <= 255);
  w.u8(id);
  w.u8(static_cast<std::uint8_t>(value.size()));
  w.raw(value);
}

/// Iterate IEs in `data`, calling cb(id, value); returns false on truncation.
template <typename Cb>
[[nodiscard]] bool for_each_ie(util::ByteReader& r, Cb&& cb) {
  while (r.remaining() > 0) {
    const std::uint8_t id = r.u8();
    const std::uint8_t len = r.u8();
    const util::ByteView value = r.raw(len);
    if (!r.ok()) return false;
    cb(id, value);
  }
  return true;
}

}  // namespace

util::Bytes Frame::serialize() const {
  util::Bytes out;
  serialize_into(out);
  return out;
}

void Frame::serialize_into(util::Bytes& out) const {
  out.clear();
  out.reserve(24 + body.size());
  util::ByteWriter w(out);

  // Frame control: subtype(4) | type(2) | version(2), then flags.
  const auto fc0 = static_cast<std::uint8_t>(
      (subtype << 4) | (static_cast<std::uint8_t>(type) << 2));
  std::uint8_t fc1 = 0;
  if (to_ds) fc1 |= 0x01;
  if (from_ds) fc1 |= 0x02;
  if (retry) fc1 |= 0x08;
  if (protected_frame) fc1 |= 0x40;
  w.u8(fc0);
  w.u8(fc1);
  w.u16le(0);  // duration (unused by the simulation)
  write_mac(w, addr1);
  write_mac(w, addr2);
  write_mac(w, addr3);
  w.u16le(static_cast<std::uint16_t>((sequence << 4) | (fragment & 0x0f)));
  w.raw(body);
}

std::optional<Frame> Frame::parse(util::ByteView raw) {
  const auto view = FrameView::parse(raw);
  if (!view) return std::nullopt;
  return view->to_frame();
}

Frame FrameView::to_frame() const {
  Frame f;
  f.type = type;
  f.subtype = subtype;
  f.to_ds = to_ds;
  f.from_ds = from_ds;
  f.retry = retry;
  f.protected_frame = protected_frame;
  f.addr1 = addr1;
  f.addr2 = addr2;
  f.addr3 = addr3;
  f.sequence = sequence;
  f.fragment = fragment;
  f.body.assign(body.begin(), body.end());
  return f;
}

std::optional<FrameView> FrameView::parse(util::ByteView raw) {
  util::ByteReader r(raw);
  FrameView f;
  const std::uint8_t fc0 = r.u8();
  const std::uint8_t fc1 = r.u8();
  if ((fc0 & 0x03) != 0) return std::nullopt;  // protocol version must be 0
  f.type = static_cast<FrameType>((fc0 >> 2) & 0x03);
  f.subtype = static_cast<std::uint8_t>(fc0 >> 4);
  f.to_ds = (fc1 & 0x01) != 0;
  f.from_ds = (fc1 & 0x02) != 0;
  f.retry = (fc1 & 0x08) != 0;
  f.protected_frame = (fc1 & 0x40) != 0;
  (void)r.u16le();  // duration
  f.addr1 = read_mac(r);
  f.addr2 = read_mac(r);
  f.addr3 = read_mac(r);
  const std::uint16_t seq_ctrl = r.u16le();
  f.sequence = static_cast<std::uint16_t>(seq_ctrl >> 4);
  f.fragment = static_cast<std::uint8_t>(seq_ctrl & 0x0f);
  f.body = r.take_rest();
  if (!r.ok()) return std::nullopt;
  return f;
}

util::Bytes BeaconBody::encode() const {
  util::Bytes out;
  util::ByteWriter w(out);
  w.u64be(timestamp);
  w.u16le(beacon_interval_tu);
  w.u16le(capability);
  write_ie(w, kIeSsid, util::to_bytes(ssid));
  const std::uint8_t ch = channel;
  write_ie(w, kIeDsParam, util::ByteView(&ch, 1));
  return out;
}

std::optional<BeaconBody> BeaconBody::decode(util::ByteView body) {
  util::ByteReader r(body);
  BeaconBody b;
  b.timestamp = r.u64be();
  b.beacon_interval_tu = r.u16le();
  b.capability = r.u16le();
  if (!r.ok()) return std::nullopt;
  const bool ok = for_each_ie(r, [&](std::uint8_t id, util::ByteView value) {
    if (id == kIeSsid) b.ssid = util::to_string(value);
    if (id == kIeDsParam && !value.empty()) b.channel = value[0];
  });
  if (!ok) return std::nullopt;
  return b;
}

util::Bytes ProbeReqBody::encode() const {
  util::Bytes out;
  util::ByteWriter w(out);
  write_ie(w, kIeSsid, util::to_bytes(ssid));
  return out;
}

std::optional<ProbeReqBody> ProbeReqBody::decode(util::ByteView body) {
  util::ByteReader r(body);
  ProbeReqBody b;
  const bool ok = for_each_ie(r, [&](std::uint8_t id, util::ByteView value) {
    if (id == kIeSsid) b.ssid = util::to_string(value);
  });
  if (!ok) return std::nullopt;
  return b;
}

util::Bytes AuthBody::encode() const {
  util::Bytes out;
  util::ByteWriter w(out);
  w.u16le(static_cast<std::uint16_t>(algorithm));
  w.u16le(transaction_seq);
  w.u16le(static_cast<std::uint16_t>(status));
  if (!challenge.empty()) write_ie(w, kIeChallenge, challenge);
  return out;
}

std::optional<AuthBody> AuthBody::decode(util::ByteView body) {
  util::ByteReader r(body);
  AuthBody b;
  b.algorithm = static_cast<AuthAlgorithm>(r.u16le());
  b.transaction_seq = r.u16le();
  b.status = static_cast<StatusCode>(r.u16le());
  if (!r.ok()) return std::nullopt;
  const bool ok = for_each_ie(r, [&](std::uint8_t id, util::ByteView value) {
    if (id == kIeChallenge) b.challenge.assign(value.begin(), value.end());
  });
  if (!ok) return std::nullopt;
  return b;
}

util::Bytes AssocReqBody::encode() const {
  util::Bytes out;
  util::ByteWriter w(out);
  w.u16le(capability);
  write_ie(w, kIeSsid, util::to_bytes(ssid));
  return out;
}

std::optional<AssocReqBody> AssocReqBody::decode(util::ByteView body) {
  util::ByteReader r(body);
  AssocReqBody b;
  b.capability = r.u16le();
  if (!r.ok()) return std::nullopt;
  const bool ok = for_each_ie(r, [&](std::uint8_t id, util::ByteView value) {
    if (id == kIeSsid) b.ssid = util::to_string(value);
  });
  if (!ok) return std::nullopt;
  return b;
}

util::Bytes AssocRespBody::encode() const {
  util::Bytes out;
  util::ByteWriter w(out);
  w.u16le(capability);
  w.u16le(static_cast<std::uint16_t>(status));
  w.u16le(association_id);
  return out;
}

std::optional<AssocRespBody> AssocRespBody::decode(util::ByteView body) {
  util::ByteReader r(body);
  AssocRespBody b;
  b.capability = r.u16le();
  b.status = static_cast<StatusCode>(r.u16le());
  b.association_id = r.u16le();
  if (!r.ok()) return std::nullopt;
  return b;
}

util::Bytes DeauthBody::encode() const {
  util::Bytes out;
  util::ByteWriter w(out);
  w.u16le(static_cast<std::uint16_t>(reason));
  return out;
}

std::optional<DeauthBody> DeauthBody::decode(util::ByteView body) {
  util::ByteReader r(body);
  DeauthBody b;
  b.reason = static_cast<ReasonCode>(r.u16le());
  if (!r.ok()) return std::nullopt;
  return b;
}

util::Bytes llc_encode(std::uint16_t ethertype, util::ByteView payload) {
  util::Bytes out;
  out.reserve(kLlcSnapLen + payload.size());
  util::ByteWriter w(out);
  w.u8(0xaa);  // DSAP: SNAP
  w.u8(0xaa);  // SSAP: SNAP
  w.u8(0x03);  // control: UI
  w.u8(0x00);  // OUI
  w.u8(0x00);
  w.u8(0x00);
  w.u16be(ethertype);
  w.raw(payload);
  return out;
}

std::optional<LlcPayload> llc_decode(util::ByteView msdu) {
  if (msdu.size() < kLlcSnapLen) return std::nullopt;
  if (msdu[0] != 0xaa || msdu[1] != 0xaa || msdu[2] != 0x03) return std::nullopt;
  LlcPayload out;
  out.ethertype = static_cast<std::uint16_t>((msdu[6] << 8) | msdu[7]);
  out.payload = msdu.subspan(kLlcSnapLen);
  return out;
}

}  // namespace rogue::dot11
