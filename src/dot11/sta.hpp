// 802.11 Station (client) MAC. Scans passively, picks the strongest AP
// advertising its target SSID, authenticates, associates, and roams on
// deauthentication or beacon loss. There is no way for it to verify *which*
// network it joined — the vulnerability the whole paper is about: "clients
// could inadvertently connect to one of these Rogue APs" (§1.2.1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/wep.hpp"
#include "dot11/wpa.hpp"
#include "dot11/frame.hpp"
#include "net/addr.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace rogue::dot11 {

/// A BSS discovered while scanning.
struct BssInfo {
  std::string ssid;
  net::MacAddr bssid;
  phy::Channel channel = 1;
  bool privacy = false;
  double rssi_dbm = -100.0;   ///< strongest sample seen this scan
  std::uint16_t last_seq = 0; ///< sequence number of the last beacon heard
};

/// How a station chooses among candidate APs with the matching SSID.
/// kBestRssi is what consumer supplicants did (and still mostly do) —
/// which is precisely what a rogue with a stronger signal exploits.
enum class JoinPolicy : std::uint8_t { kBestRssi, kFirstHeard, kRandom };

enum class StationState : std::uint8_t {
  kIdle,
  kScanning,
  kAuthenticating,
  kAssociating,
  kAssociated,
};

struct StationConfig {
  net::MacAddr mac;
  std::string target_ssid = "CORP";

  bool use_wep = false;       ///< legacy knob, implies security = kWep
  util::Bytes wep_key;
  crypto::WepIvPolicy iv_policy = crypto::WepIvPolicy::kSequential;
  AuthAlgorithm auth_algorithm = AuthAlgorithm::kOpenSystem;

  SecurityMode security = SecurityMode::kOpen;
  /// kWpaPsk: the network passphrase. kEap: this client's personal
  /// credential (which the authenticator also holds).
  util::Bytes wpa_psk;
  /// Give up on a BSS whose WPA/EAP handshake does not complete within
  /// this window, and avoid it for `bss_blocklist_duration`.
  sim::Time wpa_handshake_timeout = 1 * sim::kSecond;
  sim::Time bss_blocklist_duration = 30 * sim::kSecond;

  JoinPolicy join_policy = JoinPolicy::kBestRssi;
  std::vector<phy::Channel> scan_channels = {1, 6, 11};
  sim::Time scan_dwell = 120'000;          ///< per-channel listen time (us)
  sim::Time rescan_delay = 50'000;         ///< idle time between scan sweeps
  /// Consecutive failed scan/join cycles back the rescan delay off
  /// exponentially (with jitter) up to this cap; reset on association.
  sim::Time rescan_backoff_max = 2 * sim::kSecond;
  sim::Time response_timeout = 20'000;     ///< auth/assoc response timeout
  unsigned max_join_retries = 3;
  /// Beacon-loss disconnect threshold (multiples of the beacon interval).
  unsigned beacon_loss_intervals = 8;
};

struct StationCounters {
  std::uint64_t scans = 0;
  std::uint64_t scan_backoffs = 0;  ///< rescans delayed beyond the base delay
  std::uint64_t associations = 0;
  std::uint64_t deauths_received = 0;
  std::uint64_t beacon_losses = 0;
  std::uint64_t data_sent = 0;
  std::uint64_t data_received = 0;
  std::uint64_t wep_icv_failures = 0;
  std::uint64_t wpa_open_failures = 0;
  std::uint64_t wpa_replays_dropped = 0;
};

class Station {
 public:
  /// Upcall with a received MSDU: (src, dst, ethertype, payload).
  using RxHandler = std::function<void(net::MacAddr src, net::MacAddr dst,
                                       std::uint16_t ethertype, util::ByteView payload)>;
  /// Association lifecycle observer: "assoc"/"deauth"/"beacon-loss".
  using EventHandler = std::function<void(std::string_view event, const BssInfo& bss)>;

  Station(sim::Simulator& simulator, phy::Medium& medium, StationConfig config,
          sim::Trace* trace = nullptr);

  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  /// Kick off scanning + joining.
  void start();
  /// Drop any association and stop all activity.
  void stop();

  [[nodiscard]] const StationConfig& config() const { return config_; }
  [[nodiscard]] const StationCounters& counters() const { return counters_; }
  [[nodiscard]] StationState state() const { return state_; }
  [[nodiscard]] bool associated() const { return state_ == StationState::kAssociated; }
  /// Data path live: associated, and (under WPA) handshake complete.
  [[nodiscard]] bool ready() const {
    return associated() && (!wpa_like() || wpa_established_);
  }
  /// BSS currently associated to (valid only when associated()).
  [[nodiscard]] const BssInfo& bss() const { return current_bss_; }
  [[nodiscard]] phy::Radio& radio() { return radio_; }

  /// Send an MSDU into the BSS toward `dst` (L3 stacks sit on top of this).
  /// Returns false when not associated.
  bool send(net::MacAddr dst, std::uint16_t ethertype, util::ByteView payload);

  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }
  void set_event_handler(EventHandler handler) { event_handler_ = std::move(handler); }

 private:
  void on_receive(util::ByteView raw, const phy::RxInfo& info);
  void handle_beacon(const FrameView& frame, const phy::RxInfo& info);
  void handle_auth_resp(const FrameView& frame);
  void handle_assoc_resp(const FrameView& frame);
  void handle_deauth(const FrameView& frame);
  void handle_data(const FrameView& frame);
  void handle_eapol(util::ByteView payload);
  void send_eapol(const WpaHandshakeFrame& frame);

  [[nodiscard]] bool wpa_like() const {
    return config_.security == SecurityMode::kWpaPsk ||
           config_.security == SecurityMode::kEap;
  }
  void arm_wpa_watchdog();
  void begin_scan();
  void scan_next_channel();
  void finish_scan();
  [[nodiscard]] std::optional<BssInfo> pick_candidate();
  void begin_join(const BssInfo& bss);
  void send_auth_request();
  void send_assoc_request();
  void on_join_timeout();
  void become_associated();
  void disconnect(std::string_view why);
  /// Next rescan delay under exponential backoff + jitter; bumps the
  /// failed-cycle count.
  [[nodiscard]] sim::Time next_rescan_delay();
  void arm_beacon_watchdog();
  void send_mgmt(MgmtSubtype subtype, net::MacAddr dst, util::Bytes body,
                 bool protect = false);
  /// Serialize into a pooled buffer and hand it to the radio.
  void transmit_frame(const Frame& frame);
  void trace(std::string_view message,
             sim::Severity severity = sim::Severity::kInfo);

  sim::Simulator& sim_;
  StationConfig config_;
  phy::Radio radio_;
  sim::Trace* trace_ = nullptr;
  sim::TagId trace_tag_ = 0;

  StationState state_ = StationState::kIdle;
  bool running_ = false;
  std::uint16_t tx_seq_ = 0;
  std::optional<crypto::WepIvGenerator> iv_gen_;

  // Scanning state. Keyed by (BSSID, channel), as real supplicants key by
  // (BSSID, frequency) — otherwise a cloned-BSSID rogue on another channel
  // would shadow the legitimate entry.
  std::size_t scan_channel_index_ = 0;
  std::map<std::pair<net::MacAddr, phy::Channel>, BssInfo> scan_results_;
  sim::TimerHandle scan_timer_;
  unsigned failed_cycles_ = 0;  ///< scan/join failures since last association

  // Join state.
  BssInfo current_bss_;
  unsigned join_retries_ = 0;
  sim::TimerHandle join_timer_;

  // Associated state.
  sim::TimerHandle beacon_watchdog_;
  sim::Time last_beacon_time_ = 0;

  // WPA-PSK session state.
  util::Bytes pmk_;
  bool wpa_established_ = false;
  bool m1_seen_ = false;
  WpaNonce last_anonce_{};
  WpaNonce snonce_{};
  WpaPtk ptk_;
  util::Bytes gtk_;
  std::uint64_t wpa_tx_pn_ = 1;       ///< STA->AP pns are odd
  std::uint64_t wpa_rx_pn_max_ = 0;   ///< AP->STA unicast high-water mark
  std::uint64_t gtk_rx_pn_max_ = 0;
  sim::TimerHandle wpa_watchdog_;
  /// BSSes whose handshake failed: (bssid, channel) -> retry-after time.
  std::map<std::pair<net::MacAddr, phy::Channel>, sim::Time> bss_blocklist_;

  RxHandler rx_handler_;
  EventHandler event_handler_;
  StationCounters counters_;

  // Shared per-simulation stats (all stations aggregate into one slot set).
  obs::CounterId stat_rx_mgmt_;
  obs::CounterId stat_rx_data_;
  obs::CounterId stat_rx_retry_;
  obs::CounterId stat_deauth_rx_;
  obs::CounterId stat_scans_;
  obs::CounterId stat_assocs_;
  obs::Profiler::ScopeId rx_scope_;
  obs::TraceNameId trace_scan_;
  obs::TraceNameId trace_associated_;
  obs::TraceNameId trace_disconnect_;
  obs::TraceNameId trace_deauth_rx_;
  obs::TraceNameId trace_wpa_m1_;
  obs::TraceNameId trace_wpa_up_;
};

}  // namespace rogue::dot11
