// 4-ary min-heap specialized for simulator events. Entries are 24-byte
// PODs ordered by (time, seq); the callable itself lives in a slot table
// owned by the Simulator, so heap sift operations move trivially-copyable
// keys only. A 4-ary layout halves tree depth versus binary, which is
// where the pop cost goes, and pop *moves* the root out (std::priority_
// queue forces a copy because top() is const).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rogue::sim {

struct HeapEntry {
  std::uint64_t time;  ///< absolute fire time (sim::Time)
  std::uint64_t seq;   ///< insertion order — deterministic tie-break
  std::uint32_t slot;  ///< index into the simulator's slot table
  std::uint32_t gen;   ///< slot generation this entry was scheduled against
};

class EventHeap {
 public:
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const HeapEntry& top() const { return entries_.front(); }

  void push(HeapEntry entry) {
    entries_.push_back(entry);
    sift_up(entries_.size() - 1);
  }

  /// Remove and return the minimum entry.
  HeapEntry pop() {
    HeapEntry out = entries_.front();
    HeapEntry last = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) {
      sift_down_from_root(last);
    }
    return out;
  }

  /// Drop every entry matching `pred` and re-heapify. (time, seq) is a
  /// total order (seq is unique), so rebuilding cannot perturb pop order.
  template <typename Pred>
  void remove_if(Pred&& pred) {
    std::erase_if(entries_, pred);
    if (entries_.size() < 2) return;
    for (std::size_t i = (entries_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i, entries_[i]);
    }
  }

  void reserve(std::size_t n) { entries_.reserve(n); }

  void clear() { entries_.clear(); }

 private:
  static constexpr std::size_t kArity = 4;

  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t pos) {
    const HeapEntry moving = entries_[pos];
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / kArity;
      if (!before(moving, entries_[parent])) break;
      entries_[pos] = entries_[parent];
      pos = parent;
    }
    entries_[pos] = moving;
  }

  void sift_down_from_root(const HeapEntry& moving) { sift_down(0, moving); }

  /// Place `moving` at `pos`, sinking it below any smaller children.
  void sift_down(std::size_t pos, HeapEntry moving) {
    const std::size_t n = entries_.size();
    for (;;) {
      const std::size_t first_child = pos * kArity + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + kArity, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before(entries_[c], entries_[best])) best = c;
      }
      if (!before(entries_[best], moving)) break;
      entries_[pos] = entries_[best];
      pos = best;
    }
    entries_[pos] = moving;
  }

  std::vector<HeapEntry> entries_;
};

}  // namespace rogue::sim
