// Small-buffer-optimized callable for simulator events. The kernel fires
// millions of callbacks per trial and the typical capture set ([this], a
// handle, a couple of ints, or a pooled frame buffer) is small, so EventFn
// stores up to kInlineSize bytes inline and only heap-allocates beyond
// that. Move-only: events are scheduled once and moved out of the queue to
// fire, never copied.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rogue::sim {

class EventFn {
 public:
  /// Inline storage: enough for [this] + a 24-byte vector + two words,
  /// which covers every hot callback in the phy/dot11/net pipeline.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(*-explicit-*) mirrors std::function conversions
    using Fn = std::decay_t<F>;
    if constexpr (trivial_inline<Fn>()) {
      // Trivially-copyable capture (captureless, [this], PODs): moves are
      // raw byte copies and destruction is a no-op, signalled by a null
      // manage_. This is the schedule/fire hot path — no indirect calls
      // besides the invocation itself.
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
      manage_ = nullptr;
      inline_ = true;
    } else if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
      manage_ = [](Op op, void* self, void* dst) {
        auto* fn = static_cast<Fn*>(self);
        if (op == Op::kMoveTo) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      };
      inline_ = true;
    } else {
      ::new (static_cast<void*>(storage_)) void*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
      manage_ = [](Op op, void* self, void* dst) {
        if (op == Op::kMoveTo) {
          ::new (dst) void*(self);
        } else {
          delete static_cast<Fn*>(self);
        }
      };
      inline_ = false;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { invoke_(target()); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  /// Drop the stored callable (inert afterwards).
  void reset() {
    if (invoke_ == nullptr) return;
    if (manage_ != nullptr) manage_(Op::kDestroy, target(), nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Op : std::uint8_t { kMoveTo, kDestroy };
  using Invoke = void (*)(void*);
  using Manage = void (*)(Op, void* self, void* dst);

  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  [[nodiscard]] static constexpr bool trivial_inline() {
#ifdef ROGUE_EVENTFN_NO_TRIVIAL  // benchmarking escape hatch
    return false;
#else
    return fits_inline<Fn>() && std::is_trivially_copyable_v<Fn> &&
           std::is_trivially_destructible_v<Fn>;
#endif
  }

  [[nodiscard]] void* target() {
    if (inline_) return static_cast<void*>(storage_);
    return *std::launder(reinterpret_cast<void**>(storage_));
  }

  void move_from(EventFn& other) noexcept {
    if (other.invoke_ == nullptr) return;
    inline_ = other.inline_;
    if (other.manage_ == nullptr) {
      std::memcpy(storage_, other.storage_, kInlineSize);
    } else {
      other.manage_(Op::kMoveTo, other.target(), storage_);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  bool inline_ = false;
};

}  // namespace rogue::sim
