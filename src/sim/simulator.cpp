#include "sim/simulator.hpp"

#include <utility>

#include "util/assert.hpp"

namespace rogue::sim {

namespace {
[[nodiscard]] constexpr std::uint32_t handle_slot(std::uint64_t id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu);
}
[[nodiscard]] constexpr std::uint32_t handle_gen(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> 32);
}
}  // namespace

Simulator::Simulator(std::uint64_t seed) : seed_(seed), rng_(seed) {
  slots_.reserve(1024);
  free_slots_.reserve(1024);
  heap_.reserve(1024);
  dispatch_scope_ = profiler_.intern("sim.dispatch");
  tracer_.set_seed(seed);
  tracer_.bind_clock(&now_);
}

void Simulator::reseed(std::uint64_t seed) {
  ROGUE_ASSERT_MSG(now_ == 0 && fired_ == 0 && live_ == 0,
                   "reseed() must precede any scheduling or stepping");
  seed_ = seed;
  rng_ = util::Prng(seed);
  tracer_.set_seed(seed);
}

util::Prng Simulator::derive_rng(std::string_view stream) const {
  // FNV-1a over the stream name, folded into the root seed through one
  // splitmix64 step: (seed, name) -> stream, independent of draw order.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t state = seed_ ^ h;
  return util::Prng(util::splitmix64(state));
}

std::uint32_t Simulator::allocate_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::free_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.periodic = false;
  slot.period = 0;
  // Bumping the generation invalidates every outstanding handle and heap
  // entry for this tenancy; 0 is reserved so handle ids are never 0.
  if (++slot.gen == 0) slot.gen = 1;
  free_slots_.push_back(index);
}

TimerHandle Simulator::schedule(Time t, EventFn&& fn, bool periodic, Time period) {
  const std::uint32_t index = allocate_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.periodic = periodic;
  slot.period = period;
  heap_.push(HeapEntry{t, next_seq_++, index, slot.gen});
  ++live_;
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
  return TimerHandle((static_cast<std::uint64_t>(slot.gen) << 32) | index);
}

TimerHandle Simulator::at(Time t, EventFn fn) {
  ROGUE_ASSERT_MSG(t >= now_, "cannot schedule in the past");
  return schedule(t, std::move(fn), /*periodic=*/false, 0);
}

TimerHandle Simulator::after(Time delay, EventFn fn) {
  return at(now_ + delay, std::move(fn));
}

TimerHandle Simulator::every(Time period, EventFn fn) {
  return every(period, period, std::move(fn));
}

TimerHandle Simulator::every(Time period, Time phase, EventFn fn) {
  ROGUE_ASSERT_MSG(period > 0, "periodic event needs period > 0");
  return schedule(now_ + phase, std::move(fn), /*periodic=*/true, period);
}

void Simulator::cancel(TimerHandle handle) {
  if (!handle.valid()) return;
  const std::uint32_t index = handle_slot(handle.id_);
  if (index >= slots_.size() || slots_[index].gen != handle_gen(handle.id_)) {
    return;  // already fired, already cancelled, or slot recycled
  }
  free_slot(index);
  --live_;
  ++stale_;
  ++cancels_;
  maybe_compact();
}

bool Simulator::scheduled(TimerHandle handle) const {
  if (!handle.valid()) return false;
  const std::uint32_t index = handle_slot(handle.id_);
  return index < slots_.size() && slots_[index].gen == handle_gen(handle.id_);
}

bool Simulator::settle_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    if (slots_[top.slot].gen == top.gen) return true;
    (void)heap_.pop();
    if (stale_ > 0) --stale_;
  }
  return false;
}

void Simulator::maybe_compact() {
  // Lazy cancellation leaves entries behind; once they dominate the heap,
  // filter them out in one O(n) rebuild so memory and pop cost stay
  // proportional to live events.
  if (stale_ < 64 || stale_ * 2 < heap_.size()) return;
  heap_.remove_if(
      [this](const HeapEntry& e) { return slots_[e.slot].gen != e.gen; });
  stale_ = 0;
}

bool Simulator::step() {
  if (!settle_top()) return false;
  const HeapEntry entry = heap_.pop();
  ROGUE_ASSERT(entry.time >= now_);
  now_ = entry.time;
  ++fired_;
  // One branch when profiling is off; components nest their own scopes
  // (phy.deliver, dot11.*, vpn.*) under this root while it is on.
  const obs::Profiler::Scope scope(profiler_, dispatch_scope_);

  Slot& slot = slots_[entry.slot];
  if (slot.periodic) {
    const Time period = slot.period;
    // Fire out of a local: the callback may schedule events, which can
    // reallocate slots_, or cancel its own series.
    EventFn fn = std::move(slot.fn);
    fn();
    Slot& current = slots_[entry.slot];
    if (current.gen == entry.gen) {  // series not cancelled: re-arm
      current.fn = std::move(fn);
      heap_.push(HeapEntry{now_ + period, next_seq_++, entry.slot, entry.gen});
    }
  } else {
    EventFn fn = std::move(slot.fn);
    free_slot(entry.slot);
    --live_;
    fn();
  }
  return true;
}

obs::StatsSnapshot Simulator::stats_snapshot() const {
  obs::StatsSnapshot snap = stats_.snapshot();
  const auto counter = [&snap](std::string_view name, std::uint64_t v) {
    obs::StatsSnapshot::Entry e;
    e.name = std::string(name);
    e.kind = obs::MetricKind::kCounter;
    e.value = v;
    snap.entries.push_back(std::move(e));
  };
  counter("sim.events_fired", fired_);
  counter("sim.cancels", cancels_);
  counter("sim.heap_peak", static_cast<std::uint64_t>(heap_peak_));
  const util::BufferPoolStats& pool = pool_.stats();
  counter("sim.pool.acquires", pool.acquires);
  counter("sim.pool.reuses", pool.reuses);
  counter("sim.pool.releases", pool.releases);
  counter("sim.pool.discards", pool.discards);
  counter("sim.pool.max_pooled", pool.max_pooled);
  if (pool_.config().slab_buffers > 0) {
    // Arena-only names: emitting them unconditionally would change the
    // byte-exact reports of configurations that predate the arena.
    counter("sim.pool.high_water", pool.high_water);
    counter("sim.pool.spills", pool.spills());
  }
  snap.sort();
  return snap;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(Time t) {
  // settle_top() first: a cancelled tombstone at the heap top must not let
  // an event *beyond* the deadline fire (the top's time has to be a live
  // event's time before it is compared against t).
  while (settle_top() && heap_.top().time <= t) {
    (void)step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace rogue::sim
