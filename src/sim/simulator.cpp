#include "sim/simulator.hpp"
#include <memory>

#include <utility>

#include "util/assert.hpp"

namespace rogue::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

TimerHandle Simulator::at(Time t, std::function<void()> fn) {
  ROGUE_ASSERT_MSG(t >= now_, "cannot schedule in the past");
  const std::uint64_t id = next_id_++;
  heap_.push(Event{t, next_seq_++, id, std::move(fn)});
  return TimerHandle(id);
}

TimerHandle Simulator::after(Time delay, std::function<void()> fn) {
  return at(now_ + delay, std::move(fn));
}

void Simulator::cancel(TimerHandle handle) {
  if (handle.valid()) cancelled_.insert(handle.id_);
}

TimerHandle Simulator::every(Time period, std::function<void()> fn) {
  return every(period, period, std::move(fn));
}

TimerHandle Simulator::every(Time period, Time phase, std::function<void()> fn) {
  ROGUE_ASSERT_MSG(period > 0, "periodic event needs period > 0");
  const std::uint64_t id = next_id_++;
  // Each occurrence re-arms the next one under the same id, so cancelling
  // the id breaks the chain: the pending occurrence is skipped at pop time
  // and nothing re-pushes.
  auto tick = std::make_shared<std::function<void()>>();
  auto body = std::make_shared<std::function<void()>>(std::move(fn));
  *tick = [this, id, period, tick, body] {
    (*body)();
    heap_.push(Event{now_ + period, next_seq_++, id, *tick});
  };
  heap_.push(Event{now_ + phase, next_seq_++, id, *tick});
  return TimerHandle(id);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    ROGUE_ASSERT(ev.time >= now_);
    now_ = ev.time;
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(Time t) {
  while (!heap_.empty() && heap_.top().time <= t) {
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

}  // namespace rogue::sim
