// Lightweight event trace: components append tagged records, tests and
// detectors query them. Plays the role of a tcpdump/kismet capture file.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"

namespace rogue::sim {

struct TraceRecord {
  Time time = 0;
  std::string tag;      ///< component id, e.g. "ap.legit", "sta.victim"
  std::string message;  ///< human-readable event description
};

class Trace {
 public:
  void record(Time t, std::string tag, std::string message);

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// All records whose tag matches exactly.
  [[nodiscard]] std::vector<TraceRecord> with_tag(std::string_view tag) const;
  /// Count records whose message contains `needle`.
  [[nodiscard]] std::size_t count_containing(std::string_view needle) const;

  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace rogue::sim
