// Lightweight event trace: components append tagged records, tests and
// detectors query them. Plays the role of a tcpdump/kismet capture file.
//
// Hot-path layout: a record is 64 bytes — an interned tag handle (the
// "ap:<bssid>" / "sta:<mac>" strings are stored once per component, not
// once per record), a fixed severity enum, and a small-buffer message
// that stays inline for every message the MAC layers emit today. The
// string-based record()/with_tag() overloads remain as compatibility
// shims for existing callers and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"

namespace rogue::sim {

/// Handle for an interned tag string; 0 is "untagged".
using TagId = std::uint32_t;

enum class Severity : std::uint8_t {
  kDebug = 0,  ///< chatty protocol detail (scans, retries)
  kInfo,       ///< normal lifecycle events
  kWarn,       ///< rejections, failures, disconnects
  kAlert,      ///< detector findings
};

/// Small-buffer string for trace messages: up to 46 bytes inline (every
/// message the dot11 layer emits fits), longer messages spill to the heap
/// without truncation.
class ShortString {
 public:
  static constexpr std::size_t kInlineCap = 46;

  ShortString() { u_.buf[0] = '\0'; }
  ShortString(std::string_view s) { assign(s); }
  ShortString(const ShortString& other) { assign(other.view()); }
  ShortString(ShortString&& other) noexcept {
    std::memcpy(this, &other, sizeof other);
    other.len_ = 0;  // steals the heap pointer, if any
  }
  ShortString& operator=(const ShortString& other) {
    if (this != &other) {
      release();
      assign(other.view());
    }
    return *this;
  }
  ShortString& operator=(ShortString&& other) noexcept {
    if (this != &other) {
      release();
      std::memcpy(this, &other, sizeof other);
      other.len_ = 0;
    }
    return *this;
  }
  ~ShortString() { release(); }

  [[nodiscard]] std::string_view view() const {
    return is_heap() ? std::string_view(u_.heap.data, u_.heap.len)
                     : std::string_view(u_.buf, len_);
  }
  operator std::string_view() const { return view(); }
  [[nodiscard]] std::size_t size() const { return view().size(); }
  [[nodiscard]] bool on_heap() const { return is_heap(); }

 private:
  static constexpr std::uint8_t kHeapMarker = 0xFF;

  [[nodiscard]] bool is_heap() const { return len_ == kHeapMarker; }

  void assign(std::string_view s) {
    if (s.size() <= kInlineCap) {
      std::memcpy(u_.buf, s.data(), s.size());
      len_ = static_cast<std::uint8_t>(s.size());
    } else {
      u_.heap.data = new char[s.size()];
      std::memcpy(u_.heap.data, s.data(), s.size());
      u_.heap.len = static_cast<std::uint32_t>(s.size());
      len_ = kHeapMarker;
    }
  }

  void release() {
    if (is_heap()) delete[] u_.heap.data;
    len_ = 0;
  }

  union Storage {
    char buf[kInlineCap + 1];
    struct {
      char* data;
      std::uint32_t len;
    } heap;
  } u_;
  std::uint8_t len_ = 0;  ///< inline length, or kHeapMarker
};

struct TraceRecord {
  Time time = 0;
  ShortString message;  ///< event description
  TagId tag = 0;        ///< interned component id, e.g. "ap.legit"
  Severity severity = Severity::kInfo;

  [[nodiscard]] std::string_view text() const { return message.view(); }
};

class Trace {
 public:
  /// Intern a tag string, returning a stable handle. Idempotent; interned
  /// names survive clear() (components cache their TagId across runs).
  TagId intern(std::string_view tag);
  /// Name for a handle ("" for the untagged id 0).
  [[nodiscard]] std::string_view tag_name(TagId id) const;
  /// Reverse lookup; nullopt if the tag was never interned.
  [[nodiscard]] std::optional<TagId> find_tag(std::string_view tag) const;

  /// Hot-path record: no per-record tag allocation; messages up to
  /// ShortString::kInlineCap bytes don't allocate either.
  void record(Time t, TagId tag, std::string_view message,
              Severity severity = Severity::kInfo);
  /// Compatibility shim: interns the tag on every call.
  void record(Time t, std::string_view tag, std::string_view message);

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// All records carrying this tag handle.
  [[nodiscard]] std::vector<TraceRecord> with_tag(TagId tag) const;
  /// Compatibility shim: records whose tag *name* matches exactly.
  [[nodiscard]] std::vector<TraceRecord> with_tag(std::string_view tag) const;
  /// Count records whose message contains `needle`.
  [[nodiscard]] std::size_t count_containing(std::string_view needle) const;
  /// Count records at severity >= `min`.
  [[nodiscard]] std::size_t count_at_least(Severity min) const;

  /// Drop records; interned tags are kept.
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
  std::vector<std::string> tag_names_;  ///< index = TagId - 1
  std::unordered_map<std::string, TagId> tag_ids_;
};

}  // namespace rogue::sim
