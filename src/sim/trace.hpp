// Lightweight event trace: components append tagged records, tests and
// detectors query them. Plays the role of a tcpdump/kismet capture file.
//
// Hot-path layout: a record is 64 bytes — an interned tag handle (the
// "ap:<bssid>" / "sta:<mac>" strings are stored once per component, not
// once per record), a fixed severity enum, and a small-buffer message
// that stays inline for every message the MAC layers emit today. The
// string-based record()/with_tag() overloads remain as compatibility
// shims for existing callers and tests.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace rogue::sim {

/// Handle for an interned tag string; 0 is "untagged".
using TagId = std::uint32_t;

enum class Severity : std::uint8_t {
  kDebug = 0,  ///< chatty protocol detail (scans, retries)
  kInfo,       ///< normal lifecycle events
  kWarn,       ///< rejections, failures, disconnects
  kAlert,      ///< detector findings
};

/// Small-buffer string for trace messages: up to 46 bytes inline (every
/// message the dot11 layer emits fits), longer messages spill to the heap
/// without truncation.
class ShortString {
 public:
  static constexpr std::size_t kInlineCap = 46;

  ShortString() { u_.buf[0] = '\0'; }
  ShortString(std::string_view s) { assign(s); }
  ShortString(const ShortString& other) { assign(other.view()); }
  ShortString(ShortString&& other) noexcept {
    std::memcpy(this, &other, sizeof other);
    other.len_ = 0;  // steals the heap pointer, if any
  }
  ShortString& operator=(const ShortString& other) {
    if (this != &other) {
      release();
      assign(other.view());
    }
    return *this;
  }
  ShortString& operator=(ShortString&& other) noexcept {
    if (this != &other) {
      release();
      std::memcpy(this, &other, sizeof other);
      other.len_ = 0;
    }
    return *this;
  }
  ~ShortString() { release(); }

  [[nodiscard]] std::string_view view() const {
    return is_heap() ? std::string_view(u_.heap.data, u_.heap.len)
                     : std::string_view(u_.buf, len_);
  }
  operator std::string_view() const { return view(); }
  [[nodiscard]] std::size_t size() const { return view().size(); }
  [[nodiscard]] bool on_heap() const { return is_heap(); }

 private:
  static constexpr std::uint8_t kHeapMarker = 0xFF;

  [[nodiscard]] bool is_heap() const { return len_ == kHeapMarker; }

  void assign(std::string_view s) {
    if (s.size() <= kInlineCap) {
      std::memcpy(u_.buf, s.data(), s.size());
      len_ = static_cast<std::uint8_t>(s.size());
    } else {
      u_.heap.data = new char[s.size()];
      std::memcpy(u_.heap.data, s.data(), s.size());
      u_.heap.len = static_cast<std::uint32_t>(s.size());
      len_ = kHeapMarker;
    }
  }

  void release() {
    if (is_heap()) delete[] u_.heap.data;
    len_ = 0;
  }

  union Storage {
    char buf[kInlineCap + 1];
    struct {
      char* data;
      std::uint32_t len;
    } heap;
  } u_;
  std::uint8_t len_ = 0;  ///< inline length, or kHeapMarker
};

struct TraceRecord {
  Time time = 0;
  ShortString message;  ///< event description
  TagId tag = 0;        ///< interned component id, e.g. "ap.legit"
  Severity severity = Severity::kInfo;

  [[nodiscard]] std::string_view text() const { return message.view(); }
};

/// One over-the-air frame kept verbatim when frame capture is enabled;
/// obs::PcapWriter turns a run's captured frames into a Wireshark-readable
/// .pcap (the paper's tcpdump/ethereal methodology).
struct CapturedFrame {
  Time time = 0;
  util::Bytes bytes;
};

class Trace {
 public:
  /// Intern a tag string, returning a stable handle. Idempotent; interned
  /// names survive clear() (components cache their TagId across runs).
  TagId intern(std::string_view tag);
  /// Name for a handle ("" for the untagged id 0).
  [[nodiscard]] std::string_view tag_name(TagId id) const;
  /// Reverse lookup; nullopt if the tag was never interned.
  [[nodiscard]] std::optional<TagId> find_tag(std::string_view tag) const;

  /// Hot-path record: no per-record tag allocation; messages up to
  /// ShortString::kInlineCap bytes don't allocate either.
  void record(Time t, TagId tag, std::string_view message,
              Severity severity = Severity::kInfo);
  /// Compatibility shim: interns the tag on every call.
  void record(Time t, std::string_view tag, std::string_view message);

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Record indices carrying this tag, oldest first — a view into the
  /// per-tag index, valid until the next record()/clear(). The zero-copy
  /// replacement for the copying with_tag() shims.
  [[nodiscard]] std::span<const std::uint32_t> tag_records(TagId tag) const;
  /// Number of records carrying `tag`; O(1).
  [[nodiscard]] std::size_t count_with_tag(TagId tag) const {
    return tag_records(tag).size();
  }
  /// Visit every record carrying `tag`, in time order, without copying.
  template <typename Fn>
  void for_each_tag(TagId tag, Fn&& fn) const {
    for (const std::uint32_t idx : tag_records(tag)) {
      fn(records_[idx]);
    }
  }

  /// All records carrying this tag handle (copying compatibility shim —
  /// prefer for_each_tag()/tag_records()).
  [[nodiscard]] std::vector<TraceRecord> with_tag(TagId tag) const;
  /// Compatibility shim: records whose tag *name* matches exactly.
  [[nodiscard]] std::vector<TraceRecord> with_tag(std::string_view tag) const;
  /// Count records whose message contains `needle`.
  [[nodiscard]] std::size_t count_containing(std::string_view needle) const;
  /// Count records at severity >= `min`; O(1) off per-severity tallies.
  [[nodiscard]] std::size_t count_at_least(Severity min) const;

  // ---- frame capture -------------------------------------------------------
  /// Keep verbatim copies of frames handed to capture_frame(). Off by
  /// default: capture copies every frame on the air and is meant for
  /// dedicated pcap-export replicas, not sweep hot paths.
  void enable_frame_capture(bool on) { capture_frames_ = on; }
  [[nodiscard]] bool frame_capture_enabled() const { return capture_frames_; }
  /// Store one frame (no-op unless capture is enabled).
  void capture_frame(Time t, util::ByteView frame) {
    if (!capture_frames_) return;
    frames_.push_back(CapturedFrame{t, util::Bytes(frame.begin(), frame.end())});
  }
  [[nodiscard]] const std::vector<CapturedFrame>& frames() const {
    return frames_;
  }

  /// Drop records and captured frames; interned tags are kept.
  void clear() {
    records_.clear();
    frames_.clear();
    severity_counts_.fill(0);
    for (auto& index : tag_index_) index.clear();
  }

 private:
  std::vector<TraceRecord> records_;
  std::vector<std::string> tag_names_;  ///< index = TagId - 1
  std::unordered_map<std::string, TagId> tag_ids_;
  /// tag_index_[tag] = indices into records_ (slot 0 = untagged records).
  std::vector<std::vector<std::uint32_t>> tag_index_;
  std::array<std::size_t, 4> severity_counts_{};  ///< per-Severity tallies
  bool capture_frames_ = false;
  std::vector<CapturedFrame> frames_;
};

}  // namespace rogue::sim
