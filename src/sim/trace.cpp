#include "sim/trace.hpp"

namespace rogue::sim {

TagId Trace::intern(std::string_view tag) {
  if (const auto it = tag_ids_.find(std::string(tag)); it != tag_ids_.end()) {
    return it->second;
  }
  tag_names_.emplace_back(tag);
  const TagId id = static_cast<TagId>(tag_names_.size());
  tag_ids_.emplace(tag_names_.back(), id);
  return id;
}

std::string_view Trace::tag_name(TagId id) const {
  if (id == 0 || id > tag_names_.size()) return {};
  return tag_names_[id - 1];
}

std::optional<TagId> Trace::find_tag(std::string_view tag) const {
  const auto it = tag_ids_.find(std::string(tag));
  if (it == tag_ids_.end()) return std::nullopt;
  return it->second;
}

void Trace::record(Time t, TagId tag, std::string_view message,
                   Severity severity) {
  TraceRecord r;
  r.time = t;
  r.message = ShortString(message);
  r.tag = tag;
  r.severity = severity;
  if (tag >= tag_index_.size()) tag_index_.resize(tag + 1);
  tag_index_[tag].push_back(static_cast<std::uint32_t>(records_.size()));
  ++severity_counts_[static_cast<std::size_t>(severity)];
  records_.push_back(std::move(r));
}

void Trace::record(Time t, std::string_view tag, std::string_view message) {
  record(t, intern(tag), message);
}

std::span<const std::uint32_t> Trace::tag_records(TagId tag) const {
  if (tag >= tag_index_.size()) return {};
  return tag_index_[tag];
}

std::vector<TraceRecord> Trace::with_tag(TagId tag) const {
  std::vector<TraceRecord> out;
  out.reserve(count_with_tag(tag));
  for_each_tag(tag, [&out](const TraceRecord& r) { out.push_back(r); });
  return out;
}

std::vector<TraceRecord> Trace::with_tag(std::string_view tag) const {
  const auto id = find_tag(tag);
  if (!id) return {};
  return with_tag(*id);
}

std::size_t Trace::count_containing(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.text().find(needle) != std::string_view::npos) ++n;
  }
  return n;
}

std::size_t Trace::count_at_least(Severity min) const {
  std::size_t n = 0;
  for (std::size_t s = static_cast<std::size_t>(min);
       s < severity_counts_.size(); ++s) {
    n += severity_counts_[s];
  }
  return n;
}

}  // namespace rogue::sim
