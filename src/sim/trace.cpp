#include "sim/trace.hpp"

namespace rogue::sim {

void Trace::record(Time t, std::string tag, std::string message) {
  records_.push_back(TraceRecord{t, std::move(tag), std::move(message)});
}

std::vector<TraceRecord> Trace::with_tag(std::string_view tag) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.tag == tag) out.push_back(r);
  }
  return out;
}

std::size_t Trace::count_containing(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

}  // namespace rogue::sim
