// Discrete-event simulation kernel. Single-threaded and deterministic:
// events fire in (time, insertion-order) order and all randomness flows
// from the simulator-owned PRNG, so a trial is reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/prng.hpp"

namespace rogue::sim {

/// Simulated time in microseconds.
using Time = std::uint64_t;

inline constexpr Time kMicrosecond = 1;
inline constexpr Time kMillisecond = 1000;
inline constexpr Time kSecond = 1'000'000;

/// Handle for cancelling a scheduled event. Default-constructed handles
/// are inert.
class TimerHandle {
 public:
  TimerHandle() = default;

  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] util::Prng& rng() { return rng_; }

  /// Schedule `fn` at absolute time t (must be >= now()).
  TimerHandle at(Time t, std::function<void()> fn);
  /// Schedule `fn` after a relative delay.
  TimerHandle after(Time delay, std::function<void()> fn);
  /// Cancel a scheduled event; no-op if already fired or cancelled.
  void cancel(TimerHandle handle);

  /// Schedule fn every `period`, first firing after `phase` (defaults to
  /// one period). Returns a handle that cancels the whole series.
  TimerHandle every(Time period, std::function<void()> fn);
  TimerHandle every(Time period, Time phase, std::function<void()> fn);

  /// Execute the next event; false if the queue is empty.
  bool step();
  /// Run until the queue drains or `max_events` fire.
  void run(std::uint64_t max_events = ~0ULL);
  /// Run events with time <= t, then set now() = t.
  void run_until(Time t);

  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;  // insertion order — deterministic tie-break
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct PeriodicState;

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  util::Prng rng_;
};

}  // namespace rogue::sim
