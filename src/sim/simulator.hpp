// Discrete-event simulation kernel. Single-threaded and deterministic:
// events fire in (time, insertion-order) order and all randomness flows
// from the simulator-owned PRNG, so a trial is reproducible from its seed.
//
// Internals are built for the hot path: a 4-ary heap over 24-byte POD
// entries (the callable never moves during sift operations), a
// slot/generation table giving O(1) cancel() and an exact pending() count,
// and small-buffer-optimized EventFn callbacks so typical captures never
// allocate. Cancelled events leave a stale heap entry behind (skipped on
// pop, compacted when they pile up); correctness never depends on the
// stale entries because every entry is validated against its slot's
// generation.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/stats.hpp"
#include "obs/tracer.hpp"
#include "sim/event_fn.hpp"
#include "sim/event_heap.hpp"
#include "util/buffer_pool.hpp"
#include "util/prng.hpp"

namespace rogue::sim {

/// Simulated time in microseconds.
using Time = std::uint64_t;

inline constexpr Time kMicrosecond = 1;
inline constexpr Time kMillisecond = 1000;
inline constexpr Time kSecond = 1'000'000;

/// Handle for cancelling a scheduled event. Default-constructed handles
/// are inert. Encodes (slot, generation): stale handles — already fired,
/// already cancelled, or from a recycled slot — are detected exactly, so
/// cancel() on them is a true no-op.
class TimerHandle {
 public:
  TimerHandle() = default;

  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;  // (generation << 32) | slot; generation >= 1
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] util::Prng& rng() { return rng_; }
  /// The root seed this simulation's every random decision derives from.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// Swap in a new root seed. Only legal on a pristine simulator (nothing
  /// scheduled or fired yet) — i.e., during World::configure(), before the
  /// scenario builds anything that draws randomness.
  void reseed(std::uint64_t seed);
  /// Derive an independent, named PRNG stream from the root seed. Unlike
  /// rng(), the derived stream does not depend on how many draws other
  /// components have made, only on (seed, stream name) — use it for
  /// randomness that must stay stable as the world grows components.
  [[nodiscard]] util::Prng derive_rng(std::string_view stream) const;
  /// Frame-buffer freelist shared by this simulation's phy/dot11/net hot
  /// paths. Per-simulator, so trials stay deterministic and thread-isolated.
  [[nodiscard]] util::BufferPool& buffer_pool() { return pool_; }
  /// Reconfigure the buffer pool (arena pre-warm, poisoning) during world
  /// setup. In arena mode stats_snapshot() additionally reports the pool's
  /// in-flight high-water mark and heap spills — names that only exist
  /// when the arena is on, so default-pool reports are unchanged.
  void configure_buffer_pool(const util::BufferPoolConfig& config) {
    pool_.configure(config);
  }
  /// Per-simulation metrics registry. Components intern handles once and
  /// bump plain uint64 slots on the hot path; values are deterministic
  /// (a pure function of seed and config, like every other observable).
  [[nodiscard]] obs::StatsRegistry& stats() { return stats_; }
  /// Host wall-time profiler, disabled by default. Enabling it never
  /// changes simulation behaviour — only how long the host takes.
  [[nodiscard]] obs::Profiler& profiler() { return profiler_; }
  /// Causal tracer / flight recorder, disabled by default. Records stamp
  /// sim-time and derive ids from the root seed, so dumps are as
  /// deterministic as every other observable; enabling it never changes
  /// simulation behaviour.
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }
  /// Registry snapshot merged with the kernel's own instruments: event
  /// heap depth/cancels and the buffer pool's hit/miss/high-water counts.
  [[nodiscard]] obs::StatsSnapshot stats_snapshot() const;

  /// Schedule `fn` at absolute time t (must be >= now()).
  TimerHandle at(Time t, EventFn fn);
  /// Schedule `fn` after a relative delay.
  TimerHandle after(Time delay, EventFn fn);
  /// Cancel a scheduled event; O(1). No-op if already fired or cancelled.
  void cancel(TimerHandle handle);
  /// True while `handle` refers to a scheduled (not yet fired/cancelled)
  /// event or live periodic series.
  [[nodiscard]] bool scheduled(TimerHandle handle) const;

  /// Schedule fn every `period`, first firing after `phase` (defaults to
  /// one period). Returns a handle that cancels the whole series.
  TimerHandle every(Time period, EventFn fn);
  TimerHandle every(Time period, Time phase, EventFn fn);

  /// Execute the next event; false if the queue is empty.
  bool step();
  /// Run until the queue drains or `max_events` fire.
  void run(std::uint64_t max_events = ~0ULL);
  /// Run events with time <= t, then set now() = t.
  void run_until(Time t);

  /// Exact count of scheduled events (a periodic series counts as one).
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  /// Per-event state. The generation distinguishes the slot's current
  /// tenant from stale heap entries and stale handles; it bumps every time
  /// the slot is freed.
  struct Slot {
    std::uint32_t gen = 1;
    bool periodic = false;
    Time period = 0;
    EventFn fn;
  };

  [[nodiscard]] std::uint32_t allocate_slot();
  void free_slot(std::uint32_t index);
  [[nodiscard]] TimerHandle schedule(Time t, EventFn&& fn, bool periodic,
                                     Time period);
  /// Pop stale (cancelled) entries off the heap top; afterwards the top,
  /// if any, is a live event. Returns false when the heap is empty.
  [[nodiscard]] bool settle_top();
  void maybe_compact();

  Time now_ = 0;
  std::uint64_t seed_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;   ///< scheduled events (periodic series count once)
  std::size_t stale_ = 0;  ///< cancelled entries still sitting in the heap
  EventHeap heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  util::Prng rng_;
  util::BufferPool pool_;
  obs::StatsRegistry stats_;
  obs::Profiler profiler_;
  obs::Tracer tracer_;
  std::uint64_t cancels_ = 0;
  std::size_t heap_peak_ = 0;  ///< deepest the event heap has been
  obs::Profiler::ScopeId dispatch_scope_;
};

}  // namespace rogue::sim
