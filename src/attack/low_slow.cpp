#include "attack/low_slow.hpp"

namespace rogue::attack {

void LowSlowDeauth::configure(const AttackerEnv& env) {
  Attacker::configure(env);
  radio_ = std::make_unique<phy::Radio>(*env_.medium, "low-slow-deauth");
  radio_->set_channel(env_.legit_channel);
  radio_->set_position(env_.position);
  radio_->set_receive_handler(
      [this](util::ByteView raw, const phy::RxInfo& /*info*/) {
        const auto frame = dot11::FrameView::parse(raw);
        if (frame && frame->addr2 == env_.legit_bssid) {
          last_seq_ = frame->sequence & 0x0fff;
          seq_seen_ = true;
        }
      });
}

void LowSlowDeauth::send_once() {
  dot11::Frame f;
  f.type = dot11::FrameType::kManagement;
  f.subtype = static_cast<std::uint8_t>(dot11::MgmtSubtype::kDeauth);
  f.addr1 = env_.victim_mac;
  f.addr2 = env_.legit_bssid;
  f.addr3 = env_.legit_bssid;
  // Sequence mimicry: one plausible step past the AP's last overheard
  // frame, indistinguishable from a retry to the gap/backstep rules.
  f.sequence = seq_seen_ ? static_cast<std::uint16_t>((last_seq_ + 1) & 0x0fff)
                         : 0;
  dot11::DeauthBody body;
  body.reason = dot11::ReasonCode::kPrevAuthExpired;
  f.body = body.encode();
  util::Bytes raw = radio_->acquire_buffer(24 + f.body.size());
  f.serialize_into(raw);
  radio_->transmit(std::move(raw));
  ++sent_;
}

void LowSlowDeauth::schedule_next() {
  // 1.5–4 s between forgeries, far below any flood-rate threshold.
  const sim::Time gap =
      1'500'000 + static_cast<sim::Time>(env_.rng.uniform01() * 2'500'000.0);
  timer_ = env_.sim->after(gap, [this] {
    if (!running_) return;
    send_once();
    schedule_next();
  });
}

void LowSlowDeauth::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void LowSlowDeauth::stop() {
  if (!running_) return;
  running_ = false;
  env_.sim->cancel(timer_);
}

}  // namespace rogue::attack
