#include "attack/attacker.hpp"

#include "attack/cloner.hpp"
#include "attack/deauth.hpp"
#include "attack/low_slow.hpp"
#include "attack/replay.hpp"

namespace rogue::attack {

std::unique_ptr<Attacker> make_attacker(std::string_view name) {
  if (name == "none") return std::make_unique<NullAttacker>();
  if (name == "deauth-flood") return std::make_unique<DeauthAttacker>();
  if (name == "low-slow-deauth") return std::make_unique<LowSlowDeauth>();
  if (name == "rogue-gateway") return std::make_unique<ScriptedRogue>();
  if (name == "cloner") return std::make_unique<FingerprintCloner>();
  if (name == "replay") return std::make_unique<RecordReplayer>();
  return nullptr;
}

std::vector<std::string_view> known_attackers() {
  return {"none", "deauth-flood", "low-slow-deauth", "rogue-gateway",
          "cloner", "replay"};
}

}  // namespace rogue::attack
