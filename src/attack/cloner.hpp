// Fingerprint-cloning rogue AP (arXiv 2512.10470's evil-twin stealth
// class): passively learns the legitimate AP's on-air identity — SSID,
// BSSID, channel, beacon interval, capability bits — and replays it
// exactly, including continuing the AP's 802.11 sequence counter from the
// last overheard frame so sequence-control monitoring sees one plausible
// stream. What it cannot clone is physics: its frames arrive at the
// monitor with the wrong RSSI, and its host-stack probe responses are
// milliseconds slower than AP firmware (and duplicate the real AP's
// answer), which is what the RSSI-profile and probe-timing detectors key
// on.
#pragma once

#include <cstdint>
#include <memory>

#include "attack/attacker.hpp"

namespace rogue::attack {

class FingerprintCloner final : public Attacker {
 public:
  FingerprintCloner() = default;

  [[nodiscard]] std::string_view name() const override { return "cloner"; }
  /// Opens the listening radio immediately: the clone learns its
  /// fingerprint during the quiet window before start().
  void configure(const AttackerEnv& env) override;
  void start() override;
  void stop() override;

  [[nodiscard]] std::uint64_t beacons_sent() const { return beacons_sent_; }
  [[nodiscard]] std::uint64_t probe_responses_sent() const {
    return responses_sent_;
  }

 private:
  void on_receive(const dot11::FrameView& frame, const phy::RxInfo& info);
  void send_beacon();
  void send_probe_response(net::MacAddr dest);
  [[nodiscard]] std::uint16_t next_seq();
  void transmit_mgmt(dot11::Frame& f);

  std::unique_ptr<phy::Radio> radio_;
  bool running_ = false;
  bool seq_seen_ = false;
  std::uint16_t last_seq_ = 0;
  dot11::BeaconBody fingerprint_;
  bool fingerprint_learned_ = false;
  sim::TimerHandle beacon_timer_;
  std::uint64_t beacons_sent_ = 0;
  std::uint64_t responses_sent_ = 0;
};

}  // namespace rogue::attack
