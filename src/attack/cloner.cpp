#include "attack/cloner.hpp"

namespace rogue::attack {

void FingerprintCloner::configure(const AttackerEnv& env) {
  Attacker::configure(env);
  // Seed the fingerprint from the records the attacker could guess, then
  // overwrite with whatever the real AP actually advertises.
  fingerprint_.ssid = env_.ssid;
  fingerprint_.beacon_interval_tu = env_.beacon_interval_tu;
  fingerprint_.capability = env_.capability;
  fingerprint_.channel = env_.legit_channel;

  radio_ = std::make_unique<phy::Radio>(*env_.medium, "cloner");
  radio_->set_channel(env_.legit_channel);
  radio_->set_position(env_.position);
  radio_->set_receive_handler(
      [this](util::ByteView raw, const phy::RxInfo& info) {
        const auto frame = dot11::FrameView::parse(raw);
        if (frame) on_receive(*frame, info);
      });
}

void FingerprintCloner::on_receive(const dot11::FrameView& frame,
                                   const phy::RxInfo& /*info*/) {
  if (frame.addr2 == env_.legit_bssid) {
    // Continue the AP's counter: every overheard frame re-anchors it, so
    // our next transmission is one plausible step ahead.
    last_seq_ = frame.sequence & 0x0fff;
    seq_seen_ = true;
    if (frame.is_mgmt(dot11::MgmtSubtype::kBeacon) ||
        frame.is_mgmt(dot11::MgmtSubtype::kProbeResp)) {
      if (const auto body = dot11::BeaconBody::decode(frame.body)) {
        fingerprint_ = *body;
        fingerprint_learned_ = true;
      }
    }
  }
  if (running_ && frame.is_mgmt(dot11::MgmtSubtype::kProbeReq)) {
    const auto req = dot11::ProbeReqBody::decode(frame.body);
    if (req && (req->ssid.empty() || req->ssid == fingerprint_.ssid)) {
      // Host-stack handling: answer after a few milliseconds, where real
      // firmware answers in microseconds. The jitter is seed-derived.
      const sim::Time delay = 3000 + env_.rng.uniform_u32(3001);
      const net::MacAddr dest = frame.addr2;
      env_.sim->after(delay, [this, dest] {
        if (running_) send_probe_response(dest);
      });
    }
  }
}

std::uint16_t FingerprintCloner::next_seq() {
  return seq_seen_ ? static_cast<std::uint16_t>((last_seq_ + 1) & 0x0fff) : 0;
}

void FingerprintCloner::transmit_mgmt(dot11::Frame& f) {
  f.type = dot11::FrameType::kManagement;
  f.addr2 = env_.legit_bssid;
  f.addr3 = env_.legit_bssid;
  f.sequence = next_seq();
  util::Bytes raw = radio_->acquire_buffer(24 + f.body.size());
  f.serialize_into(raw);
  radio_->transmit(std::move(raw));
}

void FingerprintCloner::send_beacon() {
  dot11::BeaconBody body = fingerprint_;
  body.timestamp = static_cast<std::uint64_t>(env_.sim->now());
  dot11::Frame f;
  f.subtype = static_cast<std::uint8_t>(dot11::MgmtSubtype::kBeacon);
  f.addr1 = net::MacAddr::broadcast();
  f.body = body.encode();
  transmit_mgmt(f);
  ++beacons_sent_;
}

void FingerprintCloner::send_probe_response(net::MacAddr dest) {
  dot11::BeaconBody body = fingerprint_;
  body.timestamp = static_cast<std::uint64_t>(env_.sim->now());
  dot11::Frame f;
  f.subtype = static_cast<std::uint8_t>(dot11::MgmtSubtype::kProbeResp);
  f.addr1 = dest;
  f.body = body.encode();
  transmit_mgmt(f);
  ++responses_sent_;
}

void FingerprintCloner::start() {
  if (running_) return;
  running_ = true;
  const sim::Time interval =
      static_cast<sim::Time>(fingerprint_.beacon_interval_tu) * 1024;
  send_beacon();
  beacon_timer_ = env_.sim->every(interval, [this] { send_beacon(); });
}

void FingerprintCloner::stop() {
  if (!running_) return;
  running_ = false;
  env_.sim->cancel(beacon_timer_);
}

}  // namespace rogue::attack
