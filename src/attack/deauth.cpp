#include "attack/deauth.hpp"

namespace rogue::attack {

DeauthAttacker::DeauthAttacker(sim::Simulator& simulator, phy::Medium& medium,
                               phy::Channel channel, net::MacAddr spoofed_bssid,
                               net::MacAddr target)
    : sim_(simulator),
      radio_(medium, "deauth-attacker"),
      spoofed_bssid_(spoofed_bssid),
      target_(target) {
  radio_.set_channel(channel);
}

void DeauthAttacker::send_once() {
  dot11::Frame f;
  f.type = dot11::FrameType::kManagement;
  f.subtype = static_cast<std::uint8_t>(dot11::MgmtSubtype::kDeauth);
  f.addr1 = target_;
  f.addr2 = spoofed_bssid_;  // the forgery: we are not this AP
  f.addr3 = spoofed_bssid_;
  // A deliberately implausible sequence number region: real deauth forgery
  // tools do not continue the AP's counter, which is exactly what the
  // sequence-control detector (detect/) keys on.
  f.sequence = seq_++;
  dot11::DeauthBody body;
  body.reason = dot11::ReasonCode::kPrevAuthExpired;
  f.body = body.encode();
  util::Bytes raw = radio_.acquire_buffer(24 + f.body.size());
  f.serialize_into(raw);
  radio_.transmit(std::move(raw));
  ++sent_;
}

void DeauthAttacker::start(sim::Time period) {
  if (running_) return;
  running_ = true;
  send_once();
  timer_ = sim_.every(period, [this] { send_once(); });
}

void DeauthAttacker::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(timer_);
}

}  // namespace rogue::attack
