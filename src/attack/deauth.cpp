#include "attack/deauth.hpp"

namespace rogue::attack {

DeauthAttacker::DeauthAttacker(sim::Simulator& simulator, phy::Medium& medium,
                               phy::Channel channel, net::MacAddr spoofed_bssid,
                               net::MacAddr target) {
  AttackerEnv env;
  env.sim = &simulator;
  env.medium = &medium;
  env.legit_channel = channel;
  env.legit_bssid = spoofed_bssid;
  env.victim_mac = target;
  env.deauth_period = 50'000;
  configure(env);
}

void DeauthAttacker::configure(const AttackerEnv& env) {
  Attacker::configure(env);
  spoofed_bssid_ = env_.legit_bssid;
  target_ = env_.victim_mac;
  period_ = env_.deauth_period;
  radio_ = std::make_unique<phy::Radio>(*env_.medium, "deauth-attacker");
  radio_->set_channel(env_.legit_channel);
  radio_->set_position(env_.position);
}

void DeauthAttacker::send_once() {
  dot11::Frame f;
  f.type = dot11::FrameType::kManagement;
  f.subtype = static_cast<std::uint8_t>(dot11::MgmtSubtype::kDeauth);
  f.addr1 = target_;
  f.addr2 = spoofed_bssid_;  // the forgery: we are not this AP
  f.addr3 = spoofed_bssid_;
  // A deliberately implausible sequence number region: real deauth forgery
  // tools do not continue the AP's counter, which is exactly what the
  // sequence-control detector (detect/) keys on.
  f.sequence = seq_++;
  dot11::DeauthBody body;
  body.reason = dot11::ReasonCode::kPrevAuthExpired;
  f.body = body.encode();
  util::Bytes raw = radio_->acquire_buffer(24 + f.body.size());
  f.serialize_into(raw);
  radio_->transmit(std::move(raw));
  ++sent_;
}

void DeauthAttacker::start(sim::Time period) {
  if (running_) return;
  running_ = true;
  send_once();
  timer_ = env_.sim->every(period, [this] { send_once(); });
}

void DeauthAttacker::stop() {
  if (!running_) return;
  running_ = false;
  env_.sim->cancel(timer_);
}

}  // namespace rogue::attack
