// Monitor-mode sniffer: a radio that keeps every frame it can hear, the
// tool behind the paper's claims that "wireless networks allow clients to
// sniff other people's packets" (§1.1) and that valid MACs "can be sniffed
// from the network" (§2.1). With the shared WEP key it decrypts everything
// (insider threat); without it, it still harvests IVs for the FMS attack.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "attack/fms.hpp"
#include "attack/pcap.hpp"
#include "dot11/wpa.hpp"
#include "dot11/frame.hpp"
#include "net/addr.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace rogue::attack {

struct ObservedBss {
  std::string ssid;
  net::MacAddr bssid;
  phy::Channel channel = 1;
  bool privacy = false;
  std::uint64_t beacons = 0;
  double last_rssi_dbm = -100.0;
};

struct SnifferCounters {
  std::uint64_t frames = 0;
  std::uint64_t mgmt_frames = 0;
  std::uint64_t data_frames = 0;
  std::uint64_t wep_data_frames = 0;
  std::uint64_t data_bytes_on_air = 0;     ///< data frame body bytes seen
  std::uint64_t plaintext_bytes = 0;       ///< MSDU bytes readable in clear
  std::uint64_t decrypted_bytes = 0;       ///< MSDU bytes decrypted with a key
  std::uint64_t wep_decrypt_failures = 0;
  std::uint64_t wpa_handshakes_observed = 0;
  std::uint64_t wpa_decrypt_failures = 0;
};

struct SnifferConfig {
  phy::Channel channel = 1;
  /// Channels to hop across (empty = stay on `channel`).
  std::vector<phy::Channel> hop_channels;
  sim::Time hop_dwell = 250'000;
  /// Shared WEP key if the adversary has it (insider / post-FMS).
  std::optional<util::Bytes> wep_key;
  /// Key length assumed when harvesting FMS samples.
  std::size_t fms_key_len = crypto::kWep40KeyLen;
  /// WPA-PSK credentials if the adversary has them (§2.2: any valid
  /// client). With these + a captured 4-way handshake, pairwise traffic
  /// decrypts offline.
  std::optional<util::Bytes> wpa_psk;
  std::string wpa_ssid = "CORP";
};

class Sniffer {
 public:
  /// Recovered MSDU observer (cleartext or decrypted): src, dst,
  /// ethertype, payload.
  using MsduHandler = std::function<void(net::MacAddr src, net::MacAddr dst,
                                         std::uint16_t ethertype,
                                         util::ByteView payload)>;

  Sniffer(sim::Simulator& simulator, phy::Medium& medium, SnifferConfig config);

  Sniffer(const Sniffer&) = delete;
  Sniffer& operator=(const Sniffer&) = delete;

  [[nodiscard]] phy::Radio& radio() { return radio_; }
  [[nodiscard]] const SnifferCounters& counters() const { return counters_; }
  [[nodiscard]] FmsCracker& fms() { return fms_; }
  /// Present when wpa_psk was configured.
  [[nodiscard]] dot11::WpaPassiveDecryptor* wpa() { return wpa_ ? &*wpa_ : nullptr; }

  /// BSS census built from beacons (keyed by BSSID + channel, so a rogue
  /// cloning the BSSID on another channel shows up separately).
  [[nodiscard]] std::vector<ObservedBss> observed_bss() const;
  /// Client MACs seen transmitting to-DS data or association traffic —
  /// the pool a MAC-spoofing attacker picks from.
  [[nodiscard]] const std::set<net::MacAddr>& observed_clients() const {
    return clients_;
  }

  void set_msdu_handler(MsduHandler handler) { on_msdu_ = std::move(handler); }

  /// Attach a pcap writer: every raw frame heard is appended (airodump
  /// style). The writer must outlive the sniffer.
  void set_pcap(PcapWriter* writer) { pcap_ = writer; }

  /// Give the sniffer a key later (e.g. after FMS recovery succeeds).
  void set_wep_key(util::Bytes key) { config_.wep_key = std::move(key); }

 private:
  void on_receive(util::ByteView raw, const phy::RxInfo& info);
  void handle_data(const dot11::FrameView& frame);

  sim::Simulator& sim_;
  SnifferConfig config_;
  phy::Radio radio_;
  FmsCracker fms_;
  std::optional<dot11::WpaPassiveDecryptor> wpa_;
  PcapWriter* pcap_ = nullptr;
  std::size_t hop_index_ = 0;
  std::map<std::pair<net::MacAddr, phy::Channel>, ObservedBss> bss_;
  std::set<net::MacAddr> clients_;
  MsduHandler on_msdu_;
  SnifferCounters counters_;
};

}  // namespace rogue::attack
