// Pluggable attacker interface — the offensive mirror of
// detect::Detector. Every attack the tournament can field implements the
// same small surface:
//
//   auto a = attack::make_attacker("low-slow-deauth");
//   a->configure(env);   // target identity, position, seeded Prng
//   a->start();          // go hostile
//   a->stop();
//
// configure() receives an AttackerEnv describing the victim network (the
// identity to impersonate, the victim to kick, channels, and a Prng
// derived from the replica seed so every behavioural jitter is a pure
// function of that seed). Scenario-owned attacks that need a whole
// network stack (attack::RogueGateway) plug in through the env's
// deploy/stop hooks instead of rebuilding it here.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dot11/frame.hpp"
#include "net/addr.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/prng.hpp"

namespace rogue::attack {

/// Everything a World hands an attacker at configure() time.
struct AttackerEnv {
  sim::Simulator* sim = nullptr;
  phy::Medium* medium = nullptr;
  sim::Trace* trace = nullptr;

  // The identity being attacked / impersonated.
  std::string ssid = "CORP";
  net::MacAddr legit_bssid;
  net::MacAddr victim_mac;
  phy::Channel legit_channel = 1;
  phy::Channel rogue_channel = 6;
  std::uint16_t beacon_interval_tu = 100;
  std::uint16_t capability = dot11::kCapEss;

  /// Where the attacker's radio sits.
  phy::Position position{};
  /// Flood cadence for the noisy deauth attacker.
  sim::Time deauth_period = 100 * sim::kMillisecond;
  /// Seed-derived stream: all behavioural randomness (jitter, delays)
  /// must come from here so a replica is a pure function of its seed.
  util::Prng rng;

  /// Scenario hooks for the full rogue-gateway stack (built by the World,
  /// since it owns IP plans and wired segments).
  std::function<void()> deploy_rogue;
  std::function<void()> stop_rogue;
};

class Attacker {
 public:
  Attacker() = default;
  virtual ~Attacker() = default;

  Attacker(const Attacker&) = delete;
  Attacker& operator=(const Attacker&) = delete;

  /// Registry name, e.g. "deauth-flood" or "cloner".
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Bind to a world. The default implementation stores the env;
  /// subclasses extend it (open radios etc.) after calling it.
  virtual void configure(const AttackerEnv& env) { env_ = env; }
  virtual void start() = 0;
  virtual void stop() = 0;

 protected:
  AttackerEnv env_;
};

/// The control row of the tournament matrix: never transmits, so every
/// alert scored against it is a false positive.
class NullAttacker final : public Attacker {
 public:
  [[nodiscard]] std::string_view name() const override { return "none"; }
  void start() override {}
  void stop() override {}
};

/// Adapter putting the scenario-owned attack::RogueGateway stack behind
/// the Attacker interface via the env's deploy/stop hooks.
class ScriptedRogue final : public Attacker {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "rogue-gateway";
  }
  void start() override {
    if (env_.deploy_rogue) env_.deploy_rogue();
  }
  void stop() override {
    if (env_.stop_rogue) env_.stop_rogue();
  }
};

/// Registry, mirroring detect::make_detector(): nullptr for unknown
/// names. (ArpSpoofer is Attacker-shaped too but needs a net::Host, so
/// Worlds construct it directly rather than via the registry.)
[[nodiscard]] std::unique_ptr<Attacker> make_attacker(std::string_view name);
/// Names accepted by make_attacker().
[[nodiscard]] std::vector<std::string_view> known_attackers();

}  // namespace rogue::attack
