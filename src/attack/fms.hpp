// Fluhrer–Mantin–Shamir WEP key recovery — the "retrieved the WEP key via
// Airsnort" step of the paper's attack (§4). Given passively observed
// frames whose IV falls in the weak class (A+3, 0xFF, X), the first RC4
// keystream byte (recoverable because the first plaintext byte of every
// LLC/SNAP MSDU is 0xAA) leaks key byte A with probability ~5%; majority
// voting over ~60 weak IVs per byte recovers the key.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/wep.hpp"
#include "util/bytes.hpp"

namespace rogue::attack {

class FmsCracker {
 public:
  /// key_len: 5 (WEP-40) or 13 (WEP-104).
  explicit FmsCracker(std::size_t key_len);

  /// Record an observation. `first_cipher_byte` is the first byte of the
  /// RC4-encrypted body; `known_plain` the assumed first plaintext byte
  /// (0xAA for LLC/SNAP data frames).
  void add_sample(const crypto::WepIv& iv, std::uint8_t first_cipher_byte,
                  std::uint8_t known_plain = 0xaa);

  /// Convenience: feed a whole WEP-encapsulated frame body (as produced by
  /// wep_encrypt / seen on the air). Returns false if too short.
  bool add_frame(util::ByteView wep_body, std::uint8_t known_plain = 0xaa);

  [[nodiscard]] std::size_t samples() const { return total_samples_; }
  [[nodiscard]] std::size_t weak_samples() const { return weak_samples_; }

  /// Attempt key recovery from the votes accumulated so far.
  /// `min_votes`: minimum ballots a key byte needs before we trust it.
  [[nodiscard]] std::optional<util::Bytes> try_recover(
      std::size_t min_votes = 8) const;

 private:
  struct Sample {
    crypto::WepIv iv;
    std::uint8_t first_keystream;  ///< cipher ^ known plaintext
  };

  std::size_t key_len_;
  std::vector<std::vector<Sample>> per_byte_;  ///< indexed by key byte A
  std::size_t total_samples_ = 0;
  std::size_t weak_samples_ = 0;
};

}  // namespace rogue::attack
