#include "attack/replay.hpp"

namespace rogue::attack {

void RecordReplayer::configure(const AttackerEnv& env) {
  Attacker::configure(env);
  radio_ = std::make_unique<phy::Radio>(*env_.medium, "replay");
  radio_->set_channel(env_.legit_channel);
  radio_->set_position(env_.position);
  radio_->set_receive_handler(
      [this](util::ByteView raw, const phy::RxInfo& /*info*/) {
        const auto frame = dot11::FrameView::parse(raw);
        // Bank only data frames moving through the victim BSS: those carry
        // the tunnel's sealed records. Management/control frames are noise
        // for this attack.
        if (!frame || frame->type != dot11::FrameType::kData) return;
        if (frame->addr1 != env_.legit_bssid && frame->addr2 != env_.legit_bssid) {
          return;
        }
        if (captures_.size() < kCaptureCap) {
          captures_.emplace_back(raw.begin(), raw.end());
        } else {
          captures_[next_slot_].assign(raw.begin(), raw.end());
          next_slot_ = (next_slot_ + 1) % kCaptureCap;
        }
        ++captured_;
      });
}

void RecordReplayer::replay_once() {
  if (captures_.empty()) return;
  // Replay a seed-chosen capture byte-for-byte: same MACs, same sequence
  // number, same (still validly sealed) payload.
  const auto idx = static_cast<std::size_t>(
      env_.rng.uniform_u32(static_cast<std::uint32_t>(captures_.size())));
  const auto& capture = captures_[idx];
  util::Bytes raw = radio_->acquire_buffer(capture.size());
  raw.assign(capture.begin(), capture.end());
  radio_->transmit(std::move(raw));
  ++replayed_;
}

void RecordReplayer::schedule_next() {
  // 200–800 ms between replays: fast enough that a session sees many per
  // keepalive interval, slow enough to stay under flood-rate monitors.
  const sim::Time gap =
      200'000 + static_cast<sim::Time>(env_.rng.uniform01() * 600'000.0);
  timer_ = env_.sim->after(gap, [this] {
    if (!running_) return;
    replay_once();
    schedule_next();
  });
}

void RecordReplayer::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void RecordReplayer::stop() {
  if (!running_) return;
  running_ = false;
  env_.sim->cancel(timer_);
}

}  // namespace rogue::attack
