#include "attack/sniffer.hpp"

#include "crypto/wep.hpp"

namespace rogue::attack {

Sniffer::Sniffer(sim::Simulator& simulator, phy::Medium& medium, SnifferConfig config)
    : sim_(simulator),
      config_(std::move(config)),
      radio_(medium, "sniffer"),
      fms_(config_.fms_key_len) {
  if (config_.wpa_psk) {
    wpa_.emplace(*config_.wpa_psk, config_.wpa_ssid);
  }
  radio_.set_channel(config_.channel);
  radio_.set_receive_handler(
      [this](util::ByteView raw, const phy::RxInfo& info) { on_receive(raw, info); });
  if (!config_.hop_channels.empty()) {
    radio_.set_channel(config_.hop_channels.front());
    sim_.every(config_.hop_dwell, [this] {
      hop_index_ = (hop_index_ + 1) % config_.hop_channels.size();
      radio_.set_channel(config_.hop_channels[hop_index_]);
    });
  }
}

std::vector<ObservedBss> Sniffer::observed_bss() const {
  std::vector<ObservedBss> out;
  out.reserve(bss_.size());
  for (const auto& [key, bss] : bss_) out.push_back(bss);
  return out;
}

void Sniffer::on_receive(util::ByteView raw, const phy::RxInfo& info) {
  ++counters_.frames;
  if (pcap_ != nullptr) pcap_->add_frame(info.time, raw);
  const auto frame = dot11::FrameView::parse(raw);
  if (!frame) return;

  if (frame->type == dot11::FrameType::kManagement) {
    ++counters_.mgmt_frames;
    if (frame->is_mgmt(dot11::MgmtSubtype::kBeacon) ||
        frame->is_mgmt(dot11::MgmtSubtype::kProbeResp)) {
      const auto beacon = dot11::BeaconBody::decode(frame->body);
      if (beacon) {
        auto& entry = bss_[{frame->addr2, info.channel}];
        entry.ssid = beacon->ssid;
        entry.bssid = frame->addr2;
        entry.channel = info.channel;
        entry.privacy = beacon->privacy();
        entry.last_rssi_dbm = info.rssi_dbm;
        ++entry.beacons;
      }
    } else if (frame->is_mgmt(dot11::MgmtSubtype::kAssocReq) ||
               frame->is_mgmt(dot11::MgmtSubtype::kAuth)) {
      clients_.insert(frame->addr2);
    }
    return;
  }

  if (frame->is_data()) handle_data(*frame);
}

void Sniffer::handle_data(const dot11::FrameView& frame) {
  ++counters_.data_frames;
  counters_.data_bytes_on_air += frame.body.size();
  if (frame.to_ds) clients_.insert(frame.addr2);

  const net::MacAddr bssid = frame.to_ds ? frame.addr1 : frame.addr2;
  const net::MacAddr peer = frame.to_ds ? frame.addr2 : frame.addr1;

  util::Bytes decrypted;  // owns the plaintext when we had to decrypt
  util::ByteView msdu;
  if (frame.protected_frame) {
    ++counters_.wep_data_frames;
    bool opened = false;
    if (config_.wep_key) {
      auto dec = crypto::wep_decrypt(frame.body, *config_.wep_key);
      if (dec) {
        counters_.decrypted_bytes += dec->plaintext.size();
        decrypted = std::move(dec->plaintext);
        msdu = decrypted;
        opened = true;
      }
    }
    if (!opened && wpa_) {
      // Pairwise WPA traffic: derive the PTK from the observed handshake.
      auto dec = wpa_->decrypt(bssid, peer, frame.body);
      if (dec) {
        counters_.decrypted_bytes += dec->msdu.size();
        decrypted = std::move(dec->msdu);
        msdu = decrypted;
        opened = true;
      } else {
        ++counters_.wpa_decrypt_failures;
      }
    }
    if (!opened) {
      if (config_.wep_key) ++counters_.wep_decrypt_failures;
      fms_.add_frame(frame.body);
      return;
    }
  } else {
    counters_.plaintext_bytes += frame.body.size();
    msdu = frame.body;
    // Cleartext EAPOL: harvest handshake nonces for PTK derivation.
    if (wpa_) {
      const auto llc = dot11::llc_decode(msdu);
      if (llc && llc->ethertype == dot11::kEtherTypeEapol) {
        const auto hs = dot11::WpaHandshakeFrame::decode(llc->payload);
        if (hs) {
          ++counters_.wpa_handshakes_observed;
          wpa_->observe_handshake(bssid, peer, *hs);
        }
      }
    }
  }

  const auto llc = dot11::llc_decode(msdu);
  if (!llc) return;
  if (on_msdu_) {
    const net::MacAddr src = frame.to_ds ? frame.addr2 : frame.addr3;
    const net::MacAddr dst = frame.to_ds ? frame.addr3 : frame.addr1;
    on_msdu_(src, dst, llc->ethertype, llc->payload);
  }
}

}  // namespace rogue::attack
