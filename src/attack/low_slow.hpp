// Low-and-slow deauthentication (arXiv 2512.10470's rate-evasion class):
// instead of flooding, forge one deauth every few seconds with
// seed-derived jitter, and stamp each forgery with the legitimate AP's
// overheard sequence counter + 1 so the stream stays inside the
// sequence-control monitor's retry tolerance. The victim still loses its
// association on every frame; a rate- or sequence-based detector sees
// nothing. Physics again betrays it: the forgeries carry the attacker's
// RSSI, not the AP's.
#pragma once

#include <cstdint>
#include <memory>

#include "attack/attacker.hpp"

namespace rogue::attack {

class LowSlowDeauth final : public Attacker {
 public:
  LowSlowDeauth() = default;

  [[nodiscard]] std::string_view name() const override {
    return "low-slow-deauth";
  }
  /// Opens the listening radio immediately so the sequence counter is
  /// already tracked when start() fires.
  void configure(const AttackerEnv& env) override;
  void start() override;
  void stop() override;

  [[nodiscard]] std::uint64_t frames_sent() const { return sent_; }

 private:
  void send_once();
  void schedule_next();

  std::unique_ptr<phy::Radio> radio_;
  bool running_ = false;
  bool seq_seen_ = false;
  std::uint16_t last_seq_ = 0;
  sim::TimerHandle timer_;
  std::uint64_t sent_ = 0;
};

}  // namespace rogue::attack
