// Sealed-record replay: passively capture 802.11 data frames off the air
// and retransmit them verbatim later. Against the paper's §5 tunnel
// countermeasure this is the canonical "crypto is not enough" probe — a
// captured record carries a valid MAC, so naive receivers that only check
// authenticity re-accept it. The tunnel's anti-replay window is what must
// hold the line: every replayed record lands inside (or behind) the
// window and is dropped before decryption side effects, so the attacker's
// acceptance rate against a windowed endpoint is exactly 0%.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/attacker.hpp"

namespace rogue::attack {

class RecordReplayer final : public Attacker {
 public:
  RecordReplayer() = default;

  [[nodiscard]] std::string_view name() const override { return "replay"; }
  /// Opens the capture radio immediately so frames overheard before
  /// start() are already banked when the first replay fires.
  void configure(const AttackerEnv& env) override;
  void start() override;
  void stop() override;

  [[nodiscard]] std::uint64_t frames_captured() const { return captured_; }
  [[nodiscard]] std::uint64_t frames_replayed() const { return replayed_; }

 private:
  void replay_once();
  void schedule_next();

  static constexpr std::size_t kCaptureCap = 64;

  std::unique_ptr<phy::Radio> radio_;
  bool running_ = false;
  /// Ring of verbatim raw captures (oldest overwritten once full).
  std::vector<std::vector<std::uint8_t>> captures_;
  std::size_t next_slot_ = 0;
  sim::TimerHandle timer_;
  std::uint64_t captured_ = 0;
  std::uint64_t replayed_ = 0;
};

}  // namespace rogue::attack
