// The complete attack box from Figures 1 and 2: a laptop with two WiFi
// cards. One (eth1, Netgear in the paper) associates to the legitimate
// CORP network as an ordinary client; the other (wlan0, D-Link + hostap)
// runs in Master mode advertising the same SSID (and, per Figure 1, the
// same AP MAC) with the same WEP key. parprouted bridges them by proxy
// ARP, Netfilter DNATs the victim's port-80 traffic for the target site
// into a local netsed, and netsed rewrites the download link + MD5SUM.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/http.hpp"
#include "apps/download.hpp"
#include "apps/netsed.hpp"
#include "attack/attacker.hpp"
#include "bridge/arp_proxy.hpp"
#include "dot11/ap.hpp"
#include "dot11/sta.hpp"
#include "net/host.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace rogue::attack {

struct RogueGatewayConfig {
  // Wireless identity to clone.
  std::string ssid = "CORP";
  bool use_wep = true;  ///< legacy knob; `security` wins when set explicitly
  util::Bytes wep_key;
  dot11::SecurityMode security = dot11::SecurityMode::kWep;
  util::Bytes wpa_psk;  ///< when security == kWpaPsk (the §2.2 "fix")
  dot11::AuthAlgorithm auth_algorithm = dot11::AuthAlgorithm::kOpenSystem;

  /// MAC used to associate to the legitimate network — "a MAC address
  /// that he has observed by sniffing network traffic" when ACLs are on.
  net::MacAddr client_mac;
  /// BSSID advertised by the rogue AP (Figure 1 clones the real AP MAC).
  net::MacAddr rogue_bssid;
  phy::Channel rogue_channel = 6;
  std::vector<phy::Channel> uplink_scan_channels = {1};

  // IP plan: both interfaces sit in the CORP subnet (paper appendix).
  net::Ipv4Addr wlan_ip;  ///< IP on the rogue BSS side
  net::Ipv4Addr eth_ip;   ///< IP on the uplink side
  unsigned prefix_len = 24;
  net::Ipv4Addr upstream_gateway;  ///< CORP default gateway

  // MITM payload rewriting.
  net::Ipv4Addr target_ip;        ///< the download site (iptables -d)
  std::uint16_t target_port = 80;
  std::uint16_t netsed_port = 10101;
  std::vector<apps::NetsedRule> netsed_rules;
  apps::NetsedMode netsed_mode = apps::NetsedMode::kPerSegment;

  /// If non-empty: serve this trojaned blob at http://<wlan_ip>/file.tgz.
  util::Bytes trojan_blob;

  /// TCP parameters for the gateway host (netsed + trojan server).
  net::TcpConfig tcp;
};

/// Attacker-shaped for uniform start()/stop() control; tournaments drive
/// it through the ScriptedRogue adapter because the World owns its
/// config (IP plan, trojan payload, wired topology).
class RogueGateway final : public Attacker {
 public:
  RogueGateway(sim::Simulator& simulator, phy::Medium& medium,
               RogueGatewayConfig config, sim::Trace* trace = nullptr);

  [[nodiscard]] std::string_view name() const override {
    return "rogue-gateway";
  }

  /// Bring up the uplink station, the rogue AP, bridge, NAT and netsed.
  void start() override;
  void stop() override;

  [[nodiscard]] bool uplink_associated() const { return uplink_->associated(); }
  [[nodiscard]] dot11::Station& uplink() { return *uplink_; }
  [[nodiscard]] dot11::AccessPoint& ap() { return *ap_; }
  [[nodiscard]] net::Host& host() { return *host_; }
  [[nodiscard]] apps::Netsed& netsed() { return *netsed_; }
  [[nodiscard]] bridge::ArpProxyBridge& bridge() { return *bridge_; }
  [[nodiscard]] const RogueGatewayConfig& config() const { return config_; }

  /// Stations currently captured by the rogue AP.
  [[nodiscard]] std::vector<net::MacAddr> captured_stations() const {
    return ap_->associated_stations();
  }

 private:
  sim::Simulator& sim_;
  RogueGatewayConfig config_;
  std::unique_ptr<dot11::Station> uplink_;
  std::unique_ptr<dot11::AccessPoint> ap_;
  std::unique_ptr<net::Host> host_;
  std::unique_ptr<bridge::ArpProxyBridge> bridge_;
  std::unique_ptr<apps::Netsed> netsed_;
  std::unique_ptr<apps::HttpServer> trojan_server_;
  bool started_ = false;
};

}  // namespace rogue::attack
