// Forged deauthentication — §4: "If the attacker knows the target client's
// MAC address he could force the client's disassociation from the
// legitimate AP until the client associates with the Rogue AP."
// 802.11-1999 management frames are unauthenticated, so forging addr2 ==
// the legitimate BSSID is all it takes.
#pragma once

#include <cstdint>
#include <memory>

#include "attack/attacker.hpp"
#include "dot11/frame.hpp"
#include "net/addr.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace rogue::attack {

class DeauthAttacker final : public Attacker {
 public:
  DeauthAttacker() = default;
  /// Legacy convenience: forges deauth frames from `spoofed_bssid` to
  /// `target` (use MacAddr::broadcast() to kick everyone) on `channel`.
  DeauthAttacker(sim::Simulator& simulator, phy::Medium& medium,
                 phy::Channel channel, net::MacAddr spoofed_bssid,
                 net::MacAddr target);

  [[nodiscard]] std::string_view name() const override {
    return "deauth-flood";
  }
  /// Spoofs env.legit_bssid at env.victim_mac from env.position, flooding
  /// at env.deauth_period.
  void configure(const AttackerEnv& env) override;

  /// Send one forged deauthentication frame now.
  void send_once();
  /// Flood at the given period until stop().
  void start(sim::Time period);
  void start() override { start(period_); }
  void stop() override;

  [[nodiscard]] std::uint64_t frames_sent() const { return sent_; }
  [[nodiscard]] phy::Radio& radio() { return *radio_; }

 private:
  std::unique_ptr<phy::Radio> radio_;
  net::MacAddr spoofed_bssid_;
  net::MacAddr target_;
  sim::Time period_ = 50'000;
  std::uint16_t seq_ = 0;
  std::uint64_t sent_ = 0;
  sim::TimerHandle timer_;
  bool running_ = false;
};

}  // namespace rogue::attack
