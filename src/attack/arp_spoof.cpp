#include "attack/arp_spoof.hpp"

#include "net/arp.hpp"
#include "util/assert.hpp"

namespace rogue::attack {

ArpSpoofer::ArpSpoofer(net::Host& attacker, const std::string& iface,
                       net::Ipv4Addr victim_ip, net::MacAddr victim_mac,
                       net::Ipv4Addr spoofed_ip)
    : attacker_(attacker),
      iface_(attacker.interface(iface)),
      victim_ip_(victim_ip),
      victim_mac_(victim_mac),
      spoofed_ip_(spoofed_ip) {
  ROGUE_ASSERT_MSG(iface_ != nullptr, "ArpSpoofer: unknown interface");
}

void ArpSpoofer::poison_once() {
  // Forged unsolicited reply: "spoofed_ip is-at <attacker MAC>", unicast
  // to the victim so the rest of the segment (and its switch CAM table)
  // is not disturbed.
  net::ArpPacket reply;
  reply.op = net::ArpOp::kReply;
  reply.sender_mac = iface_->mac();
  reply.sender_ip = spoofed_ip_;
  reply.target_mac = victim_mac_;
  reply.target_ip = victim_ip_;
  util::Bytes raw = attacker_.simulator().buffer_pool().acquire(28);
  reply.serialize_into(raw);
  iface_->send(victim_mac_, dot11::kEtherTypeArp, raw);
  attacker_.simulator().buffer_pool().release(std::move(raw));
  ++sent_;
}

void ArpSpoofer::start(sim::Time period) {
  if (running_) return;
  running_ = true;
  poison_once();
  timer_ = attacker_.simulator().every(period, [this] { poison_once(); });
}

void ArpSpoofer::stop() {
  if (!running_) return;
  running_ = false;
  attacker_.simulator().cancel(timer_);
}

}  // namespace rogue::attack
