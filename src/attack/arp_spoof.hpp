// ARP cache poisoning — the paper's §1.2 wired-MITM baseline: "In a wired
// network, one either needs to spoof DNS requests or ARP requests or
// compromise a valid gateway machine to obtain access to the clients
// traffic." This implements the ARP variant so the wired and wireless
// attack costs can be compared like-for-like: it works, but only from a
// jack on the victim's own switch — which is exactly the physical-access
// bar the paper says wireless removes.
#pragma once

#include <cstdint>

#include "attack/attacker.hpp"
#include "net/host.hpp"

namespace rogue::attack {

/// Poisons `victim`'s mapping of `spoofed_ip` (typically the default
/// gateway) to the attacker's own MAC, by periodically transmitting
/// forged ARP replies. The attacker host should have ip_forward enabled
/// and a real route to the true destination so traffic keeps flowing
/// (transparent interception rather than denial of service).
///
/// Attacker-shaped for uniform start()/stop() control, but constructed
/// directly (it needs a net::Host on the victim's segment, which the
/// radio-oriented AttackerEnv cannot provide) — so it is not in
/// make_attacker()'s registry.
class ArpSpoofer final : public Attacker {
 public:
  /// `iface` is the attacker-host interface on the victim's segment.
  ArpSpoofer(net::Host& attacker, const std::string& iface,
             net::Ipv4Addr victim_ip, net::MacAddr victim_mac,
             net::Ipv4Addr spoofed_ip);

  [[nodiscard]] std::string_view name() const override { return "arp-spoof"; }

  /// Send one forged reply immediately.
  void poison_once();
  /// Re-poison periodically (real caches age out; see ArpCache ttl).
  void start(sim::Time period);
  void start() override { start(period_); }
  void stop() override;

  [[nodiscard]] std::uint64_t replies_sent() const { return sent_; }

 private:
  net::Host& attacker_;
  net::NetIf* iface_;
  net::Ipv4Addr victim_ip_;
  net::MacAddr victim_mac_;
  net::Ipv4Addr spoofed_ip_;
  sim::Time period_ = 2 * sim::kSecond;
  std::uint64_t sent_ = 0;
  sim::TimerHandle timer_;
  bool running_ = false;
};

}  // namespace rogue::attack
