// pcap support now lives in the observability layer (obs/pcap.hpp) so the
// sweep runner and the attack tools share one writer/parser. These aliases
// keep the original attack:: spelling working for existing callers.
#pragma once

#include "obs/pcap.hpp"

namespace rogue::attack {

using PcapWriter = obs::PcapWriter;
using PcapRecord = obs::PcapRecord;
using PcapFile = obs::PcapFile;
using obs::pcap_parse;

}  // namespace rogue::attack
