#include "attack/rogue_gateway.hpp"

#include "util/assert.hpp"

namespace rogue::attack {

RogueGateway::RogueGateway(sim::Simulator& simulator, phy::Medium& medium,
                           RogueGatewayConfig config, sim::Trace* trace)
    : sim_(simulator), config_(std::move(config)) {
  // eth1: ordinary managed-mode client of the legitimate network.
  dot11::StationConfig sta_cfg;
  sta_cfg.mac = config_.client_mac;
  sta_cfg.target_ssid = config_.ssid;
  sta_cfg.security =
      config_.use_wep || config_.security != dot11::SecurityMode::kWep
          ? config_.security
          : dot11::SecurityMode::kOpen;
  sta_cfg.wep_key = config_.wep_key;
  sta_cfg.wpa_psk = config_.wpa_psk;
  sta_cfg.auth_algorithm = config_.auth_algorithm;
  sta_cfg.scan_channels = config_.uplink_scan_channels;
  uplink_ = std::make_unique<dot11::Station>(sim_, medium, sta_cfg, trace);

  // wlan0: Master mode, cloning SSID / WEP / (typically) the AP MAC.
  dot11::ApConfig ap_cfg;
  ap_cfg.ssid = config_.ssid;
  ap_cfg.bssid = config_.rogue_bssid;
  ap_cfg.channel = config_.rogue_channel;
  ap_cfg.security = sta_cfg.security;
  ap_cfg.wep_key = config_.wep_key;
  ap_cfg.wpa_psk = config_.wpa_psk;
  if (ap_cfg.security == dot11::SecurityMode::kEap) {
    // The rogue can only enroll the credential it actually has — its own.
    ap_cfg.eap_client_keys = {{config_.client_mac, config_.wpa_psk}};
  }
  ap_cfg.auth_algorithm = config_.auth_algorithm;
  ap_ = std::make_unique<dot11::AccessPoint>(sim_, medium, ap_cfg, trace);

  // The gateway host owning both interfaces.
  host_ = std::make_unique<net::Host>(sim_, "rogue-gateway", config_.tcp);
  host_->attach(std::make_unique<net::ApIf>("wlan0", *ap_));
  host_->attach(std::make_unique<net::StationIf>("eth1", *uplink_));
  host_->configure("wlan0", config_.wlan_ip, config_.prefix_len);
  host_->configure("eth1", config_.eth_ip, config_.prefix_len);

  // Appendix A: host routes + default gateway via the uplink side.
  host_->routes().remove_by_interface("wlan0");
  host_->routes().remove_by_interface("eth1");
  host_->routes().add_host(config_.upstream_gateway, "eth1");
  host_->routes().add_default(config_.upstream_gateway, "eth1");
}

void RogueGateway::start() {
  if (started_) return;
  started_ = true;

  // "parprouted wlan0 eth1" (also flips on ip_forward).
  bridge_ = std::make_unique<bridge::ArpProxyBridge>(*host_, "wlan0", "eth1");

  // iptables -t nat -A PREROUTING -p tcp -d Target-IP --dport 80
  //          -j DNAT --to Gateway-IP:10101
  net::Rule dnat;
  dnat.match.protocol = net::kProtoTcp;
  dnat.match.dst = config_.target_ip;
  dnat.match.dport = config_.target_port;
  dnat.target = net::RuleTarget::kDnat;
  dnat.nat_ip = config_.wlan_ip;
  dnat.nat_port = config_.netsed_port;
  host_->netfilter().append(net::Hook::kPrerouting, dnat);

  // netsed tcp 10101 Target-IP 80 s/.../...
  netsed_ = std::make_unique<apps::Netsed>(*host_, config_.netsed_port,
                                           config_.target_ip, config_.target_port,
                                           config_.netsed_rules, config_.netsed_mode);

  // Attacker-hosted mirror with the trojaned binary.
  if (!config_.trojan_blob.empty()) {
    trojan_server_ = std::make_unique<apps::HttpServer>(*host_, 80);
    apps::install_trojan_site(*trojan_server_, config_.trojan_blob);
  }

  uplink_->start();
  ap_->start();
}

void RogueGateway::stop() {
  if (!started_) return;
  started_ = false;
  ap_->stop();
  uplink_->stop();
}

}  // namespace rogue::attack
