#include "attack/fms.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace rogue::attack {

FmsCracker::FmsCracker(std::size_t key_len) : key_len_(key_len) {
  ROGUE_ASSERT_MSG(key_len == crypto::kWep40KeyLen || key_len == crypto::kWep104KeyLen,
                   "FMS targets 5- or 13-byte WEP keys");
  per_byte_.resize(key_len_);
}

void FmsCracker::add_sample(const crypto::WepIv& iv, std::uint8_t first_cipher_byte,
                            std::uint8_t known_plain) {
  ++total_samples_;
  if (!crypto::is_fms_weak_iv(iv, key_len_)) return;
  const std::size_t a = static_cast<std::size_t>(iv[0]) - 3;
  if (a >= key_len_) return;
  ++weak_samples_;
  per_byte_[a].push_back(
      Sample{iv, static_cast<std::uint8_t>(first_cipher_byte ^ known_plain)});
}

bool FmsCracker::add_frame(util::ByteView wep_body, std::uint8_t known_plain) {
  const auto header = crypto::wep_parse_header(wep_body);
  if (!header || header->ciphertext.empty()) return false;
  add_sample(header->iv, header->ciphertext[0], known_plain);
  return true;
}

std::optional<util::Bytes> FmsCracker::try_recover(std::size_t min_votes) const {
  util::Bytes key(key_len_, 0);

  for (std::size_t a = 0; a < key_len_; ++a) {
    std::array<std::uint32_t, 256> votes{};
    std::size_t ballots = 0;

    for (const Sample& s : per_byte_[a]) {
      // Replay the KSA for the first A+3 steps using IV + recovered bytes.
      std::array<std::uint8_t, 256> state;
      std::iota(state.begin(), state.end(), 0);
      std::uint8_t j = 0;
      const std::size_t steps = a + 3;
      bool ok = true;
      for (std::size_t i = 0; i < steps; ++i) {
        std::uint8_t k_i = 0;
        if (i < 3) {
          k_i = s.iv[i];
        } else {
          k_i = key[i - 3];  // previously recovered secret bytes
        }
        j = static_cast<std::uint8_t>(j + state[i] + k_i);
        std::swap(state[i], state[j]);
      }
      // Resolved condition: S[1] < A+3 and S[1] + S[S[1]] == A+3, so the
      // first output byte depends on S[A+3] with ~5% bias.
      const std::uint8_t z = state[1];
      if (!(z < steps && static_cast<std::size_t>(z) + state[z] == steps)) {
        ok = false;
      }
      if (!ok) continue;

      // Invert: out = S[S[1] + S[S[1]]]; after the next KSA step with the
      // unknown key byte, out sits where K[A] moved it.
      const std::uint8_t out = s.first_keystream;
      // Find index of `out` in the current state.
      std::uint8_t inv = 0;
      for (int idx = 0; idx < 256; ++idx) {
        if (state[static_cast<std::size_t>(idx)] == out) {
          inv = static_cast<std::uint8_t>(idx);
          break;
        }
      }
      const auto guess =
          static_cast<std::uint8_t>(inv - j - state[steps]);
      ++votes[guess];
      ++ballots;
    }

    if (ballots < min_votes) return std::nullopt;
    const auto best =
        std::max_element(votes.begin(), votes.end()) - votes.begin();
    key[a] = static_cast<std::uint8_t>(best);
  }
  return key;
}

}  // namespace rogue::attack
