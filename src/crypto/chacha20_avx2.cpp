// 4-block AVX2 ChaCha20 keystream kernel. This TU alone is compiled with
// -mavx2 (see src/CMakeLists.txt); everything else in the library stays at
// baseline codegen and reaches this kernel only through the runtime CPUID
// dispatch in chacha20.cpp, so one binary runs on SSE2-only hosts too.
//
// Layout: each ymm row vector carries the same ChaCha row of two
// *independent* blocks, one per 128-bit lane. Two such pairs (v = blocks
// c,c+1 and w = blocks c+2,c+3) run interleaved, giving four blocks per
// call with two dependency chains to keep the vector ALUs fed.
// _mm256_shuffle_epi32 operates per lane, so the SSE2 diagonalization
// trick carries over unchanged; the 16- and 8-bit rotates use byte
// shuffles instead of shift pairs (one uop on every AVX2 part).
#include "crypto/chacha20_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace rogue::crypto::detail {

namespace {

inline __m256i rotl16(__m256i v) {
  const __m256i mask = _mm256_setr_epi8(
      2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,  //
      2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
  return _mm256_shuffle_epi8(v, mask);
}

inline __m256i rotl8(__m256i v) {
  const __m256i mask = _mm256_setr_epi8(
      3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14,  //
      3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14);
  return _mm256_shuffle_epi8(v, mask);
}

inline __m256i rotl(__m256i v, int n) {
  return _mm256_or_si256(_mm256_slli_epi32(v, n), _mm256_srli_epi32(v, 32 - n));
}

inline void half_round(__m256i& v0, __m256i& v1, __m256i& v2, __m256i& v3) {
  v0 = _mm256_add_epi32(v0, v1);
  v3 = rotl16(_mm256_xor_si256(v3, v0));
  v2 = _mm256_add_epi32(v2, v3);
  v1 = rotl(_mm256_xor_si256(v1, v2), 12);
  v0 = _mm256_add_epi32(v0, v1);
  v3 = rotl8(_mm256_xor_si256(v3, v0));
  v2 = _mm256_add_epi32(v2, v3);
  v1 = rotl(_mm256_xor_si256(v1, v2), 7);
}

/// XOR [a.lane(sel0) | b.lane(sel0or1)] into two consecutive 16-byte rows.
inline void xor_store(std::uint8_t* p, __m256i lanes) {
  __m256i* out = reinterpret_cast<__m256i*>(p);
  _mm256_storeu_si256(out, _mm256_xor_si256(_mm256_loadu_si256(out), lanes));
}

}  // namespace

bool chacha20_avx2_compiled() { return true; }

void chacha20_xor_blocks4_avx2(const std::uint32_t* state, std::uint8_t* p) {
  const __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  const __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  const __m128i r2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 8));
  const __m128i r3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 12));
  const __m256i s0 = _mm256_broadcastsi128_si256(r0);
  const __m256i s1 = _mm256_broadcastsi128_si256(r1);
  const __m256i s2 = _mm256_broadcastsi128_si256(r2);
  // Row 3 is [counter, nonce0..2] per lane; bump the counter element so the
  // lanes hold blocks c / c+1 (v) and c+2 / c+3 (w).
  const __m256i s3v = _mm256_add_epi32(_mm256_broadcastsi128_si256(r3),
                                       _mm256_set_epi32(0, 0, 0, 1, 0, 0, 0, 0));
  const __m256i s3w = _mm256_add_epi32(_mm256_broadcastsi128_si256(r3),
                                       _mm256_set_epi32(0, 0, 0, 3, 0, 0, 0, 2));

  __m256i v0 = s0, v1 = s1, v2 = s2, v3 = s3v;
  __m256i w0 = s0, w1 = s1, w2 = s2, w3 = s3w;
  for (int round = 0; round < 10; ++round) {
    half_round(v0, v1, v2, v3);
    half_round(w0, w1, w2, w3);
    v1 = _mm256_shuffle_epi32(v1, _MM_SHUFFLE(0, 3, 2, 1));
    v2 = _mm256_shuffle_epi32(v2, _MM_SHUFFLE(1, 0, 3, 2));
    v3 = _mm256_shuffle_epi32(v3, _MM_SHUFFLE(2, 1, 0, 3));
    w1 = _mm256_shuffle_epi32(w1, _MM_SHUFFLE(0, 3, 2, 1));
    w2 = _mm256_shuffle_epi32(w2, _MM_SHUFFLE(1, 0, 3, 2));
    w3 = _mm256_shuffle_epi32(w3, _MM_SHUFFLE(2, 1, 0, 3));
    half_round(v0, v1, v2, v3);
    half_round(w0, w1, w2, w3);
    v1 = _mm256_shuffle_epi32(v1, _MM_SHUFFLE(2, 1, 0, 3));
    v2 = _mm256_shuffle_epi32(v2, _MM_SHUFFLE(1, 0, 3, 2));
    v3 = _mm256_shuffle_epi32(v3, _MM_SHUFFLE(0, 3, 2, 1));
    w1 = _mm256_shuffle_epi32(w1, _MM_SHUFFLE(2, 1, 0, 3));
    w2 = _mm256_shuffle_epi32(w2, _MM_SHUFFLE(1, 0, 3, 2));
    w3 = _mm256_shuffle_epi32(w3, _MM_SHUFFLE(0, 3, 2, 1));
  }
  v0 = _mm256_add_epi32(v0, s0);
  v1 = _mm256_add_epi32(v1, s1);
  v2 = _mm256_add_epi32(v2, s2);
  v3 = _mm256_add_epi32(v3, s3v);
  w0 = _mm256_add_epi32(w0, s0);
  w1 = _mm256_add_epi32(w1, s1);
  w2 = _mm256_add_epi32(w2, s2);
  w3 = _mm256_add_epi32(w3, s3w);

  // Each vector holds one row of two blocks; the keystream wants whole
  // blocks contiguous. permute2x128 pairs up the low lanes (block c rows
  // 0/1, then 2/3) and the high lanes (block c+1), likewise for w.
  xor_store(p + 0, _mm256_permute2x128_si256(v0, v1, 0x20));
  xor_store(p + 32, _mm256_permute2x128_si256(v2, v3, 0x20));
  xor_store(p + 64, _mm256_permute2x128_si256(v0, v1, 0x31));
  xor_store(p + 96, _mm256_permute2x128_si256(v2, v3, 0x31));
  xor_store(p + 128, _mm256_permute2x128_si256(w0, w1, 0x20));
  xor_store(p + 160, _mm256_permute2x128_si256(w2, w3, 0x20));
  xor_store(p + 192, _mm256_permute2x128_si256(w0, w1, 0x31));
  xor_store(p + 224, _mm256_permute2x128_si256(w2, w3, 0x31));
}

}  // namespace rogue::crypto::detail

#else  // !__AVX2__: keep the symbols so dispatch links on any target.

namespace rogue::crypto::detail {

bool chacha20_avx2_compiled() { return false; }

void chacha20_xor_blocks4_avx2(const std::uint32_t*, std::uint8_t*) {}

}  // namespace rogue::crypto::detail

#endif  // __AVX2__
