#include "crypto/wep.hpp"

#include "crypto/crc32.hpp"
#include "crypto/rc4.hpp"
#include "util/assert.hpp"

namespace rogue::crypto {

bool is_fms_weak_iv(const WepIv& iv, std::size_t key_len) {
  // Classic FMS class: IV = (A + 3, 0xFF, X) leaks key byte A.
  if (iv[1] != 0xff) return false;
  return iv[0] >= 3 && iv[0] < 3 + key_len;
}

WepIvGenerator::WepIvGenerator(WepIvPolicy policy, std::size_t key_len,
                               std::uint64_t seed)
    : policy_(policy), key_len_(key_len), rng_(seed) {}

WepIv WepIvGenerator::next() {
  WepIv iv{};
  switch (policy_) {
    case WepIvPolicy::kRandom: {
      rng_.fill(iv);
      return iv;
    }
    case WepIvPolicy::kSequential: {
      // Little-endian counter, as on Prism-era cards: the low byte is
      // iv[0], so FMS-weak IVs (A+3, 0xFF, X) recur every 64 Ki frames.
      iv[0] = static_cast<std::uint8_t>(counter_);
      iv[1] = static_cast<std::uint8_t>(counter_ >> 8);
      iv[2] = static_cast<std::uint8_t>(counter_ >> 16);
      counter_ = (counter_ + 1) & 0xffffffu;
      return iv;
    }
    case WepIvPolicy::kSkipWeak: {
      do {
        iv[0] = static_cast<std::uint8_t>(counter_);
        iv[1] = static_cast<std::uint8_t>(counter_ >> 8);
        iv[2] = static_cast<std::uint8_t>(counter_ >> 16);
        counter_ = (counter_ + 1) & 0xffffffu;
      } while (is_fms_weak_iv(iv, key_len_));
      return iv;
    }
  }
  return iv;
}

namespace {
[[nodiscard]] util::Bytes rc4_key(const WepIv& iv, util::ByteView key) {
  util::Bytes k;
  k.reserve(kWepIvLen + key.size());
  k.insert(k.end(), iv.begin(), iv.end());
  k.insert(k.end(), key.begin(), key.end());
  return k;
}
}  // namespace

util::Bytes wep_encrypt(const WepIv& iv, util::ByteView key, util::ByteView plaintext,
                        std::uint8_t key_id) {
  ROGUE_ASSERT_MSG(key.size() == kWep40KeyLen || key.size() == kWep104KeyLen,
                   "WEP key must be 5 or 13 bytes");
  ROGUE_ASSERT_MSG(key_id < 4, "WEP key id is 2 bits");

  // plaintext || ICV (CRC-32 little-endian, per 802.11-1999 8.2.3).
  util::Bytes data(plaintext.begin(), plaintext.end());
  const std::uint32_t icv = crc32(plaintext);
  for (int i = 0; i < 4; ++i) data.push_back(static_cast<std::uint8_t>(icv >> (8 * i)));

  Rc4 cipher(rc4_key(iv, key));
  cipher.process(data);

  util::Bytes out;
  out.reserve(kWepIvLen + 1 + data.size());
  out.insert(out.end(), iv.begin(), iv.end());
  out.push_back(static_cast<std::uint8_t>(key_id << 6));
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::optional<WepHeader> wep_parse_header(util::ByteView body) {
  if (body.size() < kWepIvLen + 1 + kWepIcvLen) return std::nullopt;
  WepHeader h{};
  h.iv = {body[0], body[1], body[2]};
  h.key_id = static_cast<std::uint8_t>(body[3] >> 6);
  h.ciphertext = body.subspan(kWepIvLen + 1);
  return h;
}

std::optional<WepDecryptResult> wep_decrypt(util::ByteView body, util::ByteView key) {
  const auto header = wep_parse_header(body);
  if (!header) return std::nullopt;

  Rc4 cipher(rc4_key(header->iv, key));
  util::Bytes data = cipher.apply(header->ciphertext);

  const std::size_t plain_len = data.size() - kWepIcvLen;
  std::uint32_t icv = 0;
  for (int i = 0; i < 4; ++i) {
    icv |= static_cast<std::uint32_t>(data[plain_len + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  data.resize(plain_len);
  if (crc32(data) != icv) return std::nullopt;

  return WepDecryptResult{std::move(data), header->iv, header->key_id};
}

}  // namespace rogue::crypto
