#include "crypto/bignum.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rogue::crypto {

namespace {
__extension__ using u128 = unsigned __int128;
}

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_bytes_be(util::ByteView bytes) {
  BigUint out;
  for (const std::uint8_t byte : bytes) {
    out = shl(out, 8);
    if (byte != 0 || !out.limbs_.empty()) {
      if (out.limbs_.empty()) out.limbs_.push_back(0);
      out.limbs_[0] |= byte;
    }
  }
  out.trim();
  return out;
}

BigUint BigUint::from_hex(std::string_view hex) {
  util::Bytes digits;
  std::string clean;
  for (const char c : hex) {
    if (c == ' ' || c == '\n' || c == '\t') continue;
    clean.push_back(c);
  }
  if (clean.size() % 2 == 1) clean.insert(clean.begin(), '0');
  const auto bytes = util::hex_decode(clean);
  ROGUE_ASSERT_MSG(bytes.has_value(), "invalid hex in BigUint::from_hex");
  return from_bytes_be(*bytes);
}

util::Bytes BigUint::to_bytes_be(std::size_t pad_to) const {
  util::Bytes out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int b = 7; b >= 0; --b) {
      const auto byte = static_cast<std::uint8_t>(*it >> (8 * b));
      if (!out.empty() || byte != 0) out.push_back(byte);
    }
  }
  while (out.size() < pad_to) out.insert(out.begin(), 0);
  return out;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  std::string s = util::hex_encode(to_bytes_be());
  const std::size_t nz = s.find_first_not_of('0');
  return nz == std::string::npos ? "0" : s.substr(nz);
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 64;
  std::uint64_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return ((limbs_[limb] >> (i % 64)) & 1u) != 0;
}

int BigUint::compare(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint BigUint::add(const BigUint& a, const BigUint& b) {
  BigUint out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n, 0);
  u128 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  if (carry != 0) out.limbs_.push_back(static_cast<std::uint64_t>(carry));
  return out;
}

BigUint BigUint::sub(const BigUint& a, const BigUint& b) {
  ROGUE_ASSERT_MSG(compare(a, b) >= 0, "BigUint::sub underflow");
  BigUint out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t bv = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const std::uint64_t av = a.limbs_[i];
    const std::uint64_t diff = av - bv - borrow;
    borrow = (av < bv + borrow || (bv == ~0ULL && borrow == 1)) ? 1 : 0;
    out.limbs_[i] = diff;
  }
  out.trim();
  return out;
}

BigUint BigUint::mul(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return {};
  BigUint out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u128 carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                 out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry != 0) {
      u128 cur = static_cast<u128>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigUint BigUint::shl(const BigUint& a, std::size_t bits) {
  if (a.is_zero() || bits == 0) return a;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? a.limbs_[i] : (a.limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

BigUint BigUint::shr(const BigUint& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= a.limbs_.size()) return {};
  const std::size_t bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift == 0 ? a.limbs_[i + limb_shift]
                                   : (a.limbs_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      out.limbs_[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& a, const BigUint& b) {
  ROGUE_ASSERT_MSG(!b.is_zero(), "BigUint division by zero");
  if (compare(a, b) < 0) return {BigUint{}, a};

  // Bitwise long division; adequate for DH-sized (<= 2048 bit) operands.
  BigUint quotient;
  BigUint remainder;
  const std::size_t nbits = a.bit_length();
  quotient.limbs_.assign((nbits + 63) / 64, 0);
  for (std::size_t i = nbits; i-- > 0;) {
    remainder = shl(remainder, 1);
    if (a.bit(i)) {
      if (remainder.limbs_.empty()) remainder.limbs_.push_back(0);
      remainder.limbs_[0] |= 1;
    }
    if (compare(remainder, b) >= 0) {
      remainder = sub(remainder, b);
      quotient.limbs_[i / 64] |= (1ULL << (i % 64));
    }
  }
  quotient.trim();
  remainder.trim();
  return {quotient, remainder};
}

BigUint BigUint::mod(const BigUint& a, const BigUint& m) {
  return divmod(a, m).second;
}

BigUint BigUint::mod_pow(const BigUint& base, const BigUint& exp, const BigUint& m) {
  ROGUE_ASSERT_MSG(compare(m, BigUint(1)) > 0, "modulus must be > 1");
  BigUint result(1);
  BigUint b = mod(base, m);
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = 0; i < nbits; ++i) {
    if (exp.bit(i)) result = mod(mul(result, b), m);
    b = mod(mul(b, b), m);
  }
  return result;
}

}  // namespace rogue::crypto
