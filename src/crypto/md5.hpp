// MD5 (RFC 1321). The paper's download page publishes an MD5SUM that the
// attack forges alongside the payload; the downloader client verifies it
// with this implementation.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace rogue::crypto {

using Md5Digest = std::array<std::uint8_t, 16>;

class Md5 {
 public:
  Md5();

  void update(util::ByteView data);
  /// Finalize and return the digest; the object must not be reused after.
  [[nodiscard]] Md5Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

/// One-shot digest.
[[nodiscard]] Md5Digest md5(util::ByteView data);
/// Lower-case hex digest, the `md5sum` output format.
[[nodiscard]] std::string md5_hex(util::ByteView data);

}  // namespace rogue::crypto
