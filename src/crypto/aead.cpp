#include "crypto/aead.hpp"

#include <array>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "util/assert.hpp"

namespace rogue::crypto {

namespace {
[[nodiscard]] std::array<std::uint8_t, kChaChaNonceLen> nonce_from_seq(std::uint64_t seq) {
  std::array<std::uint8_t, kChaChaNonceLen> nonce{};
  for (std::size_t i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return nonce;
}

[[nodiscard]] std::array<std::uint8_t, 8> u64be_bytes(std::uint64_t v) {
  std::array<std::uint8_t, 8> out;
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
  }
  return out;
}

// Streams the MAC input (seq || len(ad) || ad || len(ct) || ct) through the
// incremental HMAC instead of staging it in a per-record scratch buffer.
[[nodiscard]] Sha256Digest record_mac(util::ByteView mac_key, std::uint64_t seq,
                                      util::ByteView ad, util::ByteView ciphertext) {
  HmacSha256 mac(mac_key);
  const auto seq_be = u64be_bytes(seq);
  const auto ad_len = u64be_bytes(ad.size());
  const auto ct_len = u64be_bytes(ciphertext.size());
  mac.update(util::ByteView(seq_be.data(), seq_be.size()));
  mac.update(util::ByteView(ad_len.data(), ad_len.size()));
  mac.update(ad);
  mac.update(util::ByteView(ct_len.data(), ct_len.size()));
  mac.update(ciphertext);
  return mac.finish();
}
}  // namespace

void aead_seal_append(util::ByteView key, std::uint64_t seq, util::ByteView ad,
                      util::ByteView plaintext, util::Bytes& out) {
  ROGUE_ASSERT_MSG(key.size() == kAeadKeyLen, "AEAD key must be 64 bytes");
  const util::ByteView enc_key = key.subspan(0, kChaChaKeyLen);
  const util::ByteView mac_key = key.subspan(kChaChaKeyLen);

  const std::size_t base = out.size();
  out.reserve(base + plaintext.size() + kAeadTagLen);
  out.insert(out.end(), plaintext.begin(), plaintext.end());

  const auto nonce = nonce_from_seq(seq);
  ChaCha20 cipher(enc_key, util::ByteView(nonce.data(), nonce.size()));
  cipher.process(std::span<std::uint8_t>(out).subspan(base));  // encrypt in place

  const Sha256Digest mac =
      record_mac(mac_key, seq, ad, util::ByteView(out).subspan(base));
  out.insert(out.end(), mac.begin(), mac.begin() + kAeadTagLen);
}

util::Bytes aead_seal(util::ByteView key, std::uint64_t seq, util::ByteView ad,
                      util::ByteView plaintext) {
  util::Bytes out;
  aead_seal_append(key, seq, ad, plaintext, out);
  return out;
}

bool aead_open_append(util::ByteView key, std::uint64_t seq, util::ByteView ad,
                      util::ByteView sealed, util::Bytes& out) {
  ROGUE_ASSERT_MSG(key.size() == kAeadKeyLen, "AEAD key must be 64 bytes");
  if (sealed.size() < kAeadTagLen) return false;
  const util::ByteView enc_key = key.subspan(0, kChaChaKeyLen);
  const util::ByteView mac_key = key.subspan(kChaChaKeyLen);

  const util::ByteView ciphertext = sealed.subspan(0, sealed.size() - kAeadTagLen);
  const util::ByteView tag = sealed.subspan(sealed.size() - kAeadTagLen);

  const Sha256Digest mac = record_mac(mac_key, seq, ad, ciphertext);
  if (!util::equal_ct(util::ByteView(mac.data(), kAeadTagLen), tag)) {
    return false;
  }

  const std::size_t base = out.size();
  out.insert(out.end(), ciphertext.begin(), ciphertext.end());
  const auto nonce = nonce_from_seq(seq);
  ChaCha20 cipher(enc_key, util::ByteView(nonce.data(), nonce.size()));
  cipher.process(std::span<std::uint8_t>(out).subspan(base));  // decrypt in place
  return true;
}

std::optional<util::Bytes> aead_open(util::ByteView key, std::uint64_t seq,
                                     util::ByteView ad, util::ByteView sealed) {
  util::Bytes out;
  if (!aead_open_append(key, seq, ad, sealed, out)) return std::nullopt;
  return out;
}

}  // namespace rogue::crypto
