#include "crypto/aead.hpp"

#include <array>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "util/assert.hpp"

namespace rogue::crypto {

namespace {
[[nodiscard]] std::array<std::uint8_t, kChaChaNonceLen> nonce_from_seq(std::uint64_t seq) {
  std::array<std::uint8_t, kChaChaNonceLen> nonce{};
  for (std::size_t i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return nonce;
}

[[nodiscard]] Sha256Digest record_mac(util::ByteView mac_key, std::uint64_t seq,
                                      util::ByteView ad, util::ByteView ciphertext) {
  util::Bytes msg;
  msg.reserve(8 + 8 + ad.size() + 8 + ciphertext.size());
  util::ByteWriter w(msg);
  w.u64be(seq);
  w.u64be(ad.size());
  w.raw(ad);
  w.u64be(ciphertext.size());
  w.raw(ciphertext);
  return hmac_sha256(mac_key, msg);
}
}  // namespace

util::Bytes aead_seal(util::ByteView key, std::uint64_t seq, util::ByteView ad,
                      util::ByteView plaintext) {
  ROGUE_ASSERT_MSG(key.size() == kAeadKeyLen, "AEAD key must be 64 bytes");
  const util::ByteView enc_key = key.subspan(0, kChaChaKeyLen);
  const util::ByteView mac_key = key.subspan(kChaChaKeyLen);

  const auto nonce = nonce_from_seq(seq);
  ChaCha20 cipher(enc_key, util::ByteView(nonce.data(), nonce.size()));
  util::Bytes out = cipher.apply(plaintext);

  const Sha256Digest mac = record_mac(mac_key, seq, ad, out);
  out.insert(out.end(), mac.begin(), mac.begin() + kAeadTagLen);
  return out;
}

std::optional<util::Bytes> aead_open(util::ByteView key, std::uint64_t seq,
                                     util::ByteView ad, util::ByteView sealed) {
  ROGUE_ASSERT_MSG(key.size() == kAeadKeyLen, "AEAD key must be 64 bytes");
  if (sealed.size() < kAeadTagLen) return std::nullopt;
  const util::ByteView enc_key = key.subspan(0, kChaChaKeyLen);
  const util::ByteView mac_key = key.subspan(kChaChaKeyLen);

  const util::ByteView ciphertext = sealed.subspan(0, sealed.size() - kAeadTagLen);
  const util::ByteView tag = sealed.subspan(sealed.size() - kAeadTagLen);

  const Sha256Digest mac = record_mac(mac_key, seq, ad, ciphertext);
  if (!util::equal_ct(util::ByteView(mac.data(), kAeadTagLen), tag)) {
    return std::nullopt;
  }

  const auto nonce = nonce_from_seq(seq);
  ChaCha20 cipher(enc_key, util::ByteView(nonce.data(), nonce.size()));
  return cipher.apply(ciphertext);
}

}  // namespace rogue::crypto
