// Authenticated encryption for VPN records: ChaCha20 encrypt-then-MAC with
// HMAC-SHA256 (truncated to 16 bytes). The MAC covers the associated data
// (record header) and the ciphertext, so rogue-AP tampering is detected.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace rogue::crypto {

inline constexpr std::size_t kAeadKeyLen = 64;  // 32 cipher + 32 mac
inline constexpr std::size_t kAeadTagLen = 16;

/// Seals plaintext under (key, seq). Output = ciphertext || tag.
/// `key` must be kAeadKeyLen bytes; `seq` doubles as the nonce, so every
/// record under one key must use a distinct sequence number.
[[nodiscard]] util::Bytes aead_seal(util::ByteView key, std::uint64_t seq,
                                    util::ByteView associated_data,
                                    util::ByteView plaintext);

/// Opens ciphertext||tag; returns nullopt on authentication failure.
[[nodiscard]] std::optional<util::Bytes> aead_open(util::ByteView key,
                                                   std::uint64_t seq,
                                                   util::ByteView associated_data,
                                                   util::ByteView sealed);

/// Zero-copy variants for pooled buffers: append ciphertext||tag (resp. the
/// recovered plaintext) to `out`, encrypting/decrypting in place in `out`
/// rather than round-tripping through a fresh allocation per record.
void aead_seal_append(util::ByteView key, std::uint64_t seq,
                      util::ByteView associated_data, util::ByteView plaintext,
                      util::Bytes& out);
/// Returns false (leaving `out` untouched) on authentication failure.
[[nodiscard]] bool aead_open_append(util::ByteView key, std::uint64_t seq,
                                    util::ByteView associated_data,
                                    util::ByteView sealed, util::Bytes& out);

}  // namespace rogue::crypto
