// SHA-256 (FIPS 180-4). Basis of HMAC-SHA256, the VPN's record MAC and
// key-derivation PRF.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace rogue::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(util::ByteView data);
  [[nodiscard]] Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

[[nodiscard]] Sha256Digest sha256(util::ByteView data);
[[nodiscard]] std::string sha256_hex(util::ByteView data);

}  // namespace rogue::crypto
