// ChaCha20 stream cipher (RFC 8439 quarter rounds, 96-bit nonce) — the
// VPN tunnel's transport cipher. Combined with HMAC-SHA256 in
// encrypt-then-MAC form by aead.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace rogue::crypto {

inline constexpr std::size_t kChaChaKeyLen = 32;
inline constexpr std::size_t kChaChaNonceLen = 12;

/// Keystream kernel selection. kAuto probes the CPU once (AVX2 > SSE2 >
/// scalar); the explicit values force a path for tests and benchmarks.
/// Every backend produces byte-identical keystream — only speed differs.
enum class ChaChaBackend { kAuto, kScalar, kSse2, kAvx2 };

/// Force the process() kernel. Call before streaming work starts (init or
/// test setup — the switch is not synchronized against in-flight calls).
/// Forcing a backend the host cannot run falls back to the best available
/// one. Returns the backend actually in effect.
ChaChaBackend chacha20_set_backend(ChaChaBackend backend);
/// The backend process() currently dispatches to (never kAuto).
[[nodiscard]] ChaChaBackend chacha20_backend();

class ChaCha20 {
 public:
  /// key: 32 bytes, nonce: 12 bytes, counter: initial block counter.
  ChaCha20(util::ByteView key, util::ByteView nonce, std::uint32_t counter = 0);

  /// XOR keystream into data in place (encrypt == decrypt).
  void process(std::span<std::uint8_t> data);

  [[nodiscard]] util::Bytes apply(util::ByteView data);

 private:
  void next_block_words(std::array<std::uint32_t, 16>& out);
  void refill();

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> block_{};
  std::size_t block_pos_ = 64;  // empty
};

}  // namespace rogue::crypto
