#include "crypto/chacha20.hpp"

#include <bit>

#include "util/assert.hpp"

namespace rogue::crypto {

namespace {
void quarter_round(std::array<std::uint32_t, 16>& s, int a, int b, int c, int d) {
  s[static_cast<std::size_t>(a)] += s[static_cast<std::size_t>(b)];
  s[static_cast<std::size_t>(d)] = std::rotl(s[static_cast<std::size_t>(d)] ^ s[static_cast<std::size_t>(a)], 16);
  s[static_cast<std::size_t>(c)] += s[static_cast<std::size_t>(d)];
  s[static_cast<std::size_t>(b)] = std::rotl(s[static_cast<std::size_t>(b)] ^ s[static_cast<std::size_t>(c)], 12);
  s[static_cast<std::size_t>(a)] += s[static_cast<std::size_t>(b)];
  s[static_cast<std::size_t>(d)] = std::rotl(s[static_cast<std::size_t>(d)] ^ s[static_cast<std::size_t>(a)], 8);
  s[static_cast<std::size_t>(c)] += s[static_cast<std::size_t>(d)];
  s[static_cast<std::size_t>(b)] = std::rotl(s[static_cast<std::size_t>(b)] ^ s[static_cast<std::size_t>(c)], 7);
}

[[nodiscard]] std::uint32_t load32le(util::ByteView b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}
}  // namespace

ChaCha20::ChaCha20(util::ByteView key, util::ByteView nonce, std::uint32_t counter) {
  ROGUE_ASSERT_MSG(key.size() == kChaChaKeyLen, "ChaCha20 key must be 32 bytes");
  ROGUE_ASSERT_MSG(nonce.size() == kChaChaNonceLen, "ChaCha20 nonce must be 12 bytes");
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (std::size_t i = 0; i < 8; ++i) state_[4 + i] = load32le(key, i * 4);
  state_[12] = counter;
  for (std::size_t i = 0; i < 3; ++i) state_[13 + i] = load32le(nonce, i * 4);
}

void ChaCha20::refill() {
  std::array<std::uint32_t, 16> working = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(working, 0, 4, 8, 12);
    quarter_round(working, 1, 5, 9, 13);
    quarter_round(working, 2, 6, 10, 14);
    quarter_round(working, 3, 7, 11, 15);
    quarter_round(working, 0, 5, 10, 15);
    quarter_round(working, 1, 6, 11, 12);
    quarter_round(working, 2, 7, 8, 13);
    quarter_round(working, 3, 4, 9, 14);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t v = working[i] + state_[i];
    block_[i * 4] = static_cast<std::uint8_t>(v);
    block_[i * 4 + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[i * 4 + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[i * 4 + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  block_pos_ = 0;
}

void ChaCha20::process(std::span<std::uint8_t> data) {
  for (auto& b : data) {
    if (block_pos_ == block_.size()) refill();
    b ^= block_[block_pos_++];
  }
}

util::Bytes ChaCha20::apply(util::ByteView data) {
  util::Bytes out(data.begin(), data.end());
  process(out);
  return out;
}

}  // namespace rogue::crypto
