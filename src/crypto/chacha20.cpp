#include "crypto/chacha20.hpp"

#include <bit>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "crypto/chacha20_kernels.hpp"
#include "util/assert.hpp"

namespace rogue::crypto {

namespace {

/// Resolved kernel flags. AVX2 requires both the dedicated TU to have been
/// built with AVX2 codegen and the running CPU to report the feature;
/// SSE2 is a compile-time property of this TU (baseline on x86-64).
struct Dispatch {
  bool use_sse2 = false;
  bool use_avx2 = false;
};

[[nodiscard]] bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

[[nodiscard]] Dispatch resolve(ChaChaBackend requested) {
  Dispatch d;
#if defined(__SSE2__)
  d.use_sse2 = true;
#endif
  d.use_avx2 = detail::chacha20_avx2_compiled() && cpu_has_avx2();
  switch (requested) {
    case ChaChaBackend::kAuto:
      break;  // best available
    case ChaChaBackend::kScalar:
      d.use_sse2 = d.use_avx2 = false;
      break;
    case ChaChaBackend::kSse2:
      d.use_avx2 = false;
      break;  // falls back to scalar if SSE2 is not compiled in
    case ChaChaBackend::kAvx2:
      break;  // unsupported hosts keep the best they have
  }
  return d;
}

/// Process-wide kernel selection. The magic static makes first-use
/// resolution thread-safe; chacha20_set_backend() is init/test-time only.
Dispatch& dispatch() {
  static Dispatch d = resolve(ChaChaBackend::kAuto);
  return d;
}
void quarter_round(std::array<std::uint32_t, 16>& s, int a, int b, int c, int d) {
  s[static_cast<std::size_t>(a)] += s[static_cast<std::size_t>(b)];
  s[static_cast<std::size_t>(d)] = std::rotl(s[static_cast<std::size_t>(d)] ^ s[static_cast<std::size_t>(a)], 16);
  s[static_cast<std::size_t>(c)] += s[static_cast<std::size_t>(d)];
  s[static_cast<std::size_t>(b)] = std::rotl(s[static_cast<std::size_t>(b)] ^ s[static_cast<std::size_t>(c)], 12);
  s[static_cast<std::size_t>(a)] += s[static_cast<std::size_t>(b)];
  s[static_cast<std::size_t>(d)] = std::rotl(s[static_cast<std::size_t>(d)] ^ s[static_cast<std::size_t>(a)], 8);
  s[static_cast<std::size_t>(c)] += s[static_cast<std::size_t>(d)];
  s[static_cast<std::size_t>(b)] = std::rotl(s[static_cast<std::size_t>(b)] ^ s[static_cast<std::size_t>(c)], 7);
}

[[nodiscard]] std::uint32_t load32le(util::ByteView b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

// Keystream words are defined in little-endian byte order (RFC 8439 §2.3);
// on a big-endian host the in-memory XOR below needs the swapped form.
[[nodiscard]] constexpr std::uint32_t to_wire32(std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    return v;
  } else {
    return ((v & 0xff000000u) >> 24) | ((v & 0x00ff0000u) >> 8) |
           ((v & 0x0000ff00u) << 8) | ((v & 0x000000ffu) << 24);
  }
}

#if defined(__SSE2__)
// One ChaCha20 double-round on the four row vectors. Column rounds are
// vertical 4-lane ops; the diagonal round is the same ops after rotating
// rows 1/2/3 by one, two and three lanes (RFC 8439 S2.3 diagonals).
inline __m128i rotl_epi32(__m128i v, int n) {
  return _mm_or_si128(_mm_slli_epi32(v, n), _mm_srli_epi32(v, 32 - n));
}

inline void half_round(__m128i& v0, __m128i& v1, __m128i& v2, __m128i& v3) {
  v0 = _mm_add_epi32(v0, v1);
  v3 = rotl_epi32(_mm_xor_si128(v3, v0), 16);
  v2 = _mm_add_epi32(v2, v3);
  v1 = rotl_epi32(_mm_xor_si128(v1, v2), 12);
  v0 = _mm_add_epi32(v0, v1);
  v3 = rotl_epi32(_mm_xor_si128(v3, v0), 8);
  v2 = _mm_add_epi32(v2, v3);
  v1 = rotl_epi32(_mm_xor_si128(v1, v2), 7);
}

// XOR one 64-byte keystream block into p. x86 stores lanes little-endian,
// matching the RFC's keystream serialisation, so no byte swaps are needed.
inline void xor_block_sse2(const std::array<std::uint32_t, 16>& state,
                           std::uint8_t* p) {
  const __m128i s0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data()));
  const __m128i s1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data() + 4));
  const __m128i s2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data() + 8));
  const __m128i s3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data() + 12));
  __m128i v0 = s0, v1 = s1, v2 = s2, v3 = s3;
  for (int round = 0; round < 10; ++round) {
    half_round(v0, v1, v2, v3);
    v1 = _mm_shuffle_epi32(v1, _MM_SHUFFLE(0, 3, 2, 1));
    v2 = _mm_shuffle_epi32(v2, _MM_SHUFFLE(1, 0, 3, 2));
    v3 = _mm_shuffle_epi32(v3, _MM_SHUFFLE(2, 1, 0, 3));
    half_round(v0, v1, v2, v3);
    v1 = _mm_shuffle_epi32(v1, _MM_SHUFFLE(2, 1, 0, 3));
    v2 = _mm_shuffle_epi32(v2, _MM_SHUFFLE(1, 0, 3, 2));
    v3 = _mm_shuffle_epi32(v3, _MM_SHUFFLE(0, 3, 2, 1));
  }
  v0 = _mm_add_epi32(v0, s0);
  v1 = _mm_add_epi32(v1, s1);
  v2 = _mm_add_epi32(v2, s2);
  v3 = _mm_add_epi32(v3, s3);
  __m128i* out = reinterpret_cast<__m128i*>(p);
  _mm_storeu_si128(out, _mm_xor_si128(_mm_loadu_si128(out), v0));
  _mm_storeu_si128(out + 1, _mm_xor_si128(_mm_loadu_si128(out + 1), v1));
  _mm_storeu_si128(out + 2, _mm_xor_si128(_mm_loadu_si128(out + 2), v2));
  _mm_storeu_si128(out + 3, _mm_xor_si128(_mm_loadu_si128(out + 3), v3));
}

// Two consecutive blocks interleaved: eight live vectors fit x86-64's 16
// xmm registers and the independent dependency chains keep the ALUs fed.
inline void xor_block2_sse2(const std::array<std::uint32_t, 16>& state,
                            std::uint8_t* p) {
  const __m128i s0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data()));
  const __m128i s1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data() + 4));
  const __m128i s2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data() + 8));
  const __m128i s3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data() + 12));
  const __m128i s3b = _mm_add_epi32(s3, _mm_set_epi32(0, 0, 0, 1));
  __m128i v0 = s0, v1 = s1, v2 = s2, v3 = s3;
  __m128i w0 = s0, w1 = s1, w2 = s2, w3 = s3b;
  for (int round = 0; round < 10; ++round) {
    half_round(v0, v1, v2, v3);
    half_round(w0, w1, w2, w3);
    v1 = _mm_shuffle_epi32(v1, _MM_SHUFFLE(0, 3, 2, 1));
    v2 = _mm_shuffle_epi32(v2, _MM_SHUFFLE(1, 0, 3, 2));
    v3 = _mm_shuffle_epi32(v3, _MM_SHUFFLE(2, 1, 0, 3));
    w1 = _mm_shuffle_epi32(w1, _MM_SHUFFLE(0, 3, 2, 1));
    w2 = _mm_shuffle_epi32(w2, _MM_SHUFFLE(1, 0, 3, 2));
    w3 = _mm_shuffle_epi32(w3, _MM_SHUFFLE(2, 1, 0, 3));
    half_round(v0, v1, v2, v3);
    half_round(w0, w1, w2, w3);
    v1 = _mm_shuffle_epi32(v1, _MM_SHUFFLE(2, 1, 0, 3));
    v2 = _mm_shuffle_epi32(v2, _MM_SHUFFLE(1, 0, 3, 2));
    v3 = _mm_shuffle_epi32(v3, _MM_SHUFFLE(0, 3, 2, 1));
    w1 = _mm_shuffle_epi32(w1, _MM_SHUFFLE(2, 1, 0, 3));
    w2 = _mm_shuffle_epi32(w2, _MM_SHUFFLE(1, 0, 3, 2));
    w3 = _mm_shuffle_epi32(w3, _MM_SHUFFLE(0, 3, 2, 1));
  }
  v0 = _mm_add_epi32(v0, s0);
  v1 = _mm_add_epi32(v1, s1);
  v2 = _mm_add_epi32(v2, s2);
  v3 = _mm_add_epi32(v3, s3);
  w0 = _mm_add_epi32(w0, s0);
  w1 = _mm_add_epi32(w1, s1);
  w2 = _mm_add_epi32(w2, s2);
  w3 = _mm_add_epi32(w3, s3b);
  __m128i* out = reinterpret_cast<__m128i*>(p);
  _mm_storeu_si128(out, _mm_xor_si128(_mm_loadu_si128(out), v0));
  _mm_storeu_si128(out + 1, _mm_xor_si128(_mm_loadu_si128(out + 1), v1));
  _mm_storeu_si128(out + 2, _mm_xor_si128(_mm_loadu_si128(out + 2), v2));
  _mm_storeu_si128(out + 3, _mm_xor_si128(_mm_loadu_si128(out + 3), v3));
  _mm_storeu_si128(out + 4, _mm_xor_si128(_mm_loadu_si128(out + 4), w0));
  _mm_storeu_si128(out + 5, _mm_xor_si128(_mm_loadu_si128(out + 5), w1));
  _mm_storeu_si128(out + 6, _mm_xor_si128(_mm_loadu_si128(out + 6), w2));
  _mm_storeu_si128(out + 7, _mm_xor_si128(_mm_loadu_si128(out + 7), w3));
}
#endif  // __SSE2__
}  // namespace

ChaChaBackend chacha20_set_backend(ChaChaBackend backend) {
  dispatch() = resolve(backend);
  return chacha20_backend();
}

ChaChaBackend chacha20_backend() {
  const Dispatch& d = dispatch();
  if (d.use_avx2) return ChaChaBackend::kAvx2;
  if (d.use_sse2) return ChaChaBackend::kSse2;
  return ChaChaBackend::kScalar;
}

ChaCha20::ChaCha20(util::ByteView key, util::ByteView nonce, std::uint32_t counter) {
  ROGUE_ASSERT_MSG(key.size() == kChaChaKeyLen, "ChaCha20 key must be 32 bytes");
  ROGUE_ASSERT_MSG(nonce.size() == kChaChaNonceLen, "ChaCha20 nonce must be 12 bytes");
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (std::size_t i = 0; i < 8; ++i) state_[4 + i] = load32le(key, i * 4);
  state_[12] = counter;
  for (std::size_t i = 0; i < 3; ++i) state_[13 + i] = load32le(nonce, i * 4);
}

void ChaCha20::next_block_words(std::array<std::uint32_t, 16>& out) {
  std::array<std::uint32_t, 16> working = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(working, 0, 4, 8, 12);
    quarter_round(working, 1, 5, 9, 13);
    quarter_round(working, 2, 6, 10, 14);
    quarter_round(working, 3, 7, 11, 15);
    quarter_round(working, 0, 5, 10, 15);
    quarter_round(working, 1, 6, 11, 12);
    quarter_round(working, 2, 7, 8, 13);
    quarter_round(working, 3, 4, 9, 14);
  }
  for (std::size_t i = 0; i < 16; ++i) out[i] = working[i] + state_[i];
  ++state_[12];
}

void ChaCha20::refill() {
  std::array<std::uint32_t, 16> words;
  next_block_words(words);
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t v = words[i];
    block_[i * 4] = static_cast<std::uint8_t>(v);
    block_[i * 4 + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[i * 4 + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[i * 4 + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  block_pos_ = 0;
}

void ChaCha20::process(std::span<std::uint8_t> data) {
  std::size_t i = 0;
  const std::size_t n = data.size();

  // Drain keystream bytes buffered by a previous partial block so the
  // stream position stays byte-exact across arbitrarily split calls.
  while (i < n && block_pos_ < block_.size()) data[i++] ^= block_[block_pos_++];

  // Whole 64-byte blocks: XOR the keystream straight into the data,
  // skipping the byte-serialisation staging buffer. The widest kernel the
  // dispatch allows eats first (4 blocks AVX2, then 2 and 1 block SSE2),
  // and the scalar word loop covers forced-scalar mode and non-x86 hosts.
  // Every path consumes the same counter sequence, so the keystream is
  // byte-identical regardless of which kernels the cascade used.
  const Dispatch& d = dispatch();
  if (d.use_avx2) {
    while (n - i >= 256) {
      detail::chacha20_xor_blocks4_avx2(state_.data(), data.data() + i);
      state_[12] += 4;
      i += 256;
    }
  }
#if defined(__SSE2__)
  if (d.use_sse2) {
    while (n - i >= 128) {
      xor_block2_sse2(state_, data.data() + i);
      state_[12] += 2;
      i += 128;
    }
    while (n - i >= 64) {
      xor_block_sse2(state_, data.data() + i);
      ++state_[12];
      i += 64;
    }
  }
#endif
  while (n - i >= 64) {
    std::array<std::uint32_t, 16> words;
    next_block_words(words);
    std::uint8_t* p = data.data() + i;
    for (std::size_t w = 0; w < 16; w += 2) {
      const std::uint64_t k =
          static_cast<std::uint64_t>(to_wire32(words[w])) |
          (static_cast<std::uint64_t>(to_wire32(words[w + 1])) << 32);
      std::uint64_t v;
      std::memcpy(&v, p + w * 4, 8);
      v ^= k;
      std::memcpy(p + w * 4, &v, 8);
    }
    i += 64;
  }

  // Tail shorter than a block: buffer one keystream block and finish
  // byte-wise; leftover bytes stay in block_ for the next call.
  if (i < n) {
    refill();
    while (i < n) data[i++] ^= block_[block_pos_++];
  }
}

util::Bytes ChaCha20::apply(util::ByteView data) {
  util::Bytes out(data.begin(), data.end());
  process(out);
  return out;
}

}  // namespace rogue::crypto
