#include "crypto/hmac.hpp"

#include <algorithm>
#include <array>

namespace rogue::crypto {

HmacSha256::HmacSha256(util::ByteView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Sha256Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad{};
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad_[i] = block[i] ^ 0x5c;
  }
  inner_.update(util::ByteView(ipad.data(), ipad.size()));
}

void HmacSha256::update(util::ByteView data) { inner_.update(data); }

Sha256Digest HmacSha256::finish() {
  const Sha256Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(util::ByteView(opad_.data(), opad_.size()));
  outer.update(util::ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Sha256Digest hmac_sha256(util::ByteView key, util::ByteView message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finish();
}

util::Bytes kdf_expand(util::ByteView key, util::ByteView info, std::size_t out_len) {
  util::Bytes out;
  out.reserve(out_len);
  Sha256Digest t{};
  std::uint8_t counter = 1;
  std::size_t t_len = 0;
  while (out.size() < out_len) {
    util::Bytes msg;
    msg.insert(msg.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(t_len));
    msg.insert(msg.end(), info.begin(), info.end());
    msg.push_back(counter++);
    t = hmac_sha256(key, msg);
    t_len = t.size();
    const std::size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace rogue::crypto
