// Internal contract between chacha20.cpp and the ISA-specific keystream
// kernel translation units. Not installed API: the public surface stays
// chacha20.hpp's ChaCha20 class + backend selectors.
#pragma once

#include <cstdint>

namespace rogue::crypto::detail {

/// True when the AVX2 kernel TU was built with AVX2 codegen enabled (the
/// build probes the compiler; the *runtime* CPU check is separate).
[[nodiscard]] bool chacha20_avx2_compiled();

/// XOR four consecutive 64-byte keystream blocks (counter, counter+1,
/// counter+2, counter+3) into p[0..255]. Only callable when
/// chacha20_avx2_compiled() and the CPU reports AVX2.
void chacha20_xor_blocks4_avx2(const std::uint32_t* state, std::uint8_t* p);

}  // namespace rogue::crypto::detail
