// Arbitrary-precision unsigned integers, just enough for finite-field
// Diffie-Hellman: add/sub/compare, schoolbook multiply, shift, divmod,
// and binary modular exponentiation. Little-endian 64-bit limbs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace rogue::crypto {

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t v);

  /// Parse big-endian bytes (as found in wire formats / hex constants).
  [[nodiscard]] static BigUint from_bytes_be(util::ByteView bytes);
  /// Parse hex string (no 0x prefix required; whitespace ignored).
  [[nodiscard]] static BigUint from_hex(std::string_view hex);

  /// Serialize big-endian, minimal length (empty for zero unless padded).
  [[nodiscard]] util::Bytes to_bytes_be(std::size_t pad_to = 0) const;
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t i) const;

  [[nodiscard]] static int compare(const BigUint& a, const BigUint& b);
  friend bool operator==(const BigUint& a, const BigUint& b) { return compare(a, b) == 0; }
  friend bool operator<(const BigUint& a, const BigUint& b) { return compare(a, b) < 0; }
  friend bool operator<=(const BigUint& a, const BigUint& b) { return compare(a, b) <= 0; }
  friend bool operator>(const BigUint& a, const BigUint& b) { return compare(a, b) > 0; }
  friend bool operator>=(const BigUint& a, const BigUint& b) { return compare(a, b) >= 0; }

  [[nodiscard]] static BigUint add(const BigUint& a, const BigUint& b);
  /// a - b; requires a >= b.
  [[nodiscard]] static BigUint sub(const BigUint& a, const BigUint& b);
  [[nodiscard]] static BigUint mul(const BigUint& a, const BigUint& b);
  [[nodiscard]] static BigUint shl(const BigUint& a, std::size_t bits);
  [[nodiscard]] static BigUint shr(const BigUint& a, std::size_t bits);
  /// Returns {quotient, remainder}; b must be non-zero.
  [[nodiscard]] static std::pair<BigUint, BigUint> divmod(const BigUint& a,
                                                          const BigUint& b);
  [[nodiscard]] static BigUint mod(const BigUint& a, const BigUint& m);
  /// (base ^ exp) mod m via square-and-multiply; m must be > 1.
  [[nodiscard]] static BigUint mod_pow(const BigUint& base, const BigUint& exp,
                                       const BigUint& m);

 private:
  void trim();

  std::vector<std::uint64_t> limbs_;  // little-endian; empty == 0
};

}  // namespace rogue::crypto
