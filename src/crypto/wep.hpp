// WEP (Wired Equivalent Privacy) encapsulation exactly as deployed on
// 802.11b: per-frame 24-bit IV prepended to the shared secret to form the
// RC4 key, CRC-32 ICV appended to the plaintext before encryption.
//
// Both of the paper's WEP points hang off this module:
//  * the rogue AP knows the same shared key, so WEP "provides no
//    protection what so ever" against it (§2.1), and
//  * outsiders recover the key passively via the FMS weak-IV attack
//    ("retrieved the WEP key via Airsnort", §4) — see attack/airsnort.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace rogue::crypto {

inline constexpr std::size_t kWepIvLen = 3;
inline constexpr std::size_t kWepIcvLen = 4;
inline constexpr std::size_t kWep40KeyLen = 5;    // "64-bit" WEP
inline constexpr std::size_t kWep104KeyLen = 13;  // "128-bit" WEP

using WepIv = std::array<std::uint8_t, kWepIvLen>;

/// How a device chooses IVs. Real Prism/Atmel-era cards counted
/// sequentially, which is what makes FMS practical; later firmware skipped
/// the weak classes ("WEPplus").
enum class WepIvPolicy : std::uint8_t {
  kSequential,   ///< counter starting at 0 (historic card behaviour)
  kRandom,       ///< uniformly random per frame
  kSkipWeak,     ///< sequential but skipping FMS-weak IVs
};

/// True if `iv` is in the classic FMS-weak form (A+3, 0xFF, X) for any
/// key byte index A of a key of length `key_len`.
[[nodiscard]] bool is_fms_weak_iv(const WepIv& iv, std::size_t key_len);

/// Stateful IV generator implementing the policy above.
class WepIvGenerator {
 public:
  WepIvGenerator(WepIvPolicy policy, std::size_t key_len, std::uint64_t seed);

  [[nodiscard]] WepIv next();

 private:
  WepIvPolicy policy_;
  std::size_t key_len_;
  std::uint32_t counter_ = 0;
  util::Prng rng_;
};

/// Encrypt `plaintext` under (iv, key): returns iv || key_id || RC4(data||ICV).
/// `key` must be 5 or 13 bytes. key_id is the WEP key slot (0..3).
[[nodiscard]] util::Bytes wep_encrypt(const WepIv& iv, util::ByteView key,
                                      util::ByteView plaintext,
                                      std::uint8_t key_id = 0);

struct WepDecryptResult {
  util::Bytes plaintext;
  WepIv iv;
  std::uint8_t key_id = 0;
};

/// Decrypt a WEP-encapsulated body; returns nullopt if too short or the
/// ICV check fails (wrong key or tampered frame).
[[nodiscard]] std::optional<WepDecryptResult> wep_decrypt(util::ByteView body,
                                                          util::ByteView key);

/// Parse just the IV/key-id header off an encrypted body (for sniffers
/// that collect IVs without knowing the key). Returns nullopt if short.
struct WepHeader {
  WepIv iv;
  std::uint8_t key_id;
  util::ByteView ciphertext;  ///< RC4(data || ICV), view into `body`
};
[[nodiscard]] std::optional<WepHeader> wep_parse_header(util::ByteView body);

}  // namespace rogue::crypto
