// Finite-field Diffie-Hellman over the RFC 2409 Oakley Group 2 (1024-bit
// MODP) prime. Used by the VPN handshake; the shared secret is fed to the
// KDF together with the pre-shared authenticator, so an attacker who can
// MITM the wireless hop still cannot impersonate the endpoint (paper §5.2
// requirement 2: authentication information preestablished).
#pragma once

#include "crypto/bignum.hpp"
#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace rogue::crypto {

/// A DH group (generator g, prime p).
struct DhGroup {
  BigUint p;
  BigUint g;
  std::size_t byte_len;  ///< serialized public value length

  /// RFC 2409 Group 2: 1024-bit MODP, generator 2.
  [[nodiscard]] static const DhGroup& modp1024();
  /// Small 256-bit toy group for fast unit tests (NOT for protocol use).
  [[nodiscard]] static const DhGroup& toy256();
};

class DhKeyPair {
 public:
  /// Generate a key pair with randomness from `rng`.
  static DhKeyPair generate(const DhGroup& group, util::Prng& rng);

  [[nodiscard]] const BigUint& public_value() const { return public_; }
  [[nodiscard]] util::Bytes public_bytes() const;

  /// Compute the shared secret with a peer's public value, serialized to
  /// the group's fixed length. Returns empty on invalid peer value
  /// (0, 1, or >= p — small-subgroup / garbage rejection).
  [[nodiscard]] util::Bytes shared_secret(const BigUint& peer_public) const;
  [[nodiscard]] util::Bytes shared_secret_bytes(util::ByteView peer_public) const;

 private:
  DhKeyPair(const DhGroup& group, BigUint secret, BigUint pub)
      : group_(&group), secret_(std::move(secret)), public_(std::move(pub)) {}

  const DhGroup* group_;
  BigUint secret_;
  BigUint public_;
};

}  // namespace rogue::crypto
