// RC4 stream cipher — the cipher WEP is built on. Exposes the internal
// KSA state so the FMS attack implementation can be tested against the
// real key schedule.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace rogue::crypto {

class Rc4 {
 public:
  /// Key-schedule with the given key (1..256 bytes).
  explicit Rc4(util::ByteView key);

  /// Next keystream byte.
  [[nodiscard]] std::uint8_t next();

  /// XOR keystream into data in place (encrypt == decrypt).
  void process(std::span<std::uint8_t> data);

  /// Encrypt (copying) convenience.
  [[nodiscard]] util::Bytes apply(util::ByteView data);

  /// Permutation state after KSA / current position (for FMS analysis).
  [[nodiscard]] const std::array<std::uint8_t, 256>& state() const { return s_; }
  [[nodiscard]] std::uint8_t i() const { return i_; }
  [[nodiscard]] std::uint8_t j() const { return j_; }

 private:
  std::array<std::uint8_t, 256> s_{};
  std::uint8_t i_ = 0;
  std::uint8_t j_ = 0;
};

}  // namespace rogue::crypto
