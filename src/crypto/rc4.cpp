#include "crypto/rc4.hpp"

#include <numeric>
#include <utility>

#include "util/assert.hpp"

namespace rogue::crypto {

Rc4::Rc4(util::ByteView key) {
  ROGUE_ASSERT_MSG(!key.empty() && key.size() <= 256, "RC4 key must be 1..256 bytes");
  std::iota(s_.begin(), s_.end(), 0);
  std::uint8_t j = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s_[i] + key[i % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

std::uint8_t Rc4::next() {
  i_ = static_cast<std::uint8_t>(i_ + 1);
  j_ = static_cast<std::uint8_t>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<std::uint8_t>(s_[i_] + s_[j_])];
}

void Rc4::process(std::span<std::uint8_t> data) {
  // Batched keystream generation: the PRGA indices live in locals for the
  // whole run instead of round-tripping through members on every byte, and
  // the swap is expressed as two stores so s_[i]/s_[j] load only once.
  std::uint8_t i = i_;
  std::uint8_t j = j_;
  auto& s = s_;
  for (auto& b : data) {
    i = static_cast<std::uint8_t>(i + 1);
    const std::uint8_t si = s[i];
    j = static_cast<std::uint8_t>(j + si);
    const std::uint8_t sj = s[j];
    s[i] = sj;
    s[j] = si;
    b ^= s[static_cast<std::uint8_t>(si + sj)];
  }
  i_ = i;
  j_ = j;
}

util::Bytes Rc4::apply(util::ByteView data) {
  util::Bytes out(data.begin(), data.end());
  process(out);
  return out;
}

}  // namespace rogue::crypto
