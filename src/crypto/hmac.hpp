// HMAC-SHA256 (RFC 2104) and an HKDF-style expand used to derive VPN
// session keys from the DH shared secret + pre-shared authenticator.
#pragma once

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace rogue::crypto {

[[nodiscard]] Sha256Digest hmac_sha256(util::ByteView key, util::ByteView message);

/// Incremental HMAC-SHA256 for messages assembled from several pieces
/// (e.g. the AEAD record MAC) without staging them in a scratch buffer.
class HmacSha256 {
 public:
  explicit HmacSha256(util::ByteView key);

  void update(util::ByteView data);
  [[nodiscard]] Sha256Digest finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, 64> opad_{};
};

/// HKDF-Expand-like: out_len bytes keyed by `key`, labelled by `info`.
[[nodiscard]] util::Bytes kdf_expand(util::ByteView key, util::ByteView info,
                                     std::size_t out_len);

}  // namespace rogue::crypto
