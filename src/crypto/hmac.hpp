// HMAC-SHA256 (RFC 2104) and an HKDF-style expand used to derive VPN
// session keys from the DH shared secret + pre-shared authenticator.
#pragma once

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace rogue::crypto {

[[nodiscard]] Sha256Digest hmac_sha256(util::ByteView key, util::ByteView message);

/// HKDF-Expand-like: out_len bytes keyed by `key`, labelled by `info`.
[[nodiscard]] util::Bytes kdf_expand(util::ByteView key, util::ByteView info,
                                     std::size_t out_len);

}  // namespace rogue::crypto
