#include "crypto/dh.hpp"

namespace rogue::crypto {

const DhGroup& DhGroup::modp1024() {
  // RFC 2409 §6.2 Second Oakley Group (1024-bit MODP).
  static const DhGroup group{
      BigUint::from_hex(
          "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
          "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
          "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
          "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
          "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381"
          "FFFFFFFFFFFFFFFF"),
      BigUint(2),
      128};
  return group;
}

const DhGroup& DhGroup::toy256() {
  // 256-bit safe-ish prime for unit tests only.
  static const DhGroup group{
      BigUint::from_hex(
          "F5C2E9F3DE2A3D1B4A9C8B7E6F5D4C3B2A190817E6D5C4B3"
          "A2918073F4E5D6C7"),
      BigUint(5),
      32};
  return group;
}

DhKeyPair DhKeyPair::generate(const DhGroup& group, util::Prng& rng) {
  // Secret exponent: byte_len random bytes reduced mod (p - 2), + 2, so it
  // lies in [2, p-1).
  util::Bytes raw(group.byte_len);
  rng.fill(raw);
  const BigUint p_minus_2 = BigUint::sub(group.p, BigUint(2));
  const BigUint secret =
      BigUint::add(BigUint::mod(BigUint::from_bytes_be(raw), p_minus_2), BigUint(2));
  BigUint pub = BigUint::mod_pow(group.g, secret, group.p);
  return DhKeyPair(group, secret, std::move(pub));
}

util::Bytes DhKeyPair::public_bytes() const {
  return public_.to_bytes_be(group_->byte_len);
}

util::Bytes DhKeyPair::shared_secret(const BigUint& peer_public) const {
  if (peer_public <= BigUint(1) || peer_public >= group_->p) return {};
  const BigUint shared = BigUint::mod_pow(peer_public, secret_, group_->p);
  return shared.to_bytes_be(group_->byte_len);
}

util::Bytes DhKeyPair::shared_secret_bytes(util::ByteView peer_public) const {
  return shared_secret(BigUint::from_bytes_be(peer_public));
}

}  // namespace rogue::crypto
