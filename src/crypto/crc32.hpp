// CRC-32 (IEEE 802.3 polynomial, reflected). Used as the WEP ICV and as
// the FCS sanity check on simulated wired frames. Its linearity is the
// reason WEP integrity is forgeable, so the exact polynomial matters.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace rogue::crypto {

/// One-shot CRC-32 of a buffer.
[[nodiscard]] std::uint32_t crc32(util::ByteView data);

/// Incremental interface for streamed data.
class Crc32 {
 public:
  void update(util::ByteView data);
  [[nodiscard]] std::uint32_t value() const { return ~state_; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace rogue::crypto
