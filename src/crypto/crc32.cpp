#include "crypto/crc32.hpp"

#include <array>

namespace rogue::crypto {

namespace {
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}
constexpr auto kTable = make_table();
}  // namespace

void Crc32::update(util::ByteView data) {
  std::uint32_t c = state_;
  for (const std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(util::ByteView data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace rogue::crypto
