#include "crypto/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace rogue::crypto {

namespace {
// Slicing-by-8: table[0] is the classic byte table; table[k] advances a
// byte through k additional zero bytes so eight input bytes fold in one
// step. All tables derive from the same reflected 0xedb88320 polynomial,
// so the result is bit-identical to the byte-at-a-time loop.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    t[0][n] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t n = 0; n < 256; ++n) {
      t[k][n] = (t[k - 1][n] >> 8) ^ t[0][t[k - 1][n] & 0xffu];
    }
  }
  return t;
}
constexpr auto kTables = make_tables();

[[nodiscard]] std::uint32_t load32le(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  if constexpr (std::endian::native == std::endian::big) {
    v = ((v & 0xff000000u) >> 24) | ((v & 0x00ff0000u) >> 8) |
        ((v & 0x0000ff00u) << 8) | ((v & 0x000000ffu) << 24);
  }
  return v;
}
}  // namespace

void Crc32::update(util::ByteView data) {
  std::uint32_t c = state_;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ load32le(p);
    const std::uint32_t hi = load32le(p + 4);
    c = kTables[7][lo & 0xffu] ^ kTables[6][(lo >> 8) & 0xffu] ^
        kTables[5][(lo >> 16) & 0xffu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xffu] ^ kTables[2][(hi >> 8) & 0xffu] ^
        kTables[1][(hi >> 16) & 0xffu] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- != 0) {
    c = kTables[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(util::ByteView data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace rogue::crypto
