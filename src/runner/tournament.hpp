// Attacker×detector tournament runner: the arms-race companion to the
// variant sweep. A tournament crosses a roster of registry attackers
// (attack::make_attacker) with a roster of registry detectors
// (detect::make_detector) and runs `runs` seeded replicas per pair —
// every pair becomes one ExperimentRunner variant named
// "<attacker>|<detector>", so the report inherits the sweep's
// determinism contract: bytes depend only on (config, seeds), never on
// --jobs or host speed.
//
// Per pair the report aggregates:
//   detection_rate — replicas with >= 1 true alert (after attack start)
//   fp_rate        — replicas with >= 1 false alert (baseline window, or
//                    any alert on the "none" control row)
//   ttd_s          — attack start -> first true alert, p50/p95
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runner/sweep.hpp"
#include "sim/simulator.hpp"

namespace rogue::runner {

struct TournamentConfig {
  std::string scenario = "corp";  ///< "corp" or "hotspot"
  /// Registry names (attack::known_attackers / detect::known_detectors).
  /// Empty lists pick the stock rosters below.
  std::vector<std::string> attackers;
  std::vector<std::string> detectors;
  std::uint64_t seed_base = 1;
  std::size_t runs = 5;  ///< replicas per pair
  std::size_t jobs = 0;  ///< worker threads; 0 = hardware
  util::BufferPoolConfig pool;
  /// Quiet window after settle: alerts here are false positives.
  sim::Time baseline_window = 8 * sim::kSecond;
  /// Attacker-active window: first alert here is the detection.
  sim::Time attack_window = 20 * sim::kSecond;
};

/// Default rosters: every registry attacker (including the "none"
/// control row) crossed with the four single detectors plus the
/// composite. The hotspot world has no rogue-gateway stack, so its
/// roster drops that attacker.
[[nodiscard]] std::vector<std::string> stock_tournament_attackers(
    std::string_view scenario);
[[nodiscard]] std::vector<std::string> stock_tournament_detectors();

/// Per-pair aggregate over the pair's non-failed replicas.
struct PairSummary {
  std::string attacker;
  std::string detector;
  std::size_t runs = 0;
  std::size_t failed = 0;
  std::size_t detected = 0;      ///< replicas with a true alert
  double detection_rate = 0.0;   ///< detected / runs
  double fp_rate = 0.0;          ///< replicas with >= 1 false alert / runs
  util::Summary ttd_s;           ///< time-to-detect over detected replicas
  util::Summary alerts;          ///< total alerts per replica
  util::Summary false_alerts;    ///< false alerts per replica
};

struct TournamentReport {
  TournamentConfig config;
  double wall_ms = 0.0;          ///< console only, never serialized
  std::vector<RunMetrics> runs;  ///< pair-major (attacker-major), seed-minor
  std::vector<PairSummary> pairs;

  /// Machine-readable report; deterministic bytes per (config, seeds).
  [[nodiscard]] util::Json to_json() const;
  /// Fixed-width per-pair table (one row per attacker×detector).
  [[nodiscard]] std::string table() const;
  /// Detection-rate grid: attackers down, detectors across.
  [[nodiscard]] std::string matrix() const;
  [[nodiscard]] std::size_t failed_count() const;
};

/// Run the full matrix. Unknown scenario/attacker/detector names fail the
/// affected replicas (reported in the failures array) rather than
/// aborting the tournament.
[[nodiscard]] TournamentReport run_tournament(const TournamentConfig& config);

}  // namespace rogue::runner
