#include "runner/tournament.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "scenario/corp_world.hpp"
#include "scenario/hotspot.hpp"
#include "util/assert.hpp"

namespace rogue::runner {

std::vector<std::string> stock_tournament_attackers(std::string_view scenario) {
  if (scenario == "hotspot") {
    // No rogue-gateway stack in the hotspot world — the infrastructure
    // itself is the adversary, so only over-the-air attackers apply.
    return {"none", "deauth-flood", "low-slow-deauth", "cloner"};
  }
  return {"none", "deauth-flood", "low-slow-deauth", "rogue-gateway",
          "cloner"};
}

std::vector<std::string> stock_tournament_detectors() {
  return {"seqnum", "fingerprint", "rssi", "probe-timing", "composite"};
}

namespace {

WorldFactory pair_factory(const TournamentConfig& tc, std::string attacker,
                          std::string detector) {
  const sim::Time baseline = tc.baseline_window;
  const sim::Time attack = tc.attack_window;
  if (tc.scenario == "hotspot") {
    return [attacker = std::move(attacker), detector = std::move(detector),
            baseline, attack](std::uint64_t) {
      scenario::HotspotConfig c;
      c.do_download = false;  // chatter, not the download, drives traffic
      c.wids_detectors = {detector};
      c.wids_attacker = attacker;
      c.wids_baseline_window = baseline;
      c.wids_attack_window = attack;
      return std::unique_ptr<scenario::World>(
          std::make_unique<scenario::HotspotWorld>(c));
    };
  }
  if (tc.scenario != "corp") {
    const std::string scenario = tc.scenario;
    return [scenario](std::uint64_t) -> std::unique_ptr<scenario::World> {
      throw std::runtime_error("unknown tournament scenario: " + scenario);
    };
  }
  return [attacker = std::move(attacker), detector = std::move(detector),
          baseline, attack](std::uint64_t) {
    scenario::CorpConfig c;
    // Tournament geometry: the attacker sits close to the victim (strong
    // signal, distinct RSSI signature vs the distant legit AP) and the
    // monitor halfway to the AP hears both.
    c.victim_to_legit_m = 20.0;
    c.victim_to_rogue_m = 4.0;
    c.do_download = false;
    c.wids_detectors = {detector};
    c.wids_attacker = attacker;
    c.wids_baseline_window = baseline;
    c.wids_attack_window = attack;
    return std::unique_ptr<scenario::World>(
        std::make_unique<scenario::CorpWorld>(c));
  };
}

PairSummary summarize_pair(std::string attacker, std::string detector,
                           const RunMetrics* runs, std::size_t count) {
  PairSummary s;
  s.attacker = std::move(attacker);
  s.detector = std::move(detector);
  s.runs = count;
  std::size_t false_positive = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (runs[i].failed) {
      ++s.failed;
      continue;
    }
    const scenario::Metrics& m = runs[i].metrics;
    s.alerts.add(static_cast<double>(m.wids_alerts));
    s.false_alerts.add(static_cast<double>(m.wids_false_alerts));
    if (m.wids_false_alerts > 0) ++false_positive;
    if (m.wids_time_to_detect_s >= 0.0) {
      ++s.detected;
      s.ttd_s.add(m.wids_time_to_detect_s);
    }
  }
  const double n = count > 0 ? static_cast<double>(count) : 1.0;
  s.detection_rate = static_cast<double>(s.detected) / n;
  s.fp_rate = static_cast<double>(false_positive) / n;
  return s;
}

util::Json summary_json(const util::Summary& s) {
  const bool any = s.count() > 0;
  util::Json j = util::Json::object();
  j.set("count", static_cast<std::uint64_t>(s.count()));
  j.set("mean", any ? s.mean() : 0.0);
  j.set("p50", any ? s.percentile(0.5) : 0.0);
  j.set("p95", any ? s.percentile(0.95) : 0.0);
  return j;
}

std::string fmt_or_dash(const util::Summary& s, double q) {
  return s.count() > 0 ? util::fmt_double(s.percentile(q)) : "-";
}

}  // namespace

TournamentReport run_tournament(const TournamentConfig& config) {
  TournamentConfig tc = config;
  if (tc.attackers.empty()) {
    tc.attackers = stock_tournament_attackers(tc.scenario);
  }
  if (tc.detectors.empty()) tc.detectors = stock_tournament_detectors();
  ROGUE_ASSERT_MSG(tc.runs > 0, "tournament needs runs > 0");

  SweepConfig sweep;
  sweep.scenario = tc.scenario;
  sweep.seed_base = tc.seed_base;
  sweep.runs = tc.runs;
  sweep.jobs = tc.jobs;
  sweep.pool = tc.pool;

  ExperimentRunner runner(sweep);
  for (const std::string& a : tc.attackers) {
    for (const std::string& d : tc.detectors) {
      runner.add_variant(a + "|" + d, pair_factory(tc, a, d));
    }
  }
  SweepReport sweep_report = runner.run();

  TournamentReport report;
  report.config = tc;
  report.wall_ms = sweep_report.wall_ms;
  report.runs = std::move(sweep_report.runs);
  report.pairs.reserve(tc.attackers.size() * tc.detectors.size());
  std::size_t pair = 0;
  for (const std::string& a : tc.attackers) {
    for (const std::string& d : tc.detectors) {
      report.pairs.push_back(summarize_pair(
          a, d, report.runs.data() + pair * tc.runs, tc.runs));
      ++pair;
    }
  }
  return report;
}

util::Json TournamentReport::to_json() const {
  util::Json j = util::Json::object();
  j.set("scenario", config.scenario);
  j.set("seed_base", config.seed_base);
  j.set("runs_per_pair", static_cast<std::uint64_t>(config.runs));
  j.set("baseline_window_s",
        static_cast<double>(config.baseline_window) / 1e6);
  j.set("attack_window_s", static_cast<double>(config.attack_window) / 1e6);
  util::Json attackers = util::Json::array();
  for (const std::string& a : config.attackers) attackers.push_back(a);
  j.set("attackers", std::move(attackers));
  util::Json detectors = util::Json::array();
  for (const std::string& d : config.detectors) detectors.push_back(d);
  j.set("detectors", std::move(detectors));

  util::Json pairs_json = util::Json::array();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const PairSummary& s = pairs[p];
    util::Json agg = util::Json::object();
    agg.set("runs", static_cast<std::uint64_t>(s.runs));
    agg.set("failed", static_cast<std::uint64_t>(s.failed));
    agg.set("detected", static_cast<std::uint64_t>(s.detected));
    agg.set("detection_rate", s.detection_rate);
    agg.set("fp_rate", s.fp_rate);
    agg.set("ttd_s", summary_json(s.ttd_s));
    agg.set("alerts", summary_json(s.alerts));
    agg.set("false_alerts", summary_json(s.false_alerts));

    util::Json replicas = util::Json::array();
    for (std::size_t i = p * config.runs;
         i < (p + 1) * config.runs && i < runs.size(); ++i) {
      replicas.push_back(runner::to_json(runs[i], /*include_wall=*/false));
    }

    util::Json entry = util::Json::object();
    entry.set("attacker", s.attacker);
    entry.set("detector", s.detector);
    entry.set("aggregate", std::move(agg));
    entry.set("runs", std::move(replicas));
    pairs_json.push_back(std::move(entry));
  }
  j.set("pairs", std::move(pairs_json));

  util::Json failures = util::Json::array();
  for (const RunMetrics& run : runs) {
    if (!run.failed) continue;
    util::Json f = util::Json::object();
    f.set("variant", run.variant);
    f.set("seed", run.seed);
    f.set("error", run.error);
    failures.push_back(std::move(f));
  }
  j.set("failures", std::move(failures));
  return j;
}

std::string TournamentReport::table() const {
  util::Table t({"attacker", "detector", "runs", "failed", "detected",
                 "fp rate", "ttd p50(s)", "ttd p95(s)", "alerts mean",
                 "false mean"});
  for (const PairSummary& s : pairs) {
    t.add_row({
        s.attacker,
        s.detector,
        std::to_string(s.runs),
        std::to_string(s.failed),
        util::fmt_percent(s.detection_rate),
        util::fmt_percent(s.fp_rate),
        fmt_or_dash(s.ttd_s, 0.5),
        fmt_or_dash(s.ttd_s, 0.95),
        s.alerts.count() > 0 ? util::fmt_double(s.alerts.mean(), 1) : "-",
        s.false_alerts.count() > 0
            ? util::fmt_double(s.false_alerts.mean(), 1)
            : "-",
    });
  }
  return t.to_string();
}

std::string TournamentReport::matrix() const {
  std::vector<std::string> header{"detection rate"};
  for (const std::string& d : config.detectors) header.push_back(d);
  util::Table t(std::move(header));
  std::size_t p = 0;
  for (const std::string& a : config.attackers) {
    std::vector<std::string> row{a};
    for (std::size_t d = 0; d < config.detectors.size(); ++d, ++p) {
      row.push_back(util::fmt_percent(pairs[p].detection_rate));
    }
    t.add_row(std::move(row));
  }
  return t.to_string();
}

std::size_t TournamentReport::failed_count() const {
  std::size_t n = 0;
  for (const RunMetrics& run : runs) {
    if (run.failed) ++n;
  }
  return n;
}

}  // namespace rogue::runner
