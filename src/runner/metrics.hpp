// Per-replica result record for experiment sweeps: the scenario-agnostic
// observations (scenario::Metrics) stamped with the replica's identity
// (scenario, variant, seed) and its wall-clock cost, plus JSON round-trip
// so reports survive the trip to disk and back.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/tracer.hpp"
#include "scenario/world.hpp"
#include "util/json.hpp"

namespace rogue::runner {

struct RunMetrics {
  std::string scenario;  ///< e.g. "corp"
  std::string variant;   ///< e.g. "rogue+deauth"
  std::uint64_t seed = 0;
  double wall_ms = 0.0;  ///< host wall-clock, excluded from aggregates
  /// The replica threw instead of completing; `metrics` holds defaults and
  /// is excluded from aggregation. `error` carries the exception text.
  bool failed = false;
  std::string error;
  scenario::Metrics metrics;

  /// One StatsRegistry snapshot taken at a timeseries sample point.
  struct TimeSample {
    double t_s = 0.0;
    obs::StatsSnapshot stats;
  };

  // Tracing sidecars. Neither is serialized by to_json() — the flight
  // recorder and timeseries go to their own files (SweepReport::
  // chrome_trace_json() / timeseries_jsonl()), so per-replica report
  // records keep their exact legacy bytes. Both stay empty/null unless
  // the sweep ran with tracing / timeseries enabled.
  std::shared_ptr<obs::TracerDump> trace;
  std::vector<TimeSample> timeseries;
};

/// Serialize one record. `include_wall` is off for report files so the
/// bytes depend only on (seed, config), never on host timing.
[[nodiscard]] util::Json to_json(const RunMetrics& run, bool include_wall = true);

/// Inverse of to_json(); nullopt when a required field is missing or of
/// the wrong type. Absent wall_ms reads back as 0.
[[nodiscard]] std::optional<RunMetrics> run_metrics_from_json(const util::Json& j);

}  // namespace rogue::runner
