#include "runner/sweep.hpp"

#include <chrono>
#include <exception>
#include <map>
#include <utility>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace rogue::runner {

ExperimentRunner::ExperimentRunner(SweepConfig config)
    : config_(std::move(config)) {}

void ExperimentRunner::add_variant(std::string name, WorldFactory make) {
  ROGUE_ASSERT_MSG(make != nullptr, "variant needs a factory");
  variants_.push_back(Variant{std::move(name), std::move(make)});
}

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

VariantSummary summarize(const Variant& variant, const RunMetrics* runs,
                         std::size_t count) {
  VariantSummary s;
  s.name = variant.name;
  s.runs = count;
  std::size_t captured = 0, downloaded = 0, deceived = 0, detected = 0,
              vpn_up = 0;
  // Ordered map -> the per-name aggregates come out sorted, so the report
  // bytes cannot depend on which replica interned a metric first.
  std::map<std::string, util::Summary> stats_agg;
  for (std::size_t i = 0; i < count; ++i) {
    if (runs[i].failed) {
      ++s.failed;
      continue;  // default-constructed metrics would poison the aggregates
    }
    const scenario::Metrics& m = runs[i].metrics;
    for (const obs::StatsSnapshot::Entry& e : m.stats.entries) {
      switch (e.kind) {
        case obs::MetricKind::kCounter:
          stats_agg[e.name].add(static_cast<double>(e.value));
          break;
        case obs::MetricKind::kGauge:
          stats_agg[e.name].add(static_cast<double>(e.value));
          stats_agg[e.name + ".high_water"].add(
              static_cast<double>(e.high_water));
          break;
        case obs::MetricKind::kHistogram:
          stats_agg[e.name + ".count"].add(static_cast<double>(e.hist.count));
          stats_agg[e.name + ".sum"].add(static_cast<double>(e.hist.sum));
          break;
      }
    }
    if (m.victim_captured) {
      ++captured;
      s.time_to_capture_s.add(m.time_to_capture_s);
    }
    if (m.download_completed) ++downloaded;
    if (m.victim_deceived) ++deceived;
    if (m.rogue_detected) {
      ++detected;
      if (m.detection_latency_s >= 0.0) {
        s.detection_latency_s.add(m.detection_latency_s);
      }
    }
    if (m.vpn_established) {
      ++vpn_up;
      s.vpn_goodput_kbps.add(m.vpn_goodput_kbps);
      s.vpn_overhead_ratio.add(m.vpn_overhead_ratio);
    }
    // Robustness: aggregate over replicas whose tunnel ever existed (up at
    // the end, or observed losing a session), so variants without a VPN
    // phase report empty summaries rather than a wall of zeros.
    if (m.vpn_established || m.vpn_tunnel_losses > 0) {
      s.vpn_reconnects.add(static_cast<double>(m.vpn_reconnects));
      s.vpn_downtime_s.add(m.vpn_downtime_s);
      s.clear_packets.add(static_cast<double>(m.clear_packets));
      if (m.vpn_recover_p95_s >= 0.0) {
        s.time_to_recover_s.add(m.vpn_recover_p95_s);
      }
    }
    if (m.faults_injected > 0) {
      s.faults_injected.add(static_cast<double>(m.faults_injected));
    }
    if (m.metro_enabled) {
      ++s.metro_runs;
      s.metro_associations.add(static_cast<double>(m.metro_associations));
      s.metro_roams.add(static_cast<double>(m.metro_roams));
      if (m.metro_roam_p95_s >= 0.0) s.metro_roam_p95_s.add(m.metro_roam_p95_s);
      s.metro_promiscuous_rate.add(m.metro_promiscuous_rate);
      s.metro_assoc_fraction.add(m.metro_assoc_fraction);
    }
    s.events_fired.add(static_cast<double>(m.events_fired));
    s.sim_time_s.add(m.sim_time_s);
  }
  const double n = count > 0 ? static_cast<double>(count) : 1.0;
  s.capture_rate = static_cast<double>(captured) / n;
  s.download_rate = static_cast<double>(downloaded) / n;
  s.deception_rate = static_cast<double>(deceived) / n;
  s.detection_rate = static_cast<double>(detected) / n;
  s.vpn_rate = static_cast<double>(vpn_up) / n;
  s.stats.assign(stats_agg.begin(), stats_agg.end());
  return s;
}

util::Json summary_stats_json(const util::Summary& s) {
  const bool any = s.count() > 0;
  util::Json j = util::Json::object();
  j.set("count", static_cast<std::uint64_t>(s.count()));
  j.set("mean", any ? s.mean() : 0.0);
  j.set("p50", any ? s.percentile(0.5) : 0.0);
  j.set("p95", any ? s.percentile(0.95) : 0.0);
  return j;
}

}  // namespace

SweepReport ExperimentRunner::run() {
  ROGUE_ASSERT_MSG(!variants_.empty(), "add_variant() before run()");
  ROGUE_ASSERT_MSG(config_.runs > 0, "sweep needs runs > 0");

  const std::size_t per_variant = config_.runs;
  const std::size_t total = variants_.size() * per_variant;
  const auto sweep_start = std::chrono::steady_clock::now();

  util::ThreadPool pool(config_.jobs);
  std::vector<RunMetrics> runs = util::parallel_map<RunMetrics>(
      pool, total, [&](std::size_t i) {
        const Variant& variant = variants_[i / per_variant];
        const std::uint64_t seed =
            config_.seed_base + static_cast<std::uint64_t>(i % per_variant);
        const auto replica_start = std::chrono::steady_clock::now();

        RunMetrics run;
        run.scenario = config_.scenario;
        run.variant = variant.name;
        run.seed = seed;
        // One faulty replica must not take down the other N-1: report it
        // as failed (the JSON carries variant/seed/error) and keep going.
        // `world` outlives the try so a throwing episode still surrenders
        // its flight-recorder tail.
        std::unique_ptr<scenario::World> world;
        try {
          world = variant.make(seed);
          if (config_.trace) {
            world->simulator().tracer().enable(config_.trace_ring_events);
          }
          if (config_.pool.slab_buffers > 0) {
            // Warm the replica's arena before configure() can serialize
            // anything, so the slab — not the heap — serves first traffic.
            world->simulator().configure_buffer_pool(config_.pool);
          }
          world->configure(seed);
          if (config_.timeseries_dt_s > 0.0) {
            // Scheduled after configure() (reseed needs a pristine
            // simulator) and before run_episode(); fires only while the
            // episode drives the clock, so the series self-terminates.
            sim::Simulator& sim = world->simulator();
            const auto dt = static_cast<sim::Time>(
                config_.timeseries_dt_s * static_cast<double>(sim::kSecond));
            sim.every(dt, [&sim, &run] {
              run.timeseries.push_back(RunMetrics::TimeSample{
                  static_cast<double>(sim.now()) /
                      static_cast<double>(sim::kSecond),
                  sim.stats().snapshot()});
            });
          }
          world->run_episode();
          run.metrics = world->collect_metrics();
        } catch (const std::exception& e) {
          run.failed = true;
          run.error = e.what();
        } catch (...) {
          run.failed = true;
          run.error = "unknown exception";
        }
        if (config_.trace && world != nullptr) {
          run.trace = std::make_shared<obs::TracerDump>(
              world->simulator().tracer().dump());
        }
        run.wall_ms = elapsed_ms(replica_start);
        return run;
      });

  SweepReport report;
  report.config = config_;
  report.runs = std::move(runs);
  report.wall_ms = elapsed_ms(sweep_start);
  report.summaries.reserve(variants_.size());
  for (std::size_t v = 0; v < variants_.size(); ++v) {
    report.summaries.push_back(summarize(
        variants_[v], report.runs.data() + v * per_variant, per_variant));
  }
  return report;
}

util::Json SweepReport::to_json() const {
  util::Json j = util::Json::object();
  j.set("scenario", config.scenario);
  j.set("seed_base", config.seed_base);
  j.set("runs_per_variant", static_cast<std::uint64_t>(config.runs));

  util::Json variants = util::Json::array();
  for (std::size_t v = 0; v < summaries.size(); ++v) {
    const VariantSummary& s = summaries[v];
    util::Json agg = util::Json::object();
    agg.set("runs", static_cast<std::uint64_t>(s.runs));
    agg.set("failed", static_cast<std::uint64_t>(s.failed));
    agg.set("capture_rate", s.capture_rate);
    agg.set("time_to_capture_s", summary_stats_json(s.time_to_capture_s));
    agg.set("download_rate", s.download_rate);
    agg.set("deception_rate", s.deception_rate);
    agg.set("detection_rate", s.detection_rate);
    agg.set("detection_latency_s", summary_stats_json(s.detection_latency_s));
    agg.set("vpn_rate", s.vpn_rate);
    agg.set("vpn_goodput_kbps", summary_stats_json(s.vpn_goodput_kbps));
    agg.set("vpn_overhead_ratio", summary_stats_json(s.vpn_overhead_ratio));
    agg.set("faults_injected", summary_stats_json(s.faults_injected));
    agg.set("vpn_reconnects", summary_stats_json(s.vpn_reconnects));
    agg.set("vpn_downtime_s", summary_stats_json(s.vpn_downtime_s));
    agg.set("time_to_recover_s", summary_stats_json(s.time_to_recover_s));
    agg.set("clear_packets", summary_stats_json(s.clear_packets));
    agg.set("events_fired", summary_stats_json(s.events_fired));
    agg.set("sim_time_s", summary_stats_json(s.sim_time_s));
    // Gated like the per-replica metro block: present only when a metro
    // episode contributed, so legacy reports keep their exact bytes.
    if (s.metro_runs > 0) {
      util::Json metro = util::Json::object();
      metro.set("runs", static_cast<std::uint64_t>(s.metro_runs));
      metro.set("associations", summary_stats_json(s.metro_associations));
      metro.set("roams", summary_stats_json(s.metro_roams));
      metro.set("roam_p95_s", summary_stats_json(s.metro_roam_p95_s));
      metro.set("promiscuous_rate",
                summary_stats_json(s.metro_promiscuous_rate));
      metro.set("assoc_fraction", summary_stats_json(s.metro_assoc_fraction));
      agg.set("metro", std::move(metro));
    }

    util::Json layer_stats = util::Json::object();
    for (const auto& [stat_name, summary] : s.stats) {
      layer_stats.set(stat_name, summary_stats_json(summary));
    }
    agg.set("stats", std::move(layer_stats));

    util::Json replicas = util::Json::array();
    for (std::size_t i = v * config.runs;
         i < (v + 1) * config.runs && i < runs.size(); ++i) {
      replicas.push_back(runner::to_json(runs[i], /*include_wall=*/false));
    }

    util::Json entry = util::Json::object();
    entry.set("name", s.name);
    entry.set("aggregate", std::move(agg));
    entry.set("runs", std::move(replicas));
    variants.push_back(std::move(entry));
  }
  j.set("variants", std::move(variants));

  // Failures surfaced at top level so operators (and CI) need not walk
  // every replica record to find them.
  util::Json failures = util::Json::array();
  for (const RunMetrics& run : runs) {
    if (!run.failed) continue;
    util::Json f = util::Json::object();
    f.set("variant", run.variant);
    f.set("seed", run.seed);
    f.set("error", run.error);
    // With tracing on, a failed replica carries its flight-recorder tail:
    // the last records before the throw, capped so one crashed replica
    // cannot balloon the report. Gated on tracing, so legacy bytes hold.
    if (run.trace != nullptr && !run.trace->empty()) {
      constexpr std::size_t kFailureTailEvents = 256;
      obs::TracerDump tail = *run.trace;
      if (tail.events.size() > kFailureTailEvents) {
        tail.dropped += tail.events.size() - kFailureTailEvents;
        tail.events.erase(tail.events.begin(),
                          tail.events.end() - kFailureTailEvents);
      }
      f.set("flight_recorder", obs::flight_recorder_json(tail));
    }
    failures.push_back(std::move(f));
  }
  j.set("failures", std::move(failures));
  return j;
}

util::Json SweepReport::chrome_trace_events() const {
  util::Json events = util::Json::array();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunMetrics& run = runs[i];
    if (run.trace == nullptr || run.trace->empty()) continue;
    obs::append_chrome_trace(
        events, *run.trace, i,
        run.variant + " seed=" + std::to_string(run.seed));
  }
  return events;
}

util::Json SweepReport::chrome_trace_json() const {
  util::Json j = util::Json::object();
  j.set("traceEvents", chrome_trace_events());
  j.set("displayTimeUnit", "ms");
  return j;
}

std::string SweepReport::timeseries_jsonl() const {
  std::string out;
  for (const RunMetrics& run : runs) {
    for (const RunMetrics::TimeSample& sample : run.timeseries) {
      util::Json stats = util::Json::object();
      for (const obs::StatsSnapshot::Entry& e : sample.stats.entries) {
        switch (e.kind) {
          case obs::MetricKind::kCounter:
            stats.set(e.name, e.value);
            break;
          case obs::MetricKind::kGauge:
            stats.set(e.name, e.value);
            stats.set(e.name + ".high_water", e.high_water);
            break;
          case obs::MetricKind::kHistogram:
            stats.set(e.name + ".count", e.hist.count);
            stats.set(e.name + ".sum", e.hist.sum);
            break;
        }
      }
      util::Json line = util::Json::object();
      line.set("variant", run.variant);
      line.set("seed", run.seed);
      line.set("t_s", sample.t_s);
      line.set("stats", std::move(stats));
      out += line.dump();
      out += '\n';
    }
  }
  return out;
}

util::Json SweepReport::stats_json() const {
  util::Json j = util::Json::object();
  j.set("scenario", config.scenario);
  j.set("seed_base", config.seed_base);
  j.set("runs_per_variant", static_cast<std::uint64_t>(config.runs));
  util::Json variants = util::Json::array();
  for (const VariantSummary& s : summaries) {
    util::Json layer_stats = util::Json::object();
    for (const auto& [stat_name, summary] : s.stats) {
      layer_stats.set(stat_name, summary_stats_json(summary));
    }
    util::Json entry = util::Json::object();
    entry.set("name", s.name);
    entry.set("stats", std::move(layer_stats));
    variants.push_back(std::move(entry));
  }
  j.set("variants", std::move(variants));
  return j;
}

std::size_t SweepReport::failed_count() const {
  std::size_t n = 0;
  for (const RunMetrics& run : runs) {
    if (run.failed) ++n;
  }
  return n;
}

std::string SweepReport::table() const {
  util::Table t({"variant", "runs", "failed", "captured", "t_cap p50(s)",
                 "deceived", "detected", "vpn", "goodput(kbps)", "reconn",
                 "ttr p95(s)", "clear", "events mean"});
  for (const VariantSummary& s : summaries) {
    t.add_row({
        s.name,
        std::to_string(s.runs),
        std::to_string(s.failed),
        util::fmt_percent(s.capture_rate),
        s.time_to_capture_s.count() > 0
            ? util::fmt_double(s.time_to_capture_s.percentile(0.5))
            : "-",
        util::fmt_percent(s.deception_rate),
        util::fmt_percent(s.detection_rate),
        util::fmt_percent(s.vpn_rate),
        s.vpn_goodput_kbps.count() > 0
            ? util::fmt_double(s.vpn_goodput_kbps.mean(), 1)
            : "-",
        s.vpn_reconnects.count() > 0
            ? util::fmt_double(s.vpn_reconnects.mean(), 1)
            : "-",
        s.time_to_recover_s.count() > 0
            ? util::fmt_double(s.time_to_recover_s.percentile(0.95))
            : "-",
        s.clear_packets.count() > 0
            ? util::fmt_double(s.clear_packets.mean(), 0)
            : "-",
        util::fmt_double(s.events_fired.mean(), 0),
    });
  }
  return t.to_string();
}

}  // namespace rogue::runner
