// Stock sweep configurations: maps a scenario name ("corp", "hotspot") to
// the paper's canonical variant ladder so the sweep CLI and tests don't
// each re-specify world configs. Custom studies can still build their own
// Variant lists and hand them to ExperimentRunner directly.
#pragma once

#include <string_view>
#include <vector>

#include "runner/sweep.hpp"

namespace rogue::runner {

/// The paper's corp-network ladder: baseline download, rogue MITM
/// (Figure 2), rogue + §4 deauth forcing + §2.3 detection, and the VPN
/// countermeasure under full attack (Figure 3).
[[nodiscard]] std::vector<Variant> corp_variants();

/// The §1.2.2 hostile-hotspot ladder: benign hotspot, hostile owner,
/// hostile owner vs. always-on home VPN.
[[nodiscard]] std::vector<Variant> hotspot_variants();

/// Lookup by scenario name; empty vector when unknown.
[[nodiscard]] std::vector<Variant> stock_variants(std::string_view scenario);

/// Names accepted by stock_variants().
[[nodiscard]] std::vector<std::string_view> known_scenarios();

}  // namespace rogue::runner
