// Stock sweep configurations: maps a scenario name ("corp", "hotspot") to
// the paper's canonical variant ladder so the sweep CLI and tests don't
// each re-specify world configs. Custom studies can still build their own
// Variant lists and hand them to ExperimentRunner directly.
#pragma once

#include <string_view>
#include <vector>

#include "runner/sweep.hpp"

namespace rogue::runner {

/// The paper's corp-network ladder: baseline download, rogue MITM
/// (Figure 2), rogue + §4 deauth forcing + §2.3 detection, and the VPN
/// countermeasure under full attack (Figure 3). `fault_intensity > 0`
/// additionally injects a seed-derived fault plan (AP/endpoint crashes,
/// channel degradation, link flaps, deauth storms) into every variant.
[[nodiscard]] std::vector<Variant> corp_variants(double fault_intensity = 0.0);

/// The §1.2.2 hostile-hotspot ladder: benign hotspot, hostile owner,
/// hostile owner vs. always-on home VPN.
[[nodiscard]] std::vector<Variant> hotspot_variants(double fault_intensity = 0.0);

/// Chaos ladder on the corp world: a tunnelled download under injected
/// faults, undefended (one-shot tunnel) vs defended (keepalive/DPD +
/// automatic reconnect with backoff). Every replica is guaranteed at least
/// one VPN-endpoint outage, so time-to-recover is always exercised.
[[nodiscard]] std::vector<Variant> corp_chaos_variants(double fault_intensity = 1.0);

/// Chaos ladder on the hostile hotspot: same undefended/defended split,
/// with the added sting that packets sent in the clear during tunnel gaps
/// cross attacker-owned infrastructure.
[[nodiscard]] std::vector<Variant> hotspot_chaos_variants(double fault_intensity = 1.0);

/// Transport matrix (EXP-T1): a tunnelled download over each VPN transport
/// (tcp = TCP-over-TCP, udp = datagram records + anti-replay window +
/// periodic rekey) crossed with path conditions — clean, 5%/10% loss, and
/// transport chaos (reorder + duplicate + jitter + endpoint outages).
/// `fault_intensity` scales the chaos variants (<= 0 keeps the default).
[[nodiscard]] std::vector<Variant> corp_transport_variants(double fault_intensity = 1.0);

/// Metro roaming ladder (EXP-C5 at city scale): a street grid of APs with
/// a waypoint-roaming STA population on the spatial-grid medium. Variants:
/// baseline (no rogues), evil-twin (rogue APs advertising the same ESS),
/// and flat-ref (the same small world on the flat medium, for grid-vs-flat
/// cross-checks in sweep output). `fault_intensity` is ignored — the metro
/// episode is a roaming study, not a chaos study.
[[nodiscard]] std::vector<Variant> metro_variants(double fault_intensity = 0.0);

/// City-scale acceptance ladder: hundreds of APs, tens of thousands of
/// STAs. One replica is minutes of CPU — meant for `--runs 1..2` scaling
/// and determinism runs, not the default 100-replica sweep.
[[nodiscard]] std::vector<Variant> metro_city_variants(double fault_intensity = 0.0);

/// Lookup by scenario name; empty vector when unknown. `fault_intensity`
/// overlays fault injection on the plain ladders and scales the chaos ones
/// (<= 0 keeps the chaos scenarios at their default intensity).
[[nodiscard]] std::vector<Variant> stock_variants(std::string_view scenario,
                                                  double fault_intensity = 0.0);

/// Names accepted by stock_variants().
[[nodiscard]] std::vector<std::string_view> known_scenarios();

}  // namespace rogue::runner
