#include "runner/scenarios.hpp"

#include <memory>

#include "scenario/corp_world.hpp"
#include "scenario/hotspot.hpp"

namespace rogue::runner {

namespace {

/// Attack-phase geometry used across the corp variants: the rogue parks
/// much closer to the victim than the legitimate AP, so best-RSSI roaming
/// reliably prefers it (the paper's parking-lot placement).
scenario::CorpConfig corp_attack_config() {
  scenario::CorpConfig cfg;
  cfg.victim_to_legit_m = 20.0;
  cfg.victim_to_rogue_m = 4.0;
  return cfg;
}

Variant corp_variant(std::string name, scenario::CorpConfig cfg) {
  return Variant{std::move(name), [cfg](std::uint64_t) {
                   return std::make_unique<scenario::CorpWorld>(cfg);
                 }};
}

Variant hotspot_variant(std::string name, scenario::HotspotConfig cfg) {
  return Variant{std::move(name), [cfg](std::uint64_t) {
                   return std::make_unique<scenario::HotspotWorld>(cfg);
                 }};
}

}  // namespace

std::vector<Variant> corp_variants() {
  std::vector<Variant> variants;

  scenario::CorpConfig baseline;  // no attack, plain download
  variants.push_back(corp_variant("baseline", baseline));

  scenario::CorpConfig rogue = corp_attack_config();  // Figure 2
  rogue.deploy_rogue = true;
  variants.push_back(corp_variant("rogue", rogue));

  scenario::CorpConfig forced = corp_attack_config();  // §4 + §2.3
  forced.deploy_rogue = true;
  forced.deauth_forcing = true;
  forced.enable_detection = true;
  variants.push_back(corp_variant("rogue+deauth", forced));

  scenario::CorpConfig vpn = corp_attack_config();  // Figure 3
  vpn.deploy_rogue = true;
  vpn.deauth_forcing = true;
  vpn.use_vpn = true;
  variants.push_back(corp_variant("vpn", vpn));

  return variants;
}

std::vector<Variant> hotspot_variants() {
  std::vector<Variant> variants;

  scenario::HotspotConfig benign;
  variants.push_back(hotspot_variant("benign", benign));

  scenario::HotspotConfig hostile;
  hostile.hostile = true;
  variants.push_back(hotspot_variant("hostile", hostile));

  scenario::HotspotConfig defended;
  defended.hostile = true;
  defended.use_vpn = true;
  variants.push_back(hotspot_variant("hostile+vpn", defended));

  return variants;
}

std::vector<Variant> stock_variants(std::string_view scenario) {
  if (scenario == "corp") return corp_variants();
  if (scenario == "hotspot") return hotspot_variants();
  return {};
}

std::vector<std::string_view> known_scenarios() { return {"corp", "hotspot"}; }

}  // namespace rogue::runner
