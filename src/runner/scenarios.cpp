#include "runner/scenarios.hpp"

#include <memory>

#include "scenario/corp_world.hpp"
#include "scenario/hotspot.hpp"
#include "scenario/metro_world.hpp"

namespace rogue::runner {

namespace {

/// Attack-phase geometry used across the corp variants: the rogue parks
/// much closer to the victim than the legitimate AP, so best-RSSI roaming
/// reliably prefers it (the paper's parking-lot placement).
scenario::CorpConfig corp_attack_config() {
  scenario::CorpConfig cfg;
  cfg.victim_to_legit_m = 20.0;
  cfg.victim_to_rogue_m = 4.0;
  return cfg;
}

Variant corp_variant(std::string name, scenario::CorpConfig cfg) {
  return Variant{std::move(name), [cfg](std::uint64_t) {
                   return std::make_unique<scenario::CorpWorld>(cfg);
                 }};
}

Variant hotspot_variant(std::string name, scenario::HotspotConfig cfg) {
  return Variant{std::move(name), [cfg](std::uint64_t) {
                   return std::make_unique<scenario::HotspotWorld>(cfg);
                 }};
}

Variant metro_variant(std::string name, scenario::MetroConfig cfg) {
  return Variant{std::move(name), [cfg](std::uint64_t) {
                   return std::make_unique<scenario::MetroWorld>(cfg);
                 }};
}

void apply_faults(scenario::CorpConfig& cfg, double intensity) {
  if (intensity <= 0.0) return;
  cfg.inject_faults = true;
  cfg.faults.intensity = intensity;
}

void apply_faults(scenario::HotspotConfig& cfg, double intensity) {
  if (intensity <= 0.0) return;
  cfg.inject_faults = true;
  cfg.faults.intensity = intensity;
}

}  // namespace

std::vector<Variant> corp_variants(double fault_intensity) {
  std::vector<Variant> variants;

  scenario::CorpConfig baseline;  // no attack, plain download
  apply_faults(baseline, fault_intensity);
  variants.push_back(corp_variant("baseline", baseline));

  scenario::CorpConfig rogue = corp_attack_config();  // Figure 2
  rogue.deploy_rogue = true;
  apply_faults(rogue, fault_intensity);
  variants.push_back(corp_variant("rogue", rogue));

  scenario::CorpConfig forced = corp_attack_config();  // §4 + §2.3
  forced.deploy_rogue = true;
  forced.deauth_forcing = true;
  forced.enable_detection = true;
  apply_faults(forced, fault_intensity);
  variants.push_back(corp_variant("rogue+deauth", forced));

  scenario::CorpConfig vpn = corp_attack_config();  // Figure 3
  vpn.deploy_rogue = true;
  vpn.deauth_forcing = true;
  vpn.use_vpn = true;
  apply_faults(vpn, fault_intensity);
  variants.push_back(corp_variant("vpn", vpn));

  return variants;
}

std::vector<Variant> hotspot_variants(double fault_intensity) {
  std::vector<Variant> variants;

  scenario::HotspotConfig benign;
  apply_faults(benign, fault_intensity);
  variants.push_back(hotspot_variant("benign", benign));

  scenario::HotspotConfig hostile;
  hostile.hostile = true;
  apply_faults(hostile, fault_intensity);
  variants.push_back(hotspot_variant("hostile", hostile));

  scenario::HotspotConfig defended;
  defended.hostile = true;
  defended.use_vpn = true;
  apply_faults(defended, fault_intensity);
  variants.push_back(hotspot_variant("hostile+vpn", defended));

  return variants;
}

std::vector<Variant> corp_chaos_variants(double fault_intensity) {
  if (fault_intensity <= 0.0) fault_intensity = 1.0;

  // Robustness study, not an attack study: no rogue, just a tunnelled
  // download while the infrastructure misbehaves underneath it.
  scenario::CorpConfig base;
  base.use_vpn = true;
  base.vpn_window = 5 * sim::kSecond;
  base.download_window = 45 * sim::kSecond;
  base.inject_faults = true;
  base.faults.intensity = fault_intensity;

  std::vector<Variant> variants;
  scenario::CorpConfig undefended = base;  // one-shot tunnel, fail open
  variants.push_back(corp_variant("chaos-undefended", undefended));

  scenario::CorpConfig defended = base;  // keepalive/DPD + reconnect
  defended.vpn_auto_reconnect = true;
  variants.push_back(corp_variant("chaos-defended", defended));

  return variants;
}

std::vector<Variant> hotspot_chaos_variants(double fault_intensity) {
  if (fault_intensity <= 0.0) fault_intensity = 1.0;

  scenario::HotspotConfig base;
  base.hostile = true;  // clear packets here cross attacker-owned ground
  base.use_vpn = true;
  base.vpn_window = 5 * sim::kSecond;
  base.download_window = 45 * sim::kSecond;
  base.inject_faults = true;
  base.faults.intensity = fault_intensity;

  std::vector<Variant> variants;
  scenario::HotspotConfig undefended = base;
  variants.push_back(hotspot_variant("chaos-undefended", undefended));

  scenario::HotspotConfig defended = base;
  defended.vpn_auto_reconnect = true;
  variants.push_back(hotspot_variant("chaos-defended", defended));

  return variants;
}

std::vector<Variant> corp_transport_variants(double fault_intensity) {
  if (fault_intensity <= 0.0) fault_intensity = 1.0;

  // EXP-T1: the same tunnelled download over both transports, across path
  // conditions. No rogue — this is a transport study; the attack angle is
  // covered separately by the sealed-record replay attacker.
  scenario::CorpConfig base;
  base.use_vpn = true;
  base.vpn_auto_reconnect = true;
  base.vpn_window = 5 * sim::kSecond;
  base.download_window = 45 * sim::kSecond;
  // Large enough that the window is bandwidth-limited: goodput then
  // measures how the transport copes with the path, not the blob size.
  base.release_size = 1024 * 1024;

  std::vector<Variant> variants;
  for (const vpn::Transport transport :
       {vpn::Transport::kTcp, vpn::Transport::kUdp}) {
    const bool udp = transport == vpn::Transport::kUdp;
    const std::string prefix = udp ? "udp" : "tcp";
    scenario::CorpConfig t = base;
    t.vpn_transport = transport;
    // Exercise the datagram transport's epoch machinery continuously:
    // several rotations land inside every episode.
    if (udp) t.vpn_rekey_interval = 5 * sim::kSecond;

    scenario::CorpConfig clean = t;
    variants.push_back(corp_variant(prefix + "-clean", clean));

    scenario::CorpConfig loss5 = t;
    loss5.medium.base_loss_prob = 0.05;
    variants.push_back(corp_variant(prefix + "-loss5", loss5));

    scenario::CorpConfig loss10 = t;
    loss10.medium.base_loss_prob = 0.10;
    variants.push_back(corp_variant(prefix + "-loss10", loss10));

    // Transport chaos: reorder/duplicate/jitter windows plus endpoint
    // outages. Other fault kinds are disabled so the matrix isolates what
    // the record layer (vs the association layer) must absorb.
    scenario::CorpConfig chaos = t;
    chaos.inject_faults = true;
    chaos.faults.intensity = fault_intensity;
    chaos.faults.ap_outage = false;
    chaos.faults.channel_degrade = false;
    chaos.faults.link_flap = false;
    chaos.faults.deauth_storm = false;
    chaos.faults.reorder = true;
    chaos.faults.duplicate = true;
    chaos.faults.jitter = true;
    variants.push_back(corp_variant(prefix + "-chaos", chaos));
  }
  return variants;
}

std::vector<Variant> metro_variants(double /*fault_intensity*/) {
  // EXP-C5 at neighborhood scale: small enough for CI smokes and the
  // default 100-replica sweep, large enough that roaming crosses many
  // grid cells and several same-channel AP boundaries.
  scenario::MetroConfig base;  // 6x4 APs, 512 STAs, spatial grid

  std::vector<Variant> variants;
  variants.push_back(metro_variant("baseline", base));

  scenario::MetroConfig twin = base;
  twin.rogue_count = 4;
  variants.push_back(metro_variant("evil-twin", twin));

  // The same world on the flat medium: sweep output then carries a
  // same-binary grid-vs-flat comparison (equivalence is asserted by the
  // test suite; this keeps the runtime delta visible in reports).
  scenario::MetroConfig flat = twin;
  flat.spatial_grid = false;
  variants.push_back(metro_variant("flat-ref", flat));

  return variants;
}

std::vector<Variant> metro_city_variants(double /*fault_intensity*/) {
  // The acceptance-scale world: >= 200 APs, >= 50k STAs. Episode length is
  // trimmed so one replica stays in CPU-minutes territory.
  scenario::MetroConfig city;
  city.ap_cols = 15;
  city.ap_rows = 14;  // 210 legitimate APs
  city.sta_count = 50'000;
  city.rogue_count = 8;
  city.episode_duration = 10 * sim::kSecond;

  std::vector<Variant> variants;
  variants.push_back(metro_variant("city", city));
  return variants;
}

std::vector<Variant> stock_variants(std::string_view scenario,
                                    double fault_intensity) {
  if (scenario == "corp") return corp_variants(fault_intensity);
  if (scenario == "hotspot") return hotspot_variants(fault_intensity);
  if (scenario == "corp-chaos") return corp_chaos_variants(fault_intensity);
  if (scenario == "hotspot-chaos") {
    return hotspot_chaos_variants(fault_intensity);
  }
  if (scenario == "corp-transport") {
    return corp_transport_variants(fault_intensity);
  }
  if (scenario == "metro") return metro_variants(fault_intensity);
  if (scenario == "metro-city") return metro_city_variants(fault_intensity);
  return {};
}

std::vector<std::string_view> known_scenarios() {
  return {"corp",           "hotspot", "corp-chaos", "hotspot-chaos",
          "corp-transport", "metro",   "metro-city"};
}

}  // namespace rogue::runner
