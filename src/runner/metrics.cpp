#include "runner/metrics.hpp"

namespace rogue::runner {

util::Json to_json(const RunMetrics& run, bool include_wall) {
  const scenario::Metrics& m = run.metrics;
  util::Json j = util::Json::object();
  j.set("scenario", run.scenario);
  j.set("variant", run.variant);
  j.set("seed", run.seed);
  if (include_wall) j.set("wall_ms", run.wall_ms);
  j.set("failed", run.failed);
  j.set("error", run.error);

  util::Json metrics = util::Json::object();
  metrics.set("victim_captured", m.victim_captured);
  metrics.set("time_to_capture_s", m.time_to_capture_s);
  metrics.set("download_completed", m.download_completed);
  metrics.set("trojaned", m.trojaned);
  metrics.set("md5_verified", m.md5_verified);
  metrics.set("victim_deceived", m.victim_deceived);
  metrics.set("rogue_detected", m.rogue_detected);
  metrics.set("detection_latency_s", m.detection_latency_s);
  metrics.set("seq_anomalies", m.seq_anomalies);
  metrics.set("vpn_established", m.vpn_established);
  metrics.set("vpn_goodput_kbps", m.vpn_goodput_kbps);
  metrics.set("vpn_overhead_ratio", m.vpn_overhead_ratio);
  metrics.set("vpn_records_out", m.vpn_records_out);
  metrics.set("vpn_records_in", m.vpn_records_in);
  metrics.set("faults_injected", m.faults_injected);
  metrics.set("vpn_tunnel_losses", m.vpn_tunnel_losses);
  metrics.set("vpn_reconnects", m.vpn_reconnects);
  metrics.set("vpn_downtime_s", m.vpn_downtime_s);
  metrics.set("vpn_recover_p50_s", m.vpn_recover_p50_s);
  metrics.set("vpn_recover_p95_s", m.vpn_recover_p95_s);
  metrics.set("clear_packets", m.clear_packets);
  metrics.set("events_fired", m.events_fired);
  metrics.set("trace_records", m.trace_records);
  metrics.set("trace_warnings", m.trace_warnings);
  metrics.set("sim_time_s", m.sim_time_s);
  // Transport block only when a UDP-tunnel episode ran: legacy reports
  // (and the pinned golden digest) stay byte-identical.
  if (m.transport_enabled) {
    util::Json transport = util::Json::object();
    transport.set("replay_drops", m.vpn_replay_drops);
    transport.set("auth_fail_drops", m.vpn_auth_fail_drops);
    transport.set("stale_epoch_drops", m.vpn_stale_epoch_drops);
    transport.set("rekeys", m.vpn_rekeys);
    transport.set("roams", m.vpn_roams);
    transport.set("sessions_reaped", m.vpn_sessions_reaped);
    metrics.set("transport", std::move(transport));
  }
  // Metro block only when a metro roaming episode ran: legacy reports (and
  // the pinned golden digest) stay byte-identical.
  if (m.metro_enabled) {
    util::Json metro = util::Json::object();
    metro.set("stas", m.metro_stas);
    metro.set("aps", m.metro_aps);
    metro.set("associations", m.metro_associations);
    metro.set("roams", m.metro_roams);
    metro.set("beacon_losses", m.metro_beacon_losses);
    metro.set("join_failures", m.metro_join_failures);
    metro.set("deauths", m.metro_deauths);
    metro.set("promiscuous_assocs", m.metro_promiscuous_assocs);
    metro.set("promiscuous_rate", m.metro_promiscuous_rate);
    metro.set("assoc_fraction", m.metro_assoc_fraction);
    metro.set("roam_p50_s", m.metro_roam_p50_s);
    metro.set("roam_p95_s", m.metro_roam_p95_s);
    metrics.set("metro", std::move(metro));
  }
  // WIDS block only when a tournament episode ran: legacy reports (and the
  // pinned golden digest) stay byte-identical.
  if (m.wids_enabled) {
    util::Json wids = util::Json::object();
    wids.set("attack_start_s", m.wids_attack_start_s);
    wids.set("alerts", m.wids_alerts);
    wids.set("false_alerts", m.wids_false_alerts);
    wids.set("time_to_detect_s", m.wids_time_to_detect_s);
    // Per-alert timeline: sim-time of every alert per detector, so TTD
    // percentiles (EXP-D1) are re-derivable from the report alone.
    util::Json timeline = util::Json::array();
    for (const scenario::Metrics::WidsAlert& a : m.wids_alert_timeline) {
      util::Json row = util::Json::object();
      row.set("t_s", a.t_s);
      row.set("detector", a.detector);
      row.set("kind", a.kind);
      row.set("false_alert", a.false_alert);
      timeline.push_back(std::move(row));
    }
    wids.set("timeline", std::move(timeline));
    metrics.set("wids", std::move(wids));
  }
  j.set("metrics", std::move(metrics));
  return j;
}

namespace {

bool read_bool(const util::Json& obj, std::string_view key, bool* out) {
  const util::Json* v = obj.find(key);
  if (v == nullptr || v->type() != util::Json::Type::kBool) return false;
  *out = v->as_bool();
  return true;
}

bool read_double(const util::Json& obj, std::string_view key, double* out) {
  const util::Json* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->as_double();
  return true;
}

bool read_u64(const util::Json& obj, std::string_view key, std::uint64_t* out) {
  const util::Json* v = obj.find(key);
  if (v == nullptr || v->type() != util::Json::Type::kInt) return false;
  *out = static_cast<std::uint64_t>(v->as_int());
  return true;
}

bool read_string(const util::Json& obj, std::string_view key, std::string* out) {
  const util::Json* v = obj.find(key);
  if (v == nullptr || v->type() != util::Json::Type::kString) return false;
  *out = v->as_string();
  return true;
}

}  // namespace

std::optional<RunMetrics> run_metrics_from_json(const util::Json& j) {
  if (j.type() != util::Json::Type::kObject) return std::nullopt;
  RunMetrics run;
  if (!read_string(j, "scenario", &run.scenario)) return std::nullopt;
  if (!read_string(j, "variant", &run.variant)) return std::nullopt;
  if (!read_u64(j, "seed", &run.seed)) return std::nullopt;
  (void)read_double(j, "wall_ms", &run.wall_ms);  // optional
  (void)read_bool(j, "failed", &run.failed);      // optional (pre-chaos reports)
  (void)read_string(j, "error", &run.error);      // optional

  const util::Json* metrics = j.find("metrics");
  if (metrics == nullptr || metrics->type() != util::Json::Type::kObject) {
    return std::nullopt;
  }
  scenario::Metrics& m = run.metrics;
  const bool ok =
      read_bool(*metrics, "victim_captured", &m.victim_captured) &&
      read_double(*metrics, "time_to_capture_s", &m.time_to_capture_s) &&
      read_bool(*metrics, "download_completed", &m.download_completed) &&
      read_bool(*metrics, "trojaned", &m.trojaned) &&
      read_bool(*metrics, "md5_verified", &m.md5_verified) &&
      read_bool(*metrics, "victim_deceived", &m.victim_deceived) &&
      read_bool(*metrics, "rogue_detected", &m.rogue_detected) &&
      read_double(*metrics, "detection_latency_s", &m.detection_latency_s) &&
      read_u64(*metrics, "seq_anomalies", &m.seq_anomalies) &&
      read_bool(*metrics, "vpn_established", &m.vpn_established) &&
      read_double(*metrics, "vpn_goodput_kbps", &m.vpn_goodput_kbps) &&
      read_double(*metrics, "vpn_overhead_ratio", &m.vpn_overhead_ratio) &&
      read_u64(*metrics, "vpn_records_out", &m.vpn_records_out) &&
      read_u64(*metrics, "vpn_records_in", &m.vpn_records_in) &&
      read_u64(*metrics, "events_fired", &m.events_fired) &&
      read_u64(*metrics, "trace_records", &m.trace_records) &&
      read_u64(*metrics, "trace_warnings", &m.trace_warnings) &&
      read_double(*metrics, "sim_time_s", &m.sim_time_s);
  if (!ok) return std::nullopt;
  // Robustness fields are optional so pre-chaos reports still parse.
  (void)read_u64(*metrics, "faults_injected", &m.faults_injected);
  (void)read_u64(*metrics, "vpn_tunnel_losses", &m.vpn_tunnel_losses);
  (void)read_u64(*metrics, "vpn_reconnects", &m.vpn_reconnects);
  (void)read_double(*metrics, "vpn_downtime_s", &m.vpn_downtime_s);
  (void)read_double(*metrics, "vpn_recover_p50_s", &m.vpn_recover_p50_s);
  (void)read_double(*metrics, "vpn_recover_p95_s", &m.vpn_recover_p95_s);
  (void)read_u64(*metrics, "clear_packets", &m.clear_packets);
  // Transport block is optional; its presence implies transport_enabled.
  const util::Json* transport = metrics->find("transport");
  if (transport != nullptr && transport->type() == util::Json::Type::kObject) {
    m.transport_enabled = true;
    (void)read_u64(*transport, "replay_drops", &m.vpn_replay_drops);
    (void)read_u64(*transport, "auth_fail_drops", &m.vpn_auth_fail_drops);
    (void)read_u64(*transport, "stale_epoch_drops", &m.vpn_stale_epoch_drops);
    (void)read_u64(*transport, "rekeys", &m.vpn_rekeys);
    (void)read_u64(*transport, "roams", &m.vpn_roams);
    (void)read_u64(*transport, "sessions_reaped", &m.vpn_sessions_reaped);
  }
  // Metro block is optional; its presence implies metro_enabled.
  const util::Json* metro = metrics->find("metro");
  if (metro != nullptr && metro->type() == util::Json::Type::kObject) {
    m.metro_enabled = true;
    (void)read_u64(*metro, "stas", &m.metro_stas);
    (void)read_u64(*metro, "aps", &m.metro_aps);
    (void)read_u64(*metro, "associations", &m.metro_associations);
    (void)read_u64(*metro, "roams", &m.metro_roams);
    (void)read_u64(*metro, "beacon_losses", &m.metro_beacon_losses);
    (void)read_u64(*metro, "join_failures", &m.metro_join_failures);
    (void)read_u64(*metro, "deauths", &m.metro_deauths);
    (void)read_u64(*metro, "promiscuous_assocs", &m.metro_promiscuous_assocs);
    (void)read_double(*metro, "promiscuous_rate", &m.metro_promiscuous_rate);
    (void)read_double(*metro, "assoc_fraction", &m.metro_assoc_fraction);
    (void)read_double(*metro, "roam_p50_s", &m.metro_roam_p50_s);
    (void)read_double(*metro, "roam_p95_s", &m.metro_roam_p95_s);
  }
  // WIDS block is optional; its presence implies wids_enabled.
  const util::Json* wids = metrics->find("wids");
  if (wids != nullptr && wids->type() == util::Json::Type::kObject) {
    m.wids_enabled = true;
    (void)read_double(*wids, "attack_start_s", &m.wids_attack_start_s);
    (void)read_u64(*wids, "alerts", &m.wids_alerts);
    (void)read_u64(*wids, "false_alerts", &m.wids_false_alerts);
    (void)read_double(*wids, "time_to_detect_s", &m.wids_time_to_detect_s);
    // Timeline is optional so pre-timeline reports still parse.
    const util::Json* timeline = wids->find("timeline");
    if (timeline != nullptr && timeline->type() == util::Json::Type::kArray) {
      for (const util::Json& row : timeline->items()) {
        if (row.type() != util::Json::Type::kObject) continue;
        scenario::Metrics::WidsAlert a;
        (void)read_double(row, "t_s", &a.t_s);
        (void)read_string(row, "detector", &a.detector);
        (void)read_string(row, "kind", &a.kind);
        (void)read_bool(row, "false_alert", &a.false_alert);
        m.wids_alert_timeline.push_back(std::move(a));
      }
    }
  }
  return run;
}

}  // namespace rogue::runner
