// Parallel multi-seed experiment runner. A sweep fans N (seed, variant)
// replicas across a worker pool; every replica builds a private World (its
// own simulator, hosts, PRNG — nothing shared), runs the scenario's
// canonical episode, and emits a RunMetrics record. The runner then
// aggregates per variant into mean/percentile summaries.
//
// Determinism: a replica's result is a pure function of (variant, seed).
// Workers write into an index-ordered results vector and aggregation runs
// sequentially in replica order afterwards, so the report — including its
// serialized bytes — is identical at 1, 2, or 8 worker threads. Wall-clock
// readings stay out of the JSON for the same reason.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runner/metrics.hpp"
#include "scenario/world.hpp"
#include "util/buffer_pool.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace rogue::runner {

/// Build a fresh world for one replica. The factory bakes in the variant's
/// scenario config; the runner reseeds the world via World::configure(), so
/// the factory may ignore `seed` (it is passed for factories that need it
/// while constructing, e.g. to derive per-replica geometry).
using WorldFactory =
    std::function<std::unique_ptr<scenario::World>(std::uint64_t seed)>;

struct Variant {
  std::string name;  ///< e.g. "baseline", "rogue+deauth"
  WorldFactory make;
};

struct SweepConfig {
  std::string scenario = "corp";  ///< label stamped into every record
  std::uint64_t seed_base = 1;    ///< replica i uses seed_base + i
  std::size_t runs = 100;         ///< replicas per variant
  std::size_t jobs = 0;           ///< worker threads; 0 = hardware
  /// Per-replica buffer-pool setup. slab_buffers > 0 pre-warms each
  /// replica's arena before its episode runs (every replica owns its
  /// simulator, so arenas never cross threads) and adds the arena's
  /// high-water/spill counters to the stats report.
  util::BufferPoolConfig pool;
  /// Enable the causal tracer / flight recorder in every replica. Off by
  /// default: the legacy report bytes (and hot-path cost) are unchanged.
  bool trace = false;
  /// Per-replica flight-recorder ring capacity (records).
  std::size_t trace_ring_events = 1 << 16;
  /// Snapshot each replica's StatsRegistry every this many sim-seconds
  /// (0 = timeseries sampling off). Adds one periodic event per replica,
  /// so events_fired shifts — like `trace`, off by default.
  double timeseries_dt_s = 0.0;
};

/// Per-variant aggregate. Rates are over all replicas; the Summary fields
/// aggregate only the replicas where the quantity was observed (captured /
/// detected / tunnel up), so "never happened" does not skew the latency.
struct VariantSummary {
  std::string name;
  std::size_t runs = 0;
  std::size_t failed = 0;  ///< replicas that threw; excluded from the rest
  double capture_rate = 0.0;
  util::Summary time_to_capture_s;
  double download_rate = 0.0;
  double deception_rate = 0.0;
  double detection_rate = 0.0;
  util::Summary detection_latency_s;
  double vpn_rate = 0.0;
  util::Summary vpn_goodput_kbps;
  util::Summary vpn_overhead_ratio;
  // Robustness under chaos (replicas that ran a tunnel).
  util::Summary faults_injected;
  util::Summary vpn_reconnects;
  util::Summary vpn_downtime_s;
  util::Summary time_to_recover_s;  ///< per-replica p95, gaps that healed
  util::Summary clear_packets;
  util::Summary events_fired;
  util::Summary sim_time_s;
  // Metro roaming (replicas with metro_enabled; the aggregate block is
  // serialized only when metro_runs > 0, keeping legacy report bytes).
  std::size_t metro_runs = 0;
  util::Summary metro_associations;
  util::Summary metro_roams;
  util::Summary metro_roam_p95_s;
  util::Summary metro_promiscuous_rate;
  util::Summary metro_assoc_fraction;
  /// Layer-counter aggregates, one Summary per metric name over the
  /// variant's non-failed replicas. Gauges contribute a second
  /// "<name>.high_water" entry; histograms contribute "<name>.count" and
  /// "<name>.sum". Sorted by name (deterministic report bytes).
  std::vector<std::pair<std::string, util::Summary>> stats;
};

struct SweepReport {
  SweepConfig config;
  double wall_ms = 0.0;  ///< whole-sweep wall clock (console only)
  std::vector<RunMetrics> runs;  ///< variant-major, seed-minor order
  std::vector<VariantSummary> summaries;

  /// Machine-readable report. Deterministic: depends only on the
  /// experiment parameters and seeds, never on jobs or host speed.
  [[nodiscard]] util::Json to_json() const;
  /// Just the per-variant layer-counter aggregates (the --stats-out file).
  /// Deterministic under the same contract as to_json().
  [[nodiscard]] util::Json stats_json() const;
  /// Chrome trace-event JSON (load in Perfetto / chrome://tracing): one
  /// process per replica, one track per actor, sim-time as microseconds.
  /// Deterministic under the same contract as to_json().
  [[nodiscard]] util::Json chrome_trace_json() const;
  /// The bare traceEvents array behind chrome_trace_json() — for callers
  /// that append extra (e.g. host-time profiler) tracks before wrapping.
  [[nodiscard]] util::Json chrome_trace_events() const;
  /// Timeseries samples as JSON Lines, one StatsRegistry snapshot per
  /// (replica, sample point) — the --timeseries-out file. Deterministic.
  [[nodiscard]] std::string timeseries_jsonl() const;
  /// Fixed-width console table of the per-variant aggregates.
  [[nodiscard]] std::string table() const;
  /// Replicas that threw instead of completing (drives CLI exit codes).
  [[nodiscard]] std::size_t failed_count() const;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(SweepConfig config);

  void add_variant(std::string name, WorldFactory make);
  [[nodiscard]] std::size_t variant_count() const { return variants_.size(); }

  /// Run runs-per-variant replicas of every variant across the pool.
  [[nodiscard]] SweepReport run();

 private:
  SweepConfig config_;
  std::vector<Variant> variants_;
};

}  // namespace rogue::runner
