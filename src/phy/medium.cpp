#include "phy/medium.hpp"

#include <algorithm>
#include <cmath>

#include "sim/trace.hpp"
#include "util/assert.hpp"

namespace rogue::phy {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Radio::Radio(Medium& medium, std::string name)
    : medium_(medium), name_(std::move(name)) {
  medium_.attach(this);
}

Radio::~Radio() {
  medium_.simulator().cancel(attempt_timer_);
  medium_.detach(this);
}

util::Bytes Radio::acquire_buffer(std::size_t reserve_hint) {
  return medium_.simulator().buffer_pool().acquire(reserve_hint);
}

void Radio::set_channel(Channel ch) {
  if (ch == channel_) return;
  medium_.move_channel(this, channel_, ch);
  channel_ = ch;
}

void Radio::transmit(util::Bytes frame) {
  queue_.push_back(std::move(frame));
  if (!attempt_pending_) {
    attempt_pending_ = true;
    backoff_attempts_ = 0;
    attempt_timer_ = medium_.simulator().after(0, [this] { attempt_transmit(); });
  }
}

void Radio::attempt_transmit() {
  if (queue_.empty()) {
    attempt_pending_ = false;
    return;
  }
  sim::Simulator& sim = medium_.simulator();
  const sim::Time now = sim.now();

  // Our own transmitter is still keyed: wait for it to finish.
  if (own_busy_until_ > now) {
    attempt_timer_ = sim.at(own_busy_until_, [this] { attempt_transmit(); });
    return;
  }
  // CSMA: defer while another (visible) transmission occupies the channel.
  const sim::Time busy_until = medium_.channel_busy_until(channel_);
  if (busy_until > now && backoff_attempts_ < 16) {
    ++deferred_;
    ++medium_.deferral_count_;
    ++backoff_attempts_;
    contended_ = false;  // channel state changed: re-draw the backoff slot
    const sim::Time backoff =
        sim.rng().uniform_u64(10, medium_.config().max_backoff_us);
    attempt_timer_ = sim.at(busy_until + backoff, [this] { attempt_transmit(); });
    return;
  }
  // Contention window: even on an idle channel, wait a random slot before
  // keying up (DIFS + backoff). Without this, request/response peers key
  // up simultaneously inside the sensing blind window and collide.
  if (!contended_) {
    contended_ = true;
    const sim::Time slot = sim.rng().uniform_u64(5, 120);
    attempt_timer_ = sim.after(slot, [this] { attempt_transmit(); });
    return;
  }
  contended_ = false;

  util::Bytes frame = std::move(queue_.front());
  queue_.erase(queue_.begin());
  backoff_attempts_ = 0;
  own_busy_until_ = now + medium_.airtime(frame.size()) + 10;  // +SIFS
  ++frames_sent_;
  medium_.transmit(*this, std::move(frame));
  attempt_timer_ = sim.at(own_busy_until_, [this] { attempt_transmit(); });
}

Medium::Medium(sim::Simulator& simulator, MediumConfig config)
    : sim_(simulator), config_(config) {
  obs::StatsRegistry& stats = sim_.stats();
  stat_tx_ = stats.counter("phy.tx_frames");
  stat_collisions_ = stats.counter("phy.collisions");
  stat_delivered_ = stats.counter("phy.delivered");
  stat_drop_margin_ = stats.counter("phy.drop_below_sensitivity");
  stat_drop_loss_ = stats.counter("phy.drop_random_loss");
  stat_rssi_hits_ = stats.counter("phy.rssi_cache_hits");
  stat_rssi_misses_ = stats.counter("phy.rssi_cache_misses");
  stat_deferrals_ = stats.counter("phy.csma_deferrals");
  stat_frame_bytes_ = stats.histogram("phy.frame_bytes",
                                      {64, 128, 256, 512, 1024, 1536});
  deliver_scope_ = sim_.profiler().intern("phy.deliver");
  plan_scope_ = sim_.profiler().intern("phy.plan_rebuild");
  flush_token_ = stats.on_snapshot([this] { flush_stats(); });
}

Medium::~Medium() { sim_.stats().remove_snapshot_hook(flush_token_); }

void Medium::flush_stats() {
  // Derived counts: every non-sender receiver visit performs exactly one
  // RSSI lookup, and a visit that neither dropped nor lacked a handler was
  // a delivery — so the common-path quantities need no per-event counter.
  const std::uint64_t hits = rssi_lookup_count_ - rssi_miss_count_;
  const std::uint64_t delivered = rssi_lookup_count_ - drop_margin_count_ -
                                  drop_loss_count_ - no_handler_count_;
  obs::StatsRegistry& stats = sim_.stats();
  stats.set_total(stat_tx_, tx_count_);
  stats.set_total(stat_collisions_, collision_count_);
  stats.set_total(stat_delivered_, delivered);
  stats.set_total(stat_drop_margin_, drop_margin_count_);
  stats.set_total(stat_drop_loss_, drop_loss_count_);
  stats.set_total(stat_rssi_hits_, hits);
  stats.set_total(stat_rssi_misses_, rssi_miss_count_);
  stats.set_total(stat_deferrals_, deferral_count_);
  if (chaos_delayed_count_ != 0 || chaos_duplicated_count_ != 0) {
    if (!chaos_stats_interned_) {
      chaos_stats_interned_ = true;
      stat_chaos_delayed_ = stats.counter("phy.chaos_delayed");
      stat_chaos_duplicated_ = stats.counter("phy.chaos_duplicated");
    }
    stats.set_total(stat_chaos_delayed_, chaos_delayed_count_);
    stats.set_total(stat_chaos_duplicated_, chaos_duplicated_count_);
  }
}

sim::Time Medium::airtime(std::size_t bytes) const {
  const double data_us = static_cast<double>(bytes) * 8.0 / config_.bitrate_bps * 1e6;
  return config_.preamble_us + static_cast<sim::Time>(data_us);
}

sim::Time Medium::channel_busy_until(Channel channel) const {
  const sim::Time now = sim_.now();
  sim::Time busy = 0;
  for (const auto& tx : active_) {
    if (tx.channel != channel || tx.end_time <= now) continue;
    // Blind window: very recent starts are not yet sensed.
    if (tx.start_time + config_.sense_latency_us > now) continue;
    busy = std::max(busy, tx.end_time);
  }
  return busy;
}

double Medium::rssi_at(double tx_power_dbm, double dist_m) const {
  const double d = std::max(dist_m, 0.5);  // clamp: no near-field singularity
  const double loss =
      config_.ref_loss_dbm + 10.0 * config_.path_loss_exponent * std::log10(d);
  return tx_power_dbm - loss;
}

void Medium::attach(Radio* radio) {
  radio->attach_seq_ = next_attach_seq_++;
  radios_.push_back(radio);
  by_channel_[radio->channel_].push_back(radio);
  invalidate_plans();
}

void Medium::detach(Radio* radio) {
  std::erase(radios_, radio);
  std::erase(by_channel_[radio->channel_], radio);
  // attach_seq_ values are never reused, but dropping every pair-cache
  // slice on a (rare) detach keeps them from accumulating dead pairs.
  // The bump invalidates lazily; each slice empties on its next probe.
  ++cache_generation_;
  // Stale PlanEntry::rx pointers into this radio are never dereferenced:
  // the epoch bump forces every plan to rebuild before its next walk.
  invalidate_plans();
  // Any in-flight transmission from this radio is dropped at delivery time
  // (sender pointer no longer attached).
  for (auto& tx : active_) {
    if (tx.sender == radio) tx.corrupted = true;
  }
}

void Medium::move_channel(Radio* radio, Channel from, Channel to) {
  std::erase(by_channel_[from], radio);
  // Re-insert by attach_seq_ so the per-channel order always matches the
  // relative order in radios_ (deliver's RNG draw order depends on it).
  auto& list = by_channel_[to];
  const auto pos = std::lower_bound(
      list.begin(), list.end(), radio, [](const Radio* a, const Radio* b) {
        return a->attach_seq_ < b->attach_seq_;
      });
  list.insert(pos, radio);
  invalidate_plans();
}

const Radio::DeliveryPlan& Medium::delivery_plan(const Radio& sender,
                                                 Channel channel) {
  Radio::DeliveryPlan& plan = sender.plan_;
  if (plan.epoch == world_epoch_ && plan.channel == channel) return plan;
  const obs::Profiler::Scope scope(sim_.profiler(), plan_scope_);
  ++plan_rebuild_count_;
  plan.epoch = world_epoch_;
  plan.channel = channel;
  plan.entries.clear();
  const std::vector<Radio*>& list = by_channel_[channel];
  plan.entries.reserve(list.size());
  // pair_rssi keeps the per-pair epoch cache: a rebuild triggered by one
  // radio's move only recomputes the pairs whose endpoints actually
  // changed, and the rssi_miss_count_ bookkeeping stays identical to the
  // pre-plan per-visit probing (same pairs stale at the same times).
  for (Radio* rx : list) {
    if (rx == &sender) continue;
    plan.entries.push_back(
        Radio::PlanEntry{rx, pair_rssi(sender, *rx), rx->sensitivity_dbm_});
  }
  return plan;
}

double Medium::pair_rssi(const Radio& tx, const Radio& rx) {
  if (tx.cache_gen_seen_ != cache_generation_) {
    tx.pair_cache_.clear();
    tx.cache_gen_seen_ = cache_generation_;
  }
  const auto [slot, inserted] = tx.pair_cache_.try_emplace(rx.attach_seq_);
  Radio::RssiCacheEntry& entry = *slot;
  if (inserted || entry.tx_epoch != tx.geom_epoch_ ||
      entry.rx_epoch != rx.geom_epoch_) {
    ++rssi_miss_count_;  // recompute path: the increment is noise here
    entry.tx_epoch = tx.geom_epoch_;
    entry.rx_epoch = rx.geom_epoch_;
    entry.rssi_dbm =
        rssi_at(tx.tx_power_dbm_, distance(tx.position_, rx.position_));
  }
  return entry.rssi_dbm;
}

void Medium::transmit(Radio& sender, util::Bytes frame) {
  ++tx_count_;
  sim_.stats().observe(stat_frame_bytes_, frame.size());
  if (capture_ != nullptr) capture_->capture_frame(sim_.now(), frame);
  const sim::Time end = sim_.now() + airtime(frame.size());
  const std::uint64_t id = next_tx_id_++;

  // No pruning needed: every entry's deliver event erases it, and events
  // fire in time order, so nothing in active_ is ever past its end_time.
  // Overlap on the same channel: two concurrent audible transmissions
  // corrupt each other (no capture effect).
  bool collided = false;
  for (auto& tx : active_) {
    if (tx.channel == sender.channel() && tx.end_time > sim_.now()) {
      tx.corrupted = true;
      ++collision_count_;
      collided = true;
    }
  }
  active_.push_back(ActiveTx{id, sender.channel(), sim_.now(), end, &sender, collided});

  // Exactly 48 captured bytes: stays in EventFn's inline storage. The
  // frame buffer is recycled once every receiver has been handed its view.
  sim_.at(end, [this, id, sender_ptr = &sender, f = std::move(frame)]() mutable {
    deliver(id, sender_ptr, f);
    sim_.buffer_pool().release(std::move(f));
  });
}

void Medium::deliver(std::uint64_t tx_id, const Radio* sender, const util::Bytes& frame) {
  // The RAII scope lives in this wrapper so the (usual) unprofiled path
  // runs deliver_impl() with no cleanup object in its frame — keeping the
  // receiver loop free of exception-unwind bookkeeping.
  if (sim_.profiler().enabled()) {
    const obs::Profiler::Scope scope(sim_.profiler(), deliver_scope_);
    deliver_impl(tx_id, sender, frame);
    return;
  }
  deliver_impl(tx_id, sender, frame);
}

void Medium::deliver_impl(std::uint64_t tx_id, const Radio* sender,
                          const util::Bytes& frame) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [&](const ActiveTx& tx) { return tx.id == tx_id; });
  ROGUE_ASSERT(it != active_.end());
  const ActiveTx tx = *it;
  active_.erase(it);
  if (tx.corrupted) return;
  // Sender may have been detached mid-flight.
  if (std::find(radios_.begin(), radios_.end(), sender) == radios_.end()) return;

  // Batched fan-out: one walk over the sender's flattened delivery plan
  // (per-channel order minus the sender, so the RNG draw sequence is
  // identical to filtering the full list). The plan carries pairwise RSSI
  // and receiver sensitivity inline — the loop streams a contiguous array
  // and only dereferences a Radio on frames that actually land.
  //
  // Counting stays off the common path: one bulk add per delivery plus
  // increments on the rare skip branches. flush_stats() derives the hot
  // quantities (cache hits, delivered) from these by subtraction.
  const Radio::DeliveryPlan& plan = delivery_plan(*sender, tx.channel);
  rssi_lookup_count_ += plan.entries.size();
  const double floor_loss = std::min(1.0, config_.base_loss_prob + extra_loss_);
  const double noise_span = config_.rssi_noise_db;
  const double margin_scale = config_.margin_scale_db;
  const sim::Time now = sim_.now();
  util::Prng& rng = sim_.rng();
  const bool chaos =
      reorder_prob_ > 0.0 || duplicate_prob_ > 0.0 || jitter_max_us_ > 0;
  for (const Radio::PlanEntry& entry : plan.entries) {
    const double noise = noise_span * (2.0 * rng.uniform01() - 1.0);
    const double rssi = entry.rssi_dbm + noise;
    const double margin = rssi - entry.sens_dbm;
    if (margin < 0.0) {
      ++drop_margin_count_;
      continue;
    }
    const double success =
        (1.0 - floor_loss) * (1.0 - std::exp(-margin / margin_scale));
    if (!rng.chance(success)) {
      ++drop_loss_count_;
      continue;
    }
    Radio* rx = entry.rx;
    if (!rx->handler_) {
      ++no_handler_count_;
      continue;
    }
    if (!chaos) {
      ++rx->frames_received_;
      rx->handler_(frame, RxInfo{now, rssi, tx.channel});
      continue;
    }
    // Transport-chaos path (fault windows only): the extra RNG draws below
    // happen iff a knob is nonzero, so chaos-free runs keep the exact draw
    // sequence of the loop above.
    sim::Time extra = 0;
    if (jitter_max_us_ > 0) extra += rng.uniform_u64(0, jitter_max_us_);
    if (reorder_prob_ > 0.0 && rng.chance(reorder_prob_)) {
      // Held back far enough to land behind several later transmissions.
      extra += rng.uniform_u64(500, 3000);
    }
    const bool duplicated = duplicate_prob_ > 0.0 && rng.chance(duplicate_prob_);
    if (extra == 0 && !duplicated) {
      ++rx->frames_received_;
      rx->handler_(frame, RxInfo{now, rssi, tx.channel});
      continue;
    }
    if (extra == 0) {
      ++rx->frames_received_;
      rx->handler_(frame, RxInfo{now, rssi, tx.channel});
    } else {
      ++chaos_delayed_count_;
      deliver_late(rx, tx.channel, rssi, now + extra, frame);
    }
    if (duplicated) {
      ++chaos_duplicated_count_;
      deliver_late(rx, tx.channel, rssi, now + extra + rng.uniform_u64(100, 1000),
                   frame);
    }
  }
}

void Medium::deliver_late(Radio* rx, Channel channel, double rssi, sim::Time at,
                          const util::Bytes& frame) {
  // The original frame buffer is recycled when the delivery event returns,
  // so a held-back copy needs its own pooled buffer.
  util::Bytes copy = sim_.buffer_pool().acquire(frame.size());
  copy.assign(frame.begin(), frame.end());
  sim_.at(at, [this, rx, channel, rssi, f = std::move(copy)]() mutable {
    // The world may have changed while the frame was held: deliver only if
    // the receiver is still attached, tuned to the channel, and listening.
    if (std::find(radios_.begin(), radios_.end(), rx) != radios_.end() &&
        rx->channel_ == channel && rx->handler_) {
      ++rx->frames_received_;
      rx->handler_(f, RxInfo{sim_.now(), rssi, channel});
    }
    sim_.buffer_pool().release(std::move(f));
  });
}

void Medium::set_loss_override(double extra_loss_prob) {
  ROGUE_ASSERT(extra_loss_prob >= 0.0);
  extra_loss_ = extra_loss_prob;
}

void Medium::set_reorder(double probability) {
  ROGUE_ASSERT(probability >= 0.0 && probability <= 1.0);
  reorder_prob_ = probability;
}

void Medium::set_duplicate(double probability) {
  ROGUE_ASSERT(probability >= 0.0 && probability <= 1.0);
  duplicate_prob_ = probability;
}

void Medium::set_jitter_ms(double max_ms) {
  ROGUE_ASSERT(max_ms >= 0.0);
  jitter_max_us_ = static_cast<sim::Time>(max_ms * 1000.0);
}

}  // namespace rogue::phy
