#include "phy/medium.hpp"

#include <algorithm>
#include <cmath>

#include "sim/trace.hpp"
#include "util/assert.hpp"

namespace rogue::phy {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Radio::Radio(Medium& medium, std::string name)
    : medium_(medium), name_(std::move(name)) {
  trace_actor_ = medium_.simulator().tracer().actor(name_);
  medium_.attach(this);
}

Radio::~Radio() {
  medium_.simulator().cancel(attempt_timer_);
  medium_.detach(this);
}

util::Bytes Radio::acquire_buffer(std::size_t reserve_hint) {
  return medium_.simulator().buffer_pool().acquire(reserve_hint);
}

void Radio::trim_tx_state() {
  plan_ = DeliveryPlan{};
  pair_cache_ = util::FlatU64Map<RssiCacheEntry>{};
}

void Radio::set_channel(Channel ch) {
  if (ch == channel_) return;
  medium_.move_channel(this, channel_, ch);
  channel_ = ch;
}

void Radio::transmit(util::Bytes frame) {
  queue_.push_back(std::move(frame));
  // Frames queue synchronously inside delivery handlers but hit the air
  // from CSMA timers; stamp the chain now so the response still inherits
  // the inbound frame's causal context when it finally transmits.
  queue_chain_.push_back(medium_.simulator().tracer().current());
  if (!attempt_pending_) {
    attempt_pending_ = true;
    backoff_attempts_ = 0;
    attempt_timer_ = medium_.simulator().after(0, [this] { attempt_transmit(); });
  }
}

void Radio::attempt_transmit() {
  if (queue_.empty()) {
    attempt_pending_ = false;
    return;
  }
  sim::Simulator& sim = medium_.simulator();
  const sim::Time now = sim.now();

  // Our own transmitter is still keyed: wait for it to finish.
  if (own_busy_until_ > now) {
    attempt_timer_ = sim.at(own_busy_until_, [this] { attempt_transmit(); });
    return;
  }
  // CSMA: defer while another (visible) transmission occupies the channel.
  const sim::Time busy_until = medium_.channel_busy_for(*this);
  if (busy_until > now && backoff_attempts_ < 16) {
    ++deferred_;
    ++medium_.deferral_count_;
    ++backoff_attempts_;
    contended_ = false;  // channel state changed: re-draw the backoff slot
    const sim::Time backoff =
        sim.rng().uniform_u64(10, medium_.config().max_backoff_us);
    attempt_timer_ = sim.at(busy_until + backoff, [this] { attempt_transmit(); });
    return;
  }
  // Contention window: even on an idle channel, wait a random slot before
  // keying up (DIFS + backoff). Without this, request/response peers key
  // up simultaneously inside the sensing blind window and collide.
  if (!contended_) {
    contended_ = true;
    const sim::Time slot = sim.rng().uniform_u64(5, 120);
    attempt_timer_ = sim.after(slot, [this] { attempt_transmit(); });
    return;
  }
  contended_ = false;

  util::Bytes frame = std::move(queue_.front());
  queue_.erase(queue_.begin());
  const std::uint64_t chain = queue_chain_.front();
  queue_chain_.erase(queue_chain_.begin());
  backoff_attempts_ = 0;
  own_busy_until_ = now + medium_.airtime(frame.size()) + 10;  // +SIFS
  ++frames_sent_;
  const obs::Tracer::IdScope causal(sim.tracer(), chain);
  medium_.transmit(*this, std::move(frame));
  attempt_timer_ = sim.at(own_busy_until_, [this] { attempt_transmit(); });
}

Medium::Medium(sim::Simulator& simulator, MediumConfig config)
    : sim_(simulator), config_(config) {
  if (config_.spatial_grid) {
    grid_power_ceiling_ = config_.grid_tx_power_ceiling_dbm;
    grid_sens_floor_ = config_.grid_sensitivity_floor_dbm;
    cell_size_m_ = std::max(
        config_.grid_cell_m, audible_range(grid_power_ceiling_, grid_sens_floor_));
  }
  obs::StatsRegistry& stats = sim_.stats();
  stat_tx_ = stats.counter("phy.tx_frames");
  stat_collisions_ = stats.counter("phy.collisions");
  stat_delivered_ = stats.counter("phy.delivered");
  stat_drop_margin_ = stats.counter("phy.drop_below_sensitivity");
  stat_drop_loss_ = stats.counter("phy.drop_random_loss");
  stat_rssi_hits_ = stats.counter("phy.rssi_cache_hits");
  stat_rssi_misses_ = stats.counter("phy.rssi_cache_misses");
  stat_deferrals_ = stats.counter("phy.csma_deferrals");
  stat_frame_bytes_ = stats.histogram("phy.frame_bytes",
                                      {64, 128, 256, 512, 1024, 1536});
  deliver_scope_ = sim_.profiler().intern("phy.deliver");
  plan_scope_ = sim_.profiler().intern("phy.plan_rebuild");
  obs::Tracer& tracer = sim_.tracer();
  trace_tx_ = tracer.name("phy.tx");
  trace_rx_ = tracer.name("phy.rx");
  trace_rx_late_ = tracer.name("phy.rx-late");
  trace_drop_margin_ = tracer.name("phy.drop-margin");
  trace_drop_loss_ = tracer.name("phy.drop-loss");
  trace_drop_corrupt_ = tracer.name("phy.drop-collision");
  flush_token_ = stats.on_snapshot([this] { flush_stats(); });
}

Medium::~Medium() { sim_.stats().remove_snapshot_hook(flush_token_); }

void Medium::flush_stats() {
  // Derived counts: every non-sender receiver visit performs exactly one
  // RSSI lookup, and a visit that neither dropped nor lacked a handler was
  // a delivery — so the common-path quantities need no per-event counter.
  const std::uint64_t hits = rssi_lookup_count_ - rssi_miss_count_;
  const std::uint64_t delivered = rssi_lookup_count_ - drop_margin_count_ -
                                  drop_loss_count_ - no_handler_count_;
  obs::StatsRegistry& stats = sim_.stats();
  stats.set_total(stat_tx_, tx_count_);
  stats.set_total(stat_collisions_, collision_count_);
  stats.set_total(stat_delivered_, delivered);
  stats.set_total(stat_drop_margin_, drop_margin_count_);
  stats.set_total(stat_drop_loss_, drop_loss_count_);
  stats.set_total(stat_rssi_hits_, hits);
  stats.set_total(stat_rssi_misses_, rssi_miss_count_);
  stats.set_total(stat_deferrals_, deferral_count_);
  if (chaos_delayed_count_ != 0 || chaos_duplicated_count_ != 0) {
    if (!chaos_stats_interned_) {
      chaos_stats_interned_ = true;
      stat_chaos_delayed_ = stats.counter("phy.chaos_delayed");
      stat_chaos_duplicated_ = stats.counter("phy.chaos_duplicated");
    }
    stats.set_total(stat_chaos_delayed_, chaos_delayed_count_);
    stats.set_total(stat_chaos_duplicated_, chaos_duplicated_count_);
  }
}

sim::Time Medium::airtime(std::size_t bytes) const {
  const double data_us = static_cast<double>(bytes) * 8.0 / config_.bitrate_bps * 1e6;
  return config_.preamble_us + static_cast<sim::Time>(data_us);
}

sim::Time Medium::channel_busy_until(Channel channel) const {
  const sim::Time now = sim_.now();
  sim::Time busy = 0;
  for (const auto& tx : active_) {
    if (tx.channel != channel || tx.end_time <= now) continue;
    // Blind window: very recent starts are not yet sensed.
    if (tx.start_time + config_.sense_latency_us > now) continue;
    busy = std::max(busy, tx.end_time);
  }
  return busy;
}

sim::Time Medium::channel_busy_for(const Radio& listener) const {
  if (!grid_enabled()) return channel_busy_until(listener.channel_);
  // Grid mode: carrier sense is as local as reception — only transmitters
  // in the listener's 3x3 neighborhood are audible energy. A one-cell
  // world degenerates to exactly the flat behavior.
  const sim::Time now = sim_.now();
  const Cell& home = cells_[listener.cell_];
  sim::Time busy = 0;
  for (const auto& tx : active_) {
    if (tx.channel != listener.channel_ || tx.end_time <= now) continue;
    if (tx.start_time + config_.sense_latency_us > now) continue;
    if (cell_chebyshev(tx.cx, tx.cy, home.cx, home.cy) > 1) continue;
    busy = std::max(busy, tx.end_time);
  }
  return busy;
}

double Medium::rssi_at(double tx_power_dbm, double dist_m) const {
  const double d = std::max(dist_m, 0.5);  // clamp: no near-field singularity
  const double loss =
      config_.ref_loss_dbm + 10.0 * config_.path_loss_exponent * std::log10(d);
  return tx_power_dbm - loss;
}

double Medium::audible_range(double tx_power_dbm, double sensitivity_dbm) const {
  // Invert rssi_at(): the distance at which tx power minus path loss equals
  // sensitivity minus the most favourable +rssi_noise_db fade. The small
  // absolute slack absorbs the round trip through pow/log10 so a receiver
  // parked exactly on the audibility boundary never falls outside the
  // neighborhood a flat medium would have reached.
  const double budget = tx_power_dbm - (sensitivity_dbm - config_.rssi_noise_db) -
                        config_.ref_loss_dbm;
  const double d = std::pow(10.0, budget / (10.0 * config_.path_loss_exponent));
  return std::max(d, 1.0) + 1e-6;
}

// ---- Flat-mode channel index ------------------------------------------------

std::vector<Radio*>& Medium::channel_list(Channel ch) {
  for (ChannelList& cl : channels_) {
    if (cl.channel == ch) return cl.radios;
  }
  channels_.push_back(ChannelList{ch, {}});
  return channels_.back().radios;
}

const std::vector<Radio*>* Medium::find_channel_list(Channel ch) const {
  for (const ChannelList& cl : channels_) {
    if (cl.channel == ch) return &cl.radios;
  }
  return nullptr;
}

// ---- Grid internals ---------------------------------------------------------

std::uint64_t Medium::cell_key(std::int32_t cx, std::int32_t cy) {
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
      static_cast<std::uint32_t>(cy);
  // The XOR keeps the key nonzero (FlatU64Map reserves 0) for every
  // coordinate pair grid_coords() can produce: key 0 would need |cx|, |cy|
  // beyond the +/-2^30 clamp.
  return packed ^ 0x9e3779b97f4a7c15ull;
}

std::pair<std::int32_t, std::int32_t> Medium::grid_coords(const Position& p) const {
  ROGUE_ASSERT_MSG(cell_size_m_ > 0.0, "grid_coords() needs spatial_grid on");
  constexpr double kLimit = 1073741824.0;  // 2^30: keeps cell_key() nonzero
  const double fx = std::clamp(std::floor(p.x / cell_size_m_), -kLimit, kLimit);
  const double fy = std::clamp(std::floor(p.y / cell_size_m_), -kLimit, kLimit);
  return {static_cast<std::int32_t>(fx), static_cast<std::int32_t>(fy)};
}

std::uint32_t Medium::cell_at(std::int32_t cx, std::int32_t cy) {
  const auto [slot, inserted] = cell_index_.try_emplace(cell_key(cx, cy));
  if (inserted) {
    *slot = static_cast<std::uint32_t>(cells_.size()) + 1;
    cells_.push_back(Cell{cx, cy, 1, {}});
  }
  return *slot - 1;
}

std::uint32_t Medium::find_cell(std::int32_t cx, std::int32_t cy) const {
  const std::uint32_t* slot = cell_index_.find(cell_key(cx, cy));
  return slot != nullptr ? *slot - 1 : Radio::kNoCell;
}

std::int32_t Medium::cell_chebyshev(std::int32_t ax, std::int32_t ay,
                                    std::int32_t bx, std::int32_t by) {
  // 64-bit intermediates: coordinate differences can exceed int32 range.
  const std::int64_t dx = std::int64_t{ax} - bx;
  const std::int64_t dy = std::int64_t{ay} - by;
  const std::int64_t d = std::max(dx < 0 ? -dx : dx, dy < 0 ? -dy : dy);
  return d > 3 ? 3 : static_cast<std::int32_t>(d);  // callers compare <= 2
}

std::uint64_t Medium::neighborhood_epochs(std::int32_t cx, std::int32_t cy) const {
  // Sum of monotone counters over a fixed 3x3 neighborhood: strictly
  // increases on any membership/geometry change inside it (including a
  // cell springing into existence — insertion bumps the new cell's epoch
  // past its initial value), so an equal sum means an unchanged audible
  // world. Missing cells contribute 0.
  std::uint64_t sum = 0;
  for (std::int32_t dy = -1; dy <= 1; ++dy) {
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      const std::uint32_t ci = find_cell(cx + dx, cy + dy);
      if (ci != Radio::kNoCell) sum += cells_[ci].epoch;
    }
  }
  return sum;
}

void Medium::grid_insert(Radio* radio) {
  const auto [cx, cy] = grid_coords(radio->position_);
  const std::uint32_t ci = cell_at(cx, cy);
  Cell& cell = cells_[ci];
  // Sorted by attach_seq_ so neighborhood gathers can restore the flat
  // path's receiver order with one small sort.
  const auto pos = std::lower_bound(
      cell.members.begin(), cell.members.end(), radio,
      [](const Radio* a, const Radio* b) { return a->attach_seq_ < b->attach_seq_; });
  cell.members.insert(pos, radio);
  ++cell.epoch;
  radio->cell_ = ci;
}

void Medium::grid_remove(Radio* radio) {
  Cell& cell = cells_[radio->cell_];
  std::erase(cell.members, radio);
  ++cell.epoch;
  radio->cell_ = Radio::kNoCell;
}

void Medium::radio_moved(Radio& radio) {
  const auto [cx, cy] = grid_coords(radio.position_);
  Cell& cell = cells_[radio.cell_];
  if (cell.cx == cx && cell.cy == cy) {
    // Same cell: geometry changed, so every plan whose neighborhood holds
    // this cell must refresh its RSSIs — but only those. Senders more than
    // one cell away never heard this radio and keep their plans.
    ++cell.epoch;
    return;
  }
  grid_remove(&radio);
  grid_insert(&radio);
}

void Medium::radio_retuned(Radio& radio) {
  ensure_grid_bounds(radio);
  ++cells_[radio.cell_].epoch;
}

void Medium::ensure_grid_bounds(const Radio& radio) {
  bool widened = false;
  if (radio.tx_power_dbm_ > grid_power_ceiling_) {
    grid_power_ceiling_ = radio.tx_power_dbm_;
    widened = true;
  }
  if (radio.sensitivity_dbm_ < grid_sens_floor_) {
    grid_sens_floor_ = radio.sensitivity_dbm_;
    widened = true;
  }
  if (!widened) return;
  const double need = std::max(
      config_.grid_cell_m, audible_range(grid_power_ceiling_, grid_sens_floor_));
  if (need > cell_size_m_) regrid(need);
}

void Medium::regrid(double new_cell_m) {
  // Rare (a radio exceeded the configured bounds): rebuild every cell at
  // the wider side. grid_epoch_ stales every outstanding plan at once.
  cell_size_m_ = new_cell_m;
  ++grid_epoch_;
  cells_.clear();
  cell_index_.clear();
  for (Radio* radio : radios_) grid_insert(radio);
}

std::vector<const Radio*> Medium::grid_cell_members(std::int32_t cx,
                                                    std::int32_t cy) const {
  const std::uint32_t ci = find_cell(cx, cy);
  if (ci == Radio::kNoCell) return {};
  return {cells_[ci].members.begin(), cells_[ci].members.end()};
}

// ---- Membership -------------------------------------------------------------

void Medium::attach(Radio* radio) {
  radio->attach_seq_ = next_attach_seq_++;
  radio->radios_index_ = radios_.size();
  radios_.push_back(radio);
  *by_seq_.try_emplace(radio->attach_seq_).first = radio;
  if (grid_enabled()) {
    ensure_grid_bounds(*radio);
    grid_insert(radio);
  } else {
    // Attach order is attach_seq_ order, so push_back keeps the per-channel
    // list sorted (deliver's RNG draw order depends on it).
    channel_list(radio->channel_).push_back(radio);
  }
  invalidate_plans();
}

void Medium::detach(Radio* radio) {
  Radio* last = radios_.back();
  radios_[radio->radios_index_] = last;
  last->radios_index_ = radio->radios_index_;
  radios_.pop_back();
  *by_seq_.try_emplace(radio->attach_seq_).first = nullptr;
  if (grid_enabled()) {
    grid_remove(radio);
  } else {
    std::erase(channel_list(radio->channel_), radio);
  }
  // attach_seq_ values are never reused, but dropping every pair-cache
  // slice on a (rare) detach keeps them from accumulating dead pairs.
  // The bump invalidates lazily; each slice empties on its next probe.
  ++cache_generation_;
  // Stale PlanEntry::rx pointers into this radio are never dereferenced:
  // the epoch bump forces every plan to rebuild before its next walk.
  invalidate_plans();
  // Any in-flight transmission from this radio is corrupted here, which is
  // what makes deliver_impl()'s sender pointer safe to dereference: a
  // non-corrupted ActiveTx implies its sender is still attached.
  for (auto& tx : active_) {
    if (tx.sender == radio) tx.corrupted = true;
  }
}

void Medium::move_channel(Radio* radio, Channel from, Channel to) {
  if (grid_enabled()) {
    // Cell membership is channel-agnostic; the hop only perturbs plans in
    // the radio's own neighborhood (it appears/disappears as a receiver).
    ++cells_[radio->cell_].epoch;
  } else {
    std::erase(channel_list(from), radio);
    // Re-insert by attach_seq_ so the per-channel order stays the global
    // attach order (deliver's RNG draw order depends on it).
    auto& list = channel_list(to);
    const auto pos = std::lower_bound(
        list.begin(), list.end(), radio, [](const Radio* a, const Radio* b) {
          return a->attach_seq_ < b->attach_seq_;
        });
    list.insert(pos, radio);
  }
  invalidate_plans();
}

// ---- Delivery ---------------------------------------------------------------

const Radio::DeliveryPlan& Medium::delivery_plan(const Radio& sender,
                                                 Channel channel) {
  Radio::DeliveryPlan& plan = sender.plan_;
  if (!grid_enabled()) {
    if (plan.epoch == world_epoch_ && plan.channel == channel) return plan;
    const obs::Profiler::Scope scope(sim_.profiler(), plan_scope_);
    ++plan_rebuild_count_;
    plan.epoch = world_epoch_;
    plan.channel = channel;
    plan.entries.clear();
    // pair_rssi keeps the per-pair epoch cache: a rebuild triggered by one
    // radio's move only recomputes the pairs whose endpoints actually
    // changed, and the rssi_miss_count_ bookkeeping stays identical to the
    // pre-plan per-visit probing (same pairs stale at the same times).
    if (const std::vector<Radio*>* list = find_channel_list(channel)) {
      plan.entries.reserve(list->size());
      for (Radio* rx : *list) {
        if (rx == &sender) continue;
        plan.entries.push_back(
            Radio::PlanEntry{rx, pair_rssi(sender, *rx), rx->sensitivity_dbm_});
      }
    }
    return plan;
  }

  const Cell& home = cells_[sender.cell_];
  const std::uint64_t neigh = neighborhood_epochs(home.cx, home.cy);
  if (plan.epoch == grid_epoch_ && plan.channel == channel &&
      plan.cell == sender.cell_ && plan.neigh_epochs == neigh) {
    return plan;
  }
  const obs::Profiler::Scope scope(sim_.profiler(), plan_scope_);
  ++plan_rebuild_count_;
  plan.epoch = grid_epoch_;
  plan.channel = channel;
  plan.cell = sender.cell_;
  plan.neigh_epochs = neigh;
  plan.entries.clear();
  for (std::int32_t dy = -1; dy <= 1; ++dy) {
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      const std::uint32_t ci = find_cell(home.cx + dx, home.cy + dy);
      if (ci == Radio::kNoCell) continue;
      for (Radio* rx : cells_[ci].members) {
        if (rx == &sender || rx->channel_ != channel) continue;
        plan.entries.push_back(
            Radio::PlanEntry{rx, pair_rssi(sender, *rx), rx->sensitivity_dbm_});
      }
    }
  }
  // Receivers must be visited in attach_seq_ order — the order the flat
  // path walks them — so a delivery's RNG draw sequence cannot depend on
  // cell geometry. Cells are individually sorted; the 9-way union is
  // small, so one sort beats a heap merge.
  std::sort(plan.entries.begin(), plan.entries.end(),
            [](const Radio::PlanEntry& a, const Radio::PlanEntry& b) {
              return a.rx->attach_seq_ < b.rx->attach_seq_;
            });
  return plan;
}

double Medium::pair_rssi(const Radio& tx, const Radio& rx) {
  if (!config_.pair_rssi_cache) {
    // Metro-scale worlds: constant mobility stales every entry before its
    // next use while tens of thousands of per-sender slices cost real
    // memory, so compute directly. Every probe counts as a miss.
    ++rssi_miss_count_;
    return rssi_at(tx.tx_power_dbm_, distance(tx.position_, rx.position_));
  }
  if (tx.cache_gen_seen_ != cache_generation_) {
    tx.pair_cache_.clear();
    tx.cache_gen_seen_ = cache_generation_;
  }
  const auto [slot, inserted] = tx.pair_cache_.try_emplace(rx.attach_seq_);
  Radio::RssiCacheEntry& entry = *slot;
  if (inserted || entry.tx_epoch != tx.geom_epoch_ ||
      entry.rx_epoch != rx.geom_epoch_) {
    ++rssi_miss_count_;  // recompute path: the increment is noise here
    entry.tx_epoch = tx.geom_epoch_;
    entry.rx_epoch = rx.geom_epoch_;
    entry.rssi_dbm =
        rssi_at(tx.tx_power_dbm_, distance(tx.position_, rx.position_));
  }
  return entry.rssi_dbm;
}

void Medium::transmit(Radio& sender, util::Bytes frame) {
  ++tx_count_;
  sim_.stats().observe(stat_frame_bytes_, frame.size());
  if (capture_ != nullptr) capture_->capture_frame(sim_.now(), frame);
  const sim::Time end = sim_.now() + airtime(frame.size());
  const std::uint64_t id = next_tx_id_++;

  std::int32_t scx = 0;
  std::int32_t scy = 0;
  if (grid_enabled()) {
    const Cell& cell = cells_[sender.cell_];
    scx = cell.cx;
    scy = cell.cy;
  }
  // No pruning needed: every entry's deliver event erases it, and events
  // fire in time order, so nothing in active_ is ever past its end_time.
  // Overlap on the same channel: two concurrent audible transmissions
  // corrupt each other (no capture effect). Grid mode corrupts only when
  // the senders are within two cells — any receiver hearing both is within
  // one cell of each, so farther pairs cannot share a victim.
  obs::Tracer& tracer = sim_.tracer();
  const bool tracing = tracer.enabled();
  bool collided = false;
  for (auto& tx : active_) {
    if (tx.channel != sender.channel() || tx.end_time <= sim_.now()) continue;
    if (grid_enabled() && cell_chebyshev(tx.cx, tx.cy, scx, scy) > 2) continue;
    if (tracing && !tx.corrupted) {
      // A not-yet-corrupted entry's sender is alive (detach corrupts its
      // in-flight transmissions), so the actor deref is safe here.
      tracer.instant(trace_drop_corrupt_, tx.sender->trace_actor_,
                     obs::TraceLayer::kPhy, tx.trace_id);
    }
    tx.corrupted = true;
    ++collision_count_;
    collided = true;
  }
  // Causal chain id: a frame transmitted from inside a delivery handler
  // (probe response, auth reply, EAPOL M2...) inherits the inbound frame's
  // chain; anything else starts a fresh seed-derived chain.
  std::uint64_t trace_id = 0;
  if (tracing) {
    trace_id = tracer.current();
    if (trace_id == 0) trace_id = tracer.new_trace_id();
    tracer.instant(trace_tx_, sender.trace_actor_, obs::TraceLayer::kPhy,
                   trace_id, frame.size());
    if (collided) {
      tracer.instant(trace_drop_corrupt_, sender.trace_actor_,
                     obs::TraceLayer::kPhy, trace_id);
    }
  }
  active_.push_back(ActiveTx{id, sender.channel(), sim_.now(), end, &sender,
                             collided, scx, scy, trace_id});

  // Exactly 48 captured bytes: stays in EventFn's inline storage. The
  // frame buffer is recycled once every receiver has been handed its view.
  sim_.at(end, [this, id, sender_ptr = &sender, f = std::move(frame)]() mutable {
    deliver(id, sender_ptr, f);
    sim_.buffer_pool().release(std::move(f));
  });
}

void Medium::deliver(std::uint64_t tx_id, const Radio* sender, const util::Bytes& frame) {
  // The RAII scope lives in this wrapper so the (usual) unprofiled path
  // runs deliver_impl() with no cleanup object in its frame — keeping the
  // receiver loop free of exception-unwind bookkeeping.
  if (sim_.profiler().enabled()) {
    const obs::Profiler::Scope scope(sim_.profiler(), deliver_scope_);
    deliver_impl(tx_id, sender, frame);
    return;
  }
  deliver_impl(tx_id, sender, frame);
}

void Medium::deliver_impl(std::uint64_t tx_id, const Radio* sender,
                          const util::Bytes& frame) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [&](const ActiveTx& tx) { return tx.id == tx_id; });
  ROGUE_ASSERT(it != active_.end());
  const ActiveTx tx = *it;
  active_.erase(it);
  // A detached-mid-flight sender's transmissions were corrupted by
  // detach(), so a surviving entry's sender pointer is safe to follow.
  if (tx.corrupted) return;

  // Batched fan-out: one walk over the sender's flattened delivery plan
  // (per-channel order minus the sender, so the RNG draw sequence is
  // identical to filtering the full list). The plan carries pairwise RSSI
  // and receiver sensitivity inline — the loop streams a contiguous array
  // and only dereferences a Radio on frames that actually land.
  //
  // Counting stays off the common path: one bulk add per delivery plus
  // increments on the rare skip branches. flush_stats() derives the hot
  // quantities (cache hits, delivered) from these by subtraction.
  const Radio::DeliveryPlan& plan = delivery_plan(*sender, tx.channel);
  rssi_lookup_count_ += plan.entries.size();
  const double floor_loss = std::min(1.0, config_.base_loss_prob + extra_loss_);
  const double noise_span = config_.rssi_noise_db;
  const double margin_scale = config_.margin_scale_db;
  const sim::Time now = sim_.now();
  util::Prng& rng = sim_.rng();
  obs::Tracer& tracer = sim_.tracer();
  const bool tracing = tracer.enabled();
  const bool chaos =
      reorder_prob_ > 0.0 || duplicate_prob_ > 0.0 || jitter_max_us_ > 0;
  // Hand the frame to one receiver under the frame's causal context, so
  // any response it transmits inherits the chain.
  const auto hand_off = [&](Radio* rx, double rssi) {
    ++rx->frames_received_;
    if (tracing) {
      tracer.instant(trace_rx_, rx->trace_actor_, obs::TraceLayer::kPhy,
                     tx.trace_id,
                     static_cast<std::uint64_t>(static_cast<std::int64_t>(rssi)));
      const obs::Tracer::IdScope causal(tracer, tx.trace_id);
      rx->handler_(frame, RxInfo{now, rssi, tx.channel});
      return;
    }
    rx->handler_(frame, RxInfo{now, rssi, tx.channel});
  };
  for (const Radio::PlanEntry& entry : plan.entries) {
    const double noise = noise_span * (2.0 * rng.uniform01() - 1.0);
    const double rssi = entry.rssi_dbm + noise;
    const double margin = rssi - entry.sens_dbm;
    if (margin < 0.0) {
      ++drop_margin_count_;
      if (tracing) {
        tracer.instant(trace_drop_margin_, entry.rx->trace_actor_,
                       obs::TraceLayer::kPhy, tx.trace_id);
      }
      continue;
    }
    const double success =
        (1.0 - floor_loss) * (1.0 - std::exp(-margin / margin_scale));
    if (!rng.chance(success)) {
      ++drop_loss_count_;
      if (tracing) {
        tracer.instant(trace_drop_loss_, entry.rx->trace_actor_,
                       obs::TraceLayer::kPhy, tx.trace_id);
      }
      continue;
    }
    Radio* rx = entry.rx;
    if (!rx->handler_) {
      ++no_handler_count_;
      continue;
    }
    if (!chaos) {
      hand_off(rx, rssi);
      continue;
    }
    // Transport-chaos path (fault windows only): the extra RNG draws below
    // happen iff a knob is nonzero, so chaos-free runs keep the exact draw
    // sequence of the loop above.
    sim::Time extra = 0;
    if (jitter_max_us_ > 0) extra += rng.uniform_u64(0, jitter_max_us_);
    if (reorder_prob_ > 0.0 && rng.chance(reorder_prob_)) {
      // Held back far enough to land behind several later transmissions.
      extra += rng.uniform_u64(500, 3000);
    }
    const bool duplicated = duplicate_prob_ > 0.0 && rng.chance(duplicate_prob_);
    if (extra == 0 && !duplicated) {
      hand_off(rx, rssi);
      continue;
    }
    if (extra == 0) {
      hand_off(rx, rssi);
    } else {
      ++chaos_delayed_count_;
      deliver_late(rx, tx.channel, rssi, now + extra, frame, tx.cx, tx.cy,
                   tx.trace_id);
    }
    if (duplicated) {
      ++chaos_duplicated_count_;
      deliver_late(rx, tx.channel, rssi, now + extra + rng.uniform_u64(100, 1000),
                   frame, tx.cx, tx.cy, tx.trace_id);
    }
  }
}

void Medium::deliver_late(Radio* rx, Channel channel, double rssi, sim::Time at,
                          const util::Bytes& frame, std::int32_t from_cx,
                          std::int32_t from_cy, std::uint64_t trace_id) {
  // The original frame buffer is recycled when the delivery event returns,
  // so a held-back copy needs its own pooled buffer. The receiver rides
  // along as its attach_seq_ — never as a pointer — because it may be
  // destroyed before the event fires.
  util::Bytes copy = sim_.buffer_pool().acquire(frame.size());
  copy.assign(frame.begin(), frame.end());
  sim_.at(at, [this, seq = rx->attach_seq_, channel, rssi, from_cx, from_cy,
               trace_id, f = std::move(copy)]() mutable {
    // The world may have changed while the frame was held: deliver only if
    // the receiver is still attached, tuned to the channel, listening —
    // and, in grid mode, still within audible range of the cell the frame
    // left from. A radio that migrated out of that 3x3 neighborhood mid-
    // flight can no longer hear the transmitter. (After a regrid the
    // captured coordinates refer to the old cell size; the check stays a
    // sound approximation and regrids are rare.)
    Radio* const* slot = by_seq_.find(seq);
    Radio* live = slot != nullptr ? *slot : nullptr;
    if (live != nullptr && live->channel_ == channel && live->handler_) {
      bool audible = true;
      if (grid_enabled()) {
        const Cell& cell = cells_[live->cell_];
        audible = cell_chebyshev(cell.cx, cell.cy, from_cx, from_cy) <= 1;
      }
      if (audible) {
        ++live->frames_received_;
        obs::Tracer& tracer = sim_.tracer();
        if (tracer.enabled()) {
          tracer.instant(trace_rx_late_, live->trace_actor_,
                         obs::TraceLayer::kPhy, trace_id);
          const obs::Tracer::IdScope causal(tracer, trace_id);
          live->handler_(f, RxInfo{sim_.now(), rssi, channel});
        } else {
          live->handler_(f, RxInfo{sim_.now(), rssi, channel});
        }
      }
    }
    sim_.buffer_pool().release(std::move(f));
  });
}

void Medium::set_loss_override(double extra_loss_prob) {
  ROGUE_ASSERT(extra_loss_prob >= 0.0);
  extra_loss_ = extra_loss_prob;
}

void Medium::set_reorder(double probability) {
  ROGUE_ASSERT(probability >= 0.0 && probability <= 1.0);
  reorder_prob_ = probability;
}

void Medium::set_duplicate(double probability) {
  ROGUE_ASSERT(probability >= 0.0 && probability <= 1.0);
  duplicate_prob_ = probability;
}

void Medium::set_jitter_ms(double max_ms) {
  ROGUE_ASSERT(max_ms >= 0.0);
  jitter_max_us_ = static_cast<sim::Time>(max_ms * 1000.0);
}

}  // namespace rogue::phy
