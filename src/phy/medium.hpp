// Radio medium: the broadcast physical layer whose openness the paper
// contrasts with "the physical security of the network jacks" (§3.1).
// Every radio within range on the same channel hears every frame — the
// MAC layer above decides what to keep, which is exactly why monitor-mode
// sniffing and rogue APs work.
//
// Propagation: log-distance path loss; a frame is delivered to a radio if
// its RSSI clears the radio's sensitivity, it survives a margin-dependent
// error probability, and it did not overlap another audible transmission
// on the same channel (collision, no capture effect).
//
// Two delivery geometries share this interface:
//   - flat (default): every radio on the channel is a delivery candidate,
//     and any world change bumps one global epoch. Right for office-sized
//     worlds where everyone hears everyone.
//   - spatial grid (MediumConfig::spatial_grid): radios are bucketed into
//     square cells whose side is the maximum audible range, so a sender's
//     delivery plan only walks its 3x3 cell neighborhood and a position
//     change invalidates only the senders whose neighborhoods contain the
//     affected cell. Carrier sense and collisions localize the same way.
//     Right for metro-scale worlds (hundreds of APs, 10k+ roaming STAs).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "util/flat_map.hpp"

namespace rogue::sim {
class Trace;
}  // namespace rogue::sim

namespace rogue::phy {

/// 802.11b channel number (1..14).
using Channel = std::uint8_t;

struct Position {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] double distance(const Position& a, const Position& b);

/// Reception metadata handed to the MAC with each frame.
struct RxInfo {
  sim::Time time = 0;
  double rssi_dbm = 0.0;
  Channel channel = 1;
};

struct MediumConfig {
  double path_loss_exponent = 3.0;   ///< indoor office
  double ref_loss_dbm = 40.0;        ///< loss at 1 m
  double bitrate_bps = 11e6;         ///< 802.11b
  sim::Time preamble_us = 192;       ///< long preamble + PLCP header
  /// Extra random loss applied even at high margin (interference floor).
  double base_loss_prob = 0.0;
  /// Margin (dB) at which frame success reaches ~63%; success prob is
  /// 1 - exp(-margin/margin_scale) scaled into [0, 1-base_loss].
  double margin_scale_db = 3.0;
  /// Per-reception fading: RSSI jitters uniformly in +/- this many dB.
  /// Gives scan results realistic sample noise (affects AP selection).
  double rssi_noise_db = 2.0;
  /// Carrier-sense blind window: a transmission started within the last
  /// `sense_latency_us` is invisible to CSMA (propagation + slot time),
  /// which is how genuinely simultaneous transmissions still collide.
  sim::Time sense_latency_us = 15;
  /// Max random backoff added when deferring to a busy channel.
  sim::Time max_backoff_us = 300;

  // ---- Spatial grid (metro scale) ----------------------------------------
  /// Bucket radios into square cells of the maximum audible range and
  /// deliver from the 3x3 cell neighborhood instead of the whole channel.
  /// Off by default: flat worlds keep their exact delivery and RNG-draw
  /// behavior (including golden report digests).
  bool spatial_grid = false;
  /// Explicit cell side in metres; 0 derives it from the power ceiling /
  /// sensitivity floor below. The effective side is never below the
  /// derived audible range — an undersized cell would silence receivers a
  /// flat medium could reach.
  double grid_cell_m = 0.0;
  /// Loudest transmitter / most sensitive receiver the grid is sized for
  /// (defaults match Radio's defaults). Attaching or re-tuning a radio
  /// beyond these bounds widens them and triggers a (rare) full regrid,
  /// so the 3x3 neighborhood always covers the true audible range.
  double grid_tx_power_ceiling_dbm = 15.0;
  double grid_sensitivity_floor_dbm = -85.0;
  /// Pairwise-RSSI memoisation (Radio::pair_cache_). Worth it for mostly
  /// static worlds; metro-scale roaming turns it off because every
  /// mobility tick stales the entries while tens of thousands of
  /// per-sender slices cost real memory.
  bool pair_rssi_cache = true;
};

class Medium;

/// A radio attached to the medium. MAC layers (dot11::AccessPoint /
/// dot11::Station / attack::Sniffer) own one or more of these.
class Radio {
 public:
  using RxHandler = std::function<void(util::ByteView frame, const RxInfo& info)>;

  Radio(Medium& medium, std::string name);
  ~Radio();

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Channel channel() const { return channel_; }
  void set_channel(Channel ch);
  [[nodiscard]] const Position& position() const { return position_; }
  void set_position(Position p);
  [[nodiscard]] double tx_power_dbm() const { return tx_power_dbm_; }
  void set_tx_power_dbm(double p);
  [[nodiscard]] double sensitivity_dbm() const { return sensitivity_dbm_; }
  void set_sensitivity_dbm(double s);

  void set_receive_handler(RxHandler handler) { handler_ = std::move(handler); }

  /// Queue a frame for transmission on the current channel. The radio
  /// serializes its own transmissions and defers (CSMA) while the channel
  /// is sensed busy; delivery lands at tx start + airtime.
  void transmit(util::Bytes frame);

  /// Pooled buffer for building the next transmit() frame: recycled from
  /// the simulator's BufferPool, returned to it after delivery.
  [[nodiscard]] util::Bytes acquire_buffer(std::size_t reserve_hint = 0);

  /// Release the per-sender fan-out state (delivery plan + pair-RSSI
  /// slice) back to the allocator. Purely a memory knob for worlds with
  /// many rarely-transmitting radios (a metro STA sends a handful of
  /// join frames, then holds a neighborhood-sized plan forever); the
  /// state rebuilds transparently on the next transmission.
  void trim_tx_state();

  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_received() const { return frames_received_; }
  [[nodiscard]] std::uint64_t frames_deferred() const { return deferred_; }
  [[nodiscard]] std::size_t tx_queue_depth() const { return queue_.size(); }

  /// This radio's tracer track (interned from its name at attach). MAC
  /// layers reuse it so phy and dot11 records share one track per radio.
  [[nodiscard]] obs::TraceActorId trace_actor() const { return trace_actor_; }

 private:
  friend class Medium;

  static constexpr std::uint32_t kNoCell = 0xffffffffu;

  /// Pairwise RSSI (before per-reception noise) memoised between geometry
  /// changes; entries are revalidated against both radios' geom_epoch_.
  struct RssiCacheEntry {
    std::uint32_t tx_epoch = 0;
    std::uint32_t rx_epoch = 0;
    double rssi_dbm = 0.0;
  };

  /// One receiver's row in this radio's cached delivery plan: the pairwise
  /// RSSI (pre-noise) and the receiver's sensitivity, flattened so the
  /// fan-out loop streams a contiguous array instead of probing a hash map
  /// per (sender, receiver) pair.
  struct PlanEntry {
    Radio* rx;
    double rssi_dbm;
    double sens_dbm;
  };

  /// Per-sender fan-out table for one channel. Flat mode validates it
  /// against the medium's world epoch (any attach/detach/channel/
  /// geometry/sensitivity change invalidates every plan at once). Grid
  /// mode validates it against the sender's cell plus the summed epochs
  /// of the 3x3 neighborhood (cell epochs only move forward, so an
  /// unchanged sum over a fixed neighborhood means an unchanged world
  /// within audible range).
  struct DeliveryPlan {
    std::uint64_t epoch = 0;  ///< world epoch (flat) / grid epoch (grid); 0 = never built
    Channel channel = 0;
    std::uint32_t cell = kNoCell;    ///< sender's cell index at build (grid)
    std::uint64_t neigh_epochs = 0;  ///< 3x3 cell-epoch sum at build (grid)
    std::vector<PlanEntry> entries;
  };

  void attempt_transmit();

  Medium& medium_;
  std::string name_;
  Channel channel_ = 1;
  Position position_{};
  double tx_power_dbm_ = 15.0;
  double sensitivity_dbm_ = -85.0;
  std::uint64_t attach_seq_ = 0;   ///< attach order; keys the medium's caches
  obs::TraceActorId trace_actor_;  ///< tracer track for this radio's records
  std::uint32_t geom_epoch_ = 0;   ///< bumped on position/tx-power changes
  std::uint32_t cell_ = kNoCell;   ///< grid cell index (grid mode only)
  std::size_t radios_index_ = 0;   ///< slot in Medium::radios_ (O(1) detach)
  /// Mutable: rebuilt lazily inside deliver_impl(), which sees the sender
  /// through a const pointer recorded at transmit time.
  mutable DeliveryPlan plan_;
  /// This radio's slice of the pairwise RSSI cache, keyed by the receiver's
  /// attach_seq_. Keeping the slice with the sender makes a plan rebuild an
  /// L2-sized walk instead of 2N probes into one world-sized table, and
  /// lets detach invalidate every slice in O(1) via cache_generation_.
  mutable util::FlatU64Map<RssiCacheEntry> pair_cache_;
  mutable std::uint64_t cache_gen_seen_ = 0;  ///< Medium::cache_generation_ sync
  RxHandler handler_;
  std::vector<util::Bytes> queue_;
  /// Causal context captured when each queued frame was handed to the
  /// radio — CSMA deferral must not sever the chain a response rides.
  std::vector<std::uint64_t> queue_chain_;
  sim::TimerHandle attempt_timer_;
  bool attempt_pending_ = false;
  bool contended_ = false;
  sim::Time own_busy_until_ = 0;
  unsigned backoff_attempts_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t deferred_ = 0;
};

class Medium {
 public:
  Medium(sim::Simulator& simulator, MediumConfig config = {});
  ~Medium();

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const MediumConfig& config() const { return config_; }

  /// Airtime for a frame of `bytes` octets at the configured bitrate.
  [[nodiscard]] sim::Time airtime(std::size_t bytes) const;
  /// RSSI (dBm) at distance d metres for the given tx power.
  [[nodiscard]] double rssi_at(double tx_power_dbm, double dist_m) const;
  /// Distance at which a transmitter at `tx_power_dbm` can still reach a
  /// receiver at `sensitivity_dbm` after the most favourable +rssi_noise_db
  /// fade — the radius the grid's cell side must cover.
  [[nodiscard]] double audible_range(double tx_power_dbm,
                                     double sensitivity_dbm) const;
  /// Latest end time of transmissions on `channel` that a carrier-sensing
  /// radio can currently see (ignores those inside the blind window).
  /// World-wide view; grid-mode senders use the localized overload below.
  [[nodiscard]] sim::Time channel_busy_until(Channel channel) const;

  [[nodiscard]] std::uint64_t frames_transmitted() const { return tx_count_; }
  [[nodiscard]] std::uint64_t collisions() const { return collision_count_; }
  /// Number of per-sender delivery-plan rebuilds (each rebuild re-derives
  /// one sender's flattened fan-out table after a world change). A static
  /// world settles at one rebuild per active sender.
  [[nodiscard]] std::uint64_t plan_rebuilds() const { return plan_rebuild_count_; }
  /// Monotonic world epoch: bumped by any attach/detach/channel change (and
  /// in flat mode by geometry/sensitivity changes too — grid mode keeps
  /// those cell-local, which is the whole point). Flat delivery plans are
  /// validated against it.
  [[nodiscard]] std::uint64_t world_epoch() const { return world_epoch_; }

  // ---- Spatial-grid introspection (tests, benchmarks) ---------------------
  [[nodiscard]] bool grid_enabled() const { return config_.spatial_grid; }
  /// Effective cell side (0 when the grid is off). May grow over the run
  /// if a radio exceeds the configured power ceiling / sensitivity floor.
  [[nodiscard]] double grid_cell_size_m() const { return cell_size_m_; }
  /// Cells that have ever held a radio (never shrinks during a run).
  [[nodiscard]] std::size_t grid_cell_count() const { return cells_.size(); }
  /// Bumped on every regrid (bounds widening); plans from before a regrid
  /// are all stale.
  [[nodiscard]] std::uint64_t grid_generation() const { return grid_epoch_; }
  /// Cell coordinates a radio at `p` belongs to.
  [[nodiscard]] std::pair<std::int32_t, std::int32_t> grid_coords(
      const Position& p) const;
  /// Members of one cell in attach_seq_ order (empty if the cell does not
  /// exist). For property tests against brute-force recomputation.
  [[nodiscard]] std::vector<const Radio*> grid_cell_members(
      std::int32_t cx, std::int32_t cy) const;

  /// Chaos knob: extra loss probability layered on top of the configured
  /// base_loss_prob while a degradation window is open (fault injection,
  /// scripted burst loss). 0 restores the configured floor.
  void set_loss_override(double extra_loss_prob);
  [[nodiscard]] double loss_override() const { return extra_loss_; }

  // Transport-chaos knobs (fault injection). All default to 0 = off; while
  // off the delivery path makes no extra RNG draws, so enabling them in
  // one variant cannot perturb another variant's draw sequence.
  /// Probability that a delivered frame is held back long enough to arrive
  /// after frames transmitted later (per receiver).
  void set_reorder(double probability);
  [[nodiscard]] double reorder() const { return reorder_prob_; }
  /// Probability that a delivered frame arrives twice (per receiver).
  void set_duplicate(double probability);
  [[nodiscard]] double duplicate() const { return duplicate_prob_; }
  /// Max uniform extra delivery latency, in milliseconds (per receiver).
  void set_jitter_ms(double max_ms);
  [[nodiscard]] double jitter_ms() const {
    return static_cast<double>(jitter_max_us_) / 1000.0;
  }

  /// Mirror every frame put on the air into `trace` (verbatim bytes +
  /// simulated timestamp) for pcap export. nullptr detaches the tap; the
  /// trace must also have frame capture enabled to retain anything.
  void set_capture(sim::Trace* trace) { capture_ = trace; }

 private:
  friend class Radio;

  struct ActiveTx {
    std::uint64_t id;
    Channel channel;
    sim::Time start_time;
    sim::Time end_time;
    const Radio* sender;
    bool corrupted;
    std::int32_t cx;  ///< sender cell coords at tx start (grid mode)
    std::int32_t cy;
    /// Causal chain id the frame carries through delivery. Rides here, not
    /// in the delivery event's capture — the EventFn capture is exactly
    /// sized to its inline storage and must not grow.
    std::uint64_t trace_id;
  };

  /// One grid cell: the radios currently inside one cell-sized square,
  /// sorted by attach_seq_ so neighborhood gathers preserve the flat
  /// path's RNG draw order. Cells are created on first occupancy and kept
  /// for the life of the run (their epoch must stay monotone).
  struct Cell {
    std::int32_t cx = 0;
    std::int32_t cy = 0;
    std::uint64_t epoch = 1;  ///< bumped on membership/geometry change
    std::vector<Radio*> members;
  };

  /// Flat-mode per-channel index. Sized by occupancy — worlds touch a
  /// handful of channels, so a fixed 256-entry array was dead weight per
  /// sweep replica. Lists are sorted by attach_seq_ (RNG draw order).
  struct ChannelList {
    Channel channel = 0;
    std::vector<Radio*> radios;
  };

  void attach(Radio* radio);
  void detach(Radio* radio);
  void move_channel(Radio* radio, Channel from, Channel to);
  void transmit(Radio& sender, util::Bytes frame);
  void deliver(std::uint64_t tx_id, const Radio* sender, const util::Bytes& frame);
  void deliver_impl(std::uint64_t tx_id, const Radio* sender,
                    const util::Bytes& frame);
  [[nodiscard]] double pair_rssi(const Radio& tx, const Radio& rx);
  /// Hand a chaos-delayed (or duplicated) frame copy to `rx` at the
  /// scheduled time, re-validating attachment/channel/handler — and, in
  /// grid mode, that the receiver is still within audible range of the
  /// cell the frame left from (`from_cx`/`from_cy`).
  void deliver_late(Radio* rx, Channel channel, double rssi, sim::Time at,
                    const util::Bytes& frame, std::int32_t from_cx,
                    std::int32_t from_cy, std::uint64_t trace_id);
  /// Flat mode: invalidate every sender's cached delivery plan (O(1):
  /// plans revalidate lazily against the bumped epoch on their next use).
  void invalidate_plans() { ++world_epoch_; }
  /// The sender's flattened fan-out table for `channel`, rebuilt if stale.
  [[nodiscard]] const Radio::DeliveryPlan& delivery_plan(const Radio& sender,
                                                         Channel channel);
  /// CSMA view for one listening radio: in grid mode only transmissions
  /// from the listener's 3x3 neighborhood are sensed.
  [[nodiscard]] sim::Time channel_busy_for(const Radio& listener) const;
  /// Publish the plain member tallies below into the stats registry;
  /// runs from the registry's on_snapshot() hook.
  void flush_stats();

  // ---- Flat-mode channel index --------------------------------------------
  [[nodiscard]] std::vector<Radio*>& channel_list(Channel ch);
  [[nodiscard]] const std::vector<Radio*>* find_channel_list(Channel ch) const;

  // ---- Grid internals -----------------------------------------------------
  [[nodiscard]] static std::uint64_t cell_key(std::int32_t cx, std::int32_t cy);
  /// Cell index for (cx, cy), creating the cell on first use.
  [[nodiscard]] std::uint32_t cell_at(std::int32_t cx, std::int32_t cy);
  /// Index of an existing cell, or Radio::kNoCell.
  [[nodiscard]] std::uint32_t find_cell(std::int32_t cx, std::int32_t cy) const;
  /// Sum of the 3x3 neighborhood's cell epochs around (cx, cy). Missing
  /// cells contribute 0; a cell springing into existence bumps the sum
  /// because insertion bumps its epoch past the initial value.
  [[nodiscard]] std::uint64_t neighborhood_epochs(std::int32_t cx,
                                                 std::int32_t cy) const;
  /// Insert `radio` into the cell for its current position (sorted by
  /// attach_seq_) and bump that cell's epoch.
  void grid_insert(Radio* radio);
  /// Remove `radio` from its cell and bump that cell's epoch.
  void grid_remove(Radio* radio);
  /// set_position() hook: same cell -> bump its epoch (geometry changed);
  /// cell crossing -> move membership and bump both cells.
  void radio_moved(Radio& radio);
  /// set_tx_power/set_sensitivity hook: widen grid bounds if needed, bump
  /// the radio's cell.
  void radio_retuned(Radio& radio);
  /// Widen the power ceiling / sensitivity floor to cover `radio`; regrids
  /// (rare, O(N)) when the audible range outgrows the current cell side.
  void ensure_grid_bounds(const Radio& radio);
  /// Rebuild every cell at `new_cell_m`; all outstanding plans go stale
  /// via grid_epoch_.
  void regrid(double new_cell_m);
  /// Chebyshev distance in cells between two cell coordinates.
  [[nodiscard]] static std::int32_t cell_chebyshev(std::int32_t ax, std::int32_t ay,
                                                   std::int32_t bx, std::int32_t by);

  sim::Simulator& sim_;
  MediumConfig config_;
  /// Every attached radio, unordered (detach swap-removes via
  /// Radio::radios_index_). Delivery order never reads this — flat mode
  /// orders by the per-channel lists, grid mode by per-cell membership.
  std::vector<Radio*> radios_;
  /// attach_seq_ -> radio, nulled on detach (FlatU64Map has no erase).
  /// Lets chaos-delayed deliveries revalidate a receiver without an O(N)
  /// scan and without dereferencing a possibly-destroyed pointer.
  util::FlatU64Map<Radio*> by_seq_;
  std::vector<ChannelList> channels_;
  std::vector<ActiveTx> active_;

  // Spatial grid state (grid mode only; empty containers otherwise).
  std::vector<Cell> cells_;
  util::FlatU64Map<std::uint32_t> cell_index_;  ///< cell_key -> index + 1
  double cell_size_m_ = 0.0;
  double grid_power_ceiling_ = 0.0;
  double grid_sens_floor_ = 0.0;
  std::uint64_t grid_epoch_ = 1;

  double extra_loss_ = 0.0;
  double reorder_prob_ = 0.0;
  double duplicate_prob_ = 0.0;
  sim::Time jitter_max_us_ = 0;
  std::uint64_t next_attach_seq_ = 1;
  std::uint64_t next_tx_id_ = 1;
  std::uint64_t world_epoch_ = 1;  ///< starts above 0 so fresh plans are stale
  std::uint64_t plan_rebuild_count_ = 0;
  /// Bumped on detach: every radio's pair_cache_ slice is lazily dropped on
  /// its next probe (same observable miss pattern as clearing one global
  /// pair cache eagerly, without the world-sized sweep per detach).
  std::uint64_t cache_generation_ = 1;
  sim::Trace* capture_ = nullptr;

  // Hot-path tallies stay plain members (an increment is one add, no
  // registry indirection); flush_stats() publishes them at snapshot time.
  std::uint64_t tx_count_ = 0;
  std::uint64_t collision_count_ = 0;
  std::uint64_t rssi_lookup_count_ = 0;  ///< non-sender receiver visits
  std::uint64_t drop_margin_count_ = 0;
  std::uint64_t drop_loss_count_ = 0;
  std::uint64_t rssi_miss_count_ = 0;
  std::uint64_t no_handler_count_ = 0;
  std::uint64_t deferral_count_ = 0;
  std::uint64_t chaos_delayed_count_ = 0;    ///< reorder/jitter-held frames
  std::uint64_t chaos_duplicated_count_ = 0; ///< extra copies delivered

  // Interned stats handles (see Simulator::stats()), written by
  // flush_stats(); the histogram alone is observed per transmit.
  obs::CounterId stat_tx_;
  obs::CounterId stat_collisions_;
  obs::CounterId stat_delivered_;
  obs::CounterId stat_drop_margin_;
  obs::CounterId stat_drop_loss_;
  obs::CounterId stat_rssi_hits_;
  obs::CounterId stat_rssi_misses_;
  obs::CounterId stat_deferrals_;
  // Interned lazily (first nonzero at snapshot) so legacy snapshots keep
  // their exact metric set.
  obs::CounterId stat_chaos_delayed_;
  obs::CounterId stat_chaos_duplicated_;
  bool chaos_stats_interned_ = false;
  obs::HistogramId stat_frame_bytes_;
  obs::Profiler::ScopeId deliver_scope_;
  obs::Profiler::ScopeId plan_scope_;
  // Tracer record names (interned at construction; recording is gated on
  // the tracer's enabled flag, one branch per site when off).
  obs::TraceNameId trace_tx_;
  obs::TraceNameId trace_rx_;
  obs::TraceNameId trace_rx_late_;
  obs::TraceNameId trace_drop_margin_;
  obs::TraceNameId trace_drop_loss_;
  obs::TraceNameId trace_drop_corrupt_;
  std::uint64_t flush_token_ = 0;
};

// Geometry/sensitivity setters route through the medium so the right
// invalidation fires (global world epoch in flat mode, cell-local epochs
// in grid mode); their bodies live after Medium's definition.
inline void Radio::set_position(Position p) {
  position_ = p;
  ++geom_epoch_;
  if (medium_.grid_enabled()) {
    medium_.radio_moved(*this);
  } else {
    medium_.invalidate_plans();
  }
}

inline void Radio::set_tx_power_dbm(double p) {
  tx_power_dbm_ = p;
  ++geom_epoch_;
  if (medium_.grid_enabled()) {
    medium_.radio_retuned(*this);
  } else {
    medium_.invalidate_plans();
  }
}

inline void Radio::set_sensitivity_dbm(double s) {
  sensitivity_dbm_ = s;
  if (medium_.grid_enabled()) {
    medium_.radio_retuned(*this);
  } else {
    medium_.invalidate_plans();
  }
}

}  // namespace rogue::phy
