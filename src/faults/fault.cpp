#include "faults/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace rogue::faults {

namespace {

/// Enabled kinds in declaration order (stable draw order = stable plans).
std::vector<FaultKind> enabled_kinds(const PlanConfig& config) {
  std::vector<FaultKind> kinds;
  if (config.ap_outage) kinds.push_back(FaultKind::kApOutage);
  if (config.channel_degrade) kinds.push_back(FaultKind::kChannelDegrade);
  if (config.endpoint_outage) kinds.push_back(FaultKind::kEndpointOutage);
  if (config.link_flap) kinds.push_back(FaultKind::kLinkFlap);
  if (config.deauth_storm) kinds.push_back(FaultKind::kDeauthStorm);
  if (config.reorder) kinds.push_back(FaultKind::kReorder);
  if (config.duplicate) kinds.push_back(FaultKind::kDuplicate);
  if (config.jitter) kinds.push_back(FaultKind::kJitter);
  return kinds;
}

FaultEvent draw_event(util::Prng& rng, const PlanConfig& config, FaultKind kind) {
  FaultEvent event;
  event.kind = kind;
  event.at = rng.uniform_u64(config.start, config.horizon - 1);
  event.duration = rng.uniform_u64(config.min_duration, config.max_duration);
  switch (kind) {
    case FaultKind::kChannelDegrade: event.severity = config.degrade_loss; break;
    case FaultKind::kReorder: event.severity = config.reorder_prob; break;
    case FaultKind::kDuplicate: event.severity = config.duplicate_prob; break;
    case FaultKind::kJitter: event.severity = config.jitter_ms; break;
    default: break;
  }
  return event;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kApOutage: return "ap-outage";
    case FaultKind::kChannelDegrade: return "channel-degrade";
    case FaultKind::kEndpointOutage: return "endpoint-outage";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kDeauthStorm: return "deauth-storm";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kJitter: return "jitter";
  }
  return "unknown";
}

Plan Plan::generate(util::Prng& rng, const PlanConfig& config) {
  ROGUE_ASSERT_MSG(config.horizon > config.start,
                   "fault plan needs a non-empty [start, horizon) window");
  ROGUE_ASSERT(config.max_duration >= config.min_duration);

  Plan plan;
  const std::vector<FaultKind> kinds = enabled_kinds(config);
  if (kinds.empty() || config.intensity <= 0.0) return plan;

  const double minutes = static_cast<double>(config.horizon - config.start) /
                         static_cast<double>(60 * sim::kSecond);
  const auto budget =
      static_cast<std::size_t>(std::llround(config.intensity * minutes));

  // Coverage first: one window per enabled kind, then random fills.
  for (const FaultKind kind : kinds) {
    plan.events_.push_back(draw_event(rng, config, kind));
  }
  while (plan.events_.size() < budget) {
    const FaultKind kind =
        kinds[rng.uniform_u32(static_cast<std::uint32_t>(kinds.size()))];
    plan.events_.push_back(draw_event(rng, config, kind));
  }

  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

Plan Plan::from_events(std::vector<FaultEvent> events) {
  Plan plan;
  plan.events_ = std::move(events);
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

Injector::Injector(sim::Simulator& simulator, FaultTarget& target)
    : sim_(simulator), target_(target) {
  obs::Tracer& tracer = sim_.tracer();
  trace_actor_ = tracer.actor("faults");
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    trace_names_[i] = tracer.name(
        "fault." + std::string(to_string(static_cast<FaultKind>(i))));
  }
}

Injector::~Injector() {
  for (const sim::TimerHandle handle : timers_) sim_.cancel(handle);
}

void Injector::install(Plan plan) {
  ROGUE_ASSERT_MSG(plan_.empty(), "Injector::install called twice");
  plan_ = std::move(plan);
  timers_.reserve(plan_.size() * 2);
  for (const FaultEvent& event : plan_.events()) {
    timers_.push_back(sim_.at(event.at, [this, event] { begin(event); }));
    timers_.push_back(
        sim_.at(event.at + event.duration, [this, event] { end(event); }));
  }
}

void Injector::begin(const FaultEvent& event) {
  ++injected_;
  const auto kind = static_cast<std::size_t>(event.kind);
  sim_.tracer().begin(trace_names_[kind], trace_actor_,
                      obs::TraceLayer::kFaults, 0,
                      static_cast<std::uint64_t>(event.severity * 1000.0));
  switch (event.kind) {
    case FaultKind::kApOutage:
      if (depth_[kind]++ == 0) target_.fault_ap(true);
      break;
    case FaultKind::kChannelDegrade:
      push_severity(degrade_active_, event.kind, event.severity);
      break;
    case FaultKind::kEndpointOutage:
      if (depth_[kind]++ == 0) target_.fault_endpoint(true);
      break;
    case FaultKind::kLinkFlap:
      if (depth_[kind]++ == 0) target_.fault_link(true);
      break;
    case FaultKind::kDeauthStorm:
      if (depth_[kind]++ == 0) target_.fault_deauth_storm(true);
      break;
    case FaultKind::kReorder:
      push_severity(reorder_active_, event.kind, event.severity);
      break;
    case FaultKind::kDuplicate:
      push_severity(duplicate_active_, event.kind, event.severity);
      break;
    case FaultKind::kJitter:
      push_severity(jitter_active_, event.kind, event.severity);
      break;
  }
}

void Injector::end(const FaultEvent& event) {
  const auto kind = static_cast<std::size_t>(event.kind);
  sim_.tracer().end(trace_names_[kind], trace_actor_,
                    obs::TraceLayer::kFaults, 0,
                    static_cast<std::uint64_t>(event.severity * 1000.0));
  switch (event.kind) {
    case FaultKind::kApOutage:
      if (--depth_[kind] == 0) target_.fault_ap(false);
      break;
    case FaultKind::kChannelDegrade:
      pop_severity(degrade_active_, event.kind, event.severity);
      break;
    case FaultKind::kEndpointOutage:
      if (--depth_[kind] == 0) target_.fault_endpoint(false);
      break;
    case FaultKind::kLinkFlap:
      if (--depth_[kind] == 0) target_.fault_link(false);
      break;
    case FaultKind::kDeauthStorm:
      if (--depth_[kind] == 0) target_.fault_deauth_storm(false);
      break;
    case FaultKind::kReorder:
      pop_severity(reorder_active_, event.kind, event.severity);
      break;
    case FaultKind::kDuplicate:
      pop_severity(duplicate_active_, event.kind, event.severity);
      break;
    case FaultKind::kJitter:
      pop_severity(jitter_active_, event.kind, event.severity);
      break;
  }
  ROGUE_ASSERT(depth_[kind] >= 0);
}

void Injector::apply_severity(FaultKind kind, const std::vector<double>& stack) {
  const double value =
      stack.empty() ? 0.0 : *std::max_element(stack.begin(), stack.end());
  switch (kind) {
    case FaultKind::kChannelDegrade: target_.fault_channel(value); break;
    case FaultKind::kReorder: target_.fault_reorder(value); break;
    case FaultKind::kDuplicate: target_.fault_duplicate(value); break;
    case FaultKind::kJitter: target_.fault_jitter(value); break;
    default: break;
  }
}

void Injector::push_severity(std::vector<double>& stack, FaultKind kind,
                             double severity) {
  stack.push_back(severity);
  apply_severity(kind, stack);
}

void Injector::pop_severity(std::vector<double>& stack, FaultKind kind,
                            double severity) {
  const auto it = std::find(stack.begin(), stack.end(), severity);
  ROGUE_ASSERT(it != stack.end());
  stack.erase(it);
  apply_severity(kind, stack);
}

}  // namespace rogue::faults
