// Deterministic fault injection: seed-derived chaos plans applied to a
// running scenario. The paper's §5 countermeasure (tunnel everything to a
// trusted endpoint) is evaluated only on the happy path; this subsystem
// supplies the churn — AP crashes, channel degradation, VPN endpoint
// outages, link flaps, deauth storms — against which the recovery
// machinery (vpn::ClientTunnel keepalive/reconnect, dot11::Station rescan
// backoff) is measured.
//
// Determinism contract: a Plan is a pure function of (PlanConfig, Prng
// state). Worlds derive the Prng from Simulator::derive_rng("faults.plan"),
// so the schedule is reproducible from the replica seed alone — never wall
// clock — and sweep reports stay byte-identical at any --jobs value.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "util/prng.hpp"

namespace rogue::faults {

enum class FaultKind : std::uint8_t {
  kApOutage = 0,        ///< legitimate AP powers off, then restarts
  kChannelDegrade = 1,  ///< raised floor loss on the phy::Medium
  kEndpointOutage = 2,  ///< VPN endpoint process crash + restart
  kLinkFlap = 3,        ///< endpoint uplink admin-down window
  kDeauthStorm = 4,     ///< forged deauth flood against the victim
};

inline constexpr std::uint8_t kFaultKindCount = 5;

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault window: the condition holds during
/// [at, at + duration), then lifts.
struct FaultEvent {
  FaultKind kind = FaultKind::kApOutage;
  sim::Time at = 0;
  sim::Time duration = 0;
  /// Kind-specific magnitude; for kChannelDegrade this is the extra loss
  /// probability layered onto MediumConfig::base_loss_prob.
  double severity = 0.0;
};

struct PlanConfig {
  /// Expected fault events per simulated minute of [start, horizon).
  double intensity = 1.0;
  /// Events are scheduled in [start, horizon); 0 horizon = "caller fills
  /// in the episode length" (worlds derive it from their phase windows).
  sim::Time start = 0;
  sim::Time horizon = 0;
  sim::Time min_duration = 200 * sim::kMillisecond;
  sim::Time max_duration = 3 * sim::kSecond;
  /// Extra loss probability for channel-degradation windows.
  double degrade_loss = 0.85;
  // Per-kind enables (a corp chaos run may e.g. disable link flaps).
  bool ap_outage = true;
  bool channel_degrade = true;
  bool endpoint_outage = true;
  bool link_flap = true;
  bool deauth_storm = true;
};

/// A deterministic schedule of fault windows, sorted by start time.
class Plan {
 public:
  /// Draw a schedule from `rng`. When the budget (intensity x minutes)
  /// allows, every enabled kind appears at least once — a chaos run that
  /// never crashes the endpoint would not exercise the recovery path it
  /// exists to measure.
  [[nodiscard]] static Plan generate(util::Prng& rng, const PlanConfig& config);

  /// Wrap an explicit schedule (scripted chaos, tests). Events are sorted
  /// by start time; overlapping windows are fine — the Injector collapses
  /// them per kind.
  [[nodiscard]] static Plan from_events(std::vector<FaultEvent> events);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

/// What a world must expose for faults to land on it. Each hook is edge
/// triggered: the injector calls it once when a condition begins and once
/// when it ends, with overlapping windows of the same kind collapsed
/// (depth counted) so a world never sees "begin" twice without an "end".
class FaultTarget {
 public:
  virtual ~FaultTarget() = default;

  virtual void fault_ap(bool down) = 0;
  virtual void fault_endpoint(bool down) = 0;
  /// `extra_loss` is the strongest active degradation (0 = none).
  virtual void fault_channel(double extra_loss) = 0;
  virtual void fault_link(bool down) = 0;
  virtual void fault_deauth_storm(bool active) = 0;
};

/// Schedules a Plan's begin/end transitions on the simulator and folds
/// overlapping windows before invoking the target's hooks.
class Injector {
 public:
  Injector(sim::Simulator& simulator, FaultTarget& target);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Schedule every event in the plan (idempotent per event; call once).
  void install(Plan plan);

  [[nodiscard]] const Plan& plan() const { return plan_; }
  /// Fault windows whose begin edge has fired so far.
  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  void begin(const FaultEvent& event);
  void end(const FaultEvent& event);
  void push_degrade(double severity);
  void pop_degrade(double severity);

  sim::Simulator& sim_;
  FaultTarget& target_;
  Plan plan_;
  std::vector<sim::TimerHandle> timers_;
  std::uint64_t injected_ = 0;
  int depth_[kFaultKindCount] = {};
  std::vector<double> degrade_active_;
};

}  // namespace rogue::faults
