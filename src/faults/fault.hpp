// Deterministic fault injection: seed-derived chaos plans applied to a
// running scenario. The paper's §5 countermeasure (tunnel everything to a
// trusted endpoint) is evaluated only on the happy path; this subsystem
// supplies the churn — AP crashes, channel degradation, VPN endpoint
// outages, link flaps, deauth storms — against which the recovery
// machinery (vpn::ClientTunnel keepalive/reconnect, dot11::Station rescan
// backoff) is measured.
//
// Determinism contract: a Plan is a pure function of (PlanConfig, Prng
// state). Worlds derive the Prng from Simulator::derive_rng("faults.plan"),
// so the schedule is reproducible from the replica seed alone — never wall
// clock — and sweep reports stay byte-identical at any --jobs value.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "util/prng.hpp"

namespace rogue::faults {

enum class FaultKind : std::uint8_t {
  kApOutage = 0,        ///< legitimate AP powers off, then restarts
  kChannelDegrade = 1,  ///< raised floor loss on the phy::Medium
  kEndpointOutage = 2,  ///< VPN endpoint process crash + restart
  kLinkFlap = 3,        ///< endpoint uplink admin-down window
  kDeauthStorm = 4,     ///< forged deauth flood against the victim
  // Transport-chaos kinds (default-disabled so pre-existing plans draw
  // identically): datagram-level mangling on the phy::Medium that the
  // tunnel's anti-replay window must absorb.
  kReorder = 5,    ///< fraction of deliveries delayed past their successors
  kDuplicate = 6,  ///< fraction of deliveries delivered twice
  kJitter = 7,     ///< random extra delivery latency
};

inline constexpr std::uint8_t kFaultKindCount = 8;

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault window: the condition holds during
/// [at, at + duration), then lifts.
struct FaultEvent {
  FaultKind kind = FaultKind::kApOutage;
  sim::Time at = 0;
  sim::Time duration = 0;
  /// Kind-specific magnitude; for kChannelDegrade this is the extra loss
  /// probability layered onto MediumConfig::base_loss_prob.
  double severity = 0.0;
};

struct PlanConfig {
  /// Expected fault events per simulated minute of [start, horizon).
  double intensity = 1.0;
  /// Events are scheduled in [start, horizon); 0 horizon = "caller fills
  /// in the episode length" (worlds derive it from their phase windows).
  sim::Time start = 0;
  sim::Time horizon = 0;
  sim::Time min_duration = 200 * sim::kMillisecond;
  sim::Time max_duration = 3 * sim::kSecond;
  /// Extra loss probability for channel-degradation windows.
  double degrade_loss = 0.85;
  /// Per-delivery reorder probability during kReorder windows.
  double reorder_prob = 0.25;
  /// Per-delivery duplication probability during kDuplicate windows.
  double duplicate_prob = 0.15;
  /// Max extra delivery latency (milliseconds) during kJitter windows.
  double jitter_ms = 4.0;
  // Per-kind enables (a corp chaos run may e.g. disable link flaps).
  bool ap_outage = true;
  bool channel_degrade = true;
  bool endpoint_outage = true;
  bool link_flap = true;
  bool deauth_storm = true;
  // Transport-chaos kinds are opt-in: enabling a kind changes how many
  // draws generate() makes, so defaults stay off to keep pre-existing
  // seeded plans byte-identical.
  bool reorder = false;
  bool duplicate = false;
  bool jitter = false;
};

/// A deterministic schedule of fault windows, sorted by start time.
class Plan {
 public:
  /// Draw a schedule from `rng`. When the budget (intensity x minutes)
  /// allows, every enabled kind appears at least once — a chaos run that
  /// never crashes the endpoint would not exercise the recovery path it
  /// exists to measure.
  [[nodiscard]] static Plan generate(util::Prng& rng, const PlanConfig& config);

  /// Wrap an explicit schedule (scripted chaos, tests). Events are sorted
  /// by start time; overlapping windows are fine — the Injector collapses
  /// them per kind.
  [[nodiscard]] static Plan from_events(std::vector<FaultEvent> events);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

/// What a world must expose for faults to land on it. Each hook is edge
/// triggered: the injector calls it once when a condition begins and once
/// when it ends, with overlapping windows of the same kind collapsed
/// (depth counted) so a world never sees "begin" twice without an "end".
class FaultTarget {
 public:
  virtual ~FaultTarget() = default;

  virtual void fault_ap(bool down) = 0;
  virtual void fault_endpoint(bool down) = 0;
  /// `extra_loss` is the strongest active degradation (0 = none).
  virtual void fault_channel(double extra_loss) = 0;
  virtual void fault_link(bool down) = 0;
  virtual void fault_deauth_storm(bool active) = 0;
  // Transport-chaos hooks carry the strongest active severity (0 = off).
  // Default no-ops: worlds that predate these kinds — and test fakes —
  // keep compiling; the kinds are opt-in anyway.
  virtual void fault_reorder(double /*probability*/) {}
  virtual void fault_duplicate(double /*probability*/) {}
  virtual void fault_jitter(double /*max_ms*/) {}
};

/// Schedules a Plan's begin/end transitions on the simulator and folds
/// overlapping windows before invoking the target's hooks.
class Injector {
 public:
  Injector(sim::Simulator& simulator, FaultTarget& target);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Schedule every event in the plan (idempotent per event; call once).
  void install(Plan plan);

  [[nodiscard]] const Plan& plan() const { return plan_; }
  /// Fault windows whose begin edge has fired so far.
  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  void begin(const FaultEvent& event);
  void end(const FaultEvent& event);
  /// Severity-stacked kinds: the target sees the max active severity on
  /// every edge, and 0 when the last window lifts.
  void push_severity(std::vector<double>& stack, FaultKind kind, double severity);
  void pop_severity(std::vector<double>& stack, FaultKind kind, double severity);
  void apply_severity(FaultKind kind, const std::vector<double>& stack);

  sim::Simulator& sim_;
  FaultTarget& target_;
  Plan plan_;
  std::vector<sim::TimerHandle> timers_;
  std::uint64_t injected_ = 0;
  int depth_[kFaultKindCount] = {};
  obs::TraceActorId trace_actor_;
  obs::TraceNameId trace_names_[kFaultKindCount];
  std::vector<double> degrade_active_;
  std::vector<double> reorder_active_;
  std::vector<double> duplicate_active_;
  std::vector<double> jitter_active_;
};

}  // namespace rogue::faults
