#include "bridge/arp_proxy.hpp"

#include "util/assert.hpp"

namespace rogue::bridge {

ArpProxyBridge::ArpProxyBridge(net::Host& host, std::string if_a, std::string if_b)
    : host_(host), if_a_(std::move(if_a)), if_b_(std::move(if_b)) {
  ROGUE_ASSERT_MSG(host_.interface(if_a_) != nullptr, "bridge: unknown if_a");
  ROGUE_ASSERT_MSG(host_.interface(if_b_) != nullptr, "bridge: unknown if_b");
  host_.set_ip_forward(true);
  install(if_a_, if_b_);
  install(if_b_, if_a_);
}

void ArpProxyBridge::add_host_route(net::Ipv4Addr ip, const std::string& iface) {
  host_.routes().remove_host(ip);
  host_.routes().add_host(ip, iface);
}

void ArpProxyBridge::install(const std::string& on_iface, const std::string& other_iface) {
  net::ArpCache& cache = host_.arp(on_iface);

  // Learn /32 host routes from ARP traffic heard on this side: the sender
  // is evidently reachable here, so traffic for it must leave here.
  cache.set_observer([this, on_iface](const net::ArpPacket& pkt) {
    if (pkt.sender_ip.is_any() || host_.is_local_ip(pkt.sender_ip)) return;
    const auto existing = host_.routes().lookup(pkt.sender_ip);
    const bool is_host_route =
        existing && existing->mask == net::Ipv4Addr(0xffffffffu);
    if (is_host_route && existing->ifname == on_iface) return;  // up to date
    host_.routes().remove_host(pkt.sender_ip);
    host_.routes().add_host(pkt.sender_ip, on_iface);
    ++learned_;
  });

  // Answer requests for anything routed out the other interface, with
  // this interface's MAC.
  const net::MacAddr my_mac = host_.interface(on_iface)->mac();
  cache.set_proxy([this, other_iface, my_mac](
                      net::Ipv4Addr requested) -> std::optional<net::MacAddr> {
    if (host_.is_local_ip(requested)) return std::nullopt;  // ArpCache handles
    const auto route = host_.routes().lookup(requested);
    if (!route || route->ifname != other_iface) return std::nullopt;
    ++proxied_;
    return my_mac;
  });
}

}  // namespace rogue::bridge
