// parprouted equivalent (§4.1, Appendix A): a proxy-ARP "bridge" between
// two interfaces of an IP-forwarding host. On each interface it answers
// ARP requests for any address the routing table reaches through the
// *other* interface, with the local interface's MAC — so neighbours on
// both sides address their traffic to this host, which then routes it.
// /32 host routes are learned dynamically from observed ARP traffic,
// exactly like parprouted's route maintenance.
#pragma once

#include <cstdint>
#include <string>

#include "net/host.hpp"

namespace rogue::bridge {

class ArpProxyBridge {
 public:
  /// `parprouted if_a if_b`. Enables ip_forward on the host (the script's
  /// "echo 1 > /proc/sys/net/ipv4/ip_forward").
  ArpProxyBridge(net::Host& host, std::string if_a, std::string if_b);

  ArpProxyBridge(const ArpProxyBridge&) = delete;
  ArpProxyBridge& operator=(const ArpProxyBridge&) = delete;

  /// Manual "route add -host <ip> dev <iface>".
  void add_host_route(net::Ipv4Addr ip, const std::string& iface);

  [[nodiscard]] std::uint64_t proxied_replies() const { return proxied_; }
  [[nodiscard]] std::uint64_t routes_learned() const { return learned_; }

 private:
  void install(const std::string& on_iface, const std::string& other_iface);

  net::Host& host_;
  std::string if_a_;
  std::string if_b_;
  std::uint64_t proxied_ = 0;
  std::uint64_t learned_ = 0;
};

}  // namespace rogue::bridge
