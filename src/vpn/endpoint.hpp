// VPN endpoint (server side): lives on a host inside the trusted wired
// network (§5.2 requirement 3). Terminates client tunnels, assigns tunnel
// addresses, decrypts inbound records and routes the inner packets; return
// traffic for tunnel addresses is routed into a tun interface, sealed, and
// sent back down the right session. SNAT toward the wire makes the
// endpoint self-contained (no routes needed on other wired hosts) — and
// doubles as the paper's §5.3 note that "the client's traffic can also be
// anonymized for privacy reasons at the VPN endpoint".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/host.hpp"
#include "vpn/protocol.hpp"
#include "vpn/virtual_if.hpp"

namespace rogue::vpn {

enum class Transport : std::uint8_t { kTcp, kUdp };

struct EndpointConfig {
  util::Bytes psk;             ///< pre-established authenticator
  std::uint16_t port = 7000;
  net::Ipv4Addr tunnel_network = net::Ipv4Addr(172, 16, 0, 0);
  unsigned tunnel_prefix = 24;
  bool snat_to_wire = true;    ///< masquerade tunnel clients behind our IP
  std::string egress_ifname = "eth0";
};

struct EndpointCounters {
  std::uint64_t sessions_established = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t records_bad = 0;      ///< MAC failures / replays / spoofed src
  std::uint64_t bytes_decrypted = 0;
  std::uint64_t bytes_sealed = 0;
  std::uint64_t keepalives_in = 0;    ///< liveness probes answered
};

class Endpoint {
 public:
  Endpoint(net::Host& host, EndpointConfig config);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Open the TCP listener and UDP socket, install tun routing + SNAT.
  /// Restart-safe: the tun/route/SNAT plumbing is installed once; a
  /// start() after stop() only reopens the transports.
  void start();

  /// Simulated process crash: close the transports and forget every
  /// session (a restarted endpoint has no session state — clients must
  /// re-handshake, which is exactly what dead-peer detection triggers).
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const EndpointCounters& counters() const { return counters_; }
  [[nodiscard]] std::size_t active_sessions() const { return by_tunnel_ip_.size(); }

 private:
  struct Session {
    SessionKeys keys;
    net::Ipv4Addr tunnel_ip;
    bool established = false;
    std::uint64_t tx_seq = 0;
    std::uint64_t last_rx_seq = 0;
    util::Bytes client_hello;  ///< retained for transcript auth
    util::Bytes hello_reply;   ///< cached ServerHello (duplicate M1s resend it)
    util::Bytes assign_reply;  ///< cached Assign (duplicate auths resend it)
    std::optional<crypto::DhKeyPair> dh;  ///< fresh per session
    /// Incarnation of the endpoint that created this session; messages on
    /// sessions from a pre-crash incarnation are dropped (their transport
    /// closures may still be alive inside TCP connection callbacks).
    std::uint64_t epoch = 0;
    // Transport binding: wire-encodes (type, payload) in a pooled buffer,
    // so sealed records are sent without an intermediate Message copy.
    std::function<void(MsgType type, util::ByteView payload)> send;
  };
  using SessionPtr = std::shared_ptr<Session>;

  void on_tcp_accept(net::TcpConnectionPtr conn);
  void on_udp_datagram(net::Ipv4Addr src, std::uint16_t sport, util::ByteView data);
  void handle_message(const SessionPtr& session, const Message& msg);
  void handle_client_hello(const SessionPtr& session, const Message& msg);
  void handle_client_auth(const SessionPtr& session, const Message& msg);
  void handle_data(const SessionPtr& session, const Message& msg);
  void handle_keepalive(const SessionPtr& session, const Message& msg);
  bool tun_transmit(util::ByteView ip_packet);
  [[nodiscard]] std::optional<net::Ipv4Addr> allocate_tunnel_ip();

  net::Host& host_;
  EndpointConfig config_;
  TunIf* tun_ = nullptr;  // owned by host_
  std::shared_ptr<net::UdpSocket> udp_;
  std::map<std::pair<net::Ipv4Addr, std::uint16_t>, SessionPtr> udp_sessions_;
  std::unordered_map<net::Ipv4Addr, SessionPtr> by_tunnel_ip_;
  std::vector<net::Ipv4Addr> free_tunnel_ips_;  ///< released, reused LIFO
  std::uint32_t next_host_id_ = 2;
  bool running_ = false;
  bool plumbed_ = false;   ///< tun/route/SNAT installed (survives restarts)
  std::uint64_t epoch_ = 0;
  EndpointCounters counters_;
  // Per-simulation stats, aggregated across all endpoints.
  obs::CounterId stat_sessions_;
  obs::CounterId stat_auth_failures_;
  obs::CounterId stat_records_in_;
  obs::CounterId stat_records_out_;
  obs::CounterId stat_records_bad_;
  obs::CounterId stat_keepalives_;
  obs::Profiler::ScopeId data_scope_;
};

}  // namespace rogue::vpn
