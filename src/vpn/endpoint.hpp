// VPN endpoint (server side): lives on a host inside the trusted wired
// network (§5.2 requirement 3). Terminates client tunnels, assigns tunnel
// addresses, decrypts inbound records and routes the inner packets; return
// traffic for tunnel addresses is routed into a tun interface, sealed, and
// sent back down the right session. SNAT toward the wire makes the
// endpoint self-contained (no routes needed on other wired hosts) — and
// doubles as the paper's §5.3 note that "the client's traffic can also be
// anonymized for privacy reasons at the VPN endpoint".
//
// UDP-transport resilience: inbound records are policed by a sliding
// anti-replay window per epoch (reordering tolerated, duplicates
// rejected), sessions rotate keys via client-initiated kRekey exchanges
// with a grace period for the previous epoch's in-flight records, an
// established client that shows up from a new (addr, port) is re-bound to
// its session if the record authenticates (path migration), and UDP
// session state is reaped on handshake/idle timeouts so roaming plus
// half-open garbage can't grow it unboundedly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/host.hpp"
#include "vpn/protocol.hpp"
#include "vpn/virtual_if.hpp"

namespace rogue::vpn {

enum class Transport : std::uint8_t { kTcp, kUdp };

struct EndpointConfig {
  util::Bytes psk;             ///< pre-established authenticator
  std::uint16_t port = 7000;
  net::Ipv4Addr tunnel_network = net::Ipv4Addr(172, 16, 0, 0);
  unsigned tunnel_prefix = 24;
  bool snat_to_wire = true;    ///< masquerade tunnel clients behind our IP
  std::string egress_ifname = "eth0";

  // ---- Transport resilience knobs ----
  /// Anti-replay window width in record counters (rounded up to 64).
  std::size_t replay_window = 1024;
  /// Half-open UDP sessions that have not completed the handshake within
  /// this budget are reaped (0 = never).
  sim::Time handshake_timeout = 10 * sim::kSecond;
  /// Established UDP sessions with no authenticated traffic for this long
  /// are reaped and their tunnel IP released (0 = never).
  sim::Time idle_timeout = 60 * sim::kSecond;
  /// After a rekey, records sealed under the previous epoch's keys are
  /// still accepted for this long (loss-free rotation).
  sim::Time rekey_grace = 5 * sim::kSecond;
};

struct EndpointCounters {
  std::uint64_t sessions_established = 0;
  std::uint64_t auth_failures = 0;     ///< handshake transcript-MAC failures
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t records_bad = 0;       ///< total of the four classes below
  std::uint64_t records_replayed = 0;  ///< anti-replay window rejects
  std::uint64_t records_auth_fail = 0; ///< AEAD tag failures
  std::uint64_t records_spoofed_src = 0;  ///< inner src != assigned tunnel IP,
                                          ///< or unauthenticated roam attempts
  std::uint64_t records_stale_epoch = 0;  ///< epoch outside current/grace set
  std::uint64_t bytes_decrypted = 0;
  std::uint64_t bytes_sealed = 0;
  std::uint64_t keepalives_in = 0;     ///< liveness probes answered
  std::uint64_t rekeys = 0;            ///< completed epoch rotations
  std::uint64_t roams = 0;             ///< sessions re-bound to a new (addr, port)
  std::uint64_t sessions_reaped = 0;   ///< half-open + idle UDP sessions expired
};

class Endpoint {
 public:
  Endpoint(net::Host& host, EndpointConfig config);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Open the TCP listener and UDP socket, install tun routing + SNAT.
  /// Restart-safe: the tun/route/SNAT plumbing is installed once; a
  /// start() after stop() only reopens the transports.
  void start();

  /// Simulated process crash: close the transports and forget every
  /// session (a restarted endpoint has no session state — clients must
  /// re-handshake, which is exactly what dead-peer detection triggers).
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const EndpointCounters& counters() const { return counters_; }
  [[nodiscard]] std::size_t active_sessions() const { return by_tunnel_ip_.size(); }
  /// UDP session-table size including half-open entries (leak visibility).
  [[nodiscard]] std::size_t udp_session_count() const { return udp_sessions_.size(); }

 private:
  struct Session {
    SessionKeys keys;
    net::Ipv4Addr tunnel_ip;
    bool established = false;
    std::uint16_t key_epoch = 0;   ///< current key epoch (0 = handshake keys)
    std::uint64_t tx_counter = 0;  ///< per-epoch send counter
    ReplayWindow rx_window;        ///< current-epoch anti-replay window
    // Previous epoch, kept alive through the rekey grace period so records
    // sealed just before the switch still decrypt.
    SessionKeys prev_keys;
    ReplayWindow prev_window;
    sim::Time grace_until = 0;
    util::Bytes rekey_ack;     ///< cached ack (duplicate kRekeys resend it)
    util::Bytes client_hello;  ///< retained for transcript auth
    util::Bytes hello_reply;   ///< cached ServerHello (duplicate M1s resend it)
    util::Bytes assign_reply;  ///< cached Assign (duplicate auths resend it)
    std::optional<crypto::DhKeyPair> dh;  ///< fresh per session
    /// Incarnation of the endpoint that created this session; messages on
    /// sessions from a pre-crash incarnation are dropped (their transport
    /// closures may still be alive inside TCP connection callbacks).
    std::uint64_t epoch = 0;
    // Reap bookkeeping (UDP sessions only).
    sim::Time created_at = 0;
    sim::Time last_activity = 0;
    bool via_udp = false;
    std::pair<net::Ipv4Addr, std::uint16_t> udp_key;  ///< current transport binding
    // Transport binding: wire-encodes (type, payload) in a pooled buffer,
    // so sealed records are sent without an intermediate Message copy.
    std::function<void(MsgType type, util::ByteView payload)> send;
  };
  using SessionPtr = std::shared_ptr<Session>;
  using UdpKey = std::pair<net::Ipv4Addr, std::uint16_t>;

  /// How an inbound record fared against the session's epoch/window/key set.
  enum class OpenStatus { kOk, kAuthFail, kReplay, kStaleEpoch, kSpoofedSrc };

  void on_tcp_accept(net::TcpConnectionPtr conn);
  void on_udp_datagram(net::Ipv4Addr src, std::uint16_t sport, util::ByteView data);
  void handle_message(const SessionPtr& session, const Message& msg);
  void handle_client_hello(const SessionPtr& session, const Message& msg);
  void handle_client_auth(const SessionPtr& session, const Message& msg);
  void handle_data(const SessionPtr& session, const Message& msg);
  void handle_keepalive(const SessionPtr& session, const Message& msg);
  void handle_rekey(const SessionPtr& session, const Message& msg);
  bool tun_transmit(util::ByteView ip_packet);
  [[nodiscard]] std::optional<net::Ipv4Addr> allocate_tunnel_ip();

  /// Open a c2s record against the session's current epoch (or the
  /// previous one inside the rekey grace window), enforcing the
  /// anti-replay window. On kOk the inner plaintext is appended to `inner`
  /// and the window is advanced.
  OpenStatus open_session_record(Session& s, util::ByteView record,
                                 std::uint64_t* seq_out, util::Bytes& inner);
  /// Would this record authenticate on `s` (MAC + window), without
  /// consuming the window slot? Used by path-migration trial auth.
  [[nodiscard]] bool trial_authenticates(Session& s, util::ByteView record);
  /// Path migration: re-bind an established session to `key` if `msg`'s
  /// record authenticates; dispatches the message on success.
  void try_roam(const UdpKey& key, const Message& msg);
  void record_bad(OpenStatus status);
  [[nodiscard]] std::uint64_t next_tx_seq(Session& s) {
    return make_record_seq(s.key_epoch, ++s.tx_counter);
  }
  void schedule_reap();
  void reap_sessions();
  void flush_lazy_stats();

  net::Host& host_;
  EndpointConfig config_;
  TunIf* tun_ = nullptr;  // owned by host_
  std::shared_ptr<net::UdpSocket> udp_;
  std::map<UdpKey, SessionPtr> udp_sessions_;
  std::unordered_map<net::Ipv4Addr, SessionPtr> by_tunnel_ip_;
  std::vector<net::Ipv4Addr> free_tunnel_ips_;  ///< released, reused LIFO
  std::uint32_t next_host_id_ = 2;
  bool running_ = false;
  bool plumbed_ = false;   ///< tun/route/SNAT installed (survives restarts)
  std::uint64_t epoch_ = 0;
  sim::TimerHandle reap_timer_;
  bool reap_scheduled_ = false;
  EndpointCounters counters_;
  // Per-simulation stats, aggregated across all endpoints.
  obs::CounterId stat_sessions_;
  obs::CounterId stat_auth_failures_;
  obs::CounterId stat_records_in_;
  obs::CounterId stat_records_out_;
  obs::CounterId stat_records_bad_;
  obs::CounterId stat_keepalives_;
  obs::Profiler::ScopeId data_scope_;
  // The resilience tallies are interned lazily (first nonzero value at
  // snapshot time) so stats snapshots of legacy scenarios keep their
  // exact metric set; deltas are added so multiple endpoints aggregate.
  struct LazyStat {
    const char* name;
    obs::CounterId id{};
    std::uint64_t flushed = 0;
    bool interned = false;
  };
  LazyStat lazy_replayed_{"vpn.endpoint.records_replayed"};
  LazyStat lazy_auth_fail_{"vpn.endpoint.records_auth_fail"};
  LazyStat lazy_spoofed_{"vpn.endpoint.records_spoofed_src"};
  LazyStat lazy_stale_epoch_{"vpn.endpoint.records_stale_epoch"};
  LazyStat lazy_rekeys_{"vpn.endpoint.rekeys"};
  LazyStat lazy_roams_{"vpn.endpoint.roams"};
  LazyStat lazy_reaped_{"vpn.endpoint.sessions_reaped"};
  obs::GaugeId sessions_gauge_{};
  bool sessions_gauge_interned_ = false;
  std::uint64_t snapshot_hook_ = 0;
};

}  // namespace rogue::vpn
