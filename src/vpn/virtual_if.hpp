// tun-style point-to-point interface: outbound IP packets go to a user
// callback (the tunnel's encryptor); the tunnel injects inbound decrypted
// packets with inject(). No ARP, no link layer.
#pragma once

#include <functional>

#include "net/link.hpp"

namespace rogue::vpn {

class TunIf final : public net::NetIf {
 public:
  /// `tx` receives the raw serialized IPv4 packet bytes.
  using TxHandler = std::function<bool(util::ByteView ip_packet)>;

  TunIf(std::string name, TxHandler tx)
      : net::NetIf(std::move(name), net::MacAddr::from_id(0x7F00)),
        tx_(std::move(tx)) {}

  [[nodiscard]] bool link_up() const override { return up_; }
  [[nodiscard]] bool needs_arp() const override { return false; }

  void set_up(bool up) { up_ = up; }

  /// Deliver a decrypted inner packet up into the host's IP stack.
  void inject(util::ByteView ip_packet) {
    deliver_up(net::L2Frame{mac(), mac(), dot11::kEtherTypeIpv4,
                            util::Bytes(ip_packet.begin(), ip_packet.end())});
  }

 protected:
  bool transmit(net::MacAddr /*dst*/, std::uint16_t ethertype,
                util::ByteView payload) override {
    if (ethertype != dot11::kEtherTypeIpv4) return false;
    if (!up_) return false;
    count_tx();
    return tx_(payload);
  }

 private:
  TxHandler tx_;
  bool up_ = false;
};

}  // namespace rogue::vpn
