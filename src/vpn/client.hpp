// VPN client: establishes an authenticated tunnel to the endpoint and —
// the paper's core prescription — repoints the host's *default route* into
// the tunnel so that ALL traffic (requirement 4, §5.2) traverses it. Only
// the pinned /32 route to the endpoint itself still uses the underlying
// (possibly hostile) wireless path.
//
// Self-healing (the robustness the paper's §5.3 admits is missing): with
// auto_reconnect enabled the client probes the endpoint with sealed
// keepalives, declares the session dead after dead_peer_timeout of
// silence, tears the tunnel down, and re-handshakes with capped
// exponential backoff + jitter. While the tunnel is down, fail_open
// restores the original default route (connectivity, but *in the clear*);
// fail-closed leaves traffic blackholed until the tunnel returns.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "net/host.hpp"
#include "util/prng.hpp"
#include "vpn/endpoint.hpp"  // Transport
#include "vpn/protocol.hpp"
#include "vpn/virtual_if.hpp"

namespace rogue::vpn {

struct ClientConfig {
  util::Bytes psk;
  net::Ipv4Addr endpoint_ip;
  std::uint16_t endpoint_port = 7000;
  Transport transport = Transport::kTcp;
  sim::Time handshake_timeout = 5 * sim::kSecond;
  sim::Time udp_retransmit = 500 * sim::kMillisecond;
  /// Route every non-endpoint packet through the tunnel once established.
  bool route_all_traffic = true;

  // ---- Self-healing knobs (off by default: legacy one-shot behaviour) ----
  /// Re-handshake after handshake failure or dead peer.
  bool auto_reconnect = false;
  /// Sealed liveness probe period while established (auto_reconnect only).
  sim::Time keepalive_interval = 1 * sim::kSecond;
  /// Silence from the endpoint before the session is declared dead.
  sim::Time dead_peer_timeout = 3500 * sim::kMillisecond;
  sim::Time reconnect_backoff_min = 250 * sim::kMillisecond;
  sim::Time reconnect_backoff_max = 8 * sim::kSecond;
  /// Tunnel down: true restores the saved default route (unprotected
  /// connectivity — exposure is measurable); false blackholes instead.
  bool fail_open = true;

  // ---- Anti-replay / rekey knobs ----
  /// Anti-replay window width in record counters (rounded up to 64).
  std::size_t replay_window = 1024;
  /// Rotate data keys after this many sealed records (0 = never).
  std::uint64_t rekey_after_records = 0;
  /// Rotate data keys after this much sim-time per epoch (0 = never;
  /// checked on sends and keepalive ticks, so a fully idle tunnel without
  /// keepalives only rotates when traffic resumes).
  sim::Time rekey_after_time = 0;
  /// kRekey retransmit period until the rotation is acknowledged.
  sim::Time rekey_retransmit = 500 * sim::kMillisecond;
  /// After committing a rekey, still accept the previous epoch's in-flight
  /// records for this long.
  sim::Time rekey_grace = 5 * sim::kSecond;
};

struct ClientCounters {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t records_bad = 0;       ///< total of the three classes below
  std::uint64_t records_replayed = 0;  ///< anti-replay window rejects
  std::uint64_t records_auth_fail = 0; ///< AEAD tag failures
  std::uint64_t records_stale_epoch = 0;  ///< epoch outside the accepted set
  std::uint64_t rekeys = 0;            ///< committed epoch rotations
  std::uint64_t bytes_sealed = 0;
  std::uint64_t bytes_decrypted = 0;
  std::uint64_t keepalives_sent = 0;
  std::uint64_t keepalive_acks = 0;
  std::uint64_t dead_peer_events = 0;     ///< sessions torn down by DPD
  std::uint64_t connect_attempts = 0;     ///< handshakes started (incl. first)
  std::uint64_t sessions_established = 0; ///< successful handshakes
};

class ClientTunnel {
 public:
  /// done(true) once the tunnel is first up (routes installed); done(false)
  /// when the *initial* establishment fails (auth failure or timeout).
  /// Fires exactly once; later reconnect outcomes go to the session handler.
  using EstablishedHandler = std::function<void(bool ok)>;
  /// up=true on every (re-)establishment, up=false on every session loss.
  using SessionHandler = std::function<void(bool up)>;

  ClientTunnel(net::Host& host, ClientConfig config);
  ~ClientTunnel();

  ClientTunnel(const ClientTunnel&) = delete;
  ClientTunnel& operator=(const ClientTunnel&) = delete;

  void start(EstablishedHandler done);

  /// Simulate an address change mid-session (roaming): reopen the UDP
  /// transport on a fresh ephemeral port without touching session state.
  /// The next record that authenticates from the new (addr, port) makes
  /// the endpoint re-bind the session. No-op for TCP or while down.
  void migrate();

  /// Observe tunnel up/down transitions (robustness metrics).
  void set_session_handler(SessionHandler handler) {
    session_handler_ = std::move(handler);
  }

  [[nodiscard]] bool established() const { return established_; }
  /// True if the peer proved knowledge of the PSK (it is the real
  /// endpoint, not a rogue terminating our VPN).
  [[nodiscard]] bool server_authenticated() const { return server_authenticated_; }
  [[nodiscard]] net::Ipv4Addr tunnel_ip() const { return tunnel_ip_; }
  [[nodiscard]] const ClientCounters& counters() const { return counters_; }
  /// Sessions re-established after a loss (0 for an unbroken tunnel).
  [[nodiscard]] std::uint64_t reconnects() const {
    return counters_.sessions_established > 0
               ? counters_.sessions_established - 1
               : 0;
  }
  /// Carrier TCP statistics when transport == kTcp (the "unnecessary
  /// retransmission" §5.3 warns about); nullptr for UDP transport.
  [[nodiscard]] const net::TcpStats* tcp_transport_stats() const {
    return tcp_ ? &tcp_->stats() : nullptr;
  }

 private:
  void begin_attempt();
  void attempt_failed();
  void session_lost();
  void schedule_reconnect();
  void teardown_transport();
  void report_initial(bool ok);
  void send_message(const Message& msg);
  /// Hot-path variant: wire-encode (type, payload) in a pooled buffer.
  void send_payload(MsgType type, util::ByteView payload);
  void on_message(const Message& msg);
  void handle_server_hello(const Message& msg);
  void handle_assign(const Message& msg);
  void handle_data(const Message& msg);
  void handle_keepalive_ack(const Message& msg);
  void handle_rekey_ack(const Message& msg);
  void on_keepalive_tick();
  void bring_up_tun();

  /// How an inbound record fared against the epoch/window/key set.
  enum class OpenStatus { kOk, kAuthFail, kReplay, kStaleEpoch };
  /// Open an s2c record against the current epoch, the previous epoch
  /// inside the rekey grace window, or — if a rekey is pending — trial-open
  /// under the pending next-epoch keys (any success commits the rotation,
  /// which makes a lost kRekeyAck harmless). Advances the matching
  /// anti-replay window on kOk.
  OpenStatus open_incoming(util::ByteView record, std::uint64_t* seq_out,
                           util::Bytes& inner);
  void record_bad(OpenStatus status);
  [[nodiscard]] std::uint64_t next_tx_seq() {
    ++epoch_tx_records_;
    return make_record_seq(key_epoch_, ++tx_counter_);
  }
  void maybe_rekey();
  void start_rekey();
  void commit_rekey();
  void abandon_rekey();
  void flush_lazy_stats();

  net::Host& host_;
  ClientConfig config_;
  EstablishedHandler done_;
  SessionHandler session_handler_;
  bool done_reported_ = false;

  net::TcpConnectionPtr tcp_;
  std::shared_ptr<net::UdpSocket> udp_;
  std::shared_ptr<MessageReader> reader_;

  util::Bytes client_hello_;
  Message last_auth_;  ///< resent when a duplicate ServerHello arrives
  std::optional<crypto::DhKeyPair> dh_;
  SessionKeys keys_;
  bool server_authenticated_ = false;
  bool established_ = false;
  bool failed_ = false;
  net::Ipv4Addr tunnel_ip_;
  std::uint16_t key_epoch_ = 0;   ///< current key epoch (0 = handshake keys)
  std::uint64_t tx_counter_ = 0;  ///< per-epoch send counter
  std::uint64_t epoch_tx_records_ = 0;  ///< records sealed this epoch
  sim::Time epoch_started_ = 0;
  ReplayWindow rx_window_;        ///< current-epoch anti-replay window
  // Previous epoch, alive through the rekey grace period.
  SessionKeys prev_keys_;
  ReplayWindow prev_window_;
  sim::Time grace_until_ = 0;
  // Pending rekey: initiated, waiting for proof the endpoint switched
  // (its ack or any record under the next epoch's keys).
  bool rekey_pending_ = false;
  SessionKeys pending_keys_;
  util::Bytes pending_rekey_record_;  ///< retransmitted until committed

  TunIf* tun_ = nullptr;  // owned by host_
  bool pinned_route_ = false;  ///< our /32 endpoint pin is installed
  std::optional<net::Route> saved_default_;  ///< pre-VPN default route
  sim::Time last_peer_activity_ = 0;
  sim::Time backoff_ = 0;
  util::Prng reconnect_rng_;  ///< jitter stream (derive_rng, never wall clock)
  sim::TimerHandle timeout_timer_;
  sim::TimerHandle retransmit_timer_;
  sim::TimerHandle keepalive_timer_;
  sim::TimerHandle reconnect_timer_;
  sim::TimerHandle rekey_timer_;
  ClientCounters counters_;
  // Per-simulation stats, aggregated across all client tunnels.
  obs::CounterId stat_records_out_;
  obs::CounterId stat_records_in_;
  obs::CounterId stat_records_bad_;
  obs::CounterId stat_keepalives_;
  obs::CounterId stat_keepalive_acks_;
  obs::CounterId stat_dead_peer_;
  obs::CounterId stat_sessions_;
  obs::CounterId stat_reconnects_;
  obs::CounterId stat_connect_attempts_;
  obs::TraceActorId trace_actor_;
  obs::TraceNameId trace_session_;
  obs::TraceNameId trace_rekey_;
  obs::TraceNameId trace_record_bad_;
  obs::Profiler::ScopeId data_scope_;
  // Resilience tallies are interned lazily (first nonzero value at
  // snapshot time) so stats snapshots of legacy scenarios keep their
  // exact metric set; deltas are added so multiple clients aggregate.
  struct LazyStat {
    const char* name;
    obs::CounterId id{};
    std::uint64_t flushed = 0;
    bool interned = false;
  };
  LazyStat lazy_replayed_{"vpn.client.records_replayed"};
  LazyStat lazy_auth_fail_{"vpn.client.records_auth_fail"};
  LazyStat lazy_stale_epoch_{"vpn.client.records_stale_epoch"};
  LazyStat lazy_rekeys_{"vpn.client.rekeys"};
  std::uint64_t snapshot_hook_ = 0;
};

}  // namespace rogue::vpn
