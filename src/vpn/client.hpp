// VPN client: establishes an authenticated tunnel to the endpoint and —
// the paper's core prescription — repoints the host's *default route* into
// the tunnel so that ALL traffic (requirement 4, §5.2) traverses it. Only
// the pinned /32 route to the endpoint itself still uses the underlying
// (possibly hostile) wireless path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "net/host.hpp"
#include "vpn/endpoint.hpp"  // Transport
#include "vpn/protocol.hpp"
#include "vpn/virtual_if.hpp"

namespace rogue::vpn {

struct ClientConfig {
  util::Bytes psk;
  net::Ipv4Addr endpoint_ip;
  std::uint16_t endpoint_port = 7000;
  Transport transport = Transport::kTcp;
  sim::Time handshake_timeout = 5 * sim::kSecond;
  sim::Time udp_retransmit = 500 * sim::kMillisecond;
  /// Route every non-endpoint packet through the tunnel once established.
  bool route_all_traffic = true;
};

struct ClientCounters {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t records_bad = 0;
  std::uint64_t bytes_sealed = 0;
  std::uint64_t bytes_decrypted = 0;
};

class ClientTunnel {
 public:
  /// done(true) once the tunnel is up (routes installed); done(false) on
  /// endpoint authentication failure or timeout.
  using EstablishedHandler = std::function<void(bool ok)>;

  ClientTunnel(net::Host& host, ClientConfig config);
  ~ClientTunnel();

  ClientTunnel(const ClientTunnel&) = delete;
  ClientTunnel& operator=(const ClientTunnel&) = delete;

  void start(EstablishedHandler done);

  [[nodiscard]] bool established() const { return established_; }
  /// True if the peer proved knowledge of the PSK (it is the real
  /// endpoint, not a rogue terminating our VPN).
  [[nodiscard]] bool server_authenticated() const { return server_authenticated_; }
  [[nodiscard]] net::Ipv4Addr tunnel_ip() const { return tunnel_ip_; }
  [[nodiscard]] const ClientCounters& counters() const { return counters_; }
  /// Carrier TCP statistics when transport == kTcp (the "unnecessary
  /// retransmission" §5.3 warns about); nullptr for UDP transport.
  [[nodiscard]] const net::TcpStats* tcp_transport_stats() const {
    return tcp_ ? &tcp_->stats() : nullptr;
  }

 private:
  void send_message(const Message& msg);
  void on_message(const Message& msg);
  void handle_server_hello(const Message& msg);
  void handle_assign(const Message& msg);
  void handle_data(const Message& msg);
  void bring_up_tun();
  void fail();

  net::Host& host_;
  ClientConfig config_;
  EstablishedHandler done_;

  net::TcpConnectionPtr tcp_;
  std::shared_ptr<net::UdpSocket> udp_;
  std::shared_ptr<MessageReader> reader_;

  util::Bytes client_hello_;
  Message last_auth_;  ///< resent when a duplicate ServerHello arrives
  std::optional<crypto::DhKeyPair> dh_;
  SessionKeys keys_;
  bool server_authenticated_ = false;
  bool established_ = false;
  bool failed_ = false;
  net::Ipv4Addr tunnel_ip_;
  std::uint64_t tx_seq_ = 0;
  std::uint64_t last_rx_seq_ = 0;

  TunIf* tun_ = nullptr;  // owned by host_
  sim::TimerHandle timeout_timer_;
  sim::TimerHandle retransmit_timer_;
  ClientCounters counters_;
};

}  // namespace rogue::vpn
