#include "vpn/client.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace rogue::vpn {

ClientTunnel::ClientTunnel(net::Host& host, ClientConfig config)
    : host_(host), config_(std::move(config)) {}

ClientTunnel::~ClientTunnel() {
  host_.simulator().cancel(timeout_timer_);
  host_.simulator().cancel(retransmit_timer_);
}

void ClientTunnel::start(EstablishedHandler done) {
  done_ = std::move(done);

  // Pin the endpoint itself to the underlying path so tunnel transport
  // packets do not recurse into the tunnel once the default moves.
  const auto underlying = host_.routes().lookup(config_.endpoint_ip);
  if (!underlying) {
    fail();
    return;
  }
  host_.routes().add(net::Route{config_.endpoint_ip, net::Ipv4Addr(0xffffffffu),
                                underlying->gateway, underlying->ifname, 0});

  // ClientHello.
  const auto& group = crypto::DhGroup::modp1024();
  dh_ = crypto::DhKeyPair::generate(group, host_.simulator().rng());
  util::Bytes client_random(kRandomLen);
  host_.simulator().rng().fill(client_random);
  client_hello_.clear();
  util::append(client_hello_, client_random);
  const util::Bytes pub = dh_->public_bytes();
  util::append(client_hello_, pub);

  Message hello;
  hello.type = MsgType::kClientHello;
  hello.payload = client_hello_;

  timeout_timer_ = host_.simulator().after(config_.handshake_timeout, [this] {
    if (!established_) fail();
  });

  if (config_.transport == Transport::kTcp) {
    tcp_ = host_.tcp_connect(config_.endpoint_ip, config_.endpoint_port);
    if (!tcp_) {
      fail();
      return;
    }
    reader_ = std::make_shared<MessageReader>();
    auto reader = reader_;
    tcp_->set_on_connect([this, hello] { send_message(hello); });
    tcp_->set_on_data([this, reader](util::ByteView data) {
      reader->feed(data);
      while (const auto msg = reader->next()) on_message(*msg);
    });
    tcp_->set_on_close([this] {
      if (!established_) fail();
    });
  } else {
    udp_ = host_.udp_open(0);
    if (!udp_) {
      fail();
      return;
    }
    udp_->set_rx([this](net::Ipv4Addr, std::uint16_t, util::ByteView data) {
      const auto msg = Message::from_datagram(data);
      if (msg) on_message(*msg);
    });
    send_message(hello);
    // Handshake datagrams may be lost; retransmit the hello until done.
    retransmit_timer_ = host_.simulator().every(config_.udp_retransmit, [this, hello] {
      if (!established_ && !failed_) send_message(hello);
    });
  }
}

void ClientTunnel::send_message(const Message& msg) {
  if (config_.transport == Transport::kTcp) {
    if (tcp_) tcp_->send(msg.frame());
  } else {
    if (udp_) udp_->send_to(config_.endpoint_ip, config_.endpoint_port, msg.datagram());
  }
}

void ClientTunnel::fail() {
  if (failed_ || established_) return;
  failed_ = true;
  host_.simulator().cancel(timeout_timer_);
  host_.simulator().cancel(retransmit_timer_);
  if (tcp_) tcp_->abort();
  if (done_) done_(false);
}

void ClientTunnel::on_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kServerHello: handle_server_hello(msg); return;
    case MsgType::kAssign: handle_assign(msg); return;
    case MsgType::kData: handle_data(msg); return;
    default: return;
  }
}

void ClientTunnel::handle_server_hello(const Message& msg) {
  if (failed_ || established_) return;
  if (server_authenticated_) {
    // Our ClientAuth was probably lost: the server re-answered our
    // retransmitted hello. Resend the auth (it is deterministic).
    if (!last_auth_.payload.empty()) send_message(last_auth_);
    return;
  }
  const auto& group = crypto::DhGroup::modp1024();
  if (msg.payload.size() != kRandomLen + group.byte_len + 32) return;

  const util::ByteView server_random = util::ByteView(msg.payload).subspan(0, kRandomLen);
  const util::ByteView server_public =
      util::ByteView(msg.payload).subspan(kRandomLen, group.byte_len);
  const util::ByteView tag =
      util::ByteView(msg.payload).subspan(kRandomLen + group.byte_len);

  // Endpoint authentication: only the holder of the PSK can compute this.
  // A rogue AP terminating our VPN handshake fails right here (§5.2).
  const crypto::Sha256Digest expected =
      server_auth_tag(config_.psk, client_hello_, server_public);
  if (!util::equal_ct(tag, util::ByteView(expected.data(), expected.size()))) {
    fail();
    return;
  }
  server_authenticated_ = true;

  const util::Bytes shared = dh_->shared_secret_bytes(server_public);
  if (shared.empty()) {
    fail();
    return;
  }
  const util::ByteView client_random = util::ByteView(client_hello_).subspan(0, kRandomLen);
  keys_ = derive_keys(config_.psk, shared, client_random, server_random);

  Message auth;
  auth.type = MsgType::kClientAuth;
  const crypto::Sha256Digest tag_out =
      client_auth_tag(config_.psk, client_hello_, server_public);
  auth.payload.assign(tag_out.begin(), tag_out.end());
  last_auth_ = auth;
  send_message(auth);
}

void ClientTunnel::handle_assign(const Message& msg) {
  if (established_ || failed_ || !server_authenticated_) return;
  if (msg.payload.size() != 4) return;
  tunnel_ip_ = net::Ipv4Addr((static_cast<std::uint32_t>(msg.payload[0]) << 24) |
                             (static_cast<std::uint32_t>(msg.payload[1]) << 16) |
                             (static_cast<std::uint32_t>(msg.payload[2]) << 8) |
                             msg.payload[3]);
  established_ = true;
  host_.simulator().cancel(timeout_timer_);
  host_.simulator().cancel(retransmit_timer_);
  bring_up_tun();
  if (done_) done_(true);
}

void ClientTunnel::bring_up_tun() {
  auto tun = std::make_unique<TunIf>("tun0", [this](util::ByteView pkt) {
    Message data;
    data.type = MsgType::kData;
    data.payload = seal_record(keys_.client_to_server, ++tx_seq_, pkt);
    counters_.bytes_sealed += pkt.size();
    ++counters_.records_out;
    send_message(data);
    return true;
  });
  tun_ = tun.get();
  tun_->set_up(true);
  host_.attach(std::move(tun));
  host_.interface("tun0")->configure_ip(tunnel_ip_, net::netmask(32));

  if (config_.route_all_traffic) {
    // The paper's requirement 4: the VPN "must handle all client traffic".
    host_.routes().remove_default();
    host_.routes().add(net::Route{net::Ipv4Addr::any(), net::Ipv4Addr::any(),
                                  net::Ipv4Addr::any(), "tun0", 50});
  }
}

void ClientTunnel::handle_data(const Message& msg) {
  if (!established_) return;
  ++counters_.records_in;
  std::uint64_t seq = 0;
  const auto inner = open_record(keys_.server_to_client, msg.payload, &seq);
  if (!inner) {
    ++counters_.records_bad;
    return;
  }
  if (seq <= last_rx_seq_ && last_rx_seq_ != 0) {
    ++counters_.records_bad;
    return;
  }
  last_rx_seq_ = seq;
  counters_.bytes_decrypted += inner->size();
  tun_->inject(*inner);
}

}  // namespace rogue::vpn
