#include "vpn/client.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace rogue::vpn {

ClientTunnel::ClientTunnel(net::Host& host, ClientConfig config)
    : host_(host),
      config_(std::move(config)),
      reconnect_rng_(
          host.simulator().derive_rng("vpn.reconnect." + host.name())) {
  obs::StatsRegistry& stats = host_.simulator().stats();
  stat_records_out_ = stats.counter("vpn.client.records_out");
  stat_records_in_ = stats.counter("vpn.client.records_in");
  stat_records_bad_ = stats.counter("vpn.client.records_bad");
  stat_keepalives_ = stats.counter("vpn.client.keepalives_sent");
  stat_keepalive_acks_ = stats.counter("vpn.client.keepalive_acks");
  stat_dead_peer_ = stats.counter("vpn.client.dead_peer_events");
  stat_sessions_ = stats.counter("vpn.client.sessions_established");
  stat_reconnects_ = stats.counter("vpn.client.reconnects");
  stat_connect_attempts_ = stats.counter("vpn.client.connect_attempts");
  data_scope_ = host_.simulator().profiler().intern("vpn.client.data");
  obs::Tracer& tracer = host_.simulator().tracer();
  trace_actor_ = tracer.actor("vpn:" + host_.name());
  trace_session_ = tracer.name("vpn.session");
  trace_rekey_ = tracer.name("vpn.rekey");
  trace_record_bad_ = tracer.name("vpn.record-bad");
  snapshot_hook_ = stats.on_snapshot([this] { flush_lazy_stats(); });
}

ClientTunnel::~ClientTunnel() {
  host_.simulator().stats().remove_snapshot_hook(snapshot_hook_);
  host_.simulator().cancel(timeout_timer_);
  host_.simulator().cancel(retransmit_timer_);
  host_.simulator().cancel(keepalive_timer_);
  host_.simulator().cancel(reconnect_timer_);
  host_.simulator().cancel(rekey_timer_);
}

void ClientTunnel::flush_lazy_stats() {
  obs::StatsRegistry& stats = host_.simulator().stats();
  const auto flush = [&stats](LazyStat& ls, std::uint64_t current) {
    if (current == ls.flushed) return;
    if (!ls.interned) {
      ls.id = stats.counter(ls.name);
      ls.interned = true;
    }
    stats.add(ls.id, current - ls.flushed);
    ls.flushed = current;
  };
  flush(lazy_replayed_, counters_.records_replayed);
  flush(lazy_auth_fail_, counters_.records_auth_fail);
  flush(lazy_stale_epoch_, counters_.records_stale_epoch);
  flush(lazy_rekeys_, counters_.rekeys);
}

void ClientTunnel::start(EstablishedHandler done) {
  done_ = std::move(done);
  done_reported_ = false;
  backoff_ = config_.reconnect_backoff_min;
  begin_attempt();
}

void ClientTunnel::begin_attempt() {
  ++counters_.connect_attempts;
  host_.simulator().stats().add(stat_connect_attempts_);
  failed_ = false;
  established_ = false;
  server_authenticated_ = false;
  last_auth_ = {};
  key_epoch_ = 0;
  tx_counter_ = 0;
  epoch_tx_records_ = 0;
  rx_window_ = ReplayWindow(config_.replay_window);
  grace_until_ = 0;
  abandon_rekey();
  host_.simulator().cancel(timeout_timer_);
  host_.simulator().cancel(retransmit_timer_);
  teardown_transport();

  // Pin the endpoint itself to the underlying path so tunnel transport
  // packets do not recurse into the tunnel once the default moves. The
  // pin survives session loss: reconnect handshakes must reach the
  // endpoint even while fail-closed blackholes everything else.
  const auto underlying = host_.routes().lookup(config_.endpoint_ip);
  if (!underlying) {
    attempt_failed();
    return;
  }
  if (!pinned_route_ && underlying->mask.value() != 0xffffffffu) {
    host_.routes().add(net::Route{config_.endpoint_ip,
                                  net::Ipv4Addr(0xffffffffu),
                                  underlying->gateway, underlying->ifname, 0});
    pinned_route_ = true;
  }

  // ClientHello (fresh DH keypair + random per attempt).
  const auto& group = crypto::DhGroup::modp1024();
  dh_ = crypto::DhKeyPair::generate(group, host_.simulator().rng());
  util::Bytes client_random(kRandomLen);
  host_.simulator().rng().fill(client_random);
  client_hello_.clear();
  util::append(client_hello_, client_random);
  const util::Bytes pub = dh_->public_bytes();
  util::append(client_hello_, pub);

  Message hello;
  hello.type = MsgType::kClientHello;
  hello.payload = client_hello_;

  timeout_timer_ = host_.simulator().after(config_.handshake_timeout, [this] {
    if (!established_) attempt_failed();
  });

  if (config_.transport == Transport::kTcp) {
    tcp_ = host_.tcp_connect(config_.endpoint_ip, config_.endpoint_port);
    if (!tcp_) {
      attempt_failed();
      return;
    }
    reader_ = std::make_shared<MessageReader>();
    auto reader = reader_;
    tcp_->set_on_connect([this, hello] { send_message(hello); });
    tcp_->set_on_data([this, reader](util::ByteView data) {
      reader->feed(data);
      while (const auto msg = reader->next()) on_message(*msg);
    });
    tcp_->set_on_close([this] {
      if (established_) {
        ++counters_.dead_peer_events;
        host_.simulator().stats().add(stat_dead_peer_);
        session_lost();
      } else {
        attempt_failed();
      }
    });
  } else {
    udp_ = host_.udp_open(0);
    if (!udp_) {
      attempt_failed();
      return;
    }
    udp_->set_rx([this](net::Ipv4Addr, std::uint16_t, util::ByteView data) {
      const auto msg = Message::from_datagram(data);
      if (msg) on_message(*msg);
    });
    send_message(hello);
    // Handshake datagrams may be lost; retransmit the hello until done.
    retransmit_timer_ = host_.simulator().every(config_.udp_retransmit, [this, hello] {
      if (!established_ && !failed_) send_message(hello);
    });
  }
}

void ClientTunnel::migrate() {
  if (config_.transport != Transport::kUdp || !established_ || !udp_) return;
  // Swap to a fresh ephemeral port; the old socket's destruction is
  // deferred one delta in case a datagram for it is already in flight
  // through our own callbacks.
  host_.simulator().after(0, [old = std::move(udp_)] {});
  udp_ = host_.udp_open(0);
  if (!udp_) return;
  udp_->set_rx([this](net::Ipv4Addr, std::uint16_t, util::ByteView data) {
    const auto msg = Message::from_datagram(data);
    if (msg) on_message(*msg);
  });
}

void ClientTunnel::teardown_transport() {
  // This runs from inside the transport's own rx/close callbacks (a bad
  // auth tag is detected mid on_data). Destroying those std::functions —
  // or the socket that owns them — while one is executing is
  // use-after-free, so detach and abort on the next simulator delta. The
  // handlers that could fire in between are guarded by failed_ /
  // established_, which are already set by the time we get here.
  if (tcp_ || udp_) {
    host_.simulator().after(0, [tcp = std::move(tcp_), udp = std::move(udp_)] {
      if (tcp) {
        tcp->set_on_connect(nullptr);
        tcp->set_on_data(nullptr);
        tcp->set_on_close(nullptr);
        tcp->abort();
      }
    });
    tcp_.reset();
    udp_.reset();
  }
  reader_.reset();
}

void ClientTunnel::send_message(const Message& msg) {
  send_payload(msg.type, msg.payload);
}

void ClientTunnel::send_payload(MsgType type, util::ByteView payload) {
  // Per-record hot path: wire encoding is built in a pooled buffer so
  // steady-state tunnel traffic allocates nothing.
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes wire = pool.acquire(5 + payload.size());
  if (config_.transport == Transport::kTcp) {
    if (tcp_) {
      frame_into(type, payload, wire);
      tcp_->send(wire);
    }
  } else {
    if (udp_) {
      datagram_into(type, payload, wire);
      udp_->send_to(config_.endpoint_ip, config_.endpoint_port, wire);
    }
  }
  pool.release(std::move(wire));
}

void ClientTunnel::report_initial(bool ok) {
  if (done_reported_) return;
  done_reported_ = true;
  if (done_) done_(ok);
}

void ClientTunnel::attempt_failed() {
  if (failed_ || established_) return;
  failed_ = true;
  host_.simulator().cancel(timeout_timer_);
  host_.simulator().cancel(retransmit_timer_);
  teardown_transport();
  // Roll back the pinned /32 so a failed start() leaves the routing table
  // exactly as it found it (the pin is only load-bearing while a session
  // exists or a reconnect is pending).
  if (pinned_route_ && !config_.auto_reconnect) {
    host_.routes().remove_host(config_.endpoint_ip);
    pinned_route_ = false;
  }
  report_initial(false);
  if (config_.auto_reconnect) schedule_reconnect();
}

void ClientTunnel::session_lost() {
  if (!established_) return;
  established_ = false;
  host_.simulator().tracer().end(trace_session_, trace_actor_,
                                 obs::TraceLayer::kVpn);
  server_authenticated_ = false;
  host_.simulator().cancel(keepalive_timer_);
  abandon_rekey();
  teardown_transport();
  if (tun_ != nullptr) tun_->set_up(false);
  if (config_.route_all_traffic && config_.fail_open) {
    // Fail open: put the pre-VPN default back so the host keeps working —
    // unprotected. The exposure window is exactly what chaos runs measure.
    host_.routes().remove_by_interface("tun0");
    if (saved_default_) host_.routes().add(*saved_default_);
  }
  if (session_handler_) session_handler_(false);
  if (config_.auto_reconnect) schedule_reconnect();
}

void ClientTunnel::schedule_reconnect() {
  if (host_.simulator().scheduled(reconnect_timer_)) return;
  const sim::Time base = backoff_;
  const sim::Time jitter =
      base >= 2 ? reconnect_rng_.uniform_u64(0, base / 2) : 0;
  backoff_ = std::min(base * 2, config_.reconnect_backoff_max);
  reconnect_timer_ =
      host_.simulator().after(base + jitter, [this] { begin_attempt(); });
}

void ClientTunnel::on_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kServerHello: handle_server_hello(msg); return;
    case MsgType::kAssign: handle_assign(msg); return;
    case MsgType::kData: handle_data(msg); return;
    case MsgType::kKeepaliveAck: handle_keepalive_ack(msg); return;
    case MsgType::kRekeyAck: handle_rekey_ack(msg); return;
    default: return;
  }
}

void ClientTunnel::handle_server_hello(const Message& msg) {
  if (failed_ || established_) return;
  if (server_authenticated_) {
    // Our ClientAuth was probably lost: the server re-answered our
    // retransmitted hello. Resend the auth (it is deterministic).
    if (!last_auth_.payload.empty()) send_message(last_auth_);
    return;
  }
  const auto& group = crypto::DhGroup::modp1024();
  if (msg.payload.size() != kRandomLen + group.byte_len + 32) return;

  const util::ByteView server_random = util::ByteView(msg.payload).subspan(0, kRandomLen);
  const util::ByteView server_public =
      util::ByteView(msg.payload).subspan(kRandomLen, group.byte_len);
  const util::ByteView tag =
      util::ByteView(msg.payload).subspan(kRandomLen + group.byte_len);

  // Endpoint authentication: only the holder of the PSK can compute this.
  // A rogue AP terminating our VPN handshake fails right here (§5.2).
  const crypto::Sha256Digest expected =
      server_auth_tag(config_.psk, client_hello_, server_public);
  if (!util::equal_ct(tag, util::ByteView(expected.data(), expected.size()))) {
    attempt_failed();
    return;
  }
  server_authenticated_ = true;

  const util::Bytes shared = dh_->shared_secret_bytes(server_public);
  if (shared.empty()) {
    attempt_failed();
    return;
  }
  const util::ByteView client_random = util::ByteView(client_hello_).subspan(0, kRandomLen);
  keys_ = derive_keys(config_.psk, shared, client_random, server_random);

  Message auth;
  auth.type = MsgType::kClientAuth;
  const crypto::Sha256Digest tag_out =
      client_auth_tag(config_.psk, client_hello_, server_public);
  auth.payload.assign(tag_out.begin(), tag_out.end());
  last_auth_ = auth;
  send_message(auth);
}

void ClientTunnel::handle_assign(const Message& msg) {
  if (established_ || failed_ || !server_authenticated_) return;
  if (msg.payload.size() != 4) return;
  tunnel_ip_ = net::Ipv4Addr((static_cast<std::uint32_t>(msg.payload[0]) << 24) |
                             (static_cast<std::uint32_t>(msg.payload[1]) << 16) |
                             (static_cast<std::uint32_t>(msg.payload[2]) << 8) |
                             msg.payload[3]);
  established_ = true;
  ++counters_.sessions_established;
  host_.simulator().stats().add(stat_sessions_);
  host_.simulator().tracer().begin(trace_session_, trace_actor_,
                                   obs::TraceLayer::kVpn, 0,
                                   counters_.sessions_established);
  if (counters_.sessions_established > 1) {
    host_.simulator().stats().add(stat_reconnects_);
  }
  host_.simulator().cancel(timeout_timer_);
  host_.simulator().cancel(retransmit_timer_);
  bring_up_tun();
  backoff_ = config_.reconnect_backoff_min;
  last_peer_activity_ = host_.simulator().now();
  epoch_started_ = last_peer_activity_;
  if (config_.auto_reconnect && config_.keepalive_interval > 0) {
    keepalive_timer_ = host_.simulator().every(config_.keepalive_interval,
                                               [this] { on_keepalive_tick(); });
  }
  report_initial(true);
  if (session_handler_) session_handler_(true);
}

void ClientTunnel::bring_up_tun() {
  if (tun_ == nullptr) {
    auto tun = std::make_unique<TunIf>("tun0", [this](util::ByteView pkt) {
      util::BufferPool& pool = host_.simulator().buffer_pool();
      util::Bytes record = pool.acquire(8 + pkt.size() + crypto::kAeadTagLen);
      seal_record_into(keys_.client_to_server, next_tx_seq(), pkt, record);
      counters_.bytes_sealed += pkt.size();
      ++counters_.records_out;
      host_.simulator().stats().add(stat_records_out_);
      send_payload(MsgType::kData, record);
      pool.release(std::move(record));
      maybe_rekey();
      return true;
    });
    tun_ = tun.get();
    host_.attach(std::move(tun));
  }
  tun_->set_up(true);
  // Reconnects usually get the previous tunnel address back (the endpoint
  // reuses released IPs), but a different one is possible — reconfigure.
  tun_->configure_ip(tunnel_ip_, net::netmask(32));

  if (config_.route_all_traffic) {
    // The paper's requirement 4: the VPN "must handle all client traffic".
    if (!saved_default_) {
      for (const net::Route& route : host_.routes().entries()) {
        if (route.mask == net::Ipv4Addr::any() && route.ifname != "tun0") {
          saved_default_ = route;
          break;
        }
      }
    }
    host_.routes().remove_default();
    host_.routes().add(net::Route{net::Ipv4Addr::any(), net::Ipv4Addr::any(),
                                  net::Ipv4Addr::any(), "tun0", 50});
  }
}

void ClientTunnel::on_keepalive_tick() {
  if (!established_) return;
  const sim::Time now = host_.simulator().now();
  if (now - last_peer_activity_ >= config_.dead_peer_timeout) {
    ++counters_.dead_peer_events;
    host_.simulator().stats().add(stat_dead_peer_);
    session_lost();
    return;
  }
  static const util::Bytes kProbeBody = {'k', 'a'};
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes record = pool.acquire(8 + kProbeBody.size() + crypto::kAeadTagLen);
  seal_record_into(keys_.client_to_server, next_tx_seq(), kProbeBody, record);
  ++counters_.keepalives_sent;
  host_.simulator().stats().add(stat_keepalives_);
  send_payload(MsgType::kKeepalive, record);
  pool.release(std::move(record));
  maybe_rekey();
}

ClientTunnel::OpenStatus ClientTunnel::open_incoming(util::ByteView record,
                                                     std::uint64_t* seq_out,
                                                     util::Bytes& inner) {
  if (record.size() < 8 + crypto::kAeadTagLen) return OpenStatus::kAuthFail;
  util::ByteReader r(record);
  const std::uint64_t seq = r.u64be();
  if (seq_out != nullptr) *seq_out = seq;
  const std::uint16_t ep = record_epoch(seq);
  const std::uint64_t counter = record_counter(seq);
  const sim::Time now = host_.simulator().now();

  if (ep == key_epoch_) {
    // Window check before the AEAD: a replayed record carries a valid
    // tag, so freshness — not the MAC — is what rejects it.
    if (!rx_window_.check(counter)) return OpenStatus::kReplay;
    if (!open_record_append(keys_.server_to_client, record, seq_out, inner)) {
      return OpenStatus::kAuthFail;
    }
    rx_window_.accept(counter);
    return OpenStatus::kOk;
  }
  if (key_epoch_ > 0 && ep + 1 == key_epoch_ && now < grace_until_) {
    if (!prev_window_.check(counter)) return OpenStatus::kReplay;
    if (!open_record_append(prev_keys_.server_to_client, record, seq_out, inner)) {
      return OpenStatus::kAuthFail;
    }
    prev_window_.accept(counter);
    return OpenStatus::kOk;
  }
  if (rekey_pending_ && ep == key_epoch_ + 1) {
    // The endpoint already switched epochs; its ack may have been lost,
    // but any record that authenticates under the pending keys is equal
    // proof — commit and accept.
    if (!open_record_append(pending_keys_.server_to_client, record, seq_out,
                            inner)) {
      return OpenStatus::kAuthFail;
    }
    commit_rekey();
    rx_window_.accept(counter);
    return OpenStatus::kOk;
  }
  return OpenStatus::kStaleEpoch;
}

void ClientTunnel::record_bad(OpenStatus status) {
  ++counters_.records_bad;
  host_.simulator().stats().add(stat_records_bad_);
  host_.simulator().tracer().instant(trace_record_bad_, trace_actor_,
                                     obs::TraceLayer::kVpn, 0,
                                     static_cast<std::uint64_t>(status));
  switch (status) {
    case OpenStatus::kReplay: ++counters_.records_replayed; break;
    case OpenStatus::kAuthFail: ++counters_.records_auth_fail; break;
    case OpenStatus::kStaleEpoch: ++counters_.records_stale_epoch; break;
    case OpenStatus::kOk: break;
  }
}

void ClientTunnel::maybe_rekey() {
  if (!established_ || rekey_pending_) return;
  const bool by_count = config_.rekey_after_records > 0 &&
                        epoch_tx_records_ >= config_.rekey_after_records;
  const bool by_time =
      config_.rekey_after_time > 0 &&
      host_.simulator().now() - epoch_started_ >= config_.rekey_after_time;
  if (by_count || by_time) start_rekey();
}

void ClientTunnel::start_rekey() {
  rekey_pending_ = true;
  host_.simulator().tracer().begin(trace_rekey_, trace_actor_,
                                   obs::TraceLayer::kVpn, 0, key_epoch_);
  pending_keys_ = next_epoch_keys(keys_);
  // The proposal itself is an ordinary record of the *current* epoch: it
  // burns one counter and is windowed/authenticated like any other. The
  // exact bytes are retained so retransmits don't burn further counters.
  static const util::Bytes kRekeyBody = {'r', 'k'};
  seal_record_into(keys_.client_to_server, next_tx_seq(), kRekeyBody,
                   pending_rekey_record_);
  send_payload(MsgType::kRekey, pending_rekey_record_);
  rekey_timer_ = host_.simulator().every(config_.rekey_retransmit, [this] {
    if (rekey_pending_ && established_) {
      send_payload(MsgType::kRekey, pending_rekey_record_);
    }
  });
}

void ClientTunnel::commit_rekey() {
  prev_keys_ = std::move(keys_);
  prev_window_ = std::move(rx_window_);
  grace_until_ = host_.simulator().now() + config_.rekey_grace;
  keys_ = std::move(pending_keys_);
  key_epoch_ = static_cast<std::uint16_t>(key_epoch_ + 1);
  tx_counter_ = 0;
  epoch_tx_records_ = 0;
  epoch_started_ = host_.simulator().now();
  rx_window_ = ReplayWindow(config_.replay_window);
  host_.simulator().tracer().end(trace_rekey_, trace_actor_,
                                 obs::TraceLayer::kVpn, 0, key_epoch_);
  abandon_rekey();
  ++counters_.rekeys;
}

void ClientTunnel::abandon_rekey() {
  rekey_pending_ = false;
  pending_rekey_record_.clear();
  host_.simulator().cancel(rekey_timer_);
}

void ClientTunnel::handle_rekey_ack(const Message& msg) {
  if (!established_) return;
  std::uint64_t seq = 0;
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes inner = pool.acquire(msg.payload.size());
  // The ack is sealed under the next epoch's s2c key, so the pending-epoch
  // branch of open_incoming both verifies it and commits the rotation.
  const OpenStatus status = open_incoming(msg.payload, &seq, inner);
  pool.release(std::move(inner));
  if (status != OpenStatus::kOk) {
    record_bad(status);
    return;
  }
  last_peer_activity_ = host_.simulator().now();
}

void ClientTunnel::handle_keepalive_ack(const Message& msg) {
  if (!established_) return;
  std::uint64_t seq = 0;
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes inner = pool.acquire(msg.payload.size());
  const OpenStatus status = open_incoming(msg.payload, &seq, inner);
  pool.release(std::move(inner));
  if (status != OpenStatus::kOk) {
    record_bad(status);
    return;
  }
  ++counters_.keepalive_acks;
  host_.simulator().stats().add(stat_keepalive_acks_);
  last_peer_activity_ = host_.simulator().now();
}

void ClientTunnel::handle_data(const Message& msg) {
  if (!established_) return;
  const obs::Profiler::Scope scope(host_.simulator().profiler(), data_scope_);
  ++counters_.records_in;
  host_.simulator().stats().add(stat_records_in_);
  std::uint64_t seq = 0;
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes inner = pool.acquire(msg.payload.size());
  const OpenStatus status = open_incoming(msg.payload, &seq, inner);
  if (status != OpenStatus::kOk) {
    pool.release(std::move(inner));
    record_bad(status);
    return;
  }
  last_peer_activity_ = host_.simulator().now();
  counters_.bytes_decrypted += inner.size();
  // inject() copies at the L2Frame ownership boundary, so the pooled
  // buffer can be released immediately after.
  tun_->inject(inner);
  pool.release(std::move(inner));
}

}  // namespace rogue::vpn
