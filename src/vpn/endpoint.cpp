#include "vpn/endpoint.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace rogue::vpn {

namespace {
/// Period of the lazy UDP-session reaper; only runs while sessions exist.
constexpr sim::Time kReapPeriod = 1 * sim::kSecond;
}  // namespace

Endpoint::Endpoint(net::Host& host, EndpointConfig config)
    : host_(host), config_(std::move(config)) {
  obs::StatsRegistry& stats = host_.simulator().stats();
  stat_sessions_ = stats.counter("vpn.endpoint.sessions_established");
  stat_auth_failures_ = stats.counter("vpn.endpoint.auth_failures");
  stat_records_in_ = stats.counter("vpn.endpoint.records_in");
  stat_records_out_ = stats.counter("vpn.endpoint.records_out");
  stat_records_bad_ = stats.counter("vpn.endpoint.records_bad");
  stat_keepalives_ = stats.counter("vpn.endpoint.keepalives_in");
  data_scope_ = host_.simulator().profiler().intern("vpn.endpoint.data");
  snapshot_hook_ = stats.on_snapshot([this] { flush_lazy_stats(); });
}

Endpoint::~Endpoint() {
  host_.simulator().stats().remove_snapshot_hook(snapshot_hook_);
  host_.simulator().cancel(reap_timer_);
}

void Endpoint::flush_lazy_stats() {
  obs::StatsRegistry& stats = host_.simulator().stats();
  const auto flush = [&stats](LazyStat& ls, std::uint64_t current) {
    if (current == ls.flushed) return;
    if (!ls.interned) {
      ls.id = stats.counter(ls.name);
      ls.interned = true;
    }
    stats.add(ls.id, current - ls.flushed);
    ls.flushed = current;
  };
  flush(lazy_replayed_, counters_.records_replayed);
  flush(lazy_auth_fail_, counters_.records_auth_fail);
  flush(lazy_spoofed_, counters_.records_spoofed_src);
  flush(lazy_stale_epoch_, counters_.records_stale_epoch);
  flush(lazy_rekeys_, counters_.rekeys);
  flush(lazy_roams_, counters_.roams);
  flush(lazy_reaped_, counters_.sessions_reaped);
  // Active-session gauge (high-water tracked by the registry). Interned on
  // first UDP session so TCP-only snapshots keep their exact metric set.
  if (!udp_sessions_.empty() || sessions_gauge_interned_) {
    if (!sessions_gauge_interned_) {
      sessions_gauge_ = stats.gauge("vpn.endpoint.sessions_active");
      sessions_gauge_interned_ = true;
    }
    stats.set(sessions_gauge_, udp_sessions_.size());
  }
}

void Endpoint::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;

  if (!plumbed_) {
    plumbed_ = true;
    // tun device: return traffic for the tunnel network lands here.
    auto tun = std::make_unique<TunIf>(
        "vpn-tun", [this](util::ByteView pkt) { return tun_transmit(pkt); });
    tun_ = tun.get();
    host_.attach(std::move(tun));
    // The tun itself holds the network's .1 address.
    const net::Ipv4Addr tun_ip(config_.tunnel_network.value() | 1u);
    host_.interface("vpn-tun")->configure_ip(tun_ip,
                                             net::netmask(config_.tunnel_prefix));
    host_.routes().add(net::Route{config_.tunnel_network,
                                  net::netmask(config_.tunnel_prefix),
                                  net::Ipv4Addr::any(), "vpn-tun", 0});
    host_.set_ip_forward(true);

    if (config_.snat_to_wire) {
      const net::NetIf* egress = host_.interface(config_.egress_ifname);
      ROGUE_ASSERT_MSG(egress != nullptr, "VPN endpoint: egress interface missing");
      net::Rule snat;
      snat.match.src = config_.tunnel_network;
      snat.match.src_mask = net::netmask(config_.tunnel_prefix);
      snat.match.out_iface = config_.egress_ifname;
      snat.target = net::RuleTarget::kSnat;
      snat.nat_ip = egress->ip();
      host_.netfilter().append(net::Hook::kPostrouting, snat);
    }
  }
  tun_->set_up(true);

  host_.tcp_listen(config_.port,
                   [this](net::TcpConnectionPtr conn) { on_tcp_accept(conn); });

  udp_ = host_.udp_open(config_.port);
  ROGUE_ASSERT_MSG(udp_ != nullptr, "VPN endpoint: UDP port taken");
  udp_->set_rx([this](net::Ipv4Addr src, std::uint16_t sport, util::ByteView data) {
    on_udp_datagram(src, sport, data);
  });
}

void Endpoint::stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;
  host_.tcp().close_listener(config_.port);
  udp_.reset();
  udp_sessions_.clear();
  by_tunnel_ip_.clear();
  host_.simulator().cancel(reap_timer_);
  reap_scheduled_ = false;
  // A restarted endpoint hands out addresses from the top of the pool
  // again, so the first client back gets its old tunnel IP and stalled
  // flows pinned to it resume.
  free_tunnel_ips_.clear();
  next_host_id_ = 2;
  if (tun_ != nullptr) tun_->set_up(false);
}

std::optional<net::Ipv4Addr> Endpoint::allocate_tunnel_ip() {
  // Prefer recently released addresses: a client that dropped its session
  // and re-handshakes gets the same tunnel IP back, which keeps transport
  // connections that survived the gap (stalled, not closed) usable.
  if (!free_tunnel_ips_.empty()) {
    const net::Ipv4Addr ip = free_tunnel_ips_.back();
    free_tunnel_ips_.pop_back();
    return ip;
  }
  const std::uint32_t host_bits = 32 - config_.tunnel_prefix;
  if (next_host_id_ >= (1u << host_bits) - 1) return std::nullopt;
  return net::Ipv4Addr(config_.tunnel_network.value() | next_host_id_++);
}

void Endpoint::on_tcp_accept(net::TcpConnectionPtr conn) {
  if (!running_) return;
  auto session = std::make_shared<Session>();
  session->epoch = epoch_;
  session->rx_window = ReplayWindow(config_.replay_window);
  std::weak_ptr<net::TcpConnection> weak = conn;
  session->send = [this, weak](MsgType type, util::ByteView payload) {
    if (const auto c = weak.lock()) {
      util::BufferPool& pool = host_.simulator().buffer_pool();
      util::Bytes wire = pool.acquire(5 + payload.size());
      frame_into(type, payload, wire);
      c->send(wire);
      pool.release(std::move(wire));
    }
  };

  auto reader = std::make_shared<MessageReader>();
  conn->set_on_data([this, session, reader](util::ByteView data) {
    reader->feed(data);
    while (const auto msg = reader->next()) {
      handle_message(session, *msg);
    }
  });
  conn->set_on_close([this, session] {
    if (session->established && session->epoch == epoch_) {
      by_tunnel_ip_.erase(session->tunnel_ip);
      free_tunnel_ips_.push_back(session->tunnel_ip);
    }
  });
}

void Endpoint::on_udp_datagram(net::Ipv4Addr src, std::uint16_t sport,
                               util::ByteView data) {
  const auto msg = Message::from_datagram(data);
  if (!msg) return;

  if (!running_) return;
  const UdpKey key{src, sport};
  const auto it = udp_sessions_.find(key);
  if (it != udp_sessions_.end()) {
    handle_message(it->second, *msg);
    return;
  }
  // Unknown (addr, port). Only a ClientHello creates session state —
  // anything else is either a roaming client (re-bind on trial auth) or
  // noise; creating sessions for arbitrary datagrams is how the old
  // udp_sessions_ table leaked.
  if (msg->type == MsgType::kClientHello) {
    auto session = std::make_shared<Session>();
    session->epoch = epoch_;
    session->rx_window = ReplayWindow(config_.replay_window);
    session->via_udp = true;
    session->udp_key = key;
    session->created_at = host_.simulator().now();
    session->last_activity = session->created_at;
    auto socket = udp_;
    // The raw pointer is owned by the session holding this closure; the
    // indirection through udp_key is what lets a roam re-target the reply
    // path without rebuilding the closure.
    Session* raw = session.get();
    session->send = [this, socket, raw](MsgType type, util::ByteView payload) {
      util::BufferPool& pool = host_.simulator().buffer_pool();
      util::Bytes wire = pool.acquire(1 + payload.size());
      datagram_into(type, payload, wire);
      socket->send_to(raw->udp_key.first, raw->udp_key.second, wire);
      pool.release(std::move(wire));
    };
    udp_sessions_.emplace(key, session);
    schedule_reap();
    handle_message(session, *msg);
    return;
  }
  if (msg->type == MsgType::kData || msg->type == MsgType::kKeepalive ||
      msg->type == MsgType::kRekey) {
    try_roam(key, *msg);
  }
}

bool Endpoint::trial_authenticates(Session& s, util::ByteView record) {
  if (record.size() < 8 + crypto::kAeadTagLen) return false;
  util::ByteReader r(record);
  const std::uint64_t seq = r.u64be();
  const std::uint16_t ep = record_epoch(seq);
  const std::uint64_t counter = record_counter(seq);
  const sim::Time now = host_.simulator().now();
  const SessionKeys* keys = nullptr;
  const ReplayWindow* window = nullptr;
  if (ep == s.key_epoch) {
    keys = &s.keys;
    window = &s.rx_window;
  } else if (ep + 1 == s.key_epoch && now < s.grace_until) {
    keys = &s.prev_keys;
    window = &s.prev_window;
  } else {
    return false;
  }
  // A replayed-but-authentic record must NOT trigger a re-bind, or a
  // captured datagram replayed from an attacker address would steal the
  // session's reply path.
  if (!window->check(counter)) return false;
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes scratch = pool.acquire(record.size());
  std::uint64_t seq_out = 0;
  const bool ok = open_record_append(keys->client_to_server, record, &seq_out, scratch);
  pool.release(std::move(scratch));
  return ok;
}

void Endpoint::try_roam(const UdpKey& key, const Message& msg) {
  // WireGuard-style path migration: an established client whose source
  // address changed keeps its session iff the record authenticates.
  SessionPtr roamed;
  for (auto& [old_key, session] : udp_sessions_) {
    if (!session->established || session->epoch != epoch_) continue;
    if (trial_authenticates(*session, msg.payload)) {
      roamed = session;
      break;
    }
  }
  if (!roamed) {
    ++counters_.records_spoofed_src;
    ++counters_.records_bad;
    host_.simulator().stats().add(stat_records_bad_);
    return;
  }
  udp_sessions_.erase(roamed->udp_key);
  roamed->udp_key = key;
  udp_sessions_.emplace(key, roamed);
  ++counters_.roams;
  handle_message(roamed, msg);
}

void Endpoint::schedule_reap() {
  if (reap_scheduled_ || udp_sessions_.empty()) return;
  reap_scheduled_ = true;
  reap_timer_ = host_.simulator().after(kReapPeriod, [this] {
    reap_scheduled_ = false;
    reap_sessions();
  });
}

void Endpoint::reap_sessions() {
  const sim::Time now = host_.simulator().now();
  for (auto it = udp_sessions_.begin(); it != udp_sessions_.end();) {
    Session& s = *it->second;
    bool dead = s.epoch != epoch_;
    if (!dead && !s.established) {
      dead = config_.handshake_timeout > 0 &&
             now - s.created_at >= config_.handshake_timeout;
    } else if (!dead) {
      dead = config_.idle_timeout > 0 &&
             now - s.last_activity >= config_.idle_timeout;
    }
    if (dead) {
      if (s.established && s.epoch == epoch_) {
        by_tunnel_ip_.erase(s.tunnel_ip);
        free_tunnel_ips_.push_back(s.tunnel_ip);
      }
      ++counters_.sessions_reaped;
      it = udp_sessions_.erase(it);
    } else {
      ++it;
    }
  }
  if (running_) schedule_reap();
}

void Endpoint::handle_message(const SessionPtr& session, const Message& msg) {
  if (!running_ || session->epoch != epoch_) return;
  switch (msg.type) {
    case MsgType::kClientHello:
      handle_client_hello(session, msg);
      return;
    case MsgType::kClientAuth:
      handle_client_auth(session, msg);
      return;
    case MsgType::kData:
      handle_data(session, msg);
      return;
    case MsgType::kKeepalive:
      handle_keepalive(session, msg);
      return;
    case MsgType::kRekey:
      handle_rekey(session, msg);
      return;
    default:
      return;
  }
}

void Endpoint::handle_client_hello(const SessionPtr& session, const Message& msg) {
  const auto& group = crypto::DhGroup::modp1024();
  if (msg.payload.size() != kRandomLen + group.byte_len) return;
  // Idempotence under datagram loss: a retransmitted identical hello must
  // get the *same* ServerHello back, or the client (already committed to
  // our first reply) can never complete the handshake.
  if (!session->hello_reply.empty() &&
      session->client_hello.size() >= msg.payload.size() &&
      std::equal(msg.payload.begin(), msg.payload.end(),
                 session->client_hello.begin())) {
    session->send(MsgType::kServerHello, session->hello_reply);
    return;
  }
  session->client_hello = msg.payload;

  session->dh = crypto::DhKeyPair::generate(group, host_.simulator().rng());
  const util::Bytes server_public = session->dh->public_bytes();

  util::Bytes server_random(kRandomLen);
  host_.simulator().rng().fill(server_random);

  const util::ByteView client_random =
      util::ByteView(session->client_hello).subspan(0, kRandomLen);
  const util::ByteView client_public =
      util::ByteView(session->client_hello).subspan(kRandomLen);
  const util::Bytes shared = session->dh->shared_secret_bytes(client_public);
  if (shared.empty()) return;  // degenerate public value

  session->keys = derive_keys(config_.psk, shared, client_random, server_random);

  const crypto::Sha256Digest tag =
      server_auth_tag(config_.psk, session->client_hello, server_public);

  session->hello_reply.clear();
  util::ByteWriter w(session->hello_reply);
  w.raw(server_random);
  w.raw(server_public);
  w.raw(util::ByteView(tag.data(), tag.size()));
  // Stash server_public for verifying the client's auth tag.
  session->client_hello.insert(session->client_hello.end(), server_public.begin(),
                               server_public.end());
  session->send(MsgType::kServerHello, session->hello_reply);
}

void Endpoint::handle_client_auth(const SessionPtr& session, const Message& msg) {
  if (session->established) {
    // Duplicate auth after our Assign was lost: resend it.
    if (!session->assign_reply.empty()) {
      session->send(MsgType::kAssign, session->assign_reply);
    }
    return;
  }
  if (session->client_hello.empty()) return;
  const auto& group = crypto::DhGroup::modp1024();
  const std::size_t hello_len = kRandomLen + group.byte_len;
  if (session->client_hello.size() != hello_len + group.byte_len) return;

  const util::ByteView hello =
      util::ByteView(session->client_hello).subspan(0, hello_len);
  const util::ByteView server_public =
      util::ByteView(session->client_hello).subspan(hello_len);
  const crypto::Sha256Digest expected =
      client_auth_tag(config_.psk, hello, server_public);
  if (!util::equal_ct(msg.payload, util::ByteView(expected.data(), expected.size()))) {
    ++counters_.auth_failures;
    host_.simulator().stats().add(stat_auth_failures_);
    return;
  }

  const auto tunnel_ip = allocate_tunnel_ip();
  if (!tunnel_ip) return;
  session->tunnel_ip = *tunnel_ip;
  session->established = true;
  session->last_activity = host_.simulator().now();
  by_tunnel_ip_[*tunnel_ip] = session;
  ++counters_.sessions_established;
  host_.simulator().stats().add(stat_sessions_);

  session->assign_reply.clear();
  util::ByteWriter w(session->assign_reply);
  w.u32be(tunnel_ip->value());
  session->send(MsgType::kAssign, session->assign_reply);
}

Endpoint::OpenStatus Endpoint::open_session_record(Session& s, util::ByteView record,
                                                   std::uint64_t* seq_out,
                                                   util::Bytes& inner) {
  if (record.size() < 8 + crypto::kAeadTagLen) return OpenStatus::kAuthFail;
  util::ByteReader r(record);
  const std::uint64_t seq = r.u64be();
  if (seq_out != nullptr) *seq_out = seq;
  const std::uint16_t ep = record_epoch(seq);
  const std::uint64_t counter = record_counter(seq);
  const sim::Time now = host_.simulator().now();

  SessionKeys* keys = nullptr;
  ReplayWindow* window = nullptr;
  if (ep == s.key_epoch) {
    keys = &s.keys;
    window = &s.rx_window;
  } else if (ep + 1 == s.key_epoch && now < s.grace_until) {
    keys = &s.prev_keys;
    window = &s.prev_window;
  } else {
    return OpenStatus::kStaleEpoch;
  }
  // Window check before the AEAD: a replayed record carries a valid tag,
  // so freshness — not the MAC — is what rejects it.
  if (!window->check(counter)) return OpenStatus::kReplay;
  if (!open_record_append(keys->client_to_server, record, seq_out, inner)) {
    return OpenStatus::kAuthFail;
  }
  window->accept(counter);
  return OpenStatus::kOk;
}

void Endpoint::record_bad(OpenStatus status) {
  ++counters_.records_bad;
  host_.simulator().stats().add(stat_records_bad_);
  switch (status) {
    case OpenStatus::kReplay: ++counters_.records_replayed; break;
    case OpenStatus::kAuthFail: ++counters_.records_auth_fail; break;
    case OpenStatus::kStaleEpoch: ++counters_.records_stale_epoch; break;
    case OpenStatus::kSpoofedSrc: ++counters_.records_spoofed_src; break;
    case OpenStatus::kOk: break;
  }
}

void Endpoint::handle_data(const SessionPtr& session, const Message& msg) {
  if (!session->established) return;
  const obs::Profiler::Scope scope(host_.simulator().profiler(), data_scope_);
  ++counters_.records_in;
  host_.simulator().stats().add(stat_records_in_);

  std::uint64_t seq = 0;
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes inner = pool.acquire(msg.payload.size());
  const OpenStatus status = open_session_record(*session, msg.payload, &seq, inner);
  if (status != OpenStatus::kOk) {
    record_bad(status);
    pool.release(std::move(inner));
    return;
  }
  session->last_activity = host_.simulator().now();
  const auto view = net::Ipv4View::parse(inner);
  // Anti-spoofing: the inner source must be the assigned tunnel address.
  if (view && view->src == session->tunnel_ip) {
    counters_.bytes_decrypted += inner.size();
    // to_packet() copies: the packet's ownership transfers to the host's
    // forwarding path while the pooled buffer is recycled.
    host_.send_packet(view->to_packet());
  } else {
    record_bad(OpenStatus::kSpoofedSrc);
  }
  pool.release(std::move(inner));
}

void Endpoint::handle_keepalive(const SessionPtr& session, const Message& msg) {
  if (!session->established) return;
  std::uint64_t seq = 0;
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes inner = pool.acquire(msg.payload.size());
  const OpenStatus status = open_session_record(*session, msg.payload, &seq, inner);
  pool.release(std::move(inner));
  if (status != OpenStatus::kOk) {
    record_bad(status);
    return;
  }
  session->last_activity = host_.simulator().now();
  ++counters_.keepalives_in;
  host_.simulator().stats().add(stat_keepalives_);

  static const util::Bytes kProbeBody = {'k', 'a'};
  util::Bytes record = pool.acquire(8 + kProbeBody.size() + crypto::kAeadTagLen);
  seal_record_into(session->keys.server_to_client, next_tx_seq(*session),
                   kProbeBody, record);
  session->send(MsgType::kKeepaliveAck, record);
  pool.release(std::move(record));
}

void Endpoint::handle_rekey(const SessionPtr& session, const Message& msg) {
  if (!session->established) return;
  if (msg.payload.size() < 8 + crypto::kAeadTagLen) {
    record_bad(OpenStatus::kAuthFail);
    return;
  }
  util::ByteReader r(msg.payload);
  const std::uint16_t ep = record_epoch(r.u64be());
  const sim::Time now = host_.simulator().now();
  util::BufferPool& pool = host_.simulator().buffer_pool();

  if (ep + 1 == session->key_epoch && now < session->grace_until) {
    // The client retransmitted the kRekey that already rotated us (our ack
    // was lost). The record's counter was consumed by the first copy, so
    // it can't pass the window — verify the MAC under the previous keys
    // directly and resend the cached ack.
    util::Bytes scratch = pool.acquire(msg.payload.size());
    std::uint64_t seq = 0;
    const bool ok = open_record_append(session->prev_keys.client_to_server,
                                       msg.payload, &seq, scratch);
    pool.release(std::move(scratch));
    if (ok && !session->rekey_ack.empty()) {
      session->send(MsgType::kRekeyAck, session->rekey_ack);
    } else if (!ok) {
      record_bad(OpenStatus::kAuthFail);
    }
    return;
  }

  std::uint64_t seq = 0;
  util::Bytes inner = pool.acquire(msg.payload.size());
  const OpenStatus status = open_session_record(*session, msg.payload, &seq, inner);
  pool.release(std::move(inner));
  if (status != OpenStatus::kOk) {
    record_bad(status);
    return;
  }
  if (record_epoch(seq) != session->key_epoch) {
    // A grace-window record of the previous epoch can't propose a rotation
    // we already performed.
    return;
  }
  session->last_activity = now;

  // Rotate: current becomes previous (kept through the grace window so
  // in-flight old-epoch records still decrypt), ratchet forward, reset the
  // per-epoch counter and window.
  session->prev_keys = std::move(session->keys);
  session->prev_window = std::move(session->rx_window);
  session->grace_until = now + config_.rekey_grace;
  session->keys = next_epoch_keys(session->prev_keys);
  session->key_epoch = static_cast<std::uint16_t>(session->key_epoch + 1);
  session->rx_window = ReplayWindow(config_.replay_window);
  session->tx_counter = 0;
  ++counters_.rekeys;

  // Ack sealed under the NEW epoch's s2c key: receiving it proves to the
  // client that we derived the same ratcheted keys.
  static const util::Bytes kRekeyBody = {'r', 'k'};
  session->rekey_ack.clear();
  seal_record_into(session->keys.server_to_client, next_tx_seq(*session),
                   kRekeyBody, session->rekey_ack);
  session->send(MsgType::kRekeyAck, session->rekey_ack);
}

bool Endpoint::tun_transmit(util::ByteView ip_packet) {
  // Ipv4View: only the header is inspected here; no reason to copy the
  // payload just to read the destination address.
  const auto view = net::Ipv4View::parse(ip_packet);
  if (!view) return false;
  const auto it = by_tunnel_ip_.find(view->dst);
  if (it == by_tunnel_ip_.end()) return false;
  Session& session = *it->second;

  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes record = pool.acquire(8 + ip_packet.size() + crypto::kAeadTagLen);
  seal_record_into(session.keys.server_to_client, next_tx_seq(session), ip_packet,
                   record);
  counters_.bytes_sealed += ip_packet.size();
  ++counters_.records_out;
  host_.simulator().stats().add(stat_records_out_);
  session.send(MsgType::kData, record);
  pool.release(std::move(record));
  return true;
}

}  // namespace rogue::vpn
