#include "vpn/endpoint.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace rogue::vpn {

Endpoint::Endpoint(net::Host& host, EndpointConfig config)
    : host_(host), config_(std::move(config)) {
  obs::StatsRegistry& stats = host_.simulator().stats();
  stat_sessions_ = stats.counter("vpn.endpoint.sessions_established");
  stat_auth_failures_ = stats.counter("vpn.endpoint.auth_failures");
  stat_records_in_ = stats.counter("vpn.endpoint.records_in");
  stat_records_out_ = stats.counter("vpn.endpoint.records_out");
  stat_records_bad_ = stats.counter("vpn.endpoint.records_bad");
  stat_keepalives_ = stats.counter("vpn.endpoint.keepalives_in");
  data_scope_ = host_.simulator().profiler().intern("vpn.endpoint.data");
}

void Endpoint::start() {
  if (running_) return;
  running_ = true;
  ++epoch_;

  if (!plumbed_) {
    plumbed_ = true;
    // tun device: return traffic for the tunnel network lands here.
    auto tun = std::make_unique<TunIf>(
        "vpn-tun", [this](util::ByteView pkt) { return tun_transmit(pkt); });
    tun_ = tun.get();
    host_.attach(std::move(tun));
    // The tun itself holds the network's .1 address.
    const net::Ipv4Addr tun_ip(config_.tunnel_network.value() | 1u);
    host_.interface("vpn-tun")->configure_ip(tun_ip,
                                             net::netmask(config_.tunnel_prefix));
    host_.routes().add(net::Route{config_.tunnel_network,
                                  net::netmask(config_.tunnel_prefix),
                                  net::Ipv4Addr::any(), "vpn-tun", 0});
    host_.set_ip_forward(true);

    if (config_.snat_to_wire) {
      const net::NetIf* egress = host_.interface(config_.egress_ifname);
      ROGUE_ASSERT_MSG(egress != nullptr, "VPN endpoint: egress interface missing");
      net::Rule snat;
      snat.match.src = config_.tunnel_network;
      snat.match.src_mask = net::netmask(config_.tunnel_prefix);
      snat.match.out_iface = config_.egress_ifname;
      snat.target = net::RuleTarget::kSnat;
      snat.nat_ip = egress->ip();
      host_.netfilter().append(net::Hook::kPostrouting, snat);
    }
  }
  tun_->set_up(true);

  host_.tcp_listen(config_.port,
                   [this](net::TcpConnectionPtr conn) { on_tcp_accept(conn); });

  udp_ = host_.udp_open(config_.port);
  ROGUE_ASSERT_MSG(udp_ != nullptr, "VPN endpoint: UDP port taken");
  udp_->set_rx([this](net::Ipv4Addr src, std::uint16_t sport, util::ByteView data) {
    on_udp_datagram(src, sport, data);
  });
}

void Endpoint::stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;
  host_.tcp().close_listener(config_.port);
  udp_.reset();
  udp_sessions_.clear();
  by_tunnel_ip_.clear();
  // A restarted endpoint hands out addresses from the top of the pool
  // again, so the first client back gets its old tunnel IP and stalled
  // flows pinned to it resume.
  free_tunnel_ips_.clear();
  next_host_id_ = 2;
  if (tun_ != nullptr) tun_->set_up(false);
}

std::optional<net::Ipv4Addr> Endpoint::allocate_tunnel_ip() {
  // Prefer recently released addresses: a client that dropped its session
  // and re-handshakes gets the same tunnel IP back, which keeps transport
  // connections that survived the gap (stalled, not closed) usable.
  if (!free_tunnel_ips_.empty()) {
    const net::Ipv4Addr ip = free_tunnel_ips_.back();
    free_tunnel_ips_.pop_back();
    return ip;
  }
  const std::uint32_t host_bits = 32 - config_.tunnel_prefix;
  if (next_host_id_ >= (1u << host_bits) - 1) return std::nullopt;
  return net::Ipv4Addr(config_.tunnel_network.value() | next_host_id_++);
}

void Endpoint::on_tcp_accept(net::TcpConnectionPtr conn) {
  if (!running_) return;
  auto session = std::make_shared<Session>();
  session->epoch = epoch_;
  std::weak_ptr<net::TcpConnection> weak = conn;
  session->send = [this, weak](MsgType type, util::ByteView payload) {
    if (const auto c = weak.lock()) {
      util::BufferPool& pool = host_.simulator().buffer_pool();
      util::Bytes wire = pool.acquire(5 + payload.size());
      frame_into(type, payload, wire);
      c->send(wire);
      pool.release(std::move(wire));
    }
  };

  auto reader = std::make_shared<MessageReader>();
  conn->set_on_data([this, session, reader](util::ByteView data) {
    reader->feed(data);
    while (const auto msg = reader->next()) {
      handle_message(session, *msg);
    }
  });
  conn->set_on_close([this, session] {
    if (session->established && session->epoch == epoch_) {
      by_tunnel_ip_.erase(session->tunnel_ip);
      free_tunnel_ips_.push_back(session->tunnel_ip);
    }
  });
}

void Endpoint::on_udp_datagram(net::Ipv4Addr src, std::uint16_t sport,
                               util::ByteView data) {
  const auto msg = Message::from_datagram(data);
  if (!msg) return;

  if (!running_) return;
  auto& session = udp_sessions_[{src, sport}];
  if (!session) {
    session = std::make_shared<Session>();
    session->epoch = epoch_;
    auto socket = udp_;
    session->send = [this, socket, src, sport](MsgType type, util::ByteView payload) {
      util::BufferPool& pool = host_.simulator().buffer_pool();
      util::Bytes wire = pool.acquire(1 + payload.size());
      datagram_into(type, payload, wire);
      socket->send_to(src, sport, wire);
      pool.release(std::move(wire));
    };
  }
  handle_message(session, *msg);
}

void Endpoint::handle_message(const SessionPtr& session, const Message& msg) {
  if (!running_ || session->epoch != epoch_) return;
  switch (msg.type) {
    case MsgType::kClientHello:
      handle_client_hello(session, msg);
      return;
    case MsgType::kClientAuth:
      handle_client_auth(session, msg);
      return;
    case MsgType::kData:
      handle_data(session, msg);
      return;
    case MsgType::kKeepalive:
      handle_keepalive(session, msg);
      return;
    default:
      return;
  }
}

void Endpoint::handle_client_hello(const SessionPtr& session, const Message& msg) {
  const auto& group = crypto::DhGroup::modp1024();
  if (msg.payload.size() != kRandomLen + group.byte_len) return;
  // Idempotence under datagram loss: a retransmitted identical hello must
  // get the *same* ServerHello back, or the client (already committed to
  // our first reply) can never complete the handshake.
  if (!session->hello_reply.empty() &&
      session->client_hello.size() >= msg.payload.size() &&
      std::equal(msg.payload.begin(), msg.payload.end(),
                 session->client_hello.begin())) {
    session->send(MsgType::kServerHello, session->hello_reply);
    return;
  }
  session->client_hello = msg.payload;

  session->dh = crypto::DhKeyPair::generate(group, host_.simulator().rng());
  const util::Bytes server_public = session->dh->public_bytes();

  util::Bytes server_random(kRandomLen);
  host_.simulator().rng().fill(server_random);

  const util::ByteView client_random =
      util::ByteView(session->client_hello).subspan(0, kRandomLen);
  const util::ByteView client_public =
      util::ByteView(session->client_hello).subspan(kRandomLen);
  const util::Bytes shared = session->dh->shared_secret_bytes(client_public);
  if (shared.empty()) return;  // degenerate public value

  session->keys = derive_keys(config_.psk, shared, client_random, server_random);

  const crypto::Sha256Digest tag =
      server_auth_tag(config_.psk, session->client_hello, server_public);

  session->hello_reply.clear();
  util::ByteWriter w(session->hello_reply);
  w.raw(server_random);
  w.raw(server_public);
  w.raw(util::ByteView(tag.data(), tag.size()));
  // Stash server_public for verifying the client's auth tag.
  session->client_hello.insert(session->client_hello.end(), server_public.begin(),
                               server_public.end());
  session->send(MsgType::kServerHello, session->hello_reply);
}

void Endpoint::handle_client_auth(const SessionPtr& session, const Message& msg) {
  if (session->established) {
    // Duplicate auth after our Assign was lost: resend it.
    if (!session->assign_reply.empty()) {
      session->send(MsgType::kAssign, session->assign_reply);
    }
    return;
  }
  if (session->client_hello.empty()) return;
  const auto& group = crypto::DhGroup::modp1024();
  const std::size_t hello_len = kRandomLen + group.byte_len;
  if (session->client_hello.size() != hello_len + group.byte_len) return;

  const util::ByteView hello =
      util::ByteView(session->client_hello).subspan(0, hello_len);
  const util::ByteView server_public =
      util::ByteView(session->client_hello).subspan(hello_len);
  const crypto::Sha256Digest expected =
      client_auth_tag(config_.psk, hello, server_public);
  if (!util::equal_ct(msg.payload, util::ByteView(expected.data(), expected.size()))) {
    ++counters_.auth_failures;
    host_.simulator().stats().add(stat_auth_failures_);
    return;
  }

  const auto tunnel_ip = allocate_tunnel_ip();
  if (!tunnel_ip) return;
  session->tunnel_ip = *tunnel_ip;
  session->established = true;
  by_tunnel_ip_[*tunnel_ip] = session;
  ++counters_.sessions_established;
  host_.simulator().stats().add(stat_sessions_);

  session->assign_reply.clear();
  util::ByteWriter w(session->assign_reply);
  w.u32be(tunnel_ip->value());
  session->send(MsgType::kAssign, session->assign_reply);
}

void Endpoint::handle_data(const SessionPtr& session, const Message& msg) {
  if (!session->established) return;
  const obs::Profiler::Scope scope(host_.simulator().profiler(), data_scope_);
  ++counters_.records_in;
  host_.simulator().stats().add(stat_records_in_);

  std::uint64_t seq = 0;
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes inner = pool.acquire(msg.payload.size());
  bool ok = open_record_append(session->keys.client_to_server, msg.payload,
                               &seq, inner);
  if (ok && seq <= session->last_rx_seq && session->last_rx_seq != 0) {
    ok = false;  // replay / reorder outside policy
  }
  if (ok) {
    session->last_rx_seq = seq;
    const auto view = net::Ipv4View::parse(inner);
    // Anti-spoofing: the inner source must be the assigned tunnel address.
    if (view && view->src == session->tunnel_ip) {
      counters_.bytes_decrypted += inner.size();
      // to_packet() copies: the packet's ownership transfers to the host's
      // forwarding path while the pooled buffer is recycled.
      host_.send_packet(view->to_packet());
    } else {
      ok = false;
    }
  }
  if (!ok) {
    ++counters_.records_bad;
    host_.simulator().stats().add(stat_records_bad_);
  }
  pool.release(std::move(inner));
}

void Endpoint::handle_keepalive(const SessionPtr& session, const Message& msg) {
  if (!session->established) return;
  std::uint64_t seq = 0;
  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes inner = pool.acquire(msg.payload.size());
  const bool ok =
      open_record_append(session->keys.client_to_server, msg.payload, &seq, inner);
  pool.release(std::move(inner));
  if (!ok) {
    ++counters_.records_bad;
    host_.simulator().stats().add(stat_records_bad_);
    return;
  }
  if (seq <= session->last_rx_seq && session->last_rx_seq != 0) {
    ++counters_.records_bad;  // replayed probe
    host_.simulator().stats().add(stat_records_bad_);
    return;
  }
  session->last_rx_seq = seq;
  ++counters_.keepalives_in;
  host_.simulator().stats().add(stat_keepalives_);

  static const util::Bytes kProbeBody = {'k', 'a'};
  util::Bytes record = pool.acquire(8 + kProbeBody.size() + crypto::kAeadTagLen);
  seal_record_into(session->keys.server_to_client, ++session->tx_seq, kProbeBody,
                   record);
  session->send(MsgType::kKeepaliveAck, record);
  pool.release(std::move(record));
}

bool Endpoint::tun_transmit(util::ByteView ip_packet) {
  // Ipv4View: only the header is inspected here; no reason to copy the
  // payload just to read the destination address.
  const auto view = net::Ipv4View::parse(ip_packet);
  if (!view) return false;
  const auto it = by_tunnel_ip_.find(view->dst);
  if (it == by_tunnel_ip_.end()) return false;
  Session& session = *it->second;

  util::BufferPool& pool = host_.simulator().buffer_pool();
  util::Bytes record = pool.acquire(8 + ip_packet.size() + crypto::kAeadTagLen);
  seal_record_into(session.keys.server_to_client, ++session.tx_seq, ip_packet,
                   record);
  counters_.bytes_sealed += ip_packet.size();
  ++counters_.records_out;
  host_.simulator().stats().add(stat_records_out_);
  session.send(MsgType::kData, record);
  pool.release(std::move(record));
  return true;
}

}  // namespace rogue::vpn
