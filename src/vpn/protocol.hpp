// VPN wire protocol: an authenticated-key-exchange handshake plus AEAD
// data records, modelled on the paper's PPP-over-SSH tunnel (§5.3) but
// with the properties §5.2 demands made explicit:
//   1. trustworthy provider      -> pre-shared authenticator (PSK)
//   2. preestablished credentials -> both handshake HMACs keyed by PSK
//   3. endpoint on trusted wire  -> deployment concern (scenario/)
//   4. handles all client traffic -> client routing policy (client.hpp)
//
// Handshake (over TCP stream or UDP datagrams):
//   C->S  kClientHello  { client_random[32], dh_pub[128] }
//   S->C  kServerHello  { server_random[32], dh_pub[128],
//                         server_auth = HMAC(psk, "server-auth" || transcript) }
//   C->S  kClientAuth   { client_auth = HMAC(psk, "client-auth" || transcript) }
//   S->C  kAssign       { tunnel_ip[4] }
// Keys: master = HMAC(psk, dh_shared || client_random || server_random),
// then c2s/s2c AEAD keys via kdf_expand. Data records:
//   kData { seq[8], sealed = AEAD(key_dir, seq, ad = "", inner_ip_packet) }
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/aead.hpp"
#include "crypto/dh.hpp"
#include "crypto/hmac.hpp"
#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace rogue::vpn {

enum class MsgType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kClientAuth = 3,
  kAssign = 4,
  kData = 5,
  // Liveness probes (dead-peer detection). The payload is a sealed record
  // carrying the literal "ka" — sharing the data-record seq space so a
  // replayed probe is rejected exactly like a replayed data record.
  kKeepalive = 6,
  kKeepaliveAck = 7,
};

inline constexpr std::size_t kRandomLen = 32;

struct Message {
  MsgType type = MsgType::kData;
  util::Bytes payload;

  /// Length-prefixed framing for stream transports: [u32 len][u8 type][payload].
  [[nodiscard]] util::Bytes frame() const;
  /// Datagram encoding (no length prefix): [u8 type][payload].
  [[nodiscard]] util::Bytes datagram() const;
  /// Pooled-buffer variants: clear `out` and write the encoding into it.
  void frame_into(util::Bytes& out) const;
  void datagram_into(util::Bytes& out) const;
  [[nodiscard]] static std::optional<Message> from_datagram(util::ByteView raw);
};

/// Wire encodings for a (type, payload) pair without materialising a
/// Message: stream framing [u32 len][u8 type][payload] and the datagram
/// form [u8 type][payload]. `out` is cleared and its capacity reused.
void frame_into(MsgType type, util::ByteView payload, util::Bytes& out);
void datagram_into(MsgType type, util::ByteView payload, util::Bytes& out);

/// Incremental deframer for the TCP transport.
class MessageReader {
 public:
  void feed(util::ByteView data);
  /// Pop the next complete message, if any.
  [[nodiscard]] std::optional<Message> next();

 private:
  util::Bytes buffer_;
};

/// Session keys derived from the handshake.
struct SessionKeys {
  util::Bytes client_to_server;  ///< kAeadKeyLen bytes
  util::Bytes server_to_client;
};

[[nodiscard]] SessionKeys derive_keys(util::ByteView psk, util::ByteView dh_shared,
                                      util::ByteView client_random,
                                      util::ByteView server_random);

/// Transcript MACs binding the handshake to the PSK (endpoint auth).
[[nodiscard]] crypto::Sha256Digest server_auth_tag(util::ByteView psk,
                                                   util::ByteView client_hello,
                                                   util::ByteView server_public);
[[nodiscard]] crypto::Sha256Digest client_auth_tag(util::ByteView psk,
                                                   util::ByteView client_hello,
                                                   util::ByteView server_public);

/// Seal/open one data record (seq doubles as nonce).
[[nodiscard]] util::Bytes seal_record(util::ByteView key, std::uint64_t seq,
                                      util::ByteView inner_packet);
[[nodiscard]] std::optional<util::Bytes> open_record(util::ByteView key,
                                                     util::ByteView record,
                                                     std::uint64_t* seq_out);
/// Pooled-buffer variants: seal_record_into clears `out` and writes the
/// whole record ([seq][ciphertext][tag]) encrypting in place; the open
/// variant appends the inner packet to `out` (false on auth failure).
void seal_record_into(util::ByteView key, std::uint64_t seq,
                      util::ByteView inner_packet, util::Bytes& out);
[[nodiscard]] bool open_record_append(util::ByteView key, util::ByteView record,
                                      std::uint64_t* seq_out, util::Bytes& out);

}  // namespace rogue::vpn
