// VPN wire protocol: an authenticated-key-exchange handshake plus AEAD
// data records, modelled on the paper's PPP-over-SSH tunnel (§5.3) but
// with the properties §5.2 demands made explicit:
//   1. trustworthy provider      -> pre-shared authenticator (PSK)
//   2. preestablished credentials -> both handshake HMACs keyed by PSK
//   3. endpoint on trusted wire  -> deployment concern (scenario/)
//   4. handles all client traffic -> client routing policy (client.hpp)
//
// Handshake (over TCP stream or UDP datagrams):
//   C->S  kClientHello  { client_random[32], dh_pub[128] }
//   S->C  kServerHello  { server_random[32], dh_pub[128],
//                         server_auth = HMAC(psk, "server-auth" || transcript) }
//   C->S  kClientAuth   { client_auth = HMAC(psk, "client-auth" || transcript) }
//   S->C  kAssign       { tunnel_ip[4] }
// Keys: master = HMAC(psk, dh_shared || client_random || server_random),
// then c2s/s2c AEAD keys via kdf_expand. Data records:
//   kData { seq[8], sealed = AEAD(key_dir, seq, ad = "", inner_ip_packet) }
//
// The 64-bit record sequence number is split into a 16-bit key epoch and a
// 48-bit per-epoch counter: seq = (epoch << 48) | counter. Epoch 0 uses
// the handshake-derived keys directly (legacy byte streams are unchanged);
// each kRekey/kRekeyAck exchange ratchets both directional keys forward
// and bumps the epoch, so the (key, nonce) pair never repeats even across
// counter resets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/dh.hpp"
#include "crypto/hmac.hpp"
#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace rogue::vpn {

enum class MsgType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kClientAuth = 3,
  kAssign = 4,
  kData = 5,
  // Liveness probes (dead-peer detection). The payload is a sealed record
  // carrying the literal "ka" — sharing the data-record seq space so a
  // replayed probe is rejected exactly like a replayed data record.
  kKeepalive = 6,
  kKeepaliveAck = 7,
  // Epoch rotation. kRekey is a sealed record under the *current* epoch's
  // c2s key proposing epoch+1; kRekeyAck is sealed under the *new* epoch's
  // s2c key (proving the peer derived it). Both share the record seq space.
  kRekey = 8,
  kRekeyAck = 9,
};

inline constexpr std::size_t kRandomLen = 32;

// ---- Record sequence numbers: (epoch, counter) packing ----------------------

/// High 16 bits of a record seq identify the key epoch.
inline constexpr unsigned kEpochShift = 48;
inline constexpr std::uint64_t kCounterMask = (std::uint64_t{1} << kEpochShift) - 1;

[[nodiscard]] inline constexpr std::uint64_t make_record_seq(std::uint16_t epoch,
                                                             std::uint64_t counter) {
  return (static_cast<std::uint64_t>(epoch) << kEpochShift) |
         (counter & kCounterMask);
}
[[nodiscard]] inline constexpr std::uint16_t record_epoch(std::uint64_t seq) {
  return static_cast<std::uint16_t>(seq >> kEpochShift);
}
[[nodiscard]] inline constexpr std::uint64_t record_counter(std::uint64_t seq) {
  return seq & kCounterMask;
}

// ---- RFC-6479-style sliding anti-replay window ------------------------------

/// Bitmap anti-replay window over per-epoch record counters. Accepts
/// benign reordering anywhere inside the trailing `width` counters while
/// rejecting duplicates and anything older than the window. One window
/// guards one (direction, epoch); reset() it on every epoch switch.
class ReplayWindow {
 public:
  /// `width` is rounded up to a multiple of 64 bits (default 1024).
  explicit ReplayWindow(std::size_t width = 1024);

  /// Would `counter` be accepted? (No state change.)
  [[nodiscard]] bool check(std::uint64_t counter) const;
  /// Accept `counter` if fresh, marking it seen. False on replay (already
  /// seen) or stale (older than the window). Counter 0 is never valid —
  /// senders start at 1, so an all-zero record can't probe the window.
  bool accept(std::uint64_t counter);

  /// Forget everything (epoch switch / session restart).
  void reset();

  [[nodiscard]] std::size_t width() const { return bits_; }
  /// Highest counter accepted so far (0 = none yet).
  [[nodiscard]] std::uint64_t max_seen() const { return max_seen_; }

 private:
  [[nodiscard]] bool bit(std::uint64_t counter) const;
  void set_bit(std::uint64_t counter);

  std::vector<std::uint64_t> bitmap_;
  std::size_t bits_ = 0;
  std::uint64_t max_seen_ = 0;
};

struct Message {
  MsgType type = MsgType::kData;
  util::Bytes payload;

  /// Length-prefixed framing for stream transports: [u32 len][u8 type][payload].
  [[nodiscard]] util::Bytes frame() const;
  /// Datagram encoding (no length prefix): [u8 type][payload].
  [[nodiscard]] util::Bytes datagram() const;
  /// Pooled-buffer variants: clear `out` and write the encoding into it.
  void frame_into(util::Bytes& out) const;
  void datagram_into(util::Bytes& out) const;
  [[nodiscard]] static std::optional<Message> from_datagram(util::ByteView raw);
};

/// Wire encodings for a (type, payload) pair without materialising a
/// Message: stream framing [u32 len][u8 type][payload] and the datagram
/// form [u8 type][payload]. `out` is cleared and its capacity reused.
void frame_into(MsgType type, util::ByteView payload, util::Bytes& out);
void datagram_into(MsgType type, util::ByteView payload, util::Bytes& out);

/// Incremental deframer for the TCP transport.
class MessageReader {
 public:
  void feed(util::ByteView data);
  /// Pop the next complete message, if any.
  [[nodiscard]] std::optional<Message> next();

 private:
  util::Bytes buffer_;
};

/// Session keys derived from the handshake.
struct SessionKeys {
  util::Bytes client_to_server;  ///< kAeadKeyLen bytes
  util::Bytes server_to_client;
};

[[nodiscard]] SessionKeys derive_keys(util::ByteView psk, util::ByteView dh_shared,
                                      util::ByteView client_random,
                                      util::ByteView server_random);

/// One-way ratchet to the next epoch's keys. Both peers derive the same
/// result independently, and the old keys can't be recovered from the new
/// ones (forward secrecy across epochs within a session).
[[nodiscard]] SessionKeys next_epoch_keys(const SessionKeys& current);

/// Transcript MACs binding the handshake to the PSK (endpoint auth).
[[nodiscard]] crypto::Sha256Digest server_auth_tag(util::ByteView psk,
                                                   util::ByteView client_hello,
                                                   util::ByteView server_public);
[[nodiscard]] crypto::Sha256Digest client_auth_tag(util::ByteView psk,
                                                   util::ByteView client_hello,
                                                   util::ByteView server_public);

/// Seal/open one data record (seq doubles as nonce).
[[nodiscard]] util::Bytes seal_record(util::ByteView key, std::uint64_t seq,
                                      util::ByteView inner_packet);
[[nodiscard]] std::optional<util::Bytes> open_record(util::ByteView key,
                                                     util::ByteView record,
                                                     std::uint64_t* seq_out);
/// Pooled-buffer variants: seal_record_into clears `out` and writes the
/// whole record ([seq][ciphertext][tag]) encrypting in place; the open
/// variant appends the inner packet to `out` (false on auth failure).
void seal_record_into(util::ByteView key, std::uint64_t seq,
                      util::ByteView inner_packet, util::Bytes& out);
[[nodiscard]] bool open_record_append(util::ByteView key, util::ByteView record,
                                      std::uint64_t* seq_out, util::Bytes& out);

}  // namespace rogue::vpn
