#include "vpn/protocol.hpp"

#include <algorithm>

namespace rogue::vpn {

ReplayWindow::ReplayWindow(std::size_t width) {
  bits_ = std::max<std::size_t>(64, (width + 63) / 64 * 64);
  bitmap_.assign(bits_ / 64, 0);
}

bool ReplayWindow::bit(std::uint64_t counter) const {
  const std::size_t idx = static_cast<std::size_t>(counter % bits_);
  return (bitmap_[idx / 64] >> (idx % 64)) & 1;
}

void ReplayWindow::set_bit(std::uint64_t counter) {
  const std::size_t idx = static_cast<std::size_t>(counter % bits_);
  bitmap_[idx / 64] |= std::uint64_t{1} << (idx % 64);
}

bool ReplayWindow::check(std::uint64_t counter) const {
  if (counter == 0) return false;
  if (counter > max_seen_) return true;
  if (max_seen_ - counter >= bits_) return false;  // older than the window
  return !bit(counter);
}

bool ReplayWindow::accept(std::uint64_t counter) {
  if (!check(counter)) return false;
  if (counter > max_seen_) {
    // Advance: clear every word the window slides over. A jump of >= bits_
    // wipes the whole bitmap.
    const std::uint64_t advance = counter - max_seen_;
    if (advance >= bits_) {
      std::fill(bitmap_.begin(), bitmap_.end(), 0);
    } else {
      for (std::uint64_t c = max_seen_ + 1; c <= counter; ++c) {
        const std::size_t idx = static_cast<std::size_t>(c % bits_);
        if (idx % 64 == 0) bitmap_[idx / 64] = 0;
      }
    }
    max_seen_ = counter;
  }
  set_bit(counter);
  return true;
}

void ReplayWindow::reset() {
  std::fill(bitmap_.begin(), bitmap_.end(), 0);
  max_seen_ = 0;
}

util::Bytes Message::frame() const {
  util::Bytes out;
  frame_into(out);
  return out;
}

void Message::frame_into(util::Bytes& out) const {
  vpn::frame_into(type, payload, out);
}

void frame_into(MsgType type, util::ByteView payload, util::Bytes& out) {
  out.clear();
  out.reserve(5 + payload.size());
  util::ByteWriter w(out);
  w.u32be(static_cast<std::uint32_t>(1 + payload.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(payload);
}

util::Bytes Message::datagram() const {
  util::Bytes out;
  datagram_into(out);
  return out;
}

void Message::datagram_into(util::Bytes& out) const {
  vpn::datagram_into(type, payload, out);
}

void datagram_into(MsgType type, util::ByteView payload, util::Bytes& out) {
  out.clear();
  out.reserve(1 + payload.size());
  out.push_back(static_cast<std::uint8_t>(type));
  util::append(out, payload);
}

std::optional<Message> Message::from_datagram(util::ByteView raw) {
  if (raw.empty()) return std::nullopt;
  Message m;
  m.type = static_cast<MsgType>(raw[0]);
  m.payload.assign(raw.begin() + 1, raw.end());
  return m;
}

void MessageReader::feed(util::ByteView data) { util::append(buffer_, data); }

std::optional<Message> MessageReader::next() {
  if (buffer_.size() < 5) return std::nullopt;
  const std::uint32_t len = (static_cast<std::uint32_t>(buffer_[0]) << 24) |
                            (static_cast<std::uint32_t>(buffer_[1]) << 16) |
                            (static_cast<std::uint32_t>(buffer_[2]) << 8) |
                            buffer_[3];
  if (len < 1 || len > 1 << 20) {  // corrupt framing: drop everything
    buffer_.clear();
    return std::nullopt;
  }
  if (buffer_.size() < 4 + len) return std::nullopt;
  Message m;
  m.type = static_cast<MsgType>(buffer_[4]);
  m.payload.assign(buffer_.begin() + 5,
                   buffer_.begin() + 4 + static_cast<std::ptrdiff_t>(len));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + 4 + static_cast<std::ptrdiff_t>(len));
  return m;
}

SessionKeys derive_keys(util::ByteView psk, util::ByteView dh_shared,
                        util::ByteView client_random, util::ByteView server_random) {
  util::Bytes seed;
  util::append(seed, dh_shared);
  util::append(seed, client_random);
  util::append(seed, server_random);
  const crypto::Sha256Digest master = crypto::hmac_sha256(psk, seed);
  const util::ByteView master_view(master.data(), master.size());
  SessionKeys keys;
  keys.client_to_server =
      crypto::kdf_expand(master_view, util::to_bytes("c2s"), crypto::kAeadKeyLen);
  keys.server_to_client =
      crypto::kdf_expand(master_view, util::to_bytes("s2c"), crypto::kAeadKeyLen);
  return keys;
}

SessionKeys next_epoch_keys(const SessionKeys& current) {
  SessionKeys next;
  next.client_to_server = crypto::kdf_expand(current.client_to_server,
                                             util::to_bytes("rekey-c2s"),
                                             crypto::kAeadKeyLen);
  next.server_to_client = crypto::kdf_expand(current.server_to_client,
                                             util::to_bytes("rekey-s2c"),
                                             crypto::kAeadKeyLen);
  return next;
}

namespace {
[[nodiscard]] crypto::Sha256Digest auth_tag(util::ByteView psk, std::string_view label,
                                            util::ByteView client_hello,
                                            util::ByteView server_public) {
  util::Bytes transcript;
  util::append(transcript, util::to_bytes(label));
  util::append(transcript, client_hello);
  util::append(transcript, server_public);
  return crypto::hmac_sha256(psk, transcript);
}
}  // namespace

crypto::Sha256Digest server_auth_tag(util::ByteView psk, util::ByteView client_hello,
                                     util::ByteView server_public) {
  return auth_tag(psk, "server-auth", client_hello, server_public);
}

crypto::Sha256Digest client_auth_tag(util::ByteView psk, util::ByteView client_hello,
                                     util::ByteView server_public) {
  return auth_tag(psk, "client-auth", client_hello, server_public);
}

util::Bytes seal_record(util::ByteView key, std::uint64_t seq,
                        util::ByteView inner_packet) {
  util::Bytes out;
  seal_record_into(key, seq, inner_packet, out);
  return out;
}

void seal_record_into(util::ByteView key, std::uint64_t seq,
                      util::ByteView inner_packet, util::Bytes& out) {
  out.clear();
  out.reserve(8 + inner_packet.size() + crypto::kAeadTagLen);
  util::ByteWriter w(out);
  w.u64be(seq);
  // Ciphertext and tag land directly after the seq header; the cipher runs
  // in place in `out`, so the record is built with a single plaintext copy.
  crypto::aead_seal_append(key, seq, {}, inner_packet, out);
}

std::optional<util::Bytes> open_record(util::ByteView key, util::ByteView record,
                                       std::uint64_t* seq_out) {
  util::Bytes out;
  if (!open_record_append(key, record, seq_out, out)) return std::nullopt;
  return out;
}

bool open_record_append(util::ByteView key, util::ByteView record,
                        std::uint64_t* seq_out, util::Bytes& out) {
  if (record.size() < 8) return false;
  util::ByteReader r(record);
  const std::uint64_t seq = r.u64be();
  if (seq_out != nullptr) *seq_out = seq;
  return crypto::aead_open_append(key, seq, {}, r.take_rest(), out);
}

}  // namespace rogue::vpn
