// Open-addressed hash map from non-zero uint64 keys to small values.
//
// Node-based std::unordered_map costs one allocation per insert and one
// free per node at clear/destruction — for the medium's N^2 pair-RSSI
// cache that teardown alone dominated dense-world replica lifecycles.
// This map keeps every slot in one contiguous allocation: inserts never
// allocate (until a capacity doubling), clear() is a memset-style sweep,
// and destruction is a single free.
//
// Deliberately minimal: no erase (callers invalidate logically via epochs
// and drop stale state with clear()), key 0 is reserved as the empty-slot
// sentinel, and values must be trivially copyable so rehashing is a raw
// slot move.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace rogue::util {

template <typename V>
class FlatU64Map {
  static_assert(std::is_trivially_copyable_v<V>,
                "slots are relocated bytewise on rehash");

 public:
  FlatU64Map() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Drop every entry but keep the allocation (steady-state reuse).
  /// No-op when already empty, so clear-per-detach teardown patterns do
  /// not re-sweep a large slot array once per radio.
  void clear() {
    if (size_ == 0) return;
    for (Slot& s : slots_) s.key = 0;
    size_ = 0;
  }

  /// Find-or-insert: returns the value slot for `key` plus whether it was
  /// newly inserted (value-initialized). Mirrors unordered_map::try_emplace
  /// with a default-constructed value, which is the cache-probe idiom.
  std::pair<V*, bool> try_emplace(std::uint64_t key) {
    ROGUE_ASSERT_MSG(key != 0, "key 0 is the empty-slot sentinel");
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return {&s.value, false};
      if (s.key == 0) {
        s.key = key;
        s.value = V{};
        ++size_;
        return {&s.value, true};
      }
      i = (i + 1) & mask;
    }
  }

  /// Lookup without insertion; nullptr when absent.
  [[nodiscard]] const V* find(std::uint64_t key) const {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == 0) return nullptr;
      i = (i + 1) & mask;
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
  };

  /// splitmix64 finalizer: full-avalanche mix so sequential pair keys
  /// (attach_seq << 32 | attach_seq) spread across the table.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  void grow() {
    const std::size_t next = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(next, Slot{});
    const std::size_t mask = next - 1;
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      std::size_t i = mix(s.key) & mask;
      while (slots_[i].key != 0) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace rogue::util
