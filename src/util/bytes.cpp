#include "util/bytes.hpp"

#include <algorithm>
#include <cctype>

namespace rogue::util {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

std::string hex_encode(ByteView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

namespace {
[[nodiscard]] int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<Bytes> hex_decode(std::string_view s) {
  Bytes out;
  out.reserve(s.size() / 2);
  int hi = -1;
  for (char c : s) {
    if (c == ':' || c == ' ') continue;
    const int v = hex_nibble(c);
    if (v < 0) return std::nullopt;
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) return std::nullopt;  // odd digit count
  return out;
}

bool equal_ct(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

void xor_inplace(std::span<std::uint8_t> a, ByteView b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) a[i] ^= b[i];
}

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16be(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32be(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64be(std::uint64_t v) {
  u32be(static_cast<std::uint32_t>(v >> 32));
  u32be(static_cast<std::uint32_t>(v));
}

void ByteWriter::u16le(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::raw(ByteView b) { append(out_, b); }

bool ByteReader::need(std::size_t n) {
  if (!ok_ || in_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!need(1)) return 0;
  return in_[pos_++];
}

std::uint16_t ByteReader::u16be() {
  if (!need(2)) return 0;
  const auto v = static_cast<std::uint16_t>((in_[pos_] << 8) | in_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32be() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | in_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64be() {
  const std::uint64_t hi = u32be();
  const std::uint64_t lo = u32be();
  return (hi << 32) | lo;
}

std::uint16_t ByteReader::u16le() {
  if (!need(2)) return 0;
  const auto v = static_cast<std::uint16_t>(in_[pos_] | (in_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

ByteView ByteReader::raw(std::size_t n) {
  if (!need(n)) return {};
  const ByteView v = in_.subspan(pos_, n);
  pos_ += n;
  return v;
}

ByteView ByteReader::take_rest() {
  const ByteView v = in_.subspan(pos_);
  pos_ = in_.size();
  return v;
}

void ByteReader::skip(std::size_t n) {
  if (need(n)) pos_ += n;
}

}  // namespace rogue::util
