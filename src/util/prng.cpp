#include "util/prng.hpp"

#include <bit>
#include <cmath>

namespace rogue::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Prng::Prng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint32_t Prng::uniform_u32(std::uint32_t bound) {
  if (bound <= 1) return 0;
  // Lemire's multiply-shift with rejection to remove modulo bias.
  while (true) {
    const std::uint32_t x = static_cast<std::uint32_t>(next());
    const std::uint64_t m = static_cast<std::uint64_t>(x) * bound;
    const auto lo = static_cast<std::uint32_t>(m);
    if (lo >= bound || lo >= (-bound) % bound) {
      return static_cast<std::uint32_t>(m >> 32);
    }
  }
}

std::uint64_t Prng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next();  // full 64-bit range
  // Rejection sampling against the largest multiple of `range`.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return lo + (x % range);
}

double Prng::exponential(double mean) {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

void Prng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

Prng Prng::fork() { return Prng(next() ^ 0xa5a5a5a55a5a5a5aULL); }

}  // namespace rogue::util
