// Freelist of Bytes backing stores for the per-frame hot path. Every
// simulated frame used to allocate (and free) its serialization buffer;
// the pool recycles those vectors so steady-state traffic runs without
// touching the allocator. One pool per Simulator: no locking, no
// cross-thread sharing, and determinism is untouched because the pool
// only changes *where* bytes live, never event order or content.
//
// Arena mode (opt-in via BufferPoolConfig::slab_buffers): the pool
// pre-warms its freelist with a fixed slab of equally-sized buffers at
// configure time, the per-replica BufferStore idiom. Steady-state traffic
// then never allocates — every acquire pops a warm buffer in O(1) and
// every release pushes it back in O(1). Demand beyond the slab spills to
// the heap (counted, not fatal), and the high-water mark of in-flight
// buffers is tracked so a sweep can size the slab from a trial run.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/bytes.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define ROGUE_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ROGUE_POOL_ASAN 1
#endif
#endif
#if defined(ROGUE_POOL_ASAN)
#include <sanitizer/asan_interface.h>
#define ROGUE_POOL_POISON(ptr, size) ASAN_POISON_MEMORY_REGION(ptr, size)
#define ROGUE_POOL_UNPOISON(ptr, size) ASAN_UNPOISON_MEMORY_REGION(ptr, size)
#else
#define ROGUE_POOL_POISON(ptr, size) ((void)(ptr), (void)(size))
#define ROGUE_POOL_UNPOISON(ptr, size) ((void)(ptr), (void)(size))
#endif

namespace rogue::util {

struct BufferPoolStats {
  std::uint64_t acquires = 0;    ///< total acquire() calls
  std::uint64_t reuses = 0;      ///< acquires served from the freelist
  std::uint64_t releases = 0;    ///< buffers accepted back
  std::uint64_t discards = 0;    ///< buffers rejected (pool full / oversized)
  std::uint64_t max_pooled = 0;  ///< high-water mark of the freelist depth
  std::uint64_t high_water = 0;  ///< max buffers simultaneously in flight
  /// Acquires the freelist could not serve — heap allocations. In arena
  /// mode a nonzero value after warm-up means the slab is undersized.
  [[nodiscard]] std::uint64_t spills() const { return acquires - reuses; }
};

struct BufferPoolConfig {
  /// Freelist depth bound; raised to slab_buffers in arena mode so the
  /// whole slab can come home.
  std::size_t max_pooled = 128;
  /// Oversized-release bound: keeps pathological one-off giants (bulk
  /// payload copies) from pinning memory forever.
  std::size_t max_capacity = 64 * 1024;
  /// Arena mode when > 0: pre-warm the freelist with this many buffers.
  std::size_t slab_buffers = 0;
  /// Capacity of each pre-warmed buffer (arena mode). 0 picks an MTU-ish
  /// default that covers every in-sim frame without reallocating.
  std::size_t buffer_capacity = 0;
  /// Overwrite returned buffers with 0xA5 so use-after-release reads are
  /// loud garbage instead of stale-but-plausible frame bytes.
  bool poison_on_release = false;
};

class BufferPool {
 public:
  explicit BufferPool(std::size_t max_pooled = 128,
                      std::size_t max_capacity = 64 * 1024) {
    config_.max_pooled = max_pooled;
    config_.max_capacity = max_capacity;
  }

  explicit BufferPool(const BufferPoolConfig& config) { configure(config); }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool() {
    // ASan: pooled buffers sit poisoned while idle; hand clean memory back
    // to the allocator.
    for (Bytes& b : free_) ROGUE_POOL_UNPOISON(b.data(), b.capacity());
  }

  /// Apply a new configuration; in arena mode this pre-warms the freelist
  /// (the only allocations the pool itself ever performs). Meant for
  /// replica setup, before traffic starts; pooled buffers are kept.
  void configure(const BufferPoolConfig& config) {
    config_ = config;
    if (config_.slab_buffers > 0) {
      if (config_.buffer_capacity == 0) config_.buffer_capacity = 2048;
      config_.max_pooled = std::max(config_.max_pooled, config_.slab_buffers);
      config_.max_capacity =
          std::max(config_.max_capacity, config_.buffer_capacity);
      while (free_.size() < config_.slab_buffers) {
        Bytes b;
        b.reserve(config_.buffer_capacity);
        ROGUE_POOL_POISON(b.data(), b.capacity());
        free_.push_back(std::move(b));
      }
      stats_.max_pooled = std::max<std::uint64_t>(stats_.max_pooled, free_.size());
    }
  }

  /// Get an empty buffer with at least `reserve_hint` capacity. The buffer
  /// is an ordinary Bytes: callers that never release() it leak nothing.
  [[nodiscard]] Bytes acquire(std::size_t reserve_hint = 0) {
    ++stats_.acquires;
    ++in_flight_;
    if (in_flight_ > stats_.high_water) stats_.high_water = in_flight_;
    Bytes out;
    if (!free_.empty()) {
      ++stats_.reuses;
      out = std::move(free_.back());
      free_.pop_back();
      ROGUE_POOL_UNPOISON(out.data(), out.capacity());
      out.clear();
    }
    if (out.capacity() < reserve_hint) out.reserve(reserve_hint);
    return out;
  }

  /// Return a buffer's backing store for reuse. Contents are dropped; the
  /// caller must not hold views into it past this call.
  void release(Bytes&& buf) {
    // Callers also release buffers that never came from acquire() (frames
    // handed in by application code), so in-flight is a floor-clamped gauge.
    if (in_flight_ > 0) --in_flight_;
    if (buf.capacity() == 0 || buf.capacity() > config_.max_capacity ||
        free_.size() >= config_.max_pooled) {
      ++stats_.discards;  // caller's (moved-from) vector frees it as usual
      return;
    }
    ++stats_.releases;
    if (config_.poison_on_release && !buf.empty()) {
      std::memset(buf.data(), 0xA5, buf.size());
    }
    buf.clear();
    ROGUE_POOL_POISON(buf.data(), buf.capacity());
    free_.push_back(std::move(buf));
    if (free_.size() > stats_.max_pooled) stats_.max_pooled = free_.size();
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] const BufferPoolConfig& config() const { return config_; }
  [[nodiscard]] const BufferPoolStats& stats() const { return stats_; }

 private:
  std::vector<Bytes> free_;
  std::size_t in_flight_ = 0;
  BufferPoolConfig config_;
  BufferPoolStats stats_;
};

}  // namespace rogue::util
