// Freelist of Bytes backing stores for the per-frame hot path. Every
// simulated frame used to allocate (and free) its serialization buffer;
// the pool recycles those vectors so steady-state traffic runs without
// touching the allocator. One pool per Simulator: no locking, no
// cross-thread sharing, and determinism is untouched because the pool
// only changes *where* bytes live, never event order or content.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace rogue::util {

struct BufferPoolStats {
  std::uint64_t acquires = 0;    ///< total acquire() calls
  std::uint64_t reuses = 0;      ///< acquires served from the freelist
  std::uint64_t releases = 0;    ///< buffers accepted back
  std::uint64_t discards = 0;    ///< buffers rejected (pool full / oversized)
  std::uint64_t max_pooled = 0;  ///< high-water mark of the freelist depth
};

class BufferPool {
 public:
  /// `max_pooled` bounds freelist depth; `max_capacity` keeps pathological
  /// one-off giants (bulk payload copies) from pinning memory forever.
  explicit BufferPool(std::size_t max_pooled = 128,
                      std::size_t max_capacity = 64 * 1024)
      : max_pooled_(max_pooled), max_capacity_(max_capacity) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Get an empty buffer with at least `reserve_hint` capacity. The buffer
  /// is an ordinary Bytes: callers that never release() it leak nothing.
  [[nodiscard]] Bytes acquire(std::size_t reserve_hint = 0) {
    ++stats_.acquires;
    Bytes out;
    if (!free_.empty()) {
      ++stats_.reuses;
      out = std::move(free_.back());
      free_.pop_back();
      out.clear();
    }
    if (out.capacity() < reserve_hint) out.reserve(reserve_hint);
    return out;
  }

  /// Return a buffer's backing store for reuse. Contents are dropped; the
  /// caller must not hold views into it past this call.
  void release(Bytes&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > max_capacity_ ||
        free_.size() >= max_pooled_) {
      ++stats_.discards;  // caller's (moved-from) vector frees it as usual
      return;
    }
    ++stats_.releases;
    buf.clear();
    free_.push_back(std::move(buf));
    if (free_.size() > stats_.max_pooled) stats_.max_pooled = free_.size();
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  [[nodiscard]] const BufferPoolStats& stats() const { return stats_; }

 private:
  std::vector<Bytes> free_;
  std::size_t max_pooled_;
  std::size_t max_capacity_;
  BufferPoolStats stats_;
};

}  // namespace rogue::util
