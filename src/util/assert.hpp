// Project assertion macro: always on (benchmarked code paths are cheap
// enough), aborts with location so failures in deep event callbacks are
// diagnosable.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rogue::util::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ROGUE_ASSERT failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}
}  // namespace rogue::util::detail

#define ROGUE_ASSERT(expr)                                                    \
  do {                                                                        \
    if (!(expr)) ::rogue::util::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define ROGUE_ASSERT_MSG(expr, msg)                                           \
  do {                                                                        \
    if (!(expr))                                                              \
      ::rogue::util::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
