// Minimal "{}"-placeholder string formatting (std::format is unavailable
// on the GCC 12 toolchain this project targets). Each "{}" in the format
// string is replaced by the next argument streamed through operator<<.
// Extra placeholders render as-is; extra arguments are appended.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace rogue::util {

namespace detail {
inline void format_impl(std::ostringstream& out, std::string_view fmt) {
  out << fmt;
}

template <typename First, typename... Rest>
void format_impl(std::ostringstream& out, std::string_view fmt, First&& first,
                 Rest&&... rest) {
  const std::size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out << fmt << std::forward<First>(first);
    static_cast<void>((out << ... << std::forward<Rest>(rest)));
    return;
  }
  out << fmt.substr(0, pos) << std::forward<First>(first);
  format_impl(out, fmt.substr(pos + 2), std::forward<Rest>(rest)...);
}
}  // namespace detail

template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, Args&&... args) {
  std::ostringstream out;
  detail::format_impl(out, fmt, std::forward<Args>(args)...);
  return out.str();
}

}  // namespace rogue::util
