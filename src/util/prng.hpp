// Deterministic PRNG used for every random decision in the simulation.
// xoshiro256** seeded via splitmix64; never seeded from wall-clock so
// simulations replay bit-for-bit from a trial seed.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace rogue::util {

/// splitmix64 step; also used standalone for seed derivation / hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator, so it can drive <random> too.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  // The three hot-path draws are defined inline: the medium's delivery
  // loop makes one or two per receiver visit, and keeping them in-TU lets
  // the compiler hold the xoshiro state in registers across the loop.
  std::uint64_t next() {
    const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return result;
  }
  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling.
  std::uint32_t uniform_u32(std::uint32_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);
  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }
  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);
  /// Fill a span with random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Derive an independent child generator (for per-entity streams).
  [[nodiscard]] Prng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace rogue::util
