// Minimal leveled logger. Simulation components log through a shared sink;
// tests silence it, examples turn it up. Not thread-safe by design: each
// simulation (and therefore each logger use) is confined to one thread.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "util/fmt.hpp"

namespace rogue::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Global log configuration (per-process; experiments run trials in
/// worker threads but set the level once before spawning).
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static LogLevel level();
  static void set_level(LogLevel level);
  /// Replace the output sink (default writes to stderr). Pass nullptr to
  /// restore the default.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view msg);

  template <typename... Args>
  static void log(LogLevel lvl, std::string_view fmt, Args&&... args) {
    if (lvl < level()) return;
    write(lvl, format(fmt, std::forward<Args>(args)...));
  }
};

#define ROGUE_LOG_TRACE(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kTrace, __VA_ARGS__)
#define ROGUE_LOG_DEBUG(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kDebug, __VA_ARGS__)
#define ROGUE_LOG_INFO(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kInfo, __VA_ARGS__)
#define ROGUE_LOG_WARN(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kWarn, __VA_ARGS__)
#define ROGUE_LOG_ERROR(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kError, __VA_ARGS__)

}  // namespace rogue::util
