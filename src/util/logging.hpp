// Minimal leveled logger. Simulation components log through a shared sink;
// tests silence it, examples turn it up. Thread-safe: the level is an
// atomic and the sink is mutex-guarded, so parallel sweep replicas may log
// concurrently (each replica's own simulation is still single-threaded).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "util/fmt.hpp"

namespace rogue::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Parse "trace" / "debug" / "info" / "warn" / "error" / "off"
/// (case-insensitive); nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

/// Global log configuration (per-process; experiments run trials in
/// worker threads but set the level once before spawning).
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static LogLevel level();
  static void set_level(LogLevel level);
  /// Replace the output sink (default writes to stderr). Pass nullptr to
  /// restore the default.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view msg);

  /// Apply the ROGUE_LOG environment variable (if set and parseable) to
  /// the global level. Examples call this before parsing --log-level, so
  /// the flag wins over the environment.
  static void init_from_env();

  /// CLI bootstrap shared by every example binary: applies ROGUE_LOG, then
  /// consumes "--log-level X" / "--log-level=X" out of argv (compacting it
  /// so positional parsing downstream is unaffected). Returns false — with
  /// a message on stderr — when the flag's value does not parse.
  static bool init_from_cli(int& argc, char** argv);

  template <typename... Args>
  static void log(LogLevel lvl, std::string_view fmt, Args&&... args) {
    if (lvl < level()) return;
    write(lvl, format(fmt, std::forward<Args>(args)...));
  }
};

#define ROGUE_LOG_TRACE(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kTrace, __VA_ARGS__)
#define ROGUE_LOG_DEBUG(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kDebug, __VA_ARGS__)
#define ROGUE_LOG_INFO(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kInfo, __VA_ARGS__)
#define ROGUE_LOG_WARN(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kWarn, __VA_ARGS__)
#define ROGUE_LOG_ERROR(...) ::rogue::util::Log::log(::rogue::util::LogLevel::kError, __VA_ARGS__)

}  // namespace rogue::util
