// Fixed-size worker pool + parallel_for used to run independent simulation
// trials concurrently during experiment sweeps. Each task owns its entire
// world (simulator, hosts, PRNG), so workers share nothing but the queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rogue::util {

class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; tasks must not throw (simulation errors assert).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Run body(i) for i in [0, n) across the pool; blocks until done.
/// Indices are handed out dynamically (good for uneven trial costs).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Convenience: one-shot pool sized to hardware.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Map i -> fn(i) for i in [0, n) across the pool and return the results
/// *in index order*, independent of which worker computed what — the
/// property the sweep runner's determinism guarantee is built on.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> results(n);
  parallel_for(pool, n, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace rogue::util
