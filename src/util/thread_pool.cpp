#include "util/thread_pool.hpp"

#include <atomic>

namespace rogue::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = std::min(pool.size(), n);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([next, n, &body] {
      while (true) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  ThreadPool pool;
  parallel_for(pool, n, body);
}

}  // namespace rogue::util
