// Small statistics helpers for experiment harnesses: streaming mean/stddev
// (Welford), min/max, percentiles over retained samples, and a fixed-width
// console table printer so every bench prints uniform, diffable output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rogue::util {

/// Streaming accumulator (Welford) that also retains samples for quantiles.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }
  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }

  /// Fold another accumulator into this one (Chan's parallel Welford
  /// combine; retained samples are concatenated). Merging the same
  /// summaries in the same order is bit-reproducible, which is what the
  /// sweep runner relies on: workers accumulate per-replica, the runner
  /// merges in replica order regardless of which thread ran what.
  void merge(const Summary& other);

 private:
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width text table; column widths auto-fit content.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with column separators and a header rule.
  [[nodiscard]] std::string to_string() const;
  /// Print to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style %.*f with trailing-zero trim, for table cells.
[[nodiscard]] std::string fmt_double(double v, int digits = 3);
/// "12.3%" style.
[[nodiscard]] std::string fmt_percent(double fraction, int digits = 1);
/// Human-readable byte count ("1.5 KiB").
[[nodiscard]] std::string fmt_bytes(std::uint64_t n);

}  // namespace rogue::util
