#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace rogue::util {

bool Json::as_bool() const {
  ROGUE_ASSERT_MSG(type_ == Type::kBool, "json: not a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  ROGUE_ASSERT_MSG(type_ == Type::kInt, "json: not an integer");
  return int_;
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  ROGUE_ASSERT_MSG(type_ == Type::kDouble, "json: not a number");
  return double_;
}

const std::string& Json::as_string() const {
  ROGUE_ASSERT_MSG(type_ == Type::kString, "json: not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  ROGUE_ASSERT_MSG(type_ == Type::kArray, "json: not an array");
  return array_;
}

const std::vector<Json::Member>& Json::members() const {
  ROGUE_ASSERT_MSG(type_ == Type::kObject, "json: not an object");
  return object_;
}

void Json::push_back(Json v) {
  ROGUE_ASSERT_MSG(type_ == Type::kArray, "json: push_back on non-array");
  array_.push_back(std::move(v));
}

void Json::set(std::string_view key, Json v) {
  ROGUE_ASSERT_MSG(type_ == Type::kObject, "json: set on non-object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray: return array_.size();
    case Type::kObject: return object_.size();
    case Type::kString: return string_.size();
    default: return 0;
  }
}

namespace {

void dump_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the convention
    out += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips every double but prints noisy tails; try shorter
  // precisions first and keep the first one that parses back exactly.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Type::kDouble: dump_double(out, double_); break;
    case Type::kString: dump_string(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        dump_string(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    skip_ws();
    auto v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't': return consume_literal("true") ? std::optional(Json(true)) : std::nullopt;
      case 'f': return consume_literal("false") ? std::optional(Json(false)) : std::nullopt;
      case 'n': return consume_literal("null") ? std::optional(Json()) : std::nullopt;
      default: return parse_number();
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Reports are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return std::nullopt;  // raw control character
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // RFC 8259: a leading zero may only be followed by '.', 'e'/'E', or end.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      return std::nullopt;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return std::nullopt;
    if (integral) {
      std::int64_t v = 0;
      const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && end == tok.data() + tok.size()) return Json(v);
      // fall through to double for out-of-range integers
    }
    double d = 0.0;
    const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || end != tok.data() + tok.size()) return std::nullopt;
    return Json(d);
  }

  std::optional<Json> parse_array(int depth) {
    if (!consume('[')) return std::nullopt;
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> parse_object(int depth) {
    if (!consume('{')) return std::nullopt;
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      out.set(*key, std::move(*v));
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace rogue::util
