// Minimal JSON value type for machine-readable experiment reports: enough
// of RFC 8259 to dump and re-parse the sweep runner's output (objects,
// arrays, strings, doubles, integers, bools, null). Object keys preserve
// insertion order so serialized reports are byte-stable across runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rogue::util {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,     ///< stored exactly; dumps without a decimal point
    kDouble,
    kString,
    kArray,
    kObject,
  };

  using Member = std::pair<std::string, Json>;

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(std::uint64_t v) : type_(Type::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  // Accessors assert on type mismatch (reports are trusted input; the
  // parser is the validation layer).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  ///< kInt widens to double
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Append to an array value.
  void push_back(Json v);
  /// Set/overwrite an object member (insertion order preserved).
  void set(std::string_view key, Json v);
  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] std::size_t size() const;

  /// Serialize. indent < 0 emits compact one-line output; indent >= 0
  /// pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parse of a complete document; nullopt on any syntax error.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<Member> object_;
};

}  // namespace rogue::util
