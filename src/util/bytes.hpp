// Byte-buffer primitives: owning buffers, hex encoding, and bounds-checked
// big-endian readers/writers used by every wire format in the project.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rogue::util {

/// Owning, growable byte sequence. Alias so wire-format code reads naturally.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over bytes (non-owning).
using ByteView = std::span<const std::uint8_t>;

/// Build a Bytes from a string literal / std::string (no NUL appended).
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Interpret bytes as text (lossy for non-ASCII; used for HTTP payloads).
[[nodiscard]] std::string to_string(ByteView b);

/// Lower-case hex, no separators ("deadbeef").
[[nodiscard]] std::string hex_encode(ByteView b);

/// Parse hex (accepts upper/lower, optional ':' or ' ' separators).
/// Returns nullopt on bad characters or odd digit count.
[[nodiscard]] std::optional<Bytes> hex_decode(std::string_view s);

/// Constant-time-ish equality (length leak only); for MAC/checksum checks.
[[nodiscard]] bool equal_ct(ByteView a, ByteView b);

/// XOR b into a (a ^= b), sizes must match.
void xor_inplace(std::span<std::uint8_t> a, ByteView b);

/// Append the contents of src to dst.
void append(Bytes& dst, ByteView src);

/// Bounds-checked sequential writer producing big-endian integers.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v);
  void u16be(std::uint16_t v);
  void u32be(std::uint32_t v);
  void u64be(std::uint64_t v);
  void u16le(std::uint16_t v);
  void raw(ByteView b);

  [[nodiscard]] std::size_t written() const { return out_.size(); }

 private:
  Bytes& out_;  // NOLINT(*-avoid-const-or-ref-data-members) writer is scoped
};

/// Bounds-checked sequential reader; `ok()` goes false on any overrun and
/// subsequent reads return zeros, so parsers can check once at the end.
class ByteReader {
 public:
  explicit ByteReader(ByteView in) : in_(in) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16be();
  [[nodiscard]] std::uint32_t u32be();
  [[nodiscard]] std::uint64_t u64be();
  [[nodiscard]] std::uint16_t u16le();
  /// Read exactly n bytes; returns empty view and poisons the reader if short.
  [[nodiscard]] ByteView raw(std::size_t n);
  /// All bytes not yet consumed (does not advance).
  [[nodiscard]] ByteView rest() const { return in_.subspan(pos_); }
  /// Consume the remainder.
  [[nodiscard]] ByteView take_rest();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  void skip(std::size_t n);

 private:
  [[nodiscard]] bool need(std::size_t n);

  ByteView in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace rogue::util
