#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace rogue::util {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  sum_ += x;
  const double n = static_cast<double>(samples_.size());
  const double delta = x - mean_;
  mean_ += delta / n;
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (samples_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(samples_.size() - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  ROGUE_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  ROGUE_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

void Summary::merge(const Summary& other) {
  if (other.samples_.empty()) return;
  if (samples_.empty()) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(samples_.size());
  const double nb = static_cast<double>(other.samples_.size());
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  sum_ += other.sum_;
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

double Summary::percentile(double q) const {
  ROGUE_ASSERT(!samples_.empty());
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double idx = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  ROGUE_ASSERT_MSG(cells.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(width[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += "|";
    rule.append(width[c] + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

std::string fmt_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string fmt_bytes(std::uint64_t n) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(n);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(n));
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%.1f %s", v, kUnits[unit]);
  return buf;
}

}  // namespace rogue::util
