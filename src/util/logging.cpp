#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace rogue::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
Log::Sink& sink_storage() {
  static Log::Sink sink;
  return sink;
}
}  // namespace

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Log::set_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl), std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  const std::lock_guard lock(g_sink_mutex);
  sink_storage() = std::move(sink);
}

void Log::init_from_env() {
  const char* env = std::getenv("ROGUE_LOG");
  if (env == nullptr) return;
  if (const auto lvl = parse_log_level(env)) set_level(*lvl);
}

bool Log::init_from_cli(int& argc, char** argv) {
  init_from_env();
  bool ok = true;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    bool have_value = false;
    if (arg == "--log-level") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --log-level\n");
        ok = false;
        continue;
      }
      value = argv[++i];
      have_value = true;
    } else if (arg.substr(0, 12) == "--log-level=") {
      value = arg.substr(12);
      have_value = true;
    }
    if (!have_value) {
      argv[out++] = argv[i];
      continue;
    }
    if (const auto lvl = parse_log_level(value)) {
      set_level(*lvl);
    } else {
      std::fprintf(stderr, "bad --log-level: %.*s\n",
                   static_cast<int>(value.size()), value.data());
      ok = false;
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return ok;
}

void Log::write(LogLevel lvl, std::string_view msg) {
  const std::lock_guard lock(g_sink_mutex);
  if (auto& sink = sink_storage()) {
    sink(lvl, msg);
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(to_string(lvl).size()),
               to_string(lvl).data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace rogue::util
