#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace rogue::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
Log::Sink& sink_storage() {
  static Log::Sink sink;
  return sink;
}
}  // namespace

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Log::set_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl), std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  const std::lock_guard lock(g_sink_mutex);
  sink_storage() = std::move(sink);
}

void Log::write(LogLevel lvl, std::string_view msg) {
  const std::lock_guard lock(g_sink_mutex);
  if (auto& sink = sink_storage()) {
    sink(lvl, msg);
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(to_string(lvl).size()),
               to_string(lvl).data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace rogue::util
