// Beacon fingerprint auditing (arXiv 1302.6274 §III: WIDS signature
// checks): every beacon and probe response heard is compared field-by-
// field against the administrator's AP inventory. A rogue advertising the
// corporate SSID from its own BSSID, on the wrong channel, with the wrong
// beacon interval or capability/privacy bits, is flagged on the first
// off-book frame. A *perfect* clone (same BSSID, channel, interval,
// capabilities) passes — countering that is the RSSI-profile and
// probe-timing detectors' job, which is the point of running a panel.
#pragma once

#include <vector>

#include "detect/detector.hpp"

namespace rogue::detect {

class FingerprintDetector final : public Detector {
 public:
  FingerprintDetector() = default;

  [[nodiscard]] std::string_view name() const override { return "fingerprint"; }
  void attach(const DetectorEnv& env) override;
  void observe(const dot11::FrameView& frame, const phy::RxInfo& info) override;

 private:
  std::vector<TrustedAp> inventory_;
};

}  // namespace rogue::detect
