// Wired-side rogue indication (§2.3: "monitoring the traffic on the wired
// LAN can also aid in detection of Rogue APs"): a span (mirror) port on
// the wired segment keeping a MAC inventory. New, unregistered source
// MACs are flagged for the administrator.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "detect/detector.hpp"
#include "net/addr.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace rogue::detect {

struct WiredFinding {
  sim::Time time = 0;
  net::MacAddr mac;
};

class WiredMonitor final : public Detector {
 public:
  WiredMonitor() = default;
  /// Legacy convenience: installs itself as the segment's span tap.
  WiredMonitor(sim::Simulator& simulator, net::L2Segment& segment,
               std::vector<net::MacAddr> known_macs);

  [[nodiscard]] std::string_view name() const override { return "wired"; }
  /// Uses env.wired / env.known_wired_macs; no-op tap when the scenario
  /// has no monitored segment.
  void attach(const DetectorEnv& env) override;

  void add_known(net::MacAddr mac) { known_.insert(mac); }

  [[nodiscard]] const std::vector<WiredFinding>& unknown_macs() const {
    return findings_;
  }
  [[nodiscard]] const std::set<net::MacAddr>& seen_macs() const { return seen_; }

 private:
  void on_frame(const net::L2Frame& frame);

  std::set<net::MacAddr> known_;
  std::set<net::MacAddr> seen_;
  std::vector<WiredFinding> findings_;
};

}  // namespace rogue::detect
