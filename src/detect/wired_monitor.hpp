// Wired-side rogue indication (§2.3: "monitoring the traffic on the wired
// LAN can also aid in detection of Rogue APs"): a span (mirror) port on
// the wired segment keeping a MAC inventory. New, unregistered source
// MACs are flagged for the administrator.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "net/addr.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace rogue::detect {

struct WiredFinding {
  sim::Time time = 0;
  net::MacAddr mac;
};

class WiredMonitor {
 public:
  /// Installs itself as the segment's span (mirror) tap.
  WiredMonitor(sim::Simulator& simulator, net::L2Segment& segment,
               std::vector<net::MacAddr> known_macs);

  WiredMonitor(const WiredMonitor&) = delete;
  WiredMonitor& operator=(const WiredMonitor&) = delete;

  void add_known(net::MacAddr mac) { known_.insert(mac); }

  [[nodiscard]] const std::vector<WiredFinding>& unknown_macs() const {
    return findings_;
  }
  [[nodiscard]] const std::set<net::MacAddr>& seen_macs() const { return seen_; }
  [[nodiscard]] std::uint64_t frames_observed() const { return frames_; }

 private:
  sim::Simulator& sim_;
  std::set<net::MacAddr> known_;
  std::set<net::MacAddr> seen_;
  std::set<net::MacAddr> reported_;
  std::vector<WiredFinding> findings_;
  std::uint64_t frames_ = 0;
};

}  // namespace rogue::detect
