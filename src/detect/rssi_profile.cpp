#include "detect/rssi_profile.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace rogue::detect {

namespace {
std::string fmt_dbm(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}
}  // namespace

void RssiProfileDetector::attach(const DetectorEnv& env) {
  Detector::attach(env);
  watched_.clear();
  for (const TrustedAp& ap : env.inventory) watched_.insert(ap.bssid);
  open_radios(env);
}

void RssiProfileDetector::observe(const dot11::FrameView& frame,
                                  const phy::RxInfo& info) {
  ++frames_;
  if (!watched_.contains(frame.addr2)) return;

  Profile& p = profiles_[frame.addr2];
  if (p.samples < config_.min_samples) {
    ++p.samples;
    p.mean += (info.rssi_dbm - p.mean) / static_cast<double>(p.samples);
    return;
  }
  const double deviation = std::abs(info.rssi_dbm - p.mean);
  if (deviation > config_.threshold_db &&
      first_alert(frame.addr2, AlertKind::kRssiInconsistent)) {
    emit({info.time, AlertKind::kRssiInconsistent, frame.addr2,
          "rssi " + fmt_dbm(info.rssi_dbm) + " dBm vs profile " +
              fmt_dbm(p.mean) + " dBm"});
  }
}

double RssiProfileDetector::profile_mean(net::MacAddr bssid) const {
  const auto it = profiles_.find(bssid);
  if (it == profiles_.end() || it->second.samples < config_.min_samples) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return it->second.mean;
}

}  // namespace rogue::detect
