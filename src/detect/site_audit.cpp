#include "detect/site_audit.hpp"

#include <algorithm>

namespace rogue::detect {

SiteAudit::SiteAudit(std::vector<AuthorizedAp> inventory)
    : inventory_(std::move(inventory)) {}

std::vector<AuditFinding> SiteAudit::evaluate(
    const std::vector<attack::ObservedBss>& census) const {
  std::vector<AuditFinding> findings;

  for (const auto& bss : census) {
    const bool own_ssid = std::any_of(
        inventory_.begin(), inventory_.end(),
        [&](const AuthorizedAp& ap) { return ap.ssid == bss.ssid; });
    const auto exact = std::find_if(
        inventory_.begin(), inventory_.end(), [&](const AuthorizedAp& ap) {
          return ap.ssid == bss.ssid && ap.bssid == bss.bssid &&
                 ap.channel == bss.channel;
        });
    if (exact != inventory_.end()) continue;  // fully accounted for

    const bool known_bssid = std::any_of(
        inventory_.begin(), inventory_.end(),
        [&](const AuthorizedAp& ap) { return ap.bssid == bss.bssid; });

    if (own_ssid && !known_bssid) {
      findings.push_back({AuditFindingKind::kUnknownBssid, bss});
    } else if (known_bssid) {
      // Our BSSID, but SSID/channel do not match the records: a clone.
      findings.push_back({AuditFindingKind::kClonedBssidWrongChannel, bss});
    } else {
      findings.push_back({AuditFindingKind::kUnknownSsid, bss});
    }
  }
  return findings;
}

bool SiteAudit::rogue_detected(
    const std::vector<attack::ObservedBss>& census) const {
  const auto findings = evaluate(census);
  return std::any_of(findings.begin(), findings.end(), [](const AuditFinding& f) {
    return f.kind == AuditFindingKind::kUnknownBssid ||
           f.kind == AuditFindingKind::kClonedBssidWrongChannel;
  });
}

}  // namespace rogue::detect
