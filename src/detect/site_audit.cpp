#include "detect/site_audit.hpp"

#include <algorithm>

namespace rogue::detect {

SiteAudit::SiteAudit(std::vector<AuthorizedAp> inventory)
    : inventory_(std::move(inventory)) {}

void SiteAudit::attach(const DetectorEnv& env) {
  Detector::attach(env);
  if (inventory_.empty()) {
    for (const TrustedAp& ap : env.inventory) {
      inventory_.push_back({ap.ssid, ap.bssid, ap.channel});
    }
  }
  open_radios(env);
}

AuditFindingKind SiteAudit::classify(const attack::ObservedBss& bss,
                                     bool* accounted) const {
  *accounted = false;
  const bool own_ssid = std::any_of(
      inventory_.begin(), inventory_.end(),
      [&](const AuthorizedAp& ap) { return ap.ssid == bss.ssid; });
  const auto exact = std::find_if(
      inventory_.begin(), inventory_.end(), [&](const AuthorizedAp& ap) {
        return ap.ssid == bss.ssid && ap.bssid == bss.bssid &&
               ap.channel == bss.channel;
      });
  if (exact != inventory_.end()) {
    *accounted = true;
    return AuditFindingKind::kUnknownSsid;  // unused when accounted
  }
  const bool known_bssid = std::any_of(
      inventory_.begin(), inventory_.end(),
      [&](const AuthorizedAp& ap) { return ap.bssid == bss.bssid; });
  if (own_ssid && !known_bssid) return AuditFindingKind::kUnknownBssid;
  if (known_bssid) {
    // Our BSSID, but SSID/channel do not match the records: a clone.
    return AuditFindingKind::kClonedBssidWrongChannel;
  }
  return AuditFindingKind::kUnknownSsid;
}

void SiteAudit::observe(const dot11::FrameView& frame,
                        const phy::RxInfo& info) {
  ++frames_;
  if (!frame.is_mgmt(dot11::MgmtSubtype::kBeacon)) return;
  const auto body = dot11::BeaconBody::decode(frame.body);
  if (!body) return;

  attack::ObservedBss bss;
  bss.ssid = body->ssid;
  bss.bssid = frame.addr2;
  bss.channel = info.channel;
  bss.privacy = body->privacy();
  bss.last_rssi_dbm = info.rssi_dbm;

  bool accounted = false;
  const AuditFindingKind kind = classify(bss, &accounted);
  if (accounted) return;

  AlertKind alert_kind = AlertKind::kUnknownSsid;
  std::string detail = "foreign ssid \"" + bss.ssid + "\"";
  switch (kind) {
    case AuditFindingKind::kUnknownBssid:
      alert_kind = AlertKind::kUnknownBssid;
      detail = "ssid \"" + bss.ssid + "\" from unregistered bssid";
      break;
    case AuditFindingKind::kClonedBssidWrongChannel:
      alert_kind = AlertKind::kChannelMismatch;
      detail = "our bssid off-book on ch " + std::to_string(bss.channel);
      break;
    case AuditFindingKind::kPrivacyMismatch:
      alert_kind = AlertKind::kPrivacyMismatch;
      detail = "privacy setting off-book";
      break;
    case AuditFindingKind::kUnknownSsid:
      break;
  }
  if (first_alert(frame.addr2, alert_kind)) {
    emit({info.time, alert_kind, frame.addr2, std::move(detail)});
  }
}

std::vector<AuditFinding> SiteAudit::evaluate(
    const std::vector<attack::ObservedBss>& census) const {
  std::vector<AuditFinding> findings;
  for (const auto& bss : census) {
    bool accounted = false;
    const AuditFindingKind kind = classify(bss, &accounted);
    if (!accounted) findings.push_back({kind, bss});
  }
  return findings;
}

bool SiteAudit::rogue_detected(
    const std::vector<attack::ObservedBss>& census) const {
  const auto findings = evaluate(census);
  return std::any_of(findings.begin(), findings.end(), [](const AuditFinding& f) {
    return f.kind == AuditFindingKind::kUnknownBssid ||
           f.kind == AuditFindingKind::kClonedBssidWrongChannel;
  });
}

}  // namespace rogue::detect
