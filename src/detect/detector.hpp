// Pluggable WIDS detector interface. Every §2.3-style monitor — sequence
// control, fingerprinting, RSSI profiling, probe timing, site audit, wired
// census — implements the same small surface:
//
//   auto d = detect::make_detector("fingerprint");
//   d->attach(env);            // radios on the World's channel plan
//   ... run the episode ...
//   for (const Alert& a : d->alerts()) ...
//
// attach() receives a DetectorEnv describing the defended network (channel
// plan, authorized-AP inventory, monitor position, wired segment), so a
// detector follows the World's layout instead of hard-coding channel 1.
// Alerts share one record shape across all detectors, which is what lets
// the tournament runner aggregate detection/FP/TTD per (attacker,
// detector) pair without caring which detector fired.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dot11/frame.hpp"
#include "net/addr.hpp"
#include "obs/stats.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace rogue::net {
class L2Segment;
}  // namespace rogue::net

namespace rogue::detect {

enum class AlertKind : std::uint8_t {
  kSeqAnomaly,             ///< implausible 802.11 sequence-control jump
  kFingerprintMismatch,    ///< advertised SSID/interval/capability off-book
  kChannelMismatch,        ///< our BSSID beaconing on a channel we don't use
  kUnknownBssid,           ///< our SSID advertised by a BSSID we don't own
  kPrivacyMismatch,        ///< our SSID advertised with the wrong privacy bit
  kUnknownSsid,            ///< foreign network in our airspace (informational)
  kRssiInconsistent,       ///< frame RSSI far from the transmitter's profile
  kDuplicateProbeResponse, ///< two responders answered one probe transaction
  kProbeTimingSkew,        ///< probe response far slower than the baseline
  kWiredUnknownMac,        ///< unregistered source MAC on the wired segment
};

[[nodiscard]] std::string_view to_string(AlertKind kind);

/// The one alert record every detector emits (satellite: SeqAnomaly and
/// friends unified). `detail` is a short human-readable explanation.
struct Alert {
  sim::Time time = 0;
  AlertKind kind = AlertKind::kSeqAnomaly;
  net::MacAddr transmitter;
  std::string detail;
};

/// One authorized AP in the administrator's records — the fingerprint the
/// detectors audit the air against.
struct TrustedAp {
  std::string ssid;
  net::MacAddr bssid;
  phy::Channel channel = 1;
  std::uint16_t beacon_interval_tu = 100;
  std::uint16_t capability = dot11::kCapEss;
};

/// Everything a World hands a detector at attach time. Radio-based
/// detectors open one monitor radio per entry of `channels` (the World's
/// channel plan — not a hard-coded channel 1), all at `position`.
struct DetectorEnv {
  sim::Simulator* sim = nullptr;
  phy::Medium* medium = nullptr;
  sim::Trace* trace = nullptr;
  std::vector<phy::Channel> channels;
  phy::Position position{};
  std::vector<TrustedAp> inventory;
  /// Wired-side context (WiredMonitor); nullptr when the scenario has no
  /// monitored segment.
  net::L2Segment* wired = nullptr;
  std::vector<net::MacAddr> known_wired_macs;
};

class Detector {
 public:
  using AlertSink = std::function<void(const Alert&)>;

  Detector() = default;
  virtual ~Detector() = default;

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// Registry name, e.g. "seqnum" or "fingerprint".
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Bind to a world. The default implementation records the environment
  /// and interns this detector's stats/trace handles; subclasses extend it
  /// (open radios, install taps) and must call Detector::attach() first.
  virtual void attach(const DetectorEnv& env);

  /// Feed one frame (offline traces, unit tests; radio-based detectors
  /// route their receive handlers here too).
  virtual void observe(const dot11::FrameView& frame, const phy::RxInfo& info);

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  /// Transmitters with at least `min_alerts` alerts, in the order they
  /// crossed the threshold (deterministic).
  [[nodiscard]] std::vector<net::MacAddr> suspects(std::size_t min_alerts = 1) const;
  [[nodiscard]] std::uint64_t frames_observed() const { return frames_; }

  /// Forward every alert as it fires (the composite detector's plumbing).
  void set_alert_sink(AlertSink sink) { sink_ = std::move(sink); }

 protected:
  /// Record + publish an alert: alert list, per-name obs counter, trace
  /// record, and the sink, in that order.
  void emit(Alert alert);
  /// True the first time (transmitter, kind) is seen — detectors that
  /// would otherwise re-alert on every frame gate emit() on this.
  [[nodiscard]] bool first_alert(net::MacAddr transmitter, AlertKind kind);
  /// Open one monitor radio per env channel at env.position, all feeding
  /// observe(). Call from attach() in radio-based detectors.
  void open_radios(const DetectorEnv& env);

  [[nodiscard]] sim::Simulator* sim() { return sim_; }
  [[nodiscard]] const std::vector<std::unique_ptr<phy::Radio>>& radios() const {
    return radios_;
  }

  std::uint64_t frames_ = 0;

 private:
  sim::Simulator* sim_ = nullptr;
  sim::Trace* trace_ = nullptr;
  sim::TagId trace_tag_ = 0;
  obs::CounterId stat_alerts_;
  obs::TraceNameId tracer_alert_;
  obs::TraceActorId tracer_actor_;
  std::vector<std::unique_ptr<phy::Radio>> radios_;
  std::vector<Alert> alerts_;
  std::set<std::pair<net::MacAddr, AlertKind>> emitted_;
  AlertSink sink_;
};

/// Runs a panel of child detectors as one: children's alerts surface
/// through the composite (chronologically interleaved as they fire), so a
/// tournament cell can score "all of the above" like any single detector.
class CompositeDetector final : public Detector {
 public:
  explicit CompositeDetector(std::vector<std::unique_ptr<Detector>> children);

  [[nodiscard]] std::string_view name() const override { return "composite"; }
  void attach(const DetectorEnv& env) override;
  void observe(const dot11::FrameView& frame, const phy::RxInfo& info) override;

  [[nodiscard]] const std::vector<std::unique_ptr<Detector>>& children() const {
    return children_;
  }

 private:
  std::vector<std::unique_ptr<Detector>> children_;
};

/// Registry, mirroring runner::stock_variants(): plain name -> instance
/// lookup, no static-initialization tricks. nullptr for unknown names.
[[nodiscard]] std::unique_ptr<Detector> make_detector(std::string_view name);
/// Names accepted by make_detector().
[[nodiscard]] std::vector<std::string_view> known_detectors();

}  // namespace rogue::detect
