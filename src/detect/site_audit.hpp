// Radio site audit (§2.3: "Good record keeping and doing radio site
// audits will help detect these rogues"): compare the BSS census gathered
// by a monitor-mode sweep against the administrator's authorized AP
// inventory and flag everything unexplained. Works two ways: the legacy
// batch evaluate() over a sniffer census, and live as a detect::Detector
// that audits each beacon as it is heard.
#pragma once

#include <string>
#include <vector>

#include "attack/sniffer.hpp"
#include "detect/detector.hpp"
#include "net/addr.hpp"
#include "phy/medium.hpp"

namespace rogue::detect {

struct AuthorizedAp {
  std::string ssid;
  net::MacAddr bssid;
  phy::Channel channel = 1;
};

enum class AuditFindingKind : std::uint8_t {
  kUnknownBssid,           ///< SSID we own, BSSID we don't — classic rogue
  kClonedBssidWrongChannel,///< our BSSID beaconing on a channel we don't use
  kUnknownSsid,            ///< foreign network in our airspace (informational)
  kPrivacyMismatch,        ///< our SSID advertised with wrong WEP setting
};

struct AuditFinding {
  AuditFindingKind kind;
  attack::ObservedBss bss;
};

class SiteAudit final : public Detector {
 public:
  SiteAudit() = default;
  explicit SiteAudit(std::vector<AuthorizedAp> inventory);

  [[nodiscard]] std::string_view name() const override { return "site-audit"; }
  /// Live mode: env.inventory becomes the authorized list (unless one was
  /// given at construction) and every beacon heard is audited on arrival.
  void attach(const DetectorEnv& env) override;
  void observe(const dot11::FrameView& frame, const phy::RxInfo& info) override;

  /// Evaluate a census (from attack::Sniffer::observed_bss or a dedicated
  /// scan) against the inventory.
  [[nodiscard]] std::vector<AuditFinding> evaluate(
      const std::vector<attack::ObservedBss>& census) const;

  /// Convenience: does the census contain a rogue for one of our SSIDs?
  [[nodiscard]] bool rogue_detected(
      const std::vector<attack::ObservedBss>& census) const;

 private:
  [[nodiscard]] AuditFindingKind classify(const attack::ObservedBss& bss,
                                          bool* accounted) const;

  std::vector<AuthorizedAp> inventory_;
};

}  // namespace rogue::detect
