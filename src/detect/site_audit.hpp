// Radio site audit (§2.3: "Good record keeping and doing radio site
// audits will help detect these rogues"): compare the BSS census gathered
// by a monitor-mode sweep against the administrator's authorized AP
// inventory and flag everything unexplained.
#pragma once

#include <string>
#include <vector>

#include "attack/sniffer.hpp"
#include "net/addr.hpp"
#include "phy/medium.hpp"

namespace rogue::detect {

struct AuthorizedAp {
  std::string ssid;
  net::MacAddr bssid;
  phy::Channel channel = 1;
};

enum class AuditFindingKind : std::uint8_t {
  kUnknownBssid,           ///< SSID we own, BSSID we don't — classic rogue
  kClonedBssidWrongChannel,///< our BSSID beaconing on a channel we don't use
  kUnknownSsid,            ///< foreign network in our airspace (informational)
  kPrivacyMismatch,        ///< our SSID advertised with wrong WEP setting
};

struct AuditFinding {
  AuditFindingKind kind;
  attack::ObservedBss bss;
};

class SiteAudit {
 public:
  explicit SiteAudit(std::vector<AuthorizedAp> inventory);

  /// Evaluate a census (from attack::Sniffer::observed_bss or a dedicated
  /// scan) against the inventory.
  [[nodiscard]] std::vector<AuditFinding> evaluate(
      const std::vector<attack::ObservedBss>& census) const;

  /// Convenience: does the census contain a rogue for one of our SSIDs?
  [[nodiscard]] bool rogue_detected(
      const std::vector<attack::ObservedBss>& census) const;

 private:
  std::vector<AuthorizedAp> inventory_;
};

}  // namespace rogue::detect
