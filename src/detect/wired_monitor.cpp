#include "detect/wired_monitor.hpp"

namespace rogue::detect {

WiredMonitor::WiredMonitor(sim::Simulator& simulator, net::L2Segment& segment,
                           std::vector<net::MacAddr> known_macs) {
  DetectorEnv env;
  env.sim = &simulator;
  env.wired = &segment;
  env.known_wired_macs = std::move(known_macs);
  attach(env);
}

void WiredMonitor::attach(const DetectorEnv& env) {
  Detector::attach(env);
  known_.insert(env.known_wired_macs.begin(), env.known_wired_macs.end());
  if (env.wired != nullptr) {
    env.wired->set_span([this](const net::L2Frame& frame) { on_frame(frame); });
  }
}

void WiredMonitor::on_frame(const net::L2Frame& frame) {
  ++frames_;
  seen_.insert(frame.src);
  if (!known_.contains(frame.src) &&
      first_alert(frame.src, AlertKind::kWiredUnknownMac)) {
    const sim::Time now = sim() != nullptr ? sim()->now() : 0;
    findings_.push_back(WiredFinding{now, frame.src});
    emit({now, AlertKind::kWiredUnknownMac, frame.src,
          "unregistered source mac on wired segment"});
  }
}

}  // namespace rogue::detect
