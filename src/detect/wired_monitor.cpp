#include "detect/wired_monitor.hpp"

namespace rogue::detect {

WiredMonitor::WiredMonitor(sim::Simulator& simulator, net::L2Segment& segment,
                           std::vector<net::MacAddr> known_macs)
    : sim_(simulator) {
  known_.insert(known_macs.begin(), known_macs.end());
  segment.set_span([this](const net::L2Frame& frame) {
    ++frames_;
    seen_.insert(frame.src);
    if (!known_.contains(frame.src) && !reported_.contains(frame.src)) {
      reported_.insert(frame.src);
      findings_.push_back(WiredFinding{sim_.now(), frame.src});
    }
  });
}

}  // namespace rogue::detect
