// Sequence-control anomaly detection (§2.3: "These techniques rely on
// monitoring 802.11 Sequence Control numbers", following Wright's MAC
// spoof detection [15]). Every 802.11 transmitter stamps frames from a
// single modulo-4096 counter; a second radio forging the same MAC (rogue
// AP cloning the BSSID, forged deauths) cannot continue the victim's
// counter, so its frames appear as implausible sequence jumps.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "detect/detector.hpp"

namespace rogue::detect {

struct SeqMonitorConfig {
  /// Channel used only by the legacy (sim, medium) constructor; attach()
  /// follows the DetectorEnv channel plan instead.
  phy::Channel channel = 1;
  /// Forward gap (frames lost to the monitor) tolerated before alarming.
  std::uint16_t max_forward_gap = 64;
  /// Small backward steps tolerated (late retries).
  std::uint16_t max_backward_step = 3;
};

class SeqNumMonitor final : public Detector {
 public:
  SeqNumMonitor() = default;
  explicit SeqNumMonitor(SeqMonitorConfig config) : config_(config) {}
  /// Legacy convenience: one monitor radio on config.channel, attached
  /// immediately.
  SeqNumMonitor(sim::Simulator& simulator, phy::Medium& medium,
                SeqMonitorConfig config);

  [[nodiscard]] std::string_view name() const override { return "seqnum"; }
  void attach(const DetectorEnv& env) override;
  void observe(const dot11::FrameView& frame, const phy::RxInfo& info) override;

  /// Feed a frame directly (for offline analysis of captures).
  void observe(const dot11::FrameView& frame, sim::Time at) {
    observe(frame, phy::RxInfo{at, 0.0, config_.channel});
  }

  /// Transmitters with at least `min_alerts` anomalies; a single jump can
  /// be an artefact, two or more is a second radio.
  [[nodiscard]] std::vector<net::MacAddr> suspects(
      std::size_t min_alerts = 2) const {
    return Detector::suspects(min_alerts);
  }
  [[nodiscard]] phy::Radio& radio() { return *radios().front(); }

 private:
  SeqMonitorConfig config_;
  struct TxState {
    std::uint16_t last_seq = 0;
    bool seen = false;
  };
  std::unordered_map<net::MacAddr, TxState> state_;
};

}  // namespace rogue::detect
