// Sequence-control anomaly detection (§2.3: "These techniques rely on
// monitoring 802.11 Sequence Control numbers", following Wright's MAC
// spoof detection [15]). Every 802.11 transmitter stamps frames from a
// single modulo-4096 counter; a second radio forging the same MAC (rogue
// AP cloning the BSSID, forged deauths) cannot continue the victim's
// counter, so its frames appear as implausible sequence jumps.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dot11/frame.hpp"
#include "net/addr.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace rogue::detect {

struct SeqAnomaly {
  sim::Time time = 0;
  net::MacAddr transmitter;
  std::uint16_t previous = 0;
  std::uint16_t observed = 0;
  bool management = false;
};

struct SeqMonitorConfig {
  phy::Channel channel = 1;
  /// Forward gap (frames lost to the monitor) tolerated before alarming.
  std::uint16_t max_forward_gap = 64;
  /// Small backward steps tolerated (late retries).
  std::uint16_t max_backward_step = 3;
};

class SeqNumMonitor {
 public:
  SeqNumMonitor(sim::Simulator& simulator, phy::Medium& medium,
                SeqMonitorConfig config);

  SeqNumMonitor(const SeqNumMonitor&) = delete;
  SeqNumMonitor& operator=(const SeqNumMonitor&) = delete;

  [[nodiscard]] const std::vector<SeqAnomaly>& anomalies() const { return anomalies_; }
  /// Transmitters with at least `min_anomalies` flags.
  [[nodiscard]] std::vector<net::MacAddr> suspects(std::size_t min_anomalies = 2) const;
  [[nodiscard]] std::uint64_t frames_observed() const { return frames_; }
  [[nodiscard]] phy::Radio& radio() { return radio_; }

  /// Feed a frame directly (for offline analysis of captures).
  void observe(const dot11::FrameView& frame, sim::Time at);

 private:
  sim::Simulator& sim_;
  SeqMonitorConfig config_;
  phy::Radio radio_;
  struct TxState {
    std::uint16_t last_seq = 0;
    bool seen = false;
    std::size_t anomaly_count = 0;
  };
  std::unordered_map<net::MacAddr, TxState> state_;
  std::vector<SeqAnomaly> anomalies_;
  std::uint64_t frames_ = 0;
};

}  // namespace rogue::detect
