#include "detect/probe_timing.hpp"

#include <string>

namespace rogue::detect {

void ProbeTimingDetector::attach(const DetectorEnv& env) {
  Detector::attach(env);
  open_radios(env);
  if (env.sim == nullptr) return;
  // Stagger channels so two probers never contend with each other; the
  // phases are fixed offsets, keeping the schedule a pure function of the
  // seed.
  for (std::size_t i = 0; i < radios().size(); ++i) {
    env.sim->every(config_.probe_period,
                   50 * sim::kMillisecond +
                       static_cast<sim::Time>(i) * 125 * sim::kMillisecond,
                   [this, i] { send_probe(i); });
  }
}

void ProbeTimingDetector::begin_transaction(phy::Channel channel, sim::Time at) {
  Txn& txn = txns_[channel];
  txn.open = true;
  txn.probe_time = at;
  txn.responders.clear();
}

void ProbeTimingDetector::send_probe(std::size_t radio_index) {
  phy::Radio& radio = *radios()[radio_index];
  begin_transaction(radio.channel(), sim()->now());

  dot11::Frame f;
  f.type = dot11::FrameType::kManagement;
  f.subtype = static_cast<std::uint8_t>(dot11::MgmtSubtype::kProbeReq);
  f.addr1 = net::MacAddr::broadcast();
  f.addr2 = prober_mac_;
  f.addr3 = net::MacAddr::broadcast();
  f.sequence = probe_seq_++;
  f.body = dot11::ProbeReqBody{}.encode();  // wildcard
  util::Bytes raw = radio.acquire_buffer(24 + f.body.size());
  f.serialize_into(raw);
  radio.transmit(std::move(raw));
  ++probes_sent_;
}

void ProbeTimingDetector::observe(const dot11::FrameView& frame,
                                  const phy::RxInfo& info) {
  ++frames_;
  if (!frame.is_mgmt(dot11::MgmtSubtype::kProbeResp)) return;
  if (frame.addr1 != prober_mac_) return;

  const auto it = txns_.find(info.channel);
  if (it == txns_.end() || !it->second.open) return;
  Txn& txn = it->second;

  const sim::Time latency = info.time - txn.probe_time;
  const std::size_t responses = ++txn.responders[frame.addr2];
  if (responses >= 2 &&
      first_alert(frame.addr2, AlertKind::kDuplicateProbeResponse)) {
    emit({info.time, AlertKind::kDuplicateProbeResponse, frame.addr2,
          std::to_string(responses) + " responses to one probe on ch " +
              std::to_string(info.channel)});
  }
  if (latency > config_.skew_threshold &&
      first_alert(frame.addr2, AlertKind::kProbeTimingSkew)) {
    emit({info.time, AlertKind::kProbeTimingSkew, frame.addr2,
          "response after " + std::to_string(latency) + " us (threshold " +
              std::to_string(config_.skew_threshold) + " us)"});
  }
}

}  // namespace rogue::detect
