#include "detect/fingerprint.hpp"

#include <algorithm>
#include <string>

namespace rogue::detect {

void FingerprintDetector::attach(const DetectorEnv& env) {
  Detector::attach(env);
  inventory_ = env.inventory;
  open_radios(env);
}

void FingerprintDetector::observe(const dot11::FrameView& frame,
                                  const phy::RxInfo& info) {
  ++frames_;
  if (!frame.is_mgmt(dot11::MgmtSubtype::kBeacon) &&
      !frame.is_mgmt(dot11::MgmtSubtype::kProbeResp)) {
    return;
  }
  const auto body = dot11::BeaconBody::decode(frame.body);
  if (!body) return;

  const auto by_bssid = std::find_if(
      inventory_.begin(), inventory_.end(),
      [&](const TrustedAp& ap) { return ap.bssid == frame.addr2; });

  if (by_bssid != inventory_.end()) {
    const TrustedAp& ap = *by_bssid;
    if (body->ssid != ap.ssid &&
        first_alert(frame.addr2, AlertKind::kFingerprintMismatch)) {
      emit({info.time, AlertKind::kFingerprintMismatch, frame.addr2,
            "ssid \"" + body->ssid + "\" != \"" + ap.ssid + "\""});
    }
    if ((body->channel != ap.channel || info.channel != ap.channel) &&
        first_alert(frame.addr2, AlertKind::kChannelMismatch)) {
      emit({info.time, AlertKind::kChannelMismatch, frame.addr2,
            "ch " + std::to_string(info.channel) + "/" +
                std::to_string(body->channel) + " != " +
                std::to_string(ap.channel)});
    }
    if (body->beacon_interval_tu != ap.beacon_interval_tu &&
        first_alert(frame.addr2, AlertKind::kFingerprintMismatch)) {
      emit({info.time, AlertKind::kFingerprintMismatch, frame.addr2,
            "interval " + std::to_string(body->beacon_interval_tu) + " != " +
                std::to_string(ap.beacon_interval_tu)});
    }
    const bool expect_privacy = (ap.capability & dot11::kCapPrivacy) != 0;
    if (body->privacy() != expect_privacy &&
        first_alert(frame.addr2, AlertKind::kPrivacyMismatch)) {
      emit({info.time, AlertKind::kPrivacyMismatch, frame.addr2,
            body->privacy() ? "privacy on, records say open"
                            : "privacy off, records require it"});
    }
    if (body->capability != ap.capability && body->privacy() == expect_privacy &&
        first_alert(frame.addr2, AlertKind::kFingerprintMismatch)) {
      emit({info.time, AlertKind::kFingerprintMismatch, frame.addr2,
            "capability " + std::to_string(body->capability) + " != " +
                std::to_string(ap.capability)});
    }
    return;
  }

  const bool own_ssid = std::any_of(
      inventory_.begin(), inventory_.end(),
      [&](const TrustedAp& ap) { return ap.ssid == body->ssid; });
  if (own_ssid) {
    if (first_alert(frame.addr2, AlertKind::kUnknownBssid)) {
      emit({info.time, AlertKind::kUnknownBssid, frame.addr2,
            "ssid \"" + body->ssid + "\" from unregistered bssid"});
    }
  } else if (first_alert(frame.addr2, AlertKind::kUnknownSsid)) {
    emit({info.time, AlertKind::kUnknownSsid, frame.addr2,
          "foreign ssid \"" + body->ssid + "\""});
  }
}

}  // namespace rogue::detect
