#include "detect/detector.hpp"

#include <string>

#include "detect/fingerprint.hpp"
#include "detect/probe_timing.hpp"
#include "detect/rssi_profile.hpp"
#include "detect/seqnum.hpp"
#include "detect/site_audit.hpp"
#include "detect/wired_monitor.hpp"

namespace rogue::detect {

std::string_view to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kSeqAnomaly: return "seq-anomaly";
    case AlertKind::kFingerprintMismatch: return "fingerprint-mismatch";
    case AlertKind::kChannelMismatch: return "channel-mismatch";
    case AlertKind::kUnknownBssid: return "unknown-bssid";
    case AlertKind::kPrivacyMismatch: return "privacy-mismatch";
    case AlertKind::kUnknownSsid: return "unknown-ssid";
    case AlertKind::kRssiInconsistent: return "rssi-inconsistent";
    case AlertKind::kDuplicateProbeResponse: return "duplicate-probe-response";
    case AlertKind::kProbeTimingSkew: return "probe-timing-skew";
    case AlertKind::kWiredUnknownMac: return "wired-unknown-mac";
  }
  return "unknown";
}

void Detector::attach(const DetectorEnv& env) {
  sim_ = env.sim;
  trace_ = env.trace;
  if (sim_ != nullptr) {
    stat_alerts_ =
        sim_->stats().counter("detect." + std::string(name()) + ".alerts");
    tracer_alert_ = sim_->tracer().name("detect.alert");
    tracer_actor_ = sim_->tracer().actor("detect:" + std::string(name()));
  }
  if (trace_ != nullptr) {
    trace_tag_ = trace_->intern("detect." + std::string(name()));
  }
}

void Detector::observe(const dot11::FrameView&, const phy::RxInfo&) {}

void Detector::emit(Alert alert) {
  if (sim_ != nullptr) {
    sim_->stats().add(stat_alerts_);
    // Runs inside the offending frame's delivery scope, so the alert
    // inherits the attack frame's trace id — chain reconstruction links
    // attacker tx -> monitor rx -> this alert with no extra plumbing.
    sim_->tracer().instant(tracer_alert_, tracer_actor_,
                           obs::TraceLayer::kDetect, 0,
                           static_cast<std::uint64_t>(alert.kind));
  }
  if (trace_ != nullptr) {
    trace_->record(alert.time, trace_tag_,
                   std::string(to_string(alert.kind)) + " " +
                       alert.transmitter.to_string() + " " + alert.detail,
                   sim::Severity::kWarn);
  }
  if (sink_) sink_(alert);
  alerts_.push_back(std::move(alert));
}

bool Detector::first_alert(net::MacAddr transmitter, AlertKind kind) {
  return emitted_.insert({transmitter, kind}).second;
}

void Detector::open_radios(const DetectorEnv& env) {
  for (const phy::Channel ch : env.channels) {
    auto radio = std::make_unique<phy::Radio>(
        *env.medium,
        std::string(name()) + "-monitor-ch" + std::to_string(ch));
    radio->set_channel(ch);
    radio->set_position(env.position);
    radio->set_receive_handler(
        [this](util::ByteView raw, const phy::RxInfo& info) {
          const auto frame = dot11::FrameView::parse(raw);
          if (frame) observe(*frame, info);
        });
    radios_.push_back(std::move(radio));
  }
}

std::vector<net::MacAddr> Detector::suspects(std::size_t min_alerts) const {
  std::vector<net::MacAddr> out;
  if (min_alerts == 0) min_alerts = 1;
  std::unordered_map<net::MacAddr, std::size_t> counts;
  for (const Alert& alert : alerts_) {
    if (++counts[alert.transmitter] == min_alerts) {
      out.push_back(alert.transmitter);
    }
  }
  return out;
}

// ---- CompositeDetector -----------------------------------------------------

CompositeDetector::CompositeDetector(
    std::vector<std::unique_ptr<Detector>> children)
    : children_(std::move(children)) {}

void CompositeDetector::attach(const DetectorEnv& env) {
  Detector::attach(env);
  for (auto& child : children_) {
    child->set_alert_sink([this](const Alert& alert) { emit(alert); });
    child->attach(env);
  }
}

void CompositeDetector::observe(const dot11::FrameView& frame,
                                const phy::RxInfo& info) {
  ++frames_;
  for (auto& child : children_) child->observe(frame, info);
}

// ---- Registry --------------------------------------------------------------

std::unique_ptr<Detector> make_detector(std::string_view name) {
  if (name == "seqnum") return std::make_unique<SeqNumMonitor>();
  if (name == "fingerprint") return std::make_unique<FingerprintDetector>();
  if (name == "rssi") return std::make_unique<RssiProfileDetector>();
  if (name == "probe-timing") return std::make_unique<ProbeTimingDetector>();
  if (name == "site-audit") return std::make_unique<SiteAudit>();
  if (name == "wired") return std::make_unique<WiredMonitor>();
  if (name == "composite") {
    std::vector<std::unique_ptr<Detector>> children;
    children.push_back(std::make_unique<SeqNumMonitor>());
    children.push_back(std::make_unique<FingerprintDetector>());
    children.push_back(std::make_unique<RssiProfileDetector>());
    children.push_back(std::make_unique<ProbeTimingDetector>());
    return std::make_unique<CompositeDetector>(std::move(children));
  }
  return nullptr;
}

std::vector<std::string_view> known_detectors() {
  return {"seqnum",     "fingerprint", "rssi",     "probe-timing",
          "site-audit", "wired",       "composite"};
}

}  // namespace rogue::detect
