#include "detect/seqnum.hpp"

#include <string>

namespace rogue::detect {

SeqNumMonitor::SeqNumMonitor(sim::Simulator& simulator, phy::Medium& medium,
                             SeqMonitorConfig config)
    : config_(config) {
  DetectorEnv env;
  env.sim = &simulator;
  env.medium = &medium;
  env.channels = {config_.channel};
  attach(env);
}

void SeqNumMonitor::attach(const DetectorEnv& env) {
  Detector::attach(env);
  open_radios(env);
}

void SeqNumMonitor::observe(const dot11::FrameView& frame,
                            const phy::RxInfo& info) {
  ++frames_;
  auto& tx = state_[frame.addr2];
  const std::uint16_t seq = frame.sequence & 0x0fff;

  if (!tx.seen) {
    tx.seen = true;
    tx.last_seq = seq;
    return;
  }

  const auto forward = static_cast<std::uint16_t>((seq - tx.last_seq) & 0x0fff);
  const auto backward = static_cast<std::uint16_t>((tx.last_seq - seq) & 0x0fff);

  const bool plausible_forward = forward > 0 && forward <= config_.max_forward_gap;
  const bool plausible_retry = backward <= config_.max_backward_step;
  if (!plausible_forward && !plausible_retry) {
    emit({info.time, AlertKind::kSeqAnomaly, frame.addr2,
          "prev=" + std::to_string(tx.last_seq) +
              " obs=" + std::to_string(seq)});
  }
  tx.last_seq = seq;
}

}  // namespace rogue::detect
