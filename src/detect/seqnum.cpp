#include "detect/seqnum.hpp"

namespace rogue::detect {

SeqNumMonitor::SeqNumMonitor(sim::Simulator& simulator, phy::Medium& medium,
                             SeqMonitorConfig config)
    : sim_(simulator), config_(config), radio_(medium, "seq-monitor") {
  radio_.set_channel(config_.channel);
  radio_.set_receive_handler([this](util::ByteView raw, const phy::RxInfo& info) {
    const auto frame = dot11::FrameView::parse(raw);
    if (frame) observe(*frame, info.time);
  });
}

void SeqNumMonitor::observe(const dot11::FrameView& frame, sim::Time at) {
  ++frames_;
  auto& tx = state_[frame.addr2];
  const std::uint16_t seq = frame.sequence & 0x0fff;

  if (!tx.seen) {
    tx.seen = true;
    tx.last_seq = seq;
    return;
  }

  const auto forward = static_cast<std::uint16_t>((seq - tx.last_seq) & 0x0fff);
  const auto backward = static_cast<std::uint16_t>((tx.last_seq - seq) & 0x0fff);

  const bool plausible_forward = forward > 0 && forward <= config_.max_forward_gap;
  const bool plausible_retry = backward <= config_.max_backward_step;
  if (!plausible_forward && !plausible_retry) {
    ++tx.anomaly_count;
    anomalies_.push_back(SeqAnomaly{
        at, frame.addr2, tx.last_seq, seq,
        frame.type == dot11::FrameType::kManagement});
  }
  tx.last_seq = seq;
}

std::vector<net::MacAddr> SeqNumMonitor::suspects(std::size_t min_anomalies) const {
  std::vector<net::MacAddr> out;
  for (const auto& [mac, tx] : state_) {
    if (tx.anomaly_count >= min_anomalies) out.push_back(mac);
  }
  return out;
}

}  // namespace rogue::detect
