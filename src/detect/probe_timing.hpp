// Probe-response timing (arXiv 1302.6274 §III.C: active AP
// interrogation): the detector runs its own prober that broadcasts
// wildcard probe requests on each channel of the World's plan and times
// the responses. Real AP firmware answers within microseconds of CSMA
// access; a software clone answering from a host stack is milliseconds
// slower, and a clone sharing the real AP's BSSID produces *two*
// responses to one probe transaction — both are alarms the perfect
// fingerprint clone cannot avoid without going silent to clients too.
#pragma once

#include <map>

#include "detect/detector.hpp"

namespace rogue::detect {

struct ProbeTimingConfig {
  /// Wildcard probe cadence per channel.
  sim::Time probe_period = 500 * sim::kMillisecond;
  /// Response latency beyond this alarms (legit AP + CSMA backoff stays
  /// well under 1 ms at 11 Mb/s).
  sim::Time skew_threshold = 2'500;
};

class ProbeTimingDetector final : public Detector {
 public:
  ProbeTimingDetector() = default;
  explicit ProbeTimingDetector(ProbeTimingConfig config) : config_(config) {}

  [[nodiscard]] std::string_view name() const override { return "probe-timing"; }
  void attach(const DetectorEnv& env) override;
  void observe(const dot11::FrameView& frame, const phy::RxInfo& info) override;

  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  /// Locally-administered source MAC of the prober.
  [[nodiscard]] net::MacAddr prober_mac() const { return prober_mac_; }

  /// Open a probe transaction on `channel` at `at` without transmitting —
  /// lets unit tests feed scripted response traces through observe().
  void begin_transaction(phy::Channel channel, sim::Time at);

 private:
  void send_probe(std::size_t radio_index);

  /// One outstanding probe transaction per channel: when we probed and
  /// how many responses each BSSID has given since.
  struct Txn {
    bool open = false;
    sim::Time probe_time = 0;
    std::map<net::MacAddr, std::size_t> responders;
  };

  ProbeTimingConfig config_;
  net::MacAddr prober_mac_ = net::MacAddr::from_id(0xD0D0D0D001ULL);
  std::uint16_t probe_seq_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::map<phy::Channel, Txn> txns_;
};

}  // namespace rogue::detect
