// RSSI-profile consistency (arXiv 1302.6274 §III.B: signalprint
// localisation): a stationary AP heard by a stationary monitor has a
// stable received-signal level, so the monitor learns a per-BSSID RSSI
// baseline during quiet time and then flags frames claiming that BSSID
// from a markedly different level — a transmitter at a different position
// (perfect fingerprint clone, forged deauths) cannot fake its path loss.
// The profile freezes after `min_samples` so an attacker transmitting
// during the attack window cannot drag the baseline toward itself.
#pragma once

#include <map>
#include <set>

#include "detect/detector.hpp"

namespace rogue::detect {

struct RssiProfileConfig {
  /// Baseline frames per BSSID before the profile freezes and enforcement
  /// starts.
  std::size_t min_samples = 16;
  /// |rssi - baseline mean| beyond this alarms. The Medium draws ±2 dB of
  /// per-reception noise, so 4 dB keeps a stationary legitimate AP safely
  /// inside the envelope while a transmitter metres away falls outside.
  double threshold_db = 4.0;
};

class RssiProfileDetector final : public Detector {
 public:
  RssiProfileDetector() = default;
  explicit RssiProfileDetector(RssiProfileConfig config) : config_(config) {}

  [[nodiscard]] std::string_view name() const override { return "rssi"; }
  void attach(const DetectorEnv& env) override;
  void observe(const dot11::FrameView& frame, const phy::RxInfo& info) override;

  /// Frozen baseline mean for a BSSID; NaN until min_samples reached.
  [[nodiscard]] double profile_mean(net::MacAddr bssid) const;

 private:
  struct Profile {
    std::size_t samples = 0;
    double mean = 0.0;
  };

  RssiProfileConfig config_;
  std::set<net::MacAddr> watched_;
  std::map<net::MacAddr, Profile> profiles_;
};

}  // namespace rogue::detect
