// TCP over the simulated IPv4 stack: 3-way handshake, sequence/ack
// bookkeeping, Jacobson/Karels RTO with exponential backoff, fast
// retransmit on triple duplicate ACKs, slow start + congestion avoidance,
// and orderly FIN teardown.
//
// The retransmission machinery is load-bearing for the paper: §5.3 notes
// that the tested PPP-over-SSH VPN suffers because "any UDP traffic is
// subject to unnecessary retransmission by TCP" — the classic
// TCP-over-TCP meltdown that bench_claim_tcp_over_tcp quantifies.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/addr.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace rogue::net {

// TCP header flags.
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

/// Non-owning parsed segment for the rx hot path: `payload` views the
/// delivered IP payload buffer. Copies happen only where the stack
/// genuinely takes ownership (out-of-order reassembly buffering).
struct TcpSegmentView {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  util::ByteView payload;

  [[nodiscard]] bool has(std::uint8_t flag) const { return (flags & flag) != 0; }
  /// Verifies the pseudo-header checksum, like TcpSegment::parse.
  [[nodiscard]] static std::optional<TcpSegmentView> parse(Ipv4Addr src, Ipv4Addr dst,
                                                           util::ByteView raw);
};

struct TcpSegment {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  util::Bytes payload;

  [[nodiscard]] bool has(std::uint8_t flag) const { return (flags & flag) != 0; }
  /// 20-byte header + payload; checksum over the pseudo-header.
  [[nodiscard]] util::Bytes serialize(Ipv4Addr src, Ipv4Addr dst) const;
  /// serialize() into a caller-provided (typically pooled) buffer; `out`
  /// is cleared first and its capacity reused.
  void serialize_into(Ipv4Addr src, Ipv4Addr dst, util::Bytes& out) const;
  [[nodiscard]] static std::optional<TcpSegment> parse(Ipv4Addr src, Ipv4Addr dst,
                                                       util::ByteView raw);
};

/// Modulo-2^32 sequence comparison helpers.
[[nodiscard]] inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
[[nodiscard]] inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

enum class TcpState : std::uint8_t {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kClosing,
  kTimeWait,
  kCloseWait,
  kLastAck,
};

struct TcpConfig {
  std::size_t mss = 1400;
  std::uint32_t initial_window_segments = 2;  ///< initial cwnd (in MSS)
  sim::Time rto_initial = 1 * sim::kSecond;
  sim::Time rto_min = 200 * sim::kMillisecond;
  sim::Time rto_max = 60 * sim::kSecond;
  sim::Time time_wait = 1 * sim::kSecond;
  unsigned syn_retries = 5;
  unsigned max_retransmits = 12;
};

struct TcpStats {
  std::uint64_t bytes_sent = 0;          ///< app payload handed to send()
  std::uint64_t bytes_acked = 0;
  std::uint64_t bytes_received = 0;      ///< in-order payload delivered up
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rto_events = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t dup_acks = 0;
};

class TcpStack;

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  using DataHandler = std::function<void(util::ByteView data)>;
  using EventHandler = std::function<void()>;

  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] bool established() const { return state_ == TcpState::kEstablished; }
  [[nodiscard]] Ipv4Addr local_ip() const { return local_ip_; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] Ipv4Addr remote_ip() const { return remote_ip_; }
  [[nodiscard]] std::uint16_t remote_port() const { return remote_port_; }
  [[nodiscard]] const TcpStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t unsent_bytes() const { return send_buf_.size(); }
  [[nodiscard]] std::size_t bytes_in_flight() const;

  /// Queue application data for transmission.
  void send(util::ByteView data);
  /// Graceful close (FIN after the send buffer drains).
  void close();
  /// Hard reset.
  void abort();

  void set_on_connect(EventHandler handler) { on_connect_ = std::move(handler); }
  void set_on_data(DataHandler handler) { on_data_ = std::move(handler); }
  /// Fired once, at the first of: peer FIN received (EOF), clean local
  /// teardown completing, a RST, or retransmission exhaustion. After a
  /// peer FIN the connection can still send (CLOSE_WAIT) until close().
  void set_on_close(EventHandler handler) { on_close_ = std::move(handler); }

 private:
  friend class TcpStack;

  TcpConnection(TcpStack& stack, Ipv4Addr local_ip, std::uint16_t local_port,
                Ipv4Addr remote_ip, std::uint16_t remote_port);

  void start_connect();
  void start_accept(const TcpSegmentView& syn);
  void on_segment(const TcpSegmentView& seg);
  void process_ack(const TcpSegmentView& seg);
  void process_payload(const TcpSegmentView& seg);
  void try_send();
  void send_segment(std::uint8_t flags, std::uint32_t seq, util::Bytes payload);
  void send_ack();
  void maybe_send_fin();
  void arm_rtx_timer();
  void cancel_rtx_timer();
  void on_rtx_timeout();
  void enter_time_wait();
  void notify_close();
  void finish(bool notify);

  TcpStack& stack_;
  Ipv4Addr local_ip_;
  std::uint16_t local_port_;
  Ipv4Addr remote_ip_;
  std::uint16_t remote_port_;

  TcpState state_ = TcpState::kClosed;

  // Send side.
  std::deque<std::uint8_t> send_buf_;  ///< unsent application bytes
  util::Bytes inflight_;               ///< sent-but-unacked bytes [snd_una, snd_nxt)
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t peer_window_ = 65535;
  double cwnd_ = 0.0;
  double ssthresh_ = 65535.0 * 16;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;
  unsigned consecutive_rtx_ = 0;

  // RTT estimation (Jacobson/Karels, Karn's rule).
  bool srtt_valid_ = false;
  double srtt_us_ = 0.0;
  double rttvar_us_ = 0.0;
  sim::Time rto_;
  std::optional<std::pair<std::uint32_t, sim::Time>> rtt_sample_;  // (seq, t_sent)

  // Receive side.
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, util::Bytes> out_of_order_;
  std::uint32_t last_ack_sent_ = 0;
  unsigned dup_ack_count_ = 0;

  sim::TimerHandle rtx_timer_;
  sim::TimerHandle time_wait_timer_;

  DataHandler on_data_;
  EventHandler on_connect_;
  EventHandler on_close_;
  TcpStats stats_;
  bool finished_ = false;
  bool close_notified_ = false;
};

using TcpConnectionPtr = std::shared_ptr<TcpConnection>;

/// Per-host TCP layer: demultiplexes segments to connections, owns
/// listeners, and allocates ephemeral ports.
class TcpStack {
 public:
  using SendIpFn = std::function<bool(Ipv4Addr dst, std::uint8_t protocol,
                                      util::ByteView payload)>;
  using AcceptHandler = std::function<void(TcpConnectionPtr conn)>;

  TcpStack(sim::Simulator& simulator, SendIpFn send_ip, TcpConfig config = {});
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const TcpConfig& config() const { return config_; }

  /// Active open. `local_ip` is the host-selected source address.
  [[nodiscard]] TcpConnectionPtr connect(Ipv4Addr local_ip, Ipv4Addr remote_ip,
                                         std::uint16_t remote_port);
  /// Passive open on a port (any local address). Returns false if taken.
  bool listen(std::uint16_t port, AcceptHandler on_accept);
  void close_listener(std::uint16_t port);

  /// Host feeds received TCP payloads here.
  void on_packet(Ipv4Addr src, Ipv4Addr dst, util::ByteView payload);

  [[nodiscard]] std::size_t active_connections() const { return connections_.size(); }

 private:
  friend class TcpConnection;

  struct FlowKey {
    Ipv4Addr local_ip;
    std::uint16_t local_port;
    Ipv4Addr remote_ip;
    std::uint16_t remote_port;
    friend bool operator==(const FlowKey&, const FlowKey&) = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      std::uint64_t v = (static_cast<std::uint64_t>(k.local_ip.value()) << 32) |
                        k.remote_ip.value();
      v ^= (static_cast<std::uint64_t>(k.local_port) << 48) |
           (static_cast<std::uint64_t>(k.remote_port) << 16);
      return std::hash<std::uint64_t>{}(v);
    }
  };

  bool transmit(Ipv4Addr src, Ipv4Addr dst, const TcpSegment& seg);
  void send_rst(Ipv4Addr src, Ipv4Addr dst, const TcpSegmentView& offending);
  void remove(TcpConnection* conn);
  [[nodiscard]] std::uint16_t ephemeral_port();
  [[nodiscard]] std::uint32_t initial_sequence();

  sim::Simulator& sim_;
  SendIpFn send_ip_;
  TcpConfig config_;
  std::unordered_map<FlowKey, TcpConnectionPtr, FlowKeyHash> connections_;
  std::unordered_map<std::uint16_t, AcceptHandler> listeners_;
  std::uint16_t next_ephemeral_ = 40000;
  // Per-simulation stats, shared across connections (registry aggregates).
  obs::CounterId stat_segments_sent_;
  obs::CounterId stat_segments_received_;
  obs::CounterId stat_retransmits_;
  obs::CounterId stat_rto_events_;
  obs::CounterId stat_fast_retransmits_;
  obs::CounterId stat_dup_acks_;
  obs::CounterId stat_reassembly_buffered_;
  // Tracer lifecycle records; connections reach these through the stack
  // (arg packs local<<16|remote port to tell connections apart).
  obs::TraceActorId trace_actor_tcp_;
  obs::TraceNameId trace_syn_sent_;
  obs::TraceNameId trace_established_;
  obs::TraceNameId trace_time_wait_;
  obs::TraceNameId trace_closed_;
};

}  // namespace rogue::net
