// UDP (RFC 768): datagram sockets over the simulated IPv4 stack. Used by
// the UDP-transport VPN (IPsec analogue) and by workload generators.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace rogue::net {

struct UdpDatagram {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  util::Bytes payload;

  [[nodiscard]] util::Bytes serialize(Ipv4Addr src, Ipv4Addr dst) const;
  /// Parse and verify checksum (checksum 0 == not computed, accepted).
  [[nodiscard]] static std::optional<UdpDatagram> parse(Ipv4Addr src, Ipv4Addr dst,
                                                        util::ByteView raw);
};

class UdpStack;

/// A bound UDP socket. Obtain via UdpStack::open(); destroys cleanly when
/// the shared_ptr is dropped (the stack holds weak references).
class UdpSocket {
 public:
  using RxHandler =
      std::function<void(Ipv4Addr src, std::uint16_t sport, util::ByteView payload)>;

  UdpSocket(UdpStack& stack, std::uint16_t port) : stack_(stack), port_(port) {}
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  void set_rx(RxHandler handler) { rx_ = std::move(handler); }

  /// Send a datagram; returns false if the host had no route.
  bool send_to(Ipv4Addr dst, std::uint16_t dport, util::ByteView payload);

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_received() const { return received_; }

 private:
  friend class UdpStack;

  UdpStack& stack_;
  std::uint16_t port_;
  RxHandler rx_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// Per-host UDP demultiplexer.
class UdpStack {
 public:
  /// Transmit hook provided by the host: send an IPv4 payload.
  using SendIpFn = std::function<bool(Ipv4Addr dst, std::uint8_t protocol,
                                      util::ByteView payload)>;

  explicit UdpStack(SendIpFn send_ip) : send_ip_(std::move(send_ip)) {}

  /// Bind a socket; port 0 picks an ephemeral port. Returns nullptr if the
  /// port is taken.
  [[nodiscard]] std::shared_ptr<UdpSocket> open(std::uint16_t port);

  /// Host feeds received UDP payloads here.
  void on_packet(Ipv4Addr src, Ipv4Addr dst, util::ByteView payload);

 private:
  friend class UdpSocket;

  SendIpFn send_ip_;
  std::unordered_map<std::uint16_t, UdpSocket*> sockets_;
  std::uint16_t next_ephemeral_ = 33000;
};

}  // namespace rogue::net
