#include "net/checksum.hpp"

namespace rogue::net {

namespace {
[[nodiscard]] std::uint32_t sum16(util::ByteView data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i] << 8);
  return acc;
}

[[nodiscard]] std::uint16_t fold(std::uint32_t acc) {
  while ((acc >> 16) != 0) acc = (acc & 0xffffu) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffffu);
}
}  // namespace

std::uint16_t internet_checksum(util::ByteView data) {
  return fold(sum16(data, 0));
}

std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                                 util::ByteView segment) {
  std::uint32_t acc = 0;
  acc += src.value() >> 16;
  acc += src.value() & 0xffffu;
  acc += dst.value() >> 16;
  acc += dst.value() & 0xffffu;
  acc += protocol;
  acc += static_cast<std::uint32_t>(segment.size());
  return fold(sum16(segment, acc));
}

}  // namespace rogue::net
