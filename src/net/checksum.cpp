#include "net/checksum.hpp"

#include <bit>
#include <cstring>

namespace rogue::net {

namespace {
// Wide accumulation: sum the buffer 64 bits at a time in native byte order
// with end-around carry, fold to 16 bits, then swap into network order.
// One's-complement sums are byte-order independent (RFC 1071 §2B), so this
// matches the big-endian byte-pair loop exactly — including the 0/0xffff
// representative, since a nonzero buffer can never fold to zero on either
// path. The odd trailing byte is padded on its low-address side, which the
// one-byte memcpy into a zeroed u16 reproduces on either endianness.
[[nodiscard]] std::uint32_t sum16(util::ByteView data, std::uint32_t acc) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t sum = 0;
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    sum += w;
    sum += static_cast<std::uint64_t>(sum < w);  // end-around carry
    p += 8;
    n -= 8;
  }
  sum = (sum & 0xffffffffull) + (sum >> 32);
  if (n >= 4) {
    std::uint32_t w;
    std::memcpy(&w, p, 4);
    sum += w;
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    std::uint16_t w;
    std::memcpy(&w, p, 2);
    sum += w;
    p += 2;
    n -= 2;
  }
  if (n != 0) {
    std::uint16_t w = 0;
    std::memcpy(&w, p, 1);
    sum += w;
  }
  sum = (sum & 0xffffffffull) + (sum >> 32);
  while ((sum >> 16) != 0) sum = (sum & 0xffffull) + (sum >> 16);
  auto r = static_cast<std::uint16_t>(sum);
  if constexpr (std::endian::native == std::endian::little) {
    r = static_cast<std::uint16_t>((r >> 8) | (r << 8));
  }
  return acc + r;
}

[[nodiscard]] std::uint16_t fold(std::uint32_t acc) {
  while ((acc >> 16) != 0) acc = (acc & 0xffffu) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffffu);
}
}  // namespace

std::uint16_t internet_checksum(util::ByteView data) {
  return fold(sum16(data, 0));
}

std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                                 util::ByteView segment) {
  std::uint32_t acc = 0;
  acc += src.value() >> 16;
  acc += src.value() & 0xffffu;
  acc += dst.value() >> 16;
  acc += dst.value() & 0xffffu;
  acc += protocol;
  acc += static_cast<std::uint32_t>(segment.size());
  return fold(sum16(segment, acc));
}

}  // namespace rogue::net
