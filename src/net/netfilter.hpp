// Netfilter-style packet hooks with NAT and connection tracking — the
// substrate for the paper's redirection rule (§4.1):
//
//   iptables -t nat -A PREROUTING -p tcp -d Target-IP --dport 80
//            -j DNAT --to Gateway-IP:10101
//
// Hooks mirror the kernel's: PREROUTING (DNAT) -> routing -> FORWARD /
// INPUT -> OUTPUT -> POSTROUTING (SNAT). First matching rule wins;
// established flows are translated by conntrack without re-evaluating
// rules, and replies are reverse-translated automatically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "net/ipv4.hpp"
#include "util/bytes.hpp"

namespace rogue::net {

enum class Hook : std::uint8_t {
  kPrerouting,
  kInput,
  kForward,
  kOutput,
  kPostrouting,
};

enum class Verdict : std::uint8_t { kAccept, kDrop };

enum class RuleTarget : std::uint8_t {
  kAccept,
  kDrop,
  kDnat,      ///< rewrite destination ip[:port]  (PREROUTING/OUTPUT)
  kSnat,      ///< rewrite source ip[:port]       (POSTROUTING)
  kRedirect,  ///< DNAT to this host's interface address, given port
};

/// Match criteria; unset fields match anything (iptables semantics).
struct RuleMatch {
  std::optional<std::uint8_t> protocol;             // -p tcp/udp/icmp
  std::optional<Ipv4Addr> src;                      // -s (with src_mask)
  Ipv4Addr src_mask = Ipv4Addr(0xffffffffu);
  std::optional<Ipv4Addr> dst;                      // -d (with dst_mask)
  Ipv4Addr dst_mask = Ipv4Addr(0xffffffffu);
  std::optional<std::uint16_t> dport;               // --dport
  std::optional<std::uint16_t> sport;               // --sport
  std::string in_iface;                             // -i (empty = any)
  std::string out_iface;                            // -o (empty = any)
};

struct Rule {
  RuleMatch match;
  RuleTarget target = RuleTarget::kAccept;
  Ipv4Addr nat_ip;            ///< for DNAT/SNAT
  std::uint16_t nat_port = 0; ///< 0 == keep original port
};

/// Flow endpoints for conntrack.
struct FlowTuple {
  std::uint8_t protocol = 0;
  Ipv4Addr src;
  std::uint16_t sport = 0;
  Ipv4Addr dst;
  std::uint16_t dport = 0;

  friend bool operator==(const FlowTuple&, const FlowTuple&) = default;
};

struct NetfilterCounters {
  std::uint64_t evaluated = 0;
  std::uint64_t dropped = 0;
  std::uint64_t dnat_created = 0;
  std::uint64_t snat_created = 0;
  std::uint64_t translated = 0;
};

class Netfilter {
 public:
  /// iptables -t <table> -A <chain> : append a rule to a hook's chain.
  void append(Hook hook, Rule rule);
  void clear(Hook hook);
  void clear_all();

  /// Run a hook over the packet (mutating it for NAT). `in_iface` is the
  /// arrival interface ("" for locally-generated), `out_iface` the chosen
  /// egress ("" before routing). `local_ip` is the address REDIRECT
  /// targets resolve to.
  Verdict run(Hook hook, Ipv4Packet& packet, std::string_view in_iface,
              std::string_view out_iface, Ipv4Addr local_ip);

  [[nodiscard]] const NetfilterCounters& counters() const { return counters_; }
  [[nodiscard]] std::size_t conntrack_size() const { return nat_entries_.size(); }

  /// True when run() on this hook is a guaranteed no-op for every packet:
  /// the chain is empty and — for the NAT hooks, which consult conntrack
  /// before any rule — there are no translation entries either. Gates the
  /// host's zero-copy rx fast path.
  [[nodiscard]] bool quiescent(Hook hook) const {
    if (!chains_[static_cast<std::size_t>(hook)].empty()) return false;
    if (hook == Hook::kPrerouting || hook == Hook::kPostrouting) {
      return nat_entries_.empty();
    }
    return true;
  }

  /// Extract transport ports (TCP/UDP only).
  [[nodiscard]] static std::optional<std::pair<std::uint16_t, std::uint16_t>>
  ports_of(const Ipv4Packet& packet);

 private:
  struct NatEntry {
    std::uint8_t protocol = 0;
    bool is_dnat = false;
    // Untranslated remote endpoint (the flow initiator for DNAT, the
    // far side for SNAT).
    Ipv4Addr peer_ip;
    std::uint16_t peer_port = 0;
    // Original and rewritten local endpoint.
    Ipv4Addr orig_ip;
    std::uint16_t orig_port = 0;
    Ipv4Addr new_ip;
    std::uint16_t new_port = 0;
  };

  [[nodiscard]] bool matches(const RuleMatch& m, const Ipv4Packet& p,
                             std::string_view in_iface,
                             std::string_view out_iface) const;
  bool apply_nat_prerouting(Ipv4Packet& packet);
  bool apply_nat_postrouting(Ipv4Packet& packet);
  static void rewrite(Ipv4Packet& packet, bool rewrite_dst, Ipv4Addr ip,
                      std::uint16_t port);

  std::vector<Rule> chains_[5];
  std::vector<NatEntry> nat_entries_;
  NetfilterCounters counters_;
};

}  // namespace rogue::net
