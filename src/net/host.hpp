// A simulated host: one or more NetIfs bound to an IPv4 stack with ARP,
// longest-prefix routing, optional IP forwarding (the rogue gateway flips
// this on — "echo 1 > /proc/sys/net/ipv4/ip_forward" in the paper's
// bridge script), netfilter hooks, and TCP/UDP socket layers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/arp.hpp"
#include "net/ipv4.hpp"
#include "net/link.hpp"
#include "net/netfilter.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "sim/simulator.hpp"

namespace rogue::net {

struct HostCounters {
  std::uint64_t ip_received = 0;
  std::uint64_t ip_delivered = 0;
  std::uint64_t ip_forwarded = 0;
  std::uint64_t ip_sent = 0;
  std::uint64_t ip_dropped_no_route = 0;
  std::uint64_t ip_dropped_ttl = 0;
  std::uint64_t ip_dropped_filter = 0;
  std::uint64_t arp_unresolved = 0;
  std::uint64_t icmp_echo_replies = 0;
};

class Host {
 public:
  /// Handler for raw IP protocols (e.g. the VPN's IP-in-IP transport).
  using ProtocolHandler =
      std::function<void(Ipv4Addr src, Ipv4Addr dst, util::ByteView payload)>;
  /// Observation tap: point is "rx", "tx", or "fwd".
  using PacketTap = std::function<void(std::string_view point, const Ipv4Packet& packet,
                                       std::string_view ifname)>;

  Host(sim::Simulator& simulator, std::string name, TcpConfig tcp_config = {});

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Attach an interface (host takes ownership) and return it.
  NetIf& attach(std::unique_ptr<NetIf> iface);
  /// Convenience: create + attach a wired interface on a segment.
  WiredIf& add_wired(const std::string& ifname, L2Segment& segment, MacAddr mac);

  [[nodiscard]] NetIf* interface(std::string_view ifname);
  [[nodiscard]] const std::vector<std::unique_ptr<NetIf>>& interfaces() const {
    return ifaces_;
  }
  [[nodiscard]] ArpCache& arp(std::string_view ifname);

  /// ifconfig <if> <ip> netmask /prefix  + connected route.
  void configure(std::string_view ifname, Ipv4Addr ip, unsigned prefix_len);

  void set_ip_forward(bool enabled) { ip_forward_ = enabled; }
  [[nodiscard]] bool ip_forward() const { return ip_forward_; }

  [[nodiscard]] RoutingTable& routes() { return routes_; }
  [[nodiscard]] Netfilter& netfilter() { return netfilter_; }
  [[nodiscard]] TcpStack& tcp() { return tcp_; }
  [[nodiscard]] UdpStack& udp() { return udp_; }
  [[nodiscard]] const HostCounters& counters() const { return counters_; }

  [[nodiscard]] bool is_local_ip(Ipv4Addr ip) const;
  /// First configured interface address (convenience for single-homed hosts).
  [[nodiscard]] Ipv4Addr primary_ip() const;

  /// Open a TCP connection; source IP chosen by routing. nullptr if no route.
  [[nodiscard]] TcpConnectionPtr tcp_connect(Ipv4Addr dst, std::uint16_t port);
  bool tcp_listen(std::uint16_t port, TcpStack::AcceptHandler on_accept);
  [[nodiscard]] std::shared_ptr<UdpSocket> udp_open(std::uint16_t port);

  /// Send a transport payload (already serialized TCP/UDP/other) to dst.
  bool send_ip(Ipv4Addr dst, std::uint8_t protocol, util::ByteView payload);
  /// Send a fully-formed packet (src may be any()); used by tunnels.
  bool send_packet(Ipv4Packet packet);

  void register_protocol(std::uint8_t protocol, ProtocolHandler handler);
  void set_tap(PacketTap tap) { tap_ = std::move(tap); }

  /// ICMP echo; `done(rtt_us)` fires on reply, `done(nullopt)` on timeout.
  void ping(Ipv4Addr dst, std::function<void(std::optional<sim::Time>)> done,
            sim::Time timeout = sim::kSecond);

 private:
  void on_frame(NetIf& iface, const L2Frame& frame);
  void on_ip_packet(NetIf& iface, Ipv4Packet packet);
  void deliver_local(const Ipv4Packet& packet);
  /// Zero-copy variant of deliver_local for the rx fast path.
  void deliver_local_view(const Ipv4View& packet);
  void deliver_to_stack(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                        util::ByteView payload);
  void forward(NetIf& in_iface, Ipv4Packet packet);
  /// Route + ARP-resolve + hand to the interface.
  void transmit(Ipv4Packet packet, const Route& route);
  void handle_icmp(Ipv4Addr src, util::ByteView payload);

  sim::Simulator& sim_;
  std::string name_;
  std::vector<std::unique_ptr<NetIf>> ifaces_;
  std::unordered_map<std::string, std::unique_ptr<ArpCache>> arps_;
  RoutingTable routes_;
  Netfilter netfilter_;
  bool ip_forward_ = false;
  TcpStack tcp_;
  UdpStack udp_;
  std::unordered_map<std::uint8_t, ProtocolHandler> protocol_handlers_;
  PacketTap tap_;
  HostCounters counters_;
  // Shared per-simulation stats (all hosts aggregate into one slot set).
  obs::CounterId stat_ip_sent_;
  obs::CounterId stat_ip_received_;
  obs::CounterId stat_ip_delivered_;
  obs::CounterId stat_ip_forwarded_;
  obs::CounterId stat_ip_drop_no_route_;
  obs::CounterId stat_ip_drop_ttl_;
  obs::CounterId stat_ip_drop_filter_;
  obs::CounterId stat_arp_unresolved_;
  std::uint16_t next_ip_id_ = 1;
  std::uint16_t next_ping_id_ = 1;
  std::unordered_map<std::uint16_t,
                     std::pair<sim::Time, std::function<void(std::optional<sim::Time>)>>>
      pending_pings_;
};

}  // namespace rogue::net
