#include "net/udp.hpp"

#include "net/checksum.hpp"
#include "net/ipv4.hpp"

namespace rogue::net {

util::Bytes UdpDatagram::serialize(Ipv4Addr src, Ipv4Addr dst) const {
  util::Bytes out;
  out.reserve(8 + payload.size());
  util::ByteWriter w(out);
  w.u16be(sport);
  w.u16be(dport);
  w.u16be(static_cast<std::uint16_t>(8 + payload.size()));
  w.u16be(0);  // checksum placeholder
  w.raw(payload);
  const std::uint16_t sum = transport_checksum(src, dst, kProtoUdp, out);
  out[6] = static_cast<std::uint8_t>(sum >> 8);
  out[7] = static_cast<std::uint8_t>(sum);
  return out;
}

std::optional<UdpDatagram> UdpDatagram::parse(Ipv4Addr src, Ipv4Addr dst,
                                              util::ByteView raw) {
  if (raw.size() < 8) return std::nullopt;
  const auto stored = static_cast<std::uint16_t>((raw[6] << 8) | raw[7]);
  if (stored != 0 && transport_checksum(src, dst, kProtoUdp, raw) != 0) {
    return std::nullopt;
  }
  util::ByteReader r(raw);
  UdpDatagram d;
  d.sport = r.u16be();
  d.dport = r.u16be();
  const std::uint16_t len = r.u16be();
  (void)r.u16be();
  if (len < 8 || len > raw.size()) return std::nullopt;
  const util::ByteView body = raw.subspan(8, len - 8u);
  d.payload.assign(body.begin(), body.end());
  return d;
}

UdpSocket::~UdpSocket() { stack_.sockets_.erase(port_); }

bool UdpSocket::send_to(Ipv4Addr dst, std::uint16_t dport, util::ByteView payload) {
  UdpDatagram d;
  d.sport = port_;
  d.dport = dport;
  d.payload.assign(payload.begin(), payload.end());
  ++sent_;
  // The source IP is only known after routing; the host recomputes the
  // transport checksum (fix_transport_checksum) once it assigns src.
  const util::Bytes raw = d.serialize(Ipv4Addr::any(), dst);
  return stack_.send_ip_(dst, kProtoUdp, raw);
}

std::shared_ptr<UdpSocket> UdpStack::open(std::uint16_t port) {
  if (port == 0) {
    while (sockets_.contains(next_ephemeral_)) ++next_ephemeral_;
    port = next_ephemeral_++;
  } else if (sockets_.contains(port)) {
    return nullptr;
  }
  auto socket = std::make_shared<UdpSocket>(*this, port);
  sockets_[port] = socket.get();
  return socket;
}

void UdpStack::on_packet(Ipv4Addr src, Ipv4Addr dst, util::ByteView payload) {
  const auto dgram = UdpDatagram::parse(src, dst, payload);
  if (!dgram) return;
  const auto it = sockets_.find(dgram->dport);
  if (it == sockets_.end()) return;
  ++it->second->received_;
  if (it->second->rx_) it->second->rx_(src, dgram->sport, dgram->payload);
}

}  // namespace rogue::net
