#include "net/netfilter.hpp"

#include "net/checksum.hpp"
#include "util/assert.hpp"

namespace rogue::net {

void Netfilter::append(Hook hook, Rule rule) {
  chains_[static_cast<std::size_t>(hook)].push_back(std::move(rule));
}

void Netfilter::clear(Hook hook) { chains_[static_cast<std::size_t>(hook)].clear(); }

void Netfilter::clear_all() {
  for (auto& chain : chains_) chain.clear();
  nat_entries_.clear();
}

std::optional<std::pair<std::uint16_t, std::uint16_t>> Netfilter::ports_of(
    const Ipv4Packet& packet) {
  if (packet.protocol != kProtoTcp && packet.protocol != kProtoUdp) {
    return std::nullopt;
  }
  if (packet.payload.size() < 4) return std::nullopt;
  const auto sport = static_cast<std::uint16_t>((packet.payload[0] << 8) |
                                                packet.payload[1]);
  const auto dport = static_cast<std::uint16_t>((packet.payload[2] << 8) |
                                                packet.payload[3]);
  return std::make_pair(sport, dport);
}

bool Netfilter::matches(const RuleMatch& m, const Ipv4Packet& p,
                        std::string_view in_iface, std::string_view out_iface) const {
  if (m.protocol && *m.protocol != p.protocol) return false;
  if (m.src && !p.src.in_subnet(*m.src, m.src_mask)) return false;
  if (m.dst && !p.dst.in_subnet(*m.dst, m.dst_mask)) return false;
  if (!m.in_iface.empty() && m.in_iface != in_iface) return false;
  if (!m.out_iface.empty() && m.out_iface != out_iface) return false;
  if (m.dport || m.sport) {
    const auto ports = ports_of(p);
    if (!ports) return false;
    if (m.sport && *m.sport != ports->first) return false;
    if (m.dport && *m.dport != ports->second) return false;
  }
  return true;
}

void Netfilter::rewrite(Ipv4Packet& packet, bool rewrite_dst, Ipv4Addr ip,
                        std::uint16_t port) {
  if (rewrite_dst) {
    packet.dst = ip;
  } else {
    packet.src = ip;
  }
  if (port != 0 && packet.payload.size() >= 4 &&
      (packet.protocol == kProtoTcp || packet.protocol == kProtoUdp)) {
    const std::size_t off = rewrite_dst ? 2 : 0;
    packet.payload[off] = static_cast<std::uint8_t>(port >> 8);
    packet.payload[off + 1] = static_cast<std::uint8_t>(port);
  }
  // The transport checksum covers the IP pseudo-header; refresh it.
  fix_transport_checksum(packet);
}

bool Netfilter::apply_nat_prerouting(Ipv4Packet& packet) {
  const auto ports = ports_of(packet);
  const std::uint16_t sport = ports ? ports->first : 0;
  const std::uint16_t dport = ports ? ports->second : 0;

  for (const auto& e : nat_entries_) {
    if (e.protocol != packet.protocol) continue;
    if (e.is_dnat) {
      // Forward direction of an established DNAT flow.
      if (packet.src == e.peer_ip && sport == e.peer_port &&
          packet.dst == e.orig_ip && dport == e.orig_port) {
        rewrite(packet, /*rewrite_dst=*/true, e.new_ip, e.new_port);
        ++counters_.translated;
        return true;
      }
    } else {
      // Reply direction of an SNAT flow: undo the source rewrite.
      if (packet.src == e.peer_ip && sport == e.peer_port &&
          packet.dst == e.new_ip && dport == e.new_port) {
        rewrite(packet, /*rewrite_dst=*/true, e.orig_ip, e.orig_port);
        ++counters_.translated;
        return true;
      }
    }
  }
  return false;
}

bool Netfilter::apply_nat_postrouting(Ipv4Packet& packet) {
  const auto ports = ports_of(packet);
  const std::uint16_t sport = ports ? ports->first : 0;
  const std::uint16_t dport = ports ? ports->second : 0;

  for (const auto& e : nat_entries_) {
    if (e.protocol != packet.protocol) continue;
    if (e.is_dnat) {
      // Reply direction of a DNAT flow: restore the original destination
      // as the source, so the client sees the address it talked to.
      if (packet.src == e.new_ip && sport == e.new_port &&
          packet.dst == e.peer_ip && dport == e.peer_port) {
        rewrite(packet, /*rewrite_dst=*/false, e.orig_ip, e.orig_port);
        ++counters_.translated;
        return true;
      }
    } else {
      // Forward direction of an established SNAT flow.
      if (packet.src == e.orig_ip && sport == e.orig_port &&
          packet.dst == e.peer_ip && dport == e.peer_port) {
        rewrite(packet, /*rewrite_dst=*/false, e.new_ip, e.new_port);
        ++counters_.translated;
        return true;
      }
    }
  }
  return false;
}

Verdict Netfilter::run(Hook hook, Ipv4Packet& packet, std::string_view in_iface,
                       std::string_view out_iface, Ipv4Addr local_ip) {
  ++counters_.evaluated;

  // Conntrack first: established flows bypass rule evaluation.
  if (hook == Hook::kPrerouting && apply_nat_prerouting(packet)) {
    return Verdict::kAccept;
  }
  if (hook == Hook::kPostrouting && apply_nat_postrouting(packet)) {
    return Verdict::kAccept;
  }

  for (const auto& rule : chains_[static_cast<std::size_t>(hook)]) {
    if (!matches(rule.match, packet, in_iface, out_iface)) continue;

    switch (rule.target) {
      case RuleTarget::kAccept:
        return Verdict::kAccept;
      case RuleTarget::kDrop:
        ++counters_.dropped;
        return Verdict::kDrop;
      case RuleTarget::kDnat:
      case RuleTarget::kRedirect: {
        ROGUE_ASSERT_MSG(hook == Hook::kPrerouting || hook == Hook::kOutput,
                         "DNAT/REDIRECT only valid in PREROUTING/OUTPUT");
        const auto ports = ports_of(packet);
        const Ipv4Addr new_ip =
            rule.target == RuleTarget::kRedirect ? local_ip : rule.nat_ip;
        const std::uint16_t new_port =
            rule.nat_port != 0 ? rule.nat_port : (ports ? ports->second : 0);
        NatEntry e;
        e.protocol = packet.protocol;
        e.is_dnat = true;
        e.peer_ip = packet.src;
        e.peer_port = ports ? ports->first : 0;
        e.orig_ip = packet.dst;
        e.orig_port = ports ? ports->second : 0;
        e.new_ip = new_ip;
        e.new_port = new_port;
        nat_entries_.push_back(e);
        ++counters_.dnat_created;
        rewrite(packet, /*rewrite_dst=*/true, new_ip, new_port);
        return Verdict::kAccept;
      }
      case RuleTarget::kSnat: {
        ROGUE_ASSERT_MSG(hook == Hook::kPostrouting,
                         "SNAT only valid in POSTROUTING");
        const auto ports = ports_of(packet);
        NatEntry e;
        e.protocol = packet.protocol;
        e.is_dnat = false;
        e.peer_ip = packet.dst;
        e.peer_port = ports ? ports->second : 0;
        e.orig_ip = packet.src;
        e.orig_port = ports ? ports->first : 0;
        e.new_ip = rule.nat_ip;
        e.new_port = rule.nat_port != 0 ? rule.nat_port : (ports ? ports->first : 0);
        nat_entries_.push_back(e);
        ++counters_.snat_created;
        rewrite(packet, /*rewrite_dst=*/false, e.new_ip, e.new_port);
        return Verdict::kAccept;
      }
    }
  }
  return Verdict::kAccept;  // default policy ACCEPT
}

}  // namespace rogue::net
