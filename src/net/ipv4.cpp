#include "net/ipv4.hpp"

#include <algorithm>
#include <bit>

#include "net/checksum.hpp"

namespace rogue::net {

util::Bytes Ipv4Packet::serialize() const {
  util::Bytes out;
  serialize_into(out);
  return out;
}

void Ipv4Packet::serialize_into(util::Bytes& out) const {
  out.clear();
  out.reserve(20 + payload.size());
  util::ByteWriter w(out);
  w.u8(0x45);  // version 4, IHL 5
  w.u8(tos);
  w.u16be(static_cast<std::uint16_t>(20 + payload.size()));
  w.u16be(id);
  w.u16be(0);  // flags/fragment offset: fragmentation not modelled
  w.u8(ttl);
  w.u8(protocol);
  w.u16be(0);  // checksum placeholder
  w.u32be(src.value());
  w.u32be(dst.value());
  const std::uint16_t checksum = internet_checksum(util::ByteView(out.data(), 20));
  out[10] = static_cast<std::uint8_t>(checksum >> 8);
  out[11] = static_cast<std::uint8_t>(checksum);
  w.raw(payload);
}

std::optional<Ipv4Packet> Ipv4Packet::parse(util::ByteView raw) {
  const auto view = Ipv4View::parse(raw);
  if (!view) return std::nullopt;
  return view->to_packet();
}

std::optional<Ipv4View> Ipv4View::parse(util::ByteView raw) {
  if (raw.size() < 20) return std::nullopt;
  if (raw[0] != 0x45) return std::nullopt;  // options unsupported
  if (internet_checksum(raw.subspan(0, 20)) != 0) return std::nullopt;

  util::ByteReader r(raw);
  Ipv4View p;
  (void)r.u8();
  p.tos = r.u8();
  const std::uint16_t total_len = r.u16be();
  p.id = r.u16be();
  (void)r.u16be();
  p.ttl = r.u8();
  p.protocol = r.u8();
  (void)r.u16be();
  p.src = Ipv4Addr(r.u32be());
  p.dst = Ipv4Addr(r.u32be());
  if (total_len < 20 || total_len > raw.size()) return std::nullopt;
  p.payload = raw.subspan(20, total_len - 20u);
  return p;
}

Ipv4Packet Ipv4View::to_packet() const {
  Ipv4Packet p;
  p.tos = tos;
  p.id = id;
  p.ttl = ttl;
  p.protocol = protocol;
  p.src = src;
  p.dst = dst;
  p.payload.assign(payload.begin(), payload.end());
  return p;
}

void fix_transport_checksum(Ipv4Packet& packet) {
  auto& p = packet.payload;
  if (packet.protocol == kProtoTcp && p.size() >= 20) {
    p[16] = 0;
    p[17] = 0;
    const std::uint16_t sum =
        transport_checksum(packet.src, packet.dst, packet.protocol, p);
    p[16] = static_cast<std::uint8_t>(sum >> 8);
    p[17] = static_cast<std::uint8_t>(sum);
  } else if (packet.protocol == kProtoUdp && p.size() >= 8) {
    p[6] = 0;
    p[7] = 0;
    const std::uint16_t sum =
        transport_checksum(packet.src, packet.dst, packet.protocol, p);
    p[6] = static_cast<std::uint8_t>(sum >> 8);
    p[7] = static_cast<std::uint8_t>(sum);
  }
}

void RoutingTable::add(Route route) { routes_.push_back(std::move(route)); }

void RoutingTable::add_host(Ipv4Addr host, std::string ifname) {
  add(Route{host, Ipv4Addr(0xffffffffu), Ipv4Addr::any(), std::move(ifname), 0});
}

void RoutingTable::add_default(Ipv4Addr gateway, std::string ifname) {
  add(Route{Ipv4Addr::any(), Ipv4Addr::any(), gateway, std::move(ifname), 100});
}

void RoutingTable::remove_by_interface(std::string_view ifname) {
  std::erase_if(routes_, [&](const Route& r) { return r.ifname == ifname; });
}

void RoutingTable::remove_host(Ipv4Addr host) {
  std::erase_if(routes_, [&](const Route& r) {
    return r.network == host && r.mask == Ipv4Addr(0xffffffffu);
  });
}

void RoutingTable::remove_default() {
  std::erase_if(routes_, [](const Route& r) { return r.mask == Ipv4Addr::any(); });
}

std::optional<Route> RoutingTable::lookup(Ipv4Addr dst) const {
  const Route* best = nullptr;
  int best_len = -1;
  for (const auto& r : routes_) {
    if (!dst.in_subnet(r.network, r.mask)) continue;
    const int len = std::popcount(r.mask.value());
    if (len > best_len || (len == best_len && best != nullptr && r.metric < best->metric)) {
      best = &r;
      best_len = len;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

}  // namespace rogue::net
