// RFC 1071 Internet checksum, used by the IPv4 header and the TCP/UDP
// pseudo-header checksums.
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace rogue::net {

/// One's-complement sum over `data` (odd trailing byte zero-padded).
[[nodiscard]] std::uint16_t internet_checksum(util::ByteView data);

/// TCP/UDP checksum with the IPv4 pseudo-header prepended.
[[nodiscard]] std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst,
                                               std::uint8_t protocol,
                                               util::ByteView segment);

}  // namespace rogue::net
