#include "net/arp.hpp"

#include <algorithm>

namespace rogue::net {

util::Bytes ArpPacket::serialize() const {
  util::Bytes out;
  serialize_into(out);
  return out;
}

void ArpPacket::serialize_into(util::Bytes& out) const {
  out.clear();
  out.reserve(28);
  util::ByteWriter w(out);
  w.u16be(1);       // htype: Ethernet
  w.u16be(0x0800);  // ptype: IPv4
  w.u8(6);
  w.u8(4);
  w.u16be(static_cast<std::uint16_t>(op));
  w.raw(util::ByteView(sender_mac.octets().data(), 6));
  w.u32be(sender_ip.value());
  w.raw(util::ByteView(target_mac.octets().data(), 6));
  w.u32be(target_ip.value());
}

std::optional<ArpPacket> ArpPacket::parse(util::ByteView raw) {
  if (raw.size() < 28) return std::nullopt;
  util::ByteReader r(raw);
  if (r.u16be() != 1 || r.u16be() != 0x0800) return std::nullopt;
  if (r.u8() != 6 || r.u8() != 4) return std::nullopt;
  ArpPacket p;
  const std::uint16_t op = r.u16be();
  if (op != 1 && op != 2) return std::nullopt;
  p.op = static_cast<ArpOp>(op);
  auto read_mac = [&r] {
    const auto v = r.raw(6);
    std::array<std::uint8_t, 6> o{};
    std::copy(v.begin(), v.end(), o.begin());
    return MacAddr(o);
  };
  p.sender_mac = read_mac();
  p.sender_ip = Ipv4Addr(r.u32be());
  p.target_mac = read_mac();
  p.target_ip = Ipv4Addr(r.u32be());
  if (!r.ok()) return std::nullopt;
  return p;
}

ArpCache::ArpCache(sim::Simulator& simulator, MacAddr own_mac, TxFn tx)
    : sim_(simulator), own_mac_(own_mac), tx_(std::move(tx)) {
  obs::StatsRegistry& stats = sim_.stats();
  stat_requests_ = stats.counter("net.arp.requests");
  stat_replies_ = stats.counter("net.arp.replies");
  stat_failures_ = stats.counter("net.arp.failures");
  obs::Tracer& tracer = sim_.tracer();
  trace_actor_ = tracer.actor("arp:" + own_mac_.to_string());
  trace_request_ = tracer.name("net.arp.request");
  trace_reply_ = tracer.name("net.arp.reply");
}

std::optional<MacAddr> ArpCache::lookup(Ipv4Addr ip) const {
  const auto it = table_.find(ip);
  if (it == table_.end()) return std::nullopt;
  if (it->second.expires != 0 && it->second.expires <= sim_.now()) {
    return std::nullopt;  // aged out; next resolve() re-requests
  }
  return it->second.mac;
}

void ArpCache::insert(Ipv4Addr ip, MacAddr mac) {
  table_[ip] = Entry{mac, ttl_ == 0 ? 0 : sim_.now() + ttl_};
  const auto it = pending_.find(ip);
  if (it != pending_.end()) {
    sim_.cancel(it->second.timer);
    auto waiters = std::move(it->second.waiters);
    pending_.erase(it);
    for (auto& w : waiters) w(ip, mac);
  }
}

void ArpCache::flush() { table_.clear(); }

void ArpCache::resolve(Ipv4Addr ip, ResolvedFn done) {
  if (const auto mac = lookup(ip)) {
    done(ip, *mac);
    return;
  }
  auto& pending = pending_[ip];
  pending.waiters.push_back(std::move(done));
  if (pending.waiters.size() == 1) {
    pending.attempts = 1;
    send_request(ip);
    pending.timer = sim_.after(kRetryDelay, [this, ip] { on_timeout(ip); });
  }
}

void ArpCache::send_request(Ipv4Addr ip) {
  ArpPacket req;
  req.op = ArpOp::kRequest;
  req.sender_mac = own_mac_;
  req.sender_ip = own_ip_;
  req.target_mac = MacAddr{};
  req.target_ip = ip;
  ++requests_sent_;
  sim_.stats().add(stat_requests_);
  sim_.tracer().instant(trace_request_, trace_actor_, obs::TraceLayer::kNet, 0,
                        ip.value());
  tx_(req);
}

void ArpCache::on_timeout(Ipv4Addr ip) {
  const auto it = pending_.find(ip);
  if (it == pending_.end()) return;
  if (it->second.attempts >= kMaxAttempts) {
    ++failures_;
    sim_.stats().add(stat_failures_);
    pending_.erase(it);
    return;
  }
  ++it->second.attempts;
  send_request(ip);
  it->second.timer = sim_.after(kRetryDelay, [this, ip] { on_timeout(ip); });
}

void ArpCache::on_packet(const ArpPacket& packet) {
  if (observer_) observer_(packet);

  // Learn the sender mapping opportunistically (like real stacks).
  if (!packet.sender_ip.is_any()) {
    insert(packet.sender_ip, packet.sender_mac);
  }

  if (packet.op != ArpOp::kRequest) return;

  // Are we (or our proxy) the target?
  std::optional<MacAddr> answer;
  if (!own_ip_.is_any() && packet.target_ip == own_ip_) {
    answer = own_mac_;
  } else if (proxy_) {
    answer = proxy_(packet.target_ip);
  }
  if (!answer) return;

  ArpPacket reply;
  reply.op = ArpOp::kReply;
  reply.sender_mac = *answer;
  reply.sender_ip = packet.target_ip;
  reply.target_mac = packet.sender_mac;
  reply.target_ip = packet.sender_ip;
  ++replies_sent_;
  sim_.stats().add(stat_replies_);
  sim_.tracer().instant(trace_reply_, trace_actor_, obs::TraceLayer::kNet, 0,
                        packet.target_ip.value());
  tx_(reply);
}

}  // namespace rogue::net
