// Link-layer plumbing: the NetIf abstraction hosts bind their IP stack to,
// wired segments (learning switch vs hub — the distinction behind the
// paper's §1.1 claim that switched wired LANs resist casual sniffing),
// and adapters that put a host on a simulated 802.11 station or behind an
// access point's distribution-system side.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dot11/ap.hpp"
#include "dot11/sta.hpp"
#include "net/addr.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace rogue::net {

/// An L2 frame as seen by hosts (the 802.11 adapters translate to/from
/// native 802.11 data frames).
struct L2Frame {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = 0;
  util::Bytes payload;
};

/// Network interface attached to a host. Receives frames via the callback
/// (including, on shared media, frames not addressed to the host — the
/// host stack filters; sniffers don't).
class NetIf {
 public:
  using RxCallback = std::function<void(NetIf&, const L2Frame&)>;

  NetIf(std::string name, MacAddr mac) : name_(std::move(name)), mac_(mac) {}
  virtual ~NetIf() = default;

  NetIf(const NetIf&) = delete;
  NetIf& operator=(const NetIf&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MacAddr mac() const { return mac_; }
  [[nodiscard]] Ipv4Addr ip() const { return ip_; }
  [[nodiscard]] Ipv4Addr netmask() const { return mask_; }

  /// ifconfig <if> <ip> netmask <mask>
  void configure_ip(Ipv4Addr ip, Ipv4Addr mask) {
    ip_ = ip;
    mask_ = mask;
  }

  void set_rx_callback(RxCallback cb) { rx_ = std::move(cb); }

  /// Transmit toward dst; false if the link is down / not associated /
  /// administratively disabled.
  bool send(MacAddr dst, std::uint16_t ethertype, util::ByteView payload) {
    if (!admin_up_) return false;
    return transmit(dst, ethertype, payload);
  }
  [[nodiscard]] virtual bool link_up() const = 0;

  /// Administrative state — the fault injector's "cable pull". A downed
  /// interface neither transmits nor delivers received frames; link_up()
  /// is unaffected (carrier vs. admin state, as in real stacks).
  void set_admin_up(bool up) { admin_up_ = up; }
  [[nodiscard]] bool admin_up() const { return admin_up_; }
  /// Point-to-point interfaces (VPN tun devices) carry no ARP; the host
  /// transmits on them without neighbour resolution.
  [[nodiscard]] virtual bool needs_arp() const { return true; }

  [[nodiscard]] std::uint64_t tx_frames() const { return tx_frames_; }
  [[nodiscard]] std::uint64_t rx_frames() const { return rx_frames_; }

 protected:
  /// Subclass hook behind send(): the medium-specific transmit path.
  virtual bool transmit(MacAddr dst, std::uint16_t ethertype,
                        util::ByteView payload) = 0;

  void deliver_up(const L2Frame& frame) {
    if (!admin_up_) return;
    ++rx_frames_;
    if (rx_) rx_(*this, frame);
  }
  void count_tx() { ++tx_frames_; }

 private:
  std::string name_;
  MacAddr mac_;
  Ipv4Addr ip_;
  Ipv4Addr mask_;
  RxCallback rx_;
  bool admin_up_ = true;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
};

// ---- Wired segments ---------------------------------------------------------

class L2Segment;

/// One jack on a wired segment.
class SegmentPort {
 public:
  using RxHandler = std::function<void(const L2Frame&)>;

  SegmentPort(L2Segment& segment, std::string label);
  ~SegmentPort();

  SegmentPort(const SegmentPort&) = delete;
  SegmentPort& operator=(const SegmentPort&) = delete;

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] L2Segment& segment() { return segment_; }
  void set_rx(RxHandler handler) { rx_ = std::move(handler); }
  void send(L2Frame frame);

 private:
  friend class L2Segment;
  L2Segment& segment_;
  std::string label_;
  RxHandler rx_;
};

/// Base for wired L2 devices; delivery is scheduled (propagation +
/// serialization delay) so handlers never re-enter. With a finite
/// `bandwidth_bps`, frames serialize one after another and queueing delay
/// builds under load (needed for congestion-sensitive experiments).
class L2Segment {
 public:
  explicit L2Segment(sim::Simulator& simulator, sim::Time latency = 5,
                     double bandwidth_bps = 0.0);

  /// 0 = infinite (legacy behaviour).
  void set_bandwidth_bps(double bps) { bandwidth_bps_ = bps; }
  virtual ~L2Segment() = default;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] std::uint64_t frames_switched() const { return frames_; }

  /// Port mirroring (span port): `tap` sees every frame submitted to the
  /// segment, regardless of switching decisions. Used by detect::WiredMonitor.
  using SpanTap = std::function<void(const L2Frame&)>;
  void set_span(SpanTap tap) { span_ = std::move(tap); }

 protected:
  friend class SegmentPort;

  void attach(SegmentPort* port);
  void detach(SegmentPort* port);
  /// Subclass hook: a port was unplugged (purge learned state).
  virtual void port_removed(SegmentPort* port) { (void)port; }
  void submit(SegmentPort& from, L2Frame frame);
  /// Decide the set of output ports for a frame entering on `from`.
  [[nodiscard]] virtual std::vector<SegmentPort*> egress(SegmentPort& from,
                                                         const L2Frame& frame) = 0;

  /// Per-(frame, output port) transport chaos. Consulted by submit() for
  /// every egress port; the default injects nothing and draws no RNG, so
  /// chaos-free segments schedule exactly the events they always did.
  struct PortChaos {
    sim::Time extra_delay = 0;       ///< push this copy past the normal slot
    bool duplicate = false;          ///< deliver a second copy as well
    sim::Time duplicate_delay = 0;   ///< offset of the duplicate copy
  };
  [[nodiscard]] virtual PortChaos port_chaos(SegmentPort* port) {
    (void)port;
    return {};
  }

  [[nodiscard]] const std::vector<SegmentPort*>& ports() const { return ports_; }

 private:
  /// Deliver an out-of-band copy of `frame` to `port` at time `at`,
  /// revalidating that the port is still attached when the event fires.
  void deliver_late(SegmentPort* port, sim::Time at, const L2Frame& frame);

  sim::Simulator& sim_;
  sim::Time latency_;
  double bandwidth_bps_;
  sim::Time wire_busy_until_ = 0;
  std::vector<SegmentPort*> ports_;
  SpanTap span_;
  std::uint64_t frames_ = 0;
};

/// Repeats every frame to every other port: anyone can sniff anything.
class Hub final : public L2Segment {
 public:
  using L2Segment::L2Segment;

 protected:
  std::vector<SegmentPort*> egress(SegmentPort& from, const L2Frame& frame) override;
};

/// Learning switch: unicast goes only to the learned port (flooded while
/// unknown); broadcast floods. A co-located adversary sees almost nothing —
/// the paper's premise for why wired eavesdropping is impractical (§1.1).
class Switch final : public L2Segment {
 public:
  using L2Segment::L2Segment;

  [[nodiscard]] std::size_t table_size() const { return table_.size(); }

 protected:
  std::vector<SegmentPort*> egress(SegmentPort& from, const L2Frame& frame) override;
  void port_removed(SegmentPort* port) override;

 private:
  std::unordered_map<MacAddr, SegmentPort*> table_;
};

/// Hub with i.i.d. per-receiver frame loss — a stand-in for a degraded
/// path (used to sweep loss rates in the TCP-over-TCP experiment). Also
/// carries opt-in reorder/duplicate knobs so transport tests can exercise
/// the tunnel's anti-replay window over a wired path: a reordered copy is
/// delayed past its successors, a duplicated one arrives twice. Both draw
/// RNG only when enabled, keeping legacy runs byte-identical.
class LossyHub final : public L2Segment {
 public:
  LossyHub(sim::Simulator& simulator, double loss_probability,
           sim::Time latency = 5, double bandwidth_bps = 0.0);

  void set_loss(double p) { loss_ = p; }
  /// Per-delivery probability of pushing a copy late (reordering it).
  void set_reorder(double p) { reorder_ = p; }
  /// Per-delivery probability of delivering a second copy.
  void set_duplicate(double p) { duplicate_ = p; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t frames_reordered() const { return reordered_; }
  [[nodiscard]] std::uint64_t frames_duplicated() const { return duplicated_; }

 protected:
  std::vector<SegmentPort*> egress(SegmentPort& from, const L2Frame& frame) override;
  PortChaos port_chaos(SegmentPort* port) override;

 private:
  double loss_;
  double reorder_ = 0.0;
  double duplicate_ = 0.0;
  std::uint64_t dropped_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t duplicated_ = 0;
};

/// NetIf plugged into a wired segment.
class WiredIf final : public NetIf {
 public:
  WiredIf(std::string name, MacAddr mac, L2Segment& segment);

  bool transmit(MacAddr dst, std::uint16_t ethertype, util::ByteView payload) override;
  [[nodiscard]] bool link_up() const override { return true; }

 private:
  SegmentPort port_;
};

// ---- 802.11 adapters --------------------------------------------------------

/// Host interface riding a dot11::Station (the "Managed mode" card).
/// Link is up only while associated.
class StationIf final : public NetIf {
 public:
  StationIf(std::string name, dot11::Station& station);

  bool transmit(MacAddr dst, std::uint16_t ethertype, util::ByteView payload) override;
  [[nodiscard]] bool link_up() const override { return station_.ready(); }

  [[nodiscard]] dot11::Station& station() { return station_; }

 private:
  dot11::Station& station_;
};

/// Host interface on the DS side of a dot11::AccessPoint (the "Master
/// mode" card plus the AP's uplink): frames sent here go down to
/// associated stations; frames from stations destined off-BSS come up.
class ApIf final : public NetIf {
 public:
  ApIf(std::string name, dot11::AccessPoint& ap);

  bool transmit(MacAddr dst, std::uint16_t ethertype, util::ByteView payload) override;
  [[nodiscard]] bool link_up() const override { return true; }

  [[nodiscard]] dot11::AccessPoint& ap() { return ap_; }

 private:
  dot11::AccessPoint& ap_;
};

/// Transparent L2 bridge between an access point's BSS and a wired
/// segment — how a real infrastructure AP joins the corporate LAN.
/// Frames keep their original source MACs in both directions, so wired
/// hosts ARP directly for wireless clients (and the rogue gateway's
/// proxy-ARP answers on the wireless clients' behalf once they defect).
class ApBridge {
 public:
  ApBridge(dot11::AccessPoint& ap, L2Segment& wired_segment, std::string label);

  [[nodiscard]] std::uint64_t to_wireless() const { return to_wireless_; }
  [[nodiscard]] std::uint64_t to_wired() const { return to_wired_; }

 private:
  dot11::AccessPoint& ap_;
  SegmentPort port_;
  std::uint64_t to_wireless_ = 0;
  std::uint64_t to_wired_ = 0;
};

}  // namespace rogue::net
