// Link-layer and network-layer address types shared by the wired stack,
// the 802.11 MAC, and the attack tooling (MAC spoofing is just assigning
// someone else's MacAddr — §2.1: "MAC addresses can be changed from their
// factory default").
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace rogue::net {

class MacAddr {
 public:
  constexpr MacAddr() = default;
  explicit constexpr MacAddr(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

  /// Parse "aa:bb:cc:dd:ee:ff"; nullopt on malformed input.
  [[nodiscard]] static std::optional<MacAddr> parse(std::string_view s);
  /// Broadcast ff:ff:ff:ff:ff:ff.
  [[nodiscard]] static constexpr MacAddr broadcast() {
    return MacAddr({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }
  /// Locally-administered address derived from an integer id (for tests
  /// and simulated NIC factories).
  [[nodiscard]] static MacAddr from_id(std::uint64_t id);

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }
  [[nodiscard]] bool is_broadcast() const { return *this == broadcast(); }
  [[nodiscard]] bool is_multicast() const { return (octets_[0] & 0x01) != 0; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::uint64_t to_u64() const;

  friend constexpr auto operator<=>(const MacAddr&, const MacAddr&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  explicit constexpr Ipv4Addr(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parse dotted quad; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view s);
  [[nodiscard]] static constexpr Ipv4Addr any() { return Ipv4Addr(0u); }
  [[nodiscard]] static constexpr Ipv4Addr broadcast() { return Ipv4Addr(0xffffffffu); }

  [[nodiscard]] constexpr std::uint32_t value() const { return addr_; }
  [[nodiscard]] bool is_any() const { return addr_ == 0; }
  [[nodiscard]] bool is_broadcast() const { return addr_ == 0xffffffffu; }
  [[nodiscard]] std::string to_string() const;

  /// True if this and other share the given prefix mask.
  [[nodiscard]] bool in_subnet(Ipv4Addr network, Ipv4Addr mask) const {
    return (addr_ & mask.addr_) == (network.addr_ & mask.addr_);
  }

  friend constexpr auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;

 private:
  std::uint32_t addr_ = 0;
};

/// CIDR-style netmask from prefix length (0..32).
[[nodiscard]] Ipv4Addr netmask(unsigned prefix_len);

}  // namespace rogue::net

template <>
struct std::hash<rogue::net::MacAddr> {
  std::size_t operator()(const rogue::net::MacAddr& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};

template <>
struct std::hash<rogue::net::Ipv4Addr> {
  std::size_t operator()(const rogue::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
