#include "net/host.hpp"

#include "net/checksum.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace rogue::net {

Host::Host(sim::Simulator& simulator, std::string name, TcpConfig tcp_config)
    : sim_(simulator),
      name_(std::move(name)),
      tcp_(simulator,
           [this](Ipv4Addr dst, std::uint8_t proto, util::ByteView payload) {
             return send_ip(dst, proto, payload);
           },
           tcp_config),
      udp_([this](Ipv4Addr dst, std::uint8_t proto, util::ByteView payload) {
        return send_ip(dst, proto, payload);
      }) {
  obs::StatsRegistry& stats = sim_.stats();
  stat_ip_sent_ = stats.counter("net.ip.sent");
  stat_ip_received_ = stats.counter("net.ip.received");
  stat_ip_delivered_ = stats.counter("net.ip.delivered");
  stat_ip_forwarded_ = stats.counter("net.ip.forwarded");
  stat_ip_drop_no_route_ = stats.counter("net.ip.drop_no_route");
  stat_ip_drop_ttl_ = stats.counter("net.ip.drop_ttl");
  stat_ip_drop_filter_ = stats.counter("net.ip.drop_filter");
  stat_arp_unresolved_ = stats.counter("net.arp.unresolved");
}

NetIf& Host::attach(std::unique_ptr<NetIf> iface) {
  NetIf& ref = *iface;
  auto arp = std::make_unique<ArpCache>(
      sim_, ref.mac(), [this, iface_ptr = &ref](const ArpPacket& pkt) {
        const MacAddr dst = pkt.op == ArpOp::kRequest ? MacAddr::broadcast()
                                                      : pkt.target_mac;
        util::Bytes raw = sim_.buffer_pool().acquire(28);
        pkt.serialize_into(raw);
        iface_ptr->send(dst, dot11::kEtherTypeArp, raw);
        sim_.buffer_pool().release(std::move(raw));
      });
  arps_[ref.name()] = std::move(arp);
  iface->set_rx_callback(
      [this](NetIf& ifc, const L2Frame& frame) { on_frame(ifc, frame); });
  ifaces_.push_back(std::move(iface));
  return ref;
}

WiredIf& Host::add_wired(const std::string& ifname, L2Segment& segment, MacAddr mac) {
  auto iface = std::make_unique<WiredIf>(ifname, mac, segment);
  return static_cast<WiredIf&>(attach(std::move(iface)));
}

NetIf* Host::interface(std::string_view ifname) {
  for (const auto& iface : ifaces_) {
    if (iface->name() == ifname) return iface.get();
  }
  return nullptr;
}

ArpCache& Host::arp(std::string_view ifname) {
  const auto it = arps_.find(std::string(ifname));
  ROGUE_ASSERT_MSG(it != arps_.end(), "no such interface");
  return *it->second;
}

void Host::configure(std::string_view ifname, Ipv4Addr ip, unsigned prefix_len) {
  NetIf* iface = interface(ifname);
  ROGUE_ASSERT_MSG(iface != nullptr, "no such interface");
  const Ipv4Addr mask = netmask(prefix_len);
  iface->configure_ip(ip, mask);
  arp(ifname).set_own_ip(ip);
  routes_.add(Route{Ipv4Addr(ip.value() & mask.value()), mask, Ipv4Addr::any(),
                    iface->name(), 0});
}

bool Host::is_local_ip(Ipv4Addr ip) const {
  if (ip.is_broadcast()) return true;
  for (const auto& iface : ifaces_) {
    if (!iface->ip().is_any() && iface->ip() == ip) return true;
  }
  return false;
}

Ipv4Addr Host::primary_ip() const {
  for (const auto& iface : ifaces_) {
    if (!iface->ip().is_any()) return iface->ip();
  }
  return Ipv4Addr::any();
}

TcpConnectionPtr Host::tcp_connect(Ipv4Addr dst, std::uint16_t port) {
  const auto route = routes_.lookup(dst);
  if (!route) return nullptr;
  const NetIf* iface = interface(route->ifname);
  if (iface == nullptr || iface->ip().is_any()) return nullptr;
  return tcp_.connect(iface->ip(), dst, port);
}

bool Host::tcp_listen(std::uint16_t port, TcpStack::AcceptHandler on_accept) {
  return tcp_.listen(port, std::move(on_accept));
}

std::shared_ptr<UdpSocket> Host::udp_open(std::uint16_t port) {
  return udp_.open(port);
}

void Host::register_protocol(std::uint8_t protocol, ProtocolHandler handler) {
  protocol_handlers_[protocol] = std::move(handler);
}

bool Host::send_ip(Ipv4Addr dst, std::uint8_t protocol, util::ByteView payload) {
  Ipv4Packet packet;
  packet.protocol = protocol;
  packet.dst = dst;
  packet.id = next_ip_id_++;
  packet.payload.assign(payload.begin(), payload.end());
  return send_packet(std::move(packet));
}

bool Host::send_packet(Ipv4Packet packet) {
  const auto route = routes_.lookup(packet.dst);
  if (!route) {
    ++counters_.ip_dropped_no_route;
    sim_.stats().add(stat_ip_drop_no_route_);
    return false;
  }
  NetIf* out_iface = interface(route->ifname);
  if (out_iface == nullptr) {
    ++counters_.ip_dropped_no_route;
    sim_.stats().add(stat_ip_drop_no_route_);
    return false;
  }
  if (packet.src.is_any()) packet.src = out_iface->ip();
  fix_transport_checksum(packet);

  // Local loopback (including packets addressed to another of our IPs).
  if (is_local_ip(packet.dst) && !packet.dst.is_broadcast()) {
    sim_.after(1, [this, p = std::move(packet)]() mutable { deliver_local(p); });
    ++counters_.ip_sent;
    sim_.stats().add(stat_ip_sent_);
    return true;
  }

  if (netfilter_.run(Hook::kOutput, packet, "", route->ifname, out_iface->ip()) ==
      Verdict::kDrop) {
    ++counters_.ip_dropped_filter;
    sim_.stats().add(stat_ip_drop_filter_);
    return false;
  }
  if (netfilter_.run(Hook::kPostrouting, packet, "", route->ifname,
                     out_iface->ip()) == Verdict::kDrop) {
    ++counters_.ip_dropped_filter;
    sim_.stats().add(stat_ip_drop_filter_);
    return false;
  }
  // NAT may have changed the destination: re-route.
  const auto final_route = routes_.lookup(packet.dst);
  if (!final_route) {
    ++counters_.ip_dropped_no_route;
    sim_.stats().add(stat_ip_drop_no_route_);
    return false;
  }
  ++counters_.ip_sent;
  sim_.stats().add(stat_ip_sent_);
  if (tap_) tap_("tx", packet, final_route->ifname);
  transmit(std::move(packet), *final_route);
  return true;
}

void Host::transmit(Ipv4Packet packet, const Route& route) {
  NetIf* iface = interface(route.ifname);
  if (iface == nullptr) return;
  const Ipv4Addr next_hop =
      route.gateway.is_any() ? packet.dst : route.gateway;

  if (packet.dst.is_broadcast() || !iface->needs_arp()) {
    util::Bytes raw = sim_.buffer_pool().acquire(20 + packet.payload.size());
    packet.serialize_into(raw);
    iface->send(MacAddr::broadcast(), dot11::kEtherTypeIpv4, raw);
    sim_.buffer_pool().release(std::move(raw));
    return;
  }

  arp(route.ifname)
      .resolve(next_hop, [this, iface, p = std::move(packet)](Ipv4Addr, MacAddr mac) {
        util::Bytes raw = sim_.buffer_pool().acquire(20 + p.payload.size());
        p.serialize_into(raw);
        const bool sent = iface->send(mac, dot11::kEtherTypeIpv4, raw);
        sim_.buffer_pool().release(std::move(raw));
        if (!sent) {
          ++counters_.arp_unresolved;
          sim_.stats().add(stat_arp_unresolved_);
        }
      });
}

void Host::on_frame(NetIf& iface, const L2Frame& frame) {
  if (frame.ethertype == dot11::kEtherTypeArp) {
    const auto arp_packet = ArpPacket::parse(frame.payload);
    if (arp_packet) arp(iface.name()).on_packet(*arp_packet);
    return;
  }
  if (frame.ethertype != dot11::kEtherTypeIpv4) return;
  // Host stacks only accept frames addressed to them (or broadcast);
  // sniffers bypass this by reading the medium directly.
  if (frame.dst != iface.mac() && !frame.dst.is_broadcast()) return;

  const auto view = Ipv4View::parse(frame.payload);
  if (!view) return;
  // Zero-copy fast path: a locally-addressed packet with no tap and no
  // netfilter work on the rx hooks is delivered straight off the frame
  // buffer. Anything that can observe or mutate the packet (tap, rules,
  // conntrack, forwarding) takes the owning-copy slow path instead.
  if (!tap_ && netfilter_.quiescent(Hook::kPrerouting) &&
      netfilter_.quiescent(Hook::kInput) && is_local_ip(view->dst)) {
    ++counters_.ip_received;
    sim_.stats().add(stat_ip_received_);
    deliver_local_view(*view);
    return;
  }
  on_ip_packet(iface, view->to_packet());
}

void Host::on_ip_packet(NetIf& iface, Ipv4Packet packet) {
  ++counters_.ip_received;
  sim_.stats().add(stat_ip_received_);
  if (tap_) tap_("rx", packet, iface.name());

  if (netfilter_.run(Hook::kPrerouting, packet, iface.name(), "", iface.ip()) ==
      Verdict::kDrop) {
    ++counters_.ip_dropped_filter;
    sim_.stats().add(stat_ip_drop_filter_);
    return;
  }

  if (is_local_ip(packet.dst)) {
    if (netfilter_.run(Hook::kInput, packet, iface.name(), "", iface.ip()) ==
        Verdict::kDrop) {
      ++counters_.ip_dropped_filter;
    sim_.stats().add(stat_ip_drop_filter_);
      return;
    }
    deliver_local(packet);
    return;
  }

  if (!ip_forward_) {
    return;  // silently drop transit traffic; we are not a router
  }
  forward(iface, std::move(packet));
}

void Host::deliver_local(const Ipv4Packet& packet) {
  deliver_to_stack(packet.src, packet.dst, packet.protocol, packet.payload);
}

void Host::deliver_local_view(const Ipv4View& packet) {
  deliver_to_stack(packet.src, packet.dst, packet.protocol, packet.payload);
}

void Host::deliver_to_stack(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                            util::ByteView payload) {
  ++counters_.ip_delivered;
  sim_.stats().add(stat_ip_delivered_);
  switch (protocol) {
    case kProtoTcp:
      tcp_.on_packet(src, dst, payload);
      return;
    case kProtoUdp:
      udp_.on_packet(src, dst, payload);
      return;
    case kProtoIcmp:
      handle_icmp(src, payload);
      return;
    default:
      break;
  }
  const auto it = protocol_handlers_.find(protocol);
  if (it != protocol_handlers_.end()) {
    it->second(src, dst, payload);
  }
}

void Host::forward(NetIf& in_iface, Ipv4Packet packet) {
  if (packet.ttl <= 1) {
    ++counters_.ip_dropped_ttl;
    sim_.stats().add(stat_ip_drop_ttl_);
    return;
  }
  packet.ttl -= 1;

  const auto route = routes_.lookup(packet.dst);
  if (!route) {
    ++counters_.ip_dropped_no_route;
    sim_.stats().add(stat_ip_drop_no_route_);
    return;
  }
  NetIf* out_iface = interface(route->ifname);
  if (out_iface == nullptr) {
    ++counters_.ip_dropped_no_route;
    sim_.stats().add(stat_ip_drop_no_route_);
    return;
  }

  if (netfilter_.run(Hook::kForward, packet, in_iface.name(), route->ifname,
                     out_iface->ip()) == Verdict::kDrop) {
    ++counters_.ip_dropped_filter;
    sim_.stats().add(stat_ip_drop_filter_);
    return;
  }
  if (netfilter_.run(Hook::kPostrouting, packet, in_iface.name(), route->ifname,
                     out_iface->ip()) == Verdict::kDrop) {
    ++counters_.ip_dropped_filter;
    sim_.stats().add(stat_ip_drop_filter_);
    return;
  }
  // DNAT in PREROUTING may have redirected to one of our own addresses.
  if (is_local_ip(packet.dst)) {
    deliver_local(packet);
    return;
  }
  const auto final_route = routes_.lookup(packet.dst);
  if (!final_route) {
    ++counters_.ip_dropped_no_route;
    sim_.stats().add(stat_ip_drop_no_route_);
    return;
  }
  ++counters_.ip_forwarded;
  sim_.stats().add(stat_ip_forwarded_);
  if (tap_) tap_("fwd", packet, final_route->ifname);
  transmit(std::move(packet), *final_route);
}

// ---- ICMP echo --------------------------------------------------------------

namespace {
constexpr std::uint8_t kIcmpEchoReply = 0;
constexpr std::uint8_t kIcmpEchoRequest = 8;

util::Bytes icmp_echo(std::uint8_t type, std::uint16_t id, std::uint16_t seq) {
  util::Bytes out;
  util::ByteWriter w(out);
  w.u8(type);
  w.u8(0);
  w.u16be(0);  // checksum placeholder
  w.u16be(id);
  w.u16be(seq);
  const std::uint16_t sum = internet_checksum(out);
  out[2] = static_cast<std::uint8_t>(sum >> 8);
  out[3] = static_cast<std::uint8_t>(sum);
  return out;
}
}  // namespace

void Host::handle_icmp(Ipv4Addr src, util::ByteView payload) {
  if (payload.size() < 8) return;
  const std::uint8_t type = payload[0];
  const auto id = static_cast<std::uint16_t>((payload[4] << 8) | payload[5]);
  const auto seq = static_cast<std::uint16_t>((payload[6] << 8) | payload[7]);

  if (type == kIcmpEchoRequest) {
    ++counters_.icmp_echo_replies;
    send_ip(src, kProtoIcmp, icmp_echo(kIcmpEchoReply, id, seq));
    return;
  }
  if (type == kIcmpEchoReply) {
    const auto it = pending_pings_.find(id);
    if (it == pending_pings_.end()) return;
    const sim::Time rtt = sim_.now() - it->second.first;
    auto done = std::move(it->second.second);
    pending_pings_.erase(it);
    done(rtt);
  }
}

void Host::ping(Ipv4Addr dst, std::function<void(std::optional<sim::Time>)> done,
                sim::Time timeout) {
  const std::uint16_t id = next_ping_id_++;
  pending_pings_[id] = {sim_.now(), std::move(done)};
  send_ip(dst, kProtoIcmp, icmp_echo(kIcmpEchoRequest, id, 1));
  sim_.after(timeout, [this, id] {
    const auto it = pending_pings_.find(id);
    if (it == pending_pings_.end()) return;
    auto cb = std::move(it->second.second);
    pending_pings_.erase(it);
    cb(std::nullopt);
  });
}

}  // namespace rogue::net
