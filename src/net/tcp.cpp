#include "net/tcp.hpp"

#include <algorithm>

#include "net/checksum.hpp"
#include "net/ipv4.hpp"
#include "util/assert.hpp"

namespace rogue::net {

util::Bytes TcpSegment::serialize(Ipv4Addr src, Ipv4Addr dst) const {
  util::Bytes out;
  serialize_into(src, dst, out);
  return out;
}

void TcpSegment::serialize_into(Ipv4Addr src, Ipv4Addr dst, util::Bytes& out) const {
  out.clear();
  out.reserve(20 + payload.size());
  util::ByteWriter w(out);
  w.u16be(sport);
  w.u16be(dport);
  w.u32be(seq);
  w.u32be(ack);
  w.u8(0x50);  // data offset 5 words, no options
  w.u8(flags);
  w.u16be(window);
  w.u16be(0);  // checksum placeholder
  w.u16be(0);  // urgent pointer
  w.raw(payload);
  const std::uint16_t sum = transport_checksum(src, dst, kProtoTcp, out);
  out[16] = static_cast<std::uint8_t>(sum >> 8);
  out[17] = static_cast<std::uint8_t>(sum);
}

std::optional<TcpSegmentView> TcpSegmentView::parse(Ipv4Addr src, Ipv4Addr dst,
                                                    util::ByteView raw) {
  if (raw.size() < 20) return std::nullopt;
  if (transport_checksum(src, dst, kProtoTcp, raw) != 0) return std::nullopt;
  util::ByteReader r(raw);
  TcpSegmentView s;
  s.sport = r.u16be();
  s.dport = r.u16be();
  s.seq = r.u32be();
  s.ack = r.u32be();
  const std::uint8_t offset_words = static_cast<std::uint8_t>(r.u8() >> 4);
  s.flags = r.u8();
  s.window = r.u16be();
  (void)r.u16be();
  (void)r.u16be();
  const std::size_t header_len = static_cast<std::size_t>(offset_words) * 4;
  if (header_len < 20 || header_len > raw.size()) return std::nullopt;
  s.payload = raw.subspan(header_len);
  return s;
}

std::optional<TcpSegment> TcpSegment::parse(Ipv4Addr src, Ipv4Addr dst,
                                            util::ByteView raw) {
  const auto view = TcpSegmentView::parse(src, dst, raw);
  if (!view) return std::nullopt;
  TcpSegment s;
  s.sport = view->sport;
  s.dport = view->dport;
  s.seq = view->seq;
  s.ack = view->ack;
  s.flags = view->flags;
  s.window = view->window;
  s.payload.assign(view->payload.begin(), view->payload.end());
  return s;
}

// ---- TcpConnection ----------------------------------------------------------

TcpConnection::TcpConnection(TcpStack& stack, Ipv4Addr local_ip,
                             std::uint16_t local_port, Ipv4Addr remote_ip,
                             std::uint16_t remote_port)
    : stack_(stack),
      local_ip_(local_ip),
      local_port_(local_port),
      remote_ip_(remote_ip),
      remote_port_(remote_port),
      rto_(stack.config().rto_initial) {}

TcpConnection::~TcpConnection() {
  stack_.simulator().cancel(rtx_timer_);
  stack_.simulator().cancel(time_wait_timer_);
}

std::size_t TcpConnection::bytes_in_flight() const { return inflight_.size(); }

void TcpConnection::start_connect() {
  iss_ = stack_.initial_sequence();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = TcpState::kSynSent;
  stack_.sim_.tracer().instant(stack_.trace_syn_sent_, stack_.trace_actor_tcp_,
                               obs::TraceLayer::kNet, 0,
                               (static_cast<std::uint64_t>(local_port_) << 16) |
                                   remote_port_);
  send_segment(kTcpSyn, iss_, {});
  arm_rtx_timer();
}

void TcpConnection::start_accept(const TcpSegmentView& syn) {
  irs_ = syn.seq;
  rcv_nxt_ = syn.seq + 1;
  peer_window_ = syn.window;
  iss_ = stack_.initial_sequence();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = TcpState::kSynReceived;
  send_segment(kTcpSyn | kTcpAck, iss_, {});
  arm_rtx_timer();
}

void TcpConnection::send(util::ByteView data) {
  if (finished_ || fin_pending_ || fin_sent_) return;
  stats_.bytes_sent += data.size();
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  try_send();
}

void TcpConnection::close() {
  if (finished_ || fin_pending_ || fin_sent_) return;
  fin_pending_ = true;
  try_send();
}

void TcpConnection::abort() {
  if (finished_) return;
  TcpSegment rst;
  rst.flags = kTcpRst | kTcpAck;
  rst.seq = snd_nxt_;
  rst.ack = rcv_nxt_;
  rst.sport = local_port_;
  rst.dport = remote_port_;
  stack_.transmit(local_ip_, remote_ip_, rst);
  finish(true);
}

void TcpConnection::send_segment(std::uint8_t flags, std::uint32_t seq,
                                 util::Bytes payload) {
  TcpSegment s;
  s.sport = local_port_;
  s.dport = remote_port_;
  s.seq = seq;
  s.flags = flags;
  if (state_ != TcpState::kSynSent || (flags & kTcpSyn) == 0) {
    s.flags |= kTcpAck;
    s.ack = rcv_nxt_;
  }
  // The initial SYN carries no ACK.
  if ((flags & kTcpSyn) != 0 && (flags & kTcpAck) == 0) {
    s.flags = kTcpSyn;
    s.ack = 0;
  }
  s.payload = std::move(payload);
  last_ack_sent_ = rcv_nxt_;
  ++stats_.segments_sent;
  stack_.sim_.stats().add(stack_.stat_segments_sent_);
  stack_.transmit(local_ip_, remote_ip_, s);
}

void TcpConnection::send_ack() { send_segment(kTcpAck, snd_nxt_, {}); }

void TcpConnection::try_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  const std::size_t mss = stack_.config().mss;
  const auto window =
      static_cast<std::size_t>(std::min<double>(cwnd_, peer_window_));
  while (!send_buf_.empty() && inflight_.size() < window) {
    const std::size_t room = window - inflight_.size();
    const std::size_t n = std::min({mss, room, send_buf_.size()});
    if (n == 0) break;
    util::Bytes chunk(send_buf_.begin(),
                      send_buf_.begin() + static_cast<std::ptrdiff_t>(n));
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<std::ptrdiff_t>(n));
    const std::uint32_t seq = snd_nxt_;
    inflight_.insert(inflight_.end(), chunk.begin(), chunk.end());
    snd_nxt_ += static_cast<std::uint32_t>(n);
    if (!rtt_sample_) {
      rtt_sample_ = {snd_nxt_, stack_.simulator().now()};
    }
    send_segment(kTcpPsh, seq, std::move(chunk));
  }
  maybe_send_fin();
  if (inflight_.empty() && !fin_sent_) {
    // Nothing outstanding; timer only needed once data/FIN is in flight.
  } else {
    arm_rtx_timer();
  }
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_ || !send_buf_.empty() || !inflight_.empty()) {
    return;
  }
  // RFC-permitted: FIN may be sent with data outstanding, but draining
  // first keeps the state machine simple and the wire behaviour sane.
  fin_sent_ = true;
  fin_seq_ = snd_nxt_;
  snd_nxt_ = fin_seq_ + 1;
  send_segment(kTcpFin, fin_seq_, {});
  if (state_ == TcpState::kEstablished) {
    state_ = TcpState::kFinWait1;
  } else if (state_ == TcpState::kCloseWait) {
    state_ = TcpState::kLastAck;
  }
  arm_rtx_timer();
}

void TcpConnection::arm_rtx_timer() {
  stack_.simulator().cancel(rtx_timer_);
  std::weak_ptr<TcpConnection> weak = weak_from_this();
  rtx_timer_ = stack_.simulator().after(rto_, [weak] {
    if (const auto self = weak.lock()) self->on_rtx_timeout();
  });
}

void TcpConnection::cancel_rtx_timer() { stack_.simulator().cancel(rtx_timer_); }

void TcpConnection::on_rtx_timeout() {
  if (finished_) return;
  ++stats_.rto_events;
  stack_.sim_.stats().add(stack_.stat_rto_events_);
  ++consecutive_rtx_;

  const bool connecting =
      state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived;
  const unsigned limit = connecting ? stack_.config().syn_retries
                                    : stack_.config().max_retransmits;
  if (consecutive_rtx_ > limit) {
    finish(true);
    return;
  }

  rtt_sample_.reset();  // Karn: never sample a retransmitted segment
  const std::size_t mss = stack_.config().mss;
  ssthresh_ = std::max(static_cast<double>(inflight_.size()) / 2.0,
                       2.0 * static_cast<double>(mss));
  cwnd_ = static_cast<double>(mss);
  rto_ = std::min<sim::Time>(rto_ * 2, stack_.config().rto_max);

  ++stats_.retransmits;
  stack_.sim_.stats().add(stack_.stat_retransmits_);
  if (state_ == TcpState::kSynSent) {
    send_segment(kTcpSyn, iss_, {});
  } else if (state_ == TcpState::kSynReceived) {
    send_segment(kTcpSyn | kTcpAck, iss_, {});
  } else if (!inflight_.empty()) {
    const std::size_t n = std::min(mss, inflight_.size());
    util::Bytes chunk(inflight_.begin(),
                      inflight_.begin() + static_cast<std::ptrdiff_t>(n));
    send_segment(kTcpPsh, snd_una_, std::move(chunk));
  } else if (fin_sent_) {
    send_segment(kTcpFin, fin_seq_, {});
  }
  arm_rtx_timer();
}

void TcpConnection::on_segment(const TcpSegmentView& seg) {
  if (finished_) return;
  ++stats_.segments_received;
  stack_.sim_.stats().add(stack_.stat_segments_received_);
  peer_window_ = seg.window;

  if (seg.has(kTcpRst)) {
    finish(true);
    return;
  }

  if (state_ == TcpState::kSynSent) {
    if (seg.has(kTcpSyn) && seg.has(kTcpAck) && seg.ack == snd_nxt_) {
      snd_una_ = seg.ack;
      irs_ = seg.seq;
      rcv_nxt_ = seg.seq + 1;
      consecutive_rtx_ = 0;
      rto_ = stack_.config().rto_initial;
      cancel_rtx_timer();
      state_ = TcpState::kEstablished;
      stack_.sim_.tracer().instant(
          stack_.trace_established_, stack_.trace_actor_tcp_,
          obs::TraceLayer::kNet, 0,
          (static_cast<std::uint64_t>(local_port_) << 16) | remote_port_);
      cwnd_ = static_cast<double>(stack_.config().initial_window_segments *
                                  stack_.config().mss);
      send_ack();
      if (on_connect_) on_connect_();
      try_send();
    }
    return;
  }

  if (state_ == TcpState::kSynReceived) {
    if (seg.has(kTcpAck) && seg.ack == snd_nxt_) {
      snd_una_ = seg.ack;
      consecutive_rtx_ = 0;
      cancel_rtx_timer();
      state_ = TcpState::kEstablished;
      stack_.sim_.tracer().instant(
          stack_.trace_established_, stack_.trace_actor_tcp_,
          obs::TraceLayer::kNet, 0,
          (static_cast<std::uint64_t>(local_port_) << 16) | remote_port_);
      cwnd_ = static_cast<double>(stack_.config().initial_window_segments *
                                  stack_.config().mss);
      if (on_connect_) on_connect_();
      // Fall through: the ACK may carry data.
    } else if (seg.has(kTcpSyn)) {
      // Duplicate SYN: re-answer.
      send_segment(kTcpSyn | kTcpAck, iss_, {});
      return;
    } else {
      return;
    }
  }

  if (seg.has(kTcpAck)) process_ack(seg);
  if (finished_) return;
  if (!seg.payload.empty() || seg.has(kTcpFin)) process_payload(seg);
}

void TcpConnection::process_ack(const TcpSegmentView& seg) {
  const std::uint32_t ack = seg.ack;

  if (seq_lt(snd_una_, ack) && seq_le(ack, snd_nxt_)) {
    // New data acknowledged.
    const std::uint32_t inflight_end =
        snd_una_ + static_cast<std::uint32_t>(inflight_.size());
    const std::uint32_t data_acked =
        seq_le(ack, inflight_end) ? ack - snd_una_ : inflight_end - snd_una_;
    inflight_.erase(inflight_.begin(),
                    inflight_.begin() + static_cast<std::ptrdiff_t>(data_acked));
    stats_.bytes_acked += data_acked;
    snd_una_ = ack;
    consecutive_rtx_ = 0;
    dup_ack_count_ = 0;
    // Forward progress unwinds exponential RTO backoff (Linux-style);
    // without this a loss streak strands the flow at rto_max forever.
    if (srtt_valid_) {
      const double rto_us = srtt_us_ + std::max(4.0 * rttvar_us_, 1000.0);
      rto_ = std::clamp(static_cast<sim::Time>(rto_us),
                        stack_.config().rto_min, stack_.config().rto_max);
    } else {
      rto_ = stack_.config().rto_initial;
    }

    if (rtt_sample_ && seq_le(rtt_sample_->first, ack)) {
      const double rtt =
          static_cast<double>(stack_.simulator().now() - rtt_sample_->second);
      rtt_sample_.reset();
      if (!srtt_valid_) {
        srtt_us_ = rtt;
        rttvar_us_ = rtt / 2.0;
        srtt_valid_ = true;
      } else {
        const double err = rtt - srtt_us_;
        srtt_us_ += 0.125 * err;
        rttvar_us_ += 0.25 * (std::abs(err) - rttvar_us_);
      }
      const double rto_us = srtt_us_ + std::max(4.0 * rttvar_us_, 1000.0);
      rto_ = std::clamp(static_cast<sim::Time>(rto_us),
                        stack_.config().rto_min, stack_.config().rto_max);
    }

    // Congestion window growth.
    const auto mss = static_cast<double>(stack_.config().mss);
    if (cwnd_ < ssthresh_) {
      cwnd_ += mss;  // slow start
    } else {
      cwnd_ += mss * mss / cwnd_;  // congestion avoidance
    }

    // FIN acknowledged?
    if (fin_sent_ && ack == fin_seq_ + 1) {
      if (state_ == TcpState::kFinWait1) {
        state_ = TcpState::kFinWait2;
      } else if (state_ == TcpState::kClosing) {
        enter_time_wait();
      } else if (state_ == TcpState::kLastAck) {
        finish(true);
        return;
      }
    }

    if (inflight_.empty() && (!fin_sent_ || ack == fin_seq_ + 1)) {
      cancel_rtx_timer();
    } else {
      arm_rtx_timer();
    }
    try_send();
    return;
  }

  if (ack == snd_una_ && !inflight_.empty() && seg.payload.empty() &&
      !seg.has(kTcpSyn) && !seg.has(kTcpFin)) {
    ++stats_.dup_acks;
    stack_.sim_.stats().add(stack_.stat_dup_acks_);
    if (++dup_ack_count_ == 3) {
      // Fast retransmit.
      ++stats_.fast_retransmits;
      ++stats_.retransmits;
      stack_.sim_.stats().add(stack_.stat_fast_retransmits_);
      stack_.sim_.stats().add(stack_.stat_retransmits_);
      const auto mss = static_cast<double>(stack_.config().mss);
      ssthresh_ = std::max(static_cast<double>(inflight_.size()) / 2.0, 2.0 * mss);
      cwnd_ = ssthresh_;
      const std::size_t n = std::min(stack_.config().mss, inflight_.size());
      util::Bytes chunk(inflight_.begin(),
                        inflight_.begin() + static_cast<std::ptrdiff_t>(n));
      send_segment(kTcpPsh, snd_una_, std::move(chunk));
      arm_rtx_timer();
    }
  }
}

void TcpConnection::process_payload(const TcpSegmentView& seg) {
  std::uint32_t seq = seg.seq;
  util::ByteView data(seg.payload);

  // Trim already-received prefix.
  if (seq_lt(seq, rcv_nxt_)) {
    const std::uint32_t overlap = rcv_nxt_ - seq;
    if (overlap >= data.size() && !seg.has(kTcpFin)) {
      send_ack();  // pure duplicate
      return;
    }
    if (overlap >= data.size()) {
      data = {};
      seq = rcv_nxt_;
    } else {
      data = data.subspan(overlap);
      seq = rcv_nxt_;
    }
  }

  if (seq == rcv_nxt_) {
    if (!data.empty()) {
      rcv_nxt_ += static_cast<std::uint32_t>(data.size());
      stats_.bytes_received += data.size();
      if (on_data_) on_data_(data);
      if (finished_) return;
      // Drain any contiguous out-of-order segments.
      auto it = out_of_order_.begin();
      while (it != out_of_order_.end() && seq_le(it->first, rcv_nxt_)) {
        const std::uint32_t start = it->first;
        const util::Bytes buffered = std::move(it->second);
        it = out_of_order_.erase(it);
        if (seq_lt(start + static_cast<std::uint32_t>(buffered.size()), rcv_nxt_) ||
            start + static_cast<std::uint32_t>(buffered.size()) == rcv_nxt_) {
          continue;  // fully duplicate
        }
        const std::uint32_t skip = rcv_nxt_ - start;
        const util::ByteView tail =
            util::ByteView(buffered).subspan(skip);
        rcv_nxt_ += static_cast<std::uint32_t>(tail.size());
        stats_.bytes_received += tail.size();
        if (on_data_) on_data_(tail);
        if (finished_) return;
        it = out_of_order_.begin();
      }
    }

    // FIN processing (only once all data before it is consumed).
    if (seg.has(kTcpFin)) {
      const std::uint32_t fin_seq = seg.seq + static_cast<std::uint32_t>(seg.payload.size());
      if (fin_seq == rcv_nxt_) {
        rcv_nxt_ += 1;
        send_ack();
        switch (state_) {
          case TcpState::kEstablished:
            state_ = TcpState::kCloseWait;
            notify_close();
            break;
          case TcpState::kFinWait1:
            state_ = TcpState::kClosing;
            break;
          case TcpState::kFinWait2:
            enter_time_wait();
            break;
          default:
            break;
        }
        return;
      }
    }
    send_ack();
    return;
  }

  // Future segment: buffer and send a duplicate ACK.
  if (!data.empty() && out_of_order_.size() < 256) {
    out_of_order_.emplace(seq, util::Bytes(data.begin(), data.end()));
    stack_.sim_.stats().add(stack_.stat_reassembly_buffered_);
  }
  send_ack();
}

void TcpConnection::enter_time_wait() {
  if (state_ == TcpState::kTimeWait) return;
  state_ = TcpState::kTimeWait;
  stack_.sim_.tracer().instant(stack_.trace_time_wait_, stack_.trace_actor_tcp_,
                               obs::TraceLayer::kNet, 0,
                               (static_cast<std::uint64_t>(local_port_) << 16) |
                                   remote_port_);
  cancel_rtx_timer();
  std::weak_ptr<TcpConnection> weak = weak_from_this();
  time_wait_timer_ = stack_.simulator().after(stack_.config().time_wait, [weak] {
    if (const auto self = weak.lock()) self->finish(false);
  });
  notify_close();
}

void TcpConnection::notify_close() {
  if (close_notified_) return;
  close_notified_ = true;
  if (on_close_) on_close_();
}

void TcpConnection::finish(bool notify) {
  if (finished_) return;
  finished_ = true;
  cancel_rtx_timer();
  stack_.simulator().cancel(time_wait_timer_);
  state_ = TcpState::kClosed;
  stack_.sim_.tracer().instant(stack_.trace_closed_, stack_.trace_actor_tcp_,
                               obs::TraceLayer::kNet, 0,
                               (static_cast<std::uint64_t>(local_port_) << 16) |
                                   remote_port_);
  if (notify) notify_close();
  // Handlers routinely capture this connection's own shared_ptr (both the
  // tests and the apps do), which would form a reference cycle and leak
  // the connection. Hand them to the simulator to destroy instead of
  // dropping them here: finish() may be running *inside* one of these
  // handlers, and destroying an executing closure is not an option. The
  // no-op event releases them from the run loop (or the simulator's own
  // teardown), where no connection callback is on the stack.
  stack_.simulator().after(0, [data = std::move(on_data_),
                              connect = std::move(on_connect_),
                              close = std::move(on_close_)] {});
  on_data_ = nullptr;
  on_connect_ = nullptr;
  on_close_ = nullptr;
  stack_.remove(this);
}

// ---- TcpStack ---------------------------------------------------------------

TcpStack::TcpStack(sim::Simulator& simulator, SendIpFn send_ip, TcpConfig config)
    : sim_(simulator), send_ip_(std::move(send_ip)), config_(config) {
  obs::StatsRegistry& stats = sim_.stats();
  stat_segments_sent_ = stats.counter("net.tcp.segments_sent");
  stat_segments_received_ = stats.counter("net.tcp.segments_received");
  stat_retransmits_ = stats.counter("net.tcp.retransmits");
  stat_rto_events_ = stats.counter("net.tcp.rto_events");
  stat_fast_retransmits_ = stats.counter("net.tcp.fast_retransmits");
  stat_dup_acks_ = stats.counter("net.tcp.dup_acks");
  stat_reassembly_buffered_ = stats.counter("net.tcp.reassembly_buffered");
  obs::Tracer& tracer = sim_.tracer();
  trace_actor_tcp_ = tracer.actor("tcp");
  trace_syn_sent_ = tracer.name("net.tcp.syn-sent");
  trace_established_ = tracer.name("net.tcp.established");
  trace_time_wait_ = tracer.name("net.tcp.time-wait");
  trace_closed_ = tracer.name("net.tcp.closed");
}

TcpStack::~TcpStack() {
  // Connections abandoned mid-stream may be kept alive solely by the
  // handler-capture cycles described in finish(); break them so teardown
  // reclaims everything. No callback is executing during stack teardown,
  // so dropping the handlers directly is safe here.
  for (auto& [key, conn] : connections_) {
    conn->on_data_ = nullptr;
    conn->on_connect_ = nullptr;
    conn->on_close_ = nullptr;
  }
}

std::uint16_t TcpStack::ephemeral_port() {
  // Linear probe; fine at simulation scale.
  for (int tries = 0; tries < 65536; ++tries) {
    const std::uint16_t p = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 60999 ? 40000
                                               : static_cast<std::uint16_t>(next_ephemeral_ + 1);
    bool taken = false;
    for (const auto& [key, conn] : connections_) {
      if (key.local_port == p) {
        taken = true;
        break;
      }
    }
    if (!taken) return p;
  }
  ROGUE_ASSERT_MSG(false, "ephemeral port space exhausted");
  return 0;
}

std::uint32_t TcpStack::initial_sequence() {
  return static_cast<std::uint32_t>(sim_.rng().next());
}

TcpConnectionPtr TcpStack::connect(Ipv4Addr local_ip, Ipv4Addr remote_ip,
                                   std::uint16_t remote_port) {
  const std::uint16_t local_port = ephemeral_port();
  auto conn = TcpConnectionPtr(
      new TcpConnection(*this, local_ip, local_port, remote_ip, remote_port));
  connections_[FlowKey{local_ip, local_port, remote_ip, remote_port}] = conn;
  conn->start_connect();
  return conn;
}

bool TcpStack::listen(std::uint16_t port, AcceptHandler on_accept) {
  if (listeners_.contains(port)) return false;
  listeners_[port] = std::move(on_accept);
  return true;
}

void TcpStack::close_listener(std::uint16_t port) { listeners_.erase(port); }

bool TcpStack::transmit(Ipv4Addr src, Ipv4Addr dst, const TcpSegment& seg) {
  // Segment construction is the TCP hot path: build the wire bytes in a
  // pooled buffer and recycle it as soon as the IP layer has copied them.
  util::Bytes raw = sim_.buffer_pool().acquire(20 + seg.payload.size());
  seg.serialize_into(src, dst, raw);
  const bool sent = send_ip_(dst, kProtoTcp, raw);
  sim_.buffer_pool().release(std::move(raw));
  return sent;
}

void TcpStack::send_rst(Ipv4Addr src, Ipv4Addr dst,
                        const TcpSegmentView& offending) {
  if (offending.has(kTcpRst)) return;
  TcpSegment rst;
  rst.sport = offending.dport;
  rst.dport = offending.sport;
  rst.flags = kTcpRst | kTcpAck;
  rst.seq = offending.has(kTcpAck) ? offending.ack : 0;
  rst.ack = offending.seq + static_cast<std::uint32_t>(offending.payload.size()) +
            (offending.has(kTcpSyn) ? 1 : 0) + (offending.has(kTcpFin) ? 1 : 0);
  transmit(src, dst, rst);
}

void TcpStack::on_packet(Ipv4Addr src, Ipv4Addr dst, util::ByteView payload) {
  const auto seg = TcpSegmentView::parse(src, dst, payload);
  if (!seg) return;

  const FlowKey key{dst, seg->dport, src, seg->sport};
  if (const auto it = connections_.find(key); it != connections_.end()) {
    const TcpConnectionPtr conn = it->second;  // keep alive during dispatch
    conn->on_segment(*seg);
    return;
  }

  if (seg->has(kTcpSyn) && !seg->has(kTcpAck)) {
    const auto listener = listeners_.find(seg->dport);
    if (listener != listeners_.end()) {
      auto conn = TcpConnectionPtr(
          new TcpConnection(*this, dst, seg->dport, src, seg->sport));
      connections_[key] = conn;
      listener->second(conn);  // app wires callbacks before handshake done
      conn->start_accept(*seg);
      return;
    }
  }
  send_rst(dst, src, *seg);
}

void TcpStack::remove(TcpConnection* conn) {
  const FlowKey key{conn->local_ip(), conn->local_port(), conn->remote_ip(),
                    conn->remote_port()};
  connections_.erase(key);
}

}  // namespace rogue::net
