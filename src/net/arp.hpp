// ARP (RFC 826): wire format, per-interface resolution cache with pending
// packet queues. ARP trusts whoever answers first — the property the
// proxy-ARP bridge (and classic wired MITM) exploits.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace rogue::net {

enum class ArpOp : std::uint16_t { kRequest = 1, kReply = 2 };

struct ArpPacket {
  ArpOp op = ArpOp::kRequest;
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;  ///< zero in requests
  Ipv4Addr target_ip;

  [[nodiscard]] util::Bytes serialize() const;
  /// serialize() into a caller-provided (typically pooled) buffer; `out`
  /// is cleared first and its capacity reused.
  void serialize_into(util::Bytes& out) const;
  [[nodiscard]] static std::optional<ArpPacket> parse(util::ByteView raw);
};

/// Per-interface ARP resolver. The owner provides the transmit hook and
/// feeds in received ARP packets; resolved callbacks fire with the MAC.
class ArpCache {
 public:
  using ResolvedFn = std::function<void(Ipv4Addr ip, MacAddr mac)>;
  using TxFn = std::function<void(const ArpPacket&)>;  ///< broadcast a request/reply

  ArpCache(sim::Simulator& simulator, MacAddr own_mac, TxFn tx);

  void set_own_ip(Ipv4Addr ip) { own_ip_ = ip; }

  /// Look up now; nullopt if unknown.
  [[nodiscard]] std::optional<MacAddr> lookup(Ipv4Addr ip) const;

  /// Resolve asynchronously: fires `done` immediately if cached, otherwise
  /// sends a request (with retries) and queues the callback. On failure
  /// after retries the callback fires with the broadcast MAC sentinel? No:
  /// failed resolutions are dropped silently and `failures()` increments.
  void resolve(Ipv4Addr ip, ResolvedFn done);

  /// Feed a received ARP packet. Replies/gratuitous ARPs populate the
  /// cache and release queued resolutions. Requests for `own_ip` trigger
  /// an automatic reply. `extra_responder` (if set) may claim additional
  /// IPs — this is the proxy-ARP hook used by bridge::ArpProxy.
  using ProxyFn = std::function<std::optional<MacAddr>(Ipv4Addr requested_ip)>;
  void on_packet(const ArpPacket& packet);
  void set_proxy(ProxyFn proxy) { proxy_ = std::move(proxy); }

  /// Insert a dynamic entry (subject to aging).
  void insert(Ipv4Addr ip, MacAddr mac);
  /// Entry lifetime; 0 disables aging. Default 60 s (Linux-ish).
  void set_entry_ttl(sim::Time ttl) { ttl_ = ttl; }
  /// Drop all dynamic entries (e.g. on link change / roam).
  void flush();

  [[nodiscard]] std::uint64_t requests_sent() const { return requests_sent_; }
  [[nodiscard]] std::uint64_t replies_sent() const { return replies_sent_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }

  /// Observer invoked for every ARP packet fed in (detection hooks).
  using ObserverFn = std::function<void(const ArpPacket&)>;
  void set_observer(ObserverFn obs) { observer_ = std::move(obs); }

 private:
  struct Pending {
    std::vector<ResolvedFn> waiters;
    unsigned attempts = 0;
    sim::TimerHandle timer;
  };

  void send_request(Ipv4Addr ip);
  void on_timeout(Ipv4Addr ip);

  struct Entry {
    MacAddr mac;
    sim::Time expires = 0;  ///< 0 == never
  };

  sim::Simulator& sim_;
  MacAddr own_mac_;
  Ipv4Addr own_ip_;
  TxFn tx_;
  ProxyFn proxy_;
  ObserverFn observer_;
  sim::Time ttl_ = 60 * sim::kSecond;
  std::unordered_map<Ipv4Addr, Entry> table_;
  std::unordered_map<Ipv4Addr, Pending> pending_;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t replies_sent_ = 0;
  std::uint64_t failures_ = 0;
  obs::CounterId stat_requests_;
  obs::CounterId stat_replies_;
  obs::CounterId stat_failures_;
  obs::TraceActorId trace_actor_;
  obs::TraceNameId trace_request_;
  obs::TraceNameId trace_reply_;

  static constexpr unsigned kMaxAttempts = 3;
  static constexpr sim::Time kRetryDelay = 100'000;  // 100 ms
};

}  // namespace rogue::net
