// IPv4 packet format (real 20-byte header with checksum) and the routing
// table used by hosts and by the rogue gateway's forwarding path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace rogue::net {

inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;
/// Protocol number for VPN tunnel payloads carried IP-in-IP style
/// (used by vpn::Tunnel when not riding TCP/UDP).
inline constexpr std::uint8_t kProtoIpIp = 4;

struct Ipv4Packet {
  std::uint8_t tos = 0;
  std::uint16_t id = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Addr src;
  Ipv4Addr dst;
  util::Bytes payload;

  /// 20-byte header (no options) + payload, header checksum filled in.
  [[nodiscard]] util::Bytes serialize() const;
  /// serialize() into a caller-provided (typically pooled) buffer; `out`
  /// is cleared first and its capacity reused.
  void serialize_into(util::Bytes& out) const;
  /// Parse and verify header checksum; nullopt if malformed.
  [[nodiscard]] static std::optional<Ipv4Packet> parse(util::ByteView raw);
};

/// Non-owning parse result: header fields plus a view of the payload
/// inside the delivered buffer. The rx fast path uses this to route and
/// deliver without copying; valid only while the underlying buffer is.
struct Ipv4View {
  std::uint8_t tos = 0;
  std::uint16_t id = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Addr src;
  Ipv4Addr dst;
  util::ByteView payload;

  /// Parse and verify header checksum; nullopt if malformed.
  [[nodiscard]] static std::optional<Ipv4View> parse(util::ByteView raw);
  /// Materialize an owning packet (copies the payload) — the ownership
  /// boundary for paths that mutate or outlive the delivered buffer.
  [[nodiscard]] Ipv4Packet to_packet() const;
};

/// Recompute the TCP/UDP checksum inside `packet.payload` using the
/// packet's current src/dst (call after assigning/rewriting addresses).
void fix_transport_checksum(Ipv4Packet& packet);

struct Route {
  Ipv4Addr network;
  Ipv4Addr mask;
  Ipv4Addr gateway;   ///< 0.0.0.0 == directly connected
  std::string ifname; ///< outgoing interface
  int metric = 0;
};

/// Longest-prefix-match routing table ("route add ..." in the paper's
/// bridge script maps 1:1 onto add()).
class RoutingTable {
 public:
  void add(Route route);
  /// route add -host <ip> dev <if>
  void add_host(Ipv4Addr host, std::string ifname);
  /// route add default gw <gw>
  void add_default(Ipv4Addr gateway, std::string ifname);
  /// Remove every route through `ifname`.
  void remove_by_interface(std::string_view ifname);
  /// Remove host routes for an exact destination.
  void remove_host(Ipv4Addr host);
  /// Remove all default (0.0.0.0/0) routes.
  void remove_default();

  [[nodiscard]] std::optional<Route> lookup(Ipv4Addr dst) const;
  [[nodiscard]] const std::vector<Route>& entries() const { return routes_; }
  void clear() { routes_.clear(); }

 private:
  std::vector<Route> routes_;
};

}  // namespace rogue::net
