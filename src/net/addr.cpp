#include "net/addr.hpp"

#include <charconv>
#include <cstdio>

namespace rogue::net {

std::optional<MacAddr> MacAddr::parse(std::string_view s) {
  std::array<std::uint8_t, 6> octets{};
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (i > 0) {
      if (pos >= s.size() || s[pos] != ':') return std::nullopt;
      ++pos;
    }
    if (pos + 2 > s.size()) return std::nullopt;
    std::uint8_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data() + pos, s.data() + pos + 2, v, 16);
    if (ec != std::errc{} || ptr != s.data() + pos + 2) return std::nullopt;
    octets[i] = v;
    pos += 2;
  }
  if (pos != s.size()) return std::nullopt;
  return MacAddr(octets);
}

MacAddr MacAddr::from_id(std::uint64_t id) {
  std::array<std::uint8_t, 6> o{};
  o[0] = 0x02;  // locally administered, unicast
  for (std::size_t i = 1; i < 6; ++i) {
    o[i] = static_cast<std::uint8_t>(id >> (8 * (5 - i)));
  }
  return MacAddr(o);
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::uint64_t MacAddr::to_u64() const {
  std::uint64_t v = 0;
  for (const auto o : octets_) v = (v << 8) | o;
  return v;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= s.size() || s[pos] != '.') return std::nullopt;
      ++pos;
    }
    if (pos >= s.size()) return std::nullopt;
    unsigned octet = 0;
    const auto [ptr, ec] = std::from_chars(s.data() + pos, s.data() + s.size(), octet);
    if (ec != std::errc{} || octet > 255 || ptr == s.data() + pos) return std::nullopt;
    value = (value << 8) | octet;
    pos = static_cast<std::size_t>(ptr - s.data());
  }
  if (pos != s.size()) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr_ >> 24) & 0xffu,
                (addr_ >> 16) & 0xffu, (addr_ >> 8) & 0xffu, addr_ & 0xffu);
  return buf;
}

Ipv4Addr netmask(unsigned prefix_len) {
  if (prefix_len == 0) return Ipv4Addr(0u);
  if (prefix_len >= 32) return Ipv4Addr(0xffffffffu);
  return Ipv4Addr(~((1u << (32 - prefix_len)) - 1));
}

}  // namespace rogue::net
