#include "net/link.hpp"

#include <algorithm>

namespace rogue::net {

SegmentPort::SegmentPort(L2Segment& segment, std::string label)
    : segment_(segment), label_(std::move(label)) {
  segment_.attach(this);
}

SegmentPort::~SegmentPort() { segment_.detach(this); }

void SegmentPort::send(L2Frame frame) { segment_.submit(*this, std::move(frame)); }

L2Segment::L2Segment(sim::Simulator& simulator, sim::Time latency,
                     double bandwidth_bps)
    : sim_(simulator), latency_(latency), bandwidth_bps_(bandwidth_bps) {}

void L2Segment::attach(SegmentPort* port) { ports_.push_back(port); }

void L2Segment::detach(SegmentPort* port) {
  std::erase(ports_, port);
  port_removed(port);
}

void L2Segment::submit(SegmentPort& from, L2Frame frame) {
  ++frames_;
  if (span_) span_(frame);
  const auto outputs = egress(from, frame);

  sim::Time deliver_at = sim_.now() + latency_;
  if (bandwidth_bps_ > 0.0) {
    // Serialize frames across the shared wire: each occupies it for its
    // transmission time, and queueing delay accumulates under load.
    const auto tx_us = static_cast<sim::Time>(
        static_cast<double>(frame.payload.size() + 18) * 8.0 / bandwidth_bps_ * 1e6);
    const sim::Time start = std::max(sim_.now(), wire_busy_until_);
    wire_busy_until_ = start + std::max<sim::Time>(tx_us, 1);
    deliver_at = wire_busy_until_ + latency_;
  }

  // Apply per-port transport chaos. The default hook returns "none" for
  // every port, so chaos-free segments take the single-event path below
  // with the output set untouched.
  std::vector<SegmentPort*> on_time;
  on_time.reserve(outputs.size());
  for (SegmentPort* port : outputs) {
    const PortChaos chaos = port_chaos(port);
    if (chaos.duplicate) {
      deliver_late(port, deliver_at + chaos.duplicate_delay, frame);
    }
    if (chaos.extra_delay > 0) {
      deliver_late(port, deliver_at + chaos.extra_delay, frame);
    } else {
      on_time.push_back(port);
    }
  }

  sim_.at(deliver_at, [this, outputs = std::move(on_time), f = std::move(frame)]() mutable {
    for (SegmentPort* port : outputs) {
      if (port->rx_) port->rx_(f);
    }
    // Receivers have copied what they need; recycle the payload backing
    // store for the next frame on this simulator.
    sim_.buffer_pool().release(std::move(f.payload));
  });
}

void L2Segment::deliver_late(SegmentPort* port, sim::Time at, const L2Frame& frame) {
  // The on-time event recycles the pooled payload, so late copies need
  // their own backing store.
  util::Bytes copy = sim_.buffer_pool().acquire(frame.payload.size());
  copy.assign(frame.payload.begin(), frame.payload.end());
  L2Frame late{frame.dst, frame.src, frame.ethertype, std::move(copy)};
  sim_.at(at, [this, port, f = std::move(late)]() mutable {
    // The port may have been unplugged while the copy was in flight.
    if (std::find(ports_.begin(), ports_.end(), port) != ports_.end() &&
        port->rx_) {
      port->rx_(f);
    }
    sim_.buffer_pool().release(std::move(f.payload));
  });
}

std::vector<SegmentPort*> Hub::egress(SegmentPort& from, const L2Frame& frame) {
  (void)frame;
  std::vector<SegmentPort*> out;
  for (SegmentPort* p : ports()) {
    if (p != &from) out.push_back(p);
  }
  return out;
}

std::vector<SegmentPort*> Switch::egress(SegmentPort& from, const L2Frame& frame) {
  table_[frame.src] = &from;  // learn (or re-learn after a move)

  if (!frame.dst.is_broadcast() && !frame.dst.is_multicast()) {
    const auto it = table_.find(frame.dst);
    if (it != table_.end() && it->second != &from) {
      return {it->second};
    }
    if (it != table_.end() && it->second == &from) {
      return {};  // destination is behind the ingress port; nothing to do
    }
  }
  // Broadcast/multicast/unknown unicast: flood.
  std::vector<SegmentPort*> out;
  for (SegmentPort* p : ports()) {
    if (p != &from) out.push_back(p);
  }
  return out;
}

LossyHub::LossyHub(sim::Simulator& simulator, double loss_probability,
                   sim::Time latency, double bandwidth_bps)
    : L2Segment(simulator, latency, bandwidth_bps), loss_(loss_probability) {}

std::vector<SegmentPort*> LossyHub::egress(SegmentPort& from, const L2Frame& frame) {
  (void)frame;
  std::vector<SegmentPort*> out;
  for (SegmentPort* p : ports()) {
    if (p == &from) continue;
    if (simulator().rng().chance(loss_)) {
      ++dropped_;
      continue;
    }
    out.push_back(p);
  }
  return out;
}

L2Segment::PortChaos LossyHub::port_chaos(SegmentPort* port) {
  (void)port;
  PortChaos chaos;
  // Draw order (duplicate, then reorder) is fixed; each knob draws only
  // when enabled so runs without chaos consume the same RNG stream as
  // before the knobs existed.
  if (duplicate_ > 0.0 && simulator().rng().chance(duplicate_)) {
    chaos.duplicate = true;
    chaos.duplicate_delay = simulator().rng().uniform_u64(100, 1000);
    ++duplicated_;
  }
  if (reorder_ > 0.0 && simulator().rng().chance(reorder_)) {
    chaos.extra_delay = simulator().rng().uniform_u64(500, 3000);
    ++reordered_;
  }
  return chaos;
}

void Switch::port_removed(SegmentPort* port) {
  std::erase_if(table_, [port](const auto& entry) { return entry.second == port; });
}

WiredIf::WiredIf(std::string name, MacAddr mac, L2Segment& segment)
    : NetIf(std::move(name), mac), port_(segment, this->name()) {
  port_.set_rx([this](const L2Frame& frame) { deliver_up(frame); });
}

bool WiredIf::transmit(MacAddr dst, std::uint16_t ethertype, util::ByteView payload) {
  count_tx();
  util::Bytes copy = port_.segment().simulator().buffer_pool().acquire(payload.size());
  copy.assign(payload.begin(), payload.end());
  port_.send(L2Frame{dst, mac(), ethertype, std::move(copy)});
  return true;
}

StationIf::StationIf(std::string name, dot11::Station& station)
    : NetIf(std::move(name), station.config().mac), station_(station) {
  station_.set_rx_handler([this](net::MacAddr src, net::MacAddr dst,
                                 std::uint16_t ethertype, util::ByteView payload) {
    deliver_up(L2Frame{dst, src, ethertype,
                       util::Bytes(payload.begin(), payload.end())});
  });
}

bool StationIf::transmit(MacAddr dst, std::uint16_t ethertype, util::ByteView payload) {
  if (!station_.ready()) return false;
  count_tx();
  return station_.send(dst, ethertype, payload);
}

ApIf::ApIf(std::string name, dot11::AccessPoint& ap)
    : NetIf(std::move(name), ap.config().bssid), ap_(ap) {
  ap_.set_ds_handler([this](net::MacAddr src, net::MacAddr dst,
                            std::uint16_t ethertype, util::ByteView payload) {
    deliver_up(L2Frame{dst, src, ethertype,
                       util::Bytes(payload.begin(), payload.end())});
  });
}

bool ApIf::transmit(MacAddr dst, std::uint16_t ethertype, util::ByteView payload) {
  count_tx();
  return ap_.send_to_station(dst, mac(), ethertype, payload);
}

ApBridge::ApBridge(dot11::AccessPoint& ap, L2Segment& wired_segment,
                   std::string label)
    : ap_(ap), port_(wired_segment, std::move(label)) {
  // Wired -> wireless: deliver frames destined to associated stations
  // (or broadcast) into the BSS, preserving the original source MAC.
  port_.set_rx([this](const L2Frame& frame) {
    if (frame.dst.is_broadcast() || ap_.is_associated(frame.dst)) {
      if (ap_.send_to_station(frame.dst, frame.src, frame.ethertype, frame.payload)) {
        ++to_wireless_;
      }
    }
  });
  // Wireless -> wired: anything leaving the BSS goes onto the wire.
  ap_.set_ds_handler([this](net::MacAddr src, net::MacAddr dst,
                            std::uint16_t ethertype, util::ByteView payload) {
    ++to_wired_;
    port_.send(L2Frame{dst, src, ethertype,
                       util::Bytes(payload.begin(), payload.end())});
  });
}

}  // namespace rogue::net
