// Metro world (EXP-C5 at city scale): the paper's "network promiscuity"
// claim — any STA walks up and associates with any AP it can hear (§4) —
// stressed at the scale where it becomes interesting: hundreds of APs on
// a street grid, tens of thousands of STAs roaming between them, and a
// handful of evil-twin rogues advertising the same ESS. The episode
// measures roam latency, association churn, and how often a roaming STA
// lands on a rogue (the promiscuous-association rate).
//
// Stations here are NOT dot11::Station instances — that class carries
// per-STA scan tables, WEP/WPA state and trace plumbing sized for
// ten-station worlds. A metro STA is a minimal state machine over a bare
// phy::Radio and the dot11 frame codecs: passive scan -> open auth ->
// associate -> monitor beacons (roam on better RSSI, rescan on beacon
// loss). The APs are real dot11::AccessPoint instances, so the handshake
// the STA runs is the same one every other scenario exercises.
//
// Scale notes: the medium runs in spatial-grid mode (MediumConfig::
// spatial_grid) with the pairwise-RSSI cache off, one world-level
// mobility timer moves every STA (no per-STA motion timers), and each STA
// releases its delivery-plan memory (Radio::trim_tx_state) whenever it
// leaves the join phase — a STA transmits a handful of management frames
// per roam, so holding a neighborhood-sized plan between roams is pure
// waste at 50k stations.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "dot11/ap.hpp"
#include "dot11/frame.hpp"
#include "net/addr.hpp"
#include "phy/medium.hpp"
#include "scenario/world.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

namespace rogue::scenario {

struct MetroConfig {
  std::uint64_t seed = 1;

  // Street grid of legitimate APs: ap_cols x ap_rows, one AP per
  // intersection, channels cycling {1, 6, 11}.
  std::size_t ap_cols = 6;
  std::size_t ap_rows = 4;
  double ap_spacing_m = 80.0;
  std::string ssid = "METRO";

  /// Evil twins: same SSID, open auth, seed-derived positions. A best-RSSI
  /// roamer near one will join it — the paper's point.
  std::size_t rogue_count = 0;

  // Roaming population.
  std::size_t sta_count = 512;
  double sta_speed_mps = 12.0;           ///< waypoint speed (jittered per STA)
  sim::Time mobility_tick = 500 * sim::kMillisecond;
  /// STAs begin their first scan staggered uniformly over this window so
  /// the join storm does not land in one carrier-sense blind window.
  sim::Time start_stagger = 3 * sim::kSecond;

  // STA state-machine knobs.
  sim::Time scan_dwell = 120 * sim::kMillisecond;  ///< > beacon interval
  sim::Time join_timeout = 100 * sim::kMillisecond;
  sim::Time watchdog_period = 400 * sim::kMillisecond;
  sim::Time beacon_loss_after = 350 * sim::kMillisecond;  ///< ~3 intervals
  double roam_hysteresis_db = 6.0;
  unsigned roam_sightings = 3;  ///< consecutive better-beacon sightings

  sim::Time episode_duration = 20 * sim::kSecond;

  /// Delivery geometry. Metro defaults to the spatial grid (the flat path
  /// exists for scaling comparisons: EXP-C5 measures both).
  bool spatial_grid = true;
  phy::MediumConfig medium;  ///< grid/pair-cache knobs applied on top
};

class MetroWorld final : public World {
 public:
  explicit MetroWorld(MetroConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "metro"; }
  void configure(std::uint64_t seed) override;
  void start() override;
  void run_for(sim::Time duration) override {
    sim_.run_until(sim_.now() + duration);
  }
  void run_episode() override;
  [[nodiscard]] Metrics collect_metrics() const override;
  [[nodiscard]] sim::Simulator& simulator() override { return sim_; }
  [[nodiscard]] sim::Trace& trace() override { return trace_; }
  void enable_frame_capture() override { capture_frames_ = true; }

  [[nodiscard]] const MetroConfig& config() const { return config_; }
  [[nodiscard]] phy::Medium& medium() { return medium_; }
  /// STAs currently associated (rogue or legitimate).
  [[nodiscard]] std::size_t associated_count() const;

 private:
  enum class StaState : std::uint8_t { kScanning, kJoining, kAssociated };

  /// One roaming station: a bare radio plus the few words of state the
  /// scan/join/monitor machine needs. Lives in a deque so references stay
  /// stable while the population is built.
  struct Sta {
    Sta(phy::Medium& medium, std::string radio_name, net::MacAddr mac_,
        util::Prng rng_)
        : radio(medium, std::move(radio_name)), mac(mac_), rng(rng_) {}

    phy::Radio radio;
    net::MacAddr mac;
    util::Prng rng;  ///< forked per STA: mobility + waypoint draws

    StaState state = StaState::kScanning;
    sim::TimerHandle timer;  ///< scan dwell / join timeout / watchdog
    std::uint16_t tx_seq = 0;

    // Mobility (random waypoint inside the world rectangle).
    phy::Position waypoint{};
    double speed_mps = 0.0;

    // Scanning: best beacon heard across the dwell sweep.
    std::size_t scan_idx = 0;
    bool have_candidate = false;
    net::MacAddr cand_bssid;
    phy::Channel cand_channel = 1;
    double cand_rssi = -200.0;

    // Joining / associated.
    net::MacAddr bssid;            ///< join target, then current AP
    double own_rssi = -200.0;      ///< last beacon RSSI from own AP
    sim::Time last_beacon = 0;
    unsigned better_streak = 0;    ///< consecutive stronger-neighbor beacons
    net::MacAddr better_bssid;
    /// Set when an association ends (beacon loss, deauth, roam departure);
    /// the next successful association closes the roam-latency gap.
    sim::Time disassoc_time = 0;
    bool roaming = false;  ///< a disassoc gap is open
  };

  void build_aps();
  void build_stas();
  void start_mobility();
  void mobility_tick();

  void enter_scan(Sta& sta);
  void scan_step(Sta& sta);
  void start_join(Sta& sta, net::MacAddr bssid, phy::Channel channel);
  void join_timed_out(Sta& sta);
  void enter_associated(Sta& sta);
  void watchdog_fire(Sta& sta);
  void connection_lost(Sta& sta);
  void on_sta_rx(Sta& sta, util::ByteView raw, const phy::RxInfo& info);
  void send_mgmt(Sta& sta, dot11::MgmtSubtype subtype, net::MacAddr dst,
                 util::Bytes body);

  [[nodiscard]] bool is_rogue(net::MacAddr bssid) const {
    return rogue_bssids_.count(bssid) != 0;
  }

  MetroConfig config_;
  sim::Simulator sim_;
  sim::Trace trace_;
  phy::Medium medium_;

  std::vector<std::unique_ptr<dot11::AccessPoint>> aps_;
  std::unordered_set<net::MacAddr> rogue_bssids_;
  std::deque<Sta> stas_;
  util::Prng layout_rng_;  ///< rogue placement, STA spawn/waypoints

  double world_w_m_ = 0.0;
  double world_h_m_ = 0.0;

  bool started_ = false;
  bool capture_frames_ = false;

  // Episode observations.
  std::uint64_t associations_ = 0;        ///< successful (re)associations
  std::uint64_t roams_ = 0;               ///< voluntary better-AP departures
  std::uint64_t beacon_losses_ = 0;       ///< watchdog-triggered drops
  std::uint64_t join_failures_ = 0;       ///< auth/assoc timeouts
  std::uint64_t deauths_rx_ = 0;          ///< AP-initiated kicks
  std::uint64_t promiscuous_assocs_ = 0;  ///< joins that landed on a rogue
  util::Summary roam_latency_s_;          ///< disassoc -> next assoc gaps
};

}  // namespace rogue::scenario
