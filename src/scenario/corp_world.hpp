// CorpWorld: the paper's end-to-end testbed as a single composable world.
//
//   [web server 203.0.113.80] --- internet switch --- [corp gw 203.0.113.1
//                                                              10.0.0.1]
//                                                           |
//                                                     corp switch ---
//                                                     [vpn endpoint 10.0.0.5]
//                                                           |
//                                                     [legit AP "CORP" ch1]
//                                                        )))  (((
//      [victim 10.0.0.77]     [rogue gateway: eth1 client + wlan0 "CORP" ch6]
//
// Figure 1 = deploy_rogue(); Figure 2 = deploy_rogue() + download();
// Figure 3 = connect_vpn() + download(). Knobs cover WEP on/off, MAC
// filtering, join policy, signal geometry, deauth forcing, and the netsed
// matching mode.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/download.hpp"
#include "apps/http.hpp"
#include "attack/attacker.hpp"
#include "attack/deauth.hpp"
#include "attack/rogue_gateway.hpp"
#include "attack/sniffer.hpp"
#include "detect/detector.hpp"
#include "detect/seqnum.hpp"
#include "dot11/ap.hpp"
#include "faults/fault.hpp"
#include "dot11/sta.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "phy/medium.hpp"
#include "scenario/world.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "vpn/client.hpp"
#include "vpn/endpoint.hpp"

namespace rogue::scenario {

struct CorpConfig {
  std::uint64_t seed = 1;

  // Link-layer "security" (the mechanisms §2.1 shows to be insufficient).
  bool wep = true;
  util::Bytes wep_key = util::to_bytes("SECRETWEPKEY1");  // 13 bytes (WEP-104)
  /// When set, overrides `wep`: kOpen / kWep / kWpaPsk (§2.2 extension —
  /// the rogue is configured with the same credentials either way).
  std::optional<dot11::SecurityMode> security;
  util::Bytes wpa_psk = util::to_bytes("corp-wpa-passphrase");
  crypto::WepIvPolicy iv_policy = crypto::WepIvPolicy::kSequential;
  dot11::AuthAlgorithm auth_algorithm = dot11::AuthAlgorithm::kOpenSystem;
  bool mac_filtering = true;

  // Geometry (meters from the victim).
  double victim_to_legit_m = 15.0;
  double victim_to_rogue_m = 8.0;
  phy::Channel legit_channel = 1;
  phy::Channel rogue_channel = 6;

  dot11::JoinPolicy victim_join_policy = dot11::JoinPolicy::kBestRssi;

  // Radio environment.
  phy::MediumConfig medium;

  // Download workload.
  std::size_t release_size = 16 * 1024;

  // Attack configuration.
  bool rogue_clones_bssid = true;  ///< Figure 1: same "AP MAC"
  apps::NetsedMode netsed_mode = apps::NetsedMode::kPerSegment;
  bool rewrite_link = true;  ///< netsed rule 1: href -> attacker mirror
  bool rewrite_md5 = true;   ///< netsed rule 2: REALMD5SUM -> FAKEMD5SUM

  /// TCP parameters applied to every host in the world (the MSS controls
  /// where TCP segments — and therefore netsed's match windows — split).
  net::TcpConfig tcp;

  // VPN configuration.
  vpn::Transport vpn_transport = vpn::Transport::kTcp;
  util::Bytes vpn_psk = util::to_bytes("corp-vpn-preshared-authenticator");
  /// Anti-replay window width (records) on both tunnel directions.
  std::size_t vpn_replay_window = 1024;
  /// Client-initiated rekey thresholds; 0 disables that trigger.
  std::uint64_t vpn_rekey_records = 0;
  sim::Time vpn_rekey_interval = 0;

  // Episode script (World::run_episode()). Which phases run, and for how
  // long. Defaults reproduce Figure 2's baseline: no attack, plain
  // download. Flip the booleans to get Figure 1 (deploy_rogue), Figure 2
  // (deploy_rogue + do_download) or Figure 3 (use_vpn + do_download).
  bool deploy_rogue = false;
  bool deauth_forcing = false;   ///< §4 forced roam (needs deploy_rogue)
  bool use_vpn = false;
  bool enable_detection = false; ///< §2.3 sequence-control monitor
  bool do_download = true;
  sim::Time settle_time = 3 * sim::kSecond;
  sim::Time capture_window = 15 * sim::kSecond;
  sim::Time vpn_window = 10 * sim::kSecond;
  sim::Time download_window = 60 * sim::kSecond;
  sim::Time deauth_period = 100 * sim::kMillisecond;

  // Chaos (fault injection) episode knobs.
  /// Generate a seed-derived faults::Plan over the episode windows and
  /// inject it while the episode runs.
  bool inject_faults = false;
  /// Plan shape; horizon == 0 means "derive [settle, episode end) from the
  /// phase windows above".
  faults::PlanConfig faults;
  /// Self-healing VPN client (keepalive/DPD + reconnect with backoff).
  bool vpn_auto_reconnect = false;
  /// Tunnel gap policy: fail open (restore the raw default route — exposed
  /// but connected, measured by Metrics::clear_packets) vs fail closed.
  bool vpn_fail_open = true;
  /// Background victim heartbeat during chaos episodes (0 disables). A
  /// stalled download transmits nothing, so without ambient traffic the
  /// fail-open exposure meter would read zero by construction.
  sim::Time chatter_period = 500 * sim::kMillisecond;

  // WIDS tournament episode (attacker×detector pairing). When either
  // list is non-empty, run_episode() runs the tournament script instead
  // of the legacy phases: settle, a quiet baseline window (false-positive
  // territory), then the attacker's window. wids_attacker "none" is the
  // control row; "" keeps the legacy episode.
  std::vector<std::string> wids_detectors;
  std::string wids_attacker;
  sim::Time wids_baseline_window = 8 * sim::kSecond;
  sim::Time wids_attack_window = 20 * sim::kSecond;
};

/// Well-known addresses inside the world.
struct CorpAddresses {
  net::Ipv4Addr corp_gw_lan{10, 0, 0, 1};
  net::Ipv4Addr vpn_endpoint{10, 0, 0, 5};
  net::Ipv4Addr victim{10, 0, 0, 77};
  net::Ipv4Addr rogue_wlan{10, 0, 0, 200};
  net::Ipv4Addr rogue_eth{10, 0, 0, 201};
  net::Ipv4Addr corp_gw_wan{203, 0, 113, 1};
  net::Ipv4Addr web_server{203, 0, 113, 80};
  std::uint16_t vpn_port = 7000;
};

class CorpWorld final : public World, private faults::FaultTarget {
 public:
  explicit CorpWorld(CorpConfig config = {});

  // ---- World interface -----------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "corp"; }
  /// Re-root the simulation at `seed`. Must precede start().
  void configure(std::uint64_t seed) override;
  void run_episode() override;
  [[nodiscard]] Metrics collect_metrics() const override;
  [[nodiscard]] sim::Simulator& simulator() override { return sim_; }
  [[nodiscard]] sim::Trace& trace() override { return trace_; }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] phy::Medium& medium() { return medium_; }
  [[nodiscard]] const CorpConfig& config() const { return config_; }
  [[nodiscard]] const CorpAddresses& addr() const { return addr_; }

  /// Bring up the wired network, legit AP, web site, VPN endpoint, victim.
  void start() override;

  /// Record every radio frame into the trace (pcap export). Call before
  /// start().
  void enable_frame_capture() override { capture_frames_ = true; }

  /// Figure 1: stand up the rogue gateway (cloned SSID/WEP/BSSID, proxy
  /// ARP bridge, DNAT + netsed + trojan mirror).
  attack::RogueGateway& deploy_rogue();
  [[nodiscard]] attack::RogueGateway* rogue() { return rogue_.get(); }

  /// §4: force the victim off the legitimate AP with forged deauths.
  attack::DeauthAttacker& start_deauth_forcing(sim::Time period = 100'000);

  /// Boilerplate shared by every "rogue captures the victim" driver:
  /// start(), settle, deploy the rogue (plus deauth forcing when the
  /// config asks for it), then run out the capture window.
  void run_capture_phase();

  /// §2.3: park a sequence-control monitor on the corporate channel.
  /// Created automatically by run_episode() when enable_detection is set.
  detect::SeqNumMonitor& enable_detection();
  [[nodiscard]] detect::SeqNumMonitor* detector() { return monitor_.get(); }

  /// Pluggable WIDS: attach a registry detector wired to this world's
  /// channel plan, AP inventory, monitor position and wired segment.
  bool attach_detector(std::string_view name) override;
  /// Pluggable attacker configured against the corporate network ("none"
  /// arms nothing — the tournament's control row).
  bool attach_attacker(std::string_view name) override;
  [[nodiscard]] const std::vector<std::unique_ptr<detect::Detector>>&
  wids_detectors() const {
    return detectors_;
  }
  [[nodiscard]] attack::Attacker* wids_attacker() { return attacker_.get(); }
  /// The environments the attach hooks hand out (exposed for tests).
  [[nodiscard]] detect::DetectorEnv detector_env();
  [[nodiscard]] attack::AttackerEnv attacker_env();
  /// Tournament script: settle + quiet baseline, then the attack window.
  void run_wids_episode();

  /// Figure 3: victim tunnels all traffic to the trusted endpoint.
  void connect_vpn(std::function<void(bool ok)> done);
  [[nodiscard]] vpn::ClientTunnel* victim_tunnel() { return victim_tunnel_.get(); }

  /// Chaos: generate the seed-derived fault plan over the episode windows
  /// and schedule it. Called by run_episode() when inject_faults is set.
  void install_fault_plan();
  [[nodiscard]] const faults::Injector* fault_injector() const {
    return injector_.get();
  }
  [[nodiscard]] const TunnelHealth& tunnel_health() const { return health_; }

  /// §4.1 workload: victim fetches the download page, follows the link,
  /// verifies the MD5SUM.
  void download(std::function<void(const apps::DownloadOutcome&)> done);

  /// Drive the simulation forward.
  void run_for(sim::Time duration) override {
    sim_.run_until(sim_.now() + duration);
  }

  // ---- Introspection -------------------------------------------------------
  [[nodiscard]] dot11::Station& victim_sta() { return *victim_sta_; }
  [[nodiscard]] net::Host& victim() { return *victim_; }
  [[nodiscard]] dot11::AccessPoint& legit_ap() { return *legit_ap_; }
  [[nodiscard]] net::Host& web_server() { return *web_; }
  [[nodiscard]] net::Host& corp_gw() { return *corp_gw_; }
  [[nodiscard]] net::Host& vpn_host() { return *vpn_host_; }
  [[nodiscard]] vpn::Endpoint& vpn_endpoint() { return *endpoint_; }
  [[nodiscard]] net::Switch& corp_lan() { return corp_lan_; }
  [[nodiscard]] net::Switch& internet() { return internet_; }

  [[nodiscard]] net::MacAddr legit_bssid() const;
  [[nodiscard]] net::MacAddr victim_mac() const;
  /// Is the victim currently associated with the rogue AP (vs the real one)?
  [[nodiscard]] bool victim_on_rogue() const;

  /// The genuine release blob and the attacker's trojan.
  [[nodiscard]] const util::Bytes& release_blob() const { return release_; }
  [[nodiscard]] const util::Bytes& trojan_blob() const { return trojan_; }
  [[nodiscard]] std::string release_md5() const;
  [[nodiscard]] std::string trojan_md5() const;

 private:
  void build_wired();
  void build_wireless();
  void start_chatter();

  // faults::FaultTarget — how chaos lands on this world's components.
  void fault_ap(bool down) override;
  void fault_endpoint(bool down) override;
  void fault_channel(double extra_loss) override;
  void fault_link(bool down) override;
  void fault_deauth_storm(bool active) override;
  void fault_reorder(double probability) override;
  void fault_duplicate(double probability) override;
  void fault_jitter(double max_ms) override;

  CorpConfig config_;
  CorpAddresses addr_;
  sim::Simulator sim_;
  sim::Trace trace_;
  phy::Medium medium_;
  net::Switch corp_lan_;
  net::Switch internet_;

  util::Bytes release_;
  util::Bytes trojan_;

  std::unique_ptr<net::Host> corp_gw_;
  std::unique_ptr<net::Host> web_;
  std::unique_ptr<apps::HttpServer> web_http_;
  std::unique_ptr<net::Host> vpn_host_;
  std::unique_ptr<vpn::Endpoint> endpoint_;

  std::unique_ptr<dot11::AccessPoint> legit_ap_;
  std::unique_ptr<net::ApBridge> ap_bridge_;

  std::unique_ptr<dot11::Station> victim_sta_;
  std::unique_ptr<net::Host> victim_;
  std::unique_ptr<vpn::ClientTunnel> victim_tunnel_;

  std::unique_ptr<attack::RogueGateway> rogue_;
  std::unique_ptr<attack::DeauthAttacker> deauth_;
  std::unique_ptr<detect::SeqNumMonitor> monitor_;
  std::vector<std::unique_ptr<detect::Detector>> detectors_;
  std::unique_ptr<attack::Attacker> attacker_;
  std::unique_ptr<faults::Injector> injector_;
  std::unique_ptr<attack::DeauthAttacker> chaos_deauth_;
  std::shared_ptr<net::UdpSocket> chatter_sock_;
  TunnelHealth health_;

  bool started_ = false;
  bool capture_frames_ = false;

  // Episode observations, filled in as the scenario unfolds and read by
  // collect_metrics(). "-1 cast to Time" is avoided by optionals.
  std::optional<sim::Time> rogue_deploy_time_;
  std::optional<sim::Time> wids_attack_start_;
  bool wids_enabled_ = false;
  std::optional<sim::Time> capture_time_;
  std::optional<sim::Time> vpn_up_time_;
  bool vpn_attempted_ = false;
  bool vpn_ok_ = false;
  std::optional<apps::DownloadOutcome> outcome_;
};

}  // namespace rogue::scenario
