#include "scenario/metro_world.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/fmt.hpp"

namespace rogue::scenario {

namespace {

/// 802.11b non-overlapping channel plan.
constexpr phy::Channel kScanChannels[3] = {1, 6, 11};

constexpr std::uint64_t kApIdBase = 0xA0'0000'0000ull;
constexpr std::uint64_t kRogueIdBase = 0xE0'0000'0000ull;
constexpr std::uint64_t kStaIdBase = 0x50'0000'0000ull;

phy::MediumConfig metro_medium(const MetroConfig& cfg) {
  phy::MediumConfig m = cfg.medium;
  m.spatial_grid = cfg.spatial_grid;
  // Constant mobility stales pairwise-RSSI entries before reuse while the
  // per-sender slices cost real memory at 50k radios; compute directly.
  // Applied on both geometries so flat-vs-grid comparisons stay aligned.
  m.pair_rssi_cache = false;
  return m;
}

}  // namespace

MetroWorld::MetroWorld(MetroConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      medium_(sim_, metro_medium(config_)),
      layout_rng_(0) {
  ROGUE_ASSERT_MSG(config_.ap_cols > 0 && config_.ap_rows > 0,
                   "metro world needs at least one AP");
  world_w_m_ = static_cast<double>(config_.ap_cols) * config_.ap_spacing_m;
  world_h_m_ = static_cast<double>(config_.ap_rows) * config_.ap_spacing_m;
}

void MetroWorld::configure(std::uint64_t seed) {
  ROGUE_ASSERT_MSG(!started_, "configure() must precede start()");
  config_.seed = seed;
  sim_.reseed(seed);
}

void MetroWorld::start() {
  if (started_) return;
  started_ = true;
  if (capture_frames_) {
    trace_.enable_frame_capture(true);
    medium_.set_capture(&trace_);
  }
  layout_rng_ = sim_.derive_rng("metro.layout");
  build_aps();
  build_stas();
  start_mobility();
  // Independent TBTT offsets, as on real hardware: phase-aligned beacon
  // timers would make every hidden co-channel AP pair contend on the exact
  // same tick each interval, inflating collision churn far beyond what a
  // deployed street grid sees.
  for (auto& ap : aps_) {
    const sim::Time phase =
        layout_rng_.uniform_u64(0, dot11::ApConfig{}.beacon_interval - 1);
    sim_.at(phase, [ap = ap.get()] { ap->start(); });
  }
}

void MetroWorld::build_aps() {
  // Legitimate infrastructure: one AP per street intersection, channels
  // cycling over the non-overlapping plan so same-channel neighbors sit
  // several cells apart.
  std::size_t i = 0;
  for (std::size_t row = 0; row < config_.ap_rows; ++row) {
    for (std::size_t col = 0; col < config_.ap_cols; ++col, ++i) {
      dot11::ApConfig ap_cfg;
      ap_cfg.ssid = config_.ssid;
      ap_cfg.bssid = net::MacAddr::from_id(kApIdBase + i);
      ap_cfg.channel = kScanChannels[(row + col) % 3];
      auto ap = std::make_unique<dot11::AccessPoint>(sim_, medium_, ap_cfg);
      ap->radio().set_position(
          {(static_cast<double>(col) + 0.5) * config_.ap_spacing_m,
           (static_cast<double>(row) + 0.5) * config_.ap_spacing_m});
      aps_.push_back(std::move(ap));
    }
  }
  // Evil twins: same SSID, open auth, parked wherever the seed drops them.
  // Nothing distinguishes them over the air — which is the experiment.
  for (std::size_t r = 0; r < config_.rogue_count; ++r) {
    dot11::ApConfig rogue_cfg;
    rogue_cfg.ssid = config_.ssid;
    rogue_cfg.bssid = net::MacAddr::from_id(kRogueIdBase + r);
    rogue_cfg.channel =
        kScanChannels[layout_rng_.uniform_u64(0, 2)];
    auto rogue = std::make_unique<dot11::AccessPoint>(sim_, medium_, rogue_cfg);
    rogue->radio().set_position({layout_rng_.uniform01() * world_w_m_,
                                 layout_rng_.uniform01() * world_h_m_});
    rogue_bssids_.insert(rogue_cfg.bssid);
    aps_.push_back(std::move(rogue));
  }
}

void MetroWorld::build_stas() {
  for (std::size_t i = 0; i < config_.sta_count; ++i) {
    Sta& sta = stas_.emplace_back(medium_, util::format("msta{}", i),
                                  net::MacAddr::from_id(kStaIdBase + i),
                                  layout_rng_.fork());
    sta.radio.set_position({sta.rng.uniform01() * world_w_m_,
                            sta.rng.uniform01() * world_h_m_});
    sta.waypoint = {sta.rng.uniform01() * world_w_m_,
                    sta.rng.uniform01() * world_h_m_};
    sta.speed_mps = config_.sta_speed_mps * (0.5 + sta.rng.uniform01());
    sta.radio.set_receive_handler(
        [this, &sta](util::ByteView raw, const phy::RxInfo& info) {
          on_sta_rx(sta, raw, info);
        });
    // Stagger first scans so 50k stations don't key up their first auth
    // inside one carrier-sense blind window.
    const sim::Time offset =
        config_.start_stagger > 0
            ? sta.rng.uniform_u64(0, config_.start_stagger)
            : 0;
    sta.timer = sim_.after(offset, [this, &sta] { enter_scan(sta); });
  }
}

void MetroWorld::start_mobility() {
  if (config_.sta_count == 0 || config_.mobility_tick == 0) return;
  // One world-level timer walks every STA: 50k per-STA motion timers would
  // put 50k near-simultaneous events in the heap for no behavioral gain.
  sim_.every(config_.mobility_tick, [this] { mobility_tick(); });
}

void MetroWorld::mobility_tick() {
  const double dt = static_cast<double>(config_.mobility_tick) / 1e6;
  for (Sta& sta : stas_) {
    const phy::Position& p = sta.radio.position();
    double dx = sta.waypoint.x - p.x;
    double dy = sta.waypoint.y - p.y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    const double step = sta.speed_mps * dt;
    if (dist <= step) {
      sta.radio.set_position(sta.waypoint);
      sta.waypoint = {sta.rng.uniform01() * world_w_m_,
                      sta.rng.uniform01() * world_h_m_};
    } else {
      sta.radio.set_position({p.x + dx / dist * step, p.y + dy / dist * step});
    }
  }
}

// ---- STA state machine ------------------------------------------------------

void MetroWorld::enter_scan(Sta& sta) {
  sim_.cancel(sta.timer);
  sta.state = StaState::kScanning;
  sta.scan_idx = 0;
  sta.have_candidate = false;
  sta.cand_rssi = -200.0;
  sta.better_streak = 0;
  sta.radio.trim_tx_state();
  sta.radio.set_channel(kScanChannels[0]);
  sta.timer = sim_.after(config_.scan_dwell, [this, &sta] { scan_step(sta); });
}

void MetroWorld::scan_step(Sta& sta) {
  ++sta.scan_idx;
  if (sta.scan_idx < 3) {
    sta.radio.set_channel(kScanChannels[sta.scan_idx]);
    sta.timer = sim_.after(config_.scan_dwell, [this, &sta] { scan_step(sta); });
    return;
  }
  if (sta.have_candidate) {
    start_join(sta, sta.cand_bssid, sta.cand_channel);
  } else {
    // Out of coverage (or every beacon lost to noise): sweep again.
    enter_scan(sta);
  }
}

void MetroWorld::start_join(Sta& sta, net::MacAddr bssid, phy::Channel channel) {
  sim_.cancel(sta.timer);
  sta.state = StaState::kJoining;
  sta.bssid = bssid;
  sta.radio.set_channel(channel);
  dot11::AuthBody auth;
  auth.algorithm = dot11::AuthAlgorithm::kOpenSystem;
  auth.transaction_seq = 1;
  send_mgmt(sta, dot11::MgmtSubtype::kAuth, bssid, auth.encode());
  sta.timer =
      sim_.after(config_.join_timeout, [this, &sta] { join_timed_out(sta); });
}

void MetroWorld::join_timed_out(Sta& sta) {
  ++join_failures_;
  enter_scan(sta);
}

void MetroWorld::enter_associated(Sta& sta) {
  sim_.cancel(sta.timer);
  sta.state = StaState::kAssociated;
  ++associations_;
  if (is_rogue(sta.bssid)) ++promiscuous_assocs_;
  if (sta.roaming) {
    roam_latency_s_.add(
        static_cast<double>(sim_.now() - sta.disassoc_time) / 1e6);
    sta.roaming = false;
  }
  sta.last_beacon = sim_.now();
  sta.better_streak = 0;
  // A metro STA transmits a handful of management frames per roam; holding
  // a neighborhood-sized delivery plan between roams costs ~100KB x 50k.
  sta.radio.trim_tx_state();
  sta.timer =
      sim_.after(config_.watchdog_period, [this, &sta] { watchdog_fire(sta); });
}

void MetroWorld::watchdog_fire(Sta& sta) {
  if (sim_.now() - sta.last_beacon > config_.beacon_loss_after) {
    ++beacon_losses_;
    connection_lost(sta);
    return;
  }
  sta.timer =
      sim_.after(config_.watchdog_period, [this, &sta] { watchdog_fire(sta); });
}

void MetroWorld::connection_lost(Sta& sta) {
  if (!sta.roaming) {
    sta.roaming = true;
    sta.disassoc_time = sim_.now();
  }
  enter_scan(sta);
}

void MetroWorld::on_sta_rx(Sta& sta, util::ByteView raw,
                           const phy::RxInfo& info) {
  const auto frame = dot11::FrameView::parse(raw);
  if (!frame) return;

  switch (sta.state) {
    case StaState::kScanning: {
      if (!frame->is_mgmt(dot11::MgmtSubtype::kBeacon)) return;
      if (info.rssi_dbm <= sta.cand_rssi) return;  // not an improvement
      const auto beacon = dot11::BeaconBody::decode(frame->body);
      if (!beacon || beacon->ssid != config_.ssid) return;
      sta.have_candidate = true;
      sta.cand_bssid = frame->addr2;
      sta.cand_channel = sta.radio.channel();
      sta.cand_rssi = info.rssi_dbm;
      return;
    }

    case StaState::kJoining: {
      if (frame->addr1 != sta.mac || frame->addr2 != sta.bssid) return;
      if (frame->is_mgmt(dot11::MgmtSubtype::kAuth)) {
        const auto auth = dot11::AuthBody::decode(frame->body);
        if (!auth || auth->transaction_seq != 2) return;
        if (auth->status != dot11::StatusCode::kSuccess) {
          ++join_failures_;
          enter_scan(sta);
          return;
        }
        dot11::AssocReqBody req;
        req.ssid = config_.ssid;
        send_mgmt(sta, dot11::MgmtSubtype::kAssocReq, sta.bssid, req.encode());
        return;
      }
      if (frame->is_mgmt(dot11::MgmtSubtype::kAssocResp)) {
        const auto resp = dot11::AssocRespBody::decode(frame->body);
        if (!resp) return;
        if (resp->status != dot11::StatusCode::kSuccess) {
          ++join_failures_;
          enter_scan(sta);
          return;
        }
        sta.own_rssi = info.rssi_dbm;  // until the first beacon refreshes it
        enter_associated(sta);
        return;
      }
      if (frame->is_mgmt(dot11::MgmtSubtype::kDeauth)) enter_scan(sta);
      return;
    }

    case StaState::kAssociated: {
      if (frame->is_mgmt(dot11::MgmtSubtype::kBeacon)) {
        if (frame->addr2 == sta.bssid) {
          sta.last_beacon = info.time;
          sta.own_rssi = info.rssi_dbm;
          return;
        }
        // A co-channel neighbor. Roam only on a sustained, decisively
        // stronger signal — single-beacon fades would thrash.
        if (info.rssi_dbm < sta.own_rssi + config_.roam_hysteresis_db) {
          if (frame->addr2 == sta.better_bssid) sta.better_streak = 0;
          return;
        }
        const auto beacon = dot11::BeaconBody::decode(frame->body);
        if (!beacon || beacon->ssid != config_.ssid) return;
        if (frame->addr2 == sta.better_bssid) {
          ++sta.better_streak;
        } else {
          sta.better_bssid = frame->addr2;
          sta.better_streak = 1;
        }
        if (sta.better_streak < config_.roam_sightings) return;
        ++roams_;
        // Passive monitoring only hears co-channel APs, so the departure
        // deauth always goes out on the channel we're about to stay on.
        dot11::DeauthBody bye;
        bye.reason = dot11::ReasonCode::kDeauthLeaving;
        send_mgmt(sta, dot11::MgmtSubtype::kDeauth, sta.bssid, bye.encode());
        sta.roaming = true;
        sta.disassoc_time = sim_.now();
        start_join(sta, sta.better_bssid, sta.radio.channel());
        return;
      }
      if ((frame->is_mgmt(dot11::MgmtSubtype::kDeauth) ||
           frame->is_mgmt(dot11::MgmtSubtype::kDisassoc)) &&
          frame->addr2 == sta.bssid &&
          (frame->addr1 == sta.mac || frame->addr1.is_broadcast())) {
        ++deauths_rx_;
        connection_lost(sta);
      }
      return;
    }
  }
}

void MetroWorld::send_mgmt(Sta& sta, dot11::MgmtSubtype subtype,
                           net::MacAddr dst, util::Bytes body) {
  dot11::Frame f;
  f.type = dot11::FrameType::kManagement;
  f.subtype = static_cast<std::uint8_t>(subtype);
  f.addr1 = dst;
  f.addr2 = sta.mac;
  f.addr3 = sta.bssid;
  f.sequence = static_cast<std::uint16_t>(sta.tx_seq++ & 0x0fff);
  f.body = std::move(body);
  util::Bytes buf = sta.radio.acquire_buffer();
  f.serialize_into(buf);
  sta.radio.transmit(std::move(buf));
}

// ---- Episode ----------------------------------------------------------------

void MetroWorld::run_episode() {
  start();
  run_for(config_.episode_duration);
}

std::size_t MetroWorld::associated_count() const {
  std::size_t n = 0;
  for (const Sta& sta : stas_) {
    if (sta.state == StaState::kAssociated) ++n;
  }
  return n;
}

Metrics MetroWorld::collect_metrics() const {
  Metrics m;
  m.metro_enabled = true;
  m.metro_stas = config_.sta_count;
  m.metro_aps = aps_.size();
  m.metro_associations = associations_;
  m.metro_roams = roams_;
  m.metro_beacon_losses = beacon_losses_;
  m.metro_join_failures = join_failures_;
  m.metro_deauths = deauths_rx_;
  m.metro_promiscuous_assocs = promiscuous_assocs_;
  m.metro_promiscuous_rate =
      associations_ > 0
          ? static_cast<double>(promiscuous_assocs_) /
                static_cast<double>(associations_)
          : 0.0;
  m.metro_assoc_fraction =
      config_.sta_count > 0
          ? static_cast<double>(associated_count()) /
                static_cast<double>(config_.sta_count)
          : 0.0;
  if (roam_latency_s_.count() > 0) {
    m.metro_roam_p50_s = roam_latency_s_.percentile(0.5);
    m.metro_roam_p95_s = roam_latency_s_.percentile(0.95);
  }
  m.sim_time_s = static_cast<double>(sim_.now()) / 1e6;
  m.events_fired = sim_.events_fired();
  m.trace_records = trace_.size();
  m.stats = sim_.stats_snapshot();
  return m;
}

}  // namespace rogue::scenario
