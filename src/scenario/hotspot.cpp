#include "scenario/hotspot.hpp"

#include <stdexcept>

#include "crypto/aead.hpp"
#include "crypto/md5.hpp"
#include "util/assert.hpp"

namespace rogue::scenario {

namespace {
const net::MacAddr kHotspotBssid = net::MacAddr::from_id(0xCAFE000001);
const net::MacAddr kClientMac = net::MacAddr::from_id(0xCAFE000100);
const net::MacAddr kGwWanMac = net::MacAddr::from_id(0xCAFE000002);
const net::MacAddr kWebMac = net::MacAddr::from_id(0xCAFE000003);
const net::MacAddr kHomeMac = net::MacAddr::from_id(0xCAFE000004);
constexpr std::uint16_t kNetsedPort = 10101;
}  // namespace

HotspotWorld::HotspotWorld(HotspotConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      medium_(sim_, config_.medium),
      internet_(sim_) {
  release_ = apps::make_release_blob(0xFEED, config_.release_size);
  trojan_ = apps::make_release_blob(0xBAD, config_.release_size);
}

void HotspotWorld::configure(std::uint64_t seed) {
  ROGUE_ASSERT_MSG(!started_, "configure() must precede start()");
  config_.seed = seed;
  sim_.reseed(seed);
}

std::string HotspotWorld::release_md5() const { return crypto::md5_hex(release_); }
std::string HotspotWorld::trojan_md5() const { return crypto::md5_hex(trojan_); }

void HotspotWorld::start() {
  if (started_) return;
  started_ = true;
  if (capture_frames_) {
    trace_.enable_frame_capture(true);
    medium_.set_capture(&trace_);
  }

  // Open hotspot AP (public hotspots of the era ran no WEP).
  dot11::ApConfig ap_cfg;
  ap_cfg.ssid = "HOTSPOT";
  ap_cfg.bssid = kHotspotBssid;
  ap_cfg.channel = 6;
  ap_ = std::make_unique<dot11::AccessPoint>(sim_, medium_, ap_cfg, &trace_);
  ap_->radio().set_position({5.0, 0.0});

  // Hotspot gateway: NAT between the hotspot LAN and the internet.
  gw_ = std::make_unique<net::Host>(sim_, "hotspot-gw");
  gw_->attach(std::make_unique<net::ApIf>("wlan0", *ap_));
  gw_->add_wired("wan0", internet_, kGwWanMac);
  gw_->configure("wlan0", addr_.hotspot_lan, 24);
  gw_->configure("wan0", addr_.hotspot_wan, 24);
  gw_->set_ip_forward(true);
  {
    net::Rule masquerade;
    masquerade.match.src = net::Ipv4Addr(192, 168, 1, 0);
    masquerade.match.src_mask = net::netmask(24);
    masquerade.match.out_iface = "wan0";
    masquerade.target = net::RuleTarget::kSnat;
    masquerade.nat_ip = addr_.hotspot_wan;
    gw_->netfilter().append(net::Hook::kPostrouting, masquerade);
  }

  if (config_.hostile) {
    // The owner-in-the-middle: same DNAT + netsed + trojan mirror as the
    // corporate rogue, but running on legitimate infrastructure.
    net::Rule dnat;
    dnat.match.protocol = net::kProtoTcp;
    dnat.match.dst = addr_.web_server;
    dnat.match.dport = 80;
    dnat.match.in_iface = "wlan0";
    dnat.target = net::RuleTarget::kDnat;
    dnat.nat_ip = addr_.hotspot_lan;
    dnat.nat_port = kNetsedPort;
    gw_->netfilter().append(net::Hook::kPrerouting, dnat);

    const std::string fake_link =
        "http://" + addr_.hotspot_lan.to_string() + "/file.tgz";
    std::vector<apps::NetsedRule> rules;
    rules.push_back(
        apps::NetsedRule::from_strings("href=file.tgz", "href=" + fake_link));
    rules.push_back(apps::NetsedRule::from_strings(release_md5(), trojan_md5()));
    netsed_ = std::make_unique<apps::Netsed>(*gw_, kNetsedPort, addr_.web_server,
                                             80, std::move(rules));
    trojan_server_ = std::make_unique<apps::HttpServer>(*gw_, 80);
    apps::install_trojan_site(*trojan_server_, trojan_);
  }

  // The public web server.
  web_ = std::make_unique<net::Host>(sim_, "web-server");
  web_->add_wired("eth0", internet_, kWebMac);
  web_->configure("eth0", addr_.web_server, 24);
  web_http_ = std::make_unique<apps::HttpServer>(*web_, 80);
  apps::install_download_site(*web_http_, release_);

  // The client's *home* VPN endpoint, reachable across the internet
  // (§5.2: provided by "the client's home corporation, home ISP, or
  // perhaps a trusted third party").
  home_ = std::make_unique<net::Host>(sim_, "home-vpn");
  home_->add_wired("eth0", internet_, kHomeMac);
  home_->configure("eth0", addr_.home_vpn, 24);
  vpn::EndpointConfig ep;
  ep.psk = config_.vpn_psk;
  ep.port = addr_.vpn_port;
  endpoint_ = std::make_unique<vpn::Endpoint>(*home_, ep);
  endpoint_->start();

  // The roaming client.
  dot11::StationConfig sta;
  sta.mac = kClientMac;
  sta.target_ssid = "HOTSPOT";
  sta.scan_channels = {6};
  client_sta_ = std::make_unique<dot11::Station>(sim_, medium_, sta, &trace_);
  client_sta_->radio().set_position({0.0, 0.0});
  client_sta_->set_event_handler(
      [this](std::string_view event, const dot11::BssInfo&) {
        if (event == "assoc" && !join_time_) join_time_ = sim_.now();
      });

  client_ = std::make_unique<net::Host>(sim_, "client");
  client_->attach(std::make_unique<net::StationIf>("wlan0", *client_sta_));
  client_->configure("wlan0", addr_.client, 24);
  client_->routes().add_default(addr_.hotspot_lan, "wlan0");

  ap_->start();
  client_sta_->start();
}

void HotspotWorld::install_fault_plan() {
  ROGUE_ASSERT_MSG(started_, "start() the world before installing faults");
  if (injector_) return;
  faults::PlanConfig cfg = config_.faults;
  if (cfg.horizon == 0) {
    cfg.start = sim_.now() + config_.settle_time;
    sim::Time horizon = cfg.start;
    if (config_.use_vpn) horizon += config_.vpn_window;
    if (config_.do_download) horizon += config_.download_window;
    if (horizon <= cfg.start) horizon = cfg.start + sim::kSecond;
    cfg.horizon = horizon;
  }
  util::Prng rng = sim_.derive_rng("faults.plan");
  injector_ = std::make_unique<faults::Injector>(
      sim_, static_cast<faults::FaultTarget&>(*this));
  injector_->install(faults::Plan::generate(rng, cfg));

  // Ambient client heartbeat (see CorpWorld::install_fault_plan): gives
  // the fail-open exposure meter traffic to count during tunnel gaps.
  start_chatter();
}

void HotspotWorld::start_chatter() {
  if (config_.chatter_period == 0 || chatter_sock_) return;
  chatter_sock_ = client_->udp_open(0);
  sim_.every(config_.chatter_period, [this] {
    static const util::Bytes kBeacon = {'h', 'b'};
    if (chatter_sock_) chatter_sock_->send_to(addr_.web_server, 9, kBeacon);
  });
}

detect::DetectorEnv HotspotWorld::detector_env() {
  detect::DetectorEnv env;
  env.sim = &sim_;
  env.medium = &medium_;
  env.trace = &trace_;
  env.channels = {6};
  // Near the AP: a hotspot operator audits from its own rack, which keeps
  // the RSSI baseline tight.
  env.position = {4.0, 2.0};
  detect::TrustedAp ap;
  ap.ssid = "HOTSPOT";
  ap.bssid = kHotspotBssid;
  ap.channel = 6;
  env.inventory = {ap};
  env.wired = &internet_;
  env.known_wired_macs = {kGwWanMac, kWebMac, kHomeMac};
  return env;
}

attack::AttackerEnv HotspotWorld::attacker_env() {
  attack::AttackerEnv env;
  env.sim = &sim_;
  env.medium = &medium_;
  env.trace = &trace_;
  env.ssid = "HOTSPOT";
  env.legit_bssid = kHotspotBssid;
  env.victim_mac = kClientMac;
  env.legit_channel = 6;
  env.rogue_channel = 6;
  env.position = {1.0, 0.0};  // lurking next to the client
  env.deauth_period = config_.deauth_period;
  env.rng = sim_.derive_rng("wids.attacker");
  // No rogue-gateway stack in this world: the hooks stay empty and the
  // "rogue-gateway" row degenerates to a no-op attacker.
  return env;
}

bool HotspotWorld::attach_detector(std::string_view name) {
  ROGUE_ASSERT_MSG(started_, "start() the world before attaching detectors");
  auto detector = detect::make_detector(name);
  if (!detector) return false;
  detector->attach(detector_env());
  wids_enabled_ = true;
  detectors_.push_back(std::move(detector));
  return true;
}

bool HotspotWorld::attach_attacker(std::string_view name) {
  ROGUE_ASSERT_MSG(started_, "start() the world before attaching attackers");
  ROGUE_ASSERT_MSG(!attacker_, "attacker already attached");
  wids_enabled_ = true;
  if (name == "none") return true;
  auto attacker = attack::make_attacker(name);
  if (!attacker) return false;
  attacker->configure(attacker_env());
  attacker_ = std::move(attacker);
  return true;
}

void HotspotWorld::run_wids_episode() {
  start();
  // Throw (not assert) so a bad roster name fails the replica, not the pool.
  for (const std::string& name : config_.wids_detectors) {
    if (!attach_detector(name)) {
      throw std::runtime_error("unknown wids detector: " + name);
    }
  }
  if (!config_.wids_attacker.empty() &&
      !attach_attacker(config_.wids_attacker)) {
    throw std::runtime_error("unknown wids attacker: " + config_.wids_attacker);
  }
  start_chatter();
  run_for(config_.settle_time + config_.wids_baseline_window);
  if (attacker_) {
    wids_attack_start_ = sim_.now();
    attacker_->start();
  }
  run_for(config_.wids_attack_window);
  if (attacker_) attacker_->stop();
}

void HotspotWorld::fault_ap(bool down) {
  if (down) ap_->stop();
  else ap_->start();
}

void HotspotWorld::fault_endpoint(bool down) {
  if (down) endpoint_->stop();
  else endpoint_->start();
}

void HotspotWorld::fault_channel(double extra_loss) {
  medium_.set_loss_override(extra_loss);
}

void HotspotWorld::fault_link(bool down) {
  if (net::NetIf* eth = home_->interface("eth0")) eth->set_admin_up(!down);
}

void HotspotWorld::fault_deauth_storm(bool active) {
  if (active) {
    if (!chaos_deauth_) {
      chaos_deauth_ = std::make_unique<attack::DeauthAttacker>(
          sim_, medium_, /*channel=*/6, kHotspotBssid, kClientMac);
      chaos_deauth_->radio().set_position({2.0, 1.0});
    }
    chaos_deauth_->start(config_.deauth_period);
  } else if (chaos_deauth_) {
    chaos_deauth_->stop();
  }
}

void HotspotWorld::connect_vpn(std::function<void(bool)> done) {
  ROGUE_ASSERT_MSG(!tunnel_, "VPN already connected");
  vpn::ClientConfig cfg;
  cfg.psk = config_.vpn_psk;
  cfg.endpoint_ip = addr_.home_vpn;
  cfg.endpoint_port = addr_.vpn_port;
  cfg.transport = config_.vpn_transport;
  cfg.auto_reconnect = config_.vpn_auto_reconnect;
  cfg.fail_open = config_.vpn_fail_open;
  tunnel_ = std::make_unique<vpn::ClientTunnel>(*client_, cfg);
  tunnel_->set_session_handler([this](bool up) {
    health_.on_session(sim_.now(), up);
    if (up) {
      vpn_ok_ = true;
      if (!vpn_up_time_) vpn_up_time_ = sim_.now();
    }
  });
  // Fail-open exposure meter (see CorpWorld::connect_vpn).
  client_->set_tap([this](std::string_view point, const net::Ipv4Packet& packet,
                          std::string_view ifname) {
    if (point != "tx" || ifname == "tun0") return;
    if (packet.dst == addr_.home_vpn) return;
    if (health_.gap_open()) ++health_.clear_packets;
  });
  tunnel_->start([this, done = std::move(done)](bool ok) {
    vpn_ok_ = ok;
    if (ok && !vpn_up_time_) vpn_up_time_ = sim_.now();
    if (done) done(ok);
  });
}

void HotspotWorld::download(std::function<void(const apps::DownloadOutcome&)> done) {
  apps::run_download(*client_, addr_.web_server, 80,
                     [this, done = std::move(done)](const apps::DownloadOutcome& o) {
                       outcome_ = o;
                       if (done) done(o);
                     });
}

void HotspotWorld::run_episode() {
  if (!config_.wids_detectors.empty() || !config_.wids_attacker.empty()) {
    run_wids_episode();
    return;
  }
  start();
  if (config_.inject_faults) install_fault_plan();
  run_for(config_.settle_time);
  if (config_.use_vpn) {
    connect_vpn([](bool) {});
    run_for(config_.vpn_window);
  }
  if (config_.do_download) {
    download([](const apps::DownloadOutcome&) {});
    run_for(config_.download_window);
  }
}

Metrics HotspotWorld::collect_metrics() const {
  constexpr double kUsPerSecond = 1e6;
  constexpr double kVpnRecordFraming = 8.0 + crypto::kAeadTagLen;

  Metrics m;
  m.sim_time_s = static_cast<double>(sim_.now()) / kUsPerSecond;
  m.events_fired = sim_.events_fired();
  m.trace_records = trace_.size();
  m.trace_warnings = trace_.count_at_least(sim::Severity::kWarn);
  m.stats = sim_.stats_snapshot();

  // "Captured" here means attached to attacker-run infrastructure: in the
  // hostile variant the hotspot itself is the adversary, so joining it at
  // all is the capture event.
  if (config_.hostile && join_time_) {
    m.victim_captured = true;
    m.time_to_capture_s = static_cast<double>(*join_time_) / kUsPerSecond;
  }

  if (outcome_) {
    m.download_completed = outcome_->file_fetched;
    m.md5_verified = outcome_->md5_verified;
    m.trojaned = outcome_->file_fetched && outcome_->fetched_md5_hex == trojan_md5();
    m.victim_deceived = m.trojaned && m.md5_verified;
  }

  if (injector_) m.faults_injected = injector_->injected();

  if (wids_enabled_) {
    m.wids_enabled = true;
    if (wids_attack_start_) {
      m.wids_attack_start_s =
          static_cast<double>(*wids_attack_start_) / kUsPerSecond;
    }
    std::optional<sim::Time> first_true;
    for (const auto& detector : detectors_) {
      for (const detect::Alert& alert : detector->alerts()) {
        ++m.wids_alerts;
        const bool false_alert =
            !wids_attack_start_ || alert.time < *wids_attack_start_;
        if (false_alert) {
          ++m.wids_false_alerts;
        } else if (!first_true || alert.time < *first_true) {
          first_true = alert.time;
        }
        m.wids_alert_timeline.push_back(Metrics::WidsAlert{
            static_cast<double>(alert.time) / kUsPerSecond,
            std::string(detector->name()),
            std::string(detect::to_string(alert.kind)), false_alert});
      }
    }
    if (first_true) {
      m.wids_time_to_detect_s =
          static_cast<double>(*first_true - *wids_attack_start_) / kUsPerSecond;
      m.rogue_detected = true;
    }
  }

  if (tunnel_) {
    m.vpn_established = vpn_ok_ && tunnel_->established();
    m.vpn_tunnel_losses = health_.losses();
    m.vpn_reconnects = health_.reconnects();
    m.vpn_downtime_s = health_.downtime_s(sim_.now());
    if (health_.recover().count() > 0) {
      m.vpn_recover_p50_s = health_.recover().percentile(0.50);
      m.vpn_recover_p95_s = health_.recover().percentile(0.95);
    }
    m.clear_packets = health_.clear_packets;
    const vpn::ClientCounters& c = tunnel_->counters();
    m.vpn_records_out = c.records_out;
    m.vpn_records_in = c.records_in;
    if (vpn_up_time_ && sim_.now() > *vpn_up_time_) {
      const double active_s =
          static_cast<double>(sim_.now() - *vpn_up_time_) / kUsPerSecond;
      m.vpn_goodput_kbps =
          static_cast<double>(c.bytes_decrypted) * 8.0 / 1000.0 / active_s;
    }
    const double payload = static_cast<double>(c.bytes_sealed + c.bytes_decrypted);
    if (payload > 0.0) {
      const double wire =
          payload + kVpnRecordFraming *
                        static_cast<double>(c.records_out + c.records_in);
      m.vpn_overhead_ratio = wire / payload;
    }
  }
  return m;
}

}  // namespace rogue::scenario
