// Hostile Hotspot world (§1.2.2): a public hotspot whose *owner* is the
// attacker — no rogue AP needed, the infrastructure itself tampers with
// traffic. Models the "network promiscuity" threat (§3.2): a roaming
// client crosses administrative domains whose operators it cannot vet,
// and only an always-on VPN to its *home* network protects it everywhere.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/download.hpp"
#include "apps/http.hpp"
#include "apps/netsed.hpp"
#include "attack/attacker.hpp"
#include "attack/deauth.hpp"
#include "detect/detector.hpp"
#include "dot11/ap.hpp"
#include "faults/fault.hpp"
#include "dot11/sta.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "phy/medium.hpp"
#include "scenario/world.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "vpn/client.hpp"
#include "vpn/endpoint.hpp"

namespace rogue::scenario {

struct HotspotConfig {
  std::uint64_t seed = 1;
  bool hostile = false;          ///< the hotspot owner tampers with traffic
  std::size_t release_size = 16 * 1024;
  vpn::Transport vpn_transport = vpn::Transport::kTcp;
  util::Bytes vpn_psk = util::to_bytes("home-vpn-preshared-authenticator");
  phy::MediumConfig medium;

  // Episode script (World::run_episode()): join the hotspot, optionally
  // bring the home VPN up first, then run the download workload.
  bool use_vpn = false;
  bool do_download = true;
  sim::Time settle_time = 3 * sim::kSecond;
  sim::Time vpn_window = 10 * sim::kSecond;
  sim::Time download_window = 60 * sim::kSecond;

  // Chaos (fault injection) episode knobs — see CorpConfig for semantics.
  bool inject_faults = false;
  faults::PlanConfig faults;
  bool vpn_auto_reconnect = false;
  bool vpn_fail_open = true;
  sim::Time deauth_period = 100 * sim::kMillisecond;
  sim::Time chatter_period = 500 * sim::kMillisecond;

  // WIDS tournament episode — see CorpConfig for semantics.
  std::vector<std::string> wids_detectors;
  std::string wids_attacker;
  sim::Time wids_baseline_window = 8 * sim::kSecond;
  sim::Time wids_attack_window = 20 * sim::kSecond;
};

struct HotspotAddresses {
  net::Ipv4Addr hotspot_lan{192, 168, 1, 1};
  net::Ipv4Addr client{192, 168, 1, 100};
  net::Ipv4Addr hotspot_wan{203, 0, 113, 200};
  net::Ipv4Addr web_server{203, 0, 113, 80};
  net::Ipv4Addr home_vpn{203, 0, 113, 5};
  std::uint16_t vpn_port = 7000;
};

class HotspotWorld final : public World, private faults::FaultTarget {
 public:
  explicit HotspotWorld(HotspotConfig config = {});

  // ---- World interface -----------------------------------------------------
  [[nodiscard]] std::string_view name() const override { return "hotspot"; }
  void configure(std::uint64_t seed) override;
  void run_episode() override;
  [[nodiscard]] Metrics collect_metrics() const override;
  [[nodiscard]] sim::Simulator& simulator() override { return sim_; }
  [[nodiscard]] sim::Trace& trace() override { return trace_; }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const HotspotAddresses& addr() const { return addr_; }
  [[nodiscard]] const HotspotConfig& config() const { return config_; }

  void start() override;

  /// Record every radio frame into the trace (pcap export). Call before
  /// start().
  void enable_frame_capture() override { capture_frames_ = true; }

  /// Chaos: generate the seed-derived fault plan over the episode windows
  /// and schedule it. Called by run_episode() when inject_faults is set.
  void install_fault_plan();
  [[nodiscard]] const faults::Injector* fault_injector() const {
    return injector_.get();
  }
  [[nodiscard]] const TunnelHealth& tunnel_health() const { return health_; }

  /// Pluggable WIDS hooks — the hotspot operator (or a visiting auditor)
  /// watches its own airspace. See CorpWorld for semantics.
  bool attach_detector(std::string_view name) override;
  bool attach_attacker(std::string_view name) override;
  [[nodiscard]] detect::DetectorEnv detector_env();
  [[nodiscard]] attack::AttackerEnv attacker_env();
  void run_wids_episode();

  /// Client tunnels everything home before doing anything else.
  void connect_vpn(std::function<void(bool ok)> done);
  /// The download workload, from the client.
  void download(std::function<void(const apps::DownloadOutcome&)> done);

  void run_for(sim::Time duration) override {
    sim_.run_until(sim_.now() + duration);
  }

  [[nodiscard]] net::Host& client() { return *client_; }
  [[nodiscard]] dot11::Station& client_sta() { return *client_sta_; }
  [[nodiscard]] net::Host& hotspot_gw() { return *gw_; }
  [[nodiscard]] const util::Bytes& release_blob() const { return release_; }
  [[nodiscard]] const util::Bytes& trojan_blob() const { return trojan_; }
  [[nodiscard]] std::string release_md5() const;
  [[nodiscard]] std::string trojan_md5() const;

 private:
  void start_chatter();

  // faults::FaultTarget — how chaos lands on this world's components.
  void fault_ap(bool down) override;
  void fault_endpoint(bool down) override;
  void fault_channel(double extra_loss) override;
  void fault_link(bool down) override;
  void fault_deauth_storm(bool active) override;

  HotspotConfig config_;
  HotspotAddresses addr_;
  sim::Simulator sim_;
  sim::Trace trace_;
  phy::Medium medium_;
  net::Switch internet_;

  util::Bytes release_;
  util::Bytes trojan_;

  std::unique_ptr<dot11::AccessPoint> ap_;
  std::unique_ptr<net::Host> gw_;
  std::unique_ptr<apps::Netsed> netsed_;
  std::unique_ptr<apps::HttpServer> trojan_server_;

  std::unique_ptr<net::Host> web_;
  std::unique_ptr<apps::HttpServer> web_http_;
  std::unique_ptr<net::Host> home_;
  std::unique_ptr<vpn::Endpoint> endpoint_;

  std::unique_ptr<dot11::Station> client_sta_;
  std::unique_ptr<net::Host> client_;
  std::unique_ptr<vpn::ClientTunnel> tunnel_;

  std::unique_ptr<faults::Injector> injector_;
  std::unique_ptr<attack::DeauthAttacker> chaos_deauth_;
  std::vector<std::unique_ptr<detect::Detector>> detectors_;
  std::unique_ptr<attack::Attacker> attacker_;
  std::shared_ptr<net::UdpSocket> chatter_sock_;
  TunnelHealth health_;

  bool started_ = false;
  bool capture_frames_ = false;

  // Episode observations for collect_metrics().
  std::optional<sim::Time> wids_attack_start_;
  bool wids_enabled_ = false;
  std::optional<sim::Time> join_time_;
  std::optional<sim::Time> vpn_up_time_;
  bool vpn_ok_ = false;
  std::optional<apps::DownloadOutcome> outcome_;
};

}  // namespace rogue::scenario
