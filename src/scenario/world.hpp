// The common scenario interface the experiment runner drives. A World
// packages one self-contained simulated testbed (simulator, radio medium,
// hosts, attacker, workload) behind a uniform lifecycle:
//
//   world.configure(seed);   // reseed every PRNG stream from one root seed
//   world.run_episode();     // start() + the scenario's canonical script
//   Metrics m = world.collect_metrics();
//
// Each World owns ALL of its mutable state — two worlds never share a
// simulator, medium, host, or PRNG — so replicas can run on any thread of
// a sweep and remain bit-deterministic per seed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stats.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"

namespace rogue::scenario {

/// Scenario-agnostic observations from one replica episode. Fields that a
/// scenario does not measure keep their "not observed" defaults (-1 for
/// latencies, false/0 elsewhere), so aggregation can filter on them.
struct Metrics {
  // Rogue capture (paper Figure 1).
  bool victim_captured = false;
  double time_to_capture_s = -1.0;  ///< simulated seconds; -1 = never captured

  // Download workload (Figure 2).
  bool download_completed = false;
  bool trojaned = false;        ///< victim received the attacker's binary
  bool md5_verified = false;    ///< the checksum check passed
  bool victim_deceived = false; ///< trojaned AND verified: the paper's payoff

  // Detection (§2.3 monitors, when the scenario enables them).
  bool rogue_detected = false;
  double detection_latency_s = -1.0;  ///< rogue deploy -> first seq anomaly
  std::uint64_t seq_anomalies = 0;

  // VPN countermeasure (Figure 3).
  bool vpn_established = false;
  double vpn_goodput_kbps = 0.0;    ///< app payload rate through the tunnel
  double vpn_overhead_ratio = 0.0;  ///< sealed bytes / app payload bytes
  std::uint64_t vpn_records_out = 0;
  std::uint64_t vpn_records_in = 0;

  // Robustness under injected faults (chaos episodes).
  std::uint64_t faults_injected = 0;   ///< fault windows whose begin edge fired
  std::uint64_t vpn_tunnel_losses = 0; ///< sessions torn down (DPD/transport)
  std::uint64_t vpn_reconnects = 0;    ///< sessions re-established after loss
  double vpn_downtime_s = 0.0;         ///< tunnel-down time after first up
  double vpn_recover_p50_s = -1.0;     ///< time-to-recover percentiles across
  double vpn_recover_p95_s = -1.0;     ///< this replica's gaps; -1 = no gaps
  /// Packets the client sent outside the tunnel while it was down — the
  /// fail-open exposure the defended path is supposed to prevent.
  std::uint64_t clear_packets = 0;

  // Transport resilience (EXP-T1). Populated only when the scenario runs
  // a UDP tunnel; transport_enabled gates serialization so legacy reports
  // are byte-identical.
  bool transport_enabled = false;
  std::uint64_t vpn_replay_drops = 0;      ///< anti-replay window rejections
  std::uint64_t vpn_auth_fail_drops = 0;   ///< MAC verification failures
  std::uint64_t vpn_stale_epoch_drops = 0; ///< records from expired epochs
  std::uint64_t vpn_rekeys = 0;            ///< completed epoch rotations
  std::uint64_t vpn_roams = 0;             ///< endpoint path migrations
  std::uint64_t vpn_sessions_reaped = 0;   ///< half-open/idle sessions expired

  // WIDS tournament episode (attacker×detector pairings). Populated only
  // when a detector/attacker was attached via the pluggable interfaces;
  // wids_enabled gates their serialization so legacy reports are
  // byte-identical.
  bool wids_enabled = false;
  double wids_attack_start_s = -1.0;   ///< -1 = control row (no attack)
  std::uint64_t wids_alerts = 0;       ///< total alerts across detectors
  std::uint64_t wids_false_alerts = 0; ///< alerts before the attack began
  double wids_time_to_detect_s = -1.0; ///< attack start -> first true alert
  /// One entry per alert: when it fired, which detector, what kind — the
  /// raw timeline the tournament's TTD percentiles derive from (and are
  /// re-derivable from). Serialized inside the gated wids block.
  struct WidsAlert {
    double t_s = 0.0;         ///< simulated seconds
    std::string detector;     ///< registry name, e.g. "fingerprint"
    std::string kind;         ///< detect::to_string(AlertKind)
    bool false_alert = false; ///< fired before the attack began
  };
  std::vector<WidsAlert> wids_alert_timeline;

  // Metro roaming episode (EXP-C5 at city scale). Populated only by
  // scenario::MetroWorld; metro_enabled gates serialization so legacy
  // reports are byte-identical.
  bool metro_enabled = false;
  std::uint64_t metro_stas = 0;               ///< roaming population size
  std::uint64_t metro_aps = 0;                ///< APs incl. evil twins
  std::uint64_t metro_associations = 0;       ///< successful (re)associations
  std::uint64_t metro_roams = 0;              ///< voluntary better-AP moves
  std::uint64_t metro_beacon_losses = 0;      ///< watchdog-triggered drops
  std::uint64_t metro_join_failures = 0;      ///< auth/assoc timeouts
  std::uint64_t metro_deauths = 0;            ///< AP-initiated kicks received
  std::uint64_t metro_promiscuous_assocs = 0; ///< joins onto an evil twin
  double metro_promiscuous_rate = 0.0;        ///< rogue joins / all joins
  double metro_assoc_fraction = 0.0;          ///< STAs associated at end
  double metro_roam_p50_s = -1.0;             ///< disassoc->assoc latency
  double metro_roam_p95_s = -1.0;             ///< -1 = no closed roam gaps

  // Event-kernel counters (engineering health of the replica).
  std::uint64_t events_fired = 0;
  std::uint64_t trace_records = 0;
  std::uint64_t trace_warnings = 0;  ///< records at Severity >= kWarn
  double sim_time_s = 0.0;

  /// Full layer-counter snapshot (phy/dot11/net/vpn/sim.*), deterministic
  /// per (variant, seed). Aggregated per variant by the sweep runner; not
  /// serialized per replica.
  obs::StatsSnapshot stats;
};

/// Folds a tunnel's up/down transitions (vpn::ClientTunnel's session
/// handler) into the robustness metrics: downtime, per-gap recovery
/// times, and — via the owning world's packet tap — in-the-clear packets.
class TunnelHealth {
 public:
  void on_session(sim::Time now, bool up) {
    if (up) {
      if (down_) {
        const sim::Time gap = now - down_since_;
        downtime_us_ += gap;
        recover_s_.add(static_cast<double>(gap) / 1e6);
        ++reconnects_;
        down_ = false;
      }
      ever_up_ = true;
    } else if (ever_up_ && !down_) {
      down_ = true;
      down_since_ = now;
      ++losses_;
    }
  }

  /// True while an established tunnel is currently torn down.
  [[nodiscard]] bool gap_open() const { return ever_up_ && down_; }
  [[nodiscard]] std::uint64_t losses() const { return losses_; }
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
  [[nodiscard]] double downtime_s(sim::Time now) const {
    sim::Time total = downtime_us_;
    if (down_) total += now - down_since_;
    return static_cast<double>(total) / 1e6;
  }
  /// Recovery-time distribution over closed gaps.
  [[nodiscard]] const util::Summary& recover() const { return recover_s_; }

  std::uint64_t clear_packets = 0;  ///< maintained by the world's tap

 private:
  bool ever_up_ = false;
  bool down_ = false;
  sim::Time down_since_ = 0;
  sim::Time downtime_us_ = 0;
  std::uint64_t losses_ = 0;
  std::uint64_t reconnects_ = 0;
  util::Summary recover_s_;
};

class World {
 public:
  World() = default;
  virtual ~World() = default;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Scenario id, e.g. "corp" or "hotspot".
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Re-root every PRNG stream in this world at `seed`. Must be called
  /// before start()/run_episode(); the world must not have run yet.
  virtual void configure(std::uint64_t seed) = 0;

  /// Bring the testbed up (idempotent).
  virtual void start() = 0;

  /// Ask the world to record every radio frame into its Trace (pcap
  /// export). Must be called before start(); worlds without a radio may
  /// ignore it. Off by default — capture copies every frame.
  virtual void enable_frame_capture() {}

  /// Drive the simulation forward by `duration` of simulated time.
  virtual void run_for(sim::Time duration) = 0;

  /// Run the scenario's canonical experiment script — which phases
  /// (attack, VPN, workload, detection) is selected by episode knobs in
  /// the scenario's config. Calls start() itself.
  virtual void run_episode() = 0;

  /// Attach a registry detector (detect::make_detector name) wired to
  /// this world's channel plan, AP inventory and monitor position.
  /// Returns false if the world does not support it or the name is
  /// unknown. Call after start() (or let run_episode() do it from the
  /// scenario config).
  virtual bool attach_detector(std::string_view /*name*/) { return false; }
  /// Attach a registry attacker (attack::make_attacker name) configured
  /// against this world's network. Started by the episode script.
  virtual bool attach_attacker(std::string_view /*name*/) { return false; }

  [[nodiscard]] virtual sim::Simulator& simulator() = 0;
  [[nodiscard]] virtual sim::Trace& trace() = 0;

  /// Snapshot the episode's observations. Valid any time after start();
  /// normally read once run_episode() returns.
  [[nodiscard]] virtual Metrics collect_metrics() const = 0;
};

}  // namespace rogue::scenario
