#include "scenario/corp_world.hpp"

#include <stdexcept>

#include "crypto/aead.hpp"
#include "crypto/md5.hpp"
#include "util/assert.hpp"

namespace rogue::scenario {

namespace {
// Per-client 802.1X-style credentials (kEap mode). The rogue, as the
// "staff" insider, knows only its own.
const char* kVictimEapKey = "victim-personal-credential";
const char* kStaffEapKey = "staff-personal-credential";

// Stable MAC plan (locally administered).
const net::MacAddr kLegitBssid = net::MacAddr::from_id(0xAABBCCDD01);
const net::MacAddr kVictimMac = net::MacAddr::from_id(0xAABBCCDD77);
const net::MacAddr kStaffMac = net::MacAddr::from_id(0xAABBCCDD42);  // offline
const net::MacAddr kRogueBssidDistinct = net::MacAddr::from_id(0xEE66660001);
const net::MacAddr kCorpGwLanMac = net::MacAddr::from_id(0x10);
const net::MacAddr kCorpGwWanMac = net::MacAddr::from_id(0x11);
const net::MacAddr kWebMac = net::MacAddr::from_id(0x12);
const net::MacAddr kVpnMac = net::MacAddr::from_id(0x13);
}  // namespace

CorpWorld::CorpWorld(CorpConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      medium_(sim_, config_.medium),
      corp_lan_(sim_),
      internet_(sim_) {
  release_ = apps::make_release_blob(/*seed=*/0xFEED, config_.release_size);
  trojan_ = apps::make_release_blob(/*seed=*/0xBAD, config_.release_size);
}

net::MacAddr CorpWorld::legit_bssid() const { return kLegitBssid; }
net::MacAddr CorpWorld::victim_mac() const { return kVictimMac; }

std::string CorpWorld::release_md5() const {
  return crypto::md5_hex(release_);
}
std::string CorpWorld::trojan_md5() const { return crypto::md5_hex(trojan_); }

void CorpWorld::configure(std::uint64_t seed) {
  ROGUE_ASSERT_MSG(!started_, "configure() must precede start()");
  config_.seed = seed;
  sim_.reseed(seed);
}

void CorpWorld::start() {
  if (started_) return;
  started_ = true;
  if (capture_frames_) {
    trace_.enable_frame_capture(true);
    medium_.set_capture(&trace_);
  }
  build_wired();
  build_wireless();
}

void CorpWorld::run_capture_phase() {
  start();
  run_for(config_.settle_time);
  deploy_rogue();
  if (config_.deauth_forcing) start_deauth_forcing(config_.deauth_period);
  run_for(config_.capture_window);
}

detect::SeqNumMonitor& CorpWorld::enable_detection() {
  ROGUE_ASSERT_MSG(!monitor_, "detection already enabled");
  detect::SeqMonitorConfig cfg;
  cfg.channel = config_.legit_channel;
  monitor_ = std::make_unique<detect::SeqNumMonitor>(sim_, medium_, cfg);
  // Park the monitor between the victim and the legitimate AP, off-axis —
  // close enough to hear both the AP's real counter and the forgeries.
  monitor_->radio().set_position({config_.victim_to_legit_m / 2.0, 4.0});
  return *monitor_;
}

void CorpWorld::run_episode() {
  if (!config_.wids_detectors.empty() || !config_.wids_attacker.empty()) {
    run_wids_episode();
    return;
  }
  start();
  if (config_.enable_detection && !monitor_) enable_detection();
  if (config_.inject_faults) install_fault_plan();
  run_for(config_.settle_time);
  if (config_.deploy_rogue) {
    deploy_rogue();
    if (config_.deauth_forcing) start_deauth_forcing(config_.deauth_period);
    run_for(config_.capture_window);
  }
  if (config_.use_vpn) {
    connect_vpn([](bool) {});
    run_for(config_.vpn_window);
  }
  if (config_.do_download) {
    download([](const apps::DownloadOutcome&) {});
    run_for(config_.download_window);
  }
}

void CorpWorld::build_wired() {
  // Corp gateway: routes between the corp LAN and the "internet".
  corp_gw_ = std::make_unique<net::Host>(sim_, "corp-gw", config_.tcp);
  corp_gw_->add_wired("lan0", corp_lan_, kCorpGwLanMac);
  corp_gw_->add_wired("wan0", internet_, kCorpGwWanMac);
  corp_gw_->configure("lan0", addr_.corp_gw_lan, 24);
  corp_gw_->configure("wan0", addr_.corp_gw_wan, 24);
  corp_gw_->set_ip_forward(true);

  // Web server hosting the download site.
  web_ = std::make_unique<net::Host>(sim_, "web-server", config_.tcp);
  web_->add_wired("eth0", internet_, kWebMac);
  web_->configure("eth0", addr_.web_server, 24);
  web_->routes().add_default(addr_.corp_gw_wan, "eth0");
  web_http_ = std::make_unique<apps::HttpServer>(*web_, 80);
  apps::install_download_site(*web_http_, release_);

  // VPN endpoint on the trusted wired LAN (§5.2 requirement 3).
  vpn_host_ = std::make_unique<net::Host>(sim_, "vpn-endpoint", config_.tcp);
  vpn_host_->add_wired("eth0", corp_lan_, kVpnMac);
  vpn_host_->configure("eth0", addr_.vpn_endpoint, 24);
  vpn_host_->routes().add_default(addr_.corp_gw_lan, "eth0");
  vpn::EndpointConfig ep_cfg;
  ep_cfg.psk = config_.vpn_psk;
  ep_cfg.port = addr_.vpn_port;
  ep_cfg.replay_window = config_.vpn_replay_window;
  endpoint_ = std::make_unique<vpn::Endpoint>(*vpn_host_, ep_cfg);
  endpoint_->start();
}

namespace {
dot11::SecurityMode resolve_security(const CorpConfig& cfg) {
  if (cfg.security) return *cfg.security;
  return cfg.wep ? dot11::SecurityMode::kWep : dot11::SecurityMode::kOpen;
}
}  // namespace

void CorpWorld::build_wireless() {
  const dot11::SecurityMode security = resolve_security(config_);
  // Legitimate AP, bridged onto the corp LAN at L2.
  dot11::ApConfig ap_cfg;
  ap_cfg.ssid = "CORP";
  ap_cfg.bssid = kLegitBssid;
  ap_cfg.channel = config_.legit_channel;
  ap_cfg.security = security;
  ap_cfg.wep_key =
      security == dot11::SecurityMode::kWep ? config_.wep_key : util::Bytes{};
  ap_cfg.wpa_psk =
      security == dot11::SecurityMode::kWpaPsk ? config_.wpa_psk : util::Bytes{};
  if (security == dot11::SecurityMode::kEap) {
    ap_cfg.eap_client_keys = {{kVictimMac, util::to_bytes(kVictimEapKey)},
                              {kStaffMac, util::to_bytes(kStaffEapKey)}};
  }
  ap_cfg.iv_policy = config_.iv_policy;
  ap_cfg.auth_algorithm = config_.auth_algorithm;
  ap_cfg.mac_filtering = config_.mac_filtering;
  ap_cfg.allowed_macs = {kVictimMac, kStaffMac};
  legit_ap_ = std::make_unique<dot11::AccessPoint>(sim_, medium_, ap_cfg, &trace_);
  legit_ap_->radio().set_position({config_.victim_to_legit_m, 0.0});
  ap_bridge_ = std::make_unique<net::ApBridge>(*legit_ap_, corp_lan_, "legit-ap-uplink");
  legit_ap_->start();

  // Victim station + host.
  dot11::StationConfig sta_cfg;
  sta_cfg.mac = kVictimMac;
  sta_cfg.target_ssid = "CORP";
  sta_cfg.security = security;
  sta_cfg.wep_key =
      security == dot11::SecurityMode::kWep ? config_.wep_key : util::Bytes{};
  sta_cfg.wpa_psk = security == dot11::SecurityMode::kWpaPsk ? config_.wpa_psk
                    : security == dot11::SecurityMode::kEap
                        ? util::to_bytes(kVictimEapKey)
                        : util::Bytes{};
  sta_cfg.iv_policy = config_.iv_policy;
  sta_cfg.auth_algorithm = config_.auth_algorithm;
  sta_cfg.join_policy = config_.victim_join_policy;
  sta_cfg.scan_channels = {config_.legit_channel, config_.rogue_channel};
  victim_sta_ = std::make_unique<dot11::Station>(sim_, medium_, sta_cfg, &trace_);
  victim_sta_->radio().set_position({0.0, 0.0});

  victim_ = std::make_unique<net::Host>(sim_, "victim", config_.tcp);
  victim_->attach(std::make_unique<net::StationIf>("wlan0", *victim_sta_));
  victim_->configure("wlan0", addr_.victim, 24);
  victim_->routes().add_default(addr_.corp_gw_lan, "wlan0");

  // Roaming hygiene: flush neighbour state when the association changes
  // (models the reachability probing a real stack does after a move).
  // Also the capture observer: the first association that lands on the
  // rogue is the paper's "victim captured" moment.
  victim_sta_->set_event_handler(
      [this](std::string_view event, const dot11::BssInfo&) {
        if (event != "assoc") return;
        victim_->arp("wlan0").flush();
        if (!capture_time_ && victim_on_rogue()) capture_time_ = sim_.now();
      });

  victim_sta_->start();
}

attack::RogueGateway& CorpWorld::deploy_rogue() {
  ROGUE_ASSERT_MSG(started_, "start() the world before deploying the rogue");
  ROGUE_ASSERT_MSG(!rogue_, "rogue already deployed");

  const dot11::SecurityMode security = resolve_security(config_);
  attack::RogueGatewayConfig cfg;
  cfg.ssid = "CORP";
  cfg.security = security;
  cfg.use_wep = security == dot11::SecurityMode::kWep;
  cfg.wep_key =
      security == dot11::SecurityMode::kWep ? config_.wep_key : util::Bytes{};
  cfg.wpa_psk = security == dot11::SecurityMode::kWpaPsk ? config_.wpa_psk
                : security == dot11::SecurityMode::kEap
                    ? util::to_bytes(kStaffEapKey)  // its own credential only
                    : util::Bytes{};
  cfg.auth_algorithm = config_.auth_algorithm;
  // "created by a valid user, using the authentication information he was
  // given" / or an outsider with a sniffed MAC: either way the uplink MAC
  // passes the ACL.
  cfg.client_mac = kStaffMac;
  cfg.rogue_bssid = config_.rogue_clones_bssid ? kLegitBssid : kRogueBssidDistinct;
  cfg.rogue_channel = config_.rogue_channel;
  cfg.uplink_scan_channels = {config_.legit_channel};
  cfg.wlan_ip = addr_.rogue_wlan;
  cfg.eth_ip = addr_.rogue_eth;
  cfg.upstream_gateway = addr_.corp_gw_lan;
  cfg.target_ip = addr_.web_server;
  cfg.target_port = 80;
  cfg.netsed_mode = config_.netsed_mode;
  cfg.trojan_blob = trojan_;

  // netsed tcp 10101 Target-IP 80 s/href=file.tgz/href=http:...%2f...
  //                               s/REALMD5SUM/FAKEMD5SUM
  cfg.tcp = config_.tcp;
  const std::string fake_link =
      "http://" + addr_.rogue_wlan.to_string() + "/file.tgz";
  if (config_.rewrite_link) {
    cfg.netsed_rules.push_back(
        apps::NetsedRule::from_strings("href=file.tgz", "href=" + fake_link));
  }
  if (config_.rewrite_md5) {
    cfg.netsed_rules.push_back(
        apps::NetsedRule::from_strings(release_md5(), trojan_md5()));
  }

  rogue_ = std::make_unique<attack::RogueGateway>(sim_, medium_, cfg, &trace_);
  rogue_->uplink().radio().set_position({config_.victim_to_rogue_m, 2.0});
  rogue_->ap().radio().set_position({config_.victim_to_rogue_m, 0.0});
  rogue_->start();
  rogue_deploy_time_ = sim_.now();
  return *rogue_;
}

void CorpWorld::install_fault_plan() {
  ROGUE_ASSERT_MSG(started_, "start() the world before installing faults");
  if (injector_) return;
  faults::PlanConfig cfg = config_.faults;
  if (cfg.horizon == 0) {
    // Default window: the episode body after settle, so faults land while
    // the phases the metrics care about are running.
    cfg.start = sim_.now() + config_.settle_time;
    sim::Time horizon = cfg.start;
    if (config_.deploy_rogue) horizon += config_.capture_window;
    if (config_.use_vpn) horizon += config_.vpn_window;
    if (config_.do_download) horizon += config_.download_window;
    if (horizon <= cfg.start) horizon = cfg.start + sim::kSecond;
    cfg.horizon = horizon;
  }
  util::Prng rng = sim_.derive_rng("faults.plan");
  injector_ = std::make_unique<faults::Injector>(
      sim_, static_cast<faults::FaultTarget&>(*this));
  injector_->install(faults::Plan::generate(rng, cfg));

  // Ambient victim traffic for the episode: a tiny periodic heartbeat that
  // rides the tunnel while it is up and leaks onto the radio during a
  // fail-open gap — the packets Metrics::clear_packets counts.
  start_chatter();
}

void CorpWorld::start_chatter() {
  if (config_.chatter_period == 0 || chatter_sock_) return;
  chatter_sock_ = victim_->udp_open(0);
  sim_.every(config_.chatter_period, [this] {
    static const util::Bytes kBeacon = {'h', 'b'};
    if (chatter_sock_) chatter_sock_->send_to(addr_.web_server, 9, kBeacon);
  });
}

void CorpWorld::fault_ap(bool down) {
  if (down) legit_ap_->stop();
  else legit_ap_->start();
}

void CorpWorld::fault_endpoint(bool down) {
  if (down) endpoint_->stop();
  else endpoint_->start();
}

void CorpWorld::fault_channel(double extra_loss) {
  medium_.set_loss_override(extra_loss);
}

void CorpWorld::fault_link(bool down) {
  if (net::NetIf* eth = vpn_host_->interface("eth0")) eth->set_admin_up(!down);
}

void CorpWorld::fault_reorder(double probability) {
  medium_.set_reorder(probability);
}

void CorpWorld::fault_duplicate(double probability) {
  medium_.set_duplicate(probability);
}

void CorpWorld::fault_jitter(double max_ms) {
  medium_.set_jitter_ms(max_ms);
}

void CorpWorld::fault_deauth_storm(bool active) {
  if (active) {
    if (!chaos_deauth_) {
      chaos_deauth_ = std::make_unique<attack::DeauthAttacker>(
          sim_, medium_, config_.legit_channel, kLegitBssid, kVictimMac);
      chaos_deauth_->radio().set_position({config_.victim_to_rogue_m, 1.0});
    }
    chaos_deauth_->start(config_.deauth_period);
  } else if (chaos_deauth_) {
    chaos_deauth_->stop();
  }
}

attack::DeauthAttacker& CorpWorld::start_deauth_forcing(sim::Time period) {
  ROGUE_ASSERT_MSG(!deauth_, "deauth forcing already running");
  deauth_ = std::make_unique<attack::DeauthAttacker>(
      sim_, medium_, config_.legit_channel, kLegitBssid, kVictimMac);
  deauth_->radio().set_position({config_.victim_to_rogue_m, 0.0});
  deauth_->start(period);
  return *deauth_;
}

detect::DetectorEnv CorpWorld::detector_env() {
  const dot11::SecurityMode security = resolve_security(config_);
  detect::DetectorEnv env;
  env.sim = &sim_;
  env.medium = &medium_;
  env.trace = &trace_;
  // The World's channel plan — the corporate channel plus wherever a
  // rogue could park — not a hard-coded channel 1.
  env.channels = {config_.legit_channel};
  if (config_.rogue_channel != config_.legit_channel) {
    env.channels.push_back(config_.rogue_channel);
  }
  // Between the victim and the legitimate AP, off-axis: hears both the
  // AP's real counter and any forgeries.
  env.position = {config_.victim_to_legit_m / 2.0, 4.0};
  detect::TrustedAp ap;
  ap.ssid = "CORP";
  ap.bssid = kLegitBssid;
  ap.channel = config_.legit_channel;
  ap.beacon_interval_tu = 100;
  ap.capability = dot11::kCapEss;
  if (security != dot11::SecurityMode::kOpen) ap.capability |= dot11::kCapPrivacy;
  env.inventory = {ap};
  env.wired = &corp_lan_;
  env.known_wired_macs = {kCorpGwLanMac, kVpnMac, kVictimMac, kStaffMac};
  return env;
}

attack::AttackerEnv CorpWorld::attacker_env() {
  const dot11::SecurityMode security = resolve_security(config_);
  attack::AttackerEnv env;
  env.sim = &sim_;
  env.medium = &medium_;
  env.trace = &trace_;
  env.ssid = "CORP";
  env.legit_bssid = kLegitBssid;
  env.victim_mac = kVictimMac;
  env.legit_channel = config_.legit_channel;
  env.rogue_channel = config_.rogue_channel;
  env.beacon_interval_tu = 100;
  env.capability = dot11::kCapEss;
  if (security != dot11::SecurityMode::kOpen) env.capability |= dot11::kCapPrivacy;
  env.position = {config_.victim_to_rogue_m, 0.0};
  env.deauth_period = config_.deauth_period;
  // Named stream off the replica's root seed: every behavioural jitter
  // the attacker draws is a pure function of (variant, seed).
  env.rng = sim_.derive_rng("wids.attacker");
  env.deploy_rogue = [this] {
    if (!rogue_) deploy_rogue();
  };
  env.stop_rogue = [this] {
    if (rogue_) rogue_->stop();
  };
  return env;
}

bool CorpWorld::attach_detector(std::string_view name) {
  ROGUE_ASSERT_MSG(started_, "start() the world before attaching detectors");
  auto detector = detect::make_detector(name);
  if (!detector) return false;
  detector->attach(detector_env());
  wids_enabled_ = true;
  detectors_.push_back(std::move(detector));
  return true;
}

bool CorpWorld::attach_attacker(std::string_view name) {
  ROGUE_ASSERT_MSG(started_, "start() the world before attaching attackers");
  ROGUE_ASSERT_MSG(!attacker_, "attacker already attached");
  wids_enabled_ = true;
  if (name == "none") return true;  // control row: nothing ever transmits
  auto attacker = attack::make_attacker(name);
  if (!attacker) return false;
  attacker->configure(attacker_env());
  attacker_ = std::move(attacker);
  return true;
}

void CorpWorld::run_wids_episode() {
  start();
  // Throw (not assert) on unknown registry names: a sweep replica with a
  // bad roster entry should land in the report's failures array, not
  // abort the whole worker pool.
  for (const std::string& name : config_.wids_detectors) {
    if (!attach_detector(name)) {
      throw std::runtime_error("unknown wids detector: " + name);
    }
  }
  if (!config_.wids_attacker.empty() &&
      !attach_attacker(config_.wids_attacker)) {
    throw std::runtime_error("unknown wids attacker: " + config_.wids_attacker);
  }
  // Ambient victim traffic: keeps the AP's sequence counter moving so
  // mimicry has something to shadow, and gives the episode data frames.
  start_chatter();
  run_for(config_.settle_time + config_.wids_baseline_window);
  if (attacker_) {
    wids_attack_start_ = sim_.now();
    attacker_->start();
  }
  run_for(config_.wids_attack_window);
  if (attacker_) attacker_->stop();
}

void CorpWorld::connect_vpn(std::function<void(bool)> done) {
  ROGUE_ASSERT_MSG(!victim_tunnel_, "VPN already connected");
  vpn::ClientConfig cfg;
  cfg.psk = config_.vpn_psk;
  cfg.endpoint_ip = addr_.vpn_endpoint;
  cfg.endpoint_port = addr_.vpn_port;
  cfg.transport = config_.vpn_transport;
  cfg.auto_reconnect = config_.vpn_auto_reconnect;
  cfg.fail_open = config_.vpn_fail_open;
  cfg.replay_window = config_.vpn_replay_window;
  cfg.rekey_after_records = config_.vpn_rekey_records;
  cfg.rekey_after_time = config_.vpn_rekey_interval;
  victim_tunnel_ = std::make_unique<vpn::ClientTunnel>(*victim_, cfg);
  victim_tunnel_->set_session_handler([this](bool up) {
    health_.on_session(sim_.now(), up);
    if (up) {
      vpn_ok_ = true;
      if (!vpn_up_time_) vpn_up_time_ = sim_.now();
    }
  });
  // Fail-open exposure meter: victim packets that leave on a physical
  // interface (not tun0) toward anything but the endpoint itself, while an
  // established tunnel is torn down, travelled in the clear.
  victim_->set_tap([this](std::string_view point, const net::Ipv4Packet& packet,
                          std::string_view ifname) {
    if (point != "tx" || ifname == "tun0") return;
    if (packet.dst == addr_.vpn_endpoint) return;
    if (health_.gap_open()) ++health_.clear_packets;
  });
  vpn_attempted_ = true;
  victim_tunnel_->start([this, done = std::move(done)](bool ok) {
    vpn_ok_ = ok;
    if (ok && !vpn_up_time_) vpn_up_time_ = sim_.now();
    if (done) done(ok);
  });
}

void CorpWorld::download(std::function<void(const apps::DownloadOutcome&)> done) {
  apps::run_download(*victim_, addr_.web_server, 80,
                     [this, done = std::move(done)](const apps::DownloadOutcome& o) {
                       outcome_ = o;
                       if (done) done(o);
                     });
}

bool CorpWorld::victim_on_rogue() const {
  if (!victim_sta_->associated()) return false;
  if (rogue_ == nullptr) return false;
  // With a cloned BSSID the channel is the distinguishing feature.
  return victim_sta_->bss().channel == rogue_->config().rogue_channel;
}

namespace {
constexpr double kUsPerSecond = 1e6;
/// Wire framing added to each VPN data record: 8-byte sequence number plus
/// the AEAD tag (the inner IP bytes themselves are what the counters hold).
constexpr double kVpnRecordFraming = 8.0 + crypto::kAeadTagLen;
}  // namespace

Metrics CorpWorld::collect_metrics() const {
  Metrics m;
  m.sim_time_s = static_cast<double>(sim_.now()) / kUsPerSecond;
  m.events_fired = sim_.events_fired();
  m.trace_records = trace_.size();
  m.trace_warnings = trace_.count_at_least(sim::Severity::kWarn);
  m.stats = sim_.stats_snapshot();

  m.victim_captured = capture_time_.has_value();
  if (capture_time_) {
    const sim::Time base =
        rogue_deploy_time_ ? *rogue_deploy_time_ : sim::Time{0};
    m.time_to_capture_s =
        static_cast<double>(*capture_time_ - base) / kUsPerSecond;
  }

  if (outcome_) {
    m.download_completed = outcome_->file_fetched;
    m.md5_verified = outcome_->md5_verified;
    m.trojaned = outcome_->file_fetched && outcome_->fetched_md5_hex == trojan_md5();
    m.victim_deceived = m.trojaned && m.md5_verified;
  }

  if (monitor_) {
    m.seq_anomalies = monitor_->alerts().size();
    m.rogue_detected = !monitor_->suspects().empty();
    if (rogue_deploy_time_) {
      for (const detect::Alert& alert : monitor_->alerts()) {
        if (alert.time < *rogue_deploy_time_) continue;
        m.detection_latency_s =
            static_cast<double>(alert.time - *rogue_deploy_time_) / kUsPerSecond;
        break;
      }
    }
  }

  if (wids_enabled_) {
    m.wids_enabled = true;
    if (wids_attack_start_) {
      m.wids_attack_start_s =
          static_cast<double>(*wids_attack_start_) / kUsPerSecond;
    }
    std::optional<sim::Time> first_true;
    for (const auto& detector : detectors_) {
      for (const detect::Alert& alert : detector->alerts()) {
        ++m.wids_alerts;
        const bool false_alert =
            !wids_attack_start_ || alert.time < *wids_attack_start_;
        if (false_alert) {
          ++m.wids_false_alerts;  // fired with no attack underway
        } else if (!first_true || alert.time < *first_true) {
          first_true = alert.time;
        }
        m.wids_alert_timeline.push_back(Metrics::WidsAlert{
            static_cast<double>(alert.time) / kUsPerSecond,
            std::string(detector->name()),
            std::string(detect::to_string(alert.kind)), false_alert});
      }
    }
    if (first_true) {
      m.wids_time_to_detect_s =
          static_cast<double>(*first_true - *wids_attack_start_) / kUsPerSecond;
      m.rogue_detected = true;
    }
  }

  if (injector_) m.faults_injected = injector_->injected();

  if (victim_tunnel_) {
    m.vpn_established = vpn_ok_ && victim_tunnel_->established();
    m.vpn_tunnel_losses = health_.losses();
    m.vpn_reconnects = health_.reconnects();
    m.vpn_downtime_s = health_.downtime_s(sim_.now());
    if (health_.recover().count() > 0) {
      m.vpn_recover_p50_s = health_.recover().percentile(0.50);
      m.vpn_recover_p95_s = health_.recover().percentile(0.95);
    }
    m.clear_packets = health_.clear_packets;
    const vpn::ClientCounters& c = victim_tunnel_->counters();
    m.vpn_records_out = c.records_out;
    m.vpn_records_in = c.records_in;
    if (vpn_up_time_ && sim_.now() > *vpn_up_time_) {
      const double active_s =
          static_cast<double>(sim_.now() - *vpn_up_time_) / kUsPerSecond;
      m.vpn_goodput_kbps =
          static_cast<double>(c.bytes_decrypted) * 8.0 / 1000.0 / active_s;
    }
    const double payload =
        static_cast<double>(c.bytes_sealed + c.bytes_decrypted);
    if (payload > 0.0) {
      const double wire =
          payload + kVpnRecordFraming *
                        static_cast<double>(c.records_out + c.records_in);
      m.vpn_overhead_ratio = wire / payload;
    }
    // Transport-resilience block (EXP-T1): only the datagram transport
    // exercises the anti-replay / rekey / roam machinery, and gating on it
    // keeps legacy TCP-variant reports byte-identical.
    if (config_.vpn_transport == vpn::Transport::kUdp) {
      const vpn::EndpointCounters& e = endpoint_->counters();
      m.transport_enabled = true;
      m.vpn_replay_drops = c.records_replayed + e.records_replayed;
      m.vpn_auth_fail_drops = c.records_auth_fail + e.records_auth_fail;
      m.vpn_stale_epoch_drops = c.records_stale_epoch + e.records_stale_epoch;
      m.vpn_rekeys = c.rekeys;
      m.vpn_roams = e.roams;
      m.vpn_sessions_reaped = e.sessions_reaped;
    }
  }
  return m;
}

}  // namespace rogue::scenario
