// Deterministic causal tracer + flight recorder. Every injected frame gets
// a seed-derived 64-bit trace id threaded through the datapath (phy
// delivery → dot11 → net → vpn → detect → faults); components emit typed
// span/instant records into a bounded ring buffer that overwrites oldest
// ("flight recorder"). Recording is branch-cheap when disabled and heap-
// free when enabled: names and actors are interned once at construction
// (interning works while disabled, like StatsRegistry handles), and a
// record is a fixed-size POD store into a preallocated ring.
//
// Determinism: trace ids derive from (root seed, per-simulation frame
// counter) via splitmix64, and record timestamps come from the simulator
// clock the tracer is bound to — so the dump is a pure function of
// (variant, seed) and joins the byte-identical sweep report. Host time
// never enters; the profiler's wall-clock track is exported separately
// and clearly marked nondeterministic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/json.hpp"

namespace rogue::obs {

/// Which subsystem emitted a record; exported as the Chrome "cat" field.
enum class TraceLayer : std::uint8_t {
  kSim = 0,
  kPhy,
  kDot11,
  kNet,
  kVpn,
  kDetect,
  kFaults,
};

[[nodiscard]] std::string_view to_string(TraceLayer layer);

enum class TracePhase : std::uint8_t {
  kInstant = 0,  ///< point event ("i")
  kBegin,        ///< span open ("B")
  kEnd,          ///< span close ("E")
};

/// Interned handles. Default-constructed handles index the reserved
/// "(unnamed)" entry, so an un-wired component records harmlessly.
struct TraceNameId {
  std::uint32_t index = 0;
};
struct TraceActorId {
  std::uint32_t index = 0;
};

/// One flight-recorder record. POD, 40 bytes, no pointers — the ring is a
/// flat preallocated vector and a record is a single struct store.
struct TraceEvent {
  std::uint64_t trace_id = 0;  ///< causal chain id (0 = outside any chain)
  std::uint64_t time_us = 0;   ///< simulated microseconds
  std::uint64_t arg = 0;       ///< free-form verdict/size/kind payload
  std::uint32_t name = 0;      ///< TraceNameId::index
  std::uint32_t actor = 0;     ///< TraceActorId::index (Chrome tid / track)
  TraceLayer layer = TraceLayer::kSim;
  TracePhase phase = TracePhase::kInstant;
};

/// Detached copy of a tracer's state: ring contents in eviction order
/// (oldest first) plus the intern tables needed to render them. Safe to
/// keep after the simulation is gone; this is what RunMetrics carries.
struct TracerDump {
  std::vector<TraceEvent> events;
  std::vector<std::string> names;
  std::vector<std::string> actors;
  std::uint64_t dropped = 0;   ///< records overwritten by ring wraparound
  std::uint64_t recorded = 0;  ///< total records ever written

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::string_view name_of(const TraceEvent& e) const {
    return names[e.name];
  }
  [[nodiscard]] std::string_view actor_of(const TraceEvent& e) const {
    return actors[e.actor];
  }
};

class Tracer {
 public:
  Tracer() {
    names_.emplace_back("(unnamed)");
    actors_.emplace_back("(unattributed)");
  }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Intern a record name / actor (track) label; idempotent, works while
  /// disabled so components intern in their constructors.
  [[nodiscard]] TraceNameId name(std::string_view label);
  [[nodiscard]] TraceActorId actor(std::string_view label);

  /// Root seed for trace-id derivation; resets the frame counter. The
  /// owning Simulator calls this from its constructor and reseed().
  void set_seed(std::uint64_t seed) {
    seed_ = seed;
    frames_ = 0;
  }

  /// Bind the simulated clock records are stamped from (the owning
  /// Simulator points this at its now_). Unbound tracers stamp 0.
  void bind_clock(const std::uint64_t* now_us) { clock_ = now_us; }

  /// Allocate the ring (`ring_events` records, >= 1) and start recording.
  void enable(std::size_t ring_events);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::size_t ring_capacity() const { return ring_.size(); }

  /// Derive the next seed-deterministic trace id (never 0). Returns 0 when
  /// disabled so untraced frames carry the "no chain" sentinel for free.
  [[nodiscard]] std::uint64_t new_trace_id();

  /// The trace id of the causal context currently executing (0 = none).
  /// Set via IdScope around frame-delivery handlers, so any frame a
  /// handler transmits in response inherits the inbound frame's chain.
  [[nodiscard]] std::uint64_t current() const { return current_; }

  /// RAII causal context: delivery paths wrap each receiver's handler so
  /// transmit() can inherit the active chain. Safe (two stores) while
  /// disabled — the id threaded through is 0 then.
  class IdScope {
   public:
    IdScope(Tracer& tracer, std::uint64_t id)
        : tracer_(tracer), previous_(tracer.current_) {
      tracer.current_ = id;
    }
    ~IdScope() { tracer_.current_ = previous_; }

    IdScope(const IdScope&) = delete;
    IdScope& operator=(const IdScope&) = delete;

   private:
    Tracer& tracer_;
    std::uint64_t previous_;
  };

  // ---- hot path -----------------------------------------------------------
  // A single predictable branch when disabled; a POD ring store otherwise.
  // `trace_id` 0 means "attribute to the current causal context".

  void instant(TraceNameId name, TraceActorId actor, TraceLayer layer,
               std::uint64_t trace_id = 0, std::uint64_t arg = 0) {
    if (!enabled_) return;
    record(TracePhase::kInstant, trace_id, name, actor, layer, arg);
  }
  void begin(TraceNameId name, TraceActorId actor, TraceLayer layer,
             std::uint64_t trace_id = 0, std::uint64_t arg = 0) {
    if (!enabled_) return;
    record(TracePhase::kBegin, trace_id, name, actor, layer, arg);
  }
  void end(TraceNameId name, TraceActorId actor, TraceLayer layer,
           std::uint64_t trace_id = 0, std::uint64_t arg = 0) {
    if (!enabled_) return;
    record(TracePhase::kEnd, trace_id, name, actor, layer, arg);
  }

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

  /// Ring contents in eviction order plus intern tables.
  [[nodiscard]] TracerDump dump() const;

  /// Drop ring contents and counters (intern tables and seed survive).
  void reset();

 private:
  void record(TracePhase phase, std::uint64_t trace_id, TraceNameId name,
              TraceActorId actor, TraceLayer layer, std::uint64_t arg) {
    TraceEvent& e = ring_[head_];
    e.trace_id = trace_id != 0 ? trace_id : current_;
    e.time_us = clock_ != nullptr ? *clock_ : 0;
    e.arg = arg;
    e.name = name.index;
    e.actor = actor.index;
    e.layer = layer;
    e.phase = phase;
    if (++head_ == ring_.size()) head_ = 0;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
    ++recorded_;
  }

  bool enabled_ = false;
  std::uint64_t seed_ = 1;
  std::uint64_t frames_ = 0;   ///< trace-id allocation counter
  std::uint64_t current_ = 0;  ///< active causal context (IdScope)
  const std::uint64_t* clock_ = nullptr;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   ///< next write position
  std::size_t count_ = 0;  ///< live records (<= ring_.size())
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
  std::vector<std::string> names_;
  std::vector<std::string> actors_;
  std::unordered_map<std::string, std::uint32_t> name_index_;
  std::unordered_map<std::string, std::uint32_t> actor_index_;
};

// ---- reconstruction & export ----------------------------------------------

/// One node of the reconstructed span forest. Spans nest per actor (a
/// begin inside another open span of the same actor becomes its child);
/// instants attach to the innermost open span of their actor.
struct Span {
  std::uint32_t name = 0;   ///< TracerDump::names index
  std::uint32_t actor = 0;  ///< TracerDump::actors index
  std::uint64_t trace_id = 0;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  bool closed = false;  ///< false: ring evicted or never saw the end
  int parent = -1;      ///< index into the returned vector; -1 = root
  std::vector<std::size_t> children;  ///< span indices, chronological
  std::vector<std::size_t> instants;  ///< dump.events indices, chronological
};

/// Rebuild the span forest from a dump (events are already in time order).
[[nodiscard]] std::vector<Span> build_spans(const TracerDump& dump);

/// Every record on one causal chain, in time order — e.g. a 4-step
/// handshake's M1..M4 transmissions and verdicts, or attack frame →
/// detector observation → alert.
[[nodiscard]] std::vector<TraceEvent> causal_chain(const TracerDump& dump,
                                                   std::uint64_t trace_id);

/// Append one replica's records to a Chrome trace-event array (`events`
/// must be a JSON array): process/thread metadata first, then "B"/"E"/"i"
/// rows with sim-time µs timestamps, pid = replica, tid = actor.
/// Deterministic: pure function of the dump.
void append_chrome_trace(util::Json& events, const TracerDump& dump,
                         std::uint64_t pid, std::string_view process_name);

/// Flight-recorder tail as JSON rows ({t_us, layer, actor, name, phase,
/// trace, arg}) — what a failed replica embeds in the failures array.
[[nodiscard]] util::Json flight_recorder_json(const TracerDump& dump);

}  // namespace rogue::obs
