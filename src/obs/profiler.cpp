#include "obs/profiler.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace rogue::obs {

Profiler::Profiler() {
  // Index 0 is a scrap scope so default-constructed ScopeIds stay inert.
  names_.emplace_back("(unnamed)");
  tallies_.emplace_back();
  stack_.reserve(32);
}

Profiler::ScopeId Profiler::intern(std::string_view name) {
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return ScopeId{it->second};
  const std::uint32_t index = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  tallies_.emplace_back();
  ids_.emplace(std::string(name), index);
  return ScopeId{index};
}

void Profiler::reset() {
  ROGUE_ASSERT_MSG(stack_.empty(), "reset() with open scopes");
  for (Tally& t : tallies_) t = Tally{};
}

void Profiler::push(ScopeId id) {
  stack_.push_back(Frame{id.index, Clock::now(), 0});
  Tally& t = tallies_[id.index];
  ++t.calls;
  ++t.active;
}

void Profiler::pop() {
  Frame frame = stack_.back();
  stack_.pop_back();
  const std::uint64_t elapsed = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           frame.start)
          .count());
  Tally& t = tallies_[frame.id];
  t.self_ns += elapsed >= frame.child_ns ? elapsed - frame.child_ns : 0;
  // A recursive re-entry must not double-count its enclosing entry.
  if (t.active == 1) t.total_ns += elapsed;
  --t.active;
  if (!stack_.empty()) stack_.back().child_ns += elapsed;
}

Profiler::Report Profiler::report() const {
  Report out;
  for (std::size_t i = 1; i < tallies_.size(); ++i) {
    const Tally& t = tallies_[i];
    if (t.calls == 0) continue;
    out.rows.push_back(Row{names_[i], t.calls, t.total_ns, t.self_ns});
  }
  std::sort(out.rows.begin(), out.rows.end(), [](const Row& a, const Row& b) {
    if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
    return a.name < b.name;
  });
  return out;
}

std::string Profiler::Report::table() const {
  std::uint64_t self_sum = 0;
  for (const Row& r : rows) self_sum += r.self_ns;
  util::Table t({"scope", "calls", "total ms", "self ms", "self %"});
  for (const Row& r : rows) {
    const double share = self_sum > 0
                             ? static_cast<double>(r.self_ns) /
                                   static_cast<double>(self_sum)
                             : 0.0;
    t.add_row({r.name, std::to_string(r.calls),
               util::fmt_double(static_cast<double>(r.total_ns) / 1e6, 3),
               util::fmt_double(static_cast<double>(r.self_ns) / 1e6, 3),
               util::fmt_percent(share)});
  }
  return t.to_string();
}

util::Json Profiler::Report::to_json() const {
  util::Json arr = util::Json::array();
  for (const Row& r : rows) {
    util::Json j = util::Json::object();
    j.set("scope", r.name);
    j.set("calls", r.calls);
    j.set("total_ms", static_cast<double>(r.total_ns) / 1e6);
    j.set("self_ms", static_cast<double>(r.self_ns) / 1e6);
    arr.push_back(std::move(j));
  }
  return arr;
}

}  // namespace rogue::obs
