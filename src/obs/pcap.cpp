#include "obs/pcap.hpp"

#include <cstdio>

namespace rogue::obs {

namespace {
constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // standard (non-nanosecond) pcap

void put_u32le(util::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u16le(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

[[nodiscard]] std::uint32_t get_u32le(util::ByteView in, std::size_t off) {
  return static_cast<std::uint32_t>(in[off]) |
         (static_cast<std::uint32_t>(in[off + 1]) << 8) |
         (static_cast<std::uint32_t>(in[off + 2]) << 16) |
         (static_cast<std::uint32_t>(in[off + 3]) << 24);
}
}  // namespace

PcapWriter::PcapWriter(std::uint32_t link_type) {
  // Global header: magic, version 2.4, tz 0, sigfigs 0, snaplen, linktype.
  put_u32le(buffer_, kMagic);
  put_u16le(buffer_, 2);
  put_u16le(buffer_, 4);
  put_u32le(buffer_, 0);
  put_u32le(buffer_, 0);
  put_u32le(buffer_, 65535);
  put_u32le(buffer_, link_type);
}

void PcapWriter::add_frame(std::uint64_t timestamp_us, util::ByteView frame) {
  put_u32le(buffer_, static_cast<std::uint32_t>(timestamp_us / 1'000'000));
  put_u32le(buffer_, static_cast<std::uint32_t>(timestamp_us % 1'000'000));
  put_u32le(buffer_, static_cast<std::uint32_t>(frame.size()));
  put_u32le(buffer_, static_cast<std::uint32_t>(frame.size()));
  util::append(buffer_, frame);
  ++frames_;
}

bool PcapWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  return written == buffer_.size();
}

std::optional<PcapFile> pcap_parse(util::ByteView data) {
  if (data.size() < 24) return std::nullopt;
  if (get_u32le(data, 0) != kMagic) return std::nullopt;
  PcapFile out;
  out.link_type = get_u32le(data, 20);

  std::size_t pos = 24;
  while (pos + 16 <= data.size()) {
    const std::uint32_t sec = get_u32le(data, pos);
    const std::uint32_t usec = get_u32le(data, pos + 4);
    const std::uint32_t caplen = get_u32le(data, pos + 8);
    pos += 16;
    if (pos + caplen > data.size()) return std::nullopt;  // truncated record
    PcapRecord rec;
    rec.timestamp_us = static_cast<std::uint64_t>(sec) * 1'000'000 + usec;
    const util::ByteView body = data.subspan(pos, caplen);
    rec.frame.assign(body.begin(), body.end());
    out.records.push_back(std::move(rec));
    pos += caplen;
  }
  if (pos != data.size()) return std::nullopt;
  return out;
}

}  // namespace rogue::obs
