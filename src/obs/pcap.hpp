// pcap capture writer: serializes captured frames into the classic libpcap
// file format (LINKTYPE_IEEE802_11 = 105), so simulated captures open in
// Wireshark/tcpdump exactly like a real kismet/airodump dump — closing the
// loop with the paper's tcpdump/ethereal methodology (§4, Figs. 1–2).
// Timestamps are simulated microseconds (sim::Time), split into the
// format's sec/usec fields.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace rogue::obs {

/// In-memory pcap builder (write_file dumps it to disk at the end — the
/// simulation itself stays free of filesystem side effects).
class PcapWriter {
 public:
  /// LINKTYPE_IEEE802_11; use kLinkTypeEthernet for wired captures.
  static constexpr std::uint32_t kLinkTypeIeee80211 = 105;
  static constexpr std::uint32_t kLinkTypeEthernet = 1;

  explicit PcapWriter(std::uint32_t link_type = kLinkTypeIeee80211);

  /// Append one frame with its simulation timestamp (µs precision).
  void add_frame(std::uint64_t timestamp_us, util::ByteView frame);

  [[nodiscard]] std::size_t frames() const { return frames_; }
  /// The complete file image (global header + records).
  [[nodiscard]] const util::Bytes& data() const { return buffer_; }

  /// Write to disk; returns false on I/O error.
  bool write_file(const std::string& path) const;

 private:
  util::Bytes buffer_;
  std::size_t frames_ = 0;
};

/// Parse-back support (for tests and offline analysis tools).
struct PcapRecord {
  std::uint64_t timestamp_us = 0;
  util::Bytes frame;
};

struct PcapFile {
  std::uint32_t link_type = 0;
  std::vector<PcapRecord> records;
};

/// Parse a pcap image; nullopt if the magic/headers are malformed.
[[nodiscard]] std::optional<PcapFile> pcap_parse(util::ByteView data);

}  // namespace rogue::obs
