#include "obs/tracer.hpp"

#include <cstdio>

#include "util/prng.hpp"

namespace rogue::obs {
namespace {

std::uint32_t intern_label(std::string_view label,
                           std::vector<std::string>& table,
                           std::unordered_map<std::string, std::uint32_t>& index) {
  const auto it = index.find(std::string(label));
  if (it != index.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(table.size());
  table.emplace_back(label);
  index.emplace(table.back(), id);
  return id;
}

std::string hex_id(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

std::string_view phase_letter(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return "B";
    case TracePhase::kEnd:
      return "E";
    case TracePhase::kInstant:
      break;
  }
  return "i";
}

}  // namespace

std::string_view to_string(TraceLayer layer) {
  switch (layer) {
    case TraceLayer::kSim:
      return "sim";
    case TraceLayer::kPhy:
      return "phy";
    case TraceLayer::kDot11:
      return "dot11";
    case TraceLayer::kNet:
      return "net";
    case TraceLayer::kVpn:
      return "vpn";
    case TraceLayer::kDetect:
      return "detect";
    case TraceLayer::kFaults:
      return "faults";
  }
  return "?";
}

TraceNameId Tracer::name(std::string_view label) {
  return TraceNameId{intern_label(label, names_, name_index_)};
}

TraceActorId Tracer::actor(std::string_view label) {
  return TraceActorId{intern_label(label, actors_, actor_index_)};
}

void Tracer::enable(std::size_t ring_events) {
  if (ring_events == 0) ring_events = 1;
  ring_.assign(ring_events, TraceEvent{});
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  recorded_ = 0;
  enabled_ = true;
}

std::uint64_t Tracer::new_trace_id() {
  if (!enabled_) return 0;
  // splitmix64 over (root seed, frame counter): ids are a pure function of
  // the seed and the global frame-injection order, both deterministic.
  std::uint64_t state = seed_ ^ (0x9E3779B97F4A7C15ULL * ++frames_);
  const std::uint64_t id = util::splitmix64(state);
  return id != 0 ? id : 1;
}

TracerDump Tracer::dump() const {
  TracerDump out;
  out.events.reserve(count_);
  const std::size_t cap = ring_.size();
  if (cap != 0) {
    // head_ is the next write position; the oldest live record sits
    // count_ slots behind it.
    std::size_t pos = (head_ + cap - count_) % cap;
    for (std::size_t i = 0; i < count_; ++i) {
      out.events.push_back(ring_[pos]);
      if (++pos == cap) pos = 0;
    }
  }
  out.names = names_;
  out.actors = actors_;
  out.dropped = dropped_;
  out.recorded = recorded_;
  return out;
}

void Tracer::reset() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  recorded_ = 0;
  current_ = 0;
  frames_ = 0;
}

std::vector<Span> build_spans(const TracerDump& dump) {
  std::vector<Span> spans;
  // Innermost open span per actor (index into `spans`), plus a stack so an
  // end pops back to the enclosing span of the same actor.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> open;
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    const TraceEvent& e = dump.events[i];
    auto& stack = open[e.actor];
    switch (e.phase) {
      case TracePhase::kBegin: {
        Span s;
        s.name = e.name;
        s.actor = e.actor;
        s.trace_id = e.trace_id;
        s.start_us = e.time_us;
        s.parent = stack.empty() ? -1 : static_cast<int>(stack.back());
        const std::size_t index = spans.size();
        if (s.parent >= 0) spans[static_cast<std::size_t>(s.parent)].children.push_back(index);
        spans.push_back(std::move(s));
        stack.push_back(index);
        break;
      }
      case TracePhase::kEnd: {
        if (stack.empty()) break;  // begin evicted by ring wraparound
        Span& s = spans[stack.back()];
        s.end_us = e.time_us;
        s.closed = true;
        stack.pop_back();
        break;
      }
      case TracePhase::kInstant: {
        if (!stack.empty()) spans[stack.back()].instants.push_back(i);
        break;
      }
    }
  }
  return spans;
}

std::vector<TraceEvent> causal_chain(const TracerDump& dump,
                                     std::uint64_t trace_id) {
  std::vector<TraceEvent> chain;
  for (const TraceEvent& e : dump.events) {
    if (e.trace_id == trace_id) chain.push_back(e);
  }
  return chain;
}

void append_chrome_trace(util::Json& events, const TracerDump& dump,
                         std::uint64_t pid, std::string_view process_name) {
  util::Json meta = util::Json::object();
  meta.set("name", util::Json("process_name"));
  meta.set("ph", util::Json("M"));
  meta.set("pid", util::Json(pid));
  util::Json args = util::Json::object();
  args.set("name", util::Json(std::string(process_name)));
  meta.set("args", std::move(args));
  events.push_back(std::move(meta));

  // Thread (track) metadata for every actor that actually appears, in
  // interning order so the output is a pure function of the dump.
  std::vector<bool> used(dump.actors.size(), false);
  for (const TraceEvent& e : dump.events) used[e.actor] = true;
  for (std::size_t tid = 0; tid < used.size(); ++tid) {
    if (!used[tid]) continue;
    util::Json t = util::Json::object();
    t.set("name", util::Json("thread_name"));
    t.set("ph", util::Json("M"));
    t.set("pid", util::Json(pid));
    t.set("tid", util::Json(static_cast<std::uint64_t>(tid)));
    util::Json targs = util::Json::object();
    targs.set("name", util::Json(dump.actors[tid]));
    t.set("args", std::move(targs));
    events.push_back(std::move(t));
  }

  for (const TraceEvent& e : dump.events) {
    util::Json row = util::Json::object();
    row.set("name", util::Json(dump.names[e.name]));
    row.set("cat", util::Json(std::string(to_string(e.layer))));
    row.set("ph", util::Json(std::string(phase_letter(e.phase))));
    row.set("ts", util::Json(e.time_us));
    row.set("pid", util::Json(pid));
    row.set("tid", util::Json(static_cast<std::uint64_t>(e.actor)));
    if (e.phase == TracePhase::kInstant) row.set("s", util::Json("t"));
    util::Json rargs = util::Json::object();
    rargs.set("trace", util::Json(hex_id(e.trace_id)));
    rargs.set("v", util::Json(e.arg));
    row.set("args", std::move(rargs));
    events.push_back(std::move(row));
  }
}

util::Json flight_recorder_json(const TracerDump& dump) {
  util::Json rows = util::Json::array();
  for (const TraceEvent& e : dump.events) {
    util::Json row = util::Json::object();
    row.set("t_us", util::Json(e.time_us));
    row.set("layer", util::Json(std::string(to_string(e.layer))));
    row.set("actor", util::Json(dump.actors[e.actor]));
    row.set("name", util::Json(dump.names[e.name]));
    row.set("phase", util::Json(std::string(phase_letter(e.phase))));
    row.set("trace", util::Json(hex_id(e.trace_id)));
    row.set("arg", util::Json(e.arg));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace rogue::obs
