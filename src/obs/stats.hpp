// Per-simulation metrics registry: named counters, gauges (with high-water
// marks) and fixed-bucket histograms, built for the event hot path. A
// component interns its metric names once (like sim::Trace::TagId) and the
// returned handle indexes a flat uint64 array — an increment is one load
// plus one add, no hashing, no locks. One registry per Simulator keeps
// replicas thread-isolated and the counts a pure function of (seed,
// config), so stats can join the byte-identical sweep report.
//
// Default-constructed handles point at a reserved scrap slot, so an
// un-wired component increments harmlessly instead of faulting.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace rogue::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricKind kind);

/// Handles are plain slot indices into the registry's value array. Slot 0
/// is the scrap slot every default-constructed handle targets.
struct CounterId {
  std::uint32_t slot = 0;
};
struct GaugeId {
  std::uint32_t slot = 0;  ///< [slot] = current, [slot+1] = high water
};
struct HistogramId {
  std::uint32_t slot = 0;     ///< buckets..., then count, then sum
  std::uint32_t buckets = 1;  ///< bounds.size() + 1 (last bucket = +inf)
  std::uint32_t bound_offset = 0;  ///< into the registry's packed bounds
};

/// Read-only, name-sorted copy of a registry's metrics (plus any entries a
/// caller appends by hand — the simulator merges kernel/pool counters this
/// way). Safe to keep after the registry is gone.
struct StatsSnapshot {
  struct Histogram {
    std::vector<std::uint64_t> bounds;   ///< inclusive upper bounds
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t value = 0;       ///< counter total / gauge current
    std::uint64_t high_water = 0;  ///< gauges only
    Histogram hist;                ///< histograms only
  };

  std::vector<Entry> entries;  ///< sorted by name

  [[nodiscard]] const Entry* find(std::string_view name) const;
  /// Counter total / gauge current by name; 0 when absent.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  /// Re-sort after appending entries by hand.
  void sort();

  /// Object keyed by metric name: counters are bare numbers, gauges are
  /// {value, high_water}, histograms are {count, sum, bounds, buckets}.
  /// Deterministic: sorted names, integer values only.
  [[nodiscard]] util::Json to_json() const;
  /// Inverse of to_json(); entries come back name-sorted.
  [[nodiscard]] static StatsSnapshot from_json(const util::Json& j);
};

class StatsRegistry {
 public:
  StatsRegistry() {
    // Up-front capacity for a typical simulation's metric set, so a burst
    // of ctor-time interns doesn't reallocate the value array repeatedly.
    values_.reserve(128);
    metrics_.reserve(48);
    values_.resize(kScrapSlots, 0);  // slot 0..2: scrap for inert handles
  }

  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Intern a metric, returning a stable handle. Idempotent per name; the
  /// kind (and histogram bounds) must match on re-intern.
  [[nodiscard]] CounterId counter(std::string_view name);
  [[nodiscard]] GaugeId gauge(std::string_view name);
  /// `bounds` are inclusive upper bucket bounds, strictly increasing; a
  /// final +inf bucket is implicit.
  [[nodiscard]] HistogramId histogram(std::string_view name,
                                      std::vector<std::uint64_t> bounds);

  // ---- hot path ------------------------------------------------------------
  void add(CounterId id, std::uint64_t n = 1) { values_[id.slot] += n; }
  /// Overwrite a counter with an externally-kept running total. For
  /// components whose hot path tallies plain members and flushes from an
  /// on_snapshot() hook; idempotent across repeated snapshots.
  void set_total(CounterId id, std::uint64_t total) { values_[id.slot] = total; }
  void set(GaugeId id, std::uint64_t v) {
    values_[id.slot] = v;
    if (v > values_[id.slot + 1]) values_[id.slot + 1] = v;
  }
  void observe(HistogramId id, std::uint64_t sample) {
    const std::uint32_t last = id.buckets - 1;
    const std::uint64_t* bounds = bucket_bounds_.data() + id.bound_offset;
    std::uint32_t b = 0;
    while (b < last && sample > bounds[b]) ++b;
    ++values_[id.slot + b];
    ++values_[id.slot + id.buckets];              // count
    values_[id.slot + id.buckets + 1] += sample;  // sum
  }

  [[nodiscard]] std::uint64_t value(CounterId id) const { return values_[id.slot]; }
  [[nodiscard]] std::uint64_t value(GaugeId id) const { return values_[id.slot]; }
  [[nodiscard]] std::uint64_t high_water(GaugeId id) const {
    return values_[id.slot + 1];
  }

  [[nodiscard]] std::size_t metric_count() const { return metrics_.size(); }

  /// Zero every value (names and handles survive) — between episodes.
  void reset();

  /// Register a flush hook run at the start of every snapshot(). Lets a
  /// hot-path component keep plain member tallies (no registry traffic per
  /// event) and publish them just in time via set_total(). Returns a token
  /// for remove_snapshot_hook() — deregister before the component dies.
  std::uint64_t on_snapshot(std::function<void()> hook);
  void remove_snapshot_hook(std::uint64_t token);

  [[nodiscard]] StatsSnapshot snapshot() const;

 private:
  static constexpr std::size_t kScrapSlots = 3;  // widest scrap: gauge pair

  struct Metric {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;
    std::uint32_t bound_count = 0;   ///< histograms: number of finite bounds
    std::uint32_t bound_offset = 0;  ///< into bucket_bounds_
  };

  [[nodiscard]] std::uint32_t intern(std::string_view name, MetricKind kind,
                                     std::uint32_t width);

  std::vector<Metric> metrics_;
  std::unordered_map<std::string, std::uint32_t> index_;  ///< name -> metrics_
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> bucket_bounds_;  ///< all histograms' bounds, packed
  std::vector<std::pair<std::uint64_t, std::function<void()>>> flush_hooks_;
  std::uint64_t next_hook_token_ = 1;
};

}  // namespace rogue::obs
