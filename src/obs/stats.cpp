#include "obs/stats.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rogue::obs {

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::uint32_t StatsRegistry::intern(std::string_view name, MetricKind kind,
                                    std::uint32_t width) {
  std::string key(name);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    const Metric& m = metrics_[it->second];
    ROGUE_ASSERT_MSG(m.kind == kind, "metric re-interned with another kind");
    return it->second;
  }
  ROGUE_ASSERT_MSG(!name.empty(), "metric needs a name");
  const std::uint32_t slot = static_cast<std::uint32_t>(values_.size());
  values_.resize(values_.size() + width, 0);
  Metric m;
  m.name = key;
  m.kind = kind;
  m.slot = slot;
  metrics_.push_back(std::move(m));
  const std::uint32_t idx = static_cast<std::uint32_t>(metrics_.size() - 1);
  index_.emplace(std::move(key), idx);
  return idx;
}

CounterId StatsRegistry::counter(std::string_view name) {
  const std::uint32_t idx = intern(name, MetricKind::kCounter, 1);
  return CounterId{metrics_[idx].slot};
}

GaugeId StatsRegistry::gauge(std::string_view name) {
  const std::uint32_t idx = intern(name, MetricKind::kGauge, 2);
  return GaugeId{metrics_[idx].slot};
}

HistogramId StatsRegistry::histogram(std::string_view name,
                                     std::vector<std::uint64_t> bounds) {
  ROGUE_ASSERT_MSG(!bounds.empty(), "histogram needs at least one bound");
  ROGUE_ASSERT_MSG(std::is_sorted(bounds.begin(), bounds.end()) &&
                       std::adjacent_find(bounds.begin(), bounds.end()) ==
                           bounds.end(),
                   "histogram bounds must be strictly increasing");
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    const Metric& m = metrics_[it->second];
    ROGUE_ASSERT_MSG(m.kind == MetricKind::kHistogram &&
                         m.bound_count == bounds.size(),
                     "histogram re-interned with different bounds");
    return HistogramId{m.slot, m.bound_count + 1, m.bound_offset};
  }
  // buckets + count + sum slots; bounds packed into the shared pool.
  const std::uint32_t buckets = static_cast<std::uint32_t>(bounds.size()) + 1;
  const std::uint32_t offset = static_cast<std::uint32_t>(bucket_bounds_.size());
  bucket_bounds_.insert(bucket_bounds_.end(), bounds.begin(), bounds.end());
  const std::uint32_t idx = intern(name, MetricKind::kHistogram, buckets + 2);
  metrics_[idx].bound_count = static_cast<std::uint32_t>(bounds.size());
  metrics_[idx].bound_offset = offset;
  return HistogramId{metrics_[idx].slot, buckets, offset};
}

void StatsRegistry::reset() {
  std::fill(values_.begin(), values_.end(), 0);
}

std::uint64_t StatsRegistry::on_snapshot(std::function<void()> hook) {
  const std::uint64_t token = next_hook_token_++;
  flush_hooks_.emplace_back(token, std::move(hook));
  return token;
}

void StatsRegistry::remove_snapshot_hook(std::uint64_t token) {
  std::erase_if(flush_hooks_,
                [token](const auto& entry) { return entry.first == token; });
}

StatsSnapshot StatsRegistry::snapshot() const {
  // Flush hooks mutate the registry through their own captured reference;
  // running them first means the values read below are current.
  for (const auto& [token, hook] : flush_hooks_) hook();
  StatsSnapshot snap;
  snap.entries.reserve(metrics_.size());
  for (const Metric& m : metrics_) {
    StatsSnapshot::Entry e;
    e.name = m.name;
    e.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter:
        e.value = values_[m.slot];
        break;
      case MetricKind::kGauge:
        e.value = values_[m.slot];
        e.high_water = values_[m.slot + 1];
        break;
      case MetricKind::kHistogram: {
        const std::uint32_t buckets = m.bound_count + 1;
        e.hist.bounds.assign(bucket_bounds_.begin() + m.bound_offset,
                             bucket_bounds_.begin() + m.bound_offset +
                                 m.bound_count);
        e.hist.buckets.assign(values_.begin() + m.slot,
                              values_.begin() + m.slot + buckets);
        e.hist.count = values_[m.slot + buckets];
        e.hist.sum = values_[m.slot + buckets + 1];
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  snap.sort();
  return snap;
}

void StatsSnapshot::sort() {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
}

const StatsSnapshot::Entry* StatsSnapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Entry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

std::uint64_t StatsSnapshot::value(std::string_view name) const {
  const Entry* e = find(name);
  return e != nullptr ? e->value : 0;
}

util::Json StatsSnapshot::to_json() const {
  util::Json j = util::Json::object();
  for (const Entry& e : entries) {
    switch (e.kind) {
      case MetricKind::kCounter:
        j.set(e.name, e.value);
        break;
      case MetricKind::kGauge: {
        util::Json g = util::Json::object();
        g.set("value", e.value);
        g.set("high_water", e.high_water);
        j.set(e.name, std::move(g));
        break;
      }
      case MetricKind::kHistogram: {
        util::Json h = util::Json::object();
        h.set("count", e.hist.count);
        h.set("sum", e.hist.sum);
        util::Json bounds = util::Json::array();
        for (const std::uint64_t b : e.hist.bounds) bounds.push_back(b);
        util::Json buckets = util::Json::array();
        for (const std::uint64_t b : e.hist.buckets) buckets.push_back(b);
        h.set("bounds", std::move(bounds));
        h.set("buckets", std::move(buckets));
        j.set(e.name, std::move(h));
        break;
      }
    }
  }
  return j;
}

StatsSnapshot StatsSnapshot::from_json(const util::Json& j) {
  StatsSnapshot snap;
  for (const util::Json::Member& m : j.members()) {
    Entry e;
    e.name = m.first;
    const util::Json& v = m.second;
    if (v.is_number()) {
      e.kind = MetricKind::kCounter;
      e.value = static_cast<std::uint64_t>(v.as_int());
    } else if (v.find("high_water") != nullptr) {
      e.kind = MetricKind::kGauge;
      e.value = static_cast<std::uint64_t>(v.find("value")->as_int());
      e.high_water = static_cast<std::uint64_t>(v.find("high_water")->as_int());
    } else {
      e.kind = MetricKind::kHistogram;
      e.hist.count = static_cast<std::uint64_t>(v.find("count")->as_int());
      e.hist.sum = static_cast<std::uint64_t>(v.find("sum")->as_int());
      for (const util::Json& b : v.find("bounds")->items()) {
        e.hist.bounds.push_back(static_cast<std::uint64_t>(b.as_int()));
      }
      for (const util::Json& b : v.find("buckets")->items()) {
        e.hist.buckets.push_back(static_cast<std::uint64_t>(b.as_int()));
      }
    }
    snap.entries.push_back(std::move(e));
  }
  snap.sort();
  return snap;
}

}  // namespace rogue::obs
