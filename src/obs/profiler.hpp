// Host wall-time profiler for the simulation hot path. Components intern a
// scope name once (mirroring their trace tag) and wrap their handlers in an
// RAII Scope; the profiler attributes elapsed host time to the innermost
// open scope (self time) and to every enclosing scope (total time), and
// counts entries per scope — event counts per tag, for free.
//
// Disabled by default: a Scope on a disabled profiler is a single branch,
// so instrumented code stays on the sweep hot path at near-zero cost.
// Wall-clock readings are host-dependent and must stay out of the
// deterministic sweep report — callers print or export them separately,
// like SweepReport::wall_ms.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/json.hpp"

namespace rogue::obs {

class Profiler {
 public:
  struct ScopeId {
    std::uint32_t index = 0;
  };

  Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Intern a scope name; idempotent, stable across reset().
  [[nodiscard]] ScopeId intern(std::string_view name);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Drop tallies (names survive). No scopes may be open.
  void reset();

  class Scope {
   public:
    Scope(Profiler& profiler, ScopeId id) : profiler_(profiler) {
      if (profiler.enabled_) {
        profiler.push(id);
        active_ = true;
      }
    }
    ~Scope() {
      if (active_) profiler_.pop();
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler& profiler_;
    bool active_ = false;
  };

  struct Row {
    std::string name;
    std::uint64_t calls = 0;     ///< scope entries (event count per tag)
    std::uint64_t total_ns = 0;  ///< inclusive, outermost entries only
    std::uint64_t self_ns = 0;   ///< exclusive of child scopes
  };

  struct Report {
    std::vector<Row> rows;  ///< sorted by self_ns descending

    /// Fixed-width console table (calls, total ms, self ms, self %).
    [[nodiscard]] std::string table() const;
    /// Host-dependent — never merge this into a deterministic report.
    [[nodiscard]] util::Json to_json() const;
  };

  [[nodiscard]] Report report() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Frame {
    std::uint32_t id = 0;
    Clock::time_point start;
    std::uint64_t child_ns = 0;
  };
  struct Tally {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::uint32_t active = 0;  ///< open frames (recursion guard for total)
  };

  void push(ScopeId id);
  void pop();

  bool enabled_ = false;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<Tally> tallies_;
  std::vector<Frame> stack_;
};

}  // namespace rogue::obs
