// EXP-C5 scaling driver: one metro replica per (population, geometry)
// cell, reporting wall-clock, simulated event throughput, and the roaming
// metrics. This is the tool that produced the scaling table in
// EXPERIMENTS.md — the flat medium is only run at sizes where its O(N)
// delivery walk still finishes in reasonable time.
//
//   metro_scale [--full]
//
// The default ladder tops out at 8192 STAs so the example stays in
// seconds; --full adds the city-scale points (up to 50k STAs / 210 APs,
// CPU-minutes territory).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "scenario/metro_world.hpp"
#include "sim/simulator.hpp"

using namespace rogue;

namespace {

struct Point {
  std::size_t ap_cols;
  std::size_t ap_rows;
  std::size_t stas;
  bool grid;
};

void run_point(const Point& pt) {
  scenario::MetroConfig cfg;
  cfg.ap_cols = pt.ap_cols;
  cfg.ap_rows = pt.ap_rows;
  cfg.sta_count = pt.stas;
  cfg.rogue_count = 4;
  cfg.episode_duration = 10 * sim::kSecond;
  cfg.spatial_grid = pt.grid;

  scenario::MetroWorld world(cfg);
  world.configure(1);
  const auto t0 = std::chrono::steady_clock::now();
  world.run_episode();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  const auto m = world.collect_metrics();
  std::printf(
      "%-5s aps=%-4zu stas=%-6zu wall=%9.1fms events/s=%10.0f "
      "assoc=%.3f roam_p50=%.2fs promiscuous=%.3f\n",
      pt.grid ? "grid" : "flat", pt.ap_cols * pt.ap_rows, pt.stas, wall_ms,
      static_cast<double>(m.events_fired) / (wall_ms / 1000.0),
      m.metro_assoc_fraction, m.metro_roam_p50_s, m.metro_promiscuous_rate);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  std::vector<Point> ladder = {
      {6, 4, 512, false},   {6, 4, 512, true},    // neighborhood
      {6, 4, 2048, false},  {6, 4, 2048, true},
      {10, 8, 8192, false}, {10, 8, 8192, true},  // district
  };
  if (full) {
    ladder.push_back({15, 14, 20'000, true});     // city (grid only: the
    ladder.push_back({15, 14, 50'000, true});     // flat walk is O(N) per
  }                                               // delivery at this size)

  for (const Point& pt : ladder) run_point(pt);
  return 0;
}
