// Figure 2 in detail: the software-download MITM, step by step, with the
// exact mechanism of §4.1 — proxy-ARP bridging, the Netfilter DNAT rule,
// and netsed's two string rewrites — narrated with live state dumps.
//
//   $ ./download_mitm [--streaming] [--log-level LEVEL]
#include <cstdio>
#include <cstring>

#include "scenario/corp_world.hpp"
#include "util/logging.hpp"

using namespace rogue;

int main(int argc, char** argv) {
  if (!util::Log::init_from_cli(argc, argv)) return 2;
  const bool streaming = argc > 1 && std::strcmp(argv[1], "--streaming") == 0;

  scenario::CorpConfig cfg;
  cfg.victim_to_legit_m = 20.0;
  cfg.victim_to_rogue_m = 4.0;
  cfg.netsed_mode =
      streaming ? apps::NetsedMode::kStreaming : apps::NetsedMode::kPerSegment;
  scenario::CorpWorld world(cfg);

  std::printf("Software download MITM (paper section 4.1)\n");
  std::printf("netsed matching mode: %s\n\n",
              streaming ? "streaming (cross-segment fix)" : "per-segment (historic)");

  world.start();
  world.run_for(3 * sim::kSecond);
  std::printf("[1] victim %s associated to CORP (bssid %s, ch %d)\n",
              world.victim_mac().to_string().c_str(),
              world.victim_sta().bss().bssid.to_string().c_str(),
              static_cast<int>(world.victim_sta().bss().channel));

  auto& rogue_gw = world.deploy_rogue();
  std::printf("[2] rogue gateway up:\n");
  std::printf("      eth1 (client to CORP):  MAC %s, IP %s\n",
              rogue_gw.config().client_mac.to_string().c_str(),
              rogue_gw.config().eth_ip.to_string().c_str());
  std::printf("      wlan0 (Master mode):    BSSID %s, ch %d, IP %s\n",
              rogue_gw.config().rogue_bssid.to_string().c_str(),
              static_cast<int>(rogue_gw.config().rogue_channel),
              rogue_gw.config().wlan_ip.to_string().c_str());
  std::printf("      parprouted wlan0 eth1 + ip_forward=1\n");
  std::printf("      iptables -t nat -A PREROUTING -p tcp -d %s --dport 80 "
              "-j DNAT --to %s:10101\n",
              world.addr().web_server.to_string().c_str(),
              rogue_gw.config().wlan_ip.to_string().c_str());
  std::printf("      netsed rules:\n");
  for (const auto& rule : rogue_gw.config().netsed_rules) {
    std::printf("        s/%s/%s/\n", util::to_string(rule.pattern).c_str(),
                util::to_string(rule.replacement).c_str());
  }

  world.start_deauth_forcing();
  world.run_for(15 * sim::kSecond);
  std::printf("[3] forged deauths sent; victim now on rogue AP: %s\n",
              world.victim_on_rogue() ? "yes" : "NO (attack failed)");
  std::printf("      rogue uplink associated to legit AP: %s\n",
              rogue_gw.uplink_associated() ? "yes" : "no");
  std::printf("      proxy-ARP replies so far: %llu, host routes learned: %llu\n",
              static_cast<unsigned long long>(rogue_gw.bridge().proxied_replies()),
              static_cast<unsigned long long>(rogue_gw.bridge().routes_learned()));

  std::printf("[4] victim browses to http://%s/download.html ...\n",
              world.addr().web_server.to_string().c_str());
  apps::DownloadOutcome outcome;
  world.download([&](const apps::DownloadOutcome& o) { outcome = o; });
  world.run_for(60 * sim::kSecond);

  std::printf("\n--- victim's experience ------------------------------------\n");
  std::printf("  download link followed:  http://%s/file.tgz\n",
              outcome.fetched_from.to_string().c_str());
  std::printf("  md5sum file.tgz          %s\n", outcome.fetched_md5_hex.c_str());
  std::printf("  MD5SUM on the page:      %s\n", outcome.published_md5_hex.c_str());
  std::printf("  verification:            %s\n",
              outcome.md5_verified ? "OK — \"download completed safely\"" : "MISMATCH");

  std::printf("\n--- ground truth --------------------------------------------\n");
  std::printf("  genuine release MD5:     %s\n", world.release_md5().c_str());
  std::printf("  trojaned build MD5:      %s\n", world.trojan_md5().c_str());
  std::printf("  victim installed:        %s\n",
              outcome.fetched_md5_hex == world.trojan_md5()
                  ? "THE TROJAN (attack succeeded)"
                  : "the genuine release");
  std::printf("  netsed: %llu connection(s) proxied, %llu replacement(s)\n",
              static_cast<unsigned long long>(rogue_gw.netsed().stats().connections),
              static_cast<unsigned long long>(rogue_gw.netsed().stats().replacements));
  return 0;
}
