// Parallel multi-seed experiment sweep over a scenario's variant ladder.
//
//   $ ./sweep --scenario corp --runs 200 --jobs 8 --out report.json
//
// Fans (runs x variants) independent replicas across a worker pool — each
// replica owns a private world and is reproducible from its seed — prints
// the per-variant aggregate table, and writes the machine-readable JSON
// report. The report bytes are identical at any --jobs value.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/pcap.hpp"
#include "obs/profiler.hpp"
#include "runner/scenarios.hpp"
#include "runner/sweep.hpp"
#include "runner/tournament.hpp"
#include "util/logging.hpp"

using namespace rogue;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--scenario corp|hotspot|corp-chaos|hotspot-chaos|\n"
      "                      corp-transport|metro|metro-city]\n"
      "          [--runs N] [--jobs N] [--seed-base N] [--faults X]\n"
      "          [--out report.json] [--stats-out stats.json]\n"
      "          [--trace-out trace.json] [--trace-ring-events N]\n"
      "          [--timeseries-out series.jsonl] [--timeseries-dt X]\n"
      "          [--pcap-out capture.pcap] [--profile]\n"
      "          [--profile-out profile.json]\n"
      "          [--pool-slab N] [--pool-buffer-bytes B] [--pool-poison]\n"
      "          [--log-level trace|debug|info|warn|error|off]\n"
      "          [--tournament] [--attackers a,b,...] [--detectors d,e,...]\n"
      "          [--wids-baseline-s X] [--wids-attack-s X]\n"
      "\n"
      "  --tournament  run the attacker x detector WIDS matrix instead of\n"
      "                the variant ladder (scenario corp or hotspot). Every\n"
      "                pair runs --runs seeded replicas; the report carries\n"
      "                per-pair detection rate, FP rate and TTD p50/p95 and\n"
      "                its bytes are identical at any --jobs\n"
      "  --attackers   comma-separated registry attackers (default: stock\n"
      "                roster incl. the \"none\" control row)\n"
      "  --detectors   comma-separated registry detectors (default: stock\n"
      "                roster incl. the composite)\n"
      "  --wids-baseline-s X  quiet window before the attack (FP territory)\n"
      "  --wids-attack-s X    attacker-active window\n"
      "\n"
      "  --faults X    inject a seed-derived fault plan at intensity X\n"
      "                (faults per simulated minute; overlays the plain\n"
      "                scenarios, scales the chaos ones; ignored by the\n"
      "                metro roaming scenarios)\n"
      "  metro         spatial-grid roaming ladder (EXP-C5): street-grid\n"
      "                APs, waypoint-roaming STAs, evil-twin promiscuity\n"
      "  metro-city    the same at acceptance scale (210 APs, 50k STAs);\n"
      "                one replica is CPU-minutes — use --runs 1..2\n"
      "  --pool-slab N pre-warm each replica's frame-buffer arena with N\n"
      "                buffers (of --pool-buffer-bytes each, default 2048);\n"
      "                adds sim.pool.high_water / sim.pool.spills to the\n"
      "                stats so the slab can be sized from a trial run\n"
      "  --pool-poison overwrite released frame buffers with 0xA5 so\n"
      "                use-after-release bugs surface as loud garbage\n"
      "  --stats-out F write the per-variant layer-counter aggregates as\n"
      "                JSON (deterministic: identical bytes at any --jobs)\n"
      "  --trace-out F enable the causal tracer / flight recorder in every\n"
      "                replica and write a Chrome trace-event JSON (load in\n"
      "                Perfetto or chrome://tracing; one process per\n"
      "                replica, one track per actor, sim-time as us).\n"
      "                Deterministic: identical bytes at any --jobs; failed\n"
      "                replicas also embed their flight-recorder tail under\n"
      "                \"failures\" in the report\n"
      "  --trace-ring-events N  per-replica flight-recorder capacity in\n"
      "                records (default 65536; oldest overwritten)\n"
      "  --timeseries-out F  sample every replica's StatsRegistry on a\n"
      "                sim-time cadence and write one JSON object per line\n"
      "                (deterministic: identical bytes at any --jobs)\n"
      "  --timeseries-dt X   sample period in sim-seconds (default 1.0)\n"
      "  --pcap-out F  run one extra frame-capturing replica of the first\n"
      "                variant (seed-base) and dump its radio traffic as a\n"
      "                LINKTYPE_IEEE802_11 pcap\n"
      "  --profile     run one extra profiled replica per variant and print\n"
      "                the sim-time profile (host wall-time; console only)\n"
      "  --profile-out F  like --profile, but also write the per-variant\n"
      "                profiles as JSON (host wall-time: nondeterministic,\n"
      "                never part of the deterministic report files). With\n"
      "                --trace-out, the profiled replicas additionally\n"
      "                appear in the trace file as \"host-profile\" tracks\n"
      "                (marked nondeterministic; excluded from the\n"
      "                byte-determinism contract, so CI compares traces\n"
      "                produced without profiling)\n"
      "\n"
      "ROGUE_LOG sets the default log level; --log-level overrides it.\n"
      "\n"
      "exits 1 when any replica failed (reported under \"failures\" in the\n"
      "JSON report), 2 on usage errors.\n",
      argv0);
}

std::vector<std::string> split_csv(const char* text) {
  std::vector<std::string> out;
  std::string current;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(*p);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

/// Lay one profiled replica's rows onto a host-time track: "X" slices
/// packed end to end in self-time order. The track visualizes *relative*
/// host cost next to the sim-time tracks; its timestamps are host
/// measurements, hence nondeterministic and excluded from the trace file's
/// byte-determinism contract (CI compares traces made without --profile).
void append_profile_track(util::Json& events, std::uint64_t pid,
                          const std::string& variant,
                          const obs::Profiler::Report& profile) {
  util::Json meta_args = util::Json::object();
  meta_args.set("name", "host-profile " + variant + " (nondeterministic)");
  util::Json meta = util::Json::object();
  meta.set("name", "process_name");
  meta.set("ph", "M");
  meta.set("pid", pid);
  meta.set("tid", std::uint64_t{0});
  meta.set("args", std::move(meta_args));
  events.push_back(std::move(meta));

  std::uint64_t cursor_ns = 0;
  for (const obs::Profiler::Row& row : profile.rows) {
    util::Json args = util::Json::object();
    args.set("calls", row.calls);
    args.set("total_ns", row.total_ns);
    args.set("self_ns", row.self_ns);
    util::Json e = util::Json::object();
    e.set("name", row.name);
    e.set("cat", "host");
    e.set("ph", "X");
    e.set("ts", cursor_ns / 1000);
    e.set("dur", row.self_ns / 1000);
    e.set("pid", pid);
    e.set("tid", std::uint64_t{0});
    e.set("args", std::move(args));
    events.push_back(std::move(e));
    cursor_ns += row.self_ns;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!util::Log::init_from_cli(argc, argv)) return 2;
  runner::SweepConfig cfg;
  cfg.runs = 20;
  std::string out_path;
  std::string stats_path;
  std::string pcap_path;
  std::string trace_path;
  std::string timeseries_path;
  std::string profile_path;
  bool profile = false;
  double fault_intensity = 0.0;
  bool tournament = false;
  runner::TournamentConfig tcfg;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--scenario") == 0) {
      cfg.scenario = value();
    } else if (std::strcmp(arg, "--runs") == 0) {
      cfg.runs = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(arg, "--jobs") == 0) {
      cfg.jobs = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(arg, "--seed-base") == 0) {
      cfg.seed_base = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--faults") == 0) {
      fault_intensity = std::strtod(value(), nullptr);
    } else if (std::strcmp(arg, "--out") == 0) {
      out_path = value();
    } else if (std::strcmp(arg, "--stats-out") == 0) {
      stats_path = value();
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      trace_path = value();
      cfg.trace = true;
    } else if (std::strcmp(arg, "--trace-ring-events") == 0) {
      cfg.trace_ring_events =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(arg, "--timeseries-out") == 0) {
      timeseries_path = value();
    } else if (std::strcmp(arg, "--timeseries-dt") == 0) {
      cfg.timeseries_dt_s = std::strtod(value(), nullptr);
    } else if (std::strcmp(arg, "--pool-slab") == 0) {
      cfg.pool.slab_buffers =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(arg, "--pool-buffer-bytes") == 0) {
      cfg.pool.buffer_capacity =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(arg, "--pool-poison") == 0) {
      cfg.pool.poison_on_release = true;
    } else if (std::strcmp(arg, "--tournament") == 0) {
      tournament = true;
    } else if (std::strcmp(arg, "--attackers") == 0) {
      tcfg.attackers = split_csv(value());
    } else if (std::strcmp(arg, "--detectors") == 0) {
      tcfg.detectors = split_csv(value());
    } else if (std::strcmp(arg, "--wids-baseline-s") == 0) {
      tcfg.baseline_window =
          static_cast<sim::Time>(std::strtod(value(), nullptr) * 1e6);
    } else if (std::strcmp(arg, "--wids-attack-s") == 0) {
      tcfg.attack_window =
          static_cast<sim::Time>(std::strtod(value(), nullptr) * 1e6);
    } else if (std::strcmp(arg, "--pcap-out") == 0) {
      pcap_path = value();
    } else if (std::strcmp(arg, "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(arg, "--profile-out") == 0) {
      profile_path = value();
      profile = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage(argv[0]);
      return 2;
    }
  }
  if (!timeseries_path.empty() && cfg.timeseries_dt_s <= 0.0) {
    cfg.timeseries_dt_s = 1.0;
  }

  if (tournament) {
    tcfg.scenario = cfg.scenario;
    tcfg.seed_base = cfg.seed_base;
    tcfg.runs = cfg.runs;
    tcfg.jobs = cfg.jobs;
    tcfg.pool = cfg.pool;
    if (tcfg.scenario != "corp" && tcfg.scenario != "hotspot") {
      std::fprintf(stderr,
                   "tournament scenarios: corp, hotspot (got '%s')\n",
                   tcfg.scenario.c_str());
      return 2;
    }
    runner::TournamentReport report = runner::run_tournament(tcfg);
    std::printf(
        "tournament: scenario=%s attackers=%zu detectors=%zu runs=%zu/pair\n",
        report.config.scenario.c_str(), report.config.attackers.size(),
        report.config.detectors.size(), report.config.runs);
    std::printf("\n%s\n%s", report.matrix().c_str(), report.table().c_str());
    std::printf("\n%zu replicas in %.1f ms wall\n", report.runs.size(),
                report.wall_ms);
    if (!out_path.empty()) {
      const std::string text = report.to_json().dump(2);
      if (!write_text_file(out_path, text)) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      std::printf("report written to %s (%zu bytes)\n", out_path.c_str(),
                  text.size() + 1);
    }
    const std::size_t failed = report.failed_count();
    if (failed > 0) {
      std::fprintf(stderr, "%zu replica(s) failed:\n", failed);
      for (const runner::RunMetrics& run : report.runs) {
        if (!run.failed) continue;
        std::fprintf(stderr, "  pair=%s seed=%llu: %s\n", run.variant.c_str(),
                     static_cast<unsigned long long>(run.seed),
                     run.error.c_str());
      }
      return 1;
    }
    return 0;
  }

  std::vector<runner::Variant> variants =
      runner::stock_variants(cfg.scenario, fault_intensity);
  if (variants.empty()) {
    std::fprintf(stderr, "unknown scenario '%s'; known:", cfg.scenario.c_str());
    for (const auto name : runner::known_scenarios()) {
      std::fprintf(stderr, " %.*s", static_cast<int>(name.size()), name.data());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  runner::ExperimentRunner exp(cfg);
  // Copies, not moves: the --pcap-out / --profile extra replicas below
  // need the factories again after the sweep.
  for (const auto& v : variants) exp.add_variant(v.name, v.make);

  std::printf("sweep: scenario=%s runs=%zu/variant variants=%zu jobs=%zu\n",
              cfg.scenario.c_str(), cfg.runs, exp.variant_count(),
              cfg.jobs == 0 ? static_cast<std::size_t>(0) : cfg.jobs);
  runner::SweepReport report = exp.run();

  std::printf("\n%s", report.table().c_str());
  std::printf("\n%zu replicas in %.1f ms wall\n", report.runs.size(),
              report.wall_ms);

  if (!out_path.empty()) {
    const std::string text = report.to_json().dump(2);
    if (!write_text_file(out_path, text)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("report written to %s (%zu bytes)\n", out_path.c_str(),
                text.size() + 1);
  }

  if (!stats_path.empty()) {
    const std::string text = report.stats_json().dump(2);
    if (!write_text_file(stats_path, text)) {
      std::fprintf(stderr, "cannot write %s\n", stats_path.c_str());
      return 1;
    }
    std::printf("stats written to %s (%zu bytes)\n", stats_path.c_str(),
                text.size() + 1);
  }

  if (!pcap_path.empty()) {
    // One dedicated capture replica of the first variant: frame capture
    // copies every radio frame, so it stays out of the sweep proper.
    const runner::Variant& v = variants.front();
    std::unique_ptr<scenario::World> world = v.make(cfg.seed_base);
    world->enable_frame_capture();
    world->configure(cfg.seed_base);
    world->run_episode();
    obs::PcapWriter pcap;
    for (const sim::CapturedFrame& frame : world->trace().frames()) {
      pcap.add_frame(frame.time, frame.bytes);
    }
    if (!pcap.write_file(pcap_path)) {
      std::fprintf(stderr, "cannot write %s\n", pcap_path.c_str());
      return 1;
    }
    std::printf("pcap written to %s (%zu frames, variant=%s seed=%llu)\n",
                pcap_path.c_str(), pcap.frames(), v.name.c_str(),
                static_cast<unsigned long long>(cfg.seed_base));
  }

  // One profiled replica per variant. Wall-time attribution is a host
  // measurement, so it never joins the deterministic report files: the
  // console table and --profile-out JSON carry it, and with --trace-out it
  // rides along as clearly-marked nondeterministic host-profile tracks.
  std::vector<std::pair<std::string, obs::Profiler::Report>> profiles;
  if (profile) {
    for (const runner::Variant& v : variants) {
      std::unique_ptr<scenario::World> world = v.make(cfg.seed_base);
      world->configure(cfg.seed_base);
      world->simulator().profiler().set_enabled(true);
      world->run_episode();
      profiles.emplace_back(v.name, world->simulator().profiler().report());
      std::fprintf(stderr, "\nprofile: variant=%s seed=%llu\n%s",
                   v.name.c_str(),
                   static_cast<unsigned long long>(cfg.seed_base),
                   profiles.back().second.table().c_str());
    }
  }

  if (!profile_path.empty()) {
    util::Json j = util::Json::object();
    j.set("scenario", cfg.scenario);
    j.set("seed", cfg.seed_base);
    j.set("nondeterministic", true);  // host wall-time: never diff this file
    util::Json vars = util::Json::array();
    for (const auto& [vname, vprofile] : profiles) {
      util::Json entry = util::Json::object();
      entry.set("name", vname);
      entry.set("profile", vprofile.to_json());
      vars.push_back(std::move(entry));
    }
    j.set("variants", std::move(vars));
    const std::string text = j.dump(2);
    if (!write_text_file(profile_path, text)) {
      std::fprintf(stderr, "cannot write %s\n", profile_path.c_str());
      return 1;
    }
    std::printf("profile written to %s (%zu bytes)\n", profile_path.c_str(),
                text.size() + 1);
  }

  if (!trace_path.empty()) {
    util::Json events = report.chrome_trace_events();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      append_profile_track(events, 1000000 + i, profiles[i].first,
                           profiles[i].second);
    }
    util::Json trace = util::Json::object();
    trace.set("traceEvents", std::move(events));
    trace.set("displayTimeUnit", "ms");
    const std::string text = trace.dump();
    if (!write_text_file(trace_path, text)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu bytes)\n", trace_path.c_str(),
                text.size() + 1);
  }

  if (!timeseries_path.empty()) {
    std::string text = report.timeseries_jsonl();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    if (!write_text_file(timeseries_path, text)) {
      std::fprintf(stderr, "cannot write %s\n", timeseries_path.c_str());
      return 1;
    }
    std::printf("timeseries written to %s (%zu bytes)\n",
                timeseries_path.c_str(), text.size() + 1);
  }

  const std::size_t failed = report.failed_count();
  if (failed > 0) {
    std::fprintf(stderr, "%zu replica(s) failed:\n", failed);
    for (const runner::RunMetrics& run : report.runs) {
      if (!run.failed) continue;
      std::fprintf(stderr, "  variant=%s seed=%llu: %s\n", run.variant.c_str(),
                   static_cast<unsigned long long>(run.seed),
                   run.error.c_str());
    }
    return 1;
  }
  return 0;
}
