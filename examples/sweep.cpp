// Parallel multi-seed experiment sweep over a scenario's variant ladder.
//
//   $ ./sweep --scenario corp --runs 200 --jobs 8 --out report.json
//
// Fans (runs x variants) independent replicas across a worker pool — each
// replica owns a private world and is reproducible from its seed — prints
// the per-variant aggregate table, and writes the machine-readable JSON
// report. The report bytes are identical at any --jobs value.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/scenarios.hpp"
#include "runner/sweep.hpp"

using namespace rogue;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--scenario corp|hotspot|corp-chaos|hotspot-chaos]\n"
      "          [--runs N] [--jobs N] [--seed-base N] [--faults X]\n"
      "          [--out report.json]\n"
      "\n"
      "  --faults X   inject a seed-derived fault plan at intensity X\n"
      "               (faults per simulated minute; overlays the plain\n"
      "               scenarios, scales the chaos ones)\n"
      "\n"
      "exits 1 when any replica failed (reported under \"failures\" in the\n"
      "JSON report), 2 on usage errors.\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepConfig cfg;
  cfg.runs = 20;
  std::string out_path;
  double fault_intensity = 0.0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--scenario") == 0) {
      cfg.scenario = value();
    } else if (std::strcmp(arg, "--runs") == 0) {
      cfg.runs = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(arg, "--jobs") == 0) {
      cfg.jobs = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (std::strcmp(arg, "--seed-base") == 0) {
      cfg.seed_base = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--faults") == 0) {
      fault_intensity = std::strtod(value(), nullptr);
    } else if (std::strcmp(arg, "--out") == 0) {
      out_path = value();
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage(argv[0]);
      return 2;
    }
  }

  std::vector<runner::Variant> variants =
      runner::stock_variants(cfg.scenario, fault_intensity);
  if (variants.empty()) {
    std::fprintf(stderr, "unknown scenario '%s'; known:", cfg.scenario.c_str());
    for (const auto name : runner::known_scenarios()) {
      std::fprintf(stderr, " %.*s", static_cast<int>(name.size()), name.data());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  runner::ExperimentRunner exp(cfg);
  for (auto& v : variants) exp.add_variant(std::move(v.name), std::move(v.make));

  std::printf("sweep: scenario=%s runs=%zu/variant variants=%zu jobs=%zu\n",
              cfg.scenario.c_str(), cfg.runs, exp.variant_count(),
              cfg.jobs == 0 ? static_cast<std::size_t>(0) : cfg.jobs);
  runner::SweepReport report = exp.run();

  std::printf("\n%s", report.table().c_str());
  std::printf("\n%zu replicas in %.1f ms wall\n", report.runs.size(),
              report.wall_ms);

  if (!out_path.empty()) {
    const std::string text = report.to_json().dump(2);
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("report written to %s (%zu bytes)\n", out_path.c_str(),
                text.size() + 1);
  }

  const std::size_t failed = report.failed_count();
  if (failed > 0) {
    std::fprintf(stderr, "%zu replica(s) failed:\n", failed);
    for (const runner::RunMetrics& run : report.runs) {
      if (!run.failed) continue;
      std::fprintf(stderr, "  variant=%s seed=%llu: %s\n", run.variant.c_str(),
                   static_cast<unsigned long long>(run.seed),
                   run.error.c_str());
    }
    return 1;
  }
  return 0;
}
