// Administrator walk-through: detecting the rogue AP with the paper's
// §2.3 techniques — a radio site audit (BSS census vs. inventory), the
// 802.11 sequence-control monitor, and a wired-side MAC census.
//
//   $ ./hotspot_audit [--log-level LEVEL]
#include <cstdio>

#include "detect/seqnum.hpp"
#include "detect/site_audit.hpp"
#include "detect/wired_monitor.hpp"
#include "scenario/corp_world.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

using namespace rogue;

int main(int argc, char** argv) {
  if (!util::Log::init_from_cli(argc, argv)) return 2;
  std::printf("Rogue AP detection walk-through (paper section 2.3)\n");
  std::printf("----------------------------------------------------\n\n");

  scenario::CorpConfig cfg;
  cfg.victim_to_legit_m = 20.0;
  cfg.victim_to_rogue_m = 4.0;
  cfg.deauth_forcing = true;
  cfg.capture_window = 10 * sim::kSecond;
  scenario::CorpWorld world(cfg);
  world.start();

  // Wired-side census starts with the known inventory: infrastructure
  // MACs and registered clients. The rogue's uplink uses a *sniffed staff
  // MAC*, which the inventory lists too — but the corp gateway and VPN
  // endpoint are known, so anything else is a finding.
  detect::WiredMonitor wired(world.sim(), world.corp_lan(),
                             {world.victim_mac(), world.legit_bssid(),
                              world.corp_gw().interface("lan0")->mac(),
                              world.vpn_host().interface("eth0")->mac()});

  // Sequence-control monitor parked on the corporate channel.
  detect::SeqNumMonitor& seq_monitor = world.enable_detection();

  world.run_capture_phase();
  std::printf("[t=%3.0fs] rogue deployed; victim on rogue: %s\n",
              static_cast<double>(world.sim().now()) / 1e6,
              world.victim_on_rogue() ? "yes" : "no");

  // The victim browses, so the rogue's uplink traffic crosses the wire.
  world.download([](const apps::DownloadOutcome&) {});
  world.run_for(30 * sim::kSecond);

  // --- Radio site audit -------------------------------------------------------
  attack::SnifferConfig sc;
  sc.hop_channels = {cfg.legit_channel, cfg.rogue_channel};
  sc.hop_dwell = 300'000;
  attack::Sniffer auditor(world.sim(), world.medium(), sc);
  auditor.radio().set_position({8, 8});
  world.run_for(4 * sim::kSecond);

  detect::SiteAudit audit({{"CORP", world.legit_bssid(), cfg.legit_channel}});
  const auto census = auditor.observed_bss();

  util::Table census_table({"SSID", "BSSID", "channel", "privacy", "beacons"});
  for (const auto& bss : census) {
    census_table.add_row({bss.ssid, bss.bssid.to_string(),
                          std::to_string(static_cast<int>(bss.channel)),
                          bss.privacy ? "WEP" : "open",
                          std::to_string(bss.beacons)});
  }
  std::printf("\nRadio site audit census:\n");
  census_table.print();

  std::printf("\nFindings vs. authorized inventory:\n");
  for (const auto& finding : audit.evaluate(census)) {
    const char* kind = "?";
    switch (finding.kind) {
      case detect::AuditFindingKind::kUnknownBssid: kind = "UNKNOWN BSSID on our SSID"; break;
      case detect::AuditFindingKind::kClonedBssidWrongChannel:
        kind = "OUR BSSID CLONED on an unauthorized channel"; break;
      case detect::AuditFindingKind::kUnknownSsid: kind = "foreign SSID (info)"; break;
      case detect::AuditFindingKind::kPrivacyMismatch: kind = "privacy mismatch"; break;
    }
    std::printf("  [%s] ssid=%s bssid=%s ch=%d\n", kind, finding.bss.ssid.c_str(),
                finding.bss.bssid.to_string().c_str(),
                static_cast<int>(finding.bss.channel));
  }
  std::printf("  => rogue detected: %s\n",
              audit.rogue_detected(census) ? "YES" : "no");

  // --- Sequence-control anomalies ---------------------------------------------
  std::printf("\nSequence-control monitor (channel %d): %zu anomalies, suspects:\n",
              static_cast<int>(cfg.legit_channel), seq_monitor.alerts().size());
  for (const auto& mac : seq_monitor.suspects()) {
    std::printf("  %s %s\n", mac.to_string().c_str(),
                mac == world.legit_bssid() ? "(our AP's identity — being forged!)"
                                           : "");
  }

  // --- Wired-side census --------------------------------------------------------
  std::printf("\nWired monitor (%llu frames observed): "
              "%zu unregistered MAC(s) active on the LAN:\n",
              static_cast<unsigned long long>(wired.frames_observed()),
              wired.unknown_macs().size());
  for (const auto& finding : wired.unknown_macs()) {
    std::printf("  %s first seen t=%.1fs\n", finding.mac.to_string().c_str(),
                static_cast<double>(finding.time) / 1e6);
  }
  std::printf("\nNote (paper §1.2.1): detection protects the *network*; the\n"
              "roaming client is only protected by its own VPN policy.\n");
  return 0;
}
