// AirSnort demo: passively capture WEP traffic from a busy network and
// recover the shared key with the Fluhrer–Mantin–Shamir attack — the
// paper's §4 step where an outside attacker "retrieved the WEP key via
// Airsnort and a MAC address that he has observed by sniffing".
//
//   $ ./wep_crack [frames] [--log-level LEVEL]
#include <cstdio>
#include <cstdlib>

#include "attack/fms.hpp"
#include "crypto/wep.hpp"
#include "dot11/frame.hpp"
#include "util/bytes.hpp"
#include "util/logging.hpp"

using namespace rogue;

int main(int argc, char** argv) {
  if (!util::Log::init_from_cli(argc, argv)) return 2;
  std::size_t frames = 8'000'000;
  if (argc > 1) frames = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));

  const util::Bytes key = util::to_bytes("KEY42");  // WEP-40, known only to the AP
  std::printf("AirSnort/FMS demo: capturing %zu WEP frames from a network\n"
              "whose card issues sequential IVs (little-endian counter)...\n\n",
              frames);

  attack::FmsCracker cracker(key.size());
  crypto::WepIvGenerator gen(crypto::WepIvPolicy::kSequential, key.size(), 1);
  const util::Bytes msdu =
      dot11::llc_encode(dot11::kEtherTypeIpv4, util::to_bytes("some payload"));

  std::size_t captured = 0;
  for (std::size_t i = 0; i < frames; ++i) {
    const crypto::WepIv iv = gen.next();
    ++captured;
    // Only weak-IV frames matter to FMS; skip the (expensive) encryption
    // of the rest, exactly what a capture filter would discard anyway.
    if (!crypto::is_fms_weak_iv(iv, key.size())) continue;
    cracker.add_frame(crypto::wep_encrypt(iv, key, msdu));

    if (cracker.weak_samples() % 250 == 0) {
      const auto guess = cracker.try_recover();
      std::printf("  %9zu frames, %5zu weak IVs -> %s\n", captured,
                  cracker.weak_samples(),
                  guess ? ("candidate key: " + util::hex_encode(*guess)).c_str()
                        : "(not enough votes yet)");
      if (guess && *guess == key) {
        std::printf("\nKEY RECOVERED after %zu captured frames: \"%s\" (%s)\n",
                    captured, util::to_string(*guess).c_str(),
                    util::hex_encode(*guess).c_str());
        std::printf("The attacker can now authenticate to the WEP network and\n"
                    "stand up the rogue AP with the correct shared key.\n");
        return 0;
      }
    }
  }

  const auto final_guess = cracker.try_recover();
  if (final_guess && *final_guess == key) {
    std::printf("\nKEY RECOVERED: %s\n", util::hex_encode(*final_guess).c_str());
  } else {
    std::printf("\nKey not recovered in %zu frames; capture more traffic.\n",
                frames);
  }
  return 0;
}
