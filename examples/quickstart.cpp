// Quickstart: build the paper's corporate network (Figure 1), deploy the
// rogue access point, force the victim onto it, and watch the software
// download get trojaned with a forged MD5SUM (Figure 2) — then repeat
// with the VPN countermeasure (Figure 3).
//
//   $ ./quickstart [--log-level LEVEL]
#include <cstdio>

#include "scenario/corp_world.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

using namespace rogue;

namespace {

void report(const char* label, const apps::DownloadOutcome& outcome,
            const scenario::CorpWorld& world) {
  std::printf("\n=== %s ===\n", label);
  std::printf("  page fetched:   %s\n", outcome.page_fetched ? "yes" : "no");
  std::printf("  file fetched:   %s\n", outcome.file_fetched ? "yes" : "no");
  std::printf("  published MD5:  %s\n", outcome.published_md5_hex.c_str());
  std::printf("  downloaded MD5: %s\n", outcome.fetched_md5_hex.c_str());
  std::printf("  checksum check: %s\n",
              outcome.md5_verified ? "PASSED (victim reassured)" : "FAILED");
  std::printf("  served from:    %s\n", outcome.fetched_from.to_string().c_str());
  const bool trojaned = outcome.fetched_md5_hex == world.trojan_md5();
  std::printf("  verdict:        %s\n",
              trojaned ? "*** TROJANED BINARY INSTALLED ***"
                       : "genuine release");
}

}  // namespace

int main(int argc, char** argv) {
  if (!util::Log::init_from_cli(argc, argv)) return 2;
  std::printf("Countering Rogues in Wireless Networks — quickstart\n");
  std::printf("---------------------------------------------------\n");

  // --- Phase 1: clean network ------------------------------------------------
  {
    scenario::CorpWorld world;
    world.start();
    world.run_for(5 * sim::kSecond);
    std::printf("victim associated to legit AP: %s\n",
                world.victim_sta().associated() ? "yes" : "no");

    apps::DownloadOutcome outcome;
    world.download([&](const apps::DownloadOutcome& o) { outcome = o; });
    world.run_for(30 * sim::kSecond);
    report("Baseline (no attack)", outcome, world);
  }

  // --- Phase 2: Figures 1+2 — the rogue AP MITM ------------------------------
  {
    scenario::CorpConfig cfg;
    cfg.victim_to_legit_m = 20.0;  // rogue parks closer to the victim
    cfg.victim_to_rogue_m = 4.0;
    cfg.deauth_forcing = true;
    scenario::CorpWorld world(cfg);

    std::printf("\nDeploying rogue AP: SSID CORP, cloned BSSID %s, channel %d, "
                "same WEP key\n",
                world.legit_bssid().to_string().c_str(),
                static_cast<int>(cfg.rogue_channel));
    world.run_capture_phase();
    std::printf("victim captured by rogue: %s\n",
                world.victim_on_rogue() ? "yes" : "no");

    apps::DownloadOutcome outcome;
    world.download([&](const apps::DownloadOutcome& o) { outcome = o; });
    world.run_for(60 * sim::kSecond);
    report("Figure 2: download MITM", outcome, world);
    std::printf("  netsed rewrites: %llu\n",
                static_cast<unsigned long long>(
                    world.rogue()->netsed().stats().replacements));
  }

  // --- Phase 3: Figure 3 — VPN all traffic ------------------------------------
  {
    scenario::CorpConfig cfg;
    cfg.victim_to_legit_m = 20.0;
    cfg.victim_to_rogue_m = 4.0;
    cfg.deauth_forcing = true;
    scenario::CorpWorld world(cfg);
    world.run_capture_phase();

    bool vpn_ok = false;
    world.connect_vpn([&](bool ok) { vpn_ok = ok; });
    world.run_for(10 * sim::kSecond);
    std::printf("\nVPN tunnel (victim -> trusted wired endpoint): %s\n",
                vpn_ok ? "established, endpoint authenticated" : "FAILED");

    apps::DownloadOutcome outcome;
    world.download([&](const apps::DownloadOutcome& o) { outcome = o; });
    world.run_for(60 * sim::kSecond);
    report("Figure 3: same attack, with VPN", outcome, world);
    std::printf("  flows seen by rogue's netsed: %llu\n",
                static_cast<unsigned long long>(
                    world.rogue()->netsed().stats().connections));
  }

  std::printf("\nConclusion (paper, §5): tunnel ALL traffic to a trusted,\n"
              "pre-authenticated endpoint on a secure wired network.\n");
  return 0;
}
