// Figure 3: the VPN countermeasure in detail — what the rogue can and
// cannot see once the victim tunnels all traffic to a trusted endpoint,
// plus the endpoint-authentication property (§5.2) that stops a rogue
// from simply terminating the VPN itself.
//
//   $ ./vpn_defense [--udp] [--log-level LEVEL]
#include <cstdio>
#include <cstring>

#include "attack/sniffer.hpp"
#include "scenario/corp_world.hpp"
#include "util/logging.hpp"

using namespace rogue;

int main(int argc, char** argv) {
  if (!util::Log::init_from_cli(argc, argv)) return 2;
  const bool udp = argc > 1 && std::strcmp(argv[1], "--udp") == 0;

  scenario::CorpConfig cfg;
  cfg.victim_to_legit_m = 20.0;
  cfg.victim_to_rogue_m = 4.0;
  cfg.deauth_forcing = true;
  cfg.vpn_transport = udp ? vpn::Transport::kUdp : vpn::Transport::kTcp;
  scenario::CorpWorld world(cfg);

  std::printf("VPN countermeasure demo (paper section 5), transport: %s\n\n",
              udp ? "UDP (IPsec-style)" : "TCP (PPP-over-SSH-style)");

  world.run_capture_phase();
  std::printf("[1] victim captured by rogue AP: %s\n",
              world.victim_on_rogue() ? "yes" : "no");

  // An insider-grade sniffer (has the WEP key) watches the rogue channel:
  // everything WEP carries it can read — unless the VPN wraps it first.
  attack::SnifferConfig sc;
  sc.channel = cfg.rogue_channel;
  sc.wep_key = cfg.wep_key;
  attack::Sniffer sniffer(world.sim(), world.medium(), sc);
  sniffer.radio().set_position({2, 2});
  std::uint64_t http_plaintext_bytes = 0;
  sniffer.set_msdu_handler([&](net::MacAddr, net::MacAddr, std::uint16_t,
                               util::ByteView payload) {
    const std::string text = util::to_string(payload);
    if (text.find("HTTP/1.0") != std::string::npos ||
        text.find("href=") != std::string::npos) {
      http_plaintext_bytes += payload.size();
    }
  });

  std::printf("[2] establishing VPN to %s:%u (endpoint on the trusted wire)\n",
              world.addr().vpn_endpoint.to_string().c_str(),
              world.addr().vpn_port);
  bool vpn_ok = false;
  world.connect_vpn([&](bool ok) { vpn_ok = ok; });
  world.run_for(10 * sim::kSecond);
  std::printf("      established:            %s\n", vpn_ok ? "yes" : "NO");
  std::printf("      endpoint authenticated: %s (PSK transcript MAC)\n",
              world.victim_tunnel()->server_authenticated() ? "yes" : "no");
  std::printf("      tunnel address:         %s\n",
              world.victim_tunnel()->tunnel_ip().to_string().c_str());
  std::printf("      default route now via:  tun0 (ALL traffic, per §5.2 req. 4)\n");

  std::printf("[3] victim downloads through the hostile path...\n");
  apps::DownloadOutcome outcome;
  world.download([&](const apps::DownloadOutcome& o) { outcome = o; });
  world.run_for(60 * sim::kSecond);

  std::printf("\n--- results -------------------------------------------------\n");
  std::printf("  downloaded MD5:            %s\n", outcome.fetched_md5_hex.c_str());
  std::printf("  genuine release MD5:       %s\n", world.release_md5().c_str());
  std::printf("  checksum verification:     %s\n",
              outcome.md5_verified ? "OK" : "MISMATCH");
  std::printf("  binary is genuine:         %s\n",
              outcome.fetched_md5_hex == world.release_md5() ? "YES" : "no");
  std::printf("  rogue netsed connections:  %llu (nothing to grab)\n",
              static_cast<unsigned long long>(
                  world.rogue()->netsed().stats().connections));
  std::printf("  sniffer HTTP plaintext:    %llu bytes (tunnel showed it none)\n",
              static_cast<unsigned long long>(http_plaintext_bytes));
  std::printf("  VPN records sealed/opened: %llu / %llu\n",
              static_cast<unsigned long long>(
                  world.victim_tunnel()->counters().records_out),
              static_cast<unsigned long long>(
                  world.victim_tunnel()->counters().records_in));
  return 0;
}
