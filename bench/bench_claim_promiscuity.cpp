// EXP-C5 (§3.2 "network promiscuity" + §1.2.2 hostile hotspots):
//
// A mobile client visits K hotspot domains; each is hostile with
// probability p. At every visit it downloads the release (and installs
// whatever verifies). Compromise probability vs K, with and without the
// always-on home VPN — the paper's argument that "a partial fix, or fix
// at home, will not solve the problem" but VPN-everywhere does.
#include <cmath>
#include <cstdio>

#include "exp_common.hpp"
#include "scenario/hotspot.hpp"
#include "util/fmt.hpp"

using namespace rogue;

namespace {

/// One hotspot visit: returns {usable, compromised}.
struct VisitOutcome {
  bool usable = false;
  bool compromised = false;
};

VisitOutcome visit_hotspot(std::uint64_t seed, bool hostile, bool use_vpn) {
  scenario::HotspotConfig cfg;
  cfg.seed = seed;
  cfg.hostile = hostile;
  scenario::HotspotWorld world(cfg);
  world.start();
  world.run_for(5 * sim::kSecond);
  if (!world.client_sta().associated()) return {};

  if (use_vpn) {
    bool ok = false;
    world.connect_vpn([&](bool r) { ok = r; });
    world.run_for(10 * sim::kSecond);
    if (!ok) return {};  // VPN policy: no tunnel, no traffic
  }

  apps::DownloadOutcome outcome;
  bool done = false;
  world.download([&](const apps::DownloadOutcome& o) {
    outcome = o;
    done = true;
  });
  world.run_for(40 * sim::kSecond);
  if (!done || !outcome.file_fetched) return {};

  VisitOutcome v;
  v.usable = true;
  // The client installs anything whose checksum verifies.
  v.compromised = outcome.md5_verified &&
                  outcome.fetched_md5_hex == world.trojan_md5();
  return v;
}

}  // namespace

int main() {
  bench::print_header("EXP-C5", "network promiscuity: roaming across domains",
                      "§3.2 \"a type of network promiscuity\"; §1.2.2 hostile "
                      "hotspots; §2.4 \"a partial fix, or fix at home, will "
                      "not solve the problem\"");
  bench::print_expectation(
      "without VPN, P(compromise) -> 1 - (1-p)^K as visits accumulate; with "
      "the always-on home VPN it stays at zero regardless of K");

  constexpr double kHostileProb = 0.25;  // fraction of hostile domains
  constexpr std::size_t kClients = 12;   // roaming clients simulated per row

  util::Table table({"visits K", "hostile domains met (mean)",
                     "compromised, no VPN", "compromised, VPN",
                     "1-(1-p)^K (model)"});
  for (const std::size_t visits : {1u, 2u, 4u, 8u}) {
    struct ClientOutcome {
      bool compromised_novpn = false;
      bool compromised_vpn = false;
      int hostile_met = 0;
    };
    const auto clients = bench::run_trials<ClientOutcome>(
        kClients,
        [&](std::uint64_t seed) {
          ClientOutcome c;
          util::Prng itinerary(seed);  // which domains are hostile
          for (std::size_t k = 0; k < visits; ++k) {
            const bool hostile = itinerary.chance(kHostileProb);
            if (hostile) ++c.hostile_met;
            const auto plain = visit_hotspot(seed * 100 + k, hostile, false);
            if (plain.usable && plain.compromised) c.compromised_novpn = true;
            const auto vpn = visit_hotspot(seed * 100 + 50 + k, hostile, true);
            if (vpn.usable && vpn.compromised) c.compromised_vpn = true;
          }
          return c;
        },
        40'000 + visits * 1000);

    std::vector<bool> no_vpn;
    std::vector<bool> with_vpn;
    util::Summary hostile_met;
    for (const auto& c : clients) {
      no_vpn.push_back(c.compromised_novpn);
      with_vpn.push_back(c.compromised_vpn);
      hostile_met.add(c.hostile_met);
    }
    const double model = 1.0 - std::pow(1.0 - kHostileProb, static_cast<double>(visits));
    table.add_row({std::to_string(visits), util::fmt_double(hostile_met.mean(), 2),
                   util::fmt_percent(bench::fraction(no_vpn)),
                   util::fmt_percent(bench::fraction(with_vpn)),
                   util::fmt_percent(model)});
  }
  table.print();

  std::printf("\n§3.2: once compromised at one domain, the client \"brings that\n"
              "threat to any other network it encounters\" — including the\n"
              "ultra-secure home network (§2.4).\n");
  return 0;
}
