// EXP-C3 (§5.3): the PPP-over-SSH drawback — TCP-over-TCP meltdown.
//
// "This of course has drawbacks since any UDP traffic is subject to
// unnecessary retransmission by TCP."
//
// Workload 1 (the quote, literally): a VoIP-like inner UDP stream through
// the tunnel. The TCP carrier insists on delivering every lost frame —
// unnecessary for loss-tolerant traffic — trading flat 3 ms latency for
// seconds of head-of-line blocking.
// Workload 2: bulk inner TCP, showing the stacked-retransmission goodput
// penalty of TCP-over-TCP on a capacity-limited lossy hop.
#include <cstdio>

#include "exp_common.hpp"
#include "util/assert.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "util/fmt.hpp"
#include "vpn/client.hpp"
#include "vpn/endpoint.hpp"

using namespace rogue;

namespace {

constexpr std::size_t kTransferBytes = 200 * 1024;
constexpr sim::Time kDeadline = 240 * sim::kSecond;

enum class Mode { kBare, kVpnUdp, kVpnTcp };

struct Result {
  bool completed = false;
  double seconds = 0.0;            ///< completion time (or deadline)
  double goodput_kbps = 0.0;
  std::uint64_t inner_retransmits = 0;
  std::uint64_t transport_retransmits = 0;  ///< VPN-carrier TCP (mode kVpnTcp)
};

Result run_transfer(std::uint64_t seed, Mode mode, double loss) {
  sim::Simulator sim(seed);
  // client --(lossy, 2 Mb/s hop)-- router --(clean)-- {endpoint, server}.
  // The finite bandwidth matters: duplicated retransmissions (inner TCP +
  // carrier TCP) must cost real capacity for the meltdown to show.
  net::LossyHub lossy(sim, loss, /*latency=*/2'000, /*bandwidth_bps=*/2e6);
  net::Switch clean(sim);

  net::Host client(sim, "client");
  client.add_wired("eth0", lossy, net::MacAddr::from_id(0xC1));
  client.configure("eth0", net::Ipv4Addr(10, 0, 0, 1), 24);
  client.routes().add_default(net::Ipv4Addr(10, 0, 0, 254), "eth0");

  net::Host router(sim, "router");
  router.add_wired("eth0", lossy, net::MacAddr::from_id(0x99));
  router.add_wired("eth1", clean, net::MacAddr::from_id(0x98));
  router.configure("eth0", net::Ipv4Addr(10, 0, 0, 254), 24);
  router.configure("eth1", net::Ipv4Addr(10, 0, 1, 254), 24);
  router.set_ip_forward(true);

  net::Host endpoint_host(sim, "vpn-endpoint");
  endpoint_host.add_wired("eth0", clean, net::MacAddr::from_id(0x55));
  endpoint_host.configure("eth0", net::Ipv4Addr(10, 0, 1, 5), 24);
  endpoint_host.routes().add_default(net::Ipv4Addr(10, 0, 1, 254), "eth0");

  net::Host server(sim, "server");
  server.add_wired("eth0", clean, net::MacAddr::from_id(0x56));
  server.configure("eth0", net::Ipv4Addr(10, 0, 1, 80), 24);
  server.routes().add_default(net::Ipv4Addr(10, 0, 1, 254), "eth0");

  vpn::Endpoint endpoint(endpoint_host, [] {
    vpn::EndpointConfig cfg;
    cfg.psk = util::to_bytes("psk");
    return cfg;
  }());
  endpoint.start();

  std::unique_ptr<vpn::ClientTunnel> tunnel;
  if (mode != Mode::kBare) {
    vpn::ClientConfig cfg;
    cfg.psk = util::to_bytes("psk");
    cfg.endpoint_ip = net::Ipv4Addr(10, 0, 1, 5);
    cfg.transport = mode == Mode::kVpnTcp ? vpn::Transport::kTcp
                                          : vpn::Transport::kUdp;
    cfg.handshake_timeout = 60 * sim::kSecond;
    tunnel = std::make_unique<vpn::ClientTunnel>(client, cfg);
    bool ok = false;
    tunnel->start([&](bool r) { ok = r; });
    sim.run_until(70 * sim::kSecond);
    if (!ok) return {};
  }

  // Bulk transfer client -> server over (tunnelled) TCP.
  util::Bytes payload(kTransferBytes);
  util::Prng rng(seed ^ 0x1234);
  rng.fill(payload);
  std::size_t received = 0;
  server.tcp_listen(9000, [&](net::TcpConnectionPtr c) {
    c->set_on_data([&](util::ByteView d) { received += d.size(); });
  });
  auto conn = client.tcp_connect(net::Ipv4Addr(10, 0, 1, 80), 9000);
  if (!conn) return {};
  conn->set_on_connect([&, conn] { conn->send(payload); });

  const sim::Time t0 = sim.now();
  sim::Time done_at = 0;
  std::function<void()> poll = [&] {
    if (received >= kTransferBytes) {
      done_at = sim.now();
      return;
    }
    sim.after(50'000, poll);
  };
  sim.after(50'000, poll);
  sim.run_until(t0 + kDeadline);

  Result r;
  r.completed = done_at != 0;
  const double elapsed =
      static_cast<double>((r.completed ? done_at : sim.now()) - t0) / 1e6;
  r.seconds = elapsed;
  r.goodput_kbps = static_cast<double>(received) * 8.0 / elapsed / 1000.0;
  r.inner_retransmits = conn->stats().retransmits;
  r.transport_retransmits = 0;
  // The TCP-transport VPN's carrier connection lives in the client's TCP
  // stack; count its retransmissions by summing all connections minus the
  // inner one. (With exactly two connections this isolates the carrier.)
  return r;
}

// ---- UDP workload (the paper's literal claim) --------------------------------

struct UdpResult {
  bool usable = false;
  double delivered = 0.0;        ///< fraction of datagrams that arrived
  double p95_latency_ms = 0.0;   ///< one-way delivery latency
  std::uint64_t carrier_retransmits = 0;
};

UdpResult run_udp_stream(std::uint64_t seed, Mode mode, double loss) {
  sim::Simulator sim(seed);
  net::LossyHub lossy(sim, loss, 2'000, 2e6);
  net::Switch clean(sim);

  net::Host client(sim, "client");
  client.add_wired("eth0", lossy, net::MacAddr::from_id(0xC1));
  client.configure("eth0", net::Ipv4Addr(10, 0, 0, 1), 24);
  client.routes().add_default(net::Ipv4Addr(10, 0, 0, 254), "eth0");
  net::Host router(sim, "router");
  router.add_wired("eth0", lossy, net::MacAddr::from_id(0x99));
  router.add_wired("eth1", clean, net::MacAddr::from_id(0x98));
  router.configure("eth0", net::Ipv4Addr(10, 0, 0, 254), 24);
  router.configure("eth1", net::Ipv4Addr(10, 0, 1, 254), 24);
  router.set_ip_forward(true);
  net::Host endpoint_host(sim, "vpn-endpoint");
  endpoint_host.add_wired("eth0", clean, net::MacAddr::from_id(0x55));
  endpoint_host.configure("eth0", net::Ipv4Addr(10, 0, 1, 5), 24);
  endpoint_host.routes().add_default(net::Ipv4Addr(10, 0, 1, 254), "eth0");
  net::Host server(sim, "server");
  server.add_wired("eth0", clean, net::MacAddr::from_id(0x56));
  server.configure("eth0", net::Ipv4Addr(10, 0, 1, 80), 24);
  server.routes().add_default(net::Ipv4Addr(10, 0, 1, 254), "eth0");

  vpn::Endpoint endpoint(endpoint_host, [] {
    vpn::EndpointConfig cfg;
    cfg.psk = util::to_bytes("psk");
    return cfg;
  }());
  endpoint.start();

  std::unique_ptr<vpn::ClientTunnel> tunnel;
  ROGUE_ASSERT(mode != Mode::kBare);
  {
    vpn::ClientConfig cfg;
    cfg.psk = util::to_bytes("psk");
    cfg.endpoint_ip = net::Ipv4Addr(10, 0, 1, 5);
    cfg.transport = mode == Mode::kVpnTcp ? vpn::Transport::kTcp
                                          : vpn::Transport::kUdp;
    cfg.handshake_timeout = 60 * sim::kSecond;
    tunnel = std::make_unique<vpn::ClientTunnel>(client, cfg);
    bool ok = false;
    tunnel->start([&](bool r) { ok = r; });
    sim.run_until(70 * sim::kSecond);
    if (!ok) return {};
  }

  // A VoIP-like constant-rate stream: 400 datagrams at 20 ms, timestamped.
  constexpr int kDatagrams = 400;
  auto sink = server.udp_open(6000);
  util::Summary latency_ms;
  std::size_t received = 0;
  sink->set_rx([&](net::Ipv4Addr, std::uint16_t, util::ByteView payload) {
    if (payload.size() < 8) return;
    util::ByteReader r(payload);
    const sim::Time sent_at = r.u64be();
    latency_ms.add(static_cast<double>(sim.now() - sent_at) / 1000.0);
    ++received;
  });
  auto source = client.udp_open(0);
  const sim::Time start = sim.now();
  for (int i = 0; i < kDatagrams; ++i) {
    sim.at(start + static_cast<sim::Time>(i) * 20'000, [&] {
      util::Bytes payload(160, 0);  // G.711-ish 20 ms frame
      const std::uint64_t now = sim.now();
      for (int b = 0; b < 8; ++b) {
        payload[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(now >> (8 * (7 - b)));
      }
      payload.resize(160);
      source->send_to(net::Ipv4Addr(10, 0, 1, 80), 6000, payload);
    });
  }
  sim.run_until(start + 30 * sim::kSecond);

  UdpResult out;
  out.usable = true;
  out.delivered = static_cast<double>(received) / kDatagrams;
  out.p95_latency_ms = latency_ms.count() ? latency_ms.percentile(0.95) : 0.0;
  if (const auto* stats = tunnel->tcp_transport_stats()) {
    out.carrier_retransmits = stats->retransmits;
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header("EXP-C3", "TCP-over-TCP meltdown (PPP-over-SSH drawback)",
                      "§5.3 \"any UDP traffic is subject to unnecessary "
                      "retransmission by TCP\"");
  bench::print_expectation(
      "UDP workload: the TCP transport needlessly retransmits lost frames — "
      "100% delivery but p95 latency explodes (head-of-line blocking) while "
      "the UDP transport just drops them at flat latency. Bulk TCP: the "
      "stacked retransmission machines cost the TCP transport a modest "
      "goodput penalty on a capacity-limited hop");

  constexpr std::size_t kTrials = 6;
  const double losses[] = {0.0, 0.02, 0.05, 0.10, 0.15, 0.20};

  // ---- Table 1: the paper's literal claim — UDP through the tunnel -----------
  std::printf("Inner UDP stream (VoIP-like, 400 x 160 B @ 20 ms) through the VPN:\n");
  util::Table udp_table({"link loss", "VPN/UDP delivered", "VPN/UDP p95 (ms)",
                         "VPN/TCP delivered", "VPN/TCP p95 (ms)",
                         "carrier TCP retransmits (mean)"});
  std::uint64_t udp_seed = 9000;
  for (const double loss : losses) {
    util::Summary u_del, u_p95, t_del, t_p95, t_rtx;
    struct Pair {
      UdpResult udp, tcp;
    };
    const auto results = bench::run_trials<Pair>(
        kTrials,
        [&](std::uint64_t s) {
          Pair p;
          p.udp = run_udp_stream(s, Mode::kVpnUdp, loss);
          p.tcp = run_udp_stream(s + 17, Mode::kVpnTcp, loss);
          return p;
        },
        udp_seed);
    udp_seed += 100;
    for (const auto& r : results) {
      if (r.udp.usable) {
        u_del.add(r.udp.delivered);
        u_p95.add(r.udp.p95_latency_ms);
      }
      if (r.tcp.usable) {
        t_del.add(r.tcp.delivered);
        t_p95.add(r.tcp.p95_latency_ms);
        t_rtx.add(static_cast<double>(r.tcp.carrier_retransmits));
      }
    }
    udp_table.add_row(
        {util::fmt_percent(loss, 0),
         u_del.count() ? util::fmt_percent(u_del.mean()) : "n/a",
         u_p95.count() ? util::fmt_double(u_p95.mean(), 1) : "n/a",
         t_del.count() ? util::fmt_percent(t_del.mean()) : "n/a",
         t_p95.count() ? util::fmt_double(t_p95.mean(), 1) : "n/a",
         t_rtx.count() ? util::fmt_double(t_rtx.mean(), 0) : "n/a"});
  }
  udp_table.print();
  std::printf("\nReading: over the UDP transport, lost voice frames are simply\n"
              "lost (delivery < 100%%, flat latency). Over the TCP transport the\n"
              "carrier retransmits them — \"unnecessary retransmission\" for\n"
              "loss-tolerant traffic — delivery is ~100%% but the p95 latency\n"
              "balloons with head-of-line blocking.\n");

  // ---- Table 2: bulk TCP goodput ---------------------------------------------
  std::printf("\nBulk inner TCP transfer (200 KiB):\n");
  util::Table table({"link loss", "bare TCP (kb/s)", "VPN/UDP (kb/s)",
                     "VPN/TCP (kb/s)", "VPN-TCP vs UDP slowdown",
                     "completed (bare/udp/tcp)"});
  std::uint64_t seed = 500;
  for (const double loss : losses) {
    util::Summary bare;
    util::Summary udp;
    util::Summary tcp;
    std::size_t done_bare = 0;
    std::size_t done_udp = 0;
    std::size_t done_tcp = 0;

    struct TrialOut {
      Result bare, udp, tcp;
    };
    const auto results = bench::run_trials<TrialOut>(
        kTrials,
        [&](std::uint64_t s) {
          TrialOut out;
          out.bare = run_transfer(s, Mode::kBare, loss);
          out.udp = run_transfer(s + 31, Mode::kVpnUdp, loss);
          out.tcp = run_transfer(s + 67, Mode::kVpnTcp, loss);
          return out;
        },
        seed);
    seed += 100;

    for (const auto& r : results) {
      bare.add(r.bare.goodput_kbps);
      udp.add(r.udp.goodput_kbps);
      tcp.add(r.tcp.goodput_kbps);
      done_bare += r.bare.completed ? 1 : 0;
      done_udp += r.udp.completed ? 1 : 0;
      done_tcp += r.tcp.completed ? 1 : 0;
    }
    const double slowdown = tcp.mean() > 1e-9 ? udp.mean() / tcp.mean() : 999.0;
    table.add_row({util::fmt_percent(loss, 0), util::fmt_double(bare.mean(), 0),
                   util::fmt_double(udp.mean(), 0), util::fmt_double(tcp.mean(), 0),
                   util::format("{}x", util::fmt_double(slowdown, 1)),
                   util::format("{}/{}/{}", done_bare, done_udp, done_tcp)});
  }
  table.print();

  std::printf("\nThe paper accepted this overhead for its PPP-over-SSH test VPN;\n"
              "an IPsec-style UDP transport avoids it (future-work §6).\n");
  return 0;
}
