// EXP-M1: google-benchmark microbenchmarks for the substrate primitives —
// crypto throughput, frame/packet codecs, the event queue, and an in-sim
// TCP transfer. Engineering numbers, not paper claims.
//
// Run `bench_micro --smoke` for a quick pass (tiny min-time per benchmark),
// used as a CI sanity check that every scenario still executes.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/crc32.hpp"
#include "crypto/dh.hpp"
#include "crypto/hmac.hpp"
#include "crypto/md5.hpp"
#include "crypto/rc4.hpp"
#include "crypto/sha256.hpp"
#include "crypto/wep.hpp"
#include "dot11/ap.hpp"
#include "dot11/frame.hpp"
#include "net/host.hpp"
#include "obs/tracer.hpp"
#include "phy/medium.hpp"
#include "vpn/protocol.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/prng.hpp"

using namespace rogue;

namespace {

util::Bytes random_bytes(std::size_t n, std::uint64_t seed = 1) {
  util::Bytes out(n);
  util::Prng rng(seed);
  rng.fill(out);
  return out;
}

void BM_Rc4(benchmark::State& state) {
  const util::Bytes key = random_bytes(16);
  util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::Rc4 rc4(key);
    rc4.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Rc4)->Arg(64)->Arg(1500)->Arg(65536);

void BM_ChaCha20(benchmark::State& state) {
  const util::Bytes key = random_bytes(32);
  const util::Bytes nonce = random_bytes(12);
  util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::ChaCha20 cipher(key, nonce);
    cipher.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(1500)->Arg(65536);

// Per-kernel variants: force one backend for the run, restore auto after.
// Keeps the scalar/SSE2/AVX2 trajectory visible side by side in the gate,
// and skips (rather than silently falls back) where a kernel can't run.
void chacha20_backend_bench(benchmark::State& state,
                            crypto::ChaChaBackend backend) {
  if (crypto::chacha20_set_backend(backend) != backend) {
    crypto::chacha20_set_backend(crypto::ChaChaBackend::kAuto);
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  const util::Bytes key = random_bytes(32);
  const util::Bytes nonce = random_bytes(12);
  util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::ChaCha20 cipher(key, nonce);
    cipher.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  crypto::chacha20_set_backend(crypto::ChaChaBackend::kAuto);
}

void BM_ChaCha20Scalar(benchmark::State& state) {
  chacha20_backend_bench(state, crypto::ChaChaBackend::kScalar);
}
BENCHMARK(BM_ChaCha20Scalar)->Arg(1500)->Arg(65536);

void BM_ChaCha20Sse2(benchmark::State& state) {
  chacha20_backend_bench(state, crypto::ChaChaBackend::kSse2);
}
BENCHMARK(BM_ChaCha20Sse2)->Arg(1500)->Arg(65536);

void BM_ChaCha20Avx2(benchmark::State& state) {
  chacha20_backend_bench(state, crypto::ChaChaBackend::kAvx2);
}
BENCHMARK(BM_ChaCha20Avx2)->Arg(1500)->Arg(65536);

void BM_Md5(benchmark::State& state) {
  const util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::md5(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5)->Arg(1500)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  const util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1500)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const util::Bytes key = random_bytes(32);
  const util::Bytes data = random_bytes(1500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_HmacSha256);

void BM_Crc32(benchmark::State& state) {
  const util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1500)->Arg(65536);

void BM_WepEncryptDecrypt(benchmark::State& state) {
  const util::Bytes key = util::to_bytes("SECRETWEPKEY1");
  const util::Bytes msdu = random_bytes(1400);
  crypto::WepIvGenerator gen(crypto::WepIvPolicy::kSequential, key.size(), 1);
  for (auto _ : state) {
    const util::Bytes body = crypto::wep_encrypt(gen.next(), key, msdu);
    benchmark::DoNotOptimize(crypto::wep_decrypt(body, key));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_WepEncryptDecrypt);

void BM_AeadSealOpen(benchmark::State& state) {
  const util::Bytes key = random_bytes(crypto::kAeadKeyLen);
  const util::Bytes msg = random_bytes(1400);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const util::Bytes sealed = crypto::aead_seal(key, ++seq, {}, msg);
    benchmark::DoNotOptimize(crypto::aead_open(key, seq, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_AeadSealOpen);

void BM_DhHandshake(benchmark::State& state) {
  util::Prng rng(1);
  const auto& group = crypto::DhGroup::modp1024();
  for (auto _ : state) {
    const auto a = crypto::DhKeyPair::generate(group, rng);
    const auto b = crypto::DhKeyPair::generate(group, rng);
    benchmark::DoNotOptimize(a.shared_secret(b.public_value()));
  }
}
BENCHMARK(BM_DhHandshake);

void BM_FrameSerializeParse(benchmark::State& state) {
  dot11::Frame f;
  f.type = dot11::FrameType::kData;
  f.to_ds = true;
  f.addr1 = net::MacAddr::from_id(1);
  f.addr2 = net::MacAddr::from_id(2);
  f.addr3 = net::MacAddr::from_id(3);
  f.body = random_bytes(1400);
  for (auto _ : state) {
    const util::Bytes raw = f.serialize();
    benchmark::DoNotOptimize(dot11::Frame::parse(raw));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_FrameSerializeParse);

void BM_Ipv4SerializeParse(benchmark::State& state) {
  net::Ipv4Packet p;
  p.protocol = net::kProtoTcp;
  p.src = net::Ipv4Addr(10, 0, 0, 1);
  p.dst = net::Ipv4Addr(10, 0, 0, 2);
  p.payload = random_bytes(1400);
  for (auto _ : state) {
    const util::Bytes raw = p.serialize();
    benchmark::DoNotOptimize(net::Ipv4Packet::parse(raw));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_Ipv4SerializeParse);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.at(static_cast<sim::Time>(i % 97), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_EventScheduleCancel(benchmark::State& state) {
  // Schedule 1000 timers, cancel them all, then drain: measures the cost
  // of cancellation plus tombstone/stale-entry cleanup in the queue.
  std::vector<sim::TimerHandle> handles;
  handles.reserve(1000);
  for (auto _ : state) {
    sim::Simulator sim;
    handles.clear();
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(sim.at(static_cast<sim::Time>(i % 97), [] {}));
    }
    for (const auto& h : handles) sim.cancel(h);
    sim.run();
    benchmark::DoNotOptimize(sim.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * 2000);  // schedule + cancel
}
BENCHMARK(BM_EventScheduleCancel);

void BM_EventChurn(benchmark::State& state) {
  // Rolling-timer pattern typical of protocol stacks: every fired event
  // cancels a pending "retransmit" timer, re-arms it, and schedules its
  // own successor — a steady schedule/cancel/fire mix.
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::TimerHandle> rtx(16);
    std::uint64_t fired = 0;
    std::function<void(std::size_t)> work = [&](std::size_t lane) {
      ++fired;
      sim.cancel(rtx[lane]);
      rtx[lane] = sim.after(500, [] {});  // re-armed, normally never fires
      if (fired < 4000) sim.after(7 + lane, [&work, lane] { work(lane); });
    };
    for (std::size_t lane = 0; lane < rtx.size(); ++lane) {
      rtx[lane] = sim.after(500, [] {});
      sim.after(1 + lane, [&work, lane] { work(lane); });
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * 4000 * 2);
}
BENCHMARK(BM_EventChurn);

void BM_BeaconStorm(benchmark::State& state) {
  // Eight co-channel APs beaconing for one simulated second: exercises the
  // periodic-event machinery, CSMA timer churn, and per-frame buffer
  // traffic through phy + dot11 with zero payload work.
  for (auto _ : state) {
    sim::Simulator sim(42);
    phy::Medium medium(sim);
    std::vector<std::unique_ptr<dot11::AccessPoint>> aps;
    for (int i = 0; i < 8; ++i) {
      dot11::ApConfig cfg;
      cfg.ssid = "CORP-" + std::to_string(i);
      cfg.bssid = net::MacAddr::from_id(static_cast<std::uint64_t>(i) + 1);
      cfg.channel = 1;
      auto ap = std::make_unique<dot11::AccessPoint>(sim, medium, cfg);
      ap->radio().set_position({static_cast<double>(i % 3) * 4.0,
                                static_cast<double>(i / 3) * 4.0});
      ap->start();
      aps.push_back(std::move(ap));
    }
    sim.run_until(1 * sim::kSecond);
    std::uint64_t beacons = 0;
    for (const auto& ap : aps) beacons += ap->counters().beacons_sent;
    benchmark::DoNotOptimize(beacons);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * 10);
}
BENCHMARK(BM_BeaconStorm);

void BM_VpnSealOpen(benchmark::State& state) {
  // Pooled tunnel-record round trip: seal_record_into encrypts in place in
  // a reused wire buffer, open_record_append decrypts into a second one —
  // the per-packet datapath of the VPN client and concentrator.
  const util::Bytes key = random_bytes(crypto::kAeadKeyLen);
  const util::Bytes pkt = random_bytes(1400);
  util::Bytes record;
  util::Bytes inner;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    vpn::seal_record_into(key, ++seq, pkt, record);
    inner.clear();
    std::uint64_t got_seq = 0;
    benchmark::DoNotOptimize(vpn::open_record_append(key, record, &got_seq, inner));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_VpnSealOpen);

void BM_MediumDeliver(benchmark::State& state) {
  // N co-channel radios taking turns transmitting: stresses the per-channel
  // radio index, the pairwise RSSI cache, and active-transmission tracking.
  const int n = static_cast<int>(state.range(0));
  const util::Bytes frame = random_bytes(256);
  for (auto _ : state) {
    sim::Simulator sim(9);
    phy::Medium medium(sim);
    std::vector<std::unique_ptr<phy::Radio>> radios;
    std::uint64_t delivered = 0;
    for (int i = 0; i < n; ++i) {
      auto r = std::make_unique<phy::Radio>(medium, "r" + std::to_string(i));
      r->set_position({static_cast<double>(i % 4) * 2.0,
                       static_cast<double>(i / 4) * 2.0});
      r->set_receive_handler(
          [&delivered](util::ByteView, const phy::RxInfo&) { ++delivered; });
      radios.push_back(std::move(r));
    }
    for (int t = 0; t < 200; ++t) {
      sim.after(static_cast<sim::Time>(t) * 2000, [&radios, &frame, t, n] {
        radios[static_cast<std::size_t>(t % n)]->transmit(frame);
      });
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 200 * (n - 1));
}
BENCHMARK(BM_MediumDeliver)->Arg(4)->Arg(16);

void BM_MediumDenseDeliver(benchmark::State& state) {
  // Dense fan-out: N co-channel radios in a tight grid, every one within
  // range of every other, senders rotating through the whole population so
  // all N^2 (sender, receiver) pairs stay live. This is the metro-world
  // delivery profile: one transmission, N-1 receiver visits.
  //
  // Each iteration is one full replica lifecycle — build the world, run a
  // burst of traffic, tear it down — because that is exactly what the sweep
  // runner does per replica. The pre-change cost here was dominated by
  // per-pair RSSI cache node churn (allocate on miss, free ~N^2 hash nodes
  // at teardown), which the delivery-plan + flat-map path eliminates.
  const int n = static_cast<int>(state.range(0));
  const int kTx = 4 * n;  // every radio transmits ~4 times: steady state,
                          // not just world-construction + first delivery
  const util::Bytes frame = random_bytes(256);
  const int side = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  for (auto _ : state) {
    sim::Simulator sim(11);
    phy::Medium medium(sim);
    std::vector<std::unique_ptr<phy::Radio>> radios;
    std::uint64_t delivered = 0;
    for (int i = 0; i < n; ++i) {
      auto r = std::make_unique<phy::Radio>(medium, "r" + std::to_string(i));
      r->set_position({static_cast<double>(i % side) * 3.0,
                       static_cast<double>(i / side) * 3.0});
      r->set_receive_handler(
          [&delivered](util::ByteView, const phy::RxInfo&) { ++delivered; });
      radios.push_back(std::move(r));
    }
    for (int t = 0; t < kTx; ++t) {
      // Stride through the population so consecutive transmissions come
      // from different senders (worst case for per-sender caching).
      sim.after(static_cast<sim::Time>(t) * 2000, [&radios, &frame, t, n] {
        radios[static_cast<std::size_t>((t * 7) % n)]->transmit(frame);
      });
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * kTx * (n - 1));
}
BENCHMARK(BM_MediumDenseDeliver)->Arg(64)->Arg(256)->Arg(1024);

void roam_churn(benchmark::State& state, bool grid) {
  // Metro mobility profile: a city-sized co-channel population where every
  // step moves one radio and then another one transmits, so each delivery
  // pays whatever plan invalidation the move caused. Flat mode invalidates
  // the whole world per move and walks all N radios per delivery; the
  // spatial grid localizes both to the 3x3 neighborhood. perf_gate.py
  // asserts the flat/grid cpu_time ratio at 4096 from the same run, which
  // is machine-independent.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim(13);
  phy::MediumConfig cfg;
  cfg.spatial_grid = grid;
  cfg.pair_rssi_cache = false;  // the metro medium profile
  phy::Medium medium(sim, cfg);
  const std::size_t side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<std::unique_ptr<phy::Radio>> radios;
  radios.reserve(n);
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto r = std::make_unique<phy::Radio>(medium, "r" + std::to_string(i));
    r->set_position({static_cast<double>(i % side) * 30.0,
                     static_cast<double>(i / side) * 30.0});
    r->set_receive_handler(
        [&delivered](util::ByteView, const phy::RxInfo&) { ++delivered; });
    radios.push_back(std::move(r));
  }
  const util::Bytes frame = random_bytes(128);
  util::Prng rng(77);
  constexpr int kSteps = 64;
  for (auto _ : state) {
    for (int s = 0; s < kSteps; ++s) {
      phy::Radio& mover = *radios[rng.uniform_u64(0, n - 1)];
      phy::Position p = mover.position();
      p.x += rng.uniform01() * 12.0 - 6.0;
      p.y += rng.uniform01() * 12.0 - 6.0;
      mover.set_position(p);
      sim.after(2'000, [&radios, &frame, idx = rng.uniform_u64(0, n - 1)] {
        radios[idx]->transmit(frame);
      });
      sim.run();
    }
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * kSteps);
}
void BM_MediumRoamChurnFlat(benchmark::State& state) {
  roam_churn(state, false);
}
void BM_MediumRoamChurnGrid(benchmark::State& state) {
  roam_churn(state, true);
}
BENCHMARK(BM_MediumRoamChurnFlat)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MediumRoamChurnGrid)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_MetroDeliver(benchmark::State& state) {
  // Steady-state metro delivery throughput on the spatial grid: N radios
  // on a street-scale lattice cycling the {1, 6, 11} channel plan, senders
  // striding through the population. Measures the per-transmission cost of
  // the 3x3 gather + plan revalidation at population sizes where the flat
  // path's O(N) walk stops being runnable at all (65536 radios).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim(15);
  phy::MediumConfig cfg;
  cfg.spatial_grid = true;
  cfg.pair_rssi_cache = false;
  phy::Medium medium(sim, cfg);
  const std::size_t side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  constexpr phy::Channel kPlan[3] = {1, 6, 11};
  std::vector<std::unique_ptr<phy::Radio>> radios;
  radios.reserve(n);
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto r = std::make_unique<phy::Radio>(medium, "r" + std::to_string(i));
    r->set_position({static_cast<double>(i % side) * 25.0,
                     static_cast<double>(i / side) * 25.0});
    r->set_channel(kPlan[i % 3]);
    r->set_receive_handler(
        [&delivered](util::ByteView, const phy::RxInfo&) { ++delivered; });
    radios.push_back(std::move(r));
  }
  const util::Bytes frame = random_bytes(256);
  constexpr int kTx = 64;
  std::size_t sender = 0;
  for (auto _ : state) {
    for (int t = 0; t < kTx; ++t) {
      sender = (sender + n / 2 + 7) % n;  // stride across the city
      sim.after(2'000, [&radios, &frame, sender] {
        radios[sender]->transmit(frame);
      });
      sim.run();
    }
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * kTx);
}
BENCHMARK(BM_MetroDeliver)->Arg(4096)->Arg(65536)->Unit(benchmark::kMicrosecond);

void BM_ArenaAcquireRelease(benchmark::State& state) {
  // Steady-state frame-buffer traffic: acquire a pooled buffer, serialize a
  // frame-sized payload into it, hand it back. The depth-16 working set
  // mimics in-flight frames queued across radios and sockets; the arena is
  // pre-warmed so every acquire is a freelist pop, never a heap allocation.
  util::BufferPoolConfig cfg;
  cfg.slab_buffers = 32;
  cfg.buffer_capacity = 2048;
  util::BufferPool pool(cfg);
  std::vector<util::Bytes> live;
  live.reserve(16);
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      util::Bytes b = pool.acquire(1500);
      b.resize(256);
      b[0] = static_cast<std::uint8_t>(i);
      live.push_back(std::move(b));
    }
    for (auto& b : live) pool.release(std::move(b));
    live.clear();
    benchmark::DoNotOptimize(pool.pooled());
  }
  state.SetItemsProcessed(state.iterations() * 32);  // acquire + release
}
BENCHMARK(BM_ArenaAcquireRelease);

void BM_TraceRecord(benchmark::State& state) {
  // Hot-path trace append with an interned tag: the record itself is a
  // 64-byte POD-ish row and the typical MAC-layer message stays in the
  // ShortString inline buffer, so appends don't allocate per record.
  sim::Trace trace;
  const sim::TagId tag = trace.intern("ap:aa:bb:cc:dd:ee:01");
  for (auto _ : state) {
    trace.clear();
    for (int i = 0; i < 1000; ++i) {
      trace.record(static_cast<sim::Time>(i), tag,
                   "assoc aa:bb:cc:dd:ee:77 aid=1");
    }
    benchmark::DoNotOptimize(trace.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TraceRecord);

void BM_TraceRecordLegacy(benchmark::State& state) {
  // The pre-interning usage pattern every component had: build the tag
  // string per record (concat + to_string) and pay its heap traffic.
  sim::Trace trace;
  const net::MacAddr bssid = net::MacAddr::from_id(0xAABBCCDD01);
  for (auto _ : state) {
    trace.clear();
    for (int i = 0; i < 1000; ++i) {
      trace.record(static_cast<sim::Time>(i), "ap:" + bssid.to_string(),
                   "assoc aa:bb:cc:dd:ee:77 aid=1");
    }
    benchmark::DoNotOptimize(trace.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TraceRecordLegacy);

void BM_TracerRecord(benchmark::State& state) {
  // Causal-tracer hot path with the ring enabled: one POD store per
  // record into the preallocated flight-recorder ring, no allocation.
  obs::Tracer tracer;
  tracer.set_seed(1);
  std::uint64_t clock = 0;
  tracer.bind_clock(&clock);
  const obs::TraceNameId name = tracer.name("phy.rx");
  const obs::TraceActorId actor = tracer.actor("sta:51");
  tracer.enable(1 << 16);
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      clock = i;
      tracer.instant(name, actor, obs::TraceLayer::kPhy, i | 1, i);
    }
    benchmark::DoNotOptimize(tracer.recorded());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TracerRecord);

void BM_TraceDisabled(benchmark::State& state) {
  // The price every datapath pays when tracing is off: must stay a single
  // predictable branch per call. Gated tightly (<= 3%) by perf_gate.py —
  // this is the "observability is free until you turn it on" contract.
  obs::Tracer tracer;
  tracer.set_seed(1);
  std::uint64_t clock = 0;
  tracer.bind_clock(&clock);
  const obs::TraceNameId name = tracer.name("phy.rx");
  const obs::TraceActorId actor = tracer.actor("sta:51");
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      tracer.instant(name, actor, obs::TraceLayer::kPhy, i | 1, i);
    }
    benchmark::DoNotOptimize(tracer.recorded());
    benchmark::DoNotOptimize(tracer.enabled());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TraceDisabled);

void BM_SimTcpTransfer(benchmark::State& state) {
  // Full in-sim TCP transfer of 100 KiB between two wired hosts:
  // measures simulator events/second end to end.
  for (auto _ : state) {
    sim::Simulator sim(7);
    net::Switch lan(sim);
    net::Host a(sim, "a");
    a.add_wired("eth0", lan, net::MacAddr::from_id(1));
    a.configure("eth0", net::Ipv4Addr(10, 0, 0, 1), 24);
    net::Host b(sim, "b");
    b.add_wired("eth0", lan, net::MacAddr::from_id(2));
    b.configure("eth0", net::Ipv4Addr(10, 0, 0, 2), 24);
    std::size_t received = 0;
    b.tcp_listen(80, [&](net::TcpConnectionPtr c) {
      c->set_on_data([&](util::ByteView d) { received += d.size(); });
    });
    const util::Bytes payload = random_bytes(100 * 1024);
    auto conn = a.tcp_connect(net::Ipv4Addr(10, 0, 0, 2), 80);
    conn->set_on_connect([&, conn] { conn->send(payload); });
    sim.run_until(30 * sim::kSecond);
    benchmark::DoNotOptimize(received);
  }
  state.SetBytesProcessed(state.iterations() * 100 * 1024);
}
BENCHMARK(BM_SimTcpTransfer);

}  // namespace

// BENCHMARK_MAIN() plus a `--smoke` flag: rewrites the flag into a tiny
// --benchmark_min_time so CI can verify every benchmark still runs in
// seconds rather than minutes.
int main(int argc, char** argv) {
  std::string smoke_flag = "--benchmark_min_time=0.01";
  std::vector<char*> args(argv, argv + argc);
  for (char*& arg : args) {
    if (std::string_view(arg) == "--smoke") arg = smoke_flag.data();
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
