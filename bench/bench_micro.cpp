// EXP-M1: google-benchmark microbenchmarks for the substrate primitives —
// crypto throughput, frame/packet codecs, the event queue, and an in-sim
// TCP transfer. Engineering numbers, not paper claims.
#include <benchmark/benchmark.h>

#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/crc32.hpp"
#include "crypto/dh.hpp"
#include "crypto/hmac.hpp"
#include "crypto/md5.hpp"
#include "crypto/rc4.hpp"
#include "crypto/sha256.hpp"
#include "crypto/wep.hpp"
#include "dot11/frame.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "sim/simulator.hpp"
#include "util/prng.hpp"

using namespace rogue;

namespace {

util::Bytes random_bytes(std::size_t n, std::uint64_t seed = 1) {
  util::Bytes out(n);
  util::Prng rng(seed);
  rng.fill(out);
  return out;
}

void BM_Rc4(benchmark::State& state) {
  const util::Bytes key = random_bytes(16);
  util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::Rc4 rc4(key);
    rc4.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Rc4)->Arg(64)->Arg(1500)->Arg(65536);

void BM_ChaCha20(benchmark::State& state) {
  const util::Bytes key = random_bytes(32);
  const util::Bytes nonce = random_bytes(12);
  util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::ChaCha20 cipher(key, nonce);
    cipher.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(1500)->Arg(65536);

void BM_Md5(benchmark::State& state) {
  const util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::md5(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5)->Arg(1500)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  const util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1500)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const util::Bytes key = random_bytes(32);
  const util::Bytes data = random_bytes(1500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_HmacSha256);

void BM_Crc32(benchmark::State& state) {
  const util::Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1500)->Arg(65536);

void BM_WepEncryptDecrypt(benchmark::State& state) {
  const util::Bytes key = util::to_bytes("SECRETWEPKEY1");
  const util::Bytes msdu = random_bytes(1400);
  crypto::WepIvGenerator gen(crypto::WepIvPolicy::kSequential, key.size(), 1);
  for (auto _ : state) {
    const util::Bytes body = crypto::wep_encrypt(gen.next(), key, msdu);
    benchmark::DoNotOptimize(crypto::wep_decrypt(body, key));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_WepEncryptDecrypt);

void BM_AeadSealOpen(benchmark::State& state) {
  const util::Bytes key = random_bytes(crypto::kAeadKeyLen);
  const util::Bytes msg = random_bytes(1400);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const util::Bytes sealed = crypto::aead_seal(key, ++seq, {}, msg);
    benchmark::DoNotOptimize(crypto::aead_open(key, seq, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_AeadSealOpen);

void BM_DhHandshake(benchmark::State& state) {
  util::Prng rng(1);
  const auto& group = crypto::DhGroup::modp1024();
  for (auto _ : state) {
    const auto a = crypto::DhKeyPair::generate(group, rng);
    const auto b = crypto::DhKeyPair::generate(group, rng);
    benchmark::DoNotOptimize(a.shared_secret(b.public_value()));
  }
}
BENCHMARK(BM_DhHandshake);

void BM_FrameSerializeParse(benchmark::State& state) {
  dot11::Frame f;
  f.type = dot11::FrameType::kData;
  f.to_ds = true;
  f.addr1 = net::MacAddr::from_id(1);
  f.addr2 = net::MacAddr::from_id(2);
  f.addr3 = net::MacAddr::from_id(3);
  f.body = random_bytes(1400);
  for (auto _ : state) {
    const util::Bytes raw = f.serialize();
    benchmark::DoNotOptimize(dot11::Frame::parse(raw));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_FrameSerializeParse);

void BM_Ipv4SerializeParse(benchmark::State& state) {
  net::Ipv4Packet p;
  p.protocol = net::kProtoTcp;
  p.src = net::Ipv4Addr(10, 0, 0, 1);
  p.dst = net::Ipv4Addr(10, 0, 0, 2);
  p.payload = random_bytes(1400);
  for (auto _ : state) {
    const util::Bytes raw = p.serialize();
    benchmark::DoNotOptimize(net::Ipv4Packet::parse(raw));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_Ipv4SerializeParse);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.at(static_cast<sim::Time>(i % 97), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_SimTcpTransfer(benchmark::State& state) {
  // Full in-sim TCP transfer of 100 KiB between two wired hosts:
  // measures simulator events/second end to end.
  for (auto _ : state) {
    sim::Simulator sim(7);
    net::Switch lan(sim);
    net::Host a(sim, "a");
    a.add_wired("eth0", lan, net::MacAddr::from_id(1));
    a.configure("eth0", net::Ipv4Addr(10, 0, 0, 1), 24);
    net::Host b(sim, "b");
    b.add_wired("eth0", lan, net::MacAddr::from_id(2));
    b.configure("eth0", net::Ipv4Addr(10, 0, 0, 2), 24);
    std::size_t received = 0;
    b.tcp_listen(80, [&](net::TcpConnectionPtr c) {
      c->set_on_data([&](util::ByteView d) { received += d.size(); });
    });
    const util::Bytes payload = random_bytes(100 * 1024);
    auto conn = a.tcp_connect(net::Ipv4Addr(10, 0, 0, 2), 80);
    conn->set_on_connect([&, conn] { conn->send(payload); });
    sim.run_until(30 * sim::kSecond);
    benchmark::DoNotOptimize(received);
  }
  state.SetBytesProcessed(state.iterations() * 100 * 1024);
}
BENCHMARK(BM_SimTcpTransfer);

}  // namespace

BENCHMARK_MAIN();
