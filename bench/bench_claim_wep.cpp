// EXP-C2 (§2.1 + §4): WEP provides no protection here.
//
// (a) Insider decryption: anyone holding the shared key reads 100% of the
//     BSS traffic — WEP gates on key possession only.
// (b) AirSnort/FMS: frames needed for an outsider to *recover* the key
//     passively, per IV policy and key length, plus the WEPplus-style
//     weak-IV-filter ablation that starves the attack.
// (c) Integrity: CRC-32 bit-flip forgery succeeds without the key.
#include <cstdio>

#include "attack/fms.hpp"
#include "crypto/crc32.hpp"
#include "crypto/wep.hpp"
#include "dot11/frame.hpp"
#include "exp_common.hpp"
#include "util/fmt.hpp"

using namespace rogue;

namespace {

/// Frames captured until the FMS cracker recovers the key (0 = never
/// within the budget). Counts every frame of the sequential IV stream.
std::size_t frames_to_crack(const util::Bytes& key, crypto::WepIvPolicy policy,
                            std::size_t budget, std::uint64_t seed) {
  attack::FmsCracker cracker(key.size());
  crypto::WepIvGenerator gen(policy, key.size(), seed);
  const util::Bytes msdu =
      dot11::llc_encode(dot11::kEtherTypeIpv4, util::to_bytes("payload"));

  for (std::size_t i = 1; i <= budget; ++i) {
    const crypto::WepIv iv = gen.next();
    if (!crypto::is_fms_weak_iv(iv, key.size())) continue;  // speed: only
    cracker.add_frame(crypto::wep_encrypt(iv, key, msdu));  // weak IVs vote
    if (cracker.weak_samples() % 64 == 0) {
      const auto guess = cracker.try_recover();
      if (guess && *guess == key) return i;
    }
  }
  const auto guess = cracker.try_recover();
  return (guess && *guess == key) ? budget : 0;
}

}  // namespace

int main() {
  bench::print_header("EXP-C2", "WEP: insider exposure, FMS key recovery, forgery",
                      "§2.1 \"it provides no protection what so ever\"; §4 "
                      "\"retrieved the WEP key via Airsnort\"");
  bench::print_expectation(
      "insider: 100% decryption. FMS: key recovered within millions of frames "
      "under sequential IVs; weak-IV filtering (WEPplus) starves it; random "
      "IVs slow it; CRC-32 forgery always succeeds");

  // ---- (a) insider decryption -------------------------------------------------
  {
    const util::Bytes key = util::to_bytes("SECRETWEPKEY1");
    crypto::WepIvGenerator gen(crypto::WepIvPolicy::kSequential, key.size(), 3);
    std::size_t decrypted = 0;
    constexpr std::size_t kFrames = 5000;
    for (std::size_t i = 0; i < kFrames; ++i) {
      const util::Bytes body = crypto::wep_encrypt(
          gen.next(), key,
          dot11::llc_encode(dot11::kEtherTypeIpv4, util::to_bytes("frame")));
      if (crypto::wep_decrypt(body, key)) ++decrypted;
    }
    std::printf("(a) insider with the shared key decrypts %zu/%zu frames (%s)\n\n",
                decrypted, kFrames,
                util::fmt_percent(static_cast<double>(decrypted) / kFrames).c_str());
  }

  // ---- (b) FMS frames-to-crack -------------------------------------------------
  std::printf("(b) AirSnort/FMS passive key recovery (3 runs each, frame budget 40M):\n");
  util::Table table({"key", "IV policy", "run 1", "run 2", "run 3"});
  struct Config {
    const char* label;
    util::Bytes key;
    crypto::WepIvPolicy policy;
    const char* policy_name;
  };
  const Config configs[] = {
      {"WEP-40", util::to_bytes("KEY42"), crypto::WepIvPolicy::kSequential,
       "sequential"},
      {"WEP-40", util::to_bytes("KEY42"), crypto::WepIvPolicy::kRandom, "random"},
      {"WEP-40", util::to_bytes("KEY42"), crypto::WepIvPolicy::kSkipWeak,
       "skip-weak (WEPplus)"},
      {"WEP-104", util::to_bytes("SECRETWEPKEY1"), crypto::WepIvPolicy::kSequential,
       "sequential"},
  };

  for (const auto& cfg : configs) {
    std::vector<std::string> row = {cfg.label, cfg.policy_name};
    std::vector<std::size_t> counts(3);
    util::parallel_for(3, [&](std::size_t i) {
      counts[i] = frames_to_crack(cfg.key, cfg.policy, 40'000'000, 11 + i);
    });
    for (const std::size_t n : counts) {
      row.push_back(n == 0 ? "not recovered"
                           : util::format("{}M frames",
                                          util::fmt_double(
                                              static_cast<double>(n) / 1e6, 1)));
    }
    table.add_row(row);
  }
  table.print();

  // ---- (c) CRC-32 linear forgery -------------------------------------------------
  {
    const util::Bytes key = util::to_bytes("SECRETWEPKEY1");
    const util::Bytes msg = util::to_bytes("transfer 0000100 to account A");
    std::size_t forged_ok = 0;
    constexpr int kAttempts = 1000;
    for (int t = 0; t < kAttempts; ++t) {
      crypto::WepIvGenerator gen(crypto::WepIvPolicy::kRandom, key.size(),
                                 static_cast<std::uint64_t>(t));
      util::Bytes body = crypto::wep_encrypt(gen.next(), key, msg);
      // Attacker (no key): flip "0000100" -> "9000100" + patch the ICV.
      util::Bytes delta(msg.size(), 0);
      delta[9] = '0' ^ '9';
      const std::uint32_t patch =
          crypto::crc32(util::Bytes(msg.size(), 0)) ^ crypto::crc32(delta);
      const std::size_t off = crypto::kWepIvLen + 1;
      for (std::size_t i = 0; i < delta.size(); ++i) body[off + i] ^= delta[i];
      for (int i = 0; i < 4; ++i) {
        body[off + msg.size() + static_cast<std::size_t>(i)] ^=
            static_cast<std::uint8_t>(patch >> (8 * i));
      }
      const auto dec = crypto::wep_decrypt(body, key);
      if (dec && util::to_string(dec->plaintext).find("9000100") != std::string::npos) {
        ++forged_ok;
      }
    }
    std::printf("\n(c) keyless CRC-32 bit-flip forgery accepted by the receiver: "
                "%zu/%d (%s)\n",
                forged_ok, kAttempts,
                util::fmt_percent(static_cast<double>(forged_ok) / kAttempts).c_str());
  }
  return 0;
}
