// Shared experiment-harness helpers for the reproduction benches: a
// parallel trial runner (each trial owns a full simulated world, seeded
// deterministically) and uniform table output.
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace rogue::bench {

/// Run `trials` independent simulations in parallel; `body(seed)` returns
/// one sample. Results are returned in trial order (deterministic).
template <typename T>
std::vector<T> run_trials(std::size_t trials,
                          const std::function<T(std::uint64_t seed)>& body,
                          std::uint64_t seed_base = 1000) {
  std::vector<T> results(trials);
  util::parallel_for(trials, [&](std::size_t i) {
    results[i] = body(seed_base + i);
  });
  return results;
}

/// Fraction of true values.
inline double fraction(const std::vector<bool>& v) {
  if (v.empty()) return 0.0;
  std::size_t n = 0;
  for (const bool b : v) n += b ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(v.size());
}

inline void print_header(const std::string& exp_id, const std::string& title,
                         const std::string& paper_anchor) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", exp_id.c_str(), title.c_str());
  std::printf("paper anchor: %s\n", paper_anchor.c_str());
  std::printf("================================================================\n");
}

inline void print_expectation(const std::string& text) {
  std::printf("expected shape: %s\n\n", text.c_str());
}

}  // namespace rogue::bench
